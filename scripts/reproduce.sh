#!/bin/sh
# Reproduces the paper's full evaluation: builds, runs the test suite, and
# regenerates every figure. CSVs land in ./results when ORP_CSV_DIR is set.
#
#   ./scripts/reproduce.sh            # laptop budgets (~20-30 min, 1 core)
#   ORP_SA_ITERS=20000 ORP_SIM_FRAC=50 ./scripts/reproduce.sh   # high fidelity
set -eu
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p results
: "${ORP_CSV_DIR:=$(pwd)/results}"
export ORP_CSV_DIR
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo
echo "Done. Tables: bench_output.txt — CSV series: $ORP_CSV_DIR/"

// Fig. 11 — 16-ary fat-tree (r=16, m=320, capacity 1024) vs the proposed
// topology (n=1024, r=16, m=m_opt=183). Paper headline results: proposed
// wins performance by ~84% on average (CG most extreme), but the fat-tree
// keeps ~53% higher bisection bandwidth; the fat-tree is the most
// expensive and power-hungry of the three baselines. IS and FT simulations
// are omitted in the paper's figure (simulation cost) — we mark them the
// same way.

#include "bench_util.hpp"
#include "compare_common.hpp"
#include "topo/fattree.hpp"

namespace {

orp::FatTreeParams smallest_fattree(std::uint32_t hosts) {
  for (std::uint32_t k = 2;; k += 2) {
    const orp::FatTreeParams params{k};
    if (orp::fattree_host_capacity(params) >= hosts) return params;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("fig11_vs_fattree", "Fig. 11: proposed topology vs fat-tree");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;

  ComparisonConfig config;
  config.figure = "Fig. 11";
  config.csv_prefix = "fig11";
  config.baseline_name = "16-ary fat-tree (r=16)";
  config.n = 1024;
  config.radix = 16;
  config.build_baseline = [](std::uint32_t hosts) {
    return build_fattree(smallest_fattree(hosts), hosts, AttachPolicy::kRoundRobin);
  };
  config.baseline_capacity = [](std::uint32_t hosts) {
    return fattree_host_capacity(smallest_fattree(hosts));
  };
  config.skipped_kernels = {NasKernel::kIS, NasKernel::kFT};
  run_comparison(config);
  finish_obs(cli);
  return 0;
}

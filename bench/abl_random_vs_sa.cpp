// Ablation — naive random topologies vs local search (§2.1's claim).
//
// The paper motivates its search by citing work showing "local search
// algorithms enable us to construct better graphs than naive random
// topologies". This bench measures the gap: at m_opt, compare the h-ASPL
// of (a) the best of k random saturated graphs (a Jellyfish-style
// baseline) and (b) SA with the 2-neighbor swing, for several (n, r).

#include "bench_util.hpp"
#include "hsg/bounds.hpp"
#include "search/random_init.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("abl_random_vs_sa", "naive random graphs vs simulated annealing");
  cli.option("random-trials", "8", "random graphs sampled for the baseline");
  cli.option("iters", "0", "SA iterations (0 = ORP_SA_ITERS or 2000)");
  cli.option("trace-every", "50", "record an SA convergence sample every N iterations");
  cli.option("trace-csv", "",
             "write the SA convergence curves (iteration, h-ASPL, temperature) "
             "to this CSV file");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  const int trials = static_cast<int>(cli.get_int("random-trials"));
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(2000);
  const auto trace_every = static_cast<std::uint64_t>(cli.get_int("trace-every"));
  const std::string trace_csv = cli.get("trace-csv");

  print_header("Ablation: best-of-" + std::to_string(trials) +
               " random graphs vs SA (both at m_opt)");
  Table table({"n", "r", "m_opt", "random best", "SA 2n-swing", "Thm-2 bound",
               "SA gain%"});
  // The winning restart's convergence samples per configuration: one CSV
  // reproduces every SA curve of this ablation in a single run.
  Table trace_table({"n", "r", "iteration", "current_haspl", "best_haspl",
                     "temperature"});
  for (const auto& [n, r] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {256, 12}, {512, 12}, {1024, 12}, {1024, 24}}) {
    const std::uint32_t m = optimal_switch_count(n, r);
    Xoshiro256 rng(bench_seed());
    double random_best = std::numeric_limits<double>::infinity();
    for (int t = 0; t < trials; ++t) {
      const auto g = random_host_switch_graph(n, m, r, rng);
      random_best = std::min(random_best, compute_host_metrics(g).h_aspl);
    }
    SolveOptions options;
    options.iterations = iterations;
    options.seed = bench_seed();
    options.force_switch_count = m;
    apply_cli_search_options(options);
    options.trace_every = trace_csv.empty() ? 0 : trace_every;
    const auto sa = solve_orp(n, r, options);
    table.row()
        .add(static_cast<std::size_t>(n))
        .add(static_cast<std::size_t>(r))
        .add(static_cast<std::size_t>(m))
        .add(random_best)
        .add(sa.metrics.h_aspl)
        .add(haspl_lower_bound(n, r))
        .add(100.0 * (1.0 - sa.metrics.h_aspl / random_best), 2);
    for (const AnnealTracePoint& point : sa.sa_trace) {
      trace_table.row()
          .add(static_cast<std::size_t>(n))
          .add(static_cast<std::size_t>(r))
          .add(static_cast<std::size_t>(point.iteration))
          .add(point.current_haspl)
          .add(point.best_haspl)
          .add(point.temperature, 6);
    }
  }
  table.print(std::cout);
  if (!trace_csv.empty() && obs::write_csv(trace_table, trace_csv)) {
    std::cout << "wrote " << trace_table.rows() << " convergence samples to "
              << trace_csv << "\n";
  }
  finish_obs(cli);
  return 0;
}

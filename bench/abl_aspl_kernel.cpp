// Ablation (google-benchmark) — scalar BFS vs bit-parallel h-ASPL kernels.
//
// The annealer evaluates h-ASPL on every candidate, so the metric kernel
// dominates search throughput. This microbenchmark measures both kernels
// (serial and thread-pooled) across graph sizes; tests already assert they
// agree bit-for-bit.

#include <benchmark/benchmark.h>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "hsg/metrics.hpp"
#include "search/random_init.hpp"

namespace {

using namespace orp;

HostSwitchGraph graph_for(std::int64_t m) {
  Xoshiro256 rng(42);
  const auto n = static_cast<std::uint32_t>(4 * m);
  return random_host_switch_graph(n, static_cast<std::uint32_t>(m), 12, rng);
}

void BM_ScalarBfs(benchmark::State& state) {
  const auto g = graph_for(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(detail::compute_host_metrics_scalar(g));
  }
}
BENCHMARK(BM_ScalarBfs)->Arg(64)->Arg(194)->Arg(512);

void BM_BitParallel(benchmark::State& state) {
  const auto g = graph_for(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_host_metrics(g, AsplKernel::kBitParallel));
  }
}
BENCHMARK(BM_BitParallel)->Arg(64)->Arg(194)->Arg(512);

void BM_BitParallelPooled(benchmark::State& state) {
  const auto g = graph_for(state.range(0));
  ThreadPool& pool = ThreadPool::global();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compute_host_metrics(g, AsplKernel::kBitParallel, &pool));
  }
}
BENCHMARK(BM_BitParallelPooled)->Arg(194)->Arg(512);

void BM_SwitchMetrics(benchmark::State& state) {
  const auto g = graph_for(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_switch_metrics(g, AsplKernel::kAuto));
  }
}
BENCHMARK(BM_SwitchMetrics)->Arg(194);

}  // namespace

BENCHMARK_MAIN();

// Fig. 5 — h-ASPL versus the number of switches m.
//
// For each (n, r) panel the paper plots, this bench sweeps m and prints:
//   * SA with the swap operation (regular host-switch graphs, §5.1);
//     only defined where m divides n
//   * SA with the 2-neighbor swing operation (§5.2)
//   * the Moore bound (Eq. 2, integer points)
//   * the continuous Moore bound (§5.3)
//   * the Theorem-2 lower bound (constant in m)
// The reproduction target: both SA curves are U-shaped in m, the swing
// curve dominates the swap curve away from the minimum, and the minimum
// sits at the continuous-Moore minimizer m_opt (dotted line in the paper).
//
// Default panels are the paper's "typical results"; --all runs the full
// n in {128,256,512,1024} x r in {12,24} grid.

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "hsg/bounds.hpp"
#include "search/random_init.hpp"

namespace {

using namespace orp;
using namespace orp::bench;

std::vector<std::uint32_t> sweep_values(std::uint32_t n, std::uint32_t r) {
  // Log-spaced m from the smallest feasible count to ~4x m_opt, always
  // including m_opt itself.
  const std::uint32_t m_opt = optimal_switch_count(n, r);
  std::uint32_t m_min = std::max<std::uint32_t>(1, n / (r - 1));
  while (!random_init_feasible(n, m_min, r)) ++m_min;
  const std::uint32_t m_max = std::min<std::uint32_t>(n, m_opt * 4);
  std::vector<std::uint32_t> values;
  const int points = 9;
  for (int i = 0; i < points; ++i) {
    const double f = static_cast<double>(i) / (points - 1);
    const auto m = static_cast<std::uint32_t>(std::lround(
        m_min * std::pow(static_cast<double>(m_max) / m_min, f)));
    if (values.empty() || values.back() != m) values.push_back(m);
  }
  values.push_back(m_opt);
  // Include the divisors of n in range: the swap-only (regular) series is
  // only defined there.
  for (std::uint32_t m = m_min; m <= m_max; ++m) {
    if (n % m == 0 && random_init_feasible(n, m, r)) values.push_back(m);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

void run_panel(std::uint32_t n, std::uint32_t r, std::uint64_t iterations) {
  const std::uint32_t m_opt = optimal_switch_count(n, r);
  print_header("Fig. 5 panel: n=" + std::to_string(n) + ", r=" + std::to_string(r) +
               "  (m_opt=" + std::to_string(m_opt) +
               ", Theorem-2 bound=" + format_double(haspl_lower_bound(n, r)) + ")");

  Table table({"m", "SA-swap(regular)", "SA-2n-swing", "Moore(Eq.2)",
               "contMoore", "note"});
  for (const std::uint32_t m : sweep_values(n, r)) {
    table.row().add(static_cast<std::size_t>(m));

    // Swap-only SA explores regular graphs: m must divide n.
    if (n % m == 0 && random_init_feasible(n, m, r)) {
      SolveOptions options;
      options.iterations = iterations;
      options.seed = bench_seed() + m;
      options.mode = MoveMode::kSwap;
      options.regular_start = true;
      options.force_switch_count = m;
      apply_cli_search_options(options);
      table.add(solve_orp(n, r, options).metrics.h_aspl);
    } else {
      table.add("-");
    }

    SolveOptions options;
    options.iterations = iterations;
    options.seed = bench_seed() + m;
    options.mode = MoveMode::kTwoNeighborSwing;
    options.force_switch_count = m;
    apply_cli_search_options(options);
    table.add(solve_orp(n, r, options).metrics.h_aspl);

    if (n % m == 0) {
      const double eq2 = regular_haspl_moore_bound(n, m, r);
      table.add(std::isinf(eq2) ? "inf" : format_double(eq2));
    } else {
      table.add("-");
    }
    const double cont = continuous_haspl_moore_bound(n, m, r);
    table.add(std::isinf(cont) ? "inf" : format_double(cont));
    table.add(m == m_opt ? "<- m_opt" : "");
  }
  emit_table(table, "fig05_n" + std::to_string(n) + "_r" + std::to_string(r));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fig05_haspl_vs_switches", "Fig. 5: h-ASPL vs number of switches");
  cli.flag("all", "run the full 4x2 (n, r) grid instead of the typical panels");
  cli.option("iters", "0", "SA iterations per point (0 = ORP_SA_ITERS or 800)");
  if (!orp::bench::parse_cli_with_obs(cli, argc, argv)) return 0;

  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = orp::bench::sa_iters(800);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> panels;
  if (cli.has("all")) {
    for (std::uint32_t n : {128u, 256u, 512u, 1024u}) {
      for (std::uint32_t r : {12u, 24u}) panels.emplace_back(n, r);
    }
  } else {
    panels = {{128, 24}, {256, 12}, {1024, 12}, {1024, 24}};
  }
  for (const auto& [n, r] : panels) run_panel(n, r, iterations);
  orp::bench::finish_obs(cli);
  return 0;
}

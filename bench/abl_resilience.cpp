// Ablation — link-failure resilience.
//
// Random-like topologies are known to degrade gracefully under failures
// (one of §2.1's motivations for random shortcut topologies). This bench
// fails each cable independently at several rates and reports disconnect
// probability and h-ASPL inflation for the proposed topology vs the three
// conventional baselines at matched host counts.

#include "bench_util.hpp"
#include "hsg/analysis.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("abl_resilience", "h-ASPL degradation under random link failures");
  cli.option("hosts", "256", "hosts");
  cli.option("trials", "30", "Monte-Carlo trials per rate");
  cli.option("iters", "0", "SA iterations (0 = ORP_SA_ITERS or 1500)");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  const int trials = static_cast<int>(cli.get_int("trials"));
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(1500);

  struct Candidate {
    std::string name;
    HostSwitchGraph graph;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"proposed r=12", build_proposed(n, 12, iterations).graph});
  for (std::uint32_t base = 2;; ++base) {
    const TorusParams params{3, base, 12};
    if (torus_host_capacity(params) >= n) {
      candidates.push_back({"3-D torus", build_torus(params, n)});
      break;
    }
  }
  for (std::uint32_t a = 2;; a += 2) {
    if (dragonfly_host_capacity(DragonflyParams{a}) >= n) {
      candidates.push_back({"dragonfly", build_dragonfly(DragonflyParams{a}, n)});
      break;
    }
  }
  for (std::uint32_t k = 2;; k += 2) {
    if (fattree_host_capacity(FatTreeParams{k}) >= n) {
      candidates.push_back({"fat-tree", build_fattree(FatTreeParams{k}, n)});
      break;
    }
  }

  print_header("Ablation: link failures, n=" + std::to_string(n) + ", " +
               std::to_string(trials) + " trials per rate");
  Table table({"topology", "fail rate%", "disconnect%", "mean h-ASPL infl.%",
               "max h-ASPL infl.%"});
  for (const auto& candidate : candidates) {
    for (const double rate : {0.01, 0.05, 0.10}) {
      Xoshiro256 rng(bench_seed());
      const auto impact = link_failure_impact(candidate.graph, rate, trials, rng);
      table.row()
          .add(candidate.name)
          .add(100.0 * rate, 0)
          .add(100.0 * impact.disconnect_probability, 1)
          .add(100.0 * impact.mean_haspl_inflation, 2)
          .add(100.0 * impact.max_haspl_inflation, 2);
    }
  }
  emit_table(table, "abl_resilience");
  finish_obs(cli);
  return 0;
}

// Fig. 9 — 5-D torus (N=3, r=15, m=243, capacity 1215) vs the proposed
// topology (n=1024, r=15, m=m_opt). Paper headline results: proposed wins
// performance by ~22% on average (IS/FT/MG strongest), +31% bisection
// bandwidth, lower power up to 1215 connectable hosts, total cost within
// ~3% (cable cost up ~45%, switch cost down ~5%).

#include "bench_util.hpp"
#include "compare_common.hpp"
#include "topo/torus.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("fig09_vs_torus", "Fig. 9: proposed topology vs 5-D torus");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;

  const TorusParams params{5, 3, 15};
  ComparisonConfig config;
  config.figure = "Fig. 9";
  config.csv_prefix = "fig09";
  config.baseline_name = "5-D torus (N=3, r=15)";
  config.n = 1024;
  config.radix = 15;
  config.build_baseline = [params](std::uint32_t hosts) {
    return build_torus(params, hosts, AttachPolicy::kRoundRobin);
  };
  config.baseline_capacity = [params](std::uint32_t hosts) -> std::uint64_t {
    // The paper fixes the torus at N=3 / r=15 (capacity 1215); it does not
    // scale past that, which is exactly the crossover Fig. 9c shows.
    const std::uint64_t capacity = torus_host_capacity(params);
    return hosts <= capacity ? capacity : 0;
  };
  run_comparison(config);
  finish_obs(cli);
  return 0;
}

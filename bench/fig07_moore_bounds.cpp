// Fig. 7 — Moore bound vs continuous Moore bound (n = 1024, r = 24).
//
// The integer Moore bound (Eq. 2) only exists where m divides n and the
// per-switch host count is integral; the continuous extension fills the
// gaps and is what the m_opt prediction minimizes. The paper's figure
// shows the two agreeing at integer points with the continuous curve
// interpolating smoothly between them.

#include <cmath>

#include "bench_util.hpp"
#include "hsg/bounds.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("fig07_moore_bounds", "Fig. 7: Moore vs continuous Moore bound");
  cli.option("n", "1024", "number of hosts");
  cli.option("radix", "24", "ports per switch");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(cli.get_int("n"));
  const auto r = static_cast<std::uint32_t>(cli.get_int("radix"));

  const std::uint32_t m_opt = optimal_switch_count(n, r);
  print_header("Fig. 7: Moore bound vs continuous Moore bound (n=" +
               std::to_string(n) + ", r=" + std::to_string(r) +
               ", m_opt=" + std::to_string(m_opt) + ")");

  Table table({"m", "Moore(Eq.2)", "contMoore", "note"});
  std::uint32_t m_min = n / (r - 1);
  if (m_min == 0) m_min = 1;
  for (std::uint32_t m = m_min; m <= 4 * m_opt; m += std::max(1u, m_opt / 16)) {
    const double cont = continuous_haspl_moore_bound(n, m, r);
    table.row().add(static_cast<std::size_t>(m));
    if (n % m == 0) {
      const double eq2 = regular_haspl_moore_bound(n, m, r);
      table.add(std::isinf(eq2) ? "inf" : format_double(eq2));
    } else {
      table.add("-");  // the integer bound needs m | n
    }
    table.add(std::isinf(cont) ? "inf" : format_double(cont));
    table.add(m == m_opt ? "<- m_opt" : "");
  }
  // Always include the integer divisor points (the paper's markers).
  Table divisors({"m (divisor of n)", "Moore(Eq.2)", "contMoore"});
  for (std::uint32_t m = m_min; m <= 4 * m_opt; ++m) {
    if (n % m != 0) continue;
    const double eq2 = regular_haspl_moore_bound(n, m, r);
    const double cont = continuous_haspl_moore_bound(n, m, r);
    divisors.row()
        .add(static_cast<std::size_t>(m))
        .add(std::isinf(eq2) ? "inf" : format_double(eq2))
        .add(std::isinf(cont) ? "inf" : format_double(cont));
  }
  emit_table(table, "fig07_sweep");
  std::cout << "\nInteger points (Eq. 2 defined; continuous bound must agree):\n";
  emit_table(divisors, "fig07_divisors");
  finish_obs(cli);
  return 0;
}

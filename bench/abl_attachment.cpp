// Ablation — host-attachment / rank-mapping policies (§1's claim that the
// vertex <-> physical-node mapping strongly affects performance, and
// §6.2.1's use of depth-first rank ordering for the proposed topology).
//
// Runs two communication-bound NAS kernels on the proposed topology with
// three rank mappings: DFS host order (the paper's), identity, and a
// random permutation. Nearest-neighbor kernels (MG) should care; pure
// all-to-all kernels (FT) should not.

#include <numeric>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("abl_attachment", "ablation: rank mapping policies");
  cli.option("n", "256", "hosts (square power of two)");
  cli.option("radix", "12", "ports per switch");
  cli.option("iters", "0", "SA iterations (0 = ORP_SA_ITERS or 1500)");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(cli.get_int("n"));
  const auto r = static_cast<std::uint32_t>(cli.get_int("radix"));
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(1500);

  const SolveResult proposed = build_proposed(n, r, iterations);
  print_header("Ablation: rank mapping on the proposed topology (n=" +
               std::to_string(n) + ", r=" + std::to_string(r) + ")");

  std::vector<HostId> identity(n);
  std::iota(identity.begin(), identity.end(), 0);
  std::vector<HostId> random_map = identity;
  Xoshiro256 rng(bench_seed());
  shuffle(random_map, rng);

  struct Mapping {
    const char* name;
    std::vector<HostId> map;
  };
  std::vector<Mapping> mappings;
  mappings.push_back({"dfs (paper)", dfs_host_order(proposed.graph)});
  mappings.push_back({"identity", identity});
  mappings.push_back({"random", random_map});

  NasOptions options;
  options.iteration_fraction = sim_fraction();
  Table table({"mapping", "MG Mop/s", "CG Mop/s", "FT Mop/s"});
  for (const auto& mapping : mappings) {
    Machine machine(proposed.graph, cli_sim_params(), mapping.map);
    table.row().add(mapping.name);
    for (const NasKernel kernel : {NasKernel::kMG, NasKernel::kCG, NasKernel::kFT}) {
      table.add(run_nas_kernel(machine, kernel, options).mops_per_second, 1);
    }
  }
  table.print(std::cout);
  std::cout << "expected: mapping shifts neighbor-heavy kernels (MG/CG); "
               "all-to-all (FT) is mapping-insensitive\n";
  finish_obs(cli);
  return 0;
}

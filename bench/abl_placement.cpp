// Ablation — cable-aware switch placement (§6.3.1's "cable complexity").
//
// The paper attributes the proposed topology's cable-cost penalty to its
// random-like wiring. Placement is a free variable: this bench optimizes
// the switch -> cabinet assignment by simulated annealing and reports how
// much of the cable cost it recovers for the proposed topology vs how
// little structured topologies gain (their identity layout is already
// near-optimal along low dimensions).

#include "bench_util.hpp"
#include "cost/placement.hpp"
#include "topo/dragonfly.hpp"
#include "topo/torus.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("abl_placement", "cable-aware cabinet placement optimization");
  cli.option("hosts", "1024", "hosts");
  cli.option("sa-iters", "0", "topology SA iterations (0 = ORP_SA_ITERS or 2000)");
  cli.option("placement-iters", "30000", "placement SA iterations");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  std::uint64_t sa_iterations = static_cast<std::uint64_t>(cli.get_int("sa-iters"));
  if (sa_iterations == 0) sa_iterations = sa_iters(2000);
  const auto placement_iters =
      static_cast<std::uint64_t>(cli.get_int("placement-iters"));

  struct Candidate {
    std::string name;
    HostSwitchGraph graph;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"proposed r=15", build_proposed(n, 15, sa_iterations).graph});
  candidates.push_back({"5-D torus", build_torus(TorusParams{5, 3, 15}, n)});
  candidates.push_back({"dragonfly a=8", build_dragonfly(DragonflyParams{8}, n)});

  print_header("Ablation: cabinet placement, n=" + std::to_string(n));
  Table table({"topology", "identity cable $", "optimized cable $", "saved%",
               "optical before", "optical after"});
  for (const auto& candidate : candidates) {
    const auto& g = candidate.graph;
    std::vector<std::uint32_t> identity(g.num_switches());
    for (std::uint32_t i = 0; i < g.num_switches(); ++i) identity[i] = i;
    const auto before = evaluate_network_cost_placed(g, identity);
    const auto placement = optimize_placement(g, placement_iters, bench_seed());
    const auto after = evaluate_network_cost_placed(g, placement);
    table.row()
        .add(candidate.name)
        .add(before.cable_cost_usd(), 0)
        .add(after.cable_cost_usd(), 0)
        .add(100.0 * (1.0 - after.cable_cost_usd() / before.cable_cost_usd()), 1)
        .add(before.optical_cables)
        .add(after.optical_cables);
  }
  table.print(std::cout);
  finish_obs(cli);
  return 0;
}

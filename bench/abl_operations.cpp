// Ablation — swap vs swing vs 2-neighbor swing (§5.2's design claim).
//
// The paper argues the swap operation alone cannot change host placement
// and the swing operation alone loses the swap's regular-graph moves, so
// the combined 2-neighbor swing is needed. This bench runs all three modes
// from identical random starts and reports the final h-ASPL (lower is
// better) over several seeds.

#include <vector>

#include "bench_util.hpp"
#include "hsg/bounds.hpp"
#include "search/random_init.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("abl_operations", "ablation: SA neighborhood operations");
  cli.option("n", "256", "hosts");
  cli.option("radix", "12", "ports per switch");
  cli.option("m", "64", "switches (must divide n so swap mode is defined)");
  cli.option("seeds", "3", "independent repetitions");
  cli.option("iters", "0", "SA iterations (0 = ORP_SA_ITERS or 1500)");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_int("n"));
  const auto r = static_cast<std::uint32_t>(cli.get_int("radix"));
  const auto m = static_cast<std::uint32_t>(cli.get_int("m"));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(1500);

  print_header("Ablation: operations at n=" + std::to_string(n) + ", m=" +
               std::to_string(m) + ", r=" + std::to_string(r) + ", " +
               std::to_string(iterations) + " iterations");
  std::cout << "Theorem-2 bound: " << format_double(haspl_lower_bound(n, r))
            << "   continuous Moore bound at this m: "
            << format_double(continuous_haspl_moore_bound(n, m, r)) << "\n";

  Table table({"seed", "initial", "swap-only", "swing-only", "2n-swing"});
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    Xoshiro256 rng(seed);
    const HostSwitchGraph initial = random_regular_host_switch_graph(n, m, r, rng);
    const double initial_haspl = compute_host_metrics(initial).h_aspl;
    table.row().add(static_cast<std::size_t>(seed)).add(initial_haspl);
    for (const MoveMode mode :
         {MoveMode::kSwap, MoveMode::kSwing, MoveMode::kTwoNeighborSwing}) {
      AnnealOptions options;
      options.iterations = iterations;
      options.seed = seed * 1000 + static_cast<std::uint64_t>(mode);
      options.mode = mode;
      options.eval = cli_eval_strategy();
      table.add(anneal(initial, options).best_metrics.h_aspl);
    }
  }
  emit_table(table, "abl_operations");
  std::cout
      << "expected: all three modes land close here (m divides n and the\n"
         "balanced distribution is near-optimal, so swap's neighborhood\n"
         "suffices); the swing family's advantage is structural — it reaches\n"
         "non-regular graphs, which swap cannot, and only it works at the\n"
         "non-divisor m_opt values Fig. 5/6 need\n";
  finish_obs(cli);
  return 0;
}

// Ablation — fluid (max-min fair) engine vs packet-level simulation.
//
// The §6.2.1 evaluation rides on a SimGrid-style fluid model; this bench
// quantifies how far that abstraction sits from a store-and-forward
// packet simulation on the same topologies and message sets. Large
// messages should agree within a few percent; tiny messages expose the
// serialization effects the fluid model does not represent.

#include "bench_util.hpp"
#include "sim/packet.hpp"
#include "sim/traffic.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("abl_fluid_vs_packet", "fluid engine vs packet-level simulation");
  cli.option("hosts", "64", "hosts (square power of two)");
  cli.option("iters", "0", "SA iterations for the proposed topology (0 = ORP_SA_ITERS or 1000)");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(1000);

  struct Candidate {
    std::string name;
    HostSwitchGraph graph;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"proposed", build_proposed(n, 8, iterations).graph});
  for (std::uint32_t k = 2;; k += 2) {
    if (fattree_host_capacity(FatTreeParams{k}) >= n) {
      candidates.push_back({"fat-tree", build_fattree(FatTreeParams{k}, n)});
      break;
    }
  }

  print_header("Ablation: fluid vs packet engine, n=" + std::to_string(n));
  Table table({"topology", "pattern", "bytes", "fluid s", "packet s", "packet/fluid"});
  for (const auto& candidate : candidates) {
    Machine fluid(candidate.graph, cli_sim_params());
    PacketSimParams pkt;
    PacketMachine packets(candidate.graph, pkt);
    for (const TrafficPattern pattern :
         {TrafficPattern::kPermutation, TrafficPattern::kTranspose,
          TrafficPattern::kBitComplement, TrafficPattern::kNeighborRing}) {
      for (const std::uint64_t bytes : {4096ull, 4000000ull}) {
        Xoshiro256 rng(bench_seed());
        const auto messages = make_traffic(pattern, n, bytes, rng);
        fluid.reset();
        const double fluid_time = fluid.phase(messages);
        const auto packet_result = packets.phase(messages);
        table.row()
            .add(candidate.name)
            .add(traffic_pattern_name(pattern))
            .add(bytes)
            .add(fluid_time, 6)
            .add(packet_result.elapsed, 6)
            .add(packet_result.elapsed / fluid_time, 3);
      }
    }
  }
  table.print(std::cout);
  std::cout << "expected: ratios near 1.0 for 4 MB messages (validates the fluid\n"
               "model); small-message ratios drift as serialization bites\n";
  finish_obs(cli);
  return 0;
}

// Ablation — synthetic traffic patterns across topologies.
//
// Classic Dally-style evaluation isolating what the NAS results blend:
// delivered aggregate bandwidth and mean route length per pattern on the
// proposed topology vs torus / dragonfly / fat-tree at matched host
// counts. Expectation: the proposed topology's uniformly low h-ASPL keeps
// adversarial patterns (bit-complement, transpose) close to its best
// case, while the torus collapses on them and the fat-tree rides its
// bisection.

#include "bench_util.hpp"
#include "sim/traffic.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("abl_traffic", "synthetic traffic patterns across topologies");
  cli.option("hosts", "256", "hosts (square power of two)");
  cli.option("bytes", "1000000", "message size per rank");
  cli.option("iters", "0", "SA iterations for the proposed topology (0 = ORP_SA_ITERS or 1500)");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes"));
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(1500);

  struct Candidate {
    std::string name;
    HostSwitchGraph graph;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"proposed r=12", build_proposed(n, 12, iterations).graph});
  for (std::uint32_t base = 2;; ++base) {
    const TorusParams params{3, base, 12};
    if (torus_host_capacity(params) >= n) {
      candidates.push_back({"3-D torus", build_torus(params, n)});
      break;
    }
  }
  for (std::uint32_t a = 2;; a += 2) {
    if (dragonfly_host_capacity(DragonflyParams{a}) >= n) {
      candidates.push_back({"dragonfly", build_dragonfly(DragonflyParams{a}, n)});
      break;
    }
  }
  for (std::uint32_t k = 2;; k += 2) {
    if (fattree_host_capacity(FatTreeParams{k}) >= n) {
      candidates.push_back({"fat-tree", build_fattree(FatTreeParams{k}, n)});
      break;
    }
  }

  print_header("Ablation: synthetic traffic, n=" + std::to_string(n) + ", " +
               std::to_string(bytes) + " B per rank (aggregate GB/s | mean hops)");
  std::vector<std::string> header{"pattern"};
  for (const auto& c : candidates) header.push_back(c.name);
  Table table(header);
  for (const TrafficPattern pattern : all_traffic_patterns()) {
    table.row().add(traffic_pattern_name(pattern));
    for (const auto& candidate : candidates) {
      Machine machine(candidate.graph, cli_sim_params());
      Xoshiro256 rng(bench_seed());
      const auto result = run_traffic(machine, pattern, bytes, rng);
      table.add(format_double(result.aggregate_bandwidth / 1e9, 1) + " | " +
                format_double(result.mean_hops, 2));
    }
  }
  table.print(std::cout);
  finish_obs(cli);
  return 0;
}

#pragma once
// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints the series of one paper figure as aligned
// tables on stdout and exits 0. Iteration budgets are laptop-sized by
// default and scale with environment knobs:
//   ORP_SA_ITERS    — simulated-annealing iterations (default per bench)
//   ORP_SIM_FRAC    — NAS iteration fraction in percent (default 10)
//   ORP_BENCH_SEED  — root seed (default 1)

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>

#include "common/cli.hpp"
#include "common/shutdown.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "obs/ledger.hpp"
#include "obs/sink.hpp"
#include "search/solver.hpp"
#include "sim/nas.hpp"
#include "sim/telemetry/telemetry.hpp"
#include "topo/attach.hpp"

namespace orp::bench {

inline std::uint64_t sa_iters(std::uint64_t fallback) {
  return static_cast<std::uint64_t>(env_int("ORP_SA_ITERS", static_cast<std::int64_t>(fallback)));
}

inline double sim_fraction() {
  return static_cast<double>(env_int("ORP_SIM_FRAC", 10)) / 100.0;
}

inline std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_int("ORP_BENCH_SEED", 1));
}

/// The --eval strategy parsed by parse_cli_with_obs (delta unless the
/// binary was invoked with --eval full). Benches that run SA read this into
/// their SolveOptions / AnnealOptions.
inline EvalStrategy& cli_eval_strategy() {
  static EvalStrategy strategy = EvalStrategy::kDelta;
  return strategy;
}

/// The --search-backend parsed by parse_cli_with_obs (serial unless the
/// binary was invoked with --search-backend pool).
inline SearchBackend& cli_search_backend() {
  static SearchBackend backend = SearchBackend::kSerial;
  return backend;
}

/// --replicas: ladder size K of the pool backend.
inline std::uint32_t& cli_replicas() {
  static std::uint32_t replicas = 4;
  return replicas;
}

/// --swap-interval: moves between replica-exchange barriers.
inline std::uint64_t& cli_swap_interval() {
  static std::uint64_t interval = 512;
  return interval;
}

/// The --fluid-solver parsed by parse_cli_with_obs (fast unless the
/// binary was invoked with --fluid-solver reference).
inline FluidSolver& cli_fluid_solver() {
  static FluidSolver solver = FluidSolver::kFast;
  return solver;
}

/// Default SimParams honoring the shared --fluid-solver selection; bench
/// binaries build their Machines from this instead of SimParams{}.
inline SimParams cli_sim_params() {
  SimParams params;
  params.fluid_solver = cli_fluid_solver();
  return params;
}

/// Copies the shared search CLI selections (--eval, --search-backend,
/// --replicas, --swap-interval) into `options`, attaching the global thread
/// pool when the pool backend is requested.
inline void apply_cli_search_options(SolveOptions& options) {
  options.eval = cli_eval_strategy();
  options.backend = cli_search_backend();
  options.replicas = cli_replicas();
  options.swap_interval = cli_swap_interval();
  if (options.backend == SearchBackend::kPool && !options.pool) {
    options.pool = &ThreadPool::global();
  }
}

/// Builds the paper's proposed topology for (n, r): m_opt switches, SA with
/// the 2-neighbor swing operation. Honors the shared search CLI flags, so
/// --search-backend pool turns every fig/abl bench's SA into
/// replica-exchange tempering at the same total move budget.
inline SolveResult build_proposed(std::uint32_t n, std::uint32_t r,
                                  std::uint64_t iterations,
                                  std::uint64_t seed = 0) {
  SolveOptions options;
  options.iterations = iterations;
  options.seed = seed ? seed : bench_seed();
  options.mode = MoveMode::kTwoNeighborSwing;
  apply_cli_search_options(options);
  return solve_orp(n, r, options);
}

/// Machine for a proposed topology: ranks follow the paper's depth-first
/// host order (§6.2.1). Honors --fluid-solver unless params are given.
inline Machine proposed_machine(const HostSwitchGraph& graph,
                                const SimParams& params = cli_sim_params()) {
  return Machine(graph, params, dfs_host_order(graph));
}

inline void print_header(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

/// Registers the shared telemetry options (--obs-out / --obs-summary) and
/// parses argv, then installs the requested sink. Every fig/abl binary
/// funnels through this so the options exist uniformly. Returns false on
/// --help (caller exits 0); throws std::invalid_argument like cli.parse.
inline bool parse_cli_with_obs(CliParser& cli, int argc, const char* const* argv) {
  // Ctrl-C / SIGTERM wind the SA search down gracefully (best-so-far is
  // kept) instead of killing the bench mid-run.
  install_shutdown_handlers();
  obs::add_cli_options(cli);
  cli.option("eval", "delta",
             "h-ASPL evaluation in SA: delta (incremental) or full "
             "(from-scratch per move)");
  cli.option("search-backend", "serial",
             "SA engine: serial (one chain) or pool (replica-exchange "
             "tempering on the thread pool; see docs/search.md)");
  cli.option("replicas", "4",
             "temperature-ladder size K of the pool search backend");
  cli.option("swap-interval", "512",
             "moves between replica-exchange barriers (pool backend)");
  cli.option("net-telemetry", "",
             "network telemetry spec: off, on, default, or knob=value list "
             "(e.g. flow_sample=4,link_steps=64 — see docs/telemetry.md)");
  cli.option("fluid-solver", "fast",
             "fluid max-min allocator: fast (aggregated, warm-started) or "
             "reference (from-scratch oracle — see docs/sim.md)");
  if (!cli.parse(argc, argv)) return false;
  obs::apply_cli(cli);
  if (const std::string spec = cli.get("net-telemetry"); !spec.empty()) {
    if (!apply_net_telemetry_spec(spec)) {
      throw std::invalid_argument("bad --net-telemetry spec: " + spec);
    }
  }
  // Start the run-ledger clock and remember argv; finish_obs appends the
  // record, so every bench invocation lands in $ORP_RUN_LEDGER.
  obs::ledger_capture_argv(argc, argv);
  cli_eval_strategy() = parse_eval_strategy(cli.get("eval"));
  cli_search_backend() = parse_search_backend(cli.get("search-backend"));
  const std::int64_t replicas = cli.get_int("replicas");
  if (replicas < 1) throw std::invalid_argument("--replicas must be >= 1");
  cli_replicas() = static_cast<std::uint32_t>(replicas);
  const std::int64_t interval = cli.get_int("swap-interval");
  if (interval < 1) throw std::invalid_argument("--swap-interval must be >= 1");
  cli_swap_interval() = static_cast<std::uint64_t>(interval);
  if (const std::string solver = cli.get("fluid-solver"); solver == "fast") {
    cli_fluid_solver() = FluidSolver::kFast;
  } else if (solver == "reference") {
    cli_fluid_solver() = FluidSolver::kReference;
  } else {
    throw std::invalid_argument("--fluid-solver must be fast or reference");
  }
  return true;
}

/// End-of-run counterpart: prints the metrics table when --obs-summary was
/// passed, flushes the active sink (closing JSONL traces), and appends this
/// run's record to the cross-run ledger.
inline void finish_obs(const CliParser& cli) {
  if (obs::cli_wants_summary(cli)) obs::print_summary(std::cout);
  obs::flush();
  obs::append_run_ledger();
}

/// Prints the table and, when ORP_CSV_DIR is set, also writes it to
/// "$ORP_CSV_DIR/<name>.csv" so the figure series can be re-plotted. The
/// directory is created (mkdir -p) when missing.
inline void emit_table(const Table& table, const std::string& name) {
  table.print(std::cout);
  if (const char* dir = std::getenv("ORP_CSV_DIR"); dir && *dir) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // write_csv_file reports failure
    const std::string path = std::string(dir) + "/" + name + ".csv";
    if (!table.write_csv_file(path)) {
      std::cerr << "warning: could not write " << path << "\n";
    }
  }
}

}  // namespace orp::bench

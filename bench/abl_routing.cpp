// Ablation — deterministic shortest-path routing vs per-flow ECMP.
//
// The paper's simulation (like most topology studies) assumes shortest
// paths; real deployments of irregular topologies use multipath to avoid
// hotspots. This bench measures how much per-flow ECMP buys each topology
// under contended traffic — high-diversity fabrics (fat-tree) gain the
// most, and the proposed topology's gain indicates how much headroom its
// path diversity leaves.

#include "bench_util.hpp"
#include "sim/traffic.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("abl_routing", "deterministic vs ECMP routing under contention");
  cli.option("hosts", "256", "hosts (square power of two)");
  cli.option("bytes", "4000000", "message size per rank");
  cli.option("iters", "0", "SA iterations (0 = ORP_SA_ITERS or 1500)");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes"));
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(1500);

  struct Candidate {
    std::string name;
    HostSwitchGraph graph;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"proposed r=12", build_proposed(n, 12, iterations).graph});
  for (std::uint32_t k = 2;; k += 2) {
    if (fattree_host_capacity(FatTreeParams{k}) >= n) {
      candidates.push_back({"fat-tree", build_fattree(FatTreeParams{k}, n)});
      break;
    }
  }
  for (std::uint32_t base = 2;; ++base) {
    const TorusParams params{3, base, 12};
    if (torus_host_capacity(params) >= n) {
      candidates.push_back({"3-D torus", build_torus(params, n)});
      break;
    }
  }

  print_header("Ablation: routing policy, n=" + std::to_string(n) + ", " +
               std::to_string(bytes) + " B per rank");
  Table table({"topology", "pattern", "deterministic GB/s", "ECMP GB/s", "ECMP gain%"});
  for (const auto& candidate : candidates) {
    SimParams det_params = cli_sim_params();
    SimParams ecmp_params = cli_sim_params();
    ecmp_params.routing = RoutingPolicy::kEcmp;
    Machine det(candidate.graph, det_params);
    Machine ecmp(candidate.graph, ecmp_params);
    for (const TrafficPattern pattern :
         {TrafficPattern::kPermutation, TrafficPattern::kTranspose,
          TrafficPattern::kBitComplement}) {
      Xoshiro256 rng_a(bench_seed()), rng_b(bench_seed());
      const auto det_result = run_traffic(det, pattern, bytes, rng_a);
      const auto ecmp_result = run_traffic(ecmp, pattern, bytes, rng_b);
      table.row()
          .add(candidate.name)
          .add(traffic_pattern_name(pattern))
          .add(det_result.aggregate_bandwidth / 1e9, 2)
          .add(ecmp_result.aggregate_bandwidth / 1e9, 2)
          .add(100.0 * (ecmp_result.aggregate_bandwidth /
                            det_result.aggregate_bandwidth -
                        1.0), 1);
    }
  }
  table.print(std::cout);
  finish_obs(cli);
  return 0;
}

// Fig. 6 — host distribution (hosts-per-switch histogram) at m = m_opt.
//
// The paper shows three panels: (n, r) = (128, 24), (1024, 12), (1024, 24).
// Reproduction targets:
//   * (128, 24): the solver returns the 8-switch clique construction with
//     switches filled to capacity (r - m + 1 = 17 hosts).
//   * (1024, 12) and (1024, 24): the optimized graph is *neither direct
//     nor indirect* — switches carry different numbers of hosts (the
//     paper's key observation in §5.3).

#include <vector>

#include "bench_util.hpp"
#include "hsg/bounds.hpp"

namespace {

using namespace orp;
using namespace orp::bench;

void run_panel(std::uint32_t n, std::uint32_t r, std::uint64_t iterations) {
  const SolveResult result = build_proposed(n, r, iterations, bench_seed());
  print_header("Fig. 6 panel: n=" + std::to_string(n) + ", r=" + std::to_string(r) +
               "  (m=" + std::to_string(result.switch_count) +
               (result.used_clique ? ", clique construction" : ", SA 2-neighbor swing") +
               ", h-ASPL=" + format_double(result.metrics.h_aspl) + ")");

  const auto dist = result.graph.host_distribution();
  Table table({"hosts/switch", "switches", "share%"});
  std::uint32_t distinct = 0;
  for (std::size_t k = 0; k < dist.size(); ++k) {
    if (dist[k] == 0) continue;
    ++distinct;
    table.row()
        .add(k)
        .add(static_cast<std::size_t>(dist[k]))
        .add(100.0 * dist[k] / result.graph.num_switches(), 1);
  }
  emit_table(table, "fig06_n" + std::to_string(n) + "_r" + std::to_string(r));
  std::cout << "distinct host counts: " << distinct
            << (distinct > 1 ? "  (neither direct nor indirect network)" : "")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fig06_host_distribution", "Fig. 6: host distribution at m_opt");
  cli.option("iters", "0", "SA iterations (0 = ORP_SA_ITERS or 2500)");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(2500);

  run_panel(128, 24, iterations);
  run_panel(1024, 12, iterations);
  run_panel(1024, 24, iterations);
  finish_obs(cli);
  return 0;
}

#pragma once
// Shared harness for the conventional-topology comparisons (Figs. 9-11).
//
// Each figure has four sub-plots; the harness reproduces all of them for
// one conventional topology vs the proposed topology at matching (n, r):
//   (a) performance — NAS kernel Mop/s under the flow-level simulator
//   (b) bandwidth   — partitioner edge cut for P = 2..16 (P=2: bisection)
//   (c) power       — total watts vs number of connectable hosts
//   (d) cost        — switch/electrical-cable/optical-cable breakdown
// plus the switch-count reduction the paper quotes in the text.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cost/evaluate.hpp"
#include "hsg/bounds.hpp"
#include "hsg/metrics.hpp"
#include "partition/partition.hpp"
#include "search/random_init.hpp"

namespace orp::bench {

struct ComparisonConfig {
  std::string figure;             ///< "Fig. 9" etc.
  std::string csv_prefix;         ///< "fig09" — names the CSV exports
  std::string baseline_name;      ///< "5-D torus (N=3, r=15)"
  std::uint32_t n = 1024;
  std::uint32_t radix = 15;       ///< shared by baseline and proposed
  /// Builds the baseline carrying exactly `hosts` (the figure's n).
  std::function<HostSwitchGraph(std::uint32_t hosts)> build_baseline;
  /// Baseline capacity for a target host count (0 = cannot scale there);
  /// drives the (c)/(d) connectable-hosts sweep.
  std::function<std::uint64_t(std::uint32_t hosts)> baseline_capacity;
  /// Kernels whose simulation the paper omitted for this figure.
  std::vector<NasKernel> skipped_kernels;
};

void run_comparison(const ComparisonConfig& config);

}  // namespace orp::bench

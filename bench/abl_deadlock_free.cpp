// Ablation — the price of deadlock-free routing.
//
// The h-ASPL the paper optimizes assumes shortest-path routing, but
// shortest paths on irregular topologies form cyclic channel dependencies
// (deadlock under wormhole/credit flow control). Up*/down* routing — the
// standard topology-agnostic fix ([14] in the paper) — restricts routes
// and inflates path lengths. This bench reports, per topology: whether
// shortest-path routing deadlocks, and the routed h-ASPL inflation of
// up*/down* (best root out of a small sample).

#include "bench_util.hpp"
#include "sim/updown.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("abl_deadlock_free", "shortest-path deadlock hazard and up*/down* inflation");
  cli.option("hosts", "256", "hosts");
  cli.option("iters", "0", "SA iterations (0 = ORP_SA_ITERS or 1500)");
  cli.option("roots", "8", "spanning-tree roots sampled for up*/down*");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  const auto roots = static_cast<std::uint32_t>(cli.get_int("roots"));
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(1500);

  struct Candidate {
    std::string name;
    HostSwitchGraph graph;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"proposed r=12", build_proposed(n, 12, iterations).graph});
  for (std::uint32_t base = 2;; ++base) {
    const TorusParams params{3, base, 12};
    if (torus_host_capacity(params) >= n) {
      candidates.push_back({"3-D torus", build_torus(params, n)});
      break;
    }
  }
  for (std::uint32_t a = 2;; a += 2) {
    if (dragonfly_host_capacity(DragonflyParams{a}) >= n) {
      candidates.push_back({"dragonfly", build_dragonfly(DragonflyParams{a}, n)});
      break;
    }
  }
  for (std::uint32_t k = 2;; k += 2) {
    if (fattree_host_capacity(FatTreeParams{k}) >= n) {
      candidates.push_back({"fat-tree", build_fattree(FatTreeParams{k}, n)});
      break;
    }
  }

  print_header("Ablation: deadlock freedom, n=" + std::to_string(n));
  Table table({"topology", "shortest h-ASPL", "SP deadlocks?", "up*/down* h-ASPL",
               "inflation%", "routed diameter"});
  for (const auto& candidate : candidates) {
    const auto& g = candidate.graph;
    const auto metrics = compute_host_metrics(g);
    const bool deadlocks = shortest_path_routing_has_cycle(g, RoutingTable(g));
    double best_haspl = std::numeric_limits<double>::infinity();
    std::uint32_t best_diameter = 0;
    const std::uint32_t step = std::max(1u, g.num_switches() / std::max(roots, 1u));
    for (SwitchId root = 0; root < g.num_switches(); root += step) {
      const UpDownRouting routing(g, root);
      const double haspl = routing.routed_haspl(g);
      if (haspl < best_haspl) {
        best_haspl = haspl;
        best_diameter = routing.routed_diameter(g);
      }
    }
    table.row()
        .add(candidate.name)
        .add(metrics.h_aspl, 3)
        .add(deadlocks ? "yes" : "no")
        .add(best_haspl, 3)
        .add(100.0 * (best_haspl / metrics.h_aspl - 1.0), 1)
        .add(static_cast<std::size_t>(best_diameter));
  }
  emit_table(table, "abl_deadlock_free");
  std::cout << "up*/down* is deadlock-free by construction; inflation is the\n"
               "latency price irregular topologies pay without virtual channels\n";
  finish_obs(cli);
  return 0;
}

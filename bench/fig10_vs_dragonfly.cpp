// Fig. 10 — dragonfly (a=8, r=15, m=264, capacity 1056) vs the proposed
// topology (n=1024, r=15, m=m_opt). Paper headline results: proposed wins
// performance by ~12% on average, +24% bisection bandwidth, and lower
// power and cost at every scale (the dragonfly's radix grows with size).

#include "bench_util.hpp"
#include "compare_common.hpp"
#include "topo/dragonfly.hpp"

namespace {

orp::DragonflyParams smallest_dragonfly(std::uint32_t hosts) {
  for (std::uint32_t a = 2;; a += 2) {
    const orp::DragonflyParams params{a};
    if (orp::dragonfly_host_capacity(params) >= hosts) return params;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("fig10_vs_dragonfly", "Fig. 10: proposed topology vs dragonfly");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;

  ComparisonConfig config;
  config.figure = "Fig. 10";
  config.csv_prefix = "fig10";
  config.baseline_name = "dragonfly (a=8, r=15)";
  config.n = 1024;
  config.radix = 15;
  config.build_baseline = [](std::uint32_t hosts) {
    return build_dragonfly(smallest_dragonfly(hosts), hosts,
                           AttachPolicy::kRoundRobin);
  };
  config.baseline_capacity = [](std::uint32_t hosts) {
    return dragonfly_host_capacity(smallest_dragonfly(hosts));
  };
  run_comparison(config);
  finish_obs(cli);
  return 0;
}

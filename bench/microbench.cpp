// Microbenchmarks over the repo's hot paths, emitting the canonical
// BENCH_microbench.json perf trajectory (schema: docs/bench.md).
//
// Families:
//   aspl       — h-ASPL kernels, scalar BFS vs bit-parallel 64-source
//   annealer   — full SA move + evaluate + accept/rollback cycles per
//                neighborhood mode (ns/op covers a fixed 64-iteration run)
//   search     — delta (incremental) vs full h-ASPL evaluation inside the
//                annealer at the headline n=256/r=12 config, plus the raw
//                evaluator apply+revert cycle, plus replica-exchange
//                scaling (search.parallel.anneal_k{1,4,8}, fixed total
//                move budget split across the ladder)
//   sim        — Machine fluid-engine communication phases (collectives)
//   partition  — multilevel partitioner stages: coarsening, FM refinement,
//                and the end-to-end k-way host+switch cut
//   fault      — resilience subsystem: seeded fault draws, degraded-graph
//                construction, and the full degraded h-ASPL evaluation
//
// `--quick` runs the CI-gated subset (small sizes, fewer repetitions);
// the full suite adds larger instances for local optimization work.
// Compare two runs with tools/bench_diff.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string_view>

#include "bench_util.hpp"
#include "fault/degraded.hpp"
#include "fault/model.hpp"
#include "hsg/bounds.hpp"
#include "obs/bench/microbench.hpp"
#include "partition/coarsen.hpp"
#include "partition/fm.hpp"
#include "partition/partition.hpp"
#include "search/annealer.hpp"
#include "search/operations.hpp"
#include "search/random_init.hpp"

namespace {

using namespace orp;
using namespace orp::obs::bench;

constexpr std::uint64_t kSetupSeed = 42;

/// Deterministic graph shared by setups: random connected host-switch
/// graph at the paper's m_opt for (n, r).
HostSwitchGraph setup_graph(std::uint32_t n, std::uint32_t r) {
  Xoshiro256 rng(kSetupSeed);
  return random_host_switch_graph(n, optimal_switch_count(n, r), r, rng);
}

/// The feasible divisor of n closest to m_opt — regular graphs (the swap
/// benchmark's search space) need every switch to carry exactly n/m hosts.
std::uint32_t regular_switch_count(std::uint32_t n, std::uint32_t r) {
  const std::uint32_t m_opt = optimal_switch_count(n, r);
  std::uint32_t best = 0;
  for (std::uint32_t m = 1; m <= n; ++m) {
    if (n % m != 0 || !random_init_feasible(n, m, r)) continue;
    if (best == 0 || std::abs(static_cast<std::int64_t>(m) - m_opt) <
                         std::abs(static_cast<std::int64_t>(best) - m_opt)) {
      best = m;
    }
  }
  return best;
}

void register_aspl(BenchRegistry& registry) {
  // scalar_bfs measures the detail:: reference kernel (unreachable from
  // production call sites) so the bit-parallel speedup stays quantified.
  struct Config {
    std::uint32_t n, r;
    bool scalar;
    const char* variant;
    bool quick;
  };
  for (const Config& c : {
           Config{256, 12, true, "scalar_bfs", true},
           Config{256, 12, false, "bit_parallel", true},
           Config{1024, 24, true, "scalar_bfs", false},
           Config{1024, 24, false, "bit_parallel", false},
       }) {
    registry.add({
        "aspl." + std::string(c.variant) + ".n" + std::to_string(c.n) + "_r" +
            std::to_string(c.r),
        "aspl",
        [c]() -> BenchOp {
          auto graph = std::make_shared<HostSwitchGraph>(setup_graph(c.n, c.r));
          return [graph, scalar = c.scalar] {
            const HostMetrics m =
                scalar ? detail::compute_host_metrics_scalar(*graph)
                       : compute_host_metrics(*graph, AsplKernel::kBitParallel);
            do_not_optimize(m.total_length);
          };
        },
        c.quick,
    });
  }
}

void register_annealer(BenchRegistry& registry) {
  // Each op is one anneal() call with a fixed 64-iteration budget and
  // pinned temperatures (auto-calibration off), i.e. 64 move + incremental
  // evaluation + accept/rollback cycles plus one initial evaluation.
  constexpr std::uint64_t kIters = 64;
  struct Config {
    std::uint32_t n, r;
    MoveMode mode;
    const char* variant;
    bool quick;
  };
  for (const Config& c : {
           Config{128, 12, MoveMode::kSwap, "swap", true},
           Config{128, 12, MoveMode::kSwing, "swing", true},
           Config{128, 12, MoveMode::kTwoNeighborSwing, "two_neighbor_swing", true},
           Config{512, 12, MoveMode::kTwoNeighborSwing, "two_neighbor_swing", false},
       }) {
    registry.add({
        "annealer." + std::string(c.variant) + ".n" + std::to_string(c.n) +
            "_r" + std::to_string(c.r) + "_it" + std::to_string(kIters),
        "annealer",
        [c]() -> BenchOp {
          // Swap explores regular graphs only; start it from one.
          Xoshiro256 rng(kSetupSeed);
          auto graph = std::make_shared<HostSwitchGraph>(
              c.mode == MoveMode::kSwap
                  ? random_regular_host_switch_graph(
                        c.n, regular_switch_count(c.n, c.r), c.r, rng)
                  : random_host_switch_graph(
                        c.n, optimal_switch_count(c.n, c.r), c.r, rng));
          return [graph, mode = c.mode] {
            AnnealOptions options;
            options.iterations = kIters;
            options.mode = mode;
            options.seed = kSetupSeed;
            options.initial_temperature = 0.05;
            options.final_temperature = 0.005;
            const AnnealResult result = anneal(*graph, options);
            do_not_optimize(result.evaluations);
          };
        },
        c.quick,
    });
  }
}

void register_search_delta(BenchRegistry& registry) {
  // The tentpole claim: >= 5x annealer move-eval throughput at n=256/r=12
  // versus the committed baseline, whose annealer evaluated every move with
  // a from-scratch scalar BFS (series aspl.scalar_bfs.n256_r12, the pre-
  // delta per-move cost). swap_cycle below is the new per-move cost; the
  // anneal_full/anneal_delta pair isolates what the delta evaluator adds on
  // top of the (also new) always-bit-parallel kernel routing, on otherwise
  // identical 64-iteration runs (and the determinism test asserts both walk
  // the exact same trajectory).
  constexpr std::uint64_t kIters = 64;
  struct Config {
    std::uint32_t n, r;
    EvalStrategy eval;
    const char* variant;
    bool quick;
  };
  for (const Config& c : {
           Config{256, 12, EvalStrategy::kFull, "anneal_full", true},
           Config{256, 12, EvalStrategy::kDelta, "anneal_delta", true},
           Config{512, 12, EvalStrategy::kFull, "anneal_full", false},
           Config{512, 12, EvalStrategy::kDelta, "anneal_delta", false},
       }) {
    registry.add({
        "search.delta_eval." + std::string(c.variant) + ".n" +
            std::to_string(c.n) + "_r" + std::to_string(c.r) + "_it" +
            std::to_string(kIters),
        "search",
        [c]() -> BenchOp {
          auto graph = std::make_shared<HostSwitchGraph>(setup_graph(c.n, c.r));
          return [graph, eval = c.eval] {
            AnnealOptions options;
            options.iterations = kIters;
            options.mode = MoveMode::kTwoNeighborSwing;
            options.eval = eval;
            options.seed = kSetupSeed;
            options.initial_temperature = 0.05;
            options.final_temperature = 0.005;
            const AnnealResult result = anneal(*graph, options);
            do_not_optimize(result.evaluations);
          };
        },
        c.quick,
    });
  }

  // Raw evaluator cost without the annealer around it: one op = apply a
  // swap delta (incremental repair) and reject it via revert_last (undo-log
  // replay) — exactly the annealer's rejected-move path. Ops rotate through
  // a few hundred distinct pre-proposed deltas so branch predictors and
  // caches see the annealer's mix, not one memorized move.
  registry.add({
      "search.delta_eval.swap_cycle.n256_r12",
      "search",
      []() -> BenchOp {
        auto graph = std::make_shared<HostSwitchGraph>(setup_graph(256, 12));
        std::vector<std::pair<SwitchId, SwitchId>> edges;
        for (SwitchId s = 0; s < graph->num_switches(); ++s) {
          for (SwitchId t : graph->neighbors(s)) {
            if (s < t) edges.emplace_back(s, t);
          }
        }
        Xoshiro256 rng(kSetupSeed);
        auto deltas = std::make_shared<std::vector<GraphDelta>>();
        for (int i = 0; i < 512; ++i) {
          if (const auto move = propose_swap(*graph, edges, rng)) {
            deltas->push_back(delta_of(*move));
          }
        }
        auto eval = std::make_shared<DeltaHasplEvaluator>(*graph);
        auto next = std::make_shared<std::size_t>(0);
        return [graph, eval, deltas, next] {
          const GraphDelta& delta = (*deltas)[*next];
          *next = (*next + 1) % deltas->size();
          do_not_optimize(eval->apply(delta).total_length);
          eval->revert_last(*graph);
        };
      },
      true,
  });
}

void register_search_parallel(BenchRegistry& registry) {
  // Replica-exchange scaling: one op = a full parallel_anneal() with a
  // FIXED TOTAL budget of 2048 moves split evenly across K rungs, fanned
  // out over the global thread pool. On a k-core runner anneal_k8 should
  // approach k-fold less wall time than anneal_k1 (equal total moves);
  // single-core runners still record the exchange-protocol overhead.
  // anneal_k1 is bit-identical to a serial anneal() of the same budget.
  constexpr std::uint64_t kTotalMoves = 2048;
  struct Config {
    std::uint32_t n, r, replicas;
    bool quick;
  };
  for (const Config& c : {
           Config{256, 12, 1, true},
           Config{256, 12, 4, true},
           Config{256, 12, 8, true},
           Config{512, 12, 1, false},
           Config{512, 12, 4, false},
           Config{512, 12, 8, false},
       }) {
    registry.add({
        "search.parallel.anneal_k" + std::to_string(c.replicas) + ".n" +
            std::to_string(c.n) + "_r" + std::to_string(c.r),
        "search",
        [c]() -> BenchOp {
          auto graph = std::make_shared<HostSwitchGraph>(setup_graph(c.n, c.r));
          return [graph, replicas = c.replicas] {
            ParallelAnnealOptions options;
            options.base.iterations = kTotalMoves / replicas;
            options.base.mode = MoveMode::kTwoNeighborSwing;
            options.base.seed = kSetupSeed;
            options.base.initial_temperature = 0.05;
            options.base.final_temperature = 0.005;
            options.base.pool = &ThreadPool::global();
            options.replicas = replicas;
            options.swap_interval = 64;
            const ParallelAnnealResult result = parallel_anneal(*graph, options);
            do_not_optimize(result.result.evaluations);
          };
        },
        c.quick,
    });
  }
}

void register_sim(BenchRegistry& registry) {
  struct Config {
    std::uint32_t n, r;
    const char* collective;
    bool quick;
    bool pin_reference;
  };
  // The plain sim.* series honor --fluid-solver (fast by default); the
  // sim.reference.* series pin the oracle so tools/bench_diff can show
  // the fast solver's speedup side by side. The reference series live
  // under their own prefix so CI's "sim.alltoall.n256" telemetry-overhead
  // filter keeps matching only the production solver.
  for (const Config& c : {
           Config{64, 12, "alltoall", true, false},
           Config{64, 12, "allreduce", true, false},
           Config{256, 12, "allreduce", false, false},
           Config{256, 12, "alltoall", false, false},
           Config{64, 12, "alltoall", true, true},
           Config{256, 12, "alltoall", false, true},
       }) {
    registry.add({
        std::string("sim.") + (c.pin_reference ? "reference." : "") +
            c.collective + ".n" + std::to_string(c.n) + "_r" +
            std::to_string(c.r),
        "sim",
        [c]() -> BenchOp {
          auto graph = std::make_shared<HostSwitchGraph>(setup_graph(c.n, c.r));
          SimParams params = orp::bench::cli_sim_params();
          if (c.pin_reference) params.fluid_solver = FluidSolver::kReference;
          auto machine = std::make_shared<Machine>(*graph, params,
                                                   dfs_host_order(*graph));
          const bool alltoall = std::string_view(c.collective) == "alltoall";
          return [machine, alltoall] {
            machine->reset();
            const double elapsed =
                alltoall ? machine->alltoall(1024) : machine->allreduce(4096);
            do_not_optimize(elapsed);
          };
        },
        c.quick,
    });
  }
}

void register_partition(BenchRegistry& registry) {
  struct Config {
    std::uint32_t n, r;
    bool quick;
  };
  for (const Config& c : {Config{512, 12, true}, Config{2048, 24, false}}) {
    const std::string size =
        ".n" + std::to_string(c.n) + "_r" + std::to_string(c.r);
    registry.add({
        "partition.coarsen" + size,
        "partition",
        [c]() -> BenchOp {
          auto csr = std::make_shared<CsrGraph>(
              csr_from_host_switch_graph(setup_graph(c.n, c.r)));
          return [csr] {
            Xoshiro256 rng(kSetupSeed);
            const auto chain = coarsen_chain(*csr, rng);
            do_not_optimize(chain.size());
          };
        },
        c.quick,
    });
    registry.add({
        "partition.fm_refine" + size,
        "partition",
        [c]() -> BenchOp {
          auto csr = std::make_shared<CsrGraph>(
              csr_from_host_switch_graph(setup_graph(c.n, c.r)));
          // A deliberately bad (random balanced) bisection: FM gets real
          // work every op, and the initial vector restores each call.
          auto side0 = std::make_shared<std::vector<std::uint8_t>>(
              csr->num_vertices());
          Xoshiro256 rng(kSetupSeed);
          for (std::size_t v = 0; v < side0->size(); ++v) {
            (*side0)[v] = static_cast<std::uint8_t>((v ^ rng()) & 1);
          }
          const std::uint64_t total = csr->total_vertex_weight();
          return [csr, side0, total] {
            std::vector<std::uint8_t> side = *side0;
            FmOptions options;
            options.max_side_weight[0] = total / 2 + total / 20 + 1;
            options.max_side_weight[1] = options.max_side_weight[0];
            const std::uint64_t cut = fm_refine(*csr, side, options);
            do_not_optimize(cut);
          };
        },
        c.quick,
    });
    registry.add({
        "partition.kway8" + size,
        "partition",
        [c]() -> BenchOp {
          auto graph = std::make_shared<HostSwitchGraph>(setup_graph(c.n, c.r));
          return [graph] {
            const std::uint64_t cut = host_switch_cut(*graph, 8, kSetupSeed);
            do_not_optimize(cut);
          };
        },
        c.quick,
    });
  }
}

void register_fault(BenchRegistry& registry) {
  // Ops rotate the spec seed so every draw/apply/eval sees a fresh fault
  // pattern (same mix the Monte-Carlo sweep produces) instead of a
  // memorized one.
  auto rotating_spec = [](std::shared_ptr<std::uint64_t> counter) {
    FaultSpec spec;
    spec.link_failure_rate = 0.05;
    spec.switch_failure_rate = 0.02;
    spec.cabinet_outage_rate = 0.02;
    spec.switches_per_cabinet = 4;
    spec.seed = ++*counter;
    return spec;
  };
  struct Config {
    std::uint32_t n, r;
    bool quick;
  };
  for (const Config& c : {Config{256, 12, true}, Config{1024, 24, false}}) {
    const std::string size =
        ".n" + std::to_string(c.n) + "_r" + std::to_string(c.r);
    registry.add({
        "fault.draw" + size,
        "fault",
        [c, rotating_spec]() -> BenchOp {
          auto graph = std::make_shared<HostSwitchGraph>(setup_graph(c.n, c.r));
          auto counter = std::make_shared<std::uint64_t>(kSetupSeed);
          return [graph, counter, rotating_spec] {
            const FaultSet faults = draw_faults(*graph, rotating_spec(counter));
            do_not_optimize(faults.fingerprint());
          };
        },
        c.quick,
    });
    registry.add({
        "fault.apply" + size,
        "fault",
        [c, rotating_spec]() -> BenchOp {
          auto graph = std::make_shared<HostSwitchGraph>(setup_graph(c.n, c.r));
          auto counter = std::make_shared<std::uint64_t>(kSetupSeed);
          return [graph, counter, rotating_spec] {
            const DegradedGraph degraded =
                apply_faults(*graph, draw_faults(*graph, rotating_spec(counter)));
            do_not_optimize(degraded.removed_links);
          };
        },
        c.quick,
    });
    registry.add({
        "fault.degraded_eval" + size,
        "fault",
        [c, rotating_spec]() -> BenchOp {
          auto graph = std::make_shared<HostSwitchGraph>(setup_graph(c.n, c.r));
          auto counter = std::make_shared<std::uint64_t>(kSetupSeed);
          return [graph, counter, rotating_spec] {
            const ResilienceReport report = evaluate_degraded(
                *graph, draw_faults(*graph, rotating_spec(counter)));
            do_not_optimize(report.connected_pairs);
          };
        },
        c.quick,
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  using orp::bench::finish_obs;
  using orp::bench::parse_cli_with_obs;

  CliParser cli("microbench",
                "hot-path microbenchmarks emitting BENCH_microbench.json");
  cli.flag("quick", "CI subset: small sizes, 5 repetitions, 10ms repetitions");
  cli.flag("list", "list benchmark names and exit");
  cli.option("filter", "", "run only benchmarks whose name contains this substring");
  cli.option("out", "BENCH_microbench.json", "output JSON path");
  cli.option("repetitions", "0", "measured repetitions per benchmark (0 = mode default)");
  cli.option("warmup", "0", "discarded warmup repetitions (0 = mode default)");
  cli.option("min-rep-ms", "0", "minimum milliseconds per repetition (0 = mode default)");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;

  BenchRegistry& registry = BenchRegistry::global();
  register_aspl(registry);
  register_annealer(registry);
  register_search_delta(registry);
  register_search_parallel(registry);
  register_sim(registry);
  register_partition(registry);
  register_fault(registry);

  RunOptions options;
  options.quick = cli.has("quick");
  options.filter = cli.get("filter");
  options.repetitions = options.quick ? 5 : 12;
  options.warmup = options.quick ? 1 : 2;
  options.min_rep_seconds = options.quick ? 0.010 : 0.050;
  if (cli.get_int("repetitions") > 0) {
    options.repetitions = static_cast<int>(cli.get_int("repetitions"));
  }
  if (cli.get_int("warmup") > 0) {
    options.warmup = static_cast<int>(cli.get_int("warmup"));
  }
  if (cli.get_int("min-rep-ms") > 0) {
    options.min_rep_seconds = static_cast<double>(cli.get_int("min-rep-ms")) / 1e3;
  }

  if (cli.has("list")) {
    for (const BenchmarkDef& def : registry.benchmarks()) {
      if (options.quick && !def.quick) continue;
      std::cout << def.name << (def.quick ? "" : "  [full]") << "\n";
    }
    return 0;
  }

  orp::bench::print_header(std::string("Microbenchmarks (") +
                           (options.quick ? "quick" : "full") + " suite)");
  options.progress = &std::cerr;
  const BenchReport report = registry.run(options);

  Table table({"benchmark", "family", "op/rep", "min ns/op", "median ns/op",
               "mad ns/op", "ops/s", "cycles/op", "ipc"});
  for (const BenchEntry& e : report.entries) {
    table.row()
        .add(e.name)
        .add(e.family)
        .add(static_cast<std::size_t>(e.iters_per_rep))
        .add(e.wall.min_ns, 1)
        .add(e.wall.median_ns, 1)
        .add(e.wall.mad_ns, 1)
        .add(e.wall.ops_per_sec, 2)
        .add(e.hw.valid ? format_double(e.hw.cycles, 0) : "-")
        .add(e.hw.valid ? format_double(e.hw.ipc, 2) : "-");
  }
  orp::bench::emit_table(table, "microbench");
  std::cout << "counters: " << report.counters_source
            << "  peak rss: " << report.peak_rss_kb << " kB\n";

  const std::string out = cli.get("out");
  std::ofstream file(out);
  if (!file) {
    std::cerr << "error: cannot write " << out << "\n";
    return 1;
  }
  file << report_to_json(report);
  std::cout << "wrote " << report.entries.size() << " benchmark series to "
            << out << "\n";

  // Make the run findable later: which suite, how many series, where the
  // BENCH json went.
  orp::obs::ledger_note("suite", options.quick ? "quick" : "full");
  orp::obs::ledger_note("series",
                        static_cast<std::int64_t>(report.entries.size()));
  orp::obs::ledger_note("counters_source", report.counters_source);
  orp::obs::ledger_artifact(out);

  finish_obs(cli);
  return 0;
}

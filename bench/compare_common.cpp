#include "compare_common.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>

namespace orp::bench {
namespace {

// Cost/power of a proposed-topology network for `hosts` endpoints at the
// given radix. The sweep only needs switch counts and cable lengths, which
// SA does not change (it rewires, never adds hardware), so a random
// saturated graph at m_opt stands in for the optimized one.
NetworkCostReport proposed_cost_point(std::uint32_t hosts, std::uint32_t radix,
                                      std::uint64_t seed) {
  const std::uint32_t m_opt = optimal_switch_count(hosts, radix);
  Xoshiro256 rng(seed);
  const HostSwitchGraph g = random_host_switch_graph(hosts, m_opt, radix, rng);
  return evaluate_network_cost(g);
}

}  // namespace

void run_comparison(const ComparisonConfig& config) {
  const std::uint64_t iterations = sa_iters(2500);
  const double fraction = sim_fraction();

  print_header(config.figure + ": " + config.baseline_name +
               " vs proposed topology (n=" + std::to_string(config.n) +
               ", r=" + std::to_string(config.radix) + ")");

  // ---- build both topologies ------------------------------------------
  const HostSwitchGraph baseline = config.build_baseline(config.n);
  const SolveResult proposed = build_proposed(config.n, config.radix, iterations);
  const HostMetrics base_metrics = compute_host_metrics(baseline);
  const double reduction =
      100.0 * (1.0 - static_cast<double>(proposed.switch_count) /
                         baseline.num_switches());

  Table summary({"topology", "switches", "h-ASPL", "diameter", "links"});
  summary.row()
      .add(config.baseline_name)
      .add(static_cast<std::size_t>(baseline.num_switches()))
      .add(base_metrics.h_aspl)
      .add(static_cast<std::size_t>(base_metrics.diameter))
      .add(baseline.num_switch_edges());
  summary.row()
      .add("proposed (m_opt)")
      .add(static_cast<std::size_t>(proposed.switch_count))
      .add(proposed.metrics.h_aspl)
      .add(static_cast<std::size_t>(proposed.metrics.diameter))
      .add(proposed.graph.num_switch_edges());
  emit_table(summary, config.csv_prefix + "_summary");
  std::cout << "switch-count reduction: " << format_double(reduction, 1)
            << "%  (paper: 20%/27%/43% for torus/dragonfly/fat-tree)\n";

  // ---- (a) performance --------------------------------------------------
  std::cout << "\n(a) NAS performance (flow-level simulation, "
            << format_double(fraction * 100, 0) << "% of class iterations)\n";
  Machine base_machine(baseline, cli_sim_params());
  Machine prop_machine = proposed_machine(proposed.graph);
  NasOptions nas_options;
  nas_options.iteration_fraction = fraction;

  Table perf({"kernel", "baseline Mop/s", "proposed Mop/s", "proposed/baseline"});
  double ratio_sum = 0.0;
  int ratio_count = 0;
  for (const NasKernel kernel : all_nas_kernels()) {
    if (std::find(config.skipped_kernels.begin(), config.skipped_kernels.end(),
                  kernel) != config.skipped_kernels.end()) {
      perf.row().add(nas_kernel_name(kernel)).add("-").add("-").add("(omitted, as in the paper)");
      continue;
    }
    const NasResult base_result = run_nas_kernel(base_machine, kernel, nas_options);
    const NasResult prop_result = run_nas_kernel(prop_machine, kernel, nas_options);
    const double ratio = prop_result.mops_per_second / base_result.mops_per_second;
    ratio_sum += ratio;
    ++ratio_count;
    perf.row()
        .add(base_result.name)
        .add(base_result.mops_per_second, 1)
        .add(prop_result.mops_per_second, 1)
        .add(ratio, 3);
  }
  emit_table(perf, config.csv_prefix + "_a_performance");
  std::cout << "average performance ratio: "
            << format_double(ratio_sum / ratio_count, 3)
            << "  (paper: 1.22 torus / 1.12 dragonfly / 1.84 fat-tree)\n";

  // ---- (b) bandwidth -----------------------------------------------------
  std::cout << "\n(b) bandwidth: partitioner edge cut, P = 2..16\n";
  Table bandwidth({"P", "baseline cut", "proposed cut", "proposed/baseline"});
  double bisection_ratio = 0.0;
  for (std::uint32_t parts = 2; parts <= 16; ++parts) {
    const std::uint64_t base_cut = host_switch_cut(baseline, parts, bench_seed());
    const std::uint64_t prop_cut =
        host_switch_cut(proposed.graph, parts, bench_seed());
    const double ratio = static_cast<double>(prop_cut) / static_cast<double>(base_cut);
    if (parts == 2) bisection_ratio = ratio;
    bandwidth.row()
        .add(static_cast<std::size_t>(parts))
        .add(base_cut)
        .add(prop_cut)
        .add(ratio, 3);
  }
  emit_table(bandwidth, config.csv_prefix + "_b_bandwidth");
  std::cout << "bisection bandwidth ratio (P=2): "
            << format_double(bisection_ratio, 3)
            << "  (paper: +31% torus / +24% dragonfly / -53%-ish fat-tree)\n";

  // ---- (c) power vs connectable hosts ------------------------------------
  std::cout << "\n(c) power consumption vs number of connectable hosts\n";
  std::vector<std::uint32_t> targets{128, 256, 512, 768, 1024};
  const std::uint64_t cap_at_n = config.baseline_capacity(config.n);
  if (cap_at_n > 1024 && cap_at_n < 4096) {
    targets.push_back(static_cast<std::uint32_t>(cap_at_n));
  }
  targets.push_back(1536);
  targets.push_back(2048);
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

  Table power({"hosts", "baseline W", "baseline switches", "proposed W",
               "proposed switches"});
  for (const std::uint32_t hosts : targets) {
    power.row().add(static_cast<std::size_t>(hosts));
    if (config.baseline_capacity(hosts) >= hosts) {
      const HostSwitchGraph g = config.build_baseline(hosts);
      const auto report = evaluate_network_cost(g);
      power.add(report.total_power_w(), 0).add(static_cast<std::size_t>(g.num_switches()));
      const auto prop_report =
          proposed_cost_point(hosts, g.radix(), bench_seed() + hosts);
      power.add(prop_report.total_power_w(), 0)
          .add(static_cast<std::size_t>(prop_report.switches));
    } else {
      power.add("-").add("-");
      const auto prop_report =
          proposed_cost_point(hosts, config.radix, bench_seed() + hosts);
      power.add(prop_report.total_power_w(), 0)
          .add(static_cast<std::size_t>(prop_report.switches));
    }
  }
  emit_table(power, config.csv_prefix + "_c_power");

  // ---- (d) cost breakdown -------------------------------------------------
  std::cout << "\n(d) cost breakdown at n=" << config.n << " (USD)\n";
  const auto base_cost = evaluate_network_cost(baseline);
  const auto prop_cost = evaluate_network_cost(proposed.graph);
  Table cost({"topology", "switch $", "electrical-cable $", "optical-cable $",
              "total $", "cables(e/o)"});
  auto cost_row = [&](const std::string& name, const NetworkCostReport& report) {
    cost.row()
        .add(name)
        .add(report.switch_cost_usd, 0)
        .add(report.electrical_cable_cost_usd, 0)
        .add(report.optical_cable_cost_usd, 0)
        .add(report.total_cost_usd(), 0)
        .add(std::to_string(report.electrical_cables) + "/" +
             std::to_string(report.optical_cables));
  };
  cost_row(config.baseline_name, base_cost);
  cost_row("proposed (m_opt)", prop_cost);
  emit_table(cost, config.csv_prefix + "_d_cost");
  std::cout << "switch cost change: "
            << format_double(100.0 * (prop_cost.switch_cost_usd /
                                          base_cost.switch_cost_usd -
                                      1.0), 1)
            << "%   cable cost change: "
            << format_double(100.0 * (prop_cost.cable_cost_usd() /
                                          base_cost.cable_cost_usd() -
                                      1.0), 1)
            << "%   total cost change: "
            << format_double(100.0 * (prop_cost.total_cost_usd() /
                                          base_cost.total_cost_usd() -
                                      1.0), 1)
            << "%\n";
}

}  // namespace orp::bench

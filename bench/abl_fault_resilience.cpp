// Ablation — Monte-Carlo fault resilience (the src/fault subsystem).
//
// Sweeps seeded fault specs (i.i.d. link failures, switch failures, and
// cabinet-correlated outages) over K trials per point and reports the
// percentile degradation curves — h-ASPL inflation over the connected
// pairs, partition probability, reachable-pair fraction — for the proposed
// SA topology vs the three conventional baselines at matched host counts.
// A second table drives the fluid simulator with mid-run link failures and
// reports graceful-degradation statistics (retries, failed flows, slowdown).

#include <cmath>

#include "bench_util.hpp"
#include "fault/events.hpp"
#include "fault/model.hpp"
#include "fault/montecarlo.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("abl_fault_resilience",
                "percentile degradation curves under seeded fault models");
  cli.option("hosts", "256", "hosts");
  cli.option("trials", "40", "Monte-Carlo trials per (topology, spec) point");
  cli.option("iters", "0", "SA iterations (0 = ORP_SA_ITERS or 1500)");
  cli.option("cabinet", "4", "switches per cabinet for correlated outages");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  const auto trials = static_cast<std::uint32_t>(cli.get_int("trials"));
  const auto per_cabinet = static_cast<std::uint32_t>(cli.get_int("cabinet"));
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(1500);

  struct Candidate {
    std::string name;
    HostSwitchGraph graph;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"proposed r=12", build_proposed(n, 12, iterations).graph});
  for (std::uint32_t base = 2;; ++base) {
    const TorusParams params{3, base, 12};
    if (torus_host_capacity(params) >= n) {
      candidates.push_back({"3-D torus", build_torus(params, n)});
      break;
    }
  }
  for (std::uint32_t a = 2;; a += 2) {
    if (dragonfly_host_capacity(DragonflyParams{a}) >= n) {
      candidates.push_back({"dragonfly", build_dragonfly(DragonflyParams{a}, n)});
      break;
    }
  }
  for (std::uint32_t k = 2;; k += 2) {
    if (fattree_host_capacity(FatTreeParams{k}) >= n) {
      candidates.push_back({"fat-tree", build_fattree(FatTreeParams{k}, n)});
      break;
    }
  }

  struct Scenario {
    std::string name;
    FaultSpec spec;
  };
  std::vector<Scenario> scenarios;
  for (const double rate : {0.01, 0.05, 0.10}) {
    FaultSpec spec;
    spec.link_failure_rate = rate;
    spec.seed = bench_seed();
    scenarios.push_back({"links " + format_double(100.0 * rate, 0) + "%", spec});
  }
  {
    FaultSpec spec;
    spec.switch_failure_rate = 0.05;
    spec.seed = bench_seed();
    scenarios.push_back({"switches 5%", spec});
  }
  {
    FaultSpec spec;
    spec.cabinet_outage_rate = 0.10;
    spec.switches_per_cabinet = per_cabinet;
    spec.seed = bench_seed();
    scenarios.push_back({"cabinets 10%", spec});
  }

  print_header("Ablation: Monte-Carlo fault resilience, n=" + std::to_string(n) +
               ", " + std::to_string(trials) + " trials per point");
  Table table({"topology", "scenario", "partition%", "p50 infl.%", "p90 infl.%",
               "max infl.%", "reach frac", "dead hosts%"});
  for (const auto& candidate : candidates) {
    for (const auto& scenario : scenarios) {
      const ResilienceCurvePoint point =
          sweep_point(candidate.graph, scenario.spec, trials);
      const auto pct = [](double inflation) {
        // Partitioned trials have infinite inflation; clamp for the table
        // (the partition% column carries that information).
        if (!std::isfinite(inflation)) return std::string("inf");
        return format_double(100.0 * (inflation - 1.0), 2);
      };
      table.row()
          .add(candidate.name)
          .add(scenario.name)
          .add(100.0 * point.partitioned_trials / point.trials, 1)
          .add(pct(point.p50_haspl_inflation))
          .add(pct(point.p90_haspl_inflation))
          .add(pct(point.max_haspl_inflation))
          .add(point.mean_reachable_fraction, 3)
          .add(100.0 * point.mean_dead_host_fraction, 1);
    }
  }
  emit_table(table, "abl_fault_resilience");

  // Graceful degradation in the simulator: alltoall with link failures
  // striking mid-run. Healthy vs degraded completion time plus the retry /
  // failed-flow accounting from Machine::fault_stats().
  print_header("Simulator graceful degradation: alltoall, mid-run link faults");
  Table sim_table({"topology", "healthy ms", "degraded ms", "slowdown%",
                   "events", "rebuilds", "retried", "failed"});
  for (const auto& candidate : candidates) {
    Machine healthy(candidate.graph, cli_sim_params(), dfs_host_order(candidate.graph));
    const double t_healthy = healthy.alltoall(4096);

    FaultSpec spec;
    spec.link_failure_rate = 0.02;
    spec.seed = bench_seed();
    const FaultSet faults = draw_faults(candidate.graph, spec);
    // Spread the strikes across the healthy run's duration so reroutes
    // happen while flows are in flight.
    const auto events =
        schedule_fault_events(faults, 0.0, t_healthy, bench_seed());

    Machine degraded(candidate.graph, cli_sim_params(), dfs_host_order(candidate.graph));
    degraded.inject_faults(events);
    const double t_degraded = degraded.alltoall(4096);
    const FaultStats& stats = degraded.fault_stats();
    sim_table.row()
        .add(candidate.name)
        .add(1e3 * t_healthy, 3)
        .add(1e3 * t_degraded, 3)
        .add(100.0 * (t_degraded / t_healthy - 1.0), 1)
        .add(static_cast<std::size_t>(stats.events_applied))
        .add(static_cast<std::size_t>(stats.routing_rebuilds))
        .add(static_cast<std::size_t>(stats.flows_retried))
        .add(static_cast<std::size_t>(stats.flows_failed));
  }
  emit_table(sim_table, "abl_fault_resilience_sim");

  finish_obs(cli);
  return 0;
}

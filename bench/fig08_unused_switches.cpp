// Fig. 8 — host distribution of a host-switch graph with unused switches
// ((n, m, r) = (1024, 1024, 24)).
//
// With m far above m_opt, the optimized non-regular graph parks most
// switches with zero hosts ("otiose switches"); the paper reports over 70%
// of switches carrying no hosts. A regular graph at the same m is forced
// to put one host on every switch and pays for it in h-ASPL (§5.3 case 1).

#include "bench_util.hpp"
#include "hsg/bounds.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::bench;

  CliParser cli("fig08_unused_switches",
                "Fig. 8: host distribution with unused switches (n=m=1024, r=24)");
  cli.option("iters", "0", "SA iterations (0 = ORP_SA_ITERS or 20000)");
  if (!parse_cli_with_obs(cli, argc, argv)) return 0;
  std::uint64_t iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  if (iterations == 0) iterations = sa_iters(20000);

  const std::uint32_t n = 1024, m = 1024, r = 24;
  SolveOptions options;
  options.iterations = iterations;
  options.seed = bench_seed();
  options.mode = MoveMode::kTwoNeighborSwing;
  options.force_switch_count = m;
  apply_cli_search_options(options);
  const SolveResult result = solve_orp(n, r, options);

  print_header("Fig. 8: (n, m, r) = (1024, 1024, 24), SA 2-neighbor swing");
  std::cout << "h-ASPL = " << format_double(result.metrics.h_aspl)
            << "   (m_opt would be " << result.predicted_m_opt
            << ", Theorem-2 bound " << format_double(result.haspl_lower_bound)
            << ")\n";

  const auto dist = result.graph.host_distribution();
  Table table({"hosts/switch", "switches", "share%"});
  for (std::size_t k = 0; k < dist.size(); ++k) {
    if (dist[k] == 0) continue;
    table.row()
        .add(k)
        .add(static_cast<std::size_t>(dist[k]))
        .add(100.0 * dist[k] / m, 1);
  }
  emit_table(table, "fig08_host_distribution");
  std::cout << "switches with no hosts: " << dist[0] << " ("
            << format_double(100.0 * dist[0] / m, 1)
            << "% — paper reports over 70%)\n";
  finish_obs(cli);
  return 0;
}

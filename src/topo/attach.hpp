#pragma once
// Host-attachment policies (§6.2.1).
//
// The paper builds each conventional topology's switch fabric, then
// "sequentially connects hosts to switches until n becomes 1024"; for the
// proposed topology, host (MPI rank) slots are assigned "in depth-first
// order by using backtracking". The rank <-> host mapping matters for
// simulated application performance, so the policies are explicit and the
// abl_attachment bench compares them.

#include <cstdint>
#include <vector>

#include "hsg/host_switch_graph.hpp"

namespace orp {

enum class AttachPolicy {
  kRoundRobin,  ///< one host per switch per sweep (balanced; the default)
  kFillFirst,   ///< fill switch 0 to capacity, then switch 1, ...
};

/// Attaches hosts 0..n-1 (all currently detached) to switches of `g`
/// following `policy`, honoring per-switch free ports. Throws when the
/// fabric cannot carry n hosts.
void attach_hosts(HostSwitchGraph& g, AttachPolicy policy);

/// Total hosts the fabric can still accept (sum of free ports).
std::uint64_t host_capacity(const HostSwitchGraph& g);

/// Depth-first host ordering over the switch graph: a DFS from switch 0
/// lists each switch's attached hosts when the switch is first visited.
/// Element i is the host that MPI rank i should map to (§6.2.1's
/// "depth-first order using backtracking" for the proposed topology).
std::vector<HostId> dfs_host_order(const HostSwitchGraph& g);

}  // namespace orp

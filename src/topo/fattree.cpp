#include "topo/fattree.hpp"

#include "common/require.hpp"

namespace orp {

std::uint64_t fattree_switch_count(const FatTreeParams& params) {
  ORP_REQUIRE(params.k >= 2 && params.k % 2 == 0, "fat-tree K must be even and >= 2");
  return 5ull * params.k * params.k / 4;
}

std::uint64_t fattree_host_capacity(const FatTreeParams& params) {
  ORP_REQUIRE(params.k >= 2 && params.k % 2 == 0, "fat-tree K must be even and >= 2");
  return static_cast<std::uint64_t>(params.k) * params.k * params.k / 4;
}

HostSwitchGraph build_fattree(const FatTreeParams& params, std::uint32_t n,
                              AttachPolicy policy) {
  const std::uint32_t k = params.k;
  const std::uint32_t half = k / 2;
  const std::uint64_t m = fattree_switch_count(params);
  ORP_REQUIRE(n <= fattree_host_capacity(params), "too many hosts for this fat-tree");
  HostSwitchGraph g(n, static_cast<std::uint32_t>(m), k);

  const std::uint32_t edge_base = 0;
  const std::uint32_t aggr_base = half * k;   // K^2/2 edge switches first
  const std::uint32_t core_base = k * k;      // then K^2/2 aggregation
  auto edge_id = [&](std::uint32_t pod, std::uint32_t i) {
    return static_cast<SwitchId>(edge_base + pod * half + i);
  };
  auto aggr_id = [&](std::uint32_t pod, std::uint32_t i) {
    return static_cast<SwitchId>(aggr_base + pod * half + i);
  };
  auto core_id = [&](std::uint32_t group, std::uint32_t i) {
    return static_cast<SwitchId>(core_base + group * half + i);
  };

  for (std::uint32_t pod = 0; pod < k; ++pod) {
    // Pod-internal complete bipartite edge <-> aggregation.
    for (std::uint32_t e = 0; e < half; ++e) {
      for (std::uint32_t a = 0; a < half; ++a) {
        g.add_switch_edge(edge_id(pod, e), aggr_id(pod, a));
      }
    }
    // Aggregation switch `a` of every pod links to all K/2 cores of group a.
    for (std::uint32_t a = 0; a < half; ++a) {
      for (std::uint32_t c = 0; c < half; ++c) {
        g.add_switch_edge(aggr_id(pod, a), core_id(a, c));
      }
    }
  }

  attach_hosts(g, policy);
  return g;
}

}  // namespace orp

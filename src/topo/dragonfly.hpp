#pragma once
// Dragonfly host-switch graph (§6.1.2, Formulae 4a–4c; Kim et al. 2008).
//
// Parameters follow the paper: a switches per group, h global links per
// switch, p hosts per switch, g groups. The balanced configuration
// a = 2h = 2p is assumed, with g = a*h + 1 so there is exactly one global
// link between every pair of groups (groups form a clique, switches inside
// a group form a clique). Radix r = (a-1) + h + p = 2a - 1.

#include <cstdint>

#include "hsg/host_switch_graph.hpp"
#include "topo/attach.hpp"

namespace orp {

struct DragonflyParams {
  std::uint32_t group_size = 8;  ///< the paper's a; must be even (h = p = a/2)

  std::uint32_t global_links_per_switch() const { return group_size / 2; }  // h
  std::uint32_t hosts_per_switch() const { return group_size / 2; }         // p
  std::uint32_t groups() const {                                            // g
    return group_size * global_links_per_switch() + 1;
  }
  std::uint32_t radix() const { return 2 * group_size - 1; }                // r
};

/// Number of switches: a * g = a^3/2 + a (Formula 4b).
std::uint64_t dragonfly_switch_count(const DragonflyParams& params);
/// Max hosts: p * m = a^4/4 + a^2/2 (Formula 4c).
std::uint64_t dragonfly_host_capacity(const DragonflyParams& params);

/// Builds the dragonfly carrying n hosts attached per `policy`.
HostSwitchGraph build_dragonfly(const DragonflyParams& params, std::uint32_t n,
                                AttachPolicy policy = AttachPolicy::kRoundRobin);

}  // namespace orp

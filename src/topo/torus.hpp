#pragma once
// K-ary N-torus host-switch graph (§6.1.1, Formulae 3a–3c).
//
// Switches form a `dims`-dimensional torus with `base` switches per
// dimension (the paper's K-ary N-torus has dimension K and base N; we use
// explicit names to avoid the K/N collision with the fat-tree's K). Each
// switch connects to 2*dims neighbors (base >= 3; for base == 2 the +1 and
// -1 neighbors coincide, giving dims links) and carries up to
// r - switch_degree hosts.

#include <cstdint>

#include "hsg/host_switch_graph.hpp"
#include "topo/attach.hpp"

namespace orp {

struct TorusParams {
  std::uint32_t dims = 5;    ///< the paper's K (5-D torus for Sequoia-like)
  std::uint32_t base = 3;    ///< the paper's N
  std::uint32_t radix = 15;  ///< ports per switch; must exceed the link degree
};

/// Number of switches: base^dims (Formula 3a).
std::uint64_t torus_switch_count(const TorusParams& params);
/// Per-switch link degree: 2*dims for base >= 3, dims for base == 2.
std::uint32_t torus_link_degree(const TorusParams& params);
/// Max hosts: (radix - link_degree) * base^dims (Formula 3b).
std::uint64_t torus_host_capacity(const TorusParams& params);

/// Builds the torus carrying n hosts attached per `policy`.
/// Requires radix > link degree (Formula 3c) and n <= capacity.
HostSwitchGraph build_torus(const TorusParams& params, std::uint32_t n,
                            AttachPolicy policy = AttachPolicy::kRoundRobin);

}  // namespace orp

#include "topo/attach.hpp"

#include <algorithm>

namespace orp {

std::uint64_t host_capacity(const HostSwitchGraph& g) {
  std::uint64_t total = 0;
  for (SwitchId s = 0; s < g.num_switches(); ++s) total += g.free_ports(s);
  return total;
}

void attach_hosts(HostSwitchGraph& g, AttachPolicy policy) {
  const std::uint32_t n = g.num_hosts();
  for (HostId h = 0; h < n; ++h) {
    ORP_REQUIRE(!g.host_attached(h), "attach_hosts needs all hosts detached");
  }
  ORP_REQUIRE(host_capacity(g) >= n, "fabric has too few free ports for n hosts");

  const std::uint32_t m = g.num_switches();
  HostId next = 0;
  switch (policy) {
    case AttachPolicy::kRoundRobin:
      while (next < n) {
        bool progressed = false;
        for (SwitchId s = 0; s < m && next < n; ++s) {
          if (g.free_ports(s) > 0) {
            g.attach_host(next++, s);
            progressed = true;
          }
        }
        ORP_ASSERT(progressed);
      }
      break;
    case AttachPolicy::kFillFirst:
      for (SwitchId s = 0; s < m && next < n; ++s) {
        while (g.free_ports(s) > 0 && next < n) g.attach_host(next++, s);
      }
      ORP_ASSERT(next == n);
      break;
  }
}

std::vector<HostId> dfs_host_order(const HostSwitchGraph& g) {
  const auto by_switch = g.hosts_by_switch();
  std::vector<HostId> order;
  order.reserve(g.num_hosts());
  std::vector<char> seen(g.num_switches(), 0);
  std::vector<SwitchId> stack;
  for (SwitchId root = 0; root < g.num_switches(); ++root) {
    if (seen[root]) continue;
    stack.push_back(root);
    seen[root] = 1;
    while (!stack.empty()) {
      const SwitchId v = stack.back();
      stack.pop_back();
      order.insert(order.end(), by_switch[v].begin(), by_switch[v].end());
      // Push neighbors in reverse id order so lower ids are visited first —
      // makes the traversal deterministic.
      auto neighbors = std::vector<SwitchId>(g.neighbors(v).begin(), g.neighbors(v).end());
      std::sort(neighbors.begin(), neighbors.end(), std::greater<>());
      for (SwitchId u : neighbors) {
        if (!seen[u]) {
          seen[u] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return order;
}

}  // namespace orp

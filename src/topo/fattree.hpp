#pragma once
// Three-layer K-ary fat-tree host-switch graph (§6.1.3, Formulae 5a–5c;
// Al-Fares et al. 2008).
//
// K pods; each pod has K/2 edge switches and K/2 aggregation switches;
// (K/2)^2 core switches. Edge switch: K/2 hosts + K/2 up-links. Aggregation
// switch: K/2 down + K/2 up. Core switch: one link into every pod. Radix
// r = K, m = 5K^2/4, n = K^3/4.

#include <cstdint>

#include "hsg/host_switch_graph.hpp"
#include "topo/attach.hpp"

namespace orp {

struct FatTreeParams {
  std::uint32_t k = 16;  ///< ports per switch; must be even
};

std::uint64_t fattree_switch_count(const FatTreeParams& params);  // 5K^2/4
std::uint64_t fattree_host_capacity(const FatTreeParams& params); // K^3/4

/// Builds the fat-tree carrying n hosts. Hosts can only attach to edge
/// switches; `policy` orders the attachment across edge switches.
/// Switch ids: [0, K^2/2) edge, [K^2/2, K^2) aggregation, [K^2, 5K^2/4) core.
HostSwitchGraph build_fattree(const FatTreeParams& params, std::uint32_t n,
                              AttachPolicy policy = AttachPolicy::kRoundRobin);

}  // namespace orp

#include "topo/torus.hpp"

#include "common/require.hpp"

namespace orp {

std::uint64_t torus_switch_count(const TorusParams& params) {
  ORP_REQUIRE(params.dims >= 1 && params.base >= 2, "need dims >= 1, base >= 2");
  std::uint64_t m = 1;
  for (std::uint32_t i = 0; i < params.dims; ++i) m *= params.base;
  return m;
}

std::uint32_t torus_link_degree(const TorusParams& params) {
  return params.base >= 3 ? 2 * params.dims : params.dims;
}

std::uint64_t torus_host_capacity(const TorusParams& params) {
  const std::uint32_t degree = torus_link_degree(params);
  ORP_REQUIRE(params.radix > degree, "radix must exceed the torus link degree");
  return (params.radix - degree) * torus_switch_count(params);
}

HostSwitchGraph build_torus(const TorusParams& params, std::uint32_t n,
                            AttachPolicy policy) {
  const std::uint64_t m = torus_switch_count(params);
  ORP_REQUIRE(m <= 0xffffffffu, "torus too large");
  ORP_REQUIRE(n <= torus_host_capacity(params), "too many hosts for this torus");

  HostSwitchGraph g(n, static_cast<std::uint32_t>(m), params.radix);
  // Switch id <-> mixed-radix address a_{dims-1} ... a_0, all base `base`.
  std::uint64_t stride = 1;
  for (std::uint32_t dim = 0; dim < params.dims; ++dim) {
    for (std::uint64_t s = 0; s < m; ++s) {
      const std::uint64_t digit = (s / stride) % params.base;
      const std::uint64_t up = s - digit * stride + ((digit + 1) % params.base) * stride;
      // The "+1" scan emits every ring edge exactly once for base >= 3
      // (including the wraparound edge, where up < s). For base == 2 the +1
      // and -1 neighbors coincide, so emit only from digit 0.
      if (params.base >= 3 || digit == 0) {
        g.add_switch_edge(static_cast<SwitchId>(s), static_cast<SwitchId>(up));
      }
    }
    stride *= params.base;
  }
  attach_hosts(g, policy);
  return g;
}

}  // namespace orp

#include "topo/dragonfly.hpp"

#include "common/require.hpp"

namespace orp {

std::uint64_t dragonfly_switch_count(const DragonflyParams& params) {
  ORP_REQUIRE(params.group_size >= 2 && params.group_size % 2 == 0,
              "dragonfly group size a must be even and >= 2");
  return static_cast<std::uint64_t>(params.group_size) * params.groups();
}

std::uint64_t dragonfly_host_capacity(const DragonflyParams& params) {
  return dragonfly_switch_count(params) * params.hosts_per_switch();
}

HostSwitchGraph build_dragonfly(const DragonflyParams& params, std::uint32_t n,
                                AttachPolicy policy) {
  const std::uint64_t m = dragonfly_switch_count(params);
  ORP_REQUIRE(n <= dragonfly_host_capacity(params), "too many hosts for this dragonfly");

  const std::uint32_t a = params.group_size;
  const std::uint32_t h = params.global_links_per_switch();
  const std::uint32_t g_count = params.groups();
  HostSwitchGraph graph(n, static_cast<std::uint32_t>(m), params.radix());

  auto switch_id = [&](std::uint32_t group, std::uint32_t local) {
    return static_cast<SwitchId>(group * a + local);
  };

  // Intra-group cliques.
  for (std::uint32_t group = 0; group < g_count; ++group) {
    for (std::uint32_t i = 0; i < a; ++i) {
      for (std::uint32_t j = i + 1; j < a; ++j) {
        graph.add_switch_edge(switch_id(group, i), switch_id(group, j));
      }
    }
  }

  // Global links: one per group pair. Group `group` owns a*h = g-1 global
  // ports, port q reaching group (group + q + 1) mod g; port q lives on
  // local switch q / h. Each unordered group pair is emitted once (from the
  // lower-offset side) by adding only when group < peer is false — instead
  // we add each link from the group with the smaller id.
  for (std::uint32_t group = 0; group < g_count; ++group) {
    for (std::uint32_t q = 0; q < a * h; ++q) {
      const std::uint32_t peer = (group + q + 1) % g_count;
      if (group < peer) {
        // The peer reaches `group` at offset g - (q+1), i.e. its port
        // g - q - 2.
        const std::uint32_t peer_port = g_count - q - 2;
        graph.add_switch_edge(switch_id(group, q / h),
                              switch_id(peer, peer_port / h));
      }
    }
  }

  attach_hosts(graph, policy);
  return graph;
}

}  // namespace orp

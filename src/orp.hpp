#pragma once
// Umbrella header: the whole ORP toolkit through one include.
//
//   #include "orp.hpp"
//   orp::SolveResult design = orp::solve_orp(1024, 16);
//
// Individual headers remain the fine-grained entry points; this exists for
// quick experiments and the examples.

#include "common/cli.hpp"        // IWYU pragma: export
#include "common/prng.hpp"       // IWYU pragma: export
#include "common/table.hpp"      // IWYU pragma: export
#include "common/thread_pool.hpp"  // IWYU pragma: export
#include "cost/evaluate.hpp"     // IWYU pragma: export
#include "cost/placement.hpp"    // IWYU pragma: export
#include "fault/degraded.hpp"    // IWYU pragma: export
#include "fault/events.hpp"      // IWYU pragma: export
#include "fault/model.hpp"       // IWYU pragma: export
#include "fault/montecarlo.hpp"  // IWYU pragma: export
#include "hsg/analysis.hpp"      // IWYU pragma: export
#include "hsg/bounds.hpp"        // IWYU pragma: export
#include "hsg/host_switch_graph.hpp"  // IWYU pragma: export
#include "hsg/io.hpp"            // IWYU pragma: export
#include "hsg/metrics.hpp"       // IWYU pragma: export
#include "partition/partition.hpp"  // IWYU pragma: export
#include "search/annealer.hpp"   // IWYU pragma: export
#include "search/clique.hpp"     // IWYU pragma: export
#include "search/odp.hpp"        // IWYU pragma: export
#include "search/operations.hpp" // IWYU pragma: export
#include "search/random_init.hpp"  // IWYU pragma: export
#include "search/solver.hpp"     // IWYU pragma: export
#include "sim/machine.hpp"       // IWYU pragma: export
#include "sim/nas.hpp"           // IWYU pragma: export
#include "sim/packet.hpp"        // IWYU pragma: export
#include "sim/traffic.hpp"       // IWYU pragma: export
#include "sim/updown.hpp"        // IWYU pragma: export
#include "topo/attach.hpp"       // IWYU pragma: export
#include "topo/dragonfly.hpp"    // IWYU pragma: export
#include "topo/fattree.hpp"      // IWYU pragma: export
#include "topo/torus.hpp"        // IWYU pragma: export

#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace orp {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos));
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool eof() const noexcept { return pos >= text.size(); }
  char peek() const noexcept { return text[pos]; }

  void skip_ws() noexcept {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) fail(pos, std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    if (eof()) fail(pos, "unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail(pos, "bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail(pos, "bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail(pos, "bad literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (!eof() && peek() != '"') {
      char c = peek();
      if (c == '\\') {
        ++pos;
        if (eof()) fail(pos, "unterminated escape");
        switch (peek()) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Decode \uXXXX; non-ASCII code points are passed through as
            // UTF-8 for the BMP (no surrogate-pair recombination — the
            // bench reports never emit them).
            if (pos + 4 >= text.size()) fail(pos, "truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail(pos, "bad \\u escape");
            }
            pos += 4;
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail(pos, "unknown escape");
        }
        ++pos;
      } else {
        out += c;
        ++pos;
      }
    }
    expect('"');
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos;
    bool digits = false;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '-' || peek() == '+')) {
      if (std::isdigit(static_cast<unsigned char>(peek()))) digits = true;
      ++pos;
    }
    if (!digits) fail(start, "expected a value");
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data() + start, text.data() + pos, value);
    if (ec != std::errc() || ptr != text.data() + pos) fail(start, "bad number");
    return JsonValue::make_number(value);
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::make_array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      if (eof()) fail(pos, "unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect(']');
      return out;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::make_object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(std::move(key), parse_value());
      skip_ws();
      if (eof()) fail(pos, "unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return out;
    }
  }
};

}  // namespace

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::parse(std::string_view text) {
  Parser p{text};
  JsonValue value = p.parse_value();
  p.skip_ws();
  if (!p.eof()) fail(p.pos, "trailing content");
  return value;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (!v) throw std::runtime_error("json: missing key \"" + std::string(key) + "\"");
  return *v;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: push_back on non-array");
  items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: set on non-object");
  for (auto& [name, value] : members_) {
    if (name == key) {
      value = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

std::string json_escape_string(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace orp

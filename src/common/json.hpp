#pragma once
// Minimal JSON value model + recursive-descent parser.
//
// Grown for the benchmark harness: BENCH_*.json reports are written by
// src/obs/bench/report.cpp and read back by tools/bench_diff, so the repo
// needs to *parse* (not just validate) its own artifacts without an
// external dependency. Covers the full JSON grammar except \uXXXX escapes
// beyond ASCII (mapped through verbatim). Objects preserve insertion order
// and use linear lookup — documents here are small (hundreds of keys).

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace orp {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  /// Parses one JSON document (throws std::runtime_error with a byte
  /// offset on malformed input; trailing non-whitespace is an error).
  static JsonValue parse(std::string_view text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  // Typed accessors throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;                      ///< array
  const std::vector<std::pair<std::string, JsonValue>>& members() const;  ///< object

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const noexcept;
  /// Object member that must exist (throws naming the missing key).
  const JsonValue& at(std::string_view key) const;

  // Mutators for building documents programmatically (tests).
  void push_back(JsonValue v);
  void set(std::string key, JsonValue v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes a string for embedding in a JSON document (quotes not added).
std::string json_escape_string(std::string_view raw);

}  // namespace orp

#include "common/thread_pool.hpp"

#include <atomic>
#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace orp {
namespace {

// Cached instrument references: looked up once, bumped on every enqueue /
// task run. Compiled out entirely under ORP_OBS_DISABLED.
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge = obs::Registry::global().gauge("threadpool.queue_depth");
  return gauge;
}

obs::Histogram& task_latency_histogram() {
  static obs::Histogram& histogram =
      obs::Registry::global().histogram("threadpool.task_ns");
  return histogram;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw - 1 : 0;  // the calling thread also participates
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_gauge().sub(1);
    {
      // The span gives the flow head a slice to land on; Perfetto links
      // the submitter's 's' event to this task via the shared flow id.
      obs::Span span("threadpool.task", "pool");
      obs::flow_end(task.flow, "threadpool.task", "pool");
      obs::ScopedTimer timer(task_latency_histogram());
      task.fn();
    }
  }
}

// Shared state for one parallel_for invocation. Iterations are handed out
// as dynamic chunks via an atomic cursor so uneven per-index costs (e.g. BFS
// from high-eccentricity sources) still balance.
struct ThreadPool::ForLoop {
  std::atomic<std::size_t> next{0};
  std::size_t count = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<int> pending{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  void run_chunks() {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) break;
      const std::size_t end = std::min(count, begin + chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) (*body)(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(count, std::memory_order_relaxed);  // cancel remaining work
      }
    }
  }
};

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t participants = workers_.size() + 1;
  if (participants == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  auto loop = std::make_shared<ForLoop>();
  loop->count = count;
  loop->chunk = std::max<std::size_t>(1, count / (participants * 4));
  loop->body = &body;
  const int helpers =
      static_cast<int>(std::min(workers_.size(), count - 1));
  loop->pending.store(helpers, std::memory_order_relaxed);

  // Counted before enqueueing so a fast worker's sub() cannot observe the
  // gauge below zero.
  queue_depth_gauge().add(helpers);
  {
    std::lock_guard lock(mutex_);
    for (int i = 0; i < helpers; ++i) {
      // Flow capture at enqueue: one id per helper task, the 's' event
      // lands inside the caller's current span (if any).
      queue_.push_back(Task{[loop] {
                              loop->run_chunks();
                              if (loop->pending.fetch_sub(
                                      1, std::memory_order_acq_rel) == 1) {
                                std::lock_guard done(loop->done_mutex);
                                loop->done_cv.notify_all();
                              }
                            },
                            obs::flow_begin("threadpool.task", "pool")});
    }
  }
  cv_.notify_all();

  loop->run_chunks();  // the caller works too
  {
    std::unique_lock done(loop->done_mutex);
    loop->done_cv.wait(done, [&] {
      return loop->pending.load(std::memory_order_acquire) == 0;
    });
  }
  if (loop->error) std::rethrow_exception(loop->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace orp

#pragma once
// A small fixed-size thread pool with a blocking parallel_for.
//
// The metric kernels (all-pairs BFS over source blocks) and multi-start
// annealing are embarrassingly parallel over coarse chunks, so a simple
// mutex-protected queue is sufficient; there is no work stealing. The pool
// is created once and reused — creating threads per call would dominate the
// millisecond-scale kernels it serves.
//
// Trace-context propagation: when work is enqueued from inside an active
// obs::Span, each queued task captures a flow id at enqueue (emitting a
// Chrome-trace 's' event under the submitter's span) and the worker emits
// the matching 'f' head inside its "threadpool.task" span — so Perfetto
// draws arrows from the submitting span to every task it fanned out,
// giving parallel phases per-task attribution across threads.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace orp {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs body(i) for i in [0, count) distributed over the pool in blocks,
  /// and additionally on the calling thread. Blocks until all iterations
  /// finish. The first exception thrown by any iteration is rethrown.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Process-wide pool, sized from hardware concurrency on first use.
  static ThreadPool& global();

 private:
  struct ForLoop;
  /// A queued job plus the trace-flow id captured at enqueue (0 when the
  /// submitter was not inside a span or tracing is off).
  struct Task {
    std::function<void()> fn;
    std::uint64_t flow = 0;
  };
  void worker_main();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace orp

#pragma once
// Cooperative graceful shutdown.
//
// install_shutdown_handlers() arms SIGINT/SIGTERM handlers that set a
// process-wide flag; long-running loops (the annealer's iteration loop,
// the solver's restart loop) poll shutdown_requested() and wind down,
// returning the best solution found so far instead of dying mid-search.
// The handler only sets an atomic flag, so it is async-signal-safe.
//
// request_shutdown()/reset_shutdown() exist so tests (and embedding code
// that has its own signal strategy) can drive the flag directly.

namespace orp {

/// Arms SIGINT and SIGTERM to request a cooperative shutdown. Idempotent;
/// safe to call from multiple binaries' main().
void install_shutdown_handlers();

/// True once a shutdown was requested (signal received or
/// request_shutdown() called). A relaxed atomic load — cheap enough for
/// per-iteration polling in hot loops.
bool shutdown_requested() noexcept;

/// Sets the flag as if a signal had arrived.
void request_shutdown() noexcept;

/// Clears the flag (tests; long-lived processes reusing the search).
void reset_shutdown() noexcept;

}  // namespace orp

#include "common/shutdown.hpp"

#include <atomic>
#include <csignal>

namespace orp {
namespace {

std::atomic<bool> g_shutdown{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler needs a lock-free flag");

extern "C" void orp_shutdown_signal_handler(int) {
  g_shutdown.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handlers() {
  // std::signal with BSD semantics on Linux/glibc: the handler persists and
  // interrupted syscalls restart, which is what a flag-setting handler wants.
  std::signal(SIGINT, orp_shutdown_signal_handler);
  std::signal(SIGTERM, orp_shutdown_signal_handler);
}

bool shutdown_requested() noexcept {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() noexcept {
  g_shutdown.store(true, std::memory_order_relaxed);
}

void reset_shutdown() noexcept {
  g_shutdown.store(false, std::memory_order_relaxed);
}

}  // namespace orp

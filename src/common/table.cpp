#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>

namespace orp {

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(header_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  if (cells_.empty()) row();
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}
Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }
Table& Table::add(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : cells_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << "  " << cell;
      for (std::size_t pad = cell.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : cells_) emit(r);
}

void Table::print_markdown(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << ' ';
      for (char ch : cell) {
        if (ch == '|') os << '\\';
        os << ch;
      }
      os << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& r : cells_) emit(r);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(r[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : cells_) emit(r);
}

bool Table::write_csv_file(const std::string& path) const {
  // mkdir -p semantics: a CSV destination like $ORP_CSV_DIR/fig05.csv must
  // not silently drop data just because the directory wasn't made yet.
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // open below reports failure
  }
  std::ofstream file(path);
  if (!file) return false;
  write_csv(file);
  return static_cast<bool>(file);
}

}  // namespace orp

#pragma once
// Console table / CSV emission used by the figure benches and examples.
//
// Every bench prints two artifacts for each reproduced figure: a human
// readable aligned table on stdout, and (optionally) a CSV file so the
// series can be re-plotted. Cells are stored as strings; numeric helpers
// format with stable precision so diffs between runs are meaningful.

#include <iosfwd>
#include <string>
#include <vector>

namespace orp {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(std::string cell);
  Table& add(const char* cell) { return add(std::string(cell)); }
  Table& add(double value, int precision = 4);
  Table& add(std::size_t value);
  Table& add(int value);
  Table& add(long long value);

  std::size_t rows() const noexcept { return cells_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::string>& row_cells(std::size_t i) const { return cells_.at(i); }

  /// Aligned fixed-width rendering for terminals.
  void print(std::ostream& os) const;
  /// GitHub-flavored markdown pipe table (used for CI job summaries and
  /// the orp_report analyzer output; `|` in cells is escaped).
  void print_markdown(std::ostream& os) const;
  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void write_csv(std::ostream& os) const;
  /// Writes CSV to `path`, creating missing parent directories (mkdir -p).
  /// Returns false (and logs nothing) if the file cannot be opened.
  bool write_csv_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision, trimming trailing zeros
/// ("3.1400" -> "3.14", "2.0000" -> "2").
std::string format_double(double value, int precision = 4);

}  // namespace orp

#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace orp {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

CliParser& CliParser::flag(const std::string& name, const std::string& help) {
  options_.push_back({name, "", help, /*is_flag=*/true});
  return *this;
}

CliParser& CliParser::option(const std::string& name,
                             const std::string& default_value,
                             const std::string& help) {
  options_.push_back({name, default_value, help, /*is_flag=*/false});
  return *this;
}

const CliParser::Option* CliParser::find(const std::string& name) const {
  for (const auto& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const Option* opt = find(name);
    if (!opt) throw std::invalid_argument("unknown option --" + name);
    if (opt->is_flag) {
      if (has_value) throw std::invalid_argument("flag --" + name + " takes no value");
      values_[name] = "1";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) throw std::invalid_argument("option --" + name + " needs a value");
        value = argv[++i];
      }
      values_[name] = value;
    }
  }
  return true;
}

bool CliParser::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliParser::get(const std::string& name) const {
  if (auto it = values_.find(name); it != values_.end()) return it->second;
  const Option* opt = find(name);
  if (!opt) throw std::invalid_argument("option --" + name + " was never registered");
  return opt->default_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const long long parsed = std::stoll(v, &pos);
  if (pos != v.size()) throw std::invalid_argument("--" + name + ": not an integer: " + v);
  return parsed;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const double parsed = std::stod(v, &pos);
  if (pos != v.size()) throw std::invalid_argument("--" + name + ": not a number: " + v);
  return parsed;
}

void CliParser::print_usage() const {
  std::cout << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& o : options_) {
    std::cout << "  --" << o.name;
    if (!o.is_flag) std::cout << " <value>";
    std::cout << "\n      " << o.help;
    if (!o.is_flag && !o.default_value.empty()) {
      std::cout << " (default: " << o.default_value << ")";
    }
    std::cout << "\n";
  }
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed <= 0) return fallback;
  return parsed;
}

}  // namespace orp

#pragma once
// Precondition checking used across the library.
//
// ORP_REQUIRE enforces caller-facing contracts (wrong parameters throw
// std::invalid_argument with a message that names the violated condition);
// ORP_ASSERT guards internal invariants and stays active in release builds
// because the algorithms here are cheap relative to the graph kernels and a
// silent invariant break would corrupt experiment results.

#include <sstream>
#include <stdexcept>
#include <string>

namespace orp::detail {

[[noreturn]] inline void throw_requirement(const char* condition, const std::string& message) {
  std::ostringstream os;
  os << "requirement violated: " << condition;
  if (!message.empty()) os << " — " << message;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assertion(const char* condition, const char* file, int line) {
  std::ostringstream os;
  os << "internal invariant broken: " << condition << " at " << file << ':' << line;
  throw std::logic_error(os.str());
}

}  // namespace orp::detail

#define ORP_REQUIRE(cond, message)                                   \
  do {                                                               \
    if (!(cond)) ::orp::detail::throw_requirement(#cond, (message)); \
  } while (0)

#define ORP_ASSERT(cond)                                                      \
  do {                                                                        \
    if (!(cond)) ::orp::detail::throw_assertion(#cond, __FILE__, __LINE__);   \
  } while (0)

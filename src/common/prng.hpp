#pragma once
// Deterministic, fast pseudo-random number generation for the ORP toolkit.
//
// All randomized components (graph initialization, simulated annealing,
// workload generation) take an explicit engine so that every experiment is
// reproducible from a single seed. The engine is xoshiro256** (Blackman &
// Vigna), seeded through SplitMix64 as its authors recommend; it is an order
// of magnitude faster than std::mt19937_64 and has no observable bias for
// our use cases.

#include <array>
#include <cstdint>
#include <limits>

namespace orp {

/// SplitMix64 stepper, used for seeding and as a cheap standalone generator.
/// Advances `state` and returns the next 64-bit output.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — UniformRandomBitGenerator suitable for std::shuffle.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64 so any 64-bit seed
  /// (including 0) yields a well-mixed state.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t s1 = state_[1];
    const std::uint64_t result = rotl(s1 * 5, 7) * 9;
    const std::uint64_t t = s1 << 17;
    state_[2] ^= state_[0];
    state_[3] ^= s1;
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  /// Lemire's multiply-shift rejection method — no modulo bias.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(operator()()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability `p` (clamped to [0,1]).
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derives an independent child engine; used to hand deterministic
  /// sub-streams to worker threads or repeated trials.
  constexpr Xoshiro256 split() noexcept {
    return Xoshiro256{operator()() ^ 0x9e3779b97f4a7c15ULL};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Fisher-Yates shuffle over a random-access container.
template <typename Container>
void shuffle(Container& c, Xoshiro256& rng) {
  using std::swap;
  const auto n = c.size();
  if (n < 2) return;
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng.below(i + 1);
    swap(c[i], c[j]);
  }
}

}  // namespace orp

#pragma once
// Minimal command-line option parsing for the examples and bench drivers.
//
// Supports `--name value`, `--name=value`, and boolean `--flag`. Unknown
// options are an error so typos surface immediately; positional arguments
// are collected in order.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace orp {

class CliParser {
 public:
  /// `spec` entries register valid options: {name, default, help}.
  struct Option {
    std::string name;
    std::string default_value;  // empty + is_flag=false means "required if queried"
    std::string help;
    bool is_flag = false;
  };

  CliParser(std::string program, std::string description);

  CliParser& flag(const std::string& name, const std::string& help);
  CliParser& option(const std::string& name, const std::string& default_value,
                    const std::string& help);

  /// Parses argv; on --help prints usage and returns false. Throws
  /// std::invalid_argument on unknown/malformed options.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }

  void print_usage() const;

 private:
  const Option* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Reads a positive scaling factor from an environment variable, returning
/// `fallback` when unset or unparsable. Used for ORP_SA_ITERS-style knobs.
std::int64_t env_int(const char* name, std::int64_t fallback);

}  // namespace orp

#include "partition/csr.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/require.hpp"

namespace orp {

std::uint64_t CsrGraph::total_vertex_weight() const {
  return std::accumulate(vwgt.begin(), vwgt.end(), std::uint64_t{0});
}

void CsrGraph::check_invariants() const {
  auto fail = [](const char* what) { throw std::logic_error(std::string("CsrGraph: ") + what); };
  const std::uint32_t nv = num_vertices();
  if (xadj.size() != nv + 1u) fail("xadj size mismatch");
  if (xadj.front() != 0 || xadj.back() != adjncy.size()) fail("xadj range broken");
  if (adjwgt.size() != adjncy.size()) fail("adjwgt size mismatch");
  for (std::uint32_t v = 0; v < nv; ++v) {
    if (xadj[v] > xadj[v + 1]) fail("xadj not monotone");
    for (std::uint32_t e = xadj[v]; e < xadj[v + 1]; ++e) {
      const std::uint32_t u = adjncy[e];
      if (u >= nv) fail("neighbor out of range");
      if (u == v) fail("self-loop");
      // Find the reverse edge and check its weight matches.
      bool found = false;
      for (std::uint32_t f = xadj[u]; f < xadj[u + 1]; ++f) {
        if (adjncy[f] == v && adjwgt[f] == adjwgt[e]) {
          found = true;
          break;
        }
      }
      if (!found) fail("asymmetric adjacency or weight");
    }
  }
}

CsrGraph csr_from_edges(std::uint32_t num_vertices,
                        const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
                        const std::vector<std::uint32_t>& edge_weights,
                        const std::vector<std::uint32_t>& vertex_weights) {
  ORP_REQUIRE(edge_weights.empty() || edge_weights.size() == edges.size(),
              "edge weight count mismatch");
  ORP_REQUIRE(vertex_weights.empty() || vertex_weights.size() == num_vertices,
              "vertex weight count mismatch");
  CsrGraph g;
  g.vwgt = vertex_weights.empty() ? std::vector<std::uint32_t>(num_vertices, 1)
                                  : vertex_weights;
  std::vector<std::uint32_t> degree(num_vertices, 0);
  for (const auto& [a, b] : edges) {
    ORP_REQUIRE(a < num_vertices && b < num_vertices && a != b, "bad edge");
    ++degree[a];
    ++degree[b];
  }
  g.xadj.assign(num_vertices + 1, 0);
  for (std::uint32_t v = 0; v < num_vertices; ++v) g.xadj[v + 1] = g.xadj[v] + degree[v];
  g.adjncy.resize(g.xadj.back());
  g.adjwgt.resize(g.xadj.back());
  std::vector<std::uint32_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [a, b] = edges[i];
    const std::uint32_t w = edge_weights.empty() ? 1 : edge_weights[i];
    g.adjncy[cursor[a]] = b;
    g.adjwgt[cursor[a]++] = w;
    g.adjncy[cursor[b]] = a;
    g.adjwgt[cursor[b]++] = w;
  }
  return g;
}

CsrGraph csr_from_host_switch_graph(const HostSwitchGraph& g) {
  const std::uint32_t n = g.num_hosts();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(g.num_edges());
  for (HostId h = 0; h < n; ++h) {
    if (g.host_attached(h)) edges.emplace_back(h, n + g.host_switch(h));
  }
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) edges.emplace_back(n + s, n + t);
    }
  }
  return csr_from_edges(n + g.num_switches(), edges);
}

CsrGraph csr_subgraph(const CsrGraph& g, const std::vector<std::uint32_t>& vertices,
                      std::vector<std::uint32_t>& old_to_new) {
  constexpr std::uint32_t kOutside = 0xffffffffu;
  old_to_new.assign(g.num_vertices(), kOutside);
  for (std::uint32_t i = 0; i < vertices.size(); ++i) {
    ORP_REQUIRE(old_to_new[vertices[i]] == kOutside, "duplicate vertex in subgraph set");
    old_to_new[vertices[i]] = i;
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<std::uint32_t> weights;
  std::vector<std::uint32_t> vwgt(vertices.size());
  for (std::uint32_t i = 0; i < vertices.size(); ++i) {
    const std::uint32_t v = vertices[i];
    vwgt[i] = g.vwgt[v];
    const auto neighbors = g.neighbors(v);
    const auto edge_weights = g.edge_weights(v);
    for (std::size_t e = 0; e < neighbors.size(); ++e) {
      const std::uint32_t u = old_to_new[neighbors[e]];
      if (u == kOutside || u <= i) continue;  // emit each edge once
      edges.emplace_back(i, u);
      weights.push_back(edge_weights[e]);
    }
  }
  return csr_from_edges(static_cast<std::uint32_t>(vertices.size()), edges, weights, vwgt);
}

}  // namespace orp

#pragma once
// Multilevel 2-way partitioning: coarsen -> initial partition -> project
// back with FM refinement at every level (the Karypis–Kumar scheme).

#include <cstdint>
#include <vector>

#include "common/prng.hpp"
#include "partition/csr.hpp"

namespace orp {

struct BisectOptions {
  /// Allowed relative overweight per side (METIS-style ubfactor).
  double imbalance = 0.05;
  /// Greedy-growing trials for the initial partition at the coarsest level.
  int init_trials = 8;
  /// FM passes per level.
  int refine_passes = 8;
  /// Coarsening stops at this many vertices.
  std::uint32_t coarsest_size = 48;
};

/// 2-way partition with side 0 targeting `fraction0` of total vertex
/// weight. Returns side assignment in {0,1}; minimizes edge cut under the
/// balance constraint.
std::vector<std::uint8_t> bisect(const CsrGraph& g, double fraction0,
                                 Xoshiro256& rng, const BisectOptions& options = {});

}  // namespace orp

#include "partition/coarsen.hpp"

#include <numeric>

namespace orp {

CoarseLevel coarsen_once(const CsrGraph& fine, Xoshiro256& rng) {
  const std::uint32_t nv = fine.num_vertices();
  constexpr std::uint32_t kUnmatched = 0xffffffffu;
  std::vector<std::uint32_t> match(nv, kUnmatched);

  std::vector<std::uint32_t> order(nv);
  std::iota(order.begin(), order.end(), 0);
  shuffle(order, rng);

  // Heavy-edge matching: each unmatched vertex grabs its heaviest
  // unmatched neighbor (ties broken by first encounter).
  for (std::uint32_t v : order) {
    if (match[v] != kUnmatched) continue;
    const auto neighbors = fine.neighbors(v);
    const auto weights = fine.edge_weights(v);
    std::uint32_t best = kUnmatched;
    std::uint32_t best_weight = 0;
    for (std::size_t e = 0; e < neighbors.size(); ++e) {
      const std::uint32_t u = neighbors[e];
      if (match[u] == kUnmatched && weights[e] > best_weight) {
        best = u;
        best_weight = weights[e];
      }
    }
    match[v] = (best == kUnmatched) ? v : best;
    if (best != kUnmatched) match[best] = v;
  }

  // Assign coarse ids (matched pair -> one id).
  CoarseLevel level;
  level.map.assign(nv, kUnmatched);
  std::uint32_t coarse_count = 0;
  for (std::uint32_t v = 0; v < nv; ++v) {
    if (level.map[v] != kUnmatched) continue;
    level.map[v] = coarse_count;
    level.map[match[v]] = coarse_count;  // match[v] == v for singletons
    ++coarse_count;
  }

  // Contract: accumulate coarse adjacency with a marker array (standard
  // O(|E|) bucket-free merge).
  CsrGraph& coarse = level.graph;
  coarse.vwgt.assign(coarse_count, 0);
  for (std::uint32_t v = 0; v < nv; ++v) coarse.vwgt[level.map[v]] += fine.vwgt[v];

  coarse.xadj.assign(coarse_count + 1, 0);
  std::vector<std::uint32_t> marker(coarse_count, kUnmatched);
  std::vector<std::uint32_t> scratch_ids;
  std::vector<std::uint32_t> scratch_weights;
  // Two passes would save memory; one pass with growing arrays is simpler.
  std::vector<std::vector<std::uint32_t>> coarse_adj(coarse_count);
  std::vector<std::vector<std::uint32_t>> coarse_wgt(coarse_count);
  for (std::uint32_t v = 0; v < nv; ++v) {
    const std::uint32_t cv = level.map[v];
    if (match[v] != v && match[v] < v) continue;  // handle each pair once
    scratch_ids.clear();
    scratch_weights.clear();
    auto absorb = [&](std::uint32_t fine_vertex) {
      const auto neighbors = fine.neighbors(fine_vertex);
      const auto weights = fine.edge_weights(fine_vertex);
      for (std::size_t e = 0; e < neighbors.size(); ++e) {
        const std::uint32_t cu = level.map[neighbors[e]];
        if (cu == cv) continue;  // internal edge vanishes
        if (marker[cu] == kUnmatched) {
          marker[cu] = static_cast<std::uint32_t>(scratch_ids.size());
          scratch_ids.push_back(cu);
          scratch_weights.push_back(weights[e]);
        } else {
          scratch_weights[marker[cu]] += weights[e];
        }
      }
    };
    absorb(v);
    if (match[v] != v) absorb(match[v]);
    for (std::uint32_t cu : scratch_ids) marker[cu] = kUnmatched;
    coarse_adj[cv] = scratch_ids;
    coarse_wgt[cv] = scratch_weights;
  }
  for (std::uint32_t cv = 0; cv < coarse_count; ++cv) {
    coarse.xadj[cv + 1] =
        coarse.xadj[cv] + static_cast<std::uint32_t>(coarse_adj[cv].size());
  }
  coarse.adjncy.reserve(coarse.xadj.back());
  coarse.adjwgt.reserve(coarse.xadj.back());
  for (std::uint32_t cv = 0; cv < coarse_count; ++cv) {
    coarse.adjncy.insert(coarse.adjncy.end(), coarse_adj[cv].begin(), coarse_adj[cv].end());
    coarse.adjwgt.insert(coarse.adjwgt.end(), coarse_wgt[cv].begin(), coarse_wgt[cv].end());
  }
  return level;
}

std::vector<CoarseLevel> coarsen_chain(const CsrGraph& graph, Xoshiro256& rng,
                                       std::uint32_t target_vertices) {
  std::vector<CoarseLevel> chain;
  const CsrGraph* current = &graph;
  while (current->num_vertices() > target_vertices) {
    CoarseLevel level = coarsen_once(*current, rng);
    // Stop when matching stalls (dense or star-like graphs stop shrinking).
    if (level.graph.num_vertices() >
        current->num_vertices() - current->num_vertices() / 10) {
      break;
    }
    chain.push_back(std::move(level));
    current = &chain.back().graph;
  }
  return chain;
}

}  // namespace orp

#pragma once
// Public k-way partitioning facade (the METIS replacement used by the
// paper's bandwidth evaluation, §6.2.2).
//
// k-way partitions come from recursive bisection; non-power-of-two part
// counts split proportionally (e.g. 6 parts -> 3 + 3 via a 1/2 bisection,
// 5 parts -> 2 + 3 via a 2/5 bisection), so every P in the paper's 2..16
// sweep is supported.

#include <cstdint>
#include <vector>

#include "partition/bisect.hpp"
#include "partition/csr.hpp"

namespace orp {

struct PartitionResult {
  std::vector<std::uint32_t> assignment;  ///< vertex -> part in [0, parts)
  std::uint64_t edge_cut = 0;             ///< total weight of cut edges
  std::vector<std::uint64_t> part_weights;
};

/// Edge cut of an arbitrary assignment.
std::uint64_t compute_edge_cut(const CsrGraph& g,
                               const std::vector<std::uint32_t>& assignment);

/// Partitions `g` into `parts` pieces of (near-)equal vertex weight.
PartitionResult partition_graph(const CsrGraph& g, std::uint32_t parts,
                                std::uint64_t seed,
                                const BisectOptions& options = {});

/// The paper's bandwidth metric: partition hosts+switches of a host-switch
/// graph into `parts` equal subsets and report the number of cut links
/// (parts == 2 gives the bisection bandwidth in links).
std::uint64_t host_switch_cut(const HostSwitchGraph& g, std::uint32_t parts,
                              std::uint64_t seed,
                              const BisectOptions& options = {});

}  // namespace orp

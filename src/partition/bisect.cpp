#include "partition/bisect.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "partition/coarsen.hpp"
#include "partition/fm.hpp"

namespace orp {
namespace {

// Greedy graph growing: BFS-like region that always absorbs the frontier
// vertex with the strongest connection to the grown region, until side 0
// reaches its weight target. Coarsest graphs are tiny, so the linear scans
// are irrelevant.
std::vector<std::uint8_t> grow_initial(const CsrGraph& g, std::uint64_t target0,
                                       Xoshiro256& rng) {
  const std::uint32_t nv = g.num_vertices();
  std::vector<std::uint8_t> side(nv, 1);
  if (nv == 0) return side;
  std::vector<std::int64_t> connection(nv, 0);
  std::vector<std::uint8_t> in_region(nv, 0);

  const std::uint32_t seed = static_cast<std::uint32_t>(rng.below(nv));
  std::uint64_t weight0 = 0;
  std::uint32_t current = seed;
  while (true) {
    in_region[current] = 1;
    side[current] = 0;
    weight0 += g.vwgt[current];
    if (weight0 >= target0) break;
    const auto neighbors = g.neighbors(current);
    const auto weights = g.edge_weights(current);
    for (std::size_t e = 0; e < neighbors.size(); ++e) {
      if (!in_region[neighbors[e]]) connection[neighbors[e]] += weights[e];
    }
    // Pick the most-connected outside vertex; fall back to any outside
    // vertex when the region's component is exhausted.
    std::int64_t best_connection = -1;
    std::uint32_t best_vertex = nv;
    for (std::uint32_t v = 0; v < nv; ++v) {
      if (!in_region[v] && connection[v] > best_connection) {
        best_connection = connection[v];
        best_vertex = v;
      }
    }
    if (best_vertex == nv) break;  // everything absorbed
    current = best_vertex;
  }
  return side;
}

}  // namespace

std::vector<std::uint8_t> bisect(const CsrGraph& g, double fraction0,
                                 Xoshiro256& rng, const BisectOptions& options) {
  ORP_REQUIRE(fraction0 > 0.0 && fraction0 < 1.0, "fraction0 must be in (0,1)");
  const std::uint64_t total = g.total_vertex_weight();
  const std::uint64_t target0 =
      static_cast<std::uint64_t>(std::llround(fraction0 * static_cast<double>(total)));

  FmOptions fm_options;
  fm_options.max_passes = options.refine_passes;
  const double over = 1.0 + options.imbalance;
  // Caps never drop below the target plus the heaviest vertex, or a legal
  // partition might not exist at coarse levels where vertices are heavy.
  auto caps_for = [&](const CsrGraph& graph) {
    const std::uint32_t max_vwgt =
        *std::max_element(graph.vwgt.begin(), graph.vwgt.end());
    fm_options.max_side_weight[0] = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(std::ceil(static_cast<double>(target0) * over)),
        target0 + max_vwgt);
    const std::uint64_t target1 = total - target0;
    fm_options.max_side_weight[1] = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(std::ceil(static_cast<double>(target1) * over)),
        target1 + max_vwgt);
  };

  // Coarsen.
  const std::vector<CoarseLevel> chain = coarsen_chain(g, rng, options.coarsest_size);
  const CsrGraph& coarsest = chain.empty() ? g : chain.back().graph;

  // Initial partition: several greedy growings, keep the best refined one.
  caps_for(coarsest);
  std::vector<std::uint8_t> best_side;
  std::uint64_t best_cut = ~0ull;
  for (int trial = 0; trial < std::max(options.init_trials, 1); ++trial) {
    std::vector<std::uint8_t> side = grow_initial(coarsest, target0, rng);
    const std::uint64_t cut = fm_refine(coarsest, side, fm_options);
    if (cut < best_cut) {
      best_cut = cut;
      best_side = std::move(side);
    }
  }

  // Uncoarsen: project through the chain, refining at every level.
  std::vector<std::uint8_t> side = std::move(best_side);
  for (std::size_t level = chain.size(); level-- > 0;) {
    const CsrGraph& fine = (level == 0) ? g : chain[level - 1].graph;
    const std::vector<std::uint32_t>& map = chain[level].map;
    std::vector<std::uint8_t> fine_side(fine.num_vertices());
    for (std::uint32_t v = 0; v < fine.num_vertices(); ++v) fine_side[v] = side[map[v]];
    caps_for(fine);
    fm_refine(fine, fine_side, fm_options);
    side = std::move(fine_side);
  }
  if (chain.empty()) {
    caps_for(g);
    fm_refine(g, side, fm_options);
  }
  return side;
}

}  // namespace orp

#pragma once
// Fiduccia–Mattheyses bisection refinement.
//
// Classic FM with best-prefix rollback: vertices move one at a time to the
// other side (highest gain first, each vertex at most once per pass); the
// pass keeps the prefix of moves with the lowest cut that satisfies the
// balance constraint, and passes repeat until one fails to improve.
// Zero/negative-gain moves are allowed mid-pass, which lets the refinement
// climb out of shallow local minima.

#include <cstdint>
#include <vector>

#include "partition/csr.hpp"

namespace orp {

struct FmOptions {
  int max_passes = 8;
  /// Per-side weight cap: side i must stay <= max_side_weight[i]. A move
  /// into a side above its cap is rejected unless it reduces overload.
  std::uint64_t max_side_weight[2] = {0, 0};
};

/// Refines a 2-way partition in place. `side[v]` in {0,1}. Returns the cut
/// after refinement.
std::uint64_t fm_refine(const CsrGraph& g, std::vector<std::uint8_t>& side,
                        const FmOptions& options);

/// Edge cut of a 2-way partition.
std::uint64_t bisection_cut(const CsrGraph& g, const std::vector<std::uint8_t>& side);

}  // namespace orp

#pragma once
// Compressed-sparse-row weighted graph used by the multilevel partitioner
// (our from-scratch replacement for METIS, §6.2.2).
//
// Vertices carry weights (used for balance constraints), edges carry
// weights (accumulated when coarsening merges parallel edges). For the
// paper's bandwidth experiment, vertices are hosts + switches with unit
// weights and all edges have weight 1, so the edge cut counts physical
// links crossing the partition.

#include <cstdint>
#include <span>
#include <vector>

#include "hsg/host_switch_graph.hpp"

namespace orp {

struct CsrGraph {
  std::vector<std::uint32_t> xadj;    ///< size nv+1; neighbor range offsets
  std::vector<std::uint32_t> adjncy;  ///< flattened neighbor lists
  std::vector<std::uint32_t> adjwgt;  ///< edge weight per adjacency entry
  std::vector<std::uint32_t> vwgt;    ///< vertex weights

  std::uint32_t num_vertices() const noexcept {
    return static_cast<std::uint32_t>(vwgt.size());
  }
  std::uint64_t num_edges() const noexcept { return adjncy.size() / 2; }

  std::span<const std::uint32_t> neighbors(std::uint32_t v) const {
    return {adjncy.data() + xadj[v], adjncy.data() + xadj[v + 1]};
  }
  std::span<const std::uint32_t> edge_weights(std::uint32_t v) const {
    return {adjwgt.data() + xadj[v], adjwgt.data() + xadj[v + 1]};
  }

  std::uint64_t total_vertex_weight() const;

  /// Structural validation (symmetry, matching weights, offsets); throws
  /// std::logic_error on the first violation. For tests.
  void check_invariants() const;
};

/// Builds a CSR graph from edge pairs (deduplicated adjacency not required;
/// pairs must be unique). All weights default to 1 unless given.
CsrGraph csr_from_edges(std::uint32_t num_vertices,
                        const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
                        const std::vector<std::uint32_t>& edge_weights = {},
                        const std::vector<std::uint32_t>& vertex_weights = {});

/// The paper's bandwidth-evaluation graph: vertex ids [0, n) are hosts,
/// [n, n+m) are switches; host-switch and switch-switch edges with unit
/// weights, unit vertex weights.
CsrGraph csr_from_host_switch_graph(const HostSwitchGraph& g);

/// Extracts the vertex-induced subgraph of `vertices` (which must be
/// unique). `old_to_new` is filled with the reverse mapping for vertices in
/// the subgraph. Edges leaving the set are dropped.
CsrGraph csr_subgraph(const CsrGraph& g, const std::vector<std::uint32_t>& vertices,
                      std::vector<std::uint32_t>& old_to_new);

}  // namespace orp

#include "partition/partition.hpp"

#include <numeric>

#include "common/require.hpp"

namespace orp {

std::uint64_t compute_edge_cut(const CsrGraph& g,
                               const std::vector<std::uint32_t>& assignment) {
  ORP_REQUIRE(assignment.size() == g.num_vertices(), "assignment size mismatch");
  std::uint64_t cut = 0;
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    const auto neighbors = g.neighbors(v);
    const auto weights = g.edge_weights(v);
    for (std::size_t e = 0; e < neighbors.size(); ++e) {
      if (assignment[v] != assignment[neighbors[e]]) cut += weights[e];
    }
  }
  return cut / 2;
}

namespace {

// Recursive bisection: assigns parts [part_lo, part_lo + parts) to the
// vertices listed in `vertices` (ids of the original graph).
void partition_recursive(const CsrGraph& g, const std::vector<std::uint32_t>& vertices,
                         std::uint32_t part_lo, std::uint32_t parts,
                         Xoshiro256& rng, const BisectOptions& options,
                         std::vector<std::uint32_t>& assignment) {
  if (parts == 1) {
    for (std::uint32_t v : vertices) assignment[v] = part_lo;
    return;
  }
  std::vector<std::uint32_t> old_to_new;
  const CsrGraph sub = csr_subgraph(g, vertices, old_to_new);
  const std::uint32_t parts0 = parts / 2;
  const double fraction0 = static_cast<double>(parts0) / static_cast<double>(parts);
  const std::vector<std::uint8_t> side = bisect(sub, fraction0, rng, options);

  std::vector<std::uint32_t> left, right;
  for (std::uint32_t i = 0; i < vertices.size(); ++i) {
    (side[i] == 0 ? left : right).push_back(vertices[i]);
  }
  partition_recursive(g, left, part_lo, parts0, rng, options, assignment);
  partition_recursive(g, right, part_lo + parts0, parts - parts0, rng, options,
                      assignment);
}

}  // namespace

PartitionResult partition_graph(const CsrGraph& g, std::uint32_t parts,
                                std::uint64_t seed, const BisectOptions& options) {
  ORP_REQUIRE(parts >= 1, "need at least one part");
  ORP_REQUIRE(g.num_vertices() >= parts, "more parts than vertices");
  Xoshiro256 rng(seed);
  PartitionResult result;
  result.assignment.assign(g.num_vertices(), 0);
  std::vector<std::uint32_t> all(g.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  partition_recursive(g, all, 0, parts, rng, options, result.assignment);
  result.edge_cut = compute_edge_cut(g, result.assignment);
  result.part_weights.assign(parts, 0);
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    result.part_weights[result.assignment[v]] += g.vwgt[v];
  }
  return result;
}

std::uint64_t host_switch_cut(const HostSwitchGraph& g, std::uint32_t parts,
                              std::uint64_t seed, const BisectOptions& options) {
  const CsrGraph csr = csr_from_host_switch_graph(g);
  return partition_graph(csr, parts, seed, options).edge_cut;
}

}  // namespace orp

#pragma once
// Multilevel coarsening via heavy-edge matching (Karypis & Kumar).
//
// Each level matches vertices with their heaviest unmatched neighbor
// (random visiting order) and contracts matched pairs; parallel edges merge
// with summed weights, so the coarse graph's cuts equal the fine graph's
// cuts under the projected partition. Coarsening stops when the graph is
// small enough for direct initial partitioning or stops shrinking.

#include <vector>

#include "common/prng.hpp"
#include "partition/csr.hpp"

namespace orp {

struct CoarseLevel {
  CsrGraph graph;                  ///< the coarser graph
  std::vector<std::uint32_t> map;  ///< fine vertex -> coarse vertex
};

/// One round of heavy-edge matching + contraction.
CoarseLevel coarsen_once(const CsrGraph& fine, Xoshiro256& rng);

/// Full coarsening chain; level[0] coarsens the input, level.back().graph
/// is the coarsest. Stops at `target_vertices` or when a round removes
/// fewer than 10% of vertices.
std::vector<CoarseLevel> coarsen_chain(const CsrGraph& graph, Xoshiro256& rng,
                                       std::uint32_t target_vertices = 48);

}  // namespace orp

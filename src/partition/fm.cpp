#include "partition/fm.hpp"

#include <algorithm>
#include <queue>

#include "common/require.hpp"

namespace orp {

std::uint64_t bisection_cut(const CsrGraph& g, const std::vector<std::uint8_t>& side) {
  std::uint64_t cut = 0;
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    const auto neighbors = g.neighbors(v);
    const auto weights = g.edge_weights(v);
    for (std::size_t e = 0; e < neighbors.size(); ++e) {
      if (side[v] != side[neighbors[e]]) cut += weights[e];
    }
  }
  return cut / 2;
}

namespace {

// Lazy max-heap entry; stale entries (stamp mismatch) are skipped on pop.
struct HeapEntry {
  std::int64_t gain;
  std::uint32_t vertex;
  std::uint32_t stamp;
  bool operator<(const HeapEntry& other) const { return gain < other.gain; }
};

}  // namespace

std::uint64_t fm_refine(const CsrGraph& g, std::vector<std::uint8_t>& side,
                        const FmOptions& options) {
  const std::uint32_t nv = g.num_vertices();
  ORP_REQUIRE(side.size() == nv, "side assignment size mismatch");

  std::uint64_t side_weight[2] = {0, 0};
  for (std::uint32_t v = 0; v < nv; ++v) side_weight[side[v]] += g.vwgt[v];

  std::vector<std::int64_t> gain(nv);
  std::vector<std::uint32_t> stamp(nv);
  std::vector<std::uint8_t> locked(nv);
  std::uint64_t cut = bisection_cut(g, side);

  auto compute_gain = [&](std::uint32_t v) {
    std::int64_t external = 0, internal = 0;
    const auto neighbors = g.neighbors(v);
    const auto weights = g.edge_weights(v);
    for (std::size_t e = 0; e < neighbors.size(); ++e) {
      if (side[v] != side[neighbors[e]]) {
        external += weights[e];
      } else {
        internal += weights[e];
      }
    }
    return external - internal;
  };

  for (int pass = 0; pass < options.max_passes; ++pass) {
    std::priority_queue<HeapEntry> heap;
    std::fill(stamp.begin(), stamp.end(), 0);
    std::fill(locked.begin(), locked.end(), 0);
    for (std::uint32_t v = 0; v < nv; ++v) {
      gain[v] = compute_gain(v);
      heap.push({gain[v], v, 0});
    }

    // Trial move sequence with rollback to the best prefix.
    std::vector<std::uint32_t> moves;
    moves.reserve(nv);
    std::uint64_t trial_cut = cut;
    std::uint64_t best_cut = cut;
    std::size_t best_prefix = 0;
    // If the incoming partition violates balance, the first prefix that
    // restores it is recorded even when its cut is worse.
    bool best_balanced = side_weight[0] <= options.max_side_weight[0] &&
                         side_weight[1] <= options.max_side_weight[1];

    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      const std::uint32_t v = top.vertex;
      if (locked[v] || top.stamp != stamp[v]) continue;
      const std::uint8_t from = side[v];
      const std::uint8_t to = from ^ 1;
      // Balance: allow the move if the destination stays under its cap, or
      // if the source side is the (more) overloaded one.
      const bool dest_ok = side_weight[to] + g.vwgt[v] <= options.max_side_weight[to];
      const bool source_overloaded = side_weight[from] > options.max_side_weight[from];
      if (!dest_ok && !source_overloaded) continue;

      locked[v] = 1;
      side[v] = to;
      side_weight[from] -= g.vwgt[v];
      side_weight[to] += g.vwgt[v];
      trial_cut = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(trial_cut) - gain[v]);
      moves.push_back(v);
      const bool balanced = side_weight[0] <= options.max_side_weight[0] &&
                            side_weight[1] <= options.max_side_weight[1];
      if (balanced && (!best_balanced || trial_cut < best_cut)) {
        best_cut = trial_cut;
        best_prefix = moves.size();
        best_balanced = true;
      }
      // Update unlocked neighbors' gains.
      const auto neighbors = g.neighbors(v);
      for (const std::uint32_t u : neighbors) {
        if (locked[u]) continue;
        gain[u] = compute_gain(u);
        heap.push({gain[u], u, ++stamp[u]});
      }
    }

    // Roll back everything after the best prefix.
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      const std::uint32_t v = moves[i - 1];
      const std::uint8_t from = side[v];
      side[v] = from ^ 1;
      side_weight[from] -= g.vwgt[v];
      side_weight[from ^ 1] += g.vwgt[v];
    }
    // Stop when the pass neither improved the cut nor repaired balance
    // (a balance-repair pass may raise the cut and still deserves another
    // refinement round).
    const bool repaired_balance = best_balanced && best_prefix > 0 && best_cut >= cut;
    if (best_cut >= cut && !repaired_balance) break;
    cut = best_cut;
  }
  return cut;
}

}  // namespace orp

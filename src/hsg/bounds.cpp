#include "hsg/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace orp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// (base)^exp with saturation at 2^62 to avoid overflow in level fills.
std::uint64_t sat_pow(std::uint64_t base, std::uint32_t exp) {
  constexpr std::uint64_t kCap = 1ULL << 62;
  std::uint64_t result = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (result > kCap / std::max<std::uint64_t>(base, 1)) return kCap;
    result *= base;
  }
  return result;
}

}  // namespace

std::uint32_t diameter_lower_bound(std::uint64_t n, std::uint32_t r) {
  ORP_REQUIRE(n >= 2, "diameter bound needs at least two hosts");
  ORP_REQUIRE(r >= 3, "radix must be at least 3");
  // Smallest D with (r-1)^(D-1) >= n-1; a host reaches at most (r-1)^(i-1)
  // hosts along i edges (Theorem 1).
  std::uint32_t d = 1;
  while (sat_pow(r - 1, d - 1) < n - 1) ++d;
  return std::max<std::uint32_t>(d, 2);
}

double haspl_lower_bound(std::uint64_t n, std::uint32_t r) {
  ORP_REQUIRE(n >= 2, "h-ASPL bound needs at least two hosts");
  ORP_REQUIRE(r >= 3, "radix must be at least 3");
  const std::uint32_t d_minus = diameter_lower_bound(n, r);
  const std::uint64_t full_level = sat_pow(r - 1, d_minus - 1);
  if (n - 1 == full_level) return static_cast<double>(d_minus);
  // Theorem 2: alpha = (r-1)^{D-2} - ceil((n-1-(r-1)^{D-2}) / (r-2)).
  const std::uint64_t prev_level = sat_pow(r - 1, d_minus - 2);
  double alpha;
  if (n - 1 <= prev_level) {
    // Fewer hosts than one level below capacity; every host other than the
    // source can sit at distance D-1, alpha saturates at n-1 (bound = D-1,
    // which the final clamp keeps >= 2). Happens only for n <= r.
    alpha = static_cast<double>(n - 1);
  } else {
    const std::uint64_t overflow = n - 1 - prev_level;
    const std::uint64_t converted = (overflow + (r - 2) - 1) / (r - 2);  // ceil
    alpha = converted >= prev_level
                ? 0.0
                : static_cast<double>(prev_level - converted);
  }
  const double bound =
      static_cast<double>(d_minus) - alpha / static_cast<double>(n - 1);
  return std::max(bound, 2.0);
}

double moore_aspl_bound(std::uint64_t num_vertices, std::uint64_t degree) {
  if (num_vertices <= 1) return 0.0;
  if (degree == 0) return kInf;
  if (degree == 1) return num_vertices == 2 ? 1.0 : kInf;
  std::uint64_t remaining = num_vertices - 1;
  std::uint64_t level_cap = degree;  // K(K-1)^{i-1} at level i
  std::uint64_t sum = 0;
  for (std::uint64_t dist = 1; remaining > 0; ++dist) {
    const std::uint64_t take = std::min(remaining, level_cap);
    sum += take * dist;
    remaining -= take;
    if (level_cap > (1ULL << 62) / std::max<std::uint64_t>(degree - 1, 1)) {
      level_cap = 1ULL << 62;
    } else {
      level_cap *= degree - 1;
    }
  }
  return static_cast<double>(sum) / static_cast<double>(num_vertices - 1);
}

double continuous_moore_aspl_bound(double num_vertices, double degree) {
  if (num_vertices <= 1.0) return 0.0;
  if (degree <= 0.0) return kInf;
  double remaining = num_vertices - 1.0;
  if (degree <= 1.0) {
    // Levels shrink at ratio (K-1) <= 0: only level 1 holds vertices.
    return remaining <= degree ? 1.0 : kInf;
  }
  if (degree < 2.0) {
    // Total reachable mass K * sum (K-1)^{i-1} = K / (2 - K) is finite.
    // Exactly at the boundary the fill converges (geometrically shrinking
    // levels), so only strictly-greater mass is infeasible.
    if (remaining > degree / (2.0 - degree) * (1.0 + 1e-12)) return kInf;
  }
  double level_cap = degree;
  double sum = 0.0;
  for (double dist = 1.0; remaining > 1e-12; dist += 1.0) {
    const double take = std::min(remaining, level_cap);
    sum += take * dist;
    remaining -= take;
    level_cap *= degree - 1.0;
    if (dist > 1e7) return kInf;  // defensive: cannot converge
  }
  return sum / (num_vertices - 1.0);
}

double haspl_from_switch_aspl(double switch_aspl, std::uint64_t n, std::uint64_t m) {
  ORP_REQUIRE(n >= 2 && m >= 1, "need n >= 2, m >= 1");
  if (m == 1) return 2.0;
  const double mn = static_cast<double>(m) * static_cast<double>(n);
  return switch_aspl * (mn - static_cast<double>(n)) /
             (mn - static_cast<double>(m)) +
         2.0;
}

double regular_haspl_moore_bound(std::uint64_t n, std::uint64_t m, std::uint32_t r) {
  ORP_REQUIRE(m >= 1, "need at least one switch");
  ORP_REQUIRE(n % m == 0, "regular host-switch graphs need m | n");
  const std::uint64_t hosts_per_switch = n / m;
  if (hosts_per_switch > r) return kInf;
  const std::uint64_t degree = r - hosts_per_switch;
  if (m == 1) return hosts_per_switch <= r ? 2.0 : kInf;
  return haspl_from_switch_aspl(moore_aspl_bound(m, degree), n, m);
}

double continuous_haspl_moore_bound(std::uint64_t n, double m, std::uint32_t r) {
  ORP_REQUIRE(m >= 1.0, "need at least one switch");
  const double hosts_per_switch = static_cast<double>(n) / m;
  if (m < 1.5) {
    // Single switch: feasible iff all hosts fit on it.
    return static_cast<double>(n) <= static_cast<double>(r) ? 2.0 : kInf;
  }
  const double degree = static_cast<double>(r) - hosts_per_switch;
  const double switch_aspl = continuous_moore_aspl_bound(m, degree);
  if (std::isinf(switch_aspl)) return kInf;
  const double mn = m * static_cast<double>(n);
  return switch_aspl * (mn - static_cast<double>(n)) / (mn - m) + 2.0;
}

std::uint32_t optimal_switch_count(std::uint64_t n, std::uint32_t r) {
  ORP_REQUIRE(n >= 2, "need at least two hosts");
  ORP_REQUIRE(r >= 3, "radix must be at least 3");
  // The bound is infinite for m below ~n/(r-2) (not enough ports), dips to
  // a single minimum, and grows like log m afterwards; a full scan over
  // [1, n] is cheap at the n this library targets and immune to plateau
  // artifacts.
  double best = kInf;
  std::uint32_t best_m = 1;
  const std::uint64_t limit = std::max<std::uint64_t>(n, 2);
  for (std::uint64_t m = 1; m <= limit; ++m) {
    const double bound = continuous_haspl_moore_bound(n, static_cast<double>(m), r);
    if (bound < best) {
      best = bound;
      best_m = static_cast<std::uint32_t>(m);
    }
  }
  return best_m;
}

std::uint32_t clique_switch_count(std::uint64_t n, std::uint32_t r) {
  ORP_REQUIRE(n >= 1, "need at least one host");
  ORP_REQUIRE(r >= 3, "radix must be at least 3");
  for (std::uint32_t m = 1; m <= r + 1; ++m) {
    const std::uint64_t capacity =
        m >= r + 1 ? 0
                   : static_cast<std::uint64_t>(m) * (r - m + 1);
    if (capacity >= n) return m;
  }
  return 0;
}

}  // namespace orp

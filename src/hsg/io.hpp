#pragma once
// Serialization of host-switch graphs.
//
// Text format (one graph per stream):
//   hsg <n> <m> <r>
//   H <host> <switch>          (n lines, any order; detached hosts omitted)
//   S <switch_a> <switch_b>    (one line per switch-switch edge, a < b)
// '#' starts a comment. The reader validates structure and radix budgets.
//
// A Graphviz DOT exporter is provided for small graphs (documentation and
// examples; hosts drawn as circles, switches as boxes, matching Fig. 1).

#include <iosfwd>
#include <string>

#include "hsg/host_switch_graph.hpp"

namespace orp {

void write_hsg(std::ostream& os, const HostSwitchGraph& g);
bool write_hsg_file(const std::string& path, const HostSwitchGraph& g);

/// Parses the format above; throws std::invalid_argument with a line number
/// on malformed input.
HostSwitchGraph read_hsg(std::istream& is);
HostSwitchGraph read_hsg_file(const std::string& path);

/// DOT rendering (undirected). Hosts are ellipses, switches are boxes.
void write_dot(std::ostream& os, const HostSwitchGraph& g);

/// Graph Golf (Order/Degree Problem competition) edge-list interop: one
/// "u v" line per switch-switch edge. Hosts are not part of the format.
void write_edgelist(std::ostream& os, const HostSwitchGraph& g);

/// Reads a Graph Golf edge list into the ODP embedding: `order` switches,
/// one pendant host each, radix `degree + 1`. Vertices mentioned in the
/// file must be < order; degree violations throw.
HostSwitchGraph read_edgelist(std::istream& is, std::uint32_t order,
                              std::uint32_t degree);

}  // namespace orp

#pragma once
// h-ASPL and diameter computation for host-switch graphs (§3.2 of the
// paper).
//
// Host-to-host distances decompose: hosts are degree-1 pendants, so
// l(h_i, h_j) = d(s(h_i), s(h_j)) + 2 for hosts on different switches and
// exactly 2 for hosts sharing a switch. The metric therefore reduces to a
// weighted all-pairs shortest path over the switch subgraph, with each
// switch weighted by its attached host count k_s:
//
//   sum over host pairs = (1/2) * sum_{s,t} k_s k_t d(s,t)  +  2 * C(n,2)
//
// The weighted APSP runs on the bit-parallel kernel: 64 BFS sources per
// machine word (frontier/visited are bitmasks per vertex), the standard
// Graph-Golf trick, parallelized over source blocks with the shared thread
// pool. A scalar one-BFS-per-source reference survives as
// detail::compute_*_metrics_scalar, reachable only by the test suite
// (tests/hsg_metrics_test.cpp cross-checks the kernels bit for bit);
// every production consumer goes through the bit-parallel path.

#include <cstdint>
#include <limits>

#include "hsg/host_switch_graph.hpp"

namespace orp {

class ThreadPool;

enum class AsplKernel {
  kAuto,        ///< resolves to bit-parallel (kept for call-site stability)
  kBitParallel  ///< 64-sources-per-word level-synchronous BFS
};

/// Result of a host-to-host metric evaluation.
///
/// Disconnected-graph semantics (degraded-operation contract, see
/// docs/resilience.md): averages and the diameter are taken over the
/// *connected* host pairs only, and the pairs that cannot reach each other
/// are counted in `unreachable_pairs` instead of poisoning the scalars.
/// When every pair is unreachable (`connected_pairs == 0`) the h-ASPL is
/// +infinity and the diameter is kUnreachable — there is no path length to
/// report. Connected graphs are unaffected: `connected_pairs` equals
/// C(n,2) and `unreachable_pairs` is 0.
struct HostMetrics {
  /// Average shortest path length over the connected host pairs; +infinity
  /// when no pair is connected, 0 when n < 2.
  double h_aspl = 0.0;
  /// Maximum shortest path length over the connected host pairs;
  /// kUnreachable when no pair is connected, 0 when n < 2.
  std::uint32_t diameter = 0;
  /// True when every host can reach every other host.
  bool connected = true;
  /// Sum of l(h_i, h_j) over the connected unordered host pairs.
  std::uint64_t total_length = 0;
  /// Unordered host pairs with a path between them. C(n,2) when connected.
  std::uint64_t connected_pairs = 0;
  /// Unordered host pairs with no path between them. 0 when connected.
  std::uint64_t unreachable_pairs = 0;

  static constexpr std::uint32_t kUnreachable =
      std::numeric_limits<std::uint32_t>::max();
};

/// Metrics of the switch subgraph viewed as a plain undirected graph
/// (used by the regular-graph analysis of §5.1 / Eq. 1). Disconnected
/// graphs follow the same connected-pairs contract as HostMetrics.
struct SwitchMetrics {
  double aspl = 0.0;
  std::uint32_t diameter = 0;
  bool connected = true;
  std::uint64_t total_length = 0;
  std::uint64_t connected_pairs = 0;
  std::uint64_t unreachable_pairs = 0;
};

/// Computes h-ASPL / host diameter. Requires every host to be attached.
/// `pool` may be null (serial); pass &ThreadPool::global() to parallelize.
HostMetrics compute_host_metrics(const HostSwitchGraph& g,
                                 AsplKernel kernel = AsplKernel::kAuto,
                                 ThreadPool* pool = nullptr);

/// Degraded-operation variant: computes the same metrics over the
/// *attached* hosts only, tolerating detached ones (the fault layer
/// detaches hosts whose switch died). Pair counts are over the attached
/// host set; a graph with fewer than two attached hosts yields the
/// default-constructed result.
HostMetrics compute_live_host_metrics(const HostSwitchGraph& g,
                                      AsplKernel kernel = AsplKernel::kAuto,
                                      ThreadPool* pool = nullptr);

/// Computes the switch subgraph's ASPL / diameter.
SwitchMetrics compute_switch_metrics(const HostSwitchGraph& g,
                                     AsplKernel kernel = AsplKernel::kAuto,
                                     ThreadPool* pool = nullptr);

namespace detail {

/// Scalar reference kernels (one plain BFS per source), kept ONLY so the
/// test suite can cross-check the bit-parallel kernel and the microbench
/// can quantify its speedup. Deliberately unreachable via AsplKernel: no
/// production consumer may select the scalar path.
HostMetrics compute_host_metrics_scalar(const HostSwitchGraph& g,
                                        ThreadPool* pool = nullptr);
SwitchMetrics compute_switch_metrics_scalar(const HostSwitchGraph& g,
                                            ThreadPool* pool = nullptr);

}  // namespace detail

}  // namespace orp

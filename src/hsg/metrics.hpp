#pragma once
// h-ASPL and diameter computation for host-switch graphs (§3.2 of the
// paper).
//
// Host-to-host distances decompose: hosts are degree-1 pendants, so
// l(h_i, h_j) = d(s(h_i), s(h_j)) + 2 for hosts on different switches and
// exactly 2 for hosts sharing a switch. The metric therefore reduces to a
// weighted all-pairs shortest path over the switch subgraph, with each
// switch weighted by its attached host count k_s:
//
//   sum over host pairs = (1/2) * sum_{s,t} k_s k_t d(s,t)  +  2 * C(n,2)
//
// The weighted APSP runs on the bit-parallel kernel: 64 BFS sources per
// machine word (frontier/visited are bitmasks per vertex), the standard
// Graph-Golf trick, parallelized over source blocks with the shared thread
// pool. A scalar one-BFS-per-source reference survives as
// detail::compute_*_metrics_scalar, reachable only by the test suite
// (tests/hsg_metrics_test.cpp cross-checks the kernels bit for bit);
// every production consumer goes through the bit-parallel path.

#include <cstdint>
#include <limits>

#include "hsg/host_switch_graph.hpp"

namespace orp {

class ThreadPool;

enum class AsplKernel {
  kAuto,        ///< resolves to bit-parallel (kept for call-site stability)
  kBitParallel  ///< 64-sources-per-word level-synchronous BFS
};

/// Result of a host-to-host metric evaluation.
struct HostMetrics {
  /// Host-to-host average shortest path length A(G); +infinity when some
  /// host pair is unreachable, 0 when n < 2.
  double h_aspl = 0.0;
  /// Host-to-host diameter D(G); kUnreachable when disconnected, 0 when n < 2.
  std::uint32_t diameter = 0;
  /// True when every host can reach every other host.
  bool connected = true;
  /// Sum of l(h_i, h_j) over unordered host pairs (meaningful only when
  /// connected).
  std::uint64_t total_length = 0;

  static constexpr std::uint32_t kUnreachable =
      std::numeric_limits<std::uint32_t>::max();
};

/// Metrics of the switch subgraph viewed as a plain undirected graph
/// (used by the regular-graph analysis of §5.1 / Eq. 1).
struct SwitchMetrics {
  double aspl = 0.0;
  std::uint32_t diameter = 0;
  bool connected = true;
  std::uint64_t total_length = 0;
};

/// Computes h-ASPL / host diameter. Requires every host to be attached.
/// `pool` may be null (serial); pass &ThreadPool::global() to parallelize.
HostMetrics compute_host_metrics(const HostSwitchGraph& g,
                                 AsplKernel kernel = AsplKernel::kAuto,
                                 ThreadPool* pool = nullptr);

/// Computes the switch subgraph's ASPL / diameter.
SwitchMetrics compute_switch_metrics(const HostSwitchGraph& g,
                                     AsplKernel kernel = AsplKernel::kAuto,
                                     ThreadPool* pool = nullptr);

namespace detail {

/// Scalar reference kernels (one plain BFS per source), kept ONLY so the
/// test suite can cross-check the bit-parallel kernel and the microbench
/// can quantify its speedup. Deliberately unreachable via AsplKernel: no
/// production consumer may select the scalar path.
HostMetrics compute_host_metrics_scalar(const HostSwitchGraph& g,
                                        ThreadPool* pool = nullptr);
SwitchMetrics compute_switch_metrics_scalar(const HostSwitchGraph& g,
                                            ThreadPool* pool = nullptr);

}  // namespace detail

}  // namespace orp

#pragma once
// The host-switch graph model from "Order/Radix Problem: Towards Low
// End-to-End Latency Interconnection Networks" (Yasudo et al., ICPP 2017).
//
// A host-switch graph G = (H, S, E) has n degree-1 *host* vertices, m
// *switch* vertices with at most r incident edges (r = radix), and edges
// that are either host-switch or switch-switch. Hosts model compute
// endpoints, switches model routers; the end-to-end latency of the modeled
// interconnection network is the host-to-host shortest path length.
//
// Representation: each host stores the switch it is attached to, and the
// switch-switch subgraph is an adjacency list. Degrees are tiny (<= r, and
// r <= 64 in every practical network), so adjacency membership tests are
// linear scans — faster than hashing at this scale and allocation-free.

#include <cstdint>
#include <span>
#include <vector>

#include "common/require.hpp"

namespace orp {

using HostId = std::uint32_t;
using SwitchId = std::uint32_t;

class HostSwitchGraph {
 public:
  /// Creates a graph with `n` detached hosts, `m` isolated switches, and
  /// radix `r`. The paper requires n >= 3, m >= 1, r >= 3; we additionally
  /// accept small n for unit tests but never n == 0.
  HostSwitchGraph(std::uint32_t n, std::uint32_t m, std::uint32_t r);

  std::uint32_t num_hosts() const noexcept { return n_; }
  std::uint32_t num_switches() const noexcept { return m_; }
  std::uint32_t radix() const noexcept { return r_; }

  // ---- host <-> switch attachment -----------------------------------

  static constexpr SwitchId kDetached = 0xffffffffu;

  /// The switch host `h` is attached to, or kDetached.
  SwitchId host_switch(HostId h) const {
    ORP_ASSERT(h < n_);
    return host_switch_[h];
  }
  bool host_attached(HostId h) const { return host_switch(h) != kDetached; }
  /// True when every host is attached to some switch.
  bool fully_attached() const noexcept { return attached_hosts_ == n_; }

  /// Attaches detached host `h` to switch `s`; requires a free port on `s`.
  void attach_host(HostId h, SwitchId s);
  /// Detaches host `h` from its switch.
  void detach_host(HostId h);
  /// Moves host `h` from its current switch to `to` (which needs a free
  /// port unless it already hosts `h`).
  void move_host(HostId h, SwitchId to);

  /// Number of hosts attached to switch `s` (the paper's k_s).
  std::uint32_t hosts_on(SwitchId s) const {
    ORP_ASSERT(s < m_);
    return hosts_per_switch_[s];
  }

  // ---- switch-switch edges -------------------------------------------

  std::span<const SwitchId> neighbors(SwitchId s) const {
    ORP_ASSERT(s < m_);
    return adj_[s];
  }
  std::uint32_t switch_degree(SwitchId s) const {
    ORP_ASSERT(s < m_);
    return static_cast<std::uint32_t>(adj_[s].size());
  }
  /// Ports in use on `s`: switch links plus attached hosts.
  std::uint32_t ports_used(SwitchId s) const {
    return switch_degree(s) + hosts_on(s);
  }
  std::uint32_t free_ports(SwitchId s) const { return r_ - ports_used(s); }

  bool has_switch_edge(SwitchId a, SwitchId b) const;
  /// Adds edge {a,b}; requires a != b, no existing edge, and a free port on
  /// both endpoints.
  void add_switch_edge(SwitchId a, SwitchId b);
  /// Removes edge {a,b}; requires the edge to exist.
  void remove_switch_edge(SwitchId a, SwitchId b);

  std::uint64_t num_switch_edges() const noexcept { return switch_edges_; }
  /// Total edge count |E| = switch-switch edges + attached hosts.
  std::uint64_t num_edges() const noexcept { return switch_edges_ + attached_hosts_; }

  // ---- whole-graph queries -------------------------------------------

  /// True when the switch subgraph is connected (m == 1 counts). Hosts are
  /// degree-1 pendants, so this is equivalent to whole-graph connectivity
  /// once every host is attached.
  bool switches_connected() const;

  /// Host distribution: element k = number of switches with exactly k
  /// attached hosts (the paper's Fig. 6 / Fig. 8 histogram). The vector has
  /// max(k_s)+1 entries (at least 1).
  std::vector<std::uint32_t> host_distribution() const;

  /// List of hosts attached to each switch, built on demand (O(n + m)).
  std::vector<std::vector<HostId>> hosts_by_switch() const;

  /// Checks every structural invariant (port budgets, adjacency symmetry,
  /// counter consistency); throws std::logic_error with a description on
  /// the first violation. Intended for tests and after deserialization.
  void check_invariants() const;

  bool operator==(const HostSwitchGraph& other) const;

 private:
  std::uint32_t n_;
  std::uint32_t m_;
  std::uint32_t r_;
  std::uint32_t attached_hosts_ = 0;
  std::uint64_t switch_edges_ = 0;
  std::vector<SwitchId> host_switch_;
  std::vector<std::uint32_t> hosts_per_switch_;
  std::vector<std::vector<SwitchId>> adj_;
};

}  // namespace orp

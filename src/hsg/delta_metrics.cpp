#include "hsg/delta_metrics.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"

namespace orp {
namespace {

// Per-process delta-eval counters: hit/fallback ratio and repair volume.
// An "incremental" apply repaired in place; a "fallback" apply rebuilt the
// whole distance state from scratch.
struct DeltaInstruments {
  obs::Counter& applies;
  obs::Counter& reverts;
  obs::Counter& incremental;
  obs::Counter& fallback;
  obs::Counter& dirty_sources;
  obs::Counter& scalar_repairs;
  obs::Counter& batched_sources;

  static DeltaInstruments& get() {
    auto& registry = obs::Registry::global();
    static DeltaInstruments instance{
        registry.counter("delta_eval.applies"),
        registry.counter("delta_eval.reverts"),
        registry.counter("delta_eval.incremental"),
        registry.counter("delta_eval.fallback"),
        registry.counter("delta_eval.dirty_sources"),
        registry.counter("delta_eval.scalar_repairs"),
        registry.counter("delta_eval.batched_sources")};
    return instance;
  }
};

}  // namespace

DeltaHasplEvaluator::DeltaHasplEvaluator(const HostSwitchGraph& g,
                                         DeltaEvalOptions options)
    : options_(options) {
  rebuild(g);
}

void DeltaHasplEvaluator::rebuild(const HostSwitchGraph& g) {
  ORP_REQUIRE(g.fully_attached(),
              "delta evaluator needs every host attached to a switch");
  ORP_REQUIRE(g.num_switches() < kInf16,
              "delta evaluator supports at most 65534 switches");
  m_ = g.num_switches();

  // Stride r+2: a replayed move may transiently push a switch one past its
  // final degree (additions are mirrored before removals).
  adj_stride_ = g.radix() + 2;
  adj_.assign(std::size_t{m_} * adj_stride_, 0);
  degree_.assign(m_, 0);
  weight_.resize(m_);
  sync_graph(g);

  dist_.assign(std::size_t{m_} * m_, kInf16);
  sum_w_.assign(m_, 0);
  unreach_w_.assign(m_, 0);
  row_max_.assign(m_, 0);

  dirty_sources_.clear();
  dirty_sources_.reserve(m_);
  queue_.clear();
  queue_.reserve(m_);
  affected_.reserve(m_);
  level_cur_.reserve(m_);
  level_next_.reserve(m_);
  tentative_.assign(m_, kInf16);
  visit_epoch_.assign(m_, 0);
  epoch_ = 0;
  buckets_.assign(std::size_t{m_} + 2, {});
  scratch_rows_.assign(std::size_t{64} * m_, kInf16);
  bp_frontier_.assign(m_, 0);
  bp_next_.assign(m_, 0);
  bp_reached_.assign(m_, 0);

  alt_u_.assign(m_, 0);
  alt_v_.assign(m_, 0);

  undo_entries_.clear();
  undo_entries_.reserve(std::size_t{8} * m_);
  undo_rows_.clear();
  undo_rows_.reserve(m_);
  frames_.clear();
  row_epoch_.assign(m_, 0);
  rescan_epoch_.assign(m_, 0);
  rescan_rows_.clear();
  rescan_rows_.reserve(m_);
  apply_epoch_ = 0;

  rebuild_all_rows();
  rebuild_aggregates();

  // A disconnected snapshot is rejected outright: the incremental repair
  // invariants assume the mirrored baseline has every host pair reachable
  // (the annealer establishes this before constructing the evaluator), and
  // silently seeding the mirror from a split graph would corrupt every
  // subsequent delta. Transient disconnection via apply() stays supported —
  // that is the annealer's reject path.
  for (std::uint32_t s = 0; s < m_; ++s) {
    ORP_REQUIRE(weight_[s] == 0 || unreach_w_[s] == 0,
                "delta evaluator needs a connected initial solution "
                "(some host pair is unreachable in the snapshot)");
  }
}

void DeltaHasplEvaluator::sync_graph(const HostSwitchGraph& g) {
  ORP_ASSERT(g.num_switches() == m_);
  n_ = g.num_hosts();
  std::fill(degree_.begin(), degree_.end(), 0);
  for (SwitchId s = 0; s < m_; ++s) {
    for (SwitchId t : g.neighbors(s)) {
      adj_[std::size_t{s} * adj_stride_ + degree_[s]++] = t;
    }
  }
  for (SwitchId s = 0; s < m_; ++s) weight_[s] = g.hosts_on(s);
}

void DeltaHasplEvaluator::adj_add(SwitchId a, SwitchId b) {
  ORP_ASSERT(degree_[a] < adj_stride_ && degree_[b] < adj_stride_);
  adj_[std::size_t{a} * adj_stride_ + degree_[a]++] = b;
  adj_[std::size_t{b} * adj_stride_ + degree_[b]++] = a;
}

void DeltaHasplEvaluator::adj_remove(SwitchId a, SwitchId b) {
  auto drop = [&](SwitchId x, SwitchId y) {
    SwitchId* list = adj_.data() + std::size_t{x} * adj_stride_;
    const std::uint32_t deg = degree_[x];
    for (std::uint32_t i = 0; i < deg; ++i) {
      if (list[i] == y) {
        list[i] = list[deg - 1];
        --degree_[x];
        return;
      }
    }
    ORP_ASSERT(false);
  };
  drop(a, b);
  drop(b, a);
}

void DeltaHasplEvaluator::write_entry(std::uint32_t s, std::uint32_t v,
                                      std::uint16_t next) {
  std::uint16_t* rs = row(s);
  const std::uint16_t old = rs[v];
  if (old == next) return;
  if (row_epoch_[s] != apply_epoch_) {
    row_epoch_[s] = apply_epoch_;
    undo_rows_.push_back({s, sum_w_[s], unreach_w_[s], row_max_[s]});
  }
  undo_entries_.push_back(std::uint64_t{s} << 32 | std::uint64_t{v} << 16 | old);
  rs[v] = next;

  // Maintain the weighted aggregates in place; only a lowered row max needs
  // a deferred rescan (apply() drains rescan_rows_ before the host moves).
  // Until that rescan, row_max_[s] is an upper bound on the true max.
  const std::uint32_t wv = weight_[v];
  if (!wv) return;
  if (old == kInf16) {
    unreach_w_[s] -= wv;
  } else {
    sum_w_[s] -= std::uint64_t{wv} * old;
  }
  if (next == kInf16) {
    unreach_w_[s] += wv;
  } else {
    sum_w_[s] += std::uint64_t{wv} * next;
    if (next > row_max_[s]) row_max_[s] = next;
  }
  if (old != kInf16 && old == row_max_[s] &&
      rescan_epoch_[s] != apply_epoch_) {
    rescan_epoch_[s] = apply_epoch_;
    rescan_rows_.push_back(s);
  }
}

void DeltaHasplEvaluator::recompute_row_aggregates(std::uint32_t s) {
  const std::uint16_t* rs = row(s);
  std::uint64_t sum = 0, unreach = 0;
  std::uint16_t mx = 0;
  for (std::uint32_t v = 0; v < m_; ++v) {
    const std::uint32_t wv = weight_[v];
    if (!wv) continue;
    const std::uint16_t d = rs[v];
    if (d == kInf16) {
      unreach += wv;
    } else {
      sum += std::uint64_t{wv} * d;
      if (d > mx) mx = d;
    }
  }
  sum_w_[s] = sum;
  unreach_w_[s] = unreach;
  row_max_[s] = mx;
}

void DeltaHasplEvaluator::rescan_row_max(std::uint32_t s) {
  const std::uint16_t* rs = row(s);
  std::uint16_t mx = 0;
  for (std::uint32_t v = 0; v < m_; ++v) {
    if (weight_[v] && rs[v] != kInf16 && rs[v] > mx) mx = rs[v];
  }
  row_max_[s] = mx;
}

// ---- per-source repairs -------------------------------------------------

void DeltaHasplEvaluator::repair_addition(std::uint32_t s, SwitchId near,
                                          SwitchId far) {
  // Pruned BFS from the farther endpoint: every vertex improvable through
  // the new edge is reached through `far`, and the pruning (only enqueue on
  // strict improvement) is exact for unit weights.
  std::uint16_t* rs = row(s);
  const std::uint32_t nd = std::uint32_t{rs[near]} + 1;
  queue_.clear();
  write_entry(s, far, static_cast<std::uint16_t>(nd));
  queue_.push_back(far);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const std::uint32_t x = queue_[head];
    const std::uint32_t dx = rs[x];
    const SwitchId* nb = adj_.data() + std::size_t{x} * adj_stride_;
    const std::uint32_t deg = degree_[x];
    for (std::uint32_t i = 0; i < deg; ++i) {
      const SwitchId y = nb[i];
      if (std::uint32_t{rs[y]} > dx + 1) {
        write_entry(s, y, static_cast<std::uint16_t>(dx + 1));
        queue_.push_back(y);
      }
    }
  }
}

void DeltaHasplEvaluator::repair_removal(std::uint32_t s, SwitchId far) {
  std::uint16_t* rs = row(s);

  // Phase 1 — affected-set discovery in old-BFS-level order. `far` lost its
  // last predecessor (checked by the caller's filter); a deeper vertex is
  // affected iff every predecessor on the previous level is affected, which
  // level-ordered processing decides with finalized information.
  epoch_ += 2;  // epoch_ = affected, epoch_ + 1 = settled (phase 2)
  const std::uint32_t aff = epoch_, settled = epoch_ + 1;
  affected_.clear();
  level_cur_.clear();
  visit_epoch_[far] = aff;
  affected_.push_back(far);
  level_cur_.push_back(far);
  std::uint32_t d = rs[far];
  while (!level_cur_.empty()) {
    level_next_.clear();
    for (std::uint32_t x : level_cur_) {
      const SwitchId* nb = adj_.data() + std::size_t{x} * adj_stride_;
      const std::uint32_t deg = degree_[x];
      for (std::uint32_t i = 0; i < deg; ++i) {
        const SwitchId y = nb[i];
        if (std::uint32_t{rs[y]} != d + 1 || visit_epoch_[y] == aff) continue;
        bool has_alt = false;
        const SwitchId* ynb = adj_.data() + std::size_t{y} * adj_stride_;
        const std::uint32_t ydeg = degree_[y];
        for (std::uint32_t j = 0; j < ydeg; ++j) {
          const SwitchId z = ynb[j];
          if (visit_epoch_[z] != aff && std::uint32_t{rs[z]} + 1 == std::uint32_t{rs[y]}) {
            has_alt = true;
            break;
          }
        }
        if (has_alt) continue;
        visit_epoch_[y] = aff;
        affected_.push_back(y);
        level_next_.push_back(y);
      }
    }
    level_cur_.swap(level_next_);
    ++d;
  }

  // Single-vertex affected set (the common case in well-connected graphs):
  // every neighbor distance is final, so the new value is a direct min.
  if (affected_.size() == 1) {
    std::uint32_t best = kInf16;
    const SwitchId* nb = adj_.data() + std::size_t{far} * adj_stride_;
    const std::uint32_t deg = degree_[far];
    for (std::uint32_t i = 0; i < deg; ++i) {
      const std::uint32_t cand = std::uint32_t{rs[nb[i]]} + 1;
      if (cand < best) best = cand;
    }
    write_entry(s, far,
                best >= kInf16 ? kInf16 : static_cast<std::uint16_t>(best));
    return;
  }

  // When the affected region is most of the graph a plain BFS beats the
  // two-phase repair.
  if (affected_.size() > m_ / 2) {
    recompute_row_scalar(s);
    return;
  }

  // Phase 2 — re-relax the affected region from its unaffected boundary
  // (whose distances are final) with a bucket queue; unit weights keep the
  // buckets dense. Vertices never settled are now unreachable.
  std::uint32_t min_b = m_ + 1, max_b = 0;
  for (std::uint32_t x : affected_) {
    std::uint32_t best = kInf16;
    const SwitchId* nb = adj_.data() + std::size_t{x} * adj_stride_;
    const std::uint32_t deg = degree_[x];
    for (std::uint32_t i = 0; i < deg; ++i) {
      const SwitchId z = nb[i];
      if (visit_epoch_[z] != aff && rs[z] != kInf16 &&
          std::uint32_t{rs[z]} + 1 < best) {
        best = std::uint32_t{rs[z]} + 1;
      }
    }
    tentative_[x] = static_cast<std::uint16_t>(best);
    if (best <= m_) {
      buckets_[best].push_back(x);
      min_b = std::min(min_b, best);
      max_b = std::max(max_b, best);
    }
  }
  for (std::uint32_t d2 = min_b; d2 <= max_b && d2 <= m_; ++d2) {
    auto& bucket = buckets_[d2];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const std::uint32_t x = bucket[i];
      if (visit_epoch_[x] != aff || tentative_[x] != d2) continue;  // settled/stale
      visit_epoch_[x] = settled;
      write_entry(s, x, static_cast<std::uint16_t>(d2));
      const SwitchId* nb = adj_.data() + std::size_t{x} * adj_stride_;
      const std::uint32_t deg = degree_[x];
      for (std::uint32_t j = 0; j < deg; ++j) {
        const SwitchId y = nb[j];
        if (visit_epoch_[y] == aff && std::uint32_t{tentative_[y]} > d2 + 1) {
          tentative_[y] = static_cast<std::uint16_t>(d2 + 1);
          buckets_[d2 + 1].push_back(y);
          max_b = std::max(max_b, d2 + 1);
        }
      }
    }
    bucket.clear();
  }
  for (std::uint32_t x : affected_) {
    if (visit_epoch_[x] == aff) write_entry(s, x, kInf16);
  }
}

void DeltaHasplEvaluator::recompute_row_scalar(std::uint32_t s) {
  std::fill(tentative_.begin(), tentative_.end(), kInf16);
  queue_.clear();
  queue_.push_back(s);
  tentative_[s] = 0;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const std::uint32_t x = queue_[head];
    const std::uint32_t dx = tentative_[x];
    const SwitchId* nb = adj_.data() + std::size_t{x} * adj_stride_;
    const std::uint32_t deg = degree_[x];
    for (std::uint32_t i = 0; i < deg; ++i) {
      const SwitchId y = nb[i];
      if (tentative_[y] == kInf16) {
        tentative_[y] = static_cast<std::uint16_t>(dx + 1);
        queue_.push_back(y);
      }
    }
  }
  for (std::uint32_t v = 0; v < m_; ++v) write_entry(s, v, tentative_[v]);
}

// ---- batched bit-parallel recompute ------------------------------------

void DeltaHasplEvaluator::recompute_rows_bitparallel(
    const std::vector<std::uint32_t>& sources) {
  for (std::size_t begin = 0; begin < sources.size(); begin += 64) {
    const std::size_t block = std::min<std::size_t>(64, sources.size() - begin);
    std::fill(scratch_rows_.begin(),
              scratch_rows_.begin() + static_cast<std::ptrdiff_t>(block * m_), kInf16);
    std::fill(bp_frontier_.begin(), bp_frontier_.end(), 0);
    std::fill(bp_reached_.begin(), bp_reached_.end(), 0);
    for (std::size_t j = 0; j < block; ++j) {
      const std::uint32_t src = sources[begin + j];
      bp_frontier_[src] |= 1ULL << j;
      bp_reached_[src] |= 1ULL << j;
      scratch_rows_[j * m_ + src] = 0;
    }
    for (std::uint32_t round = 1; round <= m_; ++round) {
      std::fill(bp_next_.begin(), bp_next_.end(), 0);
      bool any = false;
      for (std::uint32_t v = 0; v < m_; ++v) {
        std::uint64_t acc = 0;
        const SwitchId* nb = adj_.data() + std::size_t{v} * adj_stride_;
        const std::uint32_t deg = degree_[v];
        for (std::uint32_t i = 0; i < deg; ++i) acc |= bp_frontier_[nb[i]];
        std::uint64_t fresh = acc & ~bp_reached_[v];
        if (!fresh) continue;
        any = true;
        bp_next_[v] = fresh;
        bp_reached_[v] |= fresh;
        while (fresh) {
          const int j = __builtin_ctzll(fresh);
          fresh &= fresh - 1;
          scratch_rows_[static_cast<std::size_t>(j) * m_ + v] =
              static_cast<std::uint16_t>(round);
        }
      }
      if (!any) break;
      bp_frontier_.swap(bp_next_);
    }
    for (std::size_t j = 0; j < block; ++j) {
      const std::uint32_t src = sources[begin + j];
      const std::uint16_t* fresh_row = scratch_rows_.data() + j * m_;
      for (std::uint32_t v = 0; v < m_; ++v) write_entry(src, v, fresh_row[v]);
    }
  }
}

void DeltaHasplEvaluator::rebuild_all_rows() {
  std::fill(dist_.begin(), dist_.end(), kInf16);
  for (std::uint32_t begin = 0; begin < m_; begin += 64) {
    const std::uint32_t block = std::min<std::uint32_t>(64, m_ - begin);
    std::fill(bp_frontier_.begin(), bp_frontier_.end(), 0);
    std::fill(bp_reached_.begin(), bp_reached_.end(), 0);
    for (std::uint32_t j = 0; j < block; ++j) {
      const std::uint32_t src = begin + j;
      bp_frontier_[src] |= 1ULL << j;
      bp_reached_[src] |= 1ULL << j;
      row(src)[src] = 0;
    }
    for (std::uint32_t round = 1; round <= m_; ++round) {
      std::fill(bp_next_.begin(), bp_next_.end(), 0);
      bool any = false;
      for (std::uint32_t v = 0; v < m_; ++v) {
        std::uint64_t acc = 0;
        const SwitchId* nb = adj_.data() + std::size_t{v} * adj_stride_;
        const std::uint32_t deg = degree_[v];
        for (std::uint32_t i = 0; i < deg; ++i) acc |= bp_frontier_[nb[i]];
        std::uint64_t fresh = acc & ~bp_reached_[v];
        if (!fresh) continue;
        any = true;
        bp_next_[v] = fresh;
        bp_reached_[v] |= fresh;
        while (fresh) {
          const int j = __builtin_ctzll(fresh);
          fresh &= fresh - 1;
          row(begin + static_cast<std::uint32_t>(j))[v] =
              static_cast<std::uint16_t>(round);
        }
      }
      if (!any) break;
      bp_frontier_.swap(bp_next_);
    }
  }
}

void DeltaHasplEvaluator::rebuild_aggregates() {
  weighted_switches_ = 0;
  for (std::uint32_t s = 0; s < m_; ++s) {
    if (weight_[s]) ++weighted_switches_;
    recompute_row_aggregates(s);
  }
}

// ---- change application -------------------------------------------------

void DeltaHasplEvaluator::apply_edge_addition(SwitchId u, SwitchId v) {
  // Collect the dirty sources before repairing any row: the filter reads
  // rows u and v, which may themselves be dirty.
  dirty_sources_.clear();
  const std::uint16_t* ru = row(u);
  const std::uint16_t* rv = row(v);
  // |du - dv| >= 2 covers every case in one predictable test: equal levels
  // (incl. both unreachable) give 0, an adjacent-level pair gives 1, and a
  // finite/unreachable pair gives a huge gap (a real shortcut).
  for (std::uint32_t s = 0; s < m_; ++s) {
    const std::uint32_t du = ru[s], dv = rv[s];
    const std::uint32_t gap = du > dv ? du - dv : dv - du;
    if (gap >= 2) dirty_sources_.push_back(s);
  }
  stats_.dirty_sources += dirty_sources_.size();
  stats_.scalar_repairs += dirty_sources_.size();
  for (std::uint32_t s : dirty_sources_) {
    const std::uint16_t* base_u = row(u);  // row u may have been repaired (s == u)
    const std::uint16_t* base_v = row(v);
    const bool u_near = std::uint32_t{base_u[s]} < std::uint32_t{base_v[s]};
    repair_addition(s, u_near ? u : v, u_near ? v : u);
  }
}

void DeltaHasplEvaluator::apply_edge_removal(SwitchId u, SwitchId v) {
  // Dirty filter: row s changes iff the endpoints sat on different BFS
  // levels AND the deeper endpoint has no surviving neighbor one level
  // closer (the adjacency already excludes the removed edge, so only
  // survivors are seen). The surviving-predecessor masks are built with
  // branch-free row-vs-row sweeps (one per endpoint neighbor) that the
  // compiler vectorizes over uint16 lanes; rz[s] + 1 wrapping at the
  // unreachable sentinel can only collide at s == u (resp. v), whose mask
  // entry is never consulted because that source's far endpoint is the
  // other one.
  dirty_sources_.clear();
  const std::uint16_t* ru = row(u);
  const std::uint16_t* rv = row(v);
  auto build_alt_mask = [&](SwitchId x, const std::uint16_t* rx,
                            std::uint16_t* alt) {
    std::fill(alt, alt + m_, 0);
    const SwitchId* nb = adj_.data() + std::size_t{x} * adj_stride_;
    const std::uint32_t deg = degree_[x];
    for (std::uint32_t i = 0; i < deg; ++i) {
      const std::uint16_t* rz = row(nb[i]);
      for (std::uint32_t s = 0; s < m_; ++s) {
        alt[s] |= static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(rz[s] + 1) == rx[s]);
      }
    }
  };
  build_alt_mask(u, ru, alt_u_.data());
  build_alt_mask(v, rv, alt_v_.data());
  for (std::uint32_t s = 0; s < m_; ++s) {
    const std::uint32_t du = ru[s], dv = rv[s];
    if (du == dv) continue;  // edge on no shortest path from s (or both inf)
    if (std::max(du, dv) == kInf16) continue;  // already unreachable
    if (!(du > dv ? alt_u_[s] : alt_v_[s])) dirty_sources_.push_back(s);
  }
  stats_.dirty_sources += dirty_sources_.size();

  if (options_.batch_sources && dirty_sources_.size() <= options_.batch_sources) {
    stats_.scalar_repairs += dirty_sources_.size();
    for (std::uint32_t s : dirty_sources_) {
      const bool v_far = std::uint32_t{row(v)[s]} > std::uint32_t{row(u)[s]};
      repair_removal(s, v_far ? v : u);
    }
  } else {
    stats_.batched_sources += dirty_sources_.size();
    recompute_rows_bitparallel(dirty_sources_);
  }
}

void DeltaHasplEvaluator::apply_host_move(SwitchId from, SwitchId to) {
  ORP_ASSERT(weight_[from] > 0);
  // Shrinking a row max on a weight zero-crossing is the one change the
  // undo log cannot reverse arithmetically: snapshot all row maxes once.
  if (weight_[from] == 1 || weight_[to] == 0) {
    UndoFrame& frame = frames_.back();
    if (!frame.row_max_snapshot_valid) {
      frame.row_max_snapshot.assign(row_max_.begin(), row_max_.end());
      frame.row_max_snapshot_valid = true;
    }
  }
  auto shift = [&](SwitchId x, bool gain) {
    const std::uint16_t* rx = row(x);
    const std::uint32_t old_w = weight_[x];
    const std::uint32_t new_w = gain ? old_w + 1 : old_w - 1;
    for (std::uint32_t s = 0; s < m_; ++s) {
      const std::uint16_t dxs = rx[s];
      if (dxs == kInf16) {
        unreach_w_[s] += gain ? 1 : std::uint64_t(-1);
      } else if (gain) {
        sum_w_[s] += dxs;
      } else {
        sum_w_[s] -= dxs;
      }
    }
    weight_[x] = new_w;
    if (old_w == 0 && new_w > 0) {
      ++weighted_switches_;
      for (std::uint32_t s = 0; s < m_; ++s) {
        if (rx[s] != kInf16 && rx[s] > row_max_[s]) row_max_[s] = rx[s];
      }
    } else if (old_w > 0 && new_w == 0) {
      --weighted_switches_;
      for (std::uint32_t s = 0; s < m_; ++s) {
        if (rx[s] != kInf16 && rx[s] == row_max_[s] && row_max_[s] > 0) {
          rescan_row_max(s);
        }
      }
    }
  };
  shift(from, /*gain=*/false);
  shift(to, /*gain=*/true);
}

HostMetrics DeltaHasplEvaluator::apply(const GraphDelta& delta) {
  DeltaInstruments& instruments = DeltaInstruments::get();
  ++stats_.applies;
  instruments.applies.inc();
  stats_.edge_changes += delta.num_added + delta.num_removed;
  const std::uint64_t dirty_before = stats_.dirty_sources;

  ++apply_epoch_;
  rescan_rows_.clear();
  // An apply that is never reverted (an accepted move) leaves its frame
  // behind; bound the stack by forgetting the oldest frame. Depth 4 covers
  // every real nesting (the 2-neighbor completion chain needs 2).
  constexpr std::size_t kMaxUndoDepth = 4;
  if (frames_.size() >= kMaxUndoDepth) {
    const std::size_t drop_e = frames_[1].entries_begin;
    const std::size_t drop_r = frames_[1].rows_begin;
    undo_entries_.erase(undo_entries_.begin(),
                        undo_entries_.begin() + static_cast<std::ptrdiff_t>(drop_e));
    undo_rows_.erase(undo_rows_.begin(),
                     undo_rows_.begin() + static_cast<std::ptrdiff_t>(drop_r));
    frames_.erase(frames_.begin());
    for (UndoFrame& f : frames_) {
      f.entries_begin -= drop_e;
      f.rows_begin -= drop_r;
    }
  }
  UndoFrame frame;
  frame.entries_begin = undo_entries_.size();
  frame.rows_begin = undo_rows_.size();
  frame.delta = delta;
  frames_.push_back(std::move(frame));

  const auto fallback_limit = static_cast<std::size_t>(
      options_.fallback_fraction * static_cast<double>(m_));
  bool fell_back = false;

  // Additions first: they can only shrink distances, so a move that keeps
  // the graph connected never routes the repair through a transiently
  // disconnected state.
  for (std::uint8_t i = 0; i < delta.num_added; ++i) {
    adj_add(delta.added[i].first, delta.added[i].second);
    if (!fell_back) apply_edge_addition(delta.added[i].first, delta.added[i].second);
  }
  for (std::uint8_t i = 0; i < delta.num_removed; ++i) {
    adj_remove(delta.removed[i].first, delta.removed[i].second);
    if (!fell_back) {
      apply_edge_removal(delta.removed[i].first, delta.removed[i].second);
      if (dirty_sources_.size() > fallback_limit) fell_back = true;
    }
  }

  if (fell_back) {
    frames_.back().was_rebuild = true;
    for (std::uint8_t i = 0; i < delta.num_host_moves; ++i) {
      --weight_[delta.host_moves[i].from];
      ++weight_[delta.host_moves[i].to];
    }
    ++stats_.fallback_rebuilds;
    instruments.fallback.inc();
    rebuild_all_rows();
    rebuild_aggregates();
  } else {
    // write_entry kept sum/unreach exact; rows whose max may have shrunk
    // were queued for one rescan each. Resolve them before the host moves,
    // which compare against row maxes.
    for (std::uint32_t s : rescan_rows_) rescan_row_max(s);
    for (std::uint8_t i = 0; i < delta.num_host_moves; ++i) {
      apply_host_move(delta.host_moves[i].from, delta.host_moves[i].to);
    }
    instruments.incremental.inc();
  }
  instruments.dirty_sources.add(stats_.dirty_sources - dirty_before);
  return metrics();
}

void DeltaHasplEvaluator::revert_last(const HostSwitchGraph& restored) {
  ORP_REQUIRE(!frames_.empty(), "revert_last() without a pending apply()");
  ++stats_.reverts;
  DeltaInstruments::get().reverts.inc();
  UndoFrame frame = std::move(frames_.back());
  frames_.pop_back();

  if (frame.was_rebuild) {
    // The apply rebuilt from scratch, so there is nothing to replay;
    // resync from the caller's restored graph. Deeper frames stay valid:
    // the rebuilt arrays are exact functions of that graph state.
    undo_entries_.resize(frame.entries_begin);
    undo_rows_.resize(frame.rows_begin);
    sync_graph(restored);
    rebuild_all_rows();
    rebuild_aggregates();
    return;
  }

  // Exact inverse of apply(), step by step in reverse order.
  // 1. Host moves: the distance rows they read are still in post-apply
  //    state, so the weight shifts invert arithmetically.
  const GraphDelta& d = frame.delta;
  for (int i = int{d.num_host_moves} - 1; i >= 0; --i) {
    const SwitchId to = d.host_moves[i].to;
    const SwitchId from = d.host_moves[i].from;
    const std::uint16_t* rt = row(to);
    for (std::uint32_t s = 0; s < m_; ++s) {
      if (rt[s] == kInf16) {
        --unreach_w_[s];
      } else {
        sum_w_[s] -= rt[s];
      }
    }
    if (--weight_[to] == 0) --weighted_switches_;
    const std::uint16_t* rf = row(from);
    for (std::uint32_t s = 0; s < m_; ++s) {
      if (rf[s] == kInf16) {
        ++unreach_w_[s];
      } else {
        sum_w_[s] += rf[s];
      }
    }
    if (weight_[from]++ == 0) ++weighted_switches_;
  }
  // 2. Row maxes mutated by a zero-crossing host move.
  if (frame.row_max_snapshot_valid) {
    std::copy(frame.row_max_snapshot.begin(), frame.row_max_snapshot.end(),
              row_max_.begin());
  }
  // 3. Pre-apply aggregates of every touched row.
  while (undo_rows_.size() > frame.rows_begin) {
    const RowSnapshot& snap = undo_rows_.back();
    sum_w_[snap.row] = snap.sum_w;
    unreach_w_[snap.row] = snap.unreach_w;
    row_max_[snap.row] = snap.row_max;
    undo_rows_.pop_back();
  }
  // 4. Distance entries, newest first.
  while (undo_entries_.size() > frame.entries_begin) {
    const std::uint64_t e = undo_entries_.back();
    undo_entries_.pop_back();
    dist_[(e >> 32) * m_ + ((e >> 16) & 0xffff)] =
        static_cast<std::uint16_t>(e & 0xffff);
  }
  // 5. Mirrored adjacency (additions off first to respect the stride).
  for (int i = int{d.num_added} - 1; i >= 0; --i) {
    adj_remove(d.added[i].first, d.added[i].second);
  }
  for (int i = int{d.num_removed} - 1; i >= 0; --i) {
    adj_add(d.removed[i].first, d.removed[i].second);
  }
}

HostMetrics DeltaHasplEvaluator::metrics() const {
  // Mirrors compute_host_metrics' connected-pairs semantics bit for bit
  // (asserted by the differential tests): scalars over the connected pairs,
  // split pairs surfaced in unreachable_pairs.
  HostMetrics result;
  if (n_ < 2) return result;
  const std::uint64_t pairs = std::uint64_t{n_} * (n_ - 1) / 2;
  std::uint64_t ordered = 0;
  std::uint64_t unreached_ordered = 0;
  std::uint16_t max_d = 0;
  for (std::uint32_t s = 0; s < m_; ++s) {
    if (!weight_[s]) continue;
    unreached_ordered += std::uint64_t{weight_[s]} * unreach_w_[s];
    ordered += std::uint64_t{weight_[s]} * sum_w_[s];
    max_d = std::max(max_d, row_max_[s]);
  }
  result.unreachable_pairs = unreached_ordered / 2;
  result.connected_pairs = pairs - result.unreachable_pairs;
  result.connected = result.unreachable_pairs == 0;
  if (result.connected_pairs == 0) {
    result.h_aspl = std::numeric_limits<double>::infinity();
    result.diameter = HostMetrics::kUnreachable;
    return result;
  }
  result.total_length = ordered / 2 + 2 * result.connected_pairs;
  result.h_aspl = static_cast<double>(result.total_length) /
                  static_cast<double>(result.connected_pairs);
  result.diameter = std::uint32_t{max_d} + 2;
  return result;
}

std::uint32_t DeltaHasplEvaluator::distance(SwitchId a, SwitchId b) const {
  ORP_ASSERT(a < m_ && b < m_);
  const std::uint16_t d = row(a)[b];
  return d == kInf16 ? HostMetrics::kUnreachable : d;
}

}  // namespace orp

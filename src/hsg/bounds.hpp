#pragma once
// Lower bounds from §4 and §5 of the paper.
//
//  * Theorem 1 — diameter lower bound for any host-switch graph with order
//    n and radix r:  D >= ceil(log_{r-1}(n-1)) + 1.
//  * Theorem 2 — h-ASPL lower bound for any host-switch graph.
//  * Moore bound — classical ASPL lower bound of an N-vertex K-regular
//    graph, used through Eq. (2) to bound k-regular host-switch graphs.
//  * Continuous Moore bound — the paper's extension of Eq. (2) to rational
//    average degree (§5.3), whose minimizer over m predicts the optimal
//    switch count m_opt.
//
// All bounds return +infinity when the configuration is infeasible (e.g.
// too few ports to connect the graph at all).

#include <cstdint>

namespace orp {

/// Theorem 1. Requires n >= 2, r >= 3. The result is clamped to >= 2
/// because two hosts are always two hops apart through their switch.
std::uint32_t diameter_lower_bound(std::uint64_t n, std::uint32_t r);

/// Theorem 2. Requires n >= 2, r >= 3. Clamped to >= 2.0 (the paper's
/// closed form dips below 2 for n <= r where the true optimum is exactly 2).
double haspl_lower_bound(std::uint64_t n, std::uint32_t r);

/// Moore ASPL lower bound M(N, K) of an N-vertex K-regular undirected
/// graph: fill distance levels 1..inf with at most K(K-1)^{i-1} vertices.
/// Returns +infinity when K-regular graphs on N vertices cannot be
/// connected (e.g. K <= 1, N > 2).
double moore_aspl_bound(std::uint64_t num_vertices, std::uint64_t degree);

/// Continuous Moore ASPL bound: same level-filling argument with real
/// degree K > 0 (the paper's §5.3 extension).
double continuous_moore_aspl_bound(double num_vertices, double degree);

/// Eq. (1): h-ASPL of a regular host-switch graph (every switch carries
/// n/m hosts) from the ASPL of its switch subgraph:
///   A(G) = A(G') * (mn - n) / (mn - m) + 2.
double haspl_from_switch_aspl(double switch_aspl, std::uint64_t n, std::uint64_t m);

/// Eq. (2): Moore-bound h-ASPL lower bound of a k-regular host-switch
/// graph with m switches (requires m | n; degree k = r - n/m).
double regular_haspl_moore_bound(std::uint64_t n, std::uint64_t m, std::uint32_t r);

/// The continuous Moore bound of a host-switch graph: Eq. (2) with real
/// hosts-per-switch n/m and real degree r - n/m, defined for any m >= 1.
double continuous_haspl_moore_bound(std::uint64_t n, double m, std::uint32_t r);

/// The paper's m_opt: the integer m minimizing the continuous Moore bound
/// for the given order and radix (§5.3). Ties break toward fewer switches.
std::uint32_t optimal_switch_count(std::uint64_t n, std::uint32_t r);

/// Smallest m such that m switches forming a clique can carry n hosts,
/// i.e. m * (r - m + 1) >= n (§3.2). Returns 0 when no clique on <= r+1
/// switches can carry them (then the h-ASPL optimum exceeds 3).
std::uint32_t clique_switch_count(std::uint64_t n, std::uint32_t r);

}  // namespace orp

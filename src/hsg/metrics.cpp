#include "hsg/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace orp {
namespace {

// Per-variant call counters and wall-clock histograms: kAuto resolves to a
// concrete kernel per call, so these make its choice (and each variant's
// cost on this workload) auditable from the metrics snapshot.
struct KernelInstruments {
  obs::Counter& calls;
  obs::Histogram& latency_ns;
};

KernelInstruments& kernel_instruments(bool use_bits) {
  static KernelInstruments scalar{
      obs::Registry::global().counter("aspl.kernel.scalar.calls"),
      obs::Registry::global().histogram("aspl.kernel.scalar.ns")};
  static KernelInstruments bitparallel{
      obs::Registry::global().counter("aspl.kernel.bitparallel.calls"),
      obs::Registry::global().histogram("aspl.kernel.bitparallel.ns")};
  return use_bits ? bitparallel : scalar;
}

// Weighted APSP accumulation shared by both public entry points.
//
// Inputs: the switch adjacency, per-switch weights w (k_s for host metrics,
// 1 for switch metrics), and the source list (switches with w > 0 for host
// metrics, all switches for switch metrics).
//
// Output per run: ordered_sum = sum over sources s of w_s * sum_v w_v d(s,v)
// over the *reached* targets, max_dist = max d(s,v) over sources s and
// reached weighted (or all) targets v, and unreached_ordered = sum over
// sources s of w_s * (W - reached_weight(s)) — the weighted ordered pair
// count with no path (0 on a connected graph).
struct ApspResult {
  std::uint64_t ordered_sum = 0;
  std::uint32_t max_dist = 0;
  std::uint64_t unreached_ordered = 0;
};

struct ApspInput {
  const HostSwitchGraph* g;
  std::vector<std::uint32_t> weights;   // per switch
  std::vector<SwitchId> sources;
  std::uint64_t total_weight = 0;       // sum of weights
  bool targets_weighted_only = false;   // diameter over weighted targets only
};

// ---- scalar reference kernel -------------------------------------------

ApspResult scalar_block(const ApspInput& in, std::size_t begin, std::size_t end,
                        std::vector<std::uint32_t>& dist,
                        std::vector<SwitchId>& queue) {
  const HostSwitchGraph& g = *in.g;
  const std::uint32_t m = g.num_switches();
  constexpr std::uint32_t kInf = HostMetrics::kUnreachable;
  ApspResult out;
  for (std::size_t i = begin; i < end; ++i) {
    const SwitchId src = in.sources[i];
    dist.assign(m, kInf);
    queue.clear();
    queue.push_back(src);
    dist[src] = 0;
    std::uint64_t sum = 0;
    std::uint64_t reached_weight = in.weights[src];
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const SwitchId v = queue[head];
      const std::uint32_t dv = dist[v];
      for (SwitchId u : g.neighbors(v)) {
        if (dist[u] != kInf) continue;
        dist[u] = dv + 1;
        queue.push_back(u);
        const std::uint32_t wu = in.weights[u];
        if (wu > 0) {
          sum += static_cast<std::uint64_t>(wu) * (dv + 1);
          reached_weight += wu;
          out.max_dist = std::max(out.max_dist, dv + 1);
        } else if (!in.targets_weighted_only) {
          out.max_dist = std::max(out.max_dist, dv + 1);
        }
      }
    }
    out.ordered_sum += static_cast<std::uint64_t>(in.weights[src]) * sum;
    out.unreached_ordered += static_cast<std::uint64_t>(in.weights[src]) *
                             (in.total_weight - reached_weight);
  }
  return out;
}

// ---- bit-parallel kernel --------------------------------------------

// Runs up to 64 BFS sources simultaneously: frontier[v] / reached[v] hold a
// bit per source. One level-synchronous round ORs each vertex's neighbor
// frontiers; newly set bits give the distance of that (source, vertex)
// pair. Total newly-set bits across all rounds is |block| * m, so the
// per-bit accumulation is linear in output size.
ApspResult bitparallel_block(const ApspInput& in, std::size_t begin, std::size_t end,
                             std::vector<std::uint64_t>& frontier,
                             std::vector<std::uint64_t>& next,
                             std::vector<std::uint64_t>& reached) {
  const HostSwitchGraph& g = *in.g;
  const std::uint32_t m = g.num_switches();
  const std::size_t block = end - begin;
  ApspResult out;

  frontier.assign(m, 0);
  reached.assign(m, 0);
  std::vector<std::uint64_t> dist_sum(block, 0);
  std::vector<std::uint64_t> reached_weight(block, 0);
  for (std::size_t j = 0; j < block; ++j) {
    const SwitchId src = in.sources[begin + j];
    frontier[src] |= 1ULL << j;
    reached[src] |= 1ULL << j;
    reached_weight[j] = in.weights[src];
  }

  for (std::uint32_t round = 1; round <= m; ++round) {
    next.assign(m, 0);
    bool any = false;
    for (SwitchId v = 0; v < m; ++v) {
      std::uint64_t acc = 0;
      for (SwitchId u : g.neighbors(v)) acc |= frontier[u];
      const std::uint64_t fresh = acc & ~reached[v];
      if (fresh == 0) continue;
      any = true;
      next[v] = fresh;
      reached[v] |= fresh;
      const std::uint32_t wv = in.weights[v];
      if (wv > 0 || !in.targets_weighted_only) {
        out.max_dist = std::max(out.max_dist, round);
      }
      if (wv > 0) {
        std::uint64_t bits = fresh;
        while (bits) {
          const int j = __builtin_ctzll(bits);
          bits &= bits - 1;
          dist_sum[static_cast<std::size_t>(j)] +=
              static_cast<std::uint64_t>(wv) * round;
          reached_weight[static_cast<std::size_t>(j)] += wv;
        }
      }
    }
    if (!any) break;
    frontier.swap(next);
  }

  for (std::size_t j = 0; j < block; ++j) {
    const SwitchId src = in.sources[begin + j];
    out.ordered_sum += static_cast<std::uint64_t>(in.weights[src]) * dist_sum[j];
    out.unreached_ordered += static_cast<std::uint64_t>(in.weights[src]) *
                             (in.total_weight - reached_weight[j]);
  }
  // The bit-parallel kernel tracks max_dist only over weighted targets; for
  // unweighted-target diameters (switch metrics) every weight is 1, so the
  // distinction never bites there.
  return out;
}

ApspResult run_apsp(const ApspInput& in, bool use_bits, ThreadPool* pool) {
  const std::uint32_t m = in.g->num_switches();
  KernelInstruments& instruments = kernel_instruments(use_bits);
  instruments.calls.inc();
  obs::ScopedTimer timer(instruments.latency_ns);

  const std::size_t block_size = use_bits ? 64 : 256;
  const std::size_t blocks = (in.sources.size() + block_size - 1) / block_size;

  std::mutex merge_mutex;
  ApspResult total;
  auto body = [&](std::size_t b) {
    const std::size_t begin = b * block_size;
    const std::size_t end = std::min(in.sources.size(), begin + block_size);
    ApspResult part;
    if (use_bits) {
      std::vector<std::uint64_t> frontier, next, reached;
      part = bitparallel_block(in, begin, end, frontier, next, reached);
    } else {
      std::vector<std::uint32_t> dist;
      std::vector<SwitchId> queue;
      queue.reserve(m);
      part = scalar_block(in, begin, end, dist, queue);
    }
    std::lock_guard lock(merge_mutex);
    total.ordered_sum += part.ordered_sum;
    total.max_dist = std::max(total.max_dist, part.max_dist);
    total.unreached_ordered += part.unreached_ordered;
  };

  if (pool && blocks > 1) {
    pool->parallel_for(blocks, body);
  } else {
    for (std::size_t b = 0; b < blocks; ++b) body(b);
  }
  return total;
}

HostMetrics host_metrics_impl(const HostSwitchGraph& g, bool use_bits,
                              ThreadPool* pool, bool require_fully_attached) {
  if (require_fully_attached) {
    ORP_REQUIRE(g.fully_attached(), "metrics need every host attached to a switch");
  }
  HostMetrics result;

  ApspInput in;
  in.g = &g;
  in.targets_weighted_only = true;
  in.weights.resize(g.num_switches());
  std::uint64_t n = 0;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    in.weights[s] = g.hosts_on(s);
    n += in.weights[s];
    if (in.weights[s] > 0) in.sources.push_back(s);
  }
  if (n < 2) return result;
  in.total_weight = n;

  const ApspResult apsp = run_apsp(in, use_bits, pool);
  const std::uint64_t pairs = n * (n - 1) / 2;
  result.unreachable_pairs = apsp.unreached_ordered / 2;
  result.connected_pairs = pairs - result.unreachable_pairs;
  result.connected = result.unreachable_pairs == 0;
  if (result.connected_pairs == 0) {
    result.h_aspl = std::numeric_limits<double>::infinity();
    result.diameter = HostMetrics::kUnreachable;
    return result;
  }
  result.total_length = apsp.ordered_sum / 2 + 2 * result.connected_pairs;
  result.h_aspl = static_cast<double>(result.total_length) /
                  static_cast<double>(result.connected_pairs);
  result.diameter = apsp.max_dist + 2;  // +2 for the two host-switch hops
  return result;
}

SwitchMetrics switch_metrics_impl(const HostSwitchGraph& g, bool use_bits,
                                  ThreadPool* pool) {
  const std::uint64_t m = g.num_switches();
  SwitchMetrics result;
  if (m < 2) return result;

  ApspInput in;
  in.g = &g;
  in.targets_weighted_only = false;
  in.weights.assign(g.num_switches(), 1);
  in.sources.resize(g.num_switches());
  for (SwitchId s = 0; s < g.num_switches(); ++s) in.sources[s] = s;
  in.total_weight = m;

  const ApspResult apsp = run_apsp(in, use_bits, pool);
  const std::uint64_t pairs = m * (m - 1) / 2;
  result.unreachable_pairs = apsp.unreached_ordered / 2;
  result.connected_pairs = pairs - result.unreachable_pairs;
  result.connected = result.unreachable_pairs == 0;
  if (result.connected_pairs == 0) {
    result.aspl = std::numeric_limits<double>::infinity();
    result.diameter = HostMetrics::kUnreachable;
    return result;
  }
  result.total_length = apsp.ordered_sum / 2;
  result.aspl = static_cast<double>(result.total_length) /
                static_cast<double>(result.connected_pairs);
  result.diameter = apsp.max_dist;
  return result;
}

}  // namespace

// Both public kernel choices resolve to the bit-parallel path; the scalar
// reference is only reachable through detail:: (test suite + microbench).
HostMetrics compute_host_metrics(const HostSwitchGraph& g, AsplKernel /*kernel*/,
                                 ThreadPool* pool) {
  return host_metrics_impl(g, /*use_bits=*/true, pool,
                           /*require_fully_attached=*/true);
}

HostMetrics compute_live_host_metrics(const HostSwitchGraph& g,
                                      AsplKernel /*kernel*/, ThreadPool* pool) {
  return host_metrics_impl(g, /*use_bits=*/true, pool,
                           /*require_fully_attached=*/false);
}

SwitchMetrics compute_switch_metrics(const HostSwitchGraph& g,
                                     AsplKernel /*kernel*/, ThreadPool* pool) {
  return switch_metrics_impl(g, /*use_bits=*/true, pool);
}

namespace detail {

HostMetrics compute_host_metrics_scalar(const HostSwitchGraph& g,
                                        ThreadPool* pool) {
  return host_metrics_impl(g, /*use_bits=*/false, pool,
                           /*require_fully_attached=*/true);
}

SwitchMetrics compute_switch_metrics_scalar(const HostSwitchGraph& g,
                                            ThreadPool* pool) {
  return switch_metrics_impl(g, /*use_bits=*/false, pool);
}

}  // namespace detail

}  // namespace orp

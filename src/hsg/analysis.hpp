#pragma once
// Structural analysis of host-switch graphs.
//
// The paper's model (§3.1) assumes graphs are connected and have "no
// redundant switches" — every switch lies on at least one host-to-host
// shortest path. These helpers detect violations of that assumption and
// report path-diversity statistics used by the routing/bandwidth
// discussions.

#include <cstdint>
#include <vector>

#include "common/prng.hpp"
#include "hsg/host_switch_graph.hpp"

namespace orp {

/// Switches with no attached hosts (the paper's Fig. 8 "otiose" switches
/// carry no hosts but may still forward traffic).
std::vector<SwitchId> unused_switches(const HostSwitchGraph& g);

/// Switches that lie on NO shortest path between any pair of hosts —
/// redundant in the §3.1 sense. A switch s is on some shortest host path
/// iff there exist host-bearing switches a, b with
/// d(a,s) + d(s,b) == d(a,b) (s may equal a or b). Requires all hosts
/// attached; returns all switches if hosts are mutually unreachable.
std::vector<SwitchId> redundant_switches(const HostSwitchGraph& g);

/// Removes the given switches (and their edges) from `g`, renumbering the
/// remaining switches downward while preserving relative order. Host
/// attachments to removed switches must not exist (redundant switches
/// never carry hosts if they are truly redundant — enforced).
HostSwitchGraph remove_switches(const HostSwitchGraph& g,
                                const std::vector<SwitchId>& victims);

/// Degree histogram of the switch subgraph: element d = number of
/// switches with exactly d switch-neighbors.
std::vector<std::uint32_t> switch_degree_distribution(const HostSwitchGraph& g);

/// Number of equal-cost shortest switch paths between every switch and a
/// fixed source, summed over all host-bearing pairs — a cheap path
/// diversity indicator (higher = more ECMP choice).
double average_shortest_path_multiplicity(const HostSwitchGraph& g);

/// Monte-Carlo link-failure study: in each trial, every switch-switch
/// cable fails independently with probability `failure_rate`; report how
/// often some host pair disconnects and, over the surviving trials, the
/// mean h-ASPL inflation relative to the healthy network. Randomized
/// topologies degrade gracefully; low-redundancy structures (trees) snap.
struct FaultImpact {
  double disconnect_probability = 0.0;   ///< trials with unreachable hosts
  double mean_haspl_inflation = 0.0;     ///< (faulty / healthy) - 1, connected trials
  double max_haspl_inflation = 0.0;
  int connected_trials = 0;
};

FaultImpact link_failure_impact(const HostSwitchGraph& g, double failure_rate,
                                int trials, Xoshiro256& rng);

}  // namespace orp

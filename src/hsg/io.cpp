#include "hsg/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>

namespace orp {

void write_hsg(std::ostream& os, const HostSwitchGraph& g) {
  os << "hsg " << g.num_hosts() << ' ' << g.num_switches() << ' ' << g.radix()
     << '\n';
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    if (g.host_attached(h)) os << "H " << h << ' ' << g.host_switch(h) << '\n';
  }
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) os << "S " << s << ' ' << t << '\n';
    }
  }
}

bool write_hsg_file(const std::string& path, const HostSwitchGraph& g) {
  std::ofstream file(path);
  if (!file) return false;
  write_hsg(file, g);
  return static_cast<bool>(file);
}

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("hsg parse error at line " + std::to_string(line) +
                              ": " + what);
}

// Windows line endings and comments are stripped before tokenizing so the
// rest of the parser only sees clean fields.
void strip_comment_and_cr(std::string& line) {
  if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

// Strict uint32 field parse. operator>> into an unsigned silently wraps
// negative input ("-1" becomes 4294967295) and accepts partial tokens; this
// rejects both with the line number and the offending token.
std::uint32_t parse_u32(std::istringstream& fields, std::size_t line,
                        const char* what) {
  std::string token;
  if (!(fields >> token)) {
    parse_fail(line, std::string("missing ") + what);
  }
  if (token.front() == '-') {
    parse_fail(line, std::string(what) + " must be non-negative, got '" + token + "'");
  }
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      parse_fail(line, std::string("invalid ") + what + " '" + token + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xffffffffULL) {
      parse_fail(line, std::string(what) + " out of range: '" + token + "'");
    }
  }
  return static_cast<std::uint32_t>(value);
}

void expect_line_end(std::istringstream& fields, std::size_t line) {
  std::string junk;
  if (fields >> junk) parse_fail(line, "trailing characters '" + junk + "'");
}

}  // namespace

HostSwitchGraph read_hsg(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  std::optional<HostSwitchGraph> graph;
  while (std::getline(is, line)) {
    ++line_no;
    strip_comment_and_cr(line);
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag)) continue;  // blank line
    if (tag == "hsg") {
      if (graph) parse_fail(line_no, "duplicate header");
      const std::uint32_t n = parse_u32(fields, line_no, "host count");
      const std::uint32_t m = parse_u32(fields, line_no, "switch count");
      const std::uint32_t r = parse_u32(fields, line_no, "radix");
      expect_line_end(fields, line_no);
      try {
        graph.emplace(n, m, r);
      } catch (const std::exception& e) {
        parse_fail(line_no, e.what());  // infeasible (n, m, r), with location
      }
    } else if (tag == "H") {
      if (!graph) parse_fail(line_no, "host line before header");
      const std::uint32_t h = parse_u32(fields, line_no, "host id");
      const std::uint32_t s = parse_u32(fields, line_no, "switch id");
      expect_line_end(fields, line_no);
      if (h >= graph->num_hosts() || s >= graph->num_switches()) {
        parse_fail(line_no, "host or switch id out of range");
      }
      if (graph->host_attached(h)) parse_fail(line_no, "host attached twice");
      if (graph->free_ports(s) == 0) parse_fail(line_no, "switch radix exceeded");
      graph->attach_host(h, s);
    } else if (tag == "S") {
      if (!graph) parse_fail(line_no, "edge line before header");
      const std::uint32_t a = parse_u32(fields, line_no, "switch id");
      const std::uint32_t b = parse_u32(fields, line_no, "switch id");
      expect_line_end(fields, line_no);
      if (a >= graph->num_switches() || b >= graph->num_switches()) {
        parse_fail(line_no, "switch id out of range");
      }
      if (a == b) parse_fail(line_no, "self-loop");
      if (graph->has_switch_edge(a, b)) parse_fail(line_no, "duplicate edge");
      if (graph->free_ports(a) == 0 || graph->free_ports(b) == 0) {
        parse_fail(line_no, "switch radix exceeded");
      }
      graph->add_switch_edge(a, b);
    } else {
      parse_fail(line_no, "unknown tag '" + tag + "'");
    }
  }
  if (is.bad()) parse_fail(line_no, "stream read error");
  if (!graph) parse_fail(line_no, "missing 'hsg' header");
  return std::move(*graph);
}

HostSwitchGraph read_hsg_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::invalid_argument("cannot open " + path);
  return read_hsg(file);
}

void write_edgelist(std::ostream& os, const HostSwitchGraph& g) {
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) os << s << ' ' << t << '\n';
    }
  }
}

HostSwitchGraph read_edgelist(std::istream& is, std::uint32_t order,
                              std::uint32_t degree) {
  HostSwitchGraph g(order, order, degree + 1);
  for (HostId h = 0; h < order; ++h) g.attach_host(h, h);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    strip_comment_and_cr(line);
    std::istringstream fields(line);
    std::string first;
    if (!(fields >> first)) continue;  // blank line
    // Re-tokenize from the start so `first` goes through the strict parser
    // (a non-numeric first token must be an error, not a skipped line).
    fields.clear();
    fields.seekg(0);
    const std::uint32_t a = parse_u32(fields, line_no, "vertex");
    const std::uint32_t b = parse_u32(fields, line_no, "vertex");
    expect_line_end(fields, line_no);
    if (a >= order || b >= order) parse_fail(line_no, "vertex out of range");
    if (a == b) parse_fail(line_no, "self-loop");
    if (g.has_switch_edge(a, b)) parse_fail(line_no, "duplicate edge");
    if (g.free_ports(a) == 0 || g.free_ports(b) == 0) {
      parse_fail(line_no, "degree bound exceeded");
    }
    g.add_switch_edge(a, b);
  }
  if (is.bad()) parse_fail(line_no, "stream read error");
  return g;
}

void write_dot(std::ostream& os, const HostSwitchGraph& g) {
  os << "graph hsg {\n  node [shape=box];\n";
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    os << "  s" << s << ";\n";
  }
  os << "  node [shape=ellipse];\n";
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    if (g.host_attached(h)) {
      os << "  h" << h << " -- s" << g.host_switch(h) << ";\n";
    }
  }
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) os << "  s" << s << " -- s" << t << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace orp

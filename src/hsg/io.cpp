#include "hsg/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>

namespace orp {

void write_hsg(std::ostream& os, const HostSwitchGraph& g) {
  os << "hsg " << g.num_hosts() << ' ' << g.num_switches() << ' ' << g.radix()
     << '\n';
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    if (g.host_attached(h)) os << "H " << h << ' ' << g.host_switch(h) << '\n';
  }
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) os << "S " << s << ' ' << t << '\n';
    }
  }
}

bool write_hsg_file(const std::string& path, const HostSwitchGraph& g) {
  std::ofstream file(path);
  if (!file) return false;
  write_hsg(file, g);
  return static_cast<bool>(file);
}

namespace {
[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("hsg parse error at line " + std::to_string(line) +
                              ": " + what);
}
}  // namespace

HostSwitchGraph read_hsg(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  std::optional<HostSwitchGraph> graph;
  while (std::getline(is, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag)) continue;  // blank line
    if (tag == "hsg") {
      if (graph) parse_fail(line_no, "duplicate header");
      std::uint32_t n = 0, m = 0, r = 0;
      if (!(fields >> n >> m >> r)) parse_fail(line_no, "header needs n m r");
      graph.emplace(n, m, r);
    } else if (tag == "H") {
      if (!graph) parse_fail(line_no, "host line before header");
      std::uint32_t h = 0, s = 0;
      if (!(fields >> h >> s)) parse_fail(line_no, "host line needs <host> <switch>");
      if (h >= graph->num_hosts() || s >= graph->num_switches()) {
        parse_fail(line_no, "host or switch id out of range");
      }
      if (graph->host_attached(h)) parse_fail(line_no, "host attached twice");
      if (graph->free_ports(s) == 0) parse_fail(line_no, "switch radix exceeded");
      graph->attach_host(h, s);
    } else if (tag == "S") {
      if (!graph) parse_fail(line_no, "edge line before header");
      std::uint32_t a = 0, b = 0;
      if (!(fields >> a >> b)) parse_fail(line_no, "edge line needs <a> <b>");
      if (a >= graph->num_switches() || b >= graph->num_switches()) {
        parse_fail(line_no, "switch id out of range");
      }
      if (a == b) parse_fail(line_no, "self-loop");
      if (graph->has_switch_edge(a, b)) parse_fail(line_no, "duplicate edge");
      if (graph->free_ports(a) == 0 || graph->free_ports(b) == 0) {
        parse_fail(line_no, "switch radix exceeded");
      }
      graph->add_switch_edge(a, b);
    } else {
      parse_fail(line_no, "unknown tag '" + tag + "'");
    }
  }
  if (!graph) parse_fail(line_no, "missing 'hsg' header");
  return std::move(*graph);
}

HostSwitchGraph read_hsg_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::invalid_argument("cannot open " + path);
  return read_hsg(file);
}

void write_edgelist(std::ostream& os, const HostSwitchGraph& g) {
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) os << s << ' ' << t << '\n';
    }
  }
}

HostSwitchGraph read_edgelist(std::istream& is, std::uint32_t order,
                              std::uint32_t degree) {
  HostSwitchGraph g(order, order, degree + 1);
  for (HostId h = 0; h < order; ++h) g.attach_host(h, h);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::uint32_t a = 0, b = 0;
    if (!(fields >> a)) continue;  // blank
    if (!(fields >> b)) parse_fail(line_no, "edge line needs two vertices");
    if (a >= order || b >= order) parse_fail(line_no, "vertex out of range");
    if (a == b) parse_fail(line_no, "self-loop");
    if (g.has_switch_edge(a, b)) parse_fail(line_no, "duplicate edge");
    if (g.free_ports(a) == 0 || g.free_ports(b) == 0) {
      parse_fail(line_no, "degree bound exceeded");
    }
    g.add_switch_edge(a, b);
  }
  return g;
}

void write_dot(std::ostream& os, const HostSwitchGraph& g) {
  os << "graph hsg {\n  node [shape=box];\n";
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    os << "  s" << s << ";\n";
  }
  os << "  node [shape=ellipse];\n";
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    if (g.host_attached(h)) {
      os << "  h" << h << " -- s" << g.host_switch(h) << ";\n";
    }
  }
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) os << "  s" << s << " -- s" << t << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace orp

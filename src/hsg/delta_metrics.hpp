#pragma once
// Incremental (delta) h-ASPL evaluation for local-search moves.
//
// The §5 annealer evaluates h-ASPL after every proposed swap / swing /
// 2-neighbor-swing, and a from-scratch APSP per move dominates search
// wall-clock (see bench/microbench.cpp, family "search"). This evaluator
// instead mirrors the switch subgraph and maintains the full switch-to-
// switch distance matrix across moves, repairing only the BFS trees that a
// move can actually change.
//
// State per evaluator (all arena-allocated once, no per-move allocation on
// the steady-state path):
//   * D[s][v]      — switch-to-switch distance matrix (uint16, 0xffff = inf)
//   * w[s]         — attached host count k_s (the APSP weights)
//   * S_w[s]       — sum over reachable v of w[v] * D[s][v]
//   * unreach_w[s] — summed weight of targets unreachable from s
//   * M[s]         — max finite D[s][v] over weighted targets v
// from which h-ASPL, host diameter, and connectivity are assembled in O(m)
// (matching compute_host_metrics bit for bit; asserted by the differential
// test tests/hsg_delta_metrics_test.cpp).
//
// A move is described as a GraphDelta (edge additions/removals plus host
// moves) and replayed one primitive change at a time, each with an exact
// single-change repair:
//   * edge addition {u,v}: source s is dirty iff |D[s][u] - D[s][v]| >= 2
//    (the standard feasible-potential argument); repaired by a pruned BFS
//    cascade from the farther endpoint that touches only improved vertices.
//   * edge removal {u,v}: adjacent endpoints differ by at most one level,
//    so s is dirty iff the endpoints' levels differ AND the deeper endpoint
//    has no surviving predecessor on an adjacent BFS level (surviving-
//    predecessor masks built by vectorizable row-vs-row sweeps, one per
//    endpoint neighbor); repaired Ramalingam–Reps style (level-ordered
//    affected-set discovery, then a bucketed re-relaxation of the affected
//    region only).
//   * host move: distances are untouched; the weighted aggregates are
//    updated from one row of D in O(m).
// Each entry write updates its row's weighted sum and unreachable weight in
// place; only a write that may lower a row's max queues that row for a
// single deferred rescan at the end of apply().
//
// Every entry change and every touched row's pre-apply aggregates are
// recorded in an undo frame, so rejecting a move costs one revert_last()
// that replays the log backwards — no inverse repair, no graph copy.
// Frames stack (the 2-neighbor-swing move nests two applies), popping in
// LIFO order. Applying the inverse delta also works and is exercised by
// the differential tests; revert_last() is just much cheaper.
//
// When a removal dirties many sources at once the per-source repair loses
// to batch recomputation, so the evaluator escalates: above
// `batch_sources` dirty sources the dirty rows are recomputed with the
// 64-sources-per-word bit-parallel BFS kernel (in batches of 64), and
// above `fallback_fraction * m` the whole state is rebuilt from scratch
// (counted by the delta_eval.fallback obs counter).

#include <cstdint>
#include <utility>
#include <vector>

#include "hsg/host_switch_graph.hpp"
#include "hsg/metrics.hpp"

namespace orp {

/// A batch of primitive mutations describing one local-search move.
/// Capacities cover the §5 move set (swap: 2+2 edges, swing: 1+1 edges and
/// one host move); composite operations apply one delta per primitive move.
struct GraphDelta {
  struct HostMove {
    SwitchId from, to;
  };

  std::pair<SwitchId, SwitchId> added[2];
  std::pair<SwitchId, SwitchId> removed[2];
  HostMove host_moves[1];
  std::uint8_t num_added = 0;
  std::uint8_t num_removed = 0;
  std::uint8_t num_host_moves = 0;

  GraphDelta& add_edge(SwitchId a, SwitchId b) {
    ORP_ASSERT(num_added < 2);
    added[num_added++] = {a, b};
    return *this;
  }
  GraphDelta& remove_edge(SwitchId a, SwitchId b) {
    ORP_ASSERT(num_removed < 2);
    removed[num_removed++] = {a, b};
    return *this;
  }
  GraphDelta& move_host(SwitchId from, SwitchId to) {
    ORP_ASSERT(num_host_moves < 1);
    host_moves[num_host_moves++] = {from, to};
    return *this;
  }

  /// The delta that undoes this one.
  GraphDelta inverse() const {
    GraphDelta inv;
    for (std::uint8_t i = 0; i < num_removed; ++i)
      inv.add_edge(removed[i].first, removed[i].second);
    for (std::uint8_t i = 0; i < num_added; ++i)
      inv.remove_edge(added[i].first, added[i].second);
    for (std::uint8_t i = 0; i < num_host_moves; ++i)
      inv.move_host(host_moves[i].to, host_moves[i].from);
    return inv;
  }
};

struct DeltaEvalOptions {
  /// Dirty-source count (per removal) above which the dirty rows are
  /// recomputed with the batched bit-parallel kernel instead of the
  /// per-source Ramalingam–Reps repair. 0 = always batch.
  std::uint32_t batch_sources = 16;
  /// Dirty fraction of all m sources above which apply() abandons
  /// incremental repair and rebuilds the whole state from scratch.
  double fallback_fraction = 0.75;
};

class DeltaHasplEvaluator {
 public:
  /// Snapshots `g` (which must be fully attached) and computes the full
  /// distance matrix. The evaluator keeps its own copy of the switch
  /// adjacency; `g` is not referenced after construction.
  explicit DeltaHasplEvaluator(const HostSwitchGraph& g,
                               DeltaEvalOptions options = {});

  /// Re-synchronizes with `g` and recomputes everything from scratch.
  /// Drops any pending undo frames.
  void rebuild(const HostSwitchGraph& g);

  /// Mirrors one move that the caller has (already) applied to its graph
  /// and returns the metrics of the new state. To reject the move, either
  /// call revert_last() (cheap: replays the undo log) or apply
  /// `delta.inverse()` (a full inverse repair).
  HostMetrics apply(const GraphDelta& delta);

  /// Exactly undoes the most recent un-reverted apply(). Applies nest:
  /// after apply(a); apply(b); two revert_last() calls undo b then a. The
  /// undo stack keeps the 4 most recent frames (accepted moves leave theirs
  /// behind; older ones are forgotten). `restored` must be the graph as it
  /// was before that apply (the caller reverts its graph first); it is only
  /// consulted when the apply being undone fell back to a full rebuild.
  void revert_last(const HostSwitchGraph& restored);

  /// Metrics of the currently mirrored state, assembled in O(m).
  HostMetrics metrics() const;

  /// Switch-to-switch distance in the mirrored state (kUnreachable when
  /// disconnected). Exposed for tests.
  std::uint32_t distance(SwitchId a, SwitchId b) const;

  std::uint32_t num_switches() const noexcept { return m_; }

  /// Cumulative behaviour counters (also exported via obs as
  /// delta_eval.*); `fallback_rebuilds` counts applies that gave up on
  /// incremental repair.
  struct Stats {
    std::uint64_t applies = 0;
    std::uint64_t reverts = 0;           ///< revert_last() calls
    std::uint64_t edge_changes = 0;
    std::uint64_t dirty_sources = 0;     ///< sources the filters flagged
    std::uint64_t scalar_repairs = 0;    ///< repaired per-source (RR / cascade)
    std::uint64_t batched_sources = 0;   ///< repaired via bit-parallel batches
    std::uint64_t fallback_rebuilds = 0; ///< full from-scratch rebuilds
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::uint16_t kInf16 = 0xffff;

  std::uint16_t* row(std::uint32_t s) noexcept { return dist_.data() + std::size_t{s} * m_; }
  const std::uint16_t* row(std::uint32_t s) const noexcept {
    return dist_.data() + std::size_t{s} * m_;
  }

  void adj_add(SwitchId a, SwitchId b);
  void adj_remove(SwitchId a, SwitchId b);
  // Re-copies adjacency, degrees, and host weights from `g` (same m).
  void sync_graph(const HostSwitchGraph& g);

  // Writes one distance-matrix entry, recording the old value (and, on the
  // row's first change this apply, its pre-apply aggregates) in the undo
  // frame. S_w / unreach_w / row-max are updated in place; a write that may
  // have lowered the row max queues the row on rescan_rows_ (drained by
  // apply() before the host moves).
  void write_entry(std::uint32_t s, std::uint32_t v, std::uint16_t next);
  // One flat pass refreshing S_w / unreach_w / row-max of row s.
  void recompute_row_aggregates(std::uint32_t s);
  // Rescans row s for its max finite weighted distance.
  void rescan_row_max(std::uint32_t s);

  void apply_edge_addition(SwitchId u, SwitchId v);
  void apply_edge_removal(SwitchId u, SwitchId v);
  void apply_host_move(SwitchId from, SwitchId to);

  // Pruned improvement cascade for row s after adding edge (near, far).
  void repair_addition(std::uint32_t s, SwitchId near, SwitchId far);
  // Ramalingam–Reps repair for row s after removing an edge whose deeper
  // endpoint `far` lost its last surviving predecessor.
  void repair_removal(std::uint32_t s, SwitchId far);
  // Full scalar BFS for row s (per-source fallback when the affected
  // region is most of the graph); diffs against the old row.
  void recompute_row_scalar(std::uint32_t s);
  // Batched bit-parallel recompute of the given source rows.
  void recompute_rows_bitparallel(const std::vector<std::uint32_t>& sources);
  // From-scratch distance matrix + aggregates (constructor / fallback).
  void rebuild_all_rows();
  void rebuild_aggregates();

  DeltaEvalOptions options_;
  std::uint32_t n_ = 0;
  std::uint32_t m_ = 0;

  // Mirrored switch subgraph: flat adjacency (stride adj_stride_), degrees,
  // and per-switch host counts.
  std::uint32_t adj_stride_ = 0;
  std::vector<SwitchId> adj_;
  std::vector<std::uint32_t> degree_;
  std::vector<std::uint32_t> weight_;
  std::uint32_t weighted_switches_ = 0;

  // Distance matrix and per-row aggregates.
  std::vector<std::uint16_t> dist_;
  std::vector<std::uint64_t> sum_w_;
  std::vector<std::uint64_t> unreach_w_;
  std::vector<std::uint16_t> row_max_;

  // Repair arenas (reused across applies; no steady-state allocation).
  std::vector<std::uint32_t> dirty_sources_;
  std::vector<std::uint32_t> queue_;
  std::vector<std::uint32_t> affected_;
  std::vector<std::uint32_t> level_cur_, level_next_;
  std::vector<std::uint16_t> tentative_;
  std::vector<std::uint32_t> visit_epoch_;
  std::uint32_t epoch_ = 0;
  std::vector<std::vector<std::uint32_t>> buckets_;

  // Bit-parallel batch scratch (64 rows of uint16 + frontier words).
  std::vector<std::uint16_t> scratch_rows_;
  std::vector<std::uint64_t> bp_frontier_, bp_next_, bp_reached_;

  // Removal-filter surviving-predecessor masks (one uint16 lane per source)
  // and the rows whose max may have shrunk during the current apply.
  std::vector<std::uint16_t> alt_u_, alt_v_;
  std::vector<std::uint32_t> rescan_rows_;
  std::vector<std::uint32_t> rescan_epoch_;

  // Undo machinery. Entries pack (s << 32 | v << 16 | old_distance); row
  // snapshots hold a touched row's pre-apply aggregates. Frames delimit
  // segments of both logs and stack in apply order.
  struct RowSnapshot {
    std::uint32_t row;
    std::uint64_t sum_w;
    std::uint64_t unreach_w;
    std::uint16_t row_max;
  };
  struct UndoFrame {
    std::size_t entries_begin = 0;
    std::size_t rows_begin = 0;
    GraphDelta delta;
    bool was_rebuild = false;
    // Full row-max snapshot, taken only when a host move crosses zero
    // hosts on a switch (the one case where reverting a row max is not
    // arithmetic).
    bool row_max_snapshot_valid = false;
    std::vector<std::uint16_t> row_max_snapshot;
  };
  std::vector<std::uint64_t> undo_entries_;
  std::vector<RowSnapshot> undo_rows_;
  std::vector<UndoFrame> frames_;
  std::vector<std::uint32_t> row_epoch_;  // == apply_epoch_: touched this apply
  std::uint32_t apply_epoch_ = 0;

  Stats stats_;
};

}  // namespace orp

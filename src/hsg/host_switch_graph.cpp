#include "hsg/host_switch_graph.hpp"

#include <algorithm>
#include <string>

namespace orp {

HostSwitchGraph::HostSwitchGraph(std::uint32_t n, std::uint32_t m, std::uint32_t r)
    : n_(n), m_(m), r_(r) {
  ORP_REQUIRE(n >= 1, "a host-switch graph needs at least one host");
  ORP_REQUIRE(m >= 1, "a host-switch graph needs at least one switch");
  ORP_REQUIRE(r >= 1, "radix must be positive");
  host_switch_.assign(n_, kDetached);
  hosts_per_switch_.assign(m_, 0);
  adj_.assign(m_, {});
}

void HostSwitchGraph::attach_host(HostId h, SwitchId s) {
  ORP_REQUIRE(h < n_, "host id out of range");
  ORP_REQUIRE(s < m_, "switch id out of range");
  ORP_REQUIRE(host_switch_[h] == kDetached, "host already attached");
  ORP_REQUIRE(ports_used(s) < r_, "switch has no free port for a host");
  host_switch_[h] = s;
  ++hosts_per_switch_[s];
  ++attached_hosts_;
}

void HostSwitchGraph::detach_host(HostId h) {
  ORP_REQUIRE(h < n_, "host id out of range");
  const SwitchId s = host_switch_[h];
  ORP_REQUIRE(s != kDetached, "host is not attached");
  host_switch_[h] = kDetached;
  --hosts_per_switch_[s];
  --attached_hosts_;
}

void HostSwitchGraph::move_host(HostId h, SwitchId to) {
  ORP_REQUIRE(h < n_, "host id out of range");
  ORP_REQUIRE(to < m_, "switch id out of range");
  const SwitchId from = host_switch_[h];
  ORP_REQUIRE(from != kDetached, "host is not attached");
  if (from == to) return;
  ORP_REQUIRE(ports_used(to) < r_, "destination switch has no free port");
  host_switch_[h] = to;
  --hosts_per_switch_[from];
  ++hosts_per_switch_[to];
}

bool HostSwitchGraph::has_switch_edge(SwitchId a, SwitchId b) const {
  ORP_ASSERT(a < m_ && b < m_);
  const auto& na = adj_[a];
  return std::find(na.begin(), na.end(), b) != na.end();
}

void HostSwitchGraph::add_switch_edge(SwitchId a, SwitchId b) {
  ORP_REQUIRE(a < m_ && b < m_, "switch id out of range");
  ORP_REQUIRE(a != b, "self-loops are not allowed");
  ORP_REQUIRE(!has_switch_edge(a, b), "edge already present (multi-edges not allowed)");
  ORP_REQUIRE(ports_used(a) < r_, "switch a has no free port");
  ORP_REQUIRE(ports_used(b) < r_, "switch b has no free port");
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++switch_edges_;
}

void HostSwitchGraph::remove_switch_edge(SwitchId a, SwitchId b) {
  ORP_REQUIRE(a < m_ && b < m_, "switch id out of range");
  auto erase_one = [](std::vector<SwitchId>& vec, SwitchId v) {
    auto it = std::find(vec.begin(), vec.end(), v);
    if (it == vec.end()) return false;
    *it = vec.back();
    vec.pop_back();
    return true;
  };
  ORP_REQUIRE(erase_one(adj_[a], b), "edge does not exist");
  ORP_ASSERT(erase_one(adj_[b], a));
  --switch_edges_;
}

bool HostSwitchGraph::switches_connected() const {
  if (m_ <= 1) return true;
  std::vector<char> seen(m_, 0);
  std::vector<SwitchId> stack{0};
  seen[0] = 1;
  std::uint32_t visited = 1;
  while (!stack.empty()) {
    const SwitchId v = stack.back();
    stack.pop_back();
    for (SwitchId u : adj_[v]) {
      if (!seen[u]) {
        seen[u] = 1;
        ++visited;
        stack.push_back(u);
      }
    }
  }
  return visited == m_;
}

std::vector<std::uint32_t> HostSwitchGraph::host_distribution() const {
  const std::uint32_t max_k =
      m_ == 0 ? 0 : *std::max_element(hosts_per_switch_.begin(), hosts_per_switch_.end());
  std::vector<std::uint32_t> dist(max_k + 1, 0);
  for (std::uint32_t k : hosts_per_switch_) ++dist[k];
  return dist;
}

std::vector<std::vector<HostId>> HostSwitchGraph::hosts_by_switch() const {
  std::vector<std::vector<HostId>> by_switch(m_);
  for (SwitchId s = 0; s < m_; ++s) by_switch[s].reserve(hosts_per_switch_[s]);
  for (HostId h = 0; h < n_; ++h) {
    if (host_switch_[h] != kDetached) by_switch[host_switch_[h]].push_back(h);
  }
  return by_switch;
}

void HostSwitchGraph::check_invariants() const {
  auto fail = [](const std::string& what) { throw std::logic_error("HostSwitchGraph: " + what); };

  std::vector<std::uint32_t> recount(m_, 0);
  std::uint32_t attached = 0;
  for (HostId h = 0; h < n_; ++h) {
    const SwitchId s = host_switch_[h];
    if (s == kDetached) continue;
    if (s >= m_) fail("host attached to out-of-range switch");
    ++recount[s];
    ++attached;
  }
  if (attached != attached_hosts_) fail("attached host counter out of sync");
  if (recount != hosts_per_switch_) fail("hosts_per_switch out of sync");

  std::uint64_t directed_edges = 0;
  for (SwitchId s = 0; s < m_; ++s) {
    const auto& ns = adj_[s];
    directed_edges += ns.size();
    if (ns.size() + hosts_per_switch_[s] > r_) fail("radix exceeded on a switch");
    for (SwitchId u : ns) {
      if (u >= m_) fail("adjacency points at out-of-range switch");
      if (u == s) fail("self-loop present");
      if (std::count(ns.begin(), ns.end(), u) != 1) fail("multi-edge present");
      const auto& nu = adj_[u];
      if (std::find(nu.begin(), nu.end(), s) == nu.end()) fail("adjacency not symmetric");
    }
  }
  if (directed_edges != 2 * switch_edges_) fail("switch edge counter out of sync");
}

bool HostSwitchGraph::operator==(const HostSwitchGraph& other) const {
  if (n_ != other.n_ || m_ != other.m_ || r_ != other.r_) return false;
  if (host_switch_ != other.host_switch_) return false;
  if (switch_edges_ != other.switch_edges_) return false;
  for (SwitchId s = 0; s < m_; ++s) {
    auto a = adj_[s];
    auto b = other.adj_[s];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return false;
  }
  return true;
}

}  // namespace orp

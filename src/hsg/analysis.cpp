#include "hsg/analysis.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"
#include "hsg/metrics.hpp"

namespace orp {
namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

// All-pairs switch distances by BFS from every switch (m is small in every
// analysis context; the metric kernels own the optimized path).
std::vector<std::uint32_t> switch_distances(const HostSwitchGraph& g) {
  const std::uint32_t m = g.num_switches();
  std::vector<std::uint32_t> dist(static_cast<std::size_t>(m) * m, kInf);
  std::vector<SwitchId> queue;
  for (SwitchId src = 0; src < m; ++src) {
    auto row = dist.begin() + static_cast<std::size_t>(src) * m;
    queue.clear();
    queue.push_back(src);
    row[src] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const SwitchId v = queue[head];
      for (SwitchId u : g.neighbors(v)) {
        if (row[u] == kInf) {
          row[u] = row[v] + 1;
          queue.push_back(u);
        }
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<SwitchId> unused_switches(const HostSwitchGraph& g) {
  std::vector<SwitchId> result;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    if (g.hosts_on(s) == 0) result.push_back(s);
  }
  return result;
}

std::vector<SwitchId> redundant_switches(const HostSwitchGraph& g) {
  ORP_REQUIRE(g.fully_attached(), "redundancy analysis needs every host attached");
  const std::uint32_t m = g.num_switches();
  const auto dist = switch_distances(g);
  auto d = [&](SwitchId a, SwitchId b) {
    return dist[static_cast<std::size_t>(a) * m + b];
  };

  std::vector<SwitchId> bearing;
  for (SwitchId s = 0; s < m; ++s) {
    if (g.hosts_on(s) > 0) bearing.push_back(s);
  }

  std::vector<SwitchId> result;
  for (SwitchId s = 0; s < m; ++s) {
    if (g.hosts_on(s) > 0) continue;  // carries hosts -> on its own paths
    bool on_some_path = false;
    for (std::size_t i = 0; i < bearing.size() && !on_some_path; ++i) {
      const SwitchId a = bearing[i];
      if (d(a, s) == kInf) continue;
      for (std::size_t j = i; j < bearing.size(); ++j) {
        const SwitchId b = bearing[j];
        // Same-switch host pairs (i == j) never leave switch a, and a
        // host pair on adjacent switches needs intermediate s only if
        // d(a,s) + d(s,b) equals the pair's switch distance.
        if (d(s, b) == kInf || d(a, b) == kInf) continue;
        if (d(a, s) + d(s, b) == d(a, b) && !(i == j && d(a, s) > 0)) {
          on_some_path = true;
          break;
        }
      }
    }
    if (!on_some_path) result.push_back(s);
  }
  return result;
}

HostSwitchGraph remove_switches(const HostSwitchGraph& g,
                                const std::vector<SwitchId>& victims) {
  std::vector<std::uint8_t> removed(g.num_switches(), 0);
  for (const SwitchId s : victims) {
    ORP_REQUIRE(s < g.num_switches(), "victim switch out of range");
    ORP_REQUIRE(g.hosts_on(s) == 0, "cannot remove a switch that carries hosts");
    removed[s] = 1;
  }
  std::vector<SwitchId> new_id(g.num_switches(), 0);
  std::uint32_t kept = 0;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    new_id[s] = kept;
    if (!removed[s]) ++kept;
  }
  ORP_REQUIRE(kept >= 1, "cannot remove every switch");

  HostSwitchGraph result(g.num_hosts(), kept, g.radix());
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    if (g.host_attached(h)) result.attach_host(h, new_id[g.host_switch(h)]);
  }
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    if (removed[s]) continue;
    for (SwitchId t : g.neighbors(s)) {
      if (t > s && !removed[t]) result.add_switch_edge(new_id[s], new_id[t]);
    }
  }
  return result;
}

std::vector<std::uint32_t> switch_degree_distribution(const HostSwitchGraph& g) {
  std::uint32_t max_degree = 0;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    max_degree = std::max(max_degree, g.switch_degree(s));
  }
  std::vector<std::uint32_t> dist(max_degree + 1, 0);
  for (SwitchId s = 0; s < g.num_switches(); ++s) ++dist[g.switch_degree(s)];
  return dist;
}

FaultImpact link_failure_impact(const HostSwitchGraph& g, double failure_rate,
                                int trials, Xoshiro256& rng) {
  ORP_REQUIRE(failure_rate >= 0.0 && failure_rate < 1.0,
              "failure rate must be in [0, 1)");
  ORP_REQUIRE(trials > 0, "need at least one trial");
  const HostMetrics healthy = compute_host_metrics(g);
  ORP_REQUIRE(healthy.connected, "baseline network must be connected");

  FaultImpact impact;
  double inflation_sum = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    HostSwitchGraph faulty = g;
    for (SwitchId s = 0; s < g.num_switches(); ++s) {
      for (const SwitchId t : g.neighbors(s)) {
        if (s < t && rng.bernoulli(failure_rate)) faulty.remove_switch_edge(s, t);
      }
    }
    const HostMetrics metrics = compute_host_metrics(faulty);
    if (!metrics.connected) continue;
    ++impact.connected_trials;
    const double inflation = metrics.h_aspl / healthy.h_aspl - 1.0;
    inflation_sum += inflation;
    impact.max_haspl_inflation = std::max(impact.max_haspl_inflation, inflation);
  }
  impact.disconnect_probability =
      1.0 - static_cast<double>(impact.connected_trials) / trials;
  if (impact.connected_trials > 0) {
    impact.mean_haspl_inflation = inflation_sum / impact.connected_trials;
  }
  return impact;
}

double average_shortest_path_multiplicity(const HostSwitchGraph& g) {
  ORP_REQUIRE(g.fully_attached(), "path multiplicity needs every host attached");
  const std::uint32_t m = g.num_switches();
  const auto dist = switch_distances(g);
  auto d = [&](SwitchId a, SwitchId b) {
    return dist[static_cast<std::size_t>(a) * m + b];
  };

  // Count shortest paths a->b by dynamic programming over BFS levels.
  double total = 0.0;
  std::uint64_t pairs = 0;
  std::vector<double> count(m);
  for (SwitchId a = 0; a < m; ++a) {
    if (g.hosts_on(a) == 0) continue;
    std::fill(count.begin(), count.end(), 0.0);
    count[a] = 1.0;
    // Process vertices in increasing distance from a.
    std::vector<SwitchId> order;
    for (SwitchId v = 0; v < m; ++v) {
      if (d(a, v) != kInf) order.push_back(v);
    }
    std::sort(order.begin(), order.end(),
              [&](SwitchId x, SwitchId y) { return d(a, x) < d(a, y); });
    for (const SwitchId v : order) {
      if (v == a) continue;
      for (const SwitchId u : g.neighbors(v)) {
        if (d(a, u) + 1 == d(a, v)) count[v] += count[u];
      }
    }
    for (SwitchId b = 0; b < m; ++b) {
      if (b == a || g.hosts_on(b) == 0 || d(a, b) == kInf) continue;
      total += count[b];
      ++pairs;
    }
  }
  return pairs ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace orp

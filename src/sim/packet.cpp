#include "sim/packet.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/require.hpp"

namespace orp {
namespace {

struct Packet {
  std::uint32_t first_link = 0;  ///< offset into the shared path pool
  std::uint32_t num_links = 0;
  std::uint64_t bytes = 0;
  double inject_time = 0.0;
  double finish_time = 0.0;
};

// One pending hop: packet `packet` becomes ready to enter hop `hop` of its
// path at `time`. Processing in global time order makes per-link FIFOs
// consistent: a link serves packets in ready-time order.
struct HopEvent {
  double time;
  std::uint32_t packet;
  std::uint32_t hop;
  bool operator>(const HopEvent& other) const { return time > other.time; }
};

}  // namespace

PacketMachine::PacketMachine(const HostSwitchGraph& graph,
                             const PacketSimParams& params,
                             std::vector<HostId> rank_to_host)
    : params_(params), routes_(graph), num_ranks_(graph.num_hosts()),
      rank_to_host_(std::move(rank_to_host)) {
  ORP_REQUIRE(params_.packet_bytes > 0, "packet size must be positive");
  if (rank_to_host_.empty()) {
    rank_to_host_.resize(num_ranks_);
    std::iota(rank_to_host_.begin(), rank_to_host_.end(), 0);
  }
  ORP_REQUIRE(rank_to_host_.size() == num_ranks_, "rank map size mismatch");
  std::vector<std::uint8_t> seen(num_ranks_, 0);
  for (const HostId h : rank_to_host_) {
    ORP_REQUIRE(h < num_ranks_ && !seen[h], "rank map must be a permutation of hosts");
    seen[h] = 1;
  }
}

PacketPhaseResult PacketMachine::phase(const std::vector<Message>& messages) {
  PacketPhaseResult result;

  // Segment messages into packets sharing one flattened path pool.
  std::vector<LinkId> path_pool;
  std::vector<Packet> packets;
  for (const Message& m : messages) {
    ORP_REQUIRE(m.src < num_ranks_ && m.dst < num_ranks_, "rank out of range");
    if (m.src == m.dst || m.bytes == 0) continue;
    const auto first = static_cast<std::uint32_t>(path_pool.size());
    const std::uint32_t hops = routes_.append_host_path(
        rank_to_host_[m.src], rank_to_host_[m.dst], path_pool);
    std::uint64_t remaining = m.bytes;
    while (remaining > 0) {
      const std::uint64_t size = std::min<std::uint64_t>(remaining, params_.packet_bytes);
      packets.push_back({first, hops, size, 0.0, 0.0});
      remaining -= size;
    }
  }
  result.packets = packets.size();
  if (packets.empty()) return result;

  const double bandwidth = params_.base.link_bandwidth;
  const double latency = params_.base.hop_latency;

  std::vector<double> link_free(routes_.num_links(), 0.0);
  std::priority_queue<HopEvent, std::vector<HopEvent>, std::greater<>> events;
  // Injection: packets of a message queue behind each other implicitly via
  // the first link's FIFO; the software overhead delays the whole message.
  for (std::uint32_t p = 0; p < packets.size(); ++p) {
    packets[p].inject_time = params_.base.mpi_overhead;
    events.push({packets[p].inject_time, p, 0});
  }

  double last_finish = 0.0;
  double latency_sum = 0.0;
  while (!events.empty()) {
    const HopEvent event = events.top();
    events.pop();
    Packet& packet = packets[event.packet];
    const LinkId link = path_pool[packet.first_link + event.hop];
    const double tx = static_cast<double>(packet.bytes) / bandwidth;
    const double start = std::max(event.time, link_free[link]);
    const double done = start + tx;
    link_free[link] = done;
    const double arrival = done + latency;  // fully received, then forwarded
    if (event.hop + 1 < packet.num_links) {
      events.push({arrival, event.packet, event.hop + 1});
    } else {
      packet.finish_time = arrival;
      last_finish = std::max(last_finish, arrival);
      latency_sum += arrival - packet.inject_time;
      result.max_packet_latency =
          std::max(result.max_packet_latency, arrival - packet.inject_time);
    }
  }

  result.elapsed = last_finish;
  result.mean_packet_latency = latency_sum / static_cast<double>(packets.size());
  return result;
}

}  // namespace orp

#pragma once
// Communication skeletons of the NAS Parallel Benchmarks (§6.2.1).
//
// The paper runs NPB 3.3.1 (MPI) under SimGrid: IS and FT in class A, the
// rest in class B, on 1024 processes. We cannot run the Fortran codes, so
// each kernel is reproduced as a *communication skeleton*: the documented
// per-iteration communication pattern (collective types, partners, message
// volumes derived from the class problem sizes) plus a uniform compute
// model (total operation count / 100 GFlops hosts). Network comparisons
// depend on these patterns, not on the arithmetic itself:
//
//   EP  embarrassingly parallel      — a few tiny allreduces
//   IS  integer bucket sort          — alltoall(counts) + alltoallv(keys)
//   FT  3-D FFT                      — full-volume transpose alltoall
//   MG  multigrid V-cycles           — 3-D halos whose partners get *far*
//                                      at coarse levels (long-distance)
//   CG  conjugate gradient           — row/column exchanges on a 2-D
//                                      process grid + transpose partner
//   LU  SSOR wavefront               — pipelined small NE/SW messages
//   SP  scalar pentadiagonal         — multipartition face exchanges
//   BT  block tridiagonal            — multipartition face exchanges
//
// `iteration_fraction` scales the iteration counts (1.0 = the class's full
// count) so laptop-scale runs stay minutes, preserving per-iteration
// behaviour exactly; Mop/s is computed from the same fraction of work.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace orp {

enum class NasKernel { kEP, kIS, kFT, kMG, kCG, kLU, kSP, kBT };

const char* nas_kernel_name(NasKernel kernel);
/// All eight kernels in the paper's figure order.
std::vector<NasKernel> all_nas_kernels();

struct NasResult {
  std::string name;
  double seconds = 0.0;      ///< simulated wall clock
  double gflops_total = 0.0; ///< work simulated (scaled by the fraction)
  double mops_per_second = 0.0;
  double comm_seconds = 0.0; ///< time in communication phases
};

struct NasOptions {
  /// Fraction of the class iteration count to simulate (0 < f <= 1).
  double iteration_fraction = 1.0;
};

/// Runs one kernel on the machine (resets the machine clock first).
/// The rank count must be a square power of two >= 16 (the paper uses
/// 1024; tests use 64/256).
NasResult run_nas_kernel(Machine& machine, NasKernel kernel,
                         const NasOptions& options = {});

}  // namespace orp

#include "sim/routing.hpp"

#include <algorithm>

#include "common/prng.hpp"
#include "common/require.hpp"

namespace orp {

RoutingTable::RoutingTable(const HostSwitchGraph& g)
    : n_(g.num_hosts()), m_(g.num_switches()) {
  ORP_REQUIRE(g.fully_attached(), "routing needs every host attached");
  host_switch_.resize(n_);
  for (HostId h = 0; h < n_; ++h) host_switch_[h] = g.host_switch(h);

  // Directed switch-switch link layout and sorted adjacency.
  link_base_.resize(m_ + 1);
  sorted_adj_.resize(m_);
  std::uint32_t offset = 2 * n_;
  for (SwitchId s = 0; s < m_; ++s) {
    link_base_[s] = offset;
    sorted_adj_[s].assign(g.neighbors(s).begin(), g.neighbors(s).end());
    std::sort(sorted_adj_[s].begin(), sorted_adj_[s].end());
    offset += static_cast<std::uint32_t>(sorted_adj_[s].size());
  }
  link_base_[m_] = offset;
  num_links_ = offset;

  // BFS from every switch; next hops chosen toward the destination with
  // lowest-id tie-break, giving loop-free deterministic minimal routes.
  dist_.assign(static_cast<std::size_t>(m_) * m_, kUnreachable);
  next_hop_.assign(static_cast<std::size_t>(m_) * m_, kUnreachable);
  std::vector<SwitchId> queue;
  queue.reserve(m_);
  for (SwitchId t = 0; t < m_; ++t) {
    // BFS from the *destination* so dist_[s][t] and the next hop from any s
    // toward t come out of one traversal.
    auto dist_to_t = [&](SwitchId s) -> std::uint32_t& {
      return dist_[static_cast<std::size_t>(s) * m_ + t];
    };
    queue.clear();
    queue.push_back(t);
    dist_to_t(t) = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const SwitchId v = queue[head];
      const std::uint32_t dv = dist_to_t(v);
      // Visit sorted neighbors so BFS order (and therefore parents at equal
      // depth) is deterministic.
      for (SwitchId u : sorted_adj_[v]) {
        if (dist_to_t(u) != kUnreachable) continue;
        dist_to_t(u) = dv + 1;
        queue.push_back(u);
      }
    }
    for (SwitchId s = 0; s < m_; ++s) {
      if (s == t || dist_to_t(s) == kUnreachable) continue;
      for (SwitchId u : sorted_adj_[s]) {  // lowest-id shortest next hop
        if (dist_to_t(u) + 1 == dist_to_t(s)) {
          next_hop_[static_cast<std::size_t>(s) * m_ + t] = u;
          break;
        }
      }
    }
  }
}

LinkId RoutingTable::switch_link(SwitchId a, SwitchId b) const {
  const auto& adj = sorted_adj_[a];
  const auto it = std::lower_bound(adj.begin(), adj.end(), b);
  ORP_ASSERT(it != adj.end() && *it == b);
  return link_base_[a] + static_cast<std::uint32_t>(it - adj.begin());
}

std::uint32_t RoutingTable::equal_cost_next_hops(SwitchId s, SwitchId t) const {
  if (s == t) return 0;
  const std::uint32_t ds = dist_[static_cast<std::size_t>(s) * m_ + t];
  if (ds == kUnreachable) return 0;
  std::uint32_t count = 0;
  for (SwitchId u : sorted_adj_[s]) {
    if (dist_[static_cast<std::size_t>(u) * m_ + t] + 1 == ds) ++count;
  }
  return count;
}

std::uint32_t RoutingTable::append_host_path_ecmp(HostId src, HostId dst,
                                                  std::uint64_t flow_key,
                                                  std::vector<LinkId>& path) const {
  ORP_REQUIRE(src < n_ && dst < n_ && src != dst, "bad host pair");
  const std::size_t before = path.size();
  path.push_back(host_uplink(src));
  SwitchId s = host_switch_[src];
  const SwitchId t = host_switch_[dst];
  std::uint64_t hash = flow_key ^ 0x9e3779b97f4a7c15ULL;
  while (s != t) {
    const std::uint32_t ds = dist_[static_cast<std::size_t>(s) * m_ + t];
    ORP_REQUIRE(ds != kUnreachable, "hosts are not connected");
    const std::uint32_t choices = equal_cost_next_hops(s, t);
    ORP_ASSERT(choices > 0);
    // SplitMix-style remix per hop so consecutive hops decorrelate.
    hash = splitmix64_next(hash);
    std::uint32_t pick = static_cast<std::uint32_t>(hash % choices);
    SwitchId next = s;
    for (SwitchId u : sorted_adj_[s]) {
      if (dist_[static_cast<std::size_t>(u) * m_ + t] + 1 == ds) {
        if (pick == 0) {
          next = u;
          break;
        }
        --pick;
      }
    }
    path.push_back(switch_link(s, next));
    s = next;
  }
  path.push_back(host_downlink(dst));
  return static_cast<std::uint32_t>(path.size() - before);
}

std::vector<SwitchId> RoutingTable::switch_path(SwitchId s, SwitchId t) const {
  ORP_REQUIRE(s < m_ && t < m_, "switch id out of range");
  std::vector<SwitchId> path{s};
  while (s != t) {
    const SwitchId u = next_hop_[static_cast<std::size_t>(s) * m_ + t];
    ORP_REQUIRE(u != kUnreachable, "switches are not connected");
    path.push_back(u);
    s = u;
  }
  return path;
}

std::uint32_t RoutingTable::try_append_host_path(HostId src, HostId dst,
                                                 std::vector<LinkId>& path) const {
  ORP_REQUIRE(src < n_ && dst < n_ && src != dst, "bad host pair");
  if (!hosts_connected(src, dst)) return 0;
  return append_host_path(src, dst, path);
}

std::uint32_t RoutingTable::try_append_host_path_ecmp(
    HostId src, HostId dst, std::uint64_t flow_key,
    std::vector<LinkId>& path) const {
  ORP_REQUIRE(src < n_ && dst < n_ && src != dst, "bad host pair");
  if (!hosts_connected(src, dst)) return 0;
  return append_host_path_ecmp(src, dst, flow_key, path);
}

std::uint32_t RoutingTable::append_host_path(HostId src, HostId dst,
                                             std::vector<LinkId>& path) const {
  ORP_REQUIRE(src < n_ && dst < n_ && src != dst, "bad host pair");
  const std::size_t before = path.size();
  path.push_back(host_uplink(src));
  SwitchId s = host_switch_[src];
  const SwitchId t = host_switch_[dst];
  while (s != t) {
    const SwitchId u = next_hop_[static_cast<std::size_t>(s) * m_ + t];
    ORP_REQUIRE(u != kUnreachable, "hosts are not connected");
    path.push_back(switch_link(s, u));
    s = u;
  }
  path.push_back(host_downlink(dst));
  return static_cast<std::uint32_t>(path.size() - before);
}

}  // namespace orp

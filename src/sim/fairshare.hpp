#pragma once
// Max-min fair bandwidth allocation (progressive filling).
//
// This is the fluid model at the heart of flow-level network simulators
// (SimGrid's network core solves the same allocation): all flows increase
// their rate together until a link saturates; flows crossing a saturated
// link are frozen at the current rate; repeat until every flow is frozen.
// Only links actually carrying active flows participate, so the cost per
// solve is O(#filling-steps * touched links + flows * path length).

#include <cstdint>
#include <vector>

#include "sim/routing.hpp"

namespace orp {

/// Solves max-min rates for `flows` (each a list of directed link ids)
/// where every link has identical capacity `link_capacity`. `rates[i]`
/// receives flow i's allocation. Active flows with empty paths
/// (same-switch endpoints) contend with nothing and get line rate.
/// Scratch buffers are reused across calls.
///
/// This is the golden oracle for FastFairShareSolver (fairshare_fast.hpp):
/// keep semantics frozen — the differential battery in
/// tests/sim_fairshare_diff_test.cpp pins both solvers to each other.
class FairShareSolver {
 public:
  explicit FairShareSolver(std::uint32_t num_links, double link_capacity);

  void solve(const std::vector<std::vector<LinkId>>& paths,
             const std::vector<std::uint8_t>& active,
             std::vector<double>& rates);

 private:
  double capacity_;
  std::vector<double> remaining_;       // per touched link
  std::vector<std::uint32_t> count_;    // unfixed flows per touched link
  std::vector<std::uint32_t> link_slot_;  // global link id -> touched slot
  std::vector<LinkId> touched_;
};

}  // namespace orp

#pragma once
// Packet-level discrete-event network simulator.
//
// An independent cross-check for the fluid (max-min fair flow) engine in
// Machine: messages are segmented into packets that traverse their route
// store-and-forward through per-link FIFO queues. For long flows the two
// models must agree (the fluid model is the limit of fair packet
// interleaving); for short messages the packet model exposes
// serialization and head-of-line effects the fluid model abstracts away.
// The abl_fluid_vs_packet bench quantifies the gap on real topologies —
// this is the validation the SimGrid-substitution rests on (DESIGN.md).

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"
#include "sim/params.hpp"
#include "sim/routing.hpp"

namespace orp {

struct PacketSimParams {
  SimParams base;                   ///< bandwidth / latency / overhead
  std::uint64_t packet_bytes = 4096;  ///< segmentation size (MTU payload)
};

struct PacketPhaseResult {
  double elapsed = 0.0;       ///< time until the last packet lands
  std::uint64_t packets = 0;  ///< packets injected
  double mean_packet_latency = 0.0;
  double max_packet_latency = 0.0;
};

class PacketMachine {
 public:
  PacketMachine(const HostSwitchGraph& graph, const PacketSimParams& params = {},
                std::vector<HostId> rank_to_host = {});

  std::uint32_t num_ranks() const noexcept { return num_ranks_; }

  /// Simulates all messages injected at t = 0; returns when the last
  /// packet is fully received. Packets of one message are injected
  /// back-to-back at the source in order.
  PacketPhaseResult phase(const std::vector<Message>& messages);

 private:
  PacketSimParams params_;
  RoutingTable routes_;
  std::uint32_t num_ranks_;
  std::vector<HostId> rank_to_host_;
};

}  // namespace orp

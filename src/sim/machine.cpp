#include "sim/machine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "common/require.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace orp {
namespace {

struct SimInstruments {
  obs::Counter& phases;
  obs::Counter& flows;
  obs::Histogram& solve_ns;
  obs::Counter& fault_events;
  obs::Counter& fault_rebuilds;
  obs::Counter& fault_retries;
  obs::Counter& fault_failures;
  obs::Counter& fault_repairs;

  static SimInstruments& get() {
    auto& registry = obs::Registry::global();
    static SimInstruments instance{registry.counter("sim.phases"),
                                   registry.counter("sim.flows"),
                                   registry.histogram("sim.phase.solve_ns"),
                                   registry.counter("sim.fault.events"),
                                   registry.counter("sim.fault.rebuilds"),
                                   registry.counter("sim.fault.retried_flows"),
                                   registry.counter("sim.fault.failed_flows"),
                                   registry.counter("sim.fault.repairs")};
    return instance;
  }
};

}  // namespace

Machine::Machine(const HostSwitchGraph& graph, const SimParams& params,
                 std::vector<HostId> rank_to_host)
    : params_(params),
      graph_(graph),
      routes_(graph_),
      num_ranks_(graph.num_hosts()),
      rank_to_host_(std::move(rank_to_host)),
      solver_(routes_.num_links(), params.link_bandwidth),
      fast_solver_(routes_.num_links(), params.link_bandwidth) {
  if (rank_to_host_.empty()) {
    rank_to_host_.resize(num_ranks_);
    std::iota(rank_to_host_.begin(), rank_to_host_.end(), 0);
  }
  ORP_REQUIRE(rank_to_host_.size() == num_ranks_, "rank map size mismatch");
  std::vector<std::uint8_t> seen(num_ranks_, 0);
  for (const HostId h : rank_to_host_) {
    ORP_REQUIRE(h < num_ranks_ && !seen[h], "rank map must be a permutation of hosts");
    seen[h] = 1;
  }
  switch_dead_.assign(graph_.num_switches(), 0);
  host_dead_.assign(num_ranks_, 0);
  downed_adjacency_.assign(graph_.num_switches(), {});
}

void Machine::inject_faults(std::vector<FaultEvent> events) {
  for (const FaultEvent& e : events) {
    ORP_REQUIRE(std::isfinite(e.time) && e.time >= 0.0,
                "fault event time must be finite and non-negative");
    ORP_REQUIRE(e.a < graph_.num_switches(), "fault event switch out of range");
    if (e.kind == FaultEvent::Kind::kLinkDown ||
        e.kind == FaultEvent::Kind::kLinkUp) {
      ORP_REQUIRE(e.b < graph_.num_switches() && e.a != e.b,
                  "fault event link endpoints invalid");
    }
  }
  // Drop the already-applied prefix, merge, and keep time order (stable so
  // same-instant events apply in injection order).
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(next_event_));
  next_event_ = 0;
  pending_.insert(pending_.end(), events.begin(), events.end());
  std::stable_sort(
      pending_.begin(), pending_.end(),
      [](const FaultEvent& x, const FaultEvent& y) { return x.time < y.time; });
}

bool Machine::apply_due_faults(double horizon,
                               std::vector<std::uint8_t>* removed_links) {
  SimInstruments& instruments = SimInstruments::get();
  bool changed = false;
  // Flags both directions of a dying cable under the OLD link numbering
  // (routes_ is rebuilt only after every due event has landed).
  const auto mark = [&](SwitchId a, SwitchId b) {
    if (!removed_links) return;
    (*removed_links)[routes_.switch_link(a, b)] = 1;
    (*removed_links)[routes_.switch_link(b, a)] = 1;
  };
  while (next_event_ < pending_.size() &&
         pending_[next_event_].time <= horizon) {
    const FaultEvent& e = pending_[next_event_++];
    ++fault_stats_.events_applied;
    instruments.fault_events.inc();
    // Drops {a, b} from a dead switch's frozen adjacency: the cable failed
    // on its own, so a later kSwitchUp must not resurrect it.
    const auto unrecord = [this](SwitchId a, SwitchId b) {
      auto& adj = downed_adjacency_[a];
      adj.erase(std::remove(adj.begin(), adj.end(), b), adj.end());
    };
    switch (e.kind) {
      case FaultEvent::Kind::kLinkDown:
        // A cable that is already gone (repeat event, or its switch died)
        // is a no-op rather than an error: fault schedules may overlap.
        if (graph_.has_switch_edge(e.a, e.b)) {
          mark(e.a, e.b);
          graph_.remove_switch_edge(e.a, e.b);
          changed = true;
        } else {
          unrecord(e.a, e.b);
          unrecord(e.b, e.a);
        }
        break;
      case FaultEvent::Kind::kSwitchDown:
        if (!switch_dead_[e.a]) {
          switch_dead_[e.a] = 1;
          const auto span = graph_.neighbors(e.a);
          downed_adjacency_[e.a].assign(span.begin(), span.end());
          for (const SwitchId t : downed_adjacency_[e.a]) {
            mark(e.a, t);
            graph_.remove_switch_edge(e.a, t);
          }
          for (HostId h = 0; h < graph_.num_hosts(); ++h) {
            if (graph_.host_switch(h) == e.a) host_dead_[h] = 1;
          }
          changed = true;
        }
        break;
      case FaultEvent::Kind::kLinkUp:
        // Inverse topology edit. Requires both endpoints alive (repair the
        // switch first — its kSwitchUp restores recorded cables), the edge
        // absent, and a free port on each end.
        if (!switch_dead_[e.a] && !switch_dead_[e.b] &&
            !graph_.has_switch_edge(e.a, e.b) && graph_.free_ports(e.a) > 0 &&
            graph_.free_ports(e.b) > 0) {
          graph_.add_switch_edge(e.a, e.b);
          ++fault_stats_.links_repaired;
          instruments.fault_repairs.inc();
          changed = true;
        }
        break;
      case FaultEvent::Kind::kSwitchUp:
        if (switch_dead_[e.a]) {
          switch_dead_[e.a] = 0;
          // Restore the pre-failure cables whose far end survived and
          // still has a port; re-admit the switch's hosts (their ranks
          // become routable again — failed flows stay failed, re-admission
          // is of ranks, not of past traffic).
          for (const SwitchId t : downed_adjacency_[e.a]) {
            if (!switch_dead_[t] && !graph_.has_switch_edge(e.a, t) &&
                graph_.free_ports(e.a) > 0 && graph_.free_ports(t) > 0) {
              graph_.add_switch_edge(e.a, t);
            }
          }
          downed_adjacency_[e.a].clear();
          for (HostId h = 0; h < graph_.num_hosts(); ++h) {
            if (graph_.host_switch(h) == e.a) host_dead_[h] = 0;
          }
          ++fault_stats_.switches_repaired;
          instruments.fault_repairs.inc();
          changed = true;
        }
        break;
    }
  }
  if (changed) {
    // Full rebuild: link ids renumber, so callers with in-flight paths must
    // recompute every one of them (the ids are offsets into a layout that
    // just shifted, not stable names).
    routes_ = RoutingTable(graph_);
    solver_ = FairShareSolver(routes_.num_links(), params_.link_bandwidth);
    fast_solver_ =
        FastFairShareSolver(routes_.num_links(), params_.link_bandwidth);
    ++fault_stats_.routing_rebuilds;
    instruments.fault_rebuilds.inc();
  }
  return changed;
}

std::uint32_t Machine::route_hops(Rank a, Rank b) const {
  ORP_REQUIRE(a < num_ranks_ && b < num_ranks_, "rank out of range");
  if (a == b) return 0;
  std::vector<LinkId> scratch;
  return routes_.append_host_path(rank_to_host_[a], rank_to_host_[b], scratch);
}

double Machine::compute(double flops_per_rank) {
  ORP_REQUIRE(flops_per_rank >= 0, "negative flops");
  const double elapsed = flops_per_rank / (params_.host_gflops * 1e9);
  clock_ += elapsed;
  return elapsed;
}

double Machine::phase(const std::vector<Message>& messages) {
  if (messages.empty()) return 0.0;

  SimInstruments& instruments = SimInstruments::get();
  obs::Span span("sim.phase", "sim");
  obs::ScopedTimer solve_timer(instruments.solve_ns);

  // Faults that struck between phases (or before the run) land now, so
  // injection below already routes on the degraded topology.
  apply_due_faults(clock_, nullptr);

  // Build flow paths (self-messages are memcpy, modeled as free).
  ++phase_counter_;
  std::vector<std::uint64_t>& remaining = scratch_.remaining;
  std::vector<std::uint32_t>& hops = scratch_.hops;
  std::vector<HostId>& flow_src = scratch_.flow_src;
  std::vector<HostId>& flow_dst = scratch_.flow_dst;
  std::vector<std::uint64_t>& flow_key = scratch_.flow_key;
  std::vector<double>& penalty = scratch_.penalty;
  std::vector<std::uint8_t>& failed = scratch_.failed;
  std::vector<std::uint8_t>& retried = scratch_.retried;
  remaining.clear();
  hops.clear();
  flow_src.clear();
  flow_dst.clear();
  flow_key.clear();
  penalty.clear();
  failed.clear();
  retried.clear();
  std::size_t built = 0;

  // Routes flow f on the current topology; returns its hop count, or 0
  // when no route survives (dead endpoint or partitioned host pair).
  const auto route_flow = [&](std::size_t f) -> std::uint32_t {
    const HostId src = flow_src[f];
    const HostId dst = flow_dst[f];
    if (host_dead_[src] || host_dead_[dst]) return 0;
    if (params_.routing == RoutingPolicy::kEcmp) {
      return routes_.try_append_host_path_ecmp(src, dst, flow_key[f],
                                               paths_[f]);
    }
    return routes_.try_append_host_path(src, dst, paths_[f]);
  };

  for (const Message& m : messages) {
    ORP_REQUIRE(m.src < num_ranks_ && m.dst < num_ranks_, "rank out of range");
    if (m.src == m.dst) continue;
    const std::size_t f = built++;
    if (f < paths_.size()) {
      paths_[f].clear();  // reuse the buffer's capacity
    } else {
      paths_.emplace_back();
    }
    flow_src.push_back(rank_to_host_[m.src]);
    flow_dst.push_back(rank_to_host_[m.dst]);
    // Per-flow key: stable for a (src, dst) within a phase, varied across
    // phases so repeated rounds spread differently.
    flow_key.push_back((static_cast<std::uint64_t>(m.src) << 40) ^
                       (static_cast<std::uint64_t>(m.dst) << 16) ^
                       phase_counter_);
    remaining.push_back(m.bytes);
    penalty.push_back(0.0);
    failed.push_back(0);
    retried.push_back(0);
    hops.push_back(route_flow(f));
  }
  if (built == 0) return 0.0;
  paths_.resize(built);

  const std::size_t num_flows = paths_.size();
  std::vector<std::uint8_t>& active = scratch_.active;
  std::vector<double>& finish = scratch_.finish;
  active.assign(num_flows, 1);
  finish.assign(num_flows, 0.0);
  std::size_t active_count = num_flows;

  // Network telemetry (docs/telemetry.md): one load when no tracer is
  // active; otherwise the collector snapshots raw per-flow/per-link data
  // and defers all formatting to the sink flush.
  const bool tele = net_.begin_phase(clock_, num_flows);
  std::uint32_t fluid_steps = 0;

  for (std::size_t f = 0; f < num_flows; ++f) {
    if (hops[f] == 0) {
      // No surviving route at injection: the sender gives up after the
      // bounded detection timeout instead of hanging.
      failed[f] = 1;
      active[f] = 0;
      --active_count;
      finish[f] = params_.retry_timeout;
      ++fault_stats_.flows_failed;
      instruments.fault_failures.inc();
    } else if (remaining[f] == 0) {
      // Zero-byte messages finish immediately (latency-only).
      active[f] = 0;
      --active_count;
    }
  }

  // Fluid simulation: advance to the next flow completion, re-solving the
  // fair allocation whenever the active set changes. Completions within a
  // relative epsilon batch together, which keeps homogeneous collectives at
  // one solve per phase. Fault events due mid-phase interrupt the advance
  // at their timestamp: the topology degrades, routing rebuilds, and every
  // in-flight flow is re-pathed (link ids renumber on rebuild) — flows that
  // were crossing a dead link pay retry_backoff, flows with no surviving
  // route fail at the event time plus retry_timeout.
  double t = 0.0;
  std::vector<double>& byte_progress = scratch_.byte_progress;
  byte_progress.assign(num_flows, 0.0);
  std::vector<std::uint8_t>& removed_links = scratch_.removed_links;
  const bool fast = params_.fluid_solver == FluidSolver::kFast;
  if (fast) fast_solver_.set_paths(paths_, active);
  while (active_count > 0) {
    if (fast) {
      fast_solver_.solve(rates_);
    } else {
      solver_.solve(paths_, active, rates_);
    }
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (!active[f]) continue;
      ORP_ASSERT(rates_[f] > 0.0);
      dt = std::min(dt, (static_cast<double>(remaining[f]) - byte_progress[f]) / rates_[f]);
    }

    if (next_event_ < pending_.size() &&
        pending_[next_event_].time < clock_ + t + dt) {
      // Progress to the fault instant, then apply every event due there.
      const double event_t = std::max(pending_[next_event_].time - clock_, t);
      for (std::size_t f = 0; f < num_flows; ++f) {
        if (active[f]) byte_progress[f] += rates_[f] * (event_t - t);
      }
      if (tele) {
        net_.on_segment(fluid_steps, clock_ + t, clock_ + event_t, paths_,
                        active, rates_);
      }
      ++fluid_steps;
      t = event_t;
      removed_links.assign(routes_.num_links(), 0);
      if (!apply_due_faults(clock_ + t, &removed_links)) continue;
      for (std::size_t f = 0; f < num_flows; ++f) {
        if (!active[f]) continue;
        // Impact test against the OLD numbering, before the paths go stale.
        bool hit = host_dead_[flow_src[f]] || host_dead_[flow_dst[f]];
        if (!hit) {
          for (const LinkId l : paths_[f]) {
            if (removed_links[l]) {
              hit = true;
              break;
            }
          }
        }
        paths_[f].clear();
        const std::uint32_t new_hops = route_flow(f);
        if (new_hops == 0) {
          active[f] = 0;
          --active_count;
          failed[f] = 1;
          finish[f] = t + params_.retry_timeout;
          ++fault_stats_.flows_failed;
          instruments.fault_failures.inc();
          if (tele) net_.flow_done(f, rates_[f]);
        } else {
          hops[f] = new_hops;
          if (hit) {
            // Rerouted mid-flight: delivered bytes are kept, the reroute
            // costs one transport backoff.
            penalty[f] += params_.retry_backoff;
            fault_stats_.retry_added_latency += params_.retry_backoff;
            retried[f] = 1;
            ++fault_stats_.flows_retried;
            instruments.fault_retries.inc();
          }
        }
      }
      // Link ids renumbered and every surviving flow was re-pathed, so the
      // fast solver's tableau (replaced in apply_due_faults) is rebuilt
      // from scratch; the next solve is a cold one.
      if (fast) fast_solver_.set_paths(paths_, active);
      continue;
    }

    const double batch_window = dt * (1.0 + 1e-9) + 1e-15;
    if (tele) {
      net_.on_segment(fluid_steps, clock_ + t, clock_ + t + dt, paths_, active,
                      rates_);
    }
    ++fluid_steps;
    t += dt;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (!active[f]) continue;
      byte_progress[f] += rates_[f] * dt;
      const double left = static_cast<double>(remaining[f]) - byte_progress[f];
      if (left <= rates_[f] * (batch_window - dt) + 1e-9) {
        active[f] = 0;
        --active_count;
        finish[f] = t;
        if (fast) fast_solver_.deactivate(f);
        if (tele) net_.flow_done(f, rates_[f]);
      }
    }
  }

  // Per-message wire latency + software overhead; the phase ends when the
  // slowest message has fully landed (failed flows end at their bounded
  // give-up time).
  double elapsed = 0.0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    const double total =
        failed[f] ? finish[f]
                  : finish[f] + penalty[f] + params_.mpi_overhead +
                        hops[f] * params_.hop_latency;
    elapsed = std::max(elapsed, total);
  }

  // Phase statistics: per-link bytes moved vs what the busiest link could
  // have moved during the transfer window, route-length average, and the
  // most congested links of the phase.
  stats_ = PhaseStats{};
  stats_.elapsed = elapsed;
  stats_.flows = num_flows;
  for (std::size_t f = 0; f < num_flows; ++f) {
    stats_.failed += failed[f];
    stats_.retried += retried[f];
    stats_.retry_added_latency += penalty[f];
  }
  stats_.completed = num_flows - stats_.failed;
  if (t > 0.0) {
    link_bytes_.assign(routes_.num_links(), 0.0);
    double peak = 0.0;
    for (std::size_t f = 0; f < num_flows; ++f) {
      for (const LinkId l : paths_[f]) {
        link_bytes_[l] += static_cast<double>(remaining[f]);
        peak = std::max(peak, link_bytes_[l]);
      }
    }
    const double capacity = params_.link_bandwidth * t;
    stats_.max_link_utilization = peak / capacity;
    double used_bytes = 0.0;
    std::size_t used_links = 0;
    for (std::size_t l = 0; l < link_bytes_.size(); ++l) {
      const double bytes_on_link = link_bytes_[l];
      if (bytes_on_link <= 0.0) continue;
      used_bytes += bytes_on_link;
      ++used_links;
      // Keep the kTopLinks busiest links, most loaded first.
      const double util = bytes_on_link / capacity;
      auto& top = stats_.top_links;
      auto pos = std::find_if(top.begin(), top.end(),
                              [&](const PhaseStats::LinkLoad& entry) {
                                return util > entry.utilization;
                              });
      if (pos != top.end() || top.size() < PhaseStats::kTopLinks) {
        top.insert(pos, {static_cast<LinkId>(l), util});
        if (top.size() > PhaseStats::kTopLinks) top.pop_back();
      }
    }
    if (used_links > 0) {
      stats_.mean_link_utilization =
          used_bytes / (static_cast<double>(used_links) * capacity);
    }
  }
  double hop_sum = 0.0;
  for (const std::uint32_t h : hops) hop_sum += h;
  stats_.mean_hops = hop_sum / static_cast<double>(num_flows);

  if (tele) {
    NetPhaseCollector::PhaseEnd end;
    end.transfer_end_s = t;
    end.elapsed_s = elapsed;
    end.steps = fluid_steps;
    end.paths = &paths_;
    end.bytes = &remaining;
    end.finish = &finish;
    end.penalty = &penalty;
    end.hops = &hops;
    end.failed = &failed;
    end.retried = &retried;
    end.src = &flow_src;
    end.dst = &flow_dst;
    end.params = &params_;
    end.num_links = routes_.num_links();
    net_.end_phase(end);
  }

  instruments.phases.inc();
  instruments.flows.add(num_flows);
  if (span.active()) {
    span.arg("flows", static_cast<std::uint64_t>(num_flows));
    span.arg("sim_elapsed_s", elapsed);
    span.arg("max_link_util", stats_.max_link_utilization);
    span.arg("mean_link_util", stats_.mean_link_utilization);
    span.arg("mean_hops", stats_.mean_hops);
    if (stats_.retried || stats_.failed) {
      span.arg("flows_retried", stats_.retried);
      span.arg("flows_failed", stats_.failed);
      span.arg("retry_added_latency_s", stats_.retry_added_latency);
    }
    std::string top = "[";
    for (std::size_t i = 0; i < stats_.top_links.size(); ++i) {
      if (i) top += ',';
      top += '[' + std::to_string(stats_.top_links[i].link) + ',' +
             std::to_string(stats_.top_links[i].utilization) + ']';
    }
    top += ']';
    span.arg_json("top_links", std::move(top));
  }

  clock_ += elapsed;
  return elapsed;
}

// ---- collectives -------------------------------------------------------

double Machine::barrier() {
  // Zero-byte recursive-doubling dissemination.
  double elapsed = 0.0;
  for (std::uint32_t stride = 1; stride < num_ranks_; stride <<= 1) {
    std::vector<Message> round;
    round.reserve(num_ranks_);
    for (Rank r = 0; r < num_ranks_; ++r) {
      round.push_back({r, (r + stride) % num_ranks_, 0});
    }
    elapsed += phase(round);
  }
  return elapsed;
}

double Machine::bcast(std::uint64_t bytes, Rank root) {
  // Binomial tree rooted at `root` (rank math done relative to the root).
  double elapsed = 0.0;
  for (std::uint32_t stride = 1; stride < num_ranks_; stride <<= 1) {
    std::vector<Message> round;
    for (Rank rel = 0; rel < stride && rel + stride < num_ranks_; ++rel) {
      const Rank src = (root + rel) % num_ranks_;
      const Rank dst = (root + rel + stride) % num_ranks_;
      round.push_back({src, dst, bytes});
    }
    elapsed += phase(round);
  }
  return elapsed;
}

double Machine::reduce(std::uint64_t bytes, Rank root) {
  // Binomial tree, mirrored: same phases as bcast in reverse order; the
  // fluid model is direction-symmetric so the elapsed time matches a
  // proper reduction schedule.
  double elapsed = 0.0;
  std::uint32_t top = std::bit_ceil(num_ranks_);
  for (std::uint32_t stride = top >> 1; stride >= 1; stride >>= 1) {
    std::vector<Message> round;
    for (Rank rel = 0; rel < stride && rel + stride < num_ranks_; ++rel) {
      const Rank src = (root + rel + stride) % num_ranks_;
      const Rank dst = (root + rel) % num_ranks_;
      round.push_back({src, dst, bytes});
    }
    elapsed += phase(round);
    if (stride == 1) break;
  }
  return elapsed;
}

double Machine::allreduce(std::uint64_t bytes) {
  if (std::has_single_bit(num_ranks_)) {
    // Recursive doubling: log2(n) rounds of pairwise exchanges.
    double elapsed = 0.0;
    for (std::uint32_t stride = 1; stride < num_ranks_; stride <<= 1) {
      std::vector<Message> round;
      round.reserve(num_ranks_);
      for (Rank r = 0; r < num_ranks_; ++r) round.push_back({r, r ^ stride, bytes});
      elapsed += phase(round);
    }
    return elapsed;
  }
  return reduce(bytes, 0) + bcast(bytes, 0);
}

double Machine::allgather(std::uint64_t bytes_per_rank) {
  if (std::has_single_bit(num_ranks_)) {
    // Recursive doubling: exchanged block doubles every round.
    double elapsed = 0.0;
    std::uint64_t block = bytes_per_rank;
    for (std::uint32_t stride = 1; stride < num_ranks_; stride <<= 1) {
      std::vector<Message> round;
      round.reserve(num_ranks_);
      for (Rank r = 0; r < num_ranks_; ++r) round.push_back({r, r ^ stride, block});
      elapsed += phase(round);
      block *= 2;
    }
    return elapsed;
  }
  // Ring allgather: n-1 rounds of neighbor forwarding.
  double elapsed = 0.0;
  for (std::uint32_t round_idx = 1; round_idx < num_ranks_; ++round_idx) {
    std::vector<Message> round;
    round.reserve(num_ranks_);
    for (Rank r = 0; r < num_ranks_; ++r) {
      round.push_back({r, (r + 1) % num_ranks_, bytes_per_rank});
    }
    elapsed += phase(round);
  }
  return elapsed;
}

double Machine::scatter(std::uint64_t bytes_per_rank, Rank root) {
  // Binomial tree, top stride first: each internal send carries the whole
  // payload of the receiving subtree (stride * bytes_per_rank, clipped to
  // the ranks that actually exist).
  double elapsed = 0.0;
  const std::uint32_t top = std::bit_ceil(num_ranks_);
  for (std::uint32_t stride = top >> 1; stride >= 1; stride >>= 1) {
    std::vector<Message> round;
    for (Rank rel = 0; rel < stride && rel + stride < num_ranks_; ++rel) {
      const std::uint32_t subtree =
          std::min(stride, num_ranks_ - (rel + stride));
      round.push_back({(root + rel) % num_ranks_,
                       (root + rel + stride) % num_ranks_,
                       bytes_per_rank * subtree});
    }
    elapsed += phase(round);
    if (stride == 1) break;
  }
  return elapsed;
}

double Machine::gather(std::uint64_t bytes_per_rank, Rank root) {
  // Mirror of scatter: subtree payloads converge up the binomial tree.
  double elapsed = 0.0;
  for (std::uint32_t stride = 1; stride < num_ranks_; stride <<= 1) {
    std::vector<Message> round;
    for (Rank rel = 0; rel < stride && rel + stride < num_ranks_; ++rel) {
      const std::uint32_t subtree =
          std::min(stride, num_ranks_ - (rel + stride));
      round.push_back({(root + rel + stride) % num_ranks_,
                       (root + rel) % num_ranks_, bytes_per_rank * subtree});
    }
    elapsed += phase(round);
  }
  return elapsed;
}

double Machine::reduce_scatter(std::uint64_t bytes_per_rank) {
  if (std::has_single_bit(num_ranks_)) {
    // Recursive halving: the exchanged block halves every round, starting
    // at half the full vector.
    double elapsed = 0.0;
    std::uint64_t block = bytes_per_rank * (num_ranks_ / 2);
    for (std::uint32_t stride = num_ranks_ / 2; stride >= 1; stride >>= 1) {
      std::vector<Message> round;
      round.reserve(num_ranks_);
      for (Rank r = 0; r < num_ranks_; ++r) round.push_back({r, r ^ stride, block});
      elapsed += phase(round);
      block /= 2;
      if (stride == 1) break;
    }
    return elapsed;
  }
  // Fallback: reduce to rank 0, then scatter the blocks.
  return reduce(bytes_per_rank * num_ranks_, 0) + scatter(bytes_per_rank, 0);
}

double Machine::ring_allreduce(std::uint64_t bytes_total) {
  // Bandwidth-optimal large-message allreduce: n-1 reduce-scatter steps
  // plus n-1 allgather steps, each forwarding one 1/n chunk to the ring
  // neighbor. Total bytes on the wire per rank: 2 (n-1)/n * bytes_total.
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, bytes_total / num_ranks_);
  double elapsed = 0.0;
  for (std::uint32_t step = 0; step + 1 < 2 * num_ranks_ - 1; ++step) {
    std::vector<Message> round;
    round.reserve(num_ranks_);
    for (Rank r = 0; r < num_ranks_; ++r) {
      round.push_back({r, (r + 1) % num_ranks_, chunk});
    }
    elapsed += phase(round);
  }
  return elapsed;
}

double Machine::alltoall(std::uint64_t bytes_per_pair) {
  return alltoallv([bytes_per_pair](Rank, Rank) { return bytes_per_pair; });
}

double Machine::alltoallv(const std::function<std::uint64_t(Rank, Rank)>& bytes) {
  // Pairwise exchange: n-1 rounds; XOR partners when n is a power of two
  // (perfect pairing), shifted partners otherwise.
  double elapsed = 0.0;
  const bool pow2 = std::has_single_bit(num_ranks_);
  for (std::uint32_t round_idx = 1; round_idx < num_ranks_; ++round_idx) {
    std::vector<Message> round;
    round.reserve(num_ranks_);
    for (Rank r = 0; r < num_ranks_; ++r) {
      const Rank partner =
          pow2 ? (r ^ round_idx) : (r + round_idx) % num_ranks_;
      const std::uint64_t size = bytes(r, partner);
      if (size > 0) round.push_back({r, partner, size});
    }
    elapsed += phase(round);
  }
  return elapsed;
}


}  // namespace orp

#include "sim/machine.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <string>

#include "common/require.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace orp {
namespace {

struct SimInstruments {
  obs::Counter& phases;
  obs::Counter& flows;
  obs::Histogram& solve_ns;

  static SimInstruments& get() {
    auto& registry = obs::Registry::global();
    static SimInstruments instance{registry.counter("sim.phases"),
                                   registry.counter("sim.flows"),
                                   registry.histogram("sim.phase.solve_ns")};
    return instance;
  }
};

}  // namespace

Machine::Machine(const HostSwitchGraph& graph, const SimParams& params,
                 std::vector<HostId> rank_to_host)
    : params_(params),
      routes_(graph),
      num_ranks_(graph.num_hosts()),
      rank_to_host_(std::move(rank_to_host)),
      solver_(routes_.num_links(), params.link_bandwidth) {
  if (rank_to_host_.empty()) {
    rank_to_host_.resize(num_ranks_);
    std::iota(rank_to_host_.begin(), rank_to_host_.end(), 0);
  }
  ORP_REQUIRE(rank_to_host_.size() == num_ranks_, "rank map size mismatch");
  std::vector<std::uint8_t> seen(num_ranks_, 0);
  for (const HostId h : rank_to_host_) {
    ORP_REQUIRE(h < num_ranks_ && !seen[h], "rank map must be a permutation of hosts");
    seen[h] = 1;
  }
}

std::uint32_t Machine::route_hops(Rank a, Rank b) const {
  ORP_REQUIRE(a < num_ranks_ && b < num_ranks_, "rank out of range");
  if (a == b) return 0;
  std::vector<LinkId> scratch;
  return routes_.append_host_path(rank_to_host_[a], rank_to_host_[b], scratch);
}

double Machine::compute(double flops_per_rank) {
  ORP_REQUIRE(flops_per_rank >= 0, "negative flops");
  const double elapsed = flops_per_rank / (params_.host_gflops * 1e9);
  clock_ += elapsed;
  return elapsed;
}

double Machine::phase(const std::vector<Message>& messages) {
  if (messages.empty()) return 0.0;

  SimInstruments& instruments = SimInstruments::get();
  obs::Span span("sim.phase", "sim");
  obs::ScopedTimer solve_timer(instruments.solve_ns);

  // Build flow paths (self-messages are memcpy, modeled as free).
  ++phase_counter_;
  paths_.clear();
  std::vector<std::uint64_t> remaining;
  std::vector<std::uint32_t> hops;
  for (const Message& m : messages) {
    ORP_REQUIRE(m.src < num_ranks_ && m.dst < num_ranks_, "rank out of range");
    if (m.src == m.dst) continue;
    paths_.emplace_back();
    if (params_.routing == RoutingPolicy::kEcmp) {
      // Per-flow key: stable for a (src, dst) within a phase, varied across
      // phases so repeated rounds spread differently.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(m.src) << 40) ^
          (static_cast<std::uint64_t>(m.dst) << 16) ^ phase_counter_;
      hops.push_back(routes_.append_host_path_ecmp(
          rank_to_host_[m.src], rank_to_host_[m.dst], key, paths_.back()));
    } else {
      hops.push_back(routes_.append_host_path(rank_to_host_[m.src],
                                              rank_to_host_[m.dst], paths_.back()));
    }
    remaining.push_back(m.bytes);
  }
  if (paths_.empty()) return 0.0;

  const std::size_t num_flows = paths_.size();
  std::vector<std::uint8_t> active(num_flows, 1);
  std::vector<double> finish(num_flows, 0.0);
  std::size_t active_count = num_flows;

  // Zero-byte messages finish immediately (latency-only).
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (remaining[f] == 0) {
      active[f] = 0;
      --active_count;
    }
  }

  // Fluid simulation: advance to the next flow completion, re-solving the
  // fair allocation whenever the active set changes. Completions within a
  // relative epsilon batch together, which keeps homogeneous collectives at
  // one solve per phase.
  double t = 0.0;
  std::vector<double> byte_progress(num_flows, 0.0);
  while (active_count > 0) {
    solver_.solve(paths_, active, rates_);
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (!active[f]) continue;
      ORP_ASSERT(rates_[f] > 0.0);
      dt = std::min(dt, (static_cast<double>(remaining[f]) - byte_progress[f]) / rates_[f]);
    }
    const double batch_window = dt * (1.0 + 1e-9) + 1e-15;
    t += dt;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (!active[f]) continue;
      byte_progress[f] += rates_[f] * dt;
      const double left = static_cast<double>(remaining[f]) - byte_progress[f];
      if (left <= rates_[f] * (batch_window - dt) + 1e-9) {
        active[f] = 0;
        --active_count;
        finish[f] = t;
      }
    }
  }

  // Per-message wire latency + software overhead; the phase ends when the
  // slowest message has fully landed.
  double elapsed = 0.0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    const double total =
        finish[f] + params_.mpi_overhead + hops[f] * params_.hop_latency;
    elapsed = std::max(elapsed, total);
  }

  // Phase statistics: per-link bytes moved vs what the busiest link could
  // have moved during the transfer window, route-length average, and the
  // most congested links of the phase.
  stats_ = PhaseStats{};
  stats_.elapsed = elapsed;
  stats_.flows = num_flows;
  if (t > 0.0) {
    link_bytes_.assign(routes_.num_links(), 0.0);
    double peak = 0.0;
    for (std::size_t f = 0; f < num_flows; ++f) {
      for (const LinkId l : paths_[f]) {
        link_bytes_[l] += static_cast<double>(remaining[f]);
        peak = std::max(peak, link_bytes_[l]);
      }
    }
    const double capacity = params_.link_bandwidth * t;
    stats_.max_link_utilization = peak / capacity;
    double used_bytes = 0.0;
    std::size_t used_links = 0;
    for (std::size_t l = 0; l < link_bytes_.size(); ++l) {
      const double bytes_on_link = link_bytes_[l];
      if (bytes_on_link <= 0.0) continue;
      used_bytes += bytes_on_link;
      ++used_links;
      // Keep the kTopLinks busiest links, most loaded first.
      const double util = bytes_on_link / capacity;
      auto& top = stats_.top_links;
      auto pos = std::find_if(top.begin(), top.end(),
                              [&](const PhaseStats::LinkLoad& entry) {
                                return util > entry.utilization;
                              });
      if (pos != top.end() || top.size() < PhaseStats::kTopLinks) {
        top.insert(pos, {static_cast<LinkId>(l), util});
        if (top.size() > PhaseStats::kTopLinks) top.pop_back();
      }
    }
    if (used_links > 0) {
      stats_.mean_link_utilization =
          used_bytes / (static_cast<double>(used_links) * capacity);
    }
  }
  double hop_sum = 0.0;
  for (const std::uint32_t h : hops) hop_sum += h;
  stats_.mean_hops = hop_sum / static_cast<double>(num_flows);

  instruments.phases.inc();
  instruments.flows.add(num_flows);
  if (span.active()) {
    span.arg("flows", static_cast<std::uint64_t>(num_flows));
    span.arg("sim_elapsed_s", elapsed);
    span.arg("max_link_util", stats_.max_link_utilization);
    span.arg("mean_link_util", stats_.mean_link_utilization);
    span.arg("mean_hops", stats_.mean_hops);
    std::string top = "[";
    for (std::size_t i = 0; i < stats_.top_links.size(); ++i) {
      if (i) top += ',';
      top += '[' + std::to_string(stats_.top_links[i].link) + ',' +
             std::to_string(stats_.top_links[i].utilization) + ']';
    }
    top += ']';
    span.arg_json("top_links", std::move(top));
  }

  clock_ += elapsed;
  return elapsed;
}

// ---- collectives -------------------------------------------------------

double Machine::barrier() {
  // Zero-byte recursive-doubling dissemination.
  double elapsed = 0.0;
  for (std::uint32_t stride = 1; stride < num_ranks_; stride <<= 1) {
    std::vector<Message> round;
    round.reserve(num_ranks_);
    for (Rank r = 0; r < num_ranks_; ++r) {
      round.push_back({r, (r + stride) % num_ranks_, 0});
    }
    elapsed += phase(round);
  }
  return elapsed;
}

double Machine::bcast(std::uint64_t bytes, Rank root) {
  // Binomial tree rooted at `root` (rank math done relative to the root).
  double elapsed = 0.0;
  for (std::uint32_t stride = 1; stride < num_ranks_; stride <<= 1) {
    std::vector<Message> round;
    for (Rank rel = 0; rel < stride && rel + stride < num_ranks_; ++rel) {
      const Rank src = (root + rel) % num_ranks_;
      const Rank dst = (root + rel + stride) % num_ranks_;
      round.push_back({src, dst, bytes});
    }
    elapsed += phase(round);
  }
  return elapsed;
}

double Machine::reduce(std::uint64_t bytes, Rank root) {
  // Binomial tree, mirrored: same phases as bcast in reverse order; the
  // fluid model is direction-symmetric so the elapsed time matches a
  // proper reduction schedule.
  double elapsed = 0.0;
  std::uint32_t top = std::bit_ceil(num_ranks_);
  for (std::uint32_t stride = top >> 1; stride >= 1; stride >>= 1) {
    std::vector<Message> round;
    for (Rank rel = 0; rel < stride && rel + stride < num_ranks_; ++rel) {
      const Rank src = (root + rel + stride) % num_ranks_;
      const Rank dst = (root + rel) % num_ranks_;
      round.push_back({src, dst, bytes});
    }
    elapsed += phase(round);
    if (stride == 1) break;
  }
  return elapsed;
}

double Machine::allreduce(std::uint64_t bytes) {
  if (std::has_single_bit(num_ranks_)) {
    // Recursive doubling: log2(n) rounds of pairwise exchanges.
    double elapsed = 0.0;
    for (std::uint32_t stride = 1; stride < num_ranks_; stride <<= 1) {
      std::vector<Message> round;
      round.reserve(num_ranks_);
      for (Rank r = 0; r < num_ranks_; ++r) round.push_back({r, r ^ stride, bytes});
      elapsed += phase(round);
    }
    return elapsed;
  }
  return reduce(bytes, 0) + bcast(bytes, 0);
}

double Machine::allgather(std::uint64_t bytes_per_rank) {
  if (std::has_single_bit(num_ranks_)) {
    // Recursive doubling: exchanged block doubles every round.
    double elapsed = 0.0;
    std::uint64_t block = bytes_per_rank;
    for (std::uint32_t stride = 1; stride < num_ranks_; stride <<= 1) {
      std::vector<Message> round;
      round.reserve(num_ranks_);
      for (Rank r = 0; r < num_ranks_; ++r) round.push_back({r, r ^ stride, block});
      elapsed += phase(round);
      block *= 2;
    }
    return elapsed;
  }
  // Ring allgather: n-1 rounds of neighbor forwarding.
  double elapsed = 0.0;
  for (std::uint32_t round_idx = 1; round_idx < num_ranks_; ++round_idx) {
    std::vector<Message> round;
    round.reserve(num_ranks_);
    for (Rank r = 0; r < num_ranks_; ++r) {
      round.push_back({r, (r + 1) % num_ranks_, bytes_per_rank});
    }
    elapsed += phase(round);
  }
  return elapsed;
}

double Machine::scatter(std::uint64_t bytes_per_rank, Rank root) {
  // Binomial tree, top stride first: each internal send carries the whole
  // payload of the receiving subtree (stride * bytes_per_rank, clipped to
  // the ranks that actually exist).
  double elapsed = 0.0;
  const std::uint32_t top = std::bit_ceil(num_ranks_);
  for (std::uint32_t stride = top >> 1; stride >= 1; stride >>= 1) {
    std::vector<Message> round;
    for (Rank rel = 0; rel < stride && rel + stride < num_ranks_; ++rel) {
      const std::uint32_t subtree =
          std::min(stride, num_ranks_ - (rel + stride));
      round.push_back({(root + rel) % num_ranks_,
                       (root + rel + stride) % num_ranks_,
                       bytes_per_rank * subtree});
    }
    elapsed += phase(round);
    if (stride == 1) break;
  }
  return elapsed;
}

double Machine::gather(std::uint64_t bytes_per_rank, Rank root) {
  // Mirror of scatter: subtree payloads converge up the binomial tree.
  double elapsed = 0.0;
  for (std::uint32_t stride = 1; stride < num_ranks_; stride <<= 1) {
    std::vector<Message> round;
    for (Rank rel = 0; rel < stride && rel + stride < num_ranks_; ++rel) {
      const std::uint32_t subtree =
          std::min(stride, num_ranks_ - (rel + stride));
      round.push_back({(root + rel + stride) % num_ranks_,
                       (root + rel) % num_ranks_, bytes_per_rank * subtree});
    }
    elapsed += phase(round);
  }
  return elapsed;
}

double Machine::reduce_scatter(std::uint64_t bytes_per_rank) {
  if (std::has_single_bit(num_ranks_)) {
    // Recursive halving: the exchanged block halves every round, starting
    // at half the full vector.
    double elapsed = 0.0;
    std::uint64_t block = bytes_per_rank * (num_ranks_ / 2);
    for (std::uint32_t stride = num_ranks_ / 2; stride >= 1; stride >>= 1) {
      std::vector<Message> round;
      round.reserve(num_ranks_);
      for (Rank r = 0; r < num_ranks_; ++r) round.push_back({r, r ^ stride, block});
      elapsed += phase(round);
      block /= 2;
      if (stride == 1) break;
    }
    return elapsed;
  }
  // Fallback: reduce to rank 0, then scatter the blocks.
  return reduce(bytes_per_rank * num_ranks_, 0) + scatter(bytes_per_rank, 0);
}

double Machine::ring_allreduce(std::uint64_t bytes_total) {
  // Bandwidth-optimal large-message allreduce: n-1 reduce-scatter steps
  // plus n-1 allgather steps, each forwarding one 1/n chunk to the ring
  // neighbor. Total bytes on the wire per rank: 2 (n-1)/n * bytes_total.
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, bytes_total / num_ranks_);
  double elapsed = 0.0;
  for (std::uint32_t step = 0; step + 1 < 2 * num_ranks_ - 1; ++step) {
    std::vector<Message> round;
    round.reserve(num_ranks_);
    for (Rank r = 0; r < num_ranks_; ++r) {
      round.push_back({r, (r + 1) % num_ranks_, chunk});
    }
    elapsed += phase(round);
  }
  return elapsed;
}

double Machine::alltoall(std::uint64_t bytes_per_pair) {
  return alltoallv([bytes_per_pair](Rank, Rank) { return bytes_per_pair; });
}

double Machine::alltoallv(const std::function<std::uint64_t(Rank, Rank)>& bytes) {
  // Pairwise exchange: n-1 rounds; XOR partners when n is a power of two
  // (perfect pairing), shifted partners otherwise.
  double elapsed = 0.0;
  const bool pow2 = std::has_single_bit(num_ranks_);
  for (std::uint32_t round_idx = 1; round_idx < num_ranks_; ++round_idx) {
    std::vector<Message> round;
    round.reserve(num_ranks_);
    for (Rank r = 0; r < num_ranks_; ++r) {
      const Rank partner =
          pow2 ? (r ^ round_idx) : (r + round_idx) % num_ranks_;
      const std::uint64_t size = bytes(r, partner);
      if (size > 0) round.push_back({r, partner, size});
    }
    elapsed += phase(round);
  }
  return elapsed;
}


}  // namespace orp

#pragma once
// Deterministic shortest-path routing over a host-switch graph.
//
// Every cable is full duplex and modeled as two directed links. Link ids:
//   [0, n)        host h's up-link   (host -> its switch)
//   [n, 2n)       host h's down-link (switch -> host)
//   [2n, 2n+2E)   directed switch-switch links, laid out per source switch
// Routes are minimal and deterministic: among equal-length next hops the
// lowest switch id wins (topology-agnostic deterministic routing, as used
// for irregular networks in practice).

#include <cstdint>
#include <vector>

#include "hsg/host_switch_graph.hpp"

namespace orp {

using LinkId = std::uint32_t;

class RoutingTable {
 public:
  /// Precomputes next hops for all switch pairs (one BFS per switch).
  /// Requires every host attached. Disconnected (degraded) topologies are
  /// accepted: unreachable pairs are representable, the throwing append_*
  /// family rejects them at path-build time, and the try_* variants report
  /// them as "no route" instead.
  explicit RoutingTable(const HostSwitchGraph& g);

  std::uint32_t num_links() const noexcept { return num_links_; }
  std::uint32_t num_hosts() const noexcept { return n_; }

  /// Switch-level hop distance.
  std::uint32_t switch_distance(SwitchId s, SwitchId t) const {
    return dist_[static_cast<std::size_t>(s) * m_ + t];
  }

  /// Appends the directed link ids of the path from host `src` to host
  /// `dst` (up-link, switch links, down-link) to `path`. `src != dst`.
  /// Returns the number of links appended (= hop count of the route).
  std::uint32_t append_host_path(HostId src, HostId dst, std::vector<LinkId>& path) const;

  /// ECMP variant: at every switch the next hop is chosen among ALL
  /// equal-cost shortest next hops by hashing `flow_key` (deterministic
  /// per flow, spread across flows) — the standard per-flow ECMP model.
  /// Path length equals the deterministic route's length.
  std::uint32_t append_host_path_ecmp(HostId src, HostId dst, std::uint64_t flow_key,
                                      std::vector<LinkId>& path) const;

  /// Number of equal-cost shortest next hops from s toward t (0 if s == t
  /// or unreachable). Exposed for tests and diversity statistics.
  std::uint32_t equal_cost_next_hops(SwitchId s, SwitchId t) const;

  /// True when a route exists between the two hosts' switches. Unlike the
  /// append_* family this never throws on a degraded topology.
  bool hosts_connected(HostId src, HostId dst) const {
    ORP_ASSERT(src < n_ && dst < n_);
    const SwitchId s = host_switch_[src];
    const SwitchId t = host_switch_[dst];
    return dist_[static_cast<std::size_t>(s) * m_ + t] != kUnreachable;
  }

  /// Non-throwing variants for degraded topologies: append the route when
  /// one exists and return its hop count, or leave `path` untouched and
  /// return 0 when the hosts cannot reach each other.
  std::uint32_t try_append_host_path(HostId src, HostId dst,
                                     std::vector<LinkId>& path) const;
  std::uint32_t try_append_host_path_ecmp(HostId src, HostId dst,
                                          std::uint64_t flow_key,
                                          std::vector<LinkId>& path) const;

  /// Directed link id for the switch-switch hop a -> b (must be adjacent).
  LinkId switch_link(SwitchId a, SwitchId b) const;

  /// The deterministic route's switch sequence from s to t (inclusive of
  /// both endpoints); {s} when s == t. Throws when unreachable.
  std::vector<SwitchId> switch_path(SwitchId s, SwitchId t) const;

  LinkId host_uplink(HostId h) const { return h; }
  LinkId host_downlink(HostId h) const { return n_ + h; }

 private:
  std::uint32_t n_;
  std::uint32_t m_;
  std::uint32_t num_links_;
  std::vector<SwitchId> host_switch_;
  std::vector<std::uint32_t> dist_;      // m*m switch distances
  std::vector<SwitchId> next_hop_;       // m*m: next switch from s toward t
  std::vector<std::uint32_t> link_base_; // per-switch offset into directed links
  // Sorted adjacency per switch for O(log r) link lookup.
  std::vector<std::vector<SwitchId>> sorted_adj_;

  static constexpr std::uint32_t kUnreachable = 0xffffffffu;
};

}  // namespace orp

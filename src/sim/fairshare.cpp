#include "sim/fairshare.hpp"

#include <limits>

#include "common/require.hpp"

namespace orp {

namespace {
constexpr std::uint32_t kUnused = 0xffffffffu;
}

FairShareSolver::FairShareSolver(std::uint32_t num_links, double link_capacity)
    : capacity_(link_capacity), link_slot_(num_links, kUnused) {}

void FairShareSolver::solve(const std::vector<std::vector<LinkId>>& paths,
                            const std::vector<std::uint8_t>& active,
                            std::vector<double>& rates) {
  const std::size_t num_flows = paths.size();
  rates.assign(num_flows, 0.0);

  // Collect touched links and per-link unfixed flow counts.
  touched_.clear();
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (!active[f]) continue;
    for (const LinkId l : paths[f]) {
      if (link_slot_[l] == kUnused) {
        link_slot_[l] = static_cast<std::uint32_t>(touched_.size());
        touched_.push_back(l);
      }
    }
  }
  remaining_.assign(touched_.size(), capacity_);
  count_.assign(touched_.size(), 0);
  std::uint32_t unfixed = 0;
  std::vector<std::uint8_t> fixed(num_flows, 0);
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (!active[f]) continue;
    if (paths[f].empty()) {
      // Zero-link flow (same-switch endpoints): it can never cross a
      // saturated link, so progressive filling would never freeze it.
      // It contends with nothing; give it line rate and exclude it.
      fixed[f] = 1;
      rates[f] = capacity_;
      continue;
    }
    ++unfixed;
    for (const LinkId l : paths[f]) ++count_[link_slot_[l]];
  }

  double level = 0.0;  // current common fill rate
  while (unfixed > 0) {
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < touched_.size(); ++i) {
      if (count_[i] > 0) {
        delta = std::min(delta, remaining_[i] / count_[i]);
      }
    }
    ORP_ASSERT(delta < std::numeric_limits<double>::infinity());
    level += delta;
    for (std::size_t i = 0; i < touched_.size(); ++i) {
      if (count_[i] > 0) remaining_[i] -= delta * count_[i];
    }
    // Freeze flows crossing any saturated link.
    const double eps = capacity_ * 1e-12;
    std::uint32_t frozen_this_round = 0;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (!active[f] || fixed[f]) continue;
      bool saturated = false;
      for (const LinkId l : paths[f]) {
        if (remaining_[link_slot_[l]] <= eps) {
          saturated = true;
          break;
        }
      }
      if (!saturated) continue;
      fixed[f] = 1;
      rates[f] = level;
      ++frozen_this_round;
      for (const LinkId l : paths[f]) --count_[link_slot_[l]];
    }
    ORP_ASSERT(frozen_this_round > 0);  // progressive filling always freezes
    unfixed -= frozen_this_round;
  }

  for (const LinkId l : touched_) link_slot_[l] = kUnused;  // reset scratch
}

}  // namespace orp

#pragma once
// Network telemetry for the fluid simulator: NetFlow-style per-flow
// records, per-link utilization samples, and end-to-end latency
// attribution, emitted into the active JSONL trace (docs/telemetry.md).
//
// Collection is cheap by design: Machine::phase() hands the collector raw
// POD snapshots (no string formatting on the hot path), the collector
// caps volume with deterministic reservoir sampling, and the buffered
// records are serialized as Chrome-trace instant events ("cat":"net")
// only when the sink flushes. With no tracer active begin_phase() is one
// load and the phase pays nothing; with ORP_OBS_DISABLED everything in
// this header collapses to inline no-op stubs (mirroring obs/trace.hpp).
//
// Latency attribution (per flow, seconds; terms sum to `total_s` exactly
// by construction — queueing is defined as the remainder of the transfer
// time over ideal serialization):
//   serialization_s  bytes / link_bandwidth (wire time at full line rate)
//   queue_s          transfer time minus serialization (fair-share < line
//                    rate, i.e. congestion)
//   hop_s            hops * hop_latency (propagation / switching)
//   retry_s          summed fault-retry backoff; failed flows attribute
//                    their whole bounded give-up time here
//   overhead_s       per-message software (MPI) overhead

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/params.hpp"
#include "sim/routing.hpp"

namespace orp {

/// Sampling knobs, read once per phase. Defaults keep the n=256 r=12
/// all-to-all microbenchmark within a ~1% overhead budget (the CI gate).
struct NetTelemetryConfig {
  /// Master switch (ORP_NET_TELEMETRY=0 disables). Collection further
  /// requires an active JSONL tracer.
  bool enabled = true;
  /// Record every Nth flow (per machine, deterministic stride). 1 = all.
  std::uint32_t flow_sample = 1;
  /// Links kept per time bucket, most utilized first.
  std::uint32_t link_top_k = 8;
  /// Fluid steps per phase that additionally emit per-step link samples
  /// (step >= 0 in the record). 0 = phase-level buckets only (step -1),
  /// which is the cheap default; raise for step-resolution forensics.
  std::uint32_t link_steps = 0;
  /// Reservoir capacities: global caps on buffered records per process.
  std::uint32_t reservoir_flows = 4096;
  std::uint32_t reservoir_links = 16384;
  std::uint32_t reservoir_phases = 2048;
};

/// Config from ORP_NET_TELEMETRY / ORP_NET_FLOW_SAMPLE / ORP_NET_LINK_TOPK
/// / ORP_NET_LINK_STEPS / ORP_NET_RESERVOIR_{FLOWS,LINKS,PHASES}.
NetTelemetryConfig net_telemetry_from_env();

/// Process-wide override (CLI beats environment); pass the result of
/// net_telemetry_from_env() with fields adjusted. Not thread-safe against
/// concurrent phases — set it during startup.
void set_net_telemetry(const NetTelemetryConfig& config);

/// The active config (env-derived until set_net_telemetry overrides).
const NetTelemetryConfig& net_telemetry();

/// Applies a CLI spec on top of the active config: "" is a no-op, "off"
/// disables, otherwise comma-separated knobs ("flow_sample=4,link_steps=2,
/// link_top_k=8"). Returns false (config untouched) on a malformed spec.
bool apply_net_telemetry_spec(std::string_view spec);

/// One flow lifecycle, buffered raw and emitted as a "net.flow" instant.
struct NetFlowRecord {
  std::uint64_t phase = 0;  ///< global phase sequence number
  std::uint32_t src = 0;    ///< source host
  std::uint32_t dst = 0;    ///< destination host
  std::uint64_t bytes = 0;
  std::uint32_t hops = 0;   ///< route length (0 = no surviving route)
  std::uint32_t retries = 0;
  bool failed = false;
  double start_s = 0.0;  ///< absolute simulated injection time
  double total_s = 0.0;  ///< completion time (finish - start)
  double serialization_s = 0.0;
  double queue_s = 0.0;
  double hop_s = 0.0;
  double retry_s = 0.0;
  double overhead_s = 0.0;
  double rate_first_bps = 0.0;  ///< fair share after the first solve
  double rate_last_bps = 0.0;   ///< fair share when the flow finished
  double rate_mean_bps = 0.0;   ///< bytes / transfer time
};

/// One link in one time bucket, emitted as a "net.link" instant.
struct NetLinkSample {
  std::uint64_t phase = 0;
  std::int32_t step = -1;  ///< fluid step index; -1 = whole-phase bucket
  std::uint32_t link = 0;  ///< directed link id (phase-local numbering)
  double t0_s = 0.0, t1_s = 0.0;  ///< absolute bucket bounds
  double utilization = 0.0;       ///< allocated rate / line rate
  std::uint32_t flows = 0;        ///< active flows crossing the link
  double fair_bps = 0.0;          ///< minimum fair-share rate among them
};

/// One communication phase, emitted as a "net.phase" instant.
struct NetPhaseRecord {
  std::uint64_t phase = 0;
  std::uint32_t flows = 0;
  std::uint32_t completed = 0;
  std::uint32_t failed = 0;
  std::uint32_t retried = 0;
  std::uint32_t steps = 0;  ///< fluid segments the phase took
  double start_s = 0.0;
  double elapsed_s = 0.0;   ///< what phase() returned
  double transfer_s = 0.0;  ///< wire time (excludes per-message latency)
  double max_utilization = 0.0;
};

}  // namespace orp

#ifndef ORP_OBS_DISABLED

namespace orp {

/// Per-Machine collector. All methods are no-ops (one branch) until
/// begin_phase() sees an active tracer and an enabled config.
class NetPhaseCollector {
 public:
  /// Opens a phase at absolute simulated time `clock_s`. Returns true when
  /// collection is active for this phase (callers gate the other hooks on
  /// it; the result also reserves a global phase sequence number).
  bool begin_phase(double clock_s, std::size_t num_flows);

  /// Closes fluid segment `step` spanning absolute [t0_s, t1_s). Captures
  /// first-solve rates on step 0 and, for step < link_steps, per-step
  /// link samples. Call before deactivating the segment's finishers.
  void on_segment(std::uint32_t step, double t0_s, double t1_s,
                  const std::vector<std::vector<LinkId>>& paths,
                  const std::vector<std::uint8_t>& active,
                  const std::vector<double>& rates);

  /// Records flow f's final fair-share rate (at completion or failure).
  void flow_done(std::size_t f, double rate_bps);

  /// Everything end_phase() needs, borrowed from Machine::phase() scope.
  /// Times are phase-relative seconds (the collector re-anchors them).
  struct PhaseEnd {
    double transfer_end_s = 0.0;  ///< fluid time when the last byte moved
    double elapsed_s = 0.0;       ///< phase() return value
    std::uint32_t steps = 0;
    const std::vector<std::vector<LinkId>>* paths = nullptr;
    const std::vector<std::uint64_t>* bytes = nullptr;
    const std::vector<double>* finish = nullptr;   ///< phase-relative
    const std::vector<double>* penalty = nullptr;  ///< summed backoff
    const std::vector<std::uint32_t>* hops = nullptr;
    const std::vector<std::uint8_t>* failed = nullptr;
    const std::vector<std::uint8_t>* retried = nullptr;
    const std::vector<HostId>* src = nullptr;
    const std::vector<HostId>* dst = nullptr;
    const SimParams* params = nullptr;
    std::size_t num_links = 0;
  };

  /// Builds the flow/link/phase records and pushes them into the global
  /// reservoirs (serialized to the trace at sink flush).
  void end_phase(const PhaseEnd& end);

 private:
  bool active_ = false;
  NetTelemetryConfig cfg_;
  std::uint64_t phase_id_ = 0;
  double phase_start_s_ = 0.0;
  std::vector<double> rate_first_, rate_last_;
  std::vector<NetLinkSample> step_samples_;
  // Dense per-link scratch for one segment (sized on demand). One struct
  // per link rather than parallel arrays: the accumulation pass hits
  // links in random order, so keeping a link's three fields on one cache
  // line matters on the paper-scale incidence counts.
  struct LinkScratch {
    double sum = 0.0;   ///< rate sum (per-step) or byte sum (per-phase)
    double fair = 0.0;  ///< minimum crossing-flow rate
    std::uint32_t count = 0;
  };
  std::vector<LinkScratch> link_scratch_;
  std::vector<std::uint32_t> touched_;
};

namespace net_detail {
/// Test hook: drains the global reservoirs into the active tracer now
/// (normally done by the obs flush hook) and returns how many records
/// were emitted. Also clears the reservoirs.
std::size_t drain_to_tracer();
/// Test hook: clears buffered records without emitting.
void discard_buffered();
/// Test hook: discard_buffered() plus a phase-id counter reset, so two
/// identical runs inside one process produce byte-identical records.
void reset_for_tests();
}  // namespace net_detail

}  // namespace orp

#else  // ORP_OBS_DISABLED

namespace orp {

class NetPhaseCollector {
 public:
  bool begin_phase(double, std::size_t) { return false; }
  void on_segment(std::uint32_t, double, double,
                  const std::vector<std::vector<LinkId>>&,
                  const std::vector<std::uint8_t>&,
                  const std::vector<double>&) {}
  void flow_done(std::size_t, double) {}
  struct PhaseEnd {
    double transfer_end_s = 0.0;
    double elapsed_s = 0.0;
    std::uint32_t steps = 0;
    const std::vector<std::vector<LinkId>>* paths = nullptr;
    const std::vector<std::uint64_t>* bytes = nullptr;
    const std::vector<double>* finish = nullptr;
    const std::vector<double>* penalty = nullptr;
    const std::vector<std::uint32_t>* hops = nullptr;
    const std::vector<std::uint8_t>* failed = nullptr;
    const std::vector<std::uint8_t>* retried = nullptr;
    const std::vector<HostId>* src = nullptr;
    const std::vector<HostId>* dst = nullptr;
    const SimParams* params = nullptr;
    std::size_t num_links = 0;
  };
  void end_phase(const PhaseEnd&) {}
};

namespace net_detail {
inline std::size_t drain_to_tracer() { return 0; }
inline void discard_buffered() {}
inline void reset_for_tests() {}
}  // namespace net_detail

}  // namespace orp

#endif  // ORP_OBS_DISABLED

#include "sim/telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>

#include "common/cli.hpp"
#include "common/require.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"

namespace orp {
namespace {

NetTelemetryConfig& mutable_config() {
  static NetTelemetryConfig config = net_telemetry_from_env();
  return config;
}

std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
  return static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, env_int(name, fallback)));
}

}  // namespace

NetTelemetryConfig net_telemetry_from_env() {
  NetTelemetryConfig config;
  config.enabled = env_int("ORP_NET_TELEMETRY", 1) != 0;
  config.flow_sample =
      std::max(1u, env_u32("ORP_NET_FLOW_SAMPLE", config.flow_sample));
  config.link_top_k = env_u32("ORP_NET_LINK_TOPK", config.link_top_k);
  config.link_steps = env_u32("ORP_NET_LINK_STEPS", config.link_steps);
  config.reservoir_flows =
      env_u32("ORP_NET_RESERVOIR_FLOWS", config.reservoir_flows);
  config.reservoir_links =
      env_u32("ORP_NET_RESERVOIR_LINKS", config.reservoir_links);
  config.reservoir_phases =
      env_u32("ORP_NET_RESERVOIR_PHASES", config.reservoir_phases);
  return config;
}

void set_net_telemetry(const NetTelemetryConfig& config) {
  mutable_config() = config;
}

const NetTelemetryConfig& net_telemetry() { return mutable_config(); }

bool apply_net_telemetry_spec(std::string_view spec) {
  if (spec.empty()) return true;
  NetTelemetryConfig config = net_telemetry();
  if (spec == "off") {
    config.enabled = false;
    set_net_telemetry(config);
    return true;
  }
  if (spec == "on" || spec == "default") {
    config.enabled = true;
    set_net_telemetry(config);
    return true;
  }
  // Comma-separated knob=value pairs; every knob must parse.
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = pair.substr(0, eq);
    std::uint32_t value = 0;
    try {
      std::size_t used = 0;
      const std::string digits(pair.substr(eq + 1));
      const unsigned long parsed = std::stoul(digits, &used);
      if (used != digits.size()) return false;
      value = static_cast<std::uint32_t>(parsed);
    } catch (const std::exception&) {
      return false;
    }
    if (key == "flow_sample") config.flow_sample = std::max(1u, value);
    else if (key == "link_top_k") config.link_top_k = value;
    else if (key == "link_steps") config.link_steps = value;
    else if (key == "reservoir_flows") config.reservoir_flows = value;
    else if (key == "reservoir_links") config.reservoir_links = value;
    else if (key == "reservoir_phases") config.reservoir_phases = value;
    else return false;
  }
  set_net_telemetry(config);
  return true;
}

}  // namespace orp

#ifndef ORP_OBS_DISABLED

namespace orp {
namespace {

/// splitmix64: deterministic stream for reservoir replacement decisions
/// (no std::random — identical traces for identical runs, by index).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Algorithm-R reservoir with a deterministic replacement stream. Keeps a
/// uniform sample of everything offered once `capacity` is exceeded.
template <typename T>
class Reservoir {
 public:
  static constexpr std::size_t kReject = ~std::size_t{0};

  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  /// Admission decision for the next offered record without materializing
  /// it: counts the record as seen and returns the slot it would occupy,
  /// or kReject. The decision depends only on the record's ordinal, so
  /// callers can skip building records the reservoir would drop anyway.
  std::size_t admit() {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.emplace_back();
      return items_.size() - 1;
    }
    if (capacity_ == 0) return kReject;
    const std::uint64_t j = splitmix64(seen_) % seen_;
    return j < capacity_ ? static_cast<std::size_t>(j) : kReject;
  }
  void offer(T record) {
    const std::size_t slot = admit();
    if (slot != kReject) items_[slot] = std::move(record);
  }
  std::uint64_t seen() const { return seen_; }
  std::vector<T>& items() { return items_; }
  void clear() {
    items_.clear();
    seen_ = 0;
  }

 private:
  std::size_t capacity_ = 0;
  std::uint64_t seen_ = 0;
  std::vector<T> items_;
};

/// %.12g: round-trips every telemetry value (utilizations near 1e-9,
/// rates near 5e9) without the fixed-decimal truncation of format_double.
std::string num(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.12g", value);
  return buffer;
}

std::string num(std::uint64_t value) { return std::to_string(value); }
std::string num(std::int64_t value) { return std::to_string(value); }

/// Process-global record store: phases from every Machine accumulate here
/// and drain into the tracer when the obs sink flushes (the hook runs
/// before the trace writer stops, so the instants land ahead of the
/// metric trailer).
class NetStore {
 public:
  static NetStore& global() {
    static NetStore* instance = new NetStore();  // leaked: used from atexit
    return *instance;
  }

  std::uint64_t open_phase(const NetTelemetryConfig& config) {
    std::lock_guard lock(mutex_);
    flows_.set_capacity(config.reservoir_flows);
    links_.set_capacity(config.reservoir_links);
    phases_.set_capacity(config.reservoir_phases);
    return next_phase_++;
  }

  /// Pushes one phase's records. Flow records are admitted by ordinal
  /// first and only the accepted ones are built, via `build(i)` for the
  /// i-th sampled flow of the phase — at reservoir caps the vast majority
  /// of offers are rejected, so skipping construction for them keeps the
  /// traced hot path near the untraced one (the CI 1% overhead gate).
  /// Runs under the store lock so a concurrent drain can never observe a
  /// half-admitted batch.
  template <typename BuildFlow>
  void push(std::size_t flow_count, BuildFlow&& build,
            std::vector<NetLinkSample>& links, const NetPhaseRecord& phase) {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < flow_count; ++i) {
      const std::size_t slot = flows_.admit();
      if (slot != Reservoir<NetFlowRecord>::kReject) {
        flows_.items()[slot] = build(i);
      }
    }
    for (NetLinkSample& l : links) links_.offer(std::move(l));
    phases_.offer(phase);
  }

  std::size_t drain_to_tracer() {
    std::lock_guard lock(mutex_);
    obs::Tracer& tracer = obs::Tracer::global();
    if (!tracer.enabled()) {
      clear_locked();
      return 0;
    }
    // Deterministic emission order regardless of reservoir churn.
    auto& phases = phases_.items();
    std::sort(phases.begin(), phases.end(),
              [](const NetPhaseRecord& a, const NetPhaseRecord& b) {
                return a.phase < b.phase;
              });
    auto& flows = flows_.items();
    std::sort(flows.begin(), flows.end(),
              [](const NetFlowRecord& a, const NetFlowRecord& b) {
                if (a.phase != b.phase) return a.phase < b.phase;
                if (a.src != b.src) return a.src < b.src;
                return a.dst < b.dst;
              });
    auto& links = links_.items();
    std::sort(links.begin(), links.end(),
              [](const NetLinkSample& a, const NetLinkSample& b) {
                if (a.phase != b.phase) return a.phase < b.phase;
                if (a.step != b.step) return a.step < b.step;
                return a.link < b.link;
              });

    const std::uint64_t ts = tracer.now_ns();
    const std::uint32_t tid = obs::Tracer::thread_id();
    auto instant = [&](const char* name) {
      obs::TraceEvent event;
      event.name = name;
      event.category = "net";
      event.phase = obs::TraceEvent::Phase::kInstant;
      event.ts_ns = ts;
      event.tid = tid;
      return event;
    };

    std::size_t emitted = 0;
    for (const NetPhaseRecord& p : phases) {
      obs::TraceEvent e = instant("net.phase");
      e.args.emplace_back("phase", num(p.phase));
      e.args.emplace_back("flows", num(std::uint64_t{p.flows}));
      e.args.emplace_back("completed", num(std::uint64_t{p.completed}));
      e.args.emplace_back("failed", num(std::uint64_t{p.failed}));
      e.args.emplace_back("retried", num(std::uint64_t{p.retried}));
      e.args.emplace_back("steps", num(std::uint64_t{p.steps}));
      e.args.emplace_back("start_s", num(p.start_s));
      e.args.emplace_back("elapsed_s", num(p.elapsed_s));
      e.args.emplace_back("transfer_s", num(p.transfer_s));
      e.args.emplace_back("max_util", num(p.max_utilization));
      tracer.emit(std::move(e));
      ++emitted;
    }
    for (const NetFlowRecord& f : flows) {
      obs::TraceEvent e = instant("net.flow");
      e.args.emplace_back("phase", num(f.phase));
      e.args.emplace_back("src", num(std::uint64_t{f.src}));
      e.args.emplace_back("dst", num(std::uint64_t{f.dst}));
      e.args.emplace_back("bytes", num(f.bytes));
      e.args.emplace_back("hops", num(std::uint64_t{f.hops}));
      e.args.emplace_back("retries", num(std::uint64_t{f.retries}));
      e.args.emplace_back("status", f.failed ? "\"failed\"" : "\"ok\"");
      e.args.emplace_back("start_s", num(f.start_s));
      e.args.emplace_back("finish_s", num(f.start_s + f.total_s));
      e.args.emplace_back("total_s", num(f.total_s));
      e.args.emplace_back("ser_s", num(f.serialization_s));
      e.args.emplace_back("queue_s", num(f.queue_s));
      e.args.emplace_back("hop_s", num(f.hop_s));
      e.args.emplace_back("retry_s", num(f.retry_s));
      e.args.emplace_back("ovh_s", num(f.overhead_s));
      e.args.emplace_back("rate_first_bps", num(f.rate_first_bps));
      e.args.emplace_back("rate_last_bps", num(f.rate_last_bps));
      e.args.emplace_back("rate_mean_bps", num(f.rate_mean_bps));
      tracer.emit(std::move(e));
      ++emitted;
    }
    for (const NetLinkSample& l : links) {
      obs::TraceEvent e = instant("net.link");
      e.args.emplace_back("phase", num(l.phase));
      e.args.emplace_back("step", num(std::int64_t{l.step}));
      e.args.emplace_back("link", num(std::uint64_t{l.link}));
      e.args.emplace_back("t0_s", num(l.t0_s));
      e.args.emplace_back("t1_s", num(l.t1_s));
      e.args.emplace_back("util", num(l.utilization));
      e.args.emplace_back("flows", num(std::uint64_t{l.flows}));
      e.args.emplace_back("fair_bps", num(l.fair_bps));
      tracer.emit(std::move(e));
      ++emitted;
    }
    // Coverage record: lets the report say when the reservoirs dropped
    // records instead of silently presenting a sample as the whole run.
    if (emitted > 0) {
      obs::TraceEvent e = instant("net.meta");
      e.args.emplace_back("flows_seen", num(flows_.seen()));
      e.args.emplace_back("flows_kept", num(std::uint64_t{flows.size()}));
      e.args.emplace_back("links_seen", num(links_.seen()));
      e.args.emplace_back("links_kept", num(std::uint64_t{links.size()}));
      e.args.emplace_back("phases_seen", num(phases_.seen()));
      e.args.emplace_back("phases_kept", num(std::uint64_t{phases.size()}));
      tracer.emit(std::move(e));
      ++emitted;
    }
    clear_locked();
    return emitted;
  }

  void discard() {
    std::lock_guard lock(mutex_);
    clear_locked();
  }

  void reset() {
    std::lock_guard lock(mutex_);
    clear_locked();
    next_phase_ = 0;
  }

 private:
  NetStore() {
    obs::register_flush_hook([] { NetStore::global().drain_to_tracer(); });
  }
  void clear_locked() {
    flows_.clear();
    links_.clear();
    phases_.clear();
  }

  std::mutex mutex_;
  std::uint64_t next_phase_ = 0;
  Reservoir<NetFlowRecord> flows_;
  Reservoir<NetLinkSample> links_;
  Reservoir<NetPhaseRecord> phases_;
};

}  // namespace

namespace net_detail {
std::size_t drain_to_tracer() { return NetStore::global().drain_to_tracer(); }
void discard_buffered() { NetStore::global().discard(); }
void reset_for_tests() { NetStore::global().reset(); }
}  // namespace net_detail

bool NetPhaseCollector::begin_phase(double clock_s, std::size_t num_flows) {
  active_ = obs::Tracer::global().enabled();
  if (!active_) return false;
  cfg_ = net_telemetry();
  if (!cfg_.enabled) {
    active_ = false;
    return false;
  }
  phase_id_ = NetStore::global().open_phase(cfg_);
  phase_start_s_ = clock_s;
  rate_first_.assign(num_flows, 0.0);
  rate_last_.assign(num_flows, 0.0);
  step_samples_.clear();
  return true;
}

void NetPhaseCollector::on_segment(std::uint32_t step, double t0_s, double t1_s,
                                   const std::vector<std::vector<LinkId>>& paths,
                                   const std::vector<std::uint8_t>& active,
                                   const std::vector<double>& rates) {
  if (!active_) return;
  if (step == 0) {
    for (std::size_t f = 0; f < paths.size(); ++f) {
      if (active[f]) rate_first_[f] = rates[f];
    }
  }
  if (step >= cfg_.link_steps || cfg_.link_top_k == 0) return;

  // Per-link accounting with a dense scratch + touched list (the
  // FairShareSolver pattern): one pass over (flow, link) incidences.
  std::size_t max_link = 0;
  for (std::size_t f = 0; f < paths.size(); ++f) {
    if (!active[f]) continue;
    for (const LinkId l : paths[f]) max_link = std::max<std::size_t>(max_link, l);
  }
  if (link_scratch_.size() <= max_link) {
    link_scratch_.resize(max_link + 1);
  }
  touched_.clear();
  for (std::size_t f = 0; f < paths.size(); ++f) {
    if (!active[f]) continue;
    for (const LinkId l : paths[f]) {
      LinkScratch& s = link_scratch_[l];
      if (s.count == 0) {
        touched_.push_back(l);
        s.sum = 0.0;
        s.fair = rates[f];
      }
      ++s.count;
      s.sum += rates[f];
      s.fair = std::min(s.fair, rates[f]);
    }
  }

  // Keep the top-K most utilized links of the segment (insertion select,
  // ties broken toward the lower link id for determinism). Once the
  // window is full, a candidate strictly below the current worst kept
  // utilization is rejected without touching the window.
  std::vector<NetLinkSample>& out = step_samples_;
  const std::size_t base = out.size();
  for (const std::uint32_t l : touched_) {
    LinkScratch& scratch = link_scratch_[l];
    const double util = scratch.sum;  // rate sum; scaled in end_phase
    const bool full = out.size() - base >= cfg_.link_top_k;
    if (full && util < out.back().utilization) {
      scratch.count = 0;
      continue;
    }
    NetLinkSample sample;
    sample.phase = phase_id_;
    sample.step = static_cast<std::int32_t>(step);
    sample.link = l;
    sample.t0_s = t0_s;
    sample.t1_s = t1_s;
    sample.utilization = util;
    sample.flows = scratch.count;
    sample.fair_bps = scratch.fair;
    auto begin = out.begin() + static_cast<std::ptrdiff_t>(base);
    auto pos = std::find_if(begin, out.end(), [&](const NetLinkSample& s) {
      return sample.utilization > s.utilization ||
             (sample.utilization == s.utilization && sample.link < s.link);
    });
    if (pos != out.end() || !full) {
      out.insert(pos, sample);
      if (out.size() - base > cfg_.link_top_k) out.pop_back();
    }
    scratch.count = 0;  // reset scratch as we go
  }
}

void NetPhaseCollector::flow_done(std::size_t f, double rate_bps) {
  if (!active_) return;
  rate_last_[f] = rate_bps;
}

void NetPhaseCollector::end_phase(const PhaseEnd& end) {
  if (!active_) return;
  active_ = false;
  const SimParams& params = *end.params;
  const double bandwidth = params.link_bandwidth;
  const std::size_t num_flows = end.paths->size();

  // Per-step samples carried rate sums; scale to line-rate fractions now.
  for (NetLinkSample& sample : step_samples_) {
    sample.utilization /= bandwidth;
  }

  NetPhaseRecord phase;
  phase.phase = phase_id_;
  phase.flows = static_cast<std::uint32_t>(num_flows);
  phase.steps = end.steps;
  phase.start_s = phase_start_s_;
  phase.elapsed_s = end.elapsed_s;
  phase.transfer_s = end.transfer_end_s;

  for (std::size_t f = 0; f < num_flows; ++f) {
    phase.failed += (*end.failed)[f] ? 1u : 0u;
    phase.retried += (*end.retried)[f] ? 1u : 0u;
  }
  phase.completed = phase.flows - phase.failed;

  // Flow records are built lazily inside NetStore::push, only for the
  // ordinals the reservoir admits; the i-th sampled flow of the phase is
  // flow i * flow_sample.
  const std::size_t sampled_flows =
      cfg_.flow_sample > 0 ? (num_flows + cfg_.flow_sample - 1) / cfg_.flow_sample
                           : 0;
  auto build_flow = [&](std::size_t i) {
    const std::size_t f = i * cfg_.flow_sample;
    const bool failed = (*end.failed)[f] != 0;
    const double penalty = (*end.penalty)[f];

    NetFlowRecord record;
    record.phase = phase_id_;
    record.src = (*end.src)[f];
    record.dst = (*end.dst)[f];
    record.bytes = (*end.bytes)[f];
    record.hops = (*end.hops)[f];
    record.failed = failed;
    record.retries = static_cast<std::uint32_t>(
        params.retry_backoff > 0.0 ? penalty / params.retry_backoff + 0.5
                                   : 0.0);
    record.start_s = phase_start_s_;
    const double finish = (*end.finish)[f];
    if (failed) {
      // The sender's whole bounded give-up time is fault cost.
      record.total_s = finish;
      record.retry_s = finish;
    } else {
      record.total_s = finish + penalty + params.mpi_overhead +
                       record.hops * params.hop_latency;
      record.serialization_s = static_cast<double>(record.bytes) / bandwidth;
      // Queueing is the transfer-time remainder, so the five terms sum to
      // total_s exactly (the acceptance bound in docs/telemetry.md).
      record.queue_s = finish - record.serialization_s;
      record.hop_s = record.hops * params.hop_latency;
      record.retry_s = penalty;
      record.overhead_s = params.mpi_overhead;
      if (finish > 0.0) {
        record.rate_mean_bps = static_cast<double>(record.bytes) / finish;
      }
    }
    record.rate_first_bps = rate_first_[f];
    record.rate_last_bps = rate_last_[f];
    return record;
  };

  // Whole-phase link buckets (step -1) from the per-link byte totals:
  // utilization over the transfer window, crossing-flow count, and the
  // slowest mean rate among the crossers. One extra (flow, link) pass,
  // paid only on traced runs.
  const double t = end.transfer_end_s;
  if (t > 0.0 && cfg_.link_top_k > 0) {
    std::size_t max_link = 0;
    for (std::size_t f = 0; f < num_flows; ++f) {
      for (const LinkId l : (*end.paths)[f]) {
        max_link = std::max<std::size_t>(max_link, l);
      }
    }
    if (link_scratch_.size() <= max_link) {
      link_scratch_.resize(max_link + 1);
    }
    touched_.clear();
    for (std::size_t f = 0; f < num_flows; ++f) {
      if ((*end.failed)[f]) continue;
      const double flow_bytes = static_cast<double>((*end.bytes)[f]);
      if (flow_bytes <= 0.0) continue;
      const double finish = (*end.finish)[f];
      const double mean_bps = finish > 0.0 ? flow_bytes / finish : 0.0;
      for (const LinkId l : (*end.paths)[f]) {
        LinkScratch& s = link_scratch_[l];
        if (s.count == 0) {
          touched_.push_back(l);
          s.sum = 0.0;
          s.fair = mean_bps;
        }
        ++s.count;
        s.sum += flow_bytes;
        s.fair = std::min(s.fair, mean_bps);
      }
    }
    const double capacity = bandwidth * t;
    const std::size_t base = step_samples_.size();
    for (const std::uint32_t l : touched_) {
      LinkScratch& scratch = link_scratch_[l];
      const double util = scratch.sum / capacity;
      phase.max_utilization = std::max(phase.max_utilization, util);
      const bool full = step_samples_.size() - base >= cfg_.link_top_k;
      if (full && util < step_samples_.back().utilization) {
        scratch.count = 0;
        continue;
      }
      NetLinkSample sample;
      sample.phase = phase_id_;
      sample.step = -1;
      sample.link = l;
      sample.t0_s = phase_start_s_;
      sample.t1_s = phase_start_s_ + t;
      sample.utilization = util;
      sample.flows = scratch.count;
      sample.fair_bps = scratch.fair;
      auto begin = step_samples_.begin() + static_cast<std::ptrdiff_t>(base);
      auto pos = std::find_if(begin, step_samples_.end(),
                              [&](const NetLinkSample& s) {
                                return sample.utilization > s.utilization ||
                                       (sample.utilization == s.utilization &&
                                        sample.link < s.link);
                              });
      if (pos != step_samples_.end() || !full) {
        step_samples_.insert(pos, sample);
        if (step_samples_.size() - base > cfg_.link_top_k) {
          step_samples_.pop_back();
        }
      }
      scratch.count = 0;
    }
  }

  NetStore::global().push(sampled_flows, build_flow, step_samples_, phase);
  step_samples_.clear();
}

}  // namespace orp

#endif  // ORP_OBS_DISABLED

#pragma once
// Deadlock freedom and up*/down* routing.
//
// Shortest-path routing on irregular topologies (like ORP solutions) can
// deadlock: packets holding one link while waiting for the next can form
// a cycle in the channel dependency graph (CDG, Dally & Seitz). The
// classic topology-agnostic fix the paper's related work cites ([14]) is
// up*/down* routing: orient every link by a BFS spanning tree (toward the
// root = "up") and allow only routes that make all their "up" hops before
// any "down" hop — the CDG is then provably acyclic.
//
// This module provides both sides: a CDG cycle checker for the
// shortest-path tables (shows the hazard is real on searched topologies)
// and an up*/down* router whose path-length inflation over shortest paths
// is the price of deadlock freedom (bench: abl_deadlock_free).

#include <cstdint>
#include <vector>

#include "hsg/host_switch_graph.hpp"
#include "sim/routing.hpp"

namespace orp {

/// True when the switch-to-switch routes of `routes` induce a cyclic
/// channel dependency graph (a deadlock hazard under wormhole/credit flow
/// control without virtual channels). Dependencies are collected from the
/// routing table's path of every ordered switch pair.
bool shortest_path_routing_has_cycle(const HostSwitchGraph& g,
                                     const RoutingTable& routes);

/// Up*/down* routing over a BFS spanning tree rooted at `root`.
class UpDownRouting {
 public:
  UpDownRouting(const HostSwitchGraph& g, SwitchId root = 0);

  /// Length (switch hops) of the shortest LEGAL route between switches;
  /// kUnreachable when none exists (never happens on connected graphs —
  /// root-relayed routes are always legal).
  std::uint32_t switch_distance(SwitchId a, SwitchId b) const {
    return dist_[static_cast<std::size_t>(a) * m_ + b];
  }
  static constexpr std::uint32_t kUnreachable = 0xffffffffu;

  /// Host-to-host average path length under up*/down* routing (the
  /// routed analogue of h-ASPL; >= the graph's h-ASPL).
  double routed_haspl(const HostSwitchGraph& g) const;

  /// Host-to-host diameter under up*/down* routing.
  std::uint32_t routed_diameter(const HostSwitchGraph& g) const;

  /// BFS level of a switch in the spanning tree (root = 0). Exposed for
  /// tests.
  std::uint32_t level(SwitchId s) const { return level_[s]; }

 private:
  std::uint32_t m_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> dist_;  // m*m legal-route distances
};

}  // namespace orp

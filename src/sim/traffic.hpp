#pragma once
// Synthetic traffic patterns — the classic interconnection-network
// evaluation workloads (Dally & Towles). The paper evaluates with NAS
// applications; these patterns isolate the same effects (average vs
// adversarial distance, bisection pressure) in their purest form and back
// the abl_traffic bench.

#include <cstdint>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "sim/machine.hpp"

namespace orp {

enum class TrafficPattern {
  kUniformRandom,   ///< each rank sends to one uniformly random partner
  kPermutation,     ///< a random permutation (every rank sends+receives once)
  kTranspose,       ///< (i, j) -> (j, i) on the square rank grid
  kBitComplement,   ///< rank -> ~rank (adversarial for most topologies)
  kBitReverse,      ///< rank -> bit-reversed rank
  kNeighborRing,    ///< rank -> rank + 1 (best case for locality)
  kShuffle,         ///< rank -> rotate-left-1 (perfect shuffle)
};

const char* traffic_pattern_name(TrafficPattern pattern);
std::vector<TrafficPattern> all_traffic_patterns();

/// Builds one message per rank following the pattern. Patterns with
/// structural requirements (kTranspose: square rank count; bit patterns:
/// power-of-two) throw when unmet. Self-messages are kept (they are free
/// in the engine), matching standard practice.
std::vector<Message> make_traffic(TrafficPattern pattern, std::uint32_t ranks,
                                  std::uint64_t bytes, Xoshiro256& rng);

struct TrafficResult {
  std::string pattern;
  double elapsed = 0.0;             ///< seconds for the phase
  double aggregate_bandwidth = 0.0; ///< delivered bytes/s across all flows
  double mean_hops = 0.0;           ///< average route length
  double max_link_utilization = 0.0;
};

/// Injects the pattern once and reports delivered bandwidth and route
/// statistics.
TrafficResult run_traffic(Machine& machine, TrafficPattern pattern,
                          std::uint64_t bytes, Xoshiro256& rng);

}  // namespace orp

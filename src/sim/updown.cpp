#include "sim/updown.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace orp {

bool shortest_path_routing_has_cycle(const HostSwitchGraph& g,
                                     const RoutingTable& routes) {
  const std::uint32_t m = g.num_switches();
  // Channel dependency edges between directed switch links: the route of
  // every switch pair contributes (l_i -> l_{i+1}) for consecutive hops.
  std::vector<std::pair<LinkId, LinkId>> deps;
  for (SwitchId s = 0; s < m; ++s) {
    for (SwitchId t = 0; t < m; ++t) {
      if (s == t) continue;
      const auto path = routes.switch_path(s, t);
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        deps.emplace_back(routes.switch_link(path[i], path[i + 1]),
                          routes.switch_link(path[i + 1], path[i + 2]));
      }
    }
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());

  // Remap the touched links to compact ids and DFS for a cycle.
  std::vector<LinkId> links;
  for (const auto& [a, b] : deps) {
    links.push_back(a);
    links.push_back(b);
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  auto id_of = [&](LinkId l) {
    return static_cast<std::uint32_t>(
        std::lower_bound(links.begin(), links.end(), l) - links.begin());
  };
  std::vector<std::vector<std::uint32_t>> adj(links.size());
  for (const auto& [a, b] : deps) adj[id_of(a)].push_back(id_of(b));

  // Iterative three-color DFS.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(links.size(), kWhite);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  for (std::uint32_t start = 0; start < links.size(); ++start) {
    if (color[start] != kWhite) continue;
    stack.clear();
    stack.emplace_back(start, 0);
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < adj[v].size()) {
        const std::uint32_t u = adj[v][next++];
        if (color[u] == kGray) return true;  // back edge -> cycle
        if (color[u] == kWhite) {
          color[u] = kGray;
          stack.emplace_back(u, 0);
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

UpDownRouting::UpDownRouting(const HostSwitchGraph& g, SwitchId root)
    : m_(g.num_switches()) {
  ORP_REQUIRE(root < m_, "root switch out of range");
  ORP_REQUIRE(g.switches_connected(), "up*/down* needs a connected switch graph");

  // BFS levels from the root define the link orientation: a hop a -> b is
  // "up" when (level[b], b) < (level[a], a).
  level_.assign(m_, kUnreachable);
  std::vector<SwitchId> queue{root};
  level_[root] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const SwitchId v = queue[head];
    for (const SwitchId u : g.neighbors(v)) {
      if (level_[u] == kUnreachable) {
        level_[u] = level_[v] + 1;
        queue.push_back(u);
      }
    }
  }

  auto is_up = [&](SwitchId from, SwitchId to) {
    return std::make_pair(level_[to], to) < std::make_pair(level_[from], from);
  };

  // Legal-route distances: BFS per source over (switch, phase) states.
  // Phase 0: may still go up (or turn down); phase 1: down-only.
  dist_.assign(static_cast<std::size_t>(m_) * m_, kUnreachable);
  std::vector<std::uint32_t> state_dist(2 * m_);
  std::vector<std::uint32_t> state_queue;
  for (SwitchId s = 0; s < m_; ++s) {
    std::fill(state_dist.begin(), state_dist.end(), kUnreachable);
    state_queue.clear();
    state_queue.push_back(s * 2);  // (s, up-phase)
    state_dist[s * 2] = 0;
    for (std::size_t head = 0; head < state_queue.size(); ++head) {
      const std::uint32_t state = state_queue[head];
      const SwitchId v = state / 2;
      const bool down_only = (state & 1) != 0;
      const std::uint32_t dv = state_dist[state];
      for (const SwitchId u : g.neighbors(v)) {
        const bool up_hop = is_up(v, u);
        if (down_only && up_hop) continue;  // down* may not climb again
        const std::uint32_t next_state = u * 2 + (up_hop ? 0 : 1);
        if (state_dist[next_state] != kUnreachable) continue;
        state_dist[next_state] = dv + 1;
        state_queue.push_back(next_state);
      }
    }
    for (SwitchId t = 0; t < m_; ++t) {
      dist_[static_cast<std::size_t>(s) * m_ + t] =
          std::min(state_dist[t * 2], state_dist[t * 2 + 1]);
    }
  }
}

double UpDownRouting::routed_haspl(const HostSwitchGraph& g) const {
  ORP_REQUIRE(g.num_switches() == m_, "graph/routing size mismatch");
  ORP_REQUIRE(g.fully_attached(), "routed h-ASPL needs every host attached");
  const std::uint64_t n = g.num_hosts();
  if (n < 2) return 0.0;
  std::uint64_t ordered_sum = 0;
  for (SwitchId s = 0; s < m_; ++s) {
    if (g.hosts_on(s) == 0) continue;
    for (SwitchId t = 0; t < m_; ++t) {
      if (t == s || g.hosts_on(t) == 0) continue;
      const std::uint32_t d = switch_distance(s, t);
      ORP_REQUIRE(d != kUnreachable, "up*/down* left a pair unreachable");
      ordered_sum += static_cast<std::uint64_t>(g.hosts_on(s)) * g.hosts_on(t) * d;
    }
  }
  const std::uint64_t pairs = n * (n - 1) / 2;
  return (static_cast<double>(ordered_sum) / 2.0 + 2.0 * static_cast<double>(pairs)) /
         static_cast<double>(pairs);
}

std::uint32_t UpDownRouting::routed_diameter(const HostSwitchGraph& g) const {
  ORP_REQUIRE(g.num_switches() == m_, "graph/routing size mismatch");
  std::uint32_t max_dist = 0;
  bool any_pair = false;
  for (SwitchId s = 0; s < m_; ++s) {
    if (g.hosts_on(s) == 0) continue;
    for (SwitchId t = 0; t < m_; ++t) {
      if (t == s || g.hosts_on(t) == 0) continue;
      max_dist = std::max(max_dist, switch_distance(s, t));
      any_pair = true;
    }
  }
  if (!any_pair) return g.num_hosts() >= 2 ? 2 : 0;
  return max_dist + 2;
}

}  // namespace orp

#include "sim/traffic.hpp"

#include <bit>
#include <cmath>
#include <numeric>

#include "common/require.hpp"

namespace orp {

const char* traffic_pattern_name(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kUniformRandom: return "uniform-random";
    case TrafficPattern::kPermutation: return "permutation";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kBitComplement: return "bit-complement";
    case TrafficPattern::kBitReverse: return "bit-reverse";
    case TrafficPattern::kNeighborRing: return "neighbor-ring";
    case TrafficPattern::kShuffle: return "shuffle";
  }
  return "?";
}

std::vector<TrafficPattern> all_traffic_patterns() {
  return {TrafficPattern::kUniformRandom, TrafficPattern::kPermutation,
          TrafficPattern::kTranspose,     TrafficPattern::kBitComplement,
          TrafficPattern::kBitReverse,    TrafficPattern::kNeighborRing,
          TrafficPattern::kShuffle};
}

std::vector<Message> make_traffic(TrafficPattern pattern, std::uint32_t ranks,
                                  std::uint64_t bytes, Xoshiro256& rng) {
  ORP_REQUIRE(ranks >= 2, "need at least two ranks");
  std::vector<Message> messages;
  messages.reserve(ranks);
  const std::uint32_t log2n =
      std::has_single_bit(ranks) ? std::bit_width(ranks) - 1 : 0;

  switch (pattern) {
    case TrafficPattern::kUniformRandom:
      for (Rank r = 0; r < ranks; ++r) {
        messages.push_back({r, static_cast<Rank>(rng.below(ranks)), bytes});
      }
      break;
    case TrafficPattern::kPermutation: {
      std::vector<Rank> target(ranks);
      std::iota(target.begin(), target.end(), 0);
      shuffle(target, rng);
      for (Rank r = 0; r < ranks; ++r) messages.push_back({r, target[r], bytes});
      break;
    }
    case TrafficPattern::kTranspose: {
      const auto side = static_cast<std::uint32_t>(std::lround(std::sqrt(ranks)));
      ORP_REQUIRE(side * side == ranks, "transpose needs a square rank count");
      for (Rank r = 0; r < ranks; ++r) {
        const std::uint32_t row = r / side, col = r % side;
        messages.push_back({r, col * side + row, bytes});
      }
      break;
    }
    case TrafficPattern::kBitComplement:
      ORP_REQUIRE(std::has_single_bit(ranks), "bit patterns need power-of-two ranks");
      for (Rank r = 0; r < ranks; ++r) {
        messages.push_back({r, static_cast<Rank>(~r & (ranks - 1)), bytes});
      }
      break;
    case TrafficPattern::kBitReverse:
      ORP_REQUIRE(std::has_single_bit(ranks), "bit patterns need power-of-two ranks");
      for (Rank r = 0; r < ranks; ++r) {
        Rank reversed = 0;
        for (std::uint32_t b = 0; b < log2n; ++b) {
          reversed |= ((r >> b) & 1u) << (log2n - 1 - b);
        }
        messages.push_back({r, reversed, bytes});
      }
      break;
    case TrafficPattern::kNeighborRing:
      for (Rank r = 0; r < ranks; ++r) {
        messages.push_back({r, (r + 1) % ranks, bytes});
      }
      break;
    case TrafficPattern::kShuffle:
      ORP_REQUIRE(std::has_single_bit(ranks), "shuffle needs power-of-two ranks");
      for (Rank r = 0; r < ranks; ++r) {
        const Rank rotated = static_cast<Rank>(
            ((r << 1) | (r >> (log2n - 1))) & (ranks - 1));
        messages.push_back({r, rotated, bytes});
      }
      break;
  }
  return messages;
}

TrafficResult run_traffic(Machine& machine, TrafficPattern pattern,
                          std::uint64_t bytes, Xoshiro256& rng) {
  const auto messages = make_traffic(pattern, machine.num_ranks(), bytes, rng);
  TrafficResult result;
  result.pattern = traffic_pattern_name(pattern);
  result.elapsed = machine.phase(messages);
  const auto& stats = machine.last_phase_stats();
  std::uint64_t delivered = 0;
  for (const Message& m : messages) {
    if (m.src != m.dst) delivered += m.bytes;
  }
  result.aggregate_bandwidth =
      result.elapsed > 0 ? static_cast<double>(delivered) / result.elapsed : 0.0;
  result.mean_hops = stats.mean_hops;
  result.max_link_utilization = stats.max_link_utilization;
  return result;
}

}  // namespace orp

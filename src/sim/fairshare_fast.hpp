#pragma once
// Scaled max-min fair allocation: the fluid engine's production solver.
//
// The reference FairShareSolver (fairshare.hpp) re-solves from scratch on
// every active-set change and scans every touched link per filling round,
// which makes a communication phase cost O(#completion-batches * #rounds *
// (links + flows * path length)). This solver brings that down to roughly
// "what changed" with three cooperating ideas (docs/sim.md):
//
//  1. Same-route flow aggregation. Flows are hashed by their exact link
//     sequence and each distinct route is solved as ONE weighted flow
//     (weight = live flow count). Progressive filling gives identical
//     rates to flows with identical paths, so fanning the per-route rate
//     back out to the member flows reproduces the per-flow allocation
//     exactly — telemetry and the Machine always see de-aggregated
//     per-flow rates.
//
//  2. Bucketed bottleneck search. Instead of scanning every touched link
//     per filling round, links live in a monotone min-queue keyed by the
//     level at which they would saturate (remaining headroom divided by
//     unfrozen crossing weight). A round pops the minimum bucket, freezes
//     the routes crossing the saturated links via per-link incidence
//     lists, and re-keys only the links those routes touch.
//
//  3. Incremental re-solve. Within a phase the route set is fixed; the
//     only mid-phase change is flows completing or failing (weights
//     decrease). Each solve records its freeze trajectory — per filling
//     round the level, the links that saturated, and the routes frozen.
//     When weights drop, every round strictly before the first round in
//     which a changed route's link saturated is provably unaffected
//     (those links were not binding earlier, and shrinking a weight only
//     raises a link's saturation level), so the solver replays that
//     prefix verbatim and re-runs filling only on the suffix routes.
//
// The reference solver is kept, bit-for-bit untouched in behavior, as the
// golden oracle: tests/sim_fairshare_diff_test.cpp asserts rate agreement
// within 1e-9 * capacity on randomized instances, and the max-min
// certificate below is checked for both solvers (and asserted after every
// fast solve in debug builds).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/routing.hpp"

namespace orp {

/// Checks the KKT-style max-min certificate for an allocation produced by
/// either solver: no link carries more than `capacity + tol`, every active
/// flow with a non-empty path crosses at least one saturated link (load >=
/// capacity - tol) on which its rate is maximal among the active crossers
/// (within tol), and every active zero-link flow runs at line rate. On
/// failure returns false and, when `why` is non-null, describes the first
/// violated condition. `tol` is an absolute rate bound (callers typically
/// pass 1e-9 * capacity).
bool max_min_certificate_ok(const std::vector<std::vector<LinkId>>& paths,
                            const std::vector<std::uint8_t>& active,
                            const std::vector<double>& rates, double capacity,
                            double tol, std::string* why = nullptr);

/// The fast fluid solver. Stateful across the solves of one communication
/// phase: set_paths() builds the aggregated route tableau, deactivate()
/// retires one flow (weight decrement), solve() produces per-flow rates,
/// warm-starting from the previous trajectory when only deactivations
/// happened in between. Re-pathing flows (fault rebuild) requires a fresh
/// set_paths(). Active flows with empty paths (same-host memcpy never
/// reaches the solver, but zero-link flows do exist in direct use) are
/// given line rate and excluded from filling.
class FastFairShareSolver {
 public:
  FastFairShareSolver(std::uint32_t num_links, double link_capacity);

  /// Rebuilds the route tableau for a new phase: aggregates `paths[f]` of
  /// every flow with `active[f]` by identical link sequence. O(sum of
  /// active path lengths). Invalidates any warm-start state.
  void set_paths(const std::vector<std::vector<LinkId>>& paths,
                 const std::vector<std::uint8_t>& active);

  /// Flow `f` completed or failed: drop it from its route's weight. O(1).
  void deactivate(std::size_t f);

  /// Max-min rates for the current active set. `rates` is sized to the
  /// flow count of set_paths(); inactive flows read 0. When nothing
  /// changed since the last solve this only re-fans the cached rates;
  /// after deactivations it replays the unaffected freeze-log prefix and
  /// re-fills the suffix.
  void solve(std::vector<double>& rates);

  /// Validates the internal (aggregated) max-min certificate of the last
  /// solve; used by tests and by the debug assertion hook. Returns true
  /// with no solve yet performed.
  bool self_check(std::string* why = nullptr) const;

  double capacity() const noexcept { return capacity_; }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;
  /// flow_route_ sentinel: active flow with an empty path (line rate).
  static constexpr std::uint32_t kZeroLink = 0xfffffffeu;

  void cold_solve();
  bool warm_solve();  ///< false when the change forces a cold solve
  void fill(double start_level, std::uint32_t unfrozen);
  void freeze_route(std::uint32_t route, double level);
  void reset_queue(double lo, double hi);
  void push_slot(std::uint32_t slot);
  std::uint32_t bucket_index(double key) const;

  double capacity_;
  // Global link id -> dense slot, valid between set_paths() calls.
  std::vector<std::uint32_t> link_slot_;
  std::vector<LinkId> touched_;  ///< slot -> global link id

  // Route tableau (rebuilt by set_paths).
  std::size_t num_flows_ = 0;
  std::vector<std::uint32_t> flow_route_;   ///< per flow: route / sentinel
  std::vector<std::uint32_t> route_offset_;  ///< CSR into route_slots_
  std::vector<std::uint32_t> route_slots_;
  std::vector<std::uint32_t> route_weight_;  ///< live member-flow count
  std::vector<double> route_rate_;
  // Per-slot incidence: which routes cross this link (CSR, static per phase).
  std::vector<std::uint32_t> slot_route_offset_;
  std::vector<std::uint32_t> slot_routes_;
  // Open-addressed route dedup table: (sequence hash, route id).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> dedup_;
  std::uint64_t dedup_mask_ = 0;

  // Filling state (valid for the last solve).
  std::vector<std::uint8_t> frozen_;
  std::vector<std::uint64_t> slot_count_;   ///< unfrozen weight crossing
  std::vector<double> slot_residual_;       ///< headroom at slot_level_
  std::vector<double> slot_level_;          ///< level of last slot update
  std::vector<std::uint32_t> slot_sat_round_;
  // Monotone bucket queue: slots bucketed by the level at which they
  // would saturate (slot_level_ + slot_residual_ / slot_count_). Filling
  // rounds pop the minimum bucket instead of scanning every touched
  // link. An entry goes stale in place when a crossing route freezes
  // (its true key only grows); `count` is the staleness fingerprint —
  // counts change exactly when a slot's key does — and stale entries are
  // rehoused forward lazily when their bucket is scanned.
  struct QueueEntry {
    double key;            ///< saturation level at push time
    std::uint32_t slot;
    std::uint32_t count;   ///< slot_count_ at push time
  };
  static constexpr std::uint32_t kNumBuckets = 1024;
  std::vector<std::vector<QueueEntry>> buckets_;
  std::vector<std::uint64_t> bucket_epoch_;  ///< lazily-cleared buckets
  std::uint64_t queue_epoch_ = 0;
  double bucket_lo_ = 0.0;
  double bucket_winv_ = 0.0;  ///< buckets per key unit (0: single bucket)
  double bucket_width_ = 0.0;
  std::uint32_t cur_bucket_ = 0;

  // Freeze log of the last solve, the warm-start replay source.
  struct FreezeRound {
    double level = 0.0;
    std::uint32_t routes_end = 0;  ///< prefix length of log_routes_
    std::uint32_t slots_end = 0;   ///< prefix length of log_slots_
  };
  std::vector<FreezeRound> log_rounds_;
  std::vector<std::uint32_t> log_routes_;  ///< routes in freeze order
  std::vector<std::uint32_t> log_slots_;   ///< saturated slots in order
  std::vector<std::uint32_t> route_round_;  ///< per route: freeze round

  bool have_solution_ = false;
  std::vector<std::uint32_t> changed_routes_;  ///< since last solve
  std::vector<std::uint8_t> route_changed_;

  // Scratch for warm_solve.
  std::vector<std::uint32_t> suffix_routes_;
  std::vector<std::uint32_t> suffix_slots_;
  std::vector<std::uint8_t> slot_in_suffix_;
};

}  // namespace orp

#pragma once
// Simulation parameters for the flow-level network simulator (§6.2.1).
//
// Defaults model the paper's setup: Mellanox FDR10 links (40 Gb/s) and
// hosts with 100 GFlops. The latency constants are typical for cut-through
// InfiniBand switches; they matter because IS/FT at 1024 ranks are
// latency-dominated, which is exactly the regime where low h-ASPL wins.

namespace orp {

/// How flows pick among equal-cost shortest paths.
enum class RoutingPolicy {
  kDeterministic,  ///< lowest-id next hop (topology-agnostic deterministic)
  kEcmp,           ///< per-flow hashed spreading over all shortest paths
};

/// Which max-min fair allocator drives the fluid loop (docs/sim.md).
enum class FluidSolver {
  kReference,  ///< FairShareSolver: from-scratch progressive filling (oracle)
  kFast,       ///< FastFairShareSolver: aggregated, warm-started (default)
};

struct SimParams {
  double link_bandwidth = 5.0e9;  ///< bytes/s per direction (40 Gb/s FDR10)
  double hop_latency = 100e-9;    ///< seconds per traversed link (wire+switch)
  double mpi_overhead = 1.0e-6;   ///< per-message software overhead, seconds
  double host_gflops = 100.0;     ///< compute rate per host (paper: 100 GFlops)
  RoutingPolicy routing = RoutingPolicy::kDeterministic;
  /// Escape hatch back to the reference solver (`--fluid-solver reference`
  /// in the bench tools); both produce rates equal within 1e-9 * capacity.
  FluidSolver fluid_solver = FluidSolver::kFast;
  /// Added latency per in-flight flow reroute after a fault (transport
  /// retransmission handshake). Only reachable via Machine::inject_faults.
  double retry_backoff = 10.0e-6;
  /// Give-up horizon for a flow whose endpoints have no surviving route:
  /// the flow fails cleanly this many seconds after the fault (bounded
  /// failure detection, not a hang).
  double retry_timeout = 1.0e-3;
};

}  // namespace orp

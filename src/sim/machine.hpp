#pragma once
// The simulated parallel machine: a host-switch graph with routing, a
// fluid flow engine, and an MPI-like communication layer (§6.2.1's
// replacement for SimGrid + MVAPICH2).
//
// Execution model: applications are sequences of *steps*; each step is
// either per-rank computation or a communication phase (a set of messages
// injected simultaneously). Within a phase, flows share link bandwidth
// max-min fairly and the phase lasts until its slowest message finishes —
// this mirrors loosely-synchronous bulk applications like the NAS suite.
//
// Collectives decompose into phases of point-to-point messages using the
// textbook algorithms MPI implementations pick at these sizes:
//   bcast/reduce     binomial tree
//   allreduce        recursive doubling (reduce+bcast for non-power-of-2)
//   allgather        recursive doubling (ring for non-power-of-2)
//   alltoall(v)      pairwise exchange (XOR partners for power-of-2 ranks)
//   barrier          zero-byte recursive doubling

#include <cstdint>
#include <functional>
#include <vector>

#include "hsg/host_switch_graph.hpp"
#include "sim/fairshare.hpp"
#include "sim/fairshare_fast.hpp"
#include "sim/fault.hpp"
#include "sim/params.hpp"
#include "sim/routing.hpp"
#include "sim/telemetry/telemetry.hpp"

namespace orp {

using Rank = std::uint32_t;

/// One point-to-point message of a communication phase.
struct Message {
  Rank src;
  Rank dst;
  std::uint64_t bytes;
};

class Machine {
 public:
  /// `rank_to_host[i]` maps MPI rank i to a host; empty means identity.
  Machine(const HostSwitchGraph& graph, const SimParams& params = {},
          std::vector<HostId> rank_to_host = {});

  std::uint32_t num_ranks() const noexcept { return num_ranks_; }
  const SimParams& params() const noexcept { return params_; }
  /// Simulated seconds elapsed so far.
  double now() const noexcept { return clock_; }
  /// Resets the simulated clock (the topology/routing is reusable).
  void reset() noexcept { clock_ = 0.0; }

  /// Hop count of the route between two ranks (the end-to-end latency in
  /// links; equals l(h_i, h_j) of the underlying host-switch graph).
  std::uint32_t route_hops(Rank a, Rank b) const;

  // ---- fault injection (see sim/fault.hpp and docs/resilience.md) ------

  /// Schedules fault events. Events due at or before the current clock
  /// apply at the start of the next phase; later ones strike mid-phase at
  /// their timestamp. Merges with any not-yet-applied events.
  void inject_faults(std::vector<FaultEvent> events);
  const FaultStats& fault_stats() const noexcept { return fault_stats_; }
  /// True while the rank's host sits on a live switch.
  bool rank_alive(Rank r) const {
    ORP_REQUIRE(r < num_ranks_, "rank out of range");
    return !host_dead_[rank_to_host_[r]];
  }
  /// The (possibly degraded) topology the machine currently routes on.
  const HostSwitchGraph& graph() const noexcept { return graph_; }

  // ---- steps: each advances the clock and returns its elapsed seconds --

  /// Every rank computes `flops` operations in parallel.
  double compute(double flops_per_rank);
  /// Injects all messages at once; returns when the last one lands.
  double phase(const std::vector<Message>& messages);

  double barrier();
  double bcast(std::uint64_t bytes, Rank root = 0);
  double reduce(std::uint64_t bytes, Rank root = 0);
  double allreduce(std::uint64_t bytes);
  double allgather(std::uint64_t bytes_per_rank);
  /// Pairwise-exchange all-to-all: every ordered pair exchanges
  /// `bytes_per_pair` bytes.
  double alltoall(std::uint64_t bytes_per_pair);
  /// All-to-all with per-pair sizes from `bytes(src, dst)`.
  double alltoallv(const std::function<std::uint64_t(Rank, Rank)>& bytes);

  /// Root scatters a distinct `bytes_per_rank` block to every rank
  /// (binomial tree; internal rounds forward whole subtree payloads).
  double scatter(std::uint64_t bytes_per_rank, Rank root = 0);
  /// Mirror of scatter: every rank's block converges on the root.
  double gather(std::uint64_t bytes_per_rank, Rank root = 0);
  /// Recursive-halving reduce-scatter: each rank ends with one reduced
  /// `bytes_per_rank` block (power-of-two ranks; pairwise fallback).
  double reduce_scatter(std::uint64_t bytes_per_rank);
  /// Ring allreduce (Rabenseifner-style bandwidth-optimal large-message
  /// algorithm): reduce-scatter ring then allgather ring over
  /// `bytes_total / ranks` chunks.
  double ring_allreduce(std::uint64_t bytes_total);

  /// Statistics of the most recent phase() (collectives update it once
  /// per internal round; the last round's stats remain).
  struct PhaseStats {
    double elapsed = 0.0;          ///< seconds, same value phase() returned
    double max_link_utilization = 0.0;  ///< busiest link's busy fraction
    /// Mean busy fraction over the links that carried traffic this phase.
    double mean_link_utilization = 0.0;
    double mean_hops = 0.0;        ///< average route length of the flows
    std::uint64_t flows = 0;
    /// The busiest links of the phase, most loaded first (at most
    /// kTopLinks entries; fewer when the phase used fewer links).
    struct LinkLoad {
      LinkId link = 0;
      double utilization = 0.0;
    };
    static constexpr std::size_t kTopLinks = 4;
    std::vector<LinkLoad> top_links;

    // Graceful-degradation breakdown (all zero on a healthy run):
    std::uint64_t completed = 0;  ///< flows fully delivered
    std::uint64_t retried = 0;    ///< flows rerouted at least once
    std::uint64_t failed = 0;     ///< flows abandoned (no surviving route)
    double retry_added_latency = 0.0;  ///< summed backoff seconds
  };
  const PhaseStats& last_phase_stats() const noexcept { return stats_; }

 private:
  /// Applies every pending fault event with time <= horizon to the
  /// topology; rebuilds routing/solver and returns true when it changed.
  /// When `removed_links` is non-null, the *old* directed link ids of every
  /// link that went down are flagged in it (caller sizes it to the old
  /// num_links) so in-flight flows can be tested for impact.
  bool apply_due_faults(double horizon, std::vector<std::uint8_t>* removed_links);

  SimParams params_;
  HostSwitchGraph graph_;  ///< current (possibly degraded) topology
  RoutingTable routes_;
  std::uint32_t num_ranks_;
  std::vector<HostId> rank_to_host_;
  // Both allocators stay constructed; params_.fluid_solver picks which one
  // the fluid loop drives (fast by default, reference as the escape hatch
  // and oracle — see docs/sim.md).
  FairShareSolver solver_;
  FastFairShareSolver fast_solver_;
  double clock_ = 0.0;
  PhaseStats stats_;
  std::uint64_t phase_counter_ = 0;  ///< decorrelates ECMP hashes across phases

  // Fault state.
  std::vector<std::uint8_t> switch_dead_;
  std::vector<std::uint8_t> host_dead_;
  /// Adjacency frozen at switch death, so kSwitchUp can restore the links
  /// that are still restorable (kLinkDown on a dead switch's recorded edge
  /// removes it from here — the cable failed independently).
  std::vector<std::vector<SwitchId>> downed_adjacency_;
  std::vector<FaultEvent> pending_;  ///< sorted by time
  std::size_t next_event_ = 0;       ///< first unapplied entry of pending_
  FaultStats fault_stats_;

  // Network telemetry (no-op unless a JSONL tracer is active).
  NetPhaseCollector net_;

  // Scratch reused across phases. paths_ keeps its inner vectors' capacity
  // between phases (collective rounds have identical flow counts, so the
  // per-flow path buffers stabilize after the first round).
  std::vector<std::vector<LinkId>> paths_;
  std::vector<double> rates_;
  std::vector<double> link_bytes_;
  struct PhaseScratch {
    std::vector<std::uint64_t> remaining;
    std::vector<std::uint32_t> hops;
    std::vector<HostId> flow_src, flow_dst;
    std::vector<std::uint64_t> flow_key;
    std::vector<double> penalty;
    std::vector<std::uint8_t> failed, retried, active;
    std::vector<double> finish, byte_progress;
    std::vector<std::uint8_t> removed_links;
  } scratch_;
};

}  // namespace orp

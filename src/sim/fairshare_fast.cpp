#include "sim/fairshare_fast.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/prng.hpp"
#include "common/require.hpp"

namespace orp {

bool max_min_certificate_ok(const std::vector<std::vector<LinkId>>& paths,
                            const std::vector<std::uint8_t>& active,
                            const std::vector<double>& rates, double capacity,
                            double tol, std::string* why) {
  const auto fail = [&](const std::string& message) {
    if (why) *why = message;
    return false;
  };
  LinkId max_link = 0;
  for (std::size_t f = 0; f < paths.size(); ++f) {
    if (!active[f]) continue;
    for (const LinkId l : paths[f]) max_link = std::max(max_link, l);
  }
  std::vector<double> load(static_cast<std::size_t>(max_link) + 1, 0.0);
  std::vector<double> top(load.size(), 0.0);
  for (std::size_t f = 0; f < paths.size(); ++f) {
    if (!active[f]) continue;
    if (!std::isfinite(rates[f]) || rates[f] < 0.0) {
      return fail("flow " + std::to_string(f) + " has a non-finite or negative rate");
    }
    for (const LinkId l : paths[f]) {
      load[l] += rates[f];
      top[l] = std::max(top[l], rates[f]);
    }
  }
  for (std::size_t l = 0; l < load.size(); ++l) {
    if (load[l] > capacity + tol) {
      return fail("link " + std::to_string(l) + " over capacity: " +
                  std::to_string(load[l]));
    }
  }
  for (std::size_t f = 0; f < paths.size(); ++f) {
    if (!active[f]) continue;
    if (paths[f].empty()) {
      if (std::abs(rates[f] - capacity) > tol) {
        return fail("zero-link flow " + std::to_string(f) +
                    " not at line rate: " + std::to_string(rates[f]));
      }
      continue;
    }
    bool bottlenecked = false;
    for (const LinkId l : paths[f]) {
      if (load[l] >= capacity - tol && rates[f] + tol >= top[l]) {
        bottlenecked = true;
        break;
      }
    }
    if (!bottlenecked) {
      return fail("flow " + std::to_string(f) +
                  " crosses no saturated link where its rate is maximal");
    }
  }
  return true;
}

FastFairShareSolver::FastFairShareSolver(std::uint32_t num_links,
                                         double link_capacity)
    : capacity_(link_capacity), link_slot_(num_links, kNone) {
  ORP_REQUIRE(link_capacity > 0.0, "link capacity must be positive");
}

void FastFairShareSolver::set_paths(
    const std::vector<std::vector<LinkId>>& paths,
    const std::vector<std::uint8_t>& active) {
  ORP_REQUIRE(active.size() >= paths.size(), "active flag size mismatch");
  for (const LinkId l : touched_) link_slot_[l] = kNone;
  touched_.clear();
  num_flows_ = paths.size();
  flow_route_.assign(num_flows_, kNone);
  route_offset_.clear();
  route_offset_.push_back(0);
  route_slots_.clear();
  route_weight_.clear();
  route_rate_.clear();
  have_solution_ = false;
  changed_routes_.clear();

  // Open-addressed dedup table over the path hash; sized for a <50% load
  // factor so linear probing stays short.
  std::size_t table = 16;
  while (table < 2 * num_flows_ + 2) table <<= 1;
  dedup_.assign(table, {0, kNone});
  dedup_mask_ = table - 1;

  for (std::size_t f = 0; f < num_flows_; ++f) {
    if (!active[f]) continue;
    const std::vector<LinkId>& path = paths[f];
    if (path.empty()) {
      flow_route_[f] = kZeroLink;  // zero-link flow: line rate, no filling
      continue;
    }
    std::uint64_t hash = 0x2545f4914f6cdd1dULL;
    for (const LinkId l : path) {
      hash ^= static_cast<std::uint64_t>(l) + 1;
      hash = splitmix64_next(hash);
    }
    std::uint32_t route = kNone;
    std::size_t idx = hash & dedup_mask_;
    while (dedup_[idx].second != kNone) {
      if (dedup_[idx].first == hash) {
        const std::uint32_t candidate = dedup_[idx].second;
        const std::uint32_t begin = route_offset_[candidate];
        const std::uint32_t end = route_offset_[candidate + 1];
        if (end - begin == path.size()) {
          bool same = true;
          for (std::uint32_t k = 0; k < path.size(); ++k) {
            if (touched_[route_slots_[begin + k]] != path[k]) {
              same = false;
              break;
            }
          }
          if (same) {
            route = candidate;
            break;
          }
        }
      }
      idx = (idx + 1) & dedup_mask_;
    }
    if (route == kNone) {
      route = static_cast<std::uint32_t>(route_weight_.size());
      dedup_[idx] = {hash, route};
      for (const LinkId l : path) {
        if (link_slot_[l] == kNone) {
          link_slot_[l] = static_cast<std::uint32_t>(touched_.size());
          touched_.push_back(l);
        }
        route_slots_.push_back(link_slot_[l]);
      }
      route_offset_.push_back(static_cast<std::uint32_t>(route_slots_.size()));
      route_weight_.push_back(0);
      route_rate_.push_back(0.0);
    }
    ++route_weight_[route];
    flow_route_[f] = route;
  }

  // Per-slot incidence lists (counting-sort CSR). A route crossing a link
  // twice is listed twice, mirroring the reference solver's double count.
  const std::size_t num_slots = touched_.size();
  slot_route_offset_.assign(num_slots + 1, 0);
  for (const std::uint32_t s : route_slots_) ++slot_route_offset_[s + 1];
  for (std::size_t s = 0; s < num_slots; ++s) {
    slot_route_offset_[s + 1] += slot_route_offset_[s];
  }
  slot_routes_.resize(route_slots_.size());
  std::vector<std::uint32_t> cursor(slot_route_offset_.begin(),
                                    slot_route_offset_.end() - 1);
  for (std::uint32_t r = 0; r < route_weight_.size(); ++r) {
    for (std::uint32_t k = route_offset_[r]; k < route_offset_[r + 1]; ++k) {
      slot_routes_[cursor[route_slots_[k]]++] = r;
    }
  }
  route_changed_.assign(route_weight_.size(), 0);
  slot_in_suffix_.assign(num_slots, 0);
}

void FastFairShareSolver::deactivate(std::size_t f) {
  ORP_ASSERT(f < num_flows_);
  const std::uint32_t r = flow_route_[f];
  if (r == kNone) return;  // repeated deactivation is a no-op
  flow_route_[f] = kNone;
  if (r == kZeroLink) return;
  ORP_ASSERT(route_weight_[r] > 0);
  --route_weight_[r];
  if (have_solution_ && !route_changed_[r]) {
    route_changed_[r] = 1;
    changed_routes_.push_back(r);
  }
}

std::uint32_t FastFairShareSolver::bucket_index(double key) const {
  const double offset = (key - bucket_lo_) * bucket_winv_;
  std::uint32_t idx =
      offset <= 0.0 ? 0
                    : std::min<std::uint32_t>(static_cast<std::uint32_t>(offset),
                                              kNumBuckets - 1);
  // Never file behind the scan cursor — rounding dust on a key at the
  // current level must not make its entry unreachable.
  return std::max(idx, cur_bucket_);
}

void FastFairShareSolver::reset_queue(double lo, double hi) {
  if (buckets_.empty()) {
    buckets_.resize(kNumBuckets);
    bucket_epoch_.assign(kNumBuckets, 0);
  }
  ++queue_epoch_;  // previous entries become garbage, cleared lazily
  cur_bucket_ = 0;
  bucket_lo_ = lo;
  const double range = hi - lo;
  bucket_width_ = range > 0.0 ? range / kNumBuckets : 0.0;
  bucket_winv_ = range > 0.0 ? kNumBuckets / range : 0.0;
}

void FastFairShareSolver::push_slot(std::uint32_t slot) {
  const double key =
      slot_level_[slot] +
      slot_residual_[slot] / static_cast<double>(slot_count_[slot]);
  const std::uint32_t idx = bucket_index(key);
  if (bucket_epoch_[idx] != queue_epoch_) {
    bucket_epoch_[idx] = queue_epoch_;
    buckets_[idx].clear();
  }
  buckets_[idx].push_back(
      {key, slot, static_cast<std::uint32_t>(slot_count_[slot])});
}

void FastFairShareSolver::freeze_route(std::uint32_t route, double level) {
  const std::uint64_t weight = route_weight_[route];
  for (std::uint32_t k = route_offset_[route]; k < route_offset_[route + 1];
       ++k) {
    const std::uint32_t s = route_slots_[k];
    // Roll the slot forward to `level` (all unfrozen crossers consumed at
    // the common fill rate since the last update), then retire this
    // route's weight — its consumption is constant from here on, so the
    // headroom at `level` is unchanged by the hand-off.
    slot_residual_[s] -=
        static_cast<double>(slot_count_[s]) * (level - slot_level_[s]);
    slot_level_[s] = level;
    slot_count_[s] -= weight;
    // No queue update here: the slot's entry is re-keyed lazily when it
    // surfaces at the top of the queue (keys only grow as weight
    // retires, so the stale smaller key surfaces first).
  }
}

void FastFairShareSolver::fill(double start_level, std::uint32_t unfrozen) {
  const double eps = capacity_ * 1e-12;
  // Drops a dead entry (emptied or already saturated slot) or refreshes a
  // stale one (a crossing route froze since the push; the count
  // fingerprint changed exactly when the key did, and keys only grow).
  // Returns false when the entry was removed from `entries[i]`.
  const auto settle = [&](std::vector<QueueEntry>& entries, std::size_t i,
                          std::uint32_t bucket) -> bool {
    QueueEntry& e = entries[i];
    const std::uint32_t s = e.slot;
    if (slot_count_[s] == 0 || slot_sat_round_[s] != kNone) {
      e = entries.back();
      entries.pop_back();
      return false;
    }
    if (e.count != static_cast<std::uint32_t>(slot_count_[s])) {
      e.count = static_cast<std::uint32_t>(slot_count_[s]);
      e.key = slot_level_[s] +
              slot_residual_[s] / static_cast<double>(slot_count_[s]);
      const std::uint32_t idx = bucket_index(e.key);
      if (idx != bucket) {
        // Rehouse forward (a grown key never maps behind its bucket).
        if (bucket_epoch_[idx] != queue_epoch_) {
          bucket_epoch_[idx] = queue_epoch_;
          buckets_[idx].clear();
        }
        buckets_[idx].push_back(e);
        e = entries.back();
        entries.pop_back();
        return false;
      }
    }
    return true;
  };

  while (unfrozen > 0) {
    // Pass 1: find the round's bottleneck level — advance past exhausted
    // buckets, then settle the first live bucket and take its minimum
    // fresh key. Progressive filling saturates a link every round while
    // unfrozen weight remains; running out of buckets means the tableau
    // is corrupt.
    double level;
    for (;;) {
      ORP_ASSERT(cur_bucket_ < kNumBuckets);
      if (bucket_epoch_[cur_bucket_] != queue_epoch_) {
        ++cur_bucket_;
        continue;
      }
      std::vector<QueueEntry>& entries = buckets_[cur_bucket_];
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < entries.size();) {
        if (!settle(entries, i, cur_bucket_)) continue;
        best = std::min(best, entries[i].key);
        ++i;
      }
      if (entries.empty()) {
        ++cur_bucket_;
        continue;
      }
      level = best;
      break;
    }
    ORP_ASSERT(level >= start_level);
    const std::uint32_t round = static_cast<std::uint32_t>(log_rounds_.size());
    const std::uint32_t slots_begin =
        static_cast<std::uint32_t>(log_slots_.size());

    // Pass 2: collect the round's saturated slots before freezing
    // anything: the bottleneck plus every slot whose headroom at `level`
    // is within the reference solver's freeze epsilon (remaining <=
    // capacity * 1e-12, i.e. key <= level + eps / count). Counts are
    // fixed during collection, matching the reference's scan-then-freeze
    // round structure. Any candidate's key is <= level + eps, and stale
    // entries are housed by an older, smaller key, so scanning the
    // buckets through bucket_index(level + eps) covers every candidate.
    const std::uint32_t last = bucket_index(level + eps);
    for (std::uint32_t b = cur_bucket_; b <= last; ++b) {
      if (bucket_epoch_[b] != queue_epoch_) continue;
      std::vector<QueueEntry>& entries = buckets_[b];
      for (std::size_t i = 0; i < entries.size();) {
        if (!settle(entries, i, b)) continue;
        const QueueEntry& e = entries[i];
        if (e.key <= level + eps / static_cast<double>(slot_count_[e.slot])) {
          slot_sat_round_[e.slot] = round;
          log_slots_.push_back(e.slot);
          entries[i] = entries.back();
          entries.pop_back();
          continue;
        }
        ++i;
      }
    }
    ORP_ASSERT(log_slots_.size() > slots_begin);

    // Freeze every unfrozen route crossing a slot saturated this round.
    for (std::uint32_t i = slots_begin; i < log_slots_.size(); ++i) {
      const std::uint32_t s = log_slots_[i];
      for (std::uint32_t k = slot_route_offset_[s];
           k < slot_route_offset_[s + 1]; ++k) {
        const std::uint32_t r = slot_routes_[k];
        if (frozen_[r]) continue;
        frozen_[r] = 1;
        route_rate_[r] = level;
        route_round_[r] = round;
        log_routes_.push_back(r);
        freeze_route(r, level);
        --unfrozen;
      }
    }
    log_rounds_.push_back({level,
                           static_cast<std::uint32_t>(log_routes_.size()),
                           static_cast<std::uint32_t>(log_slots_.size())});
  }
}

void FastFairShareSolver::cold_solve() {
  const std::size_t num_routes = route_weight_.size();
  const std::size_t num_slots = touched_.size();
  frozen_.assign(num_routes, 0);
  route_round_.assign(num_routes, kNone);
  slot_count_.assign(num_slots, 0);
  slot_residual_.assign(num_slots, capacity_);
  slot_level_.assign(num_slots, 0.0);
  slot_sat_round_.assign(num_slots, kNone);
  log_rounds_.clear();
  log_routes_.clear();
  log_slots_.clear();

  std::uint32_t unfrozen = 0;
  for (std::uint32_t r = 0; r < num_routes; ++r) {
    if (route_weight_[r] == 0) {
      frozen_[r] = 1;  // all member flows already deactivated
      route_rate_[r] = 0.0;
      continue;
    }
    ++unfrozen;
    for (std::uint32_t k = route_offset_[r]; k < route_offset_[r + 1]; ++k) {
      slot_count_[route_slots_[k]] += route_weight_[r];
    }
  }
  // Bucket range: initial keys start at capacity / max_count, and no key
  // ever exceeds capacity (a saturating slot's consumption equals
  // capacity with count >= 1); FP dust past either end is clamped.
  std::uint64_t max_count = 0;
  for (std::uint32_t s = 0; s < num_slots; ++s) {
    max_count = std::max(max_count, slot_count_[s]);
  }
  reset_queue(max_count > 0 ? capacity_ / static_cast<double>(max_count) : 0.0,
              max_count > 0 ? capacity_ : 0.0);
  for (std::uint32_t s = 0; s < num_slots; ++s) {
    if (slot_count_[s] > 0) push_slot(s);
  }
  fill(0.0, unfrozen);
}

bool FastFairShareSolver::warm_solve() {
  // The cut: the first filling round in which any changed route's link
  // saturated. Rounds strictly before it are unaffected by the weight
  // decrease — a changed route was still filling then (its freeze round
  // is at or after the first saturation among its own links), so earlier
  // rounds saw identical unfrozen sets, and shrinking a weight can only
  // raise the saturation level of the changed route's links, never lower
  // another link's.
  // A route freezes in the first round one of its own links saturates,
  // so route_round_ is exactly "first saturation among my links".
  std::uint32_t cut = static_cast<std::uint32_t>(log_rounds_.size());
  for (const std::uint32_t r : changed_routes_) {
    ORP_ASSERT(route_round_[r] != kNone);
    cut = std::min(cut, route_round_[r]);
  }
  ORP_ASSERT(cut < log_rounds_.size());
  if (cut == 0) return false;  // nothing to replay; cold solve is cheaper

  const std::uint32_t routes_begin = log_rounds_[cut - 1].routes_end;
  const std::uint32_t slots_begin = log_rounds_[cut - 1].slots_end;
  const double base_level = log_rounds_[cut - 1].level;

  // Unfreeze the suffix routes (those frozen in rounds >= cut) that still
  // have live member flows; fully-deactivated ones stay frozen at rate 0.
  suffix_routes_.clear();
  for (std::uint32_t i = routes_begin; i < log_routes_.size(); ++i) {
    const std::uint32_t r = log_routes_[i];
    route_round_[r] = kNone;
    if (route_weight_[r] == 0) {
      route_rate_[r] = 0.0;
      continue;
    }
    frozen_[r] = 0;
    suffix_routes_.push_back(r);
  }
  for (std::uint32_t i = slots_begin; i < log_slots_.size(); ++i) {
    slot_sat_round_[log_slots_[i]] = kNone;
  }
  log_routes_.resize(routes_begin);
  log_slots_.resize(slots_begin);
  log_rounds_.resize(cut);

  // Rebuild the state of every slot a suffix route crosses, as of
  // `base_level`: headroom = capacity minus the replayed prefix routes'
  // frozen consumption minus the unfrozen weight filled to base_level.
  // Prefix routes' weights are unchanged (a changed route's freeze round
  // is >= cut by the cut rule), so their cached rates are exact.
  suffix_slots_.clear();
  for (const std::uint32_t r : suffix_routes_) {
    for (std::uint32_t k = route_offset_[r]; k < route_offset_[r + 1]; ++k) {
      const std::uint32_t s = route_slots_[k];
      if (!slot_in_suffix_[s]) {
        slot_in_suffix_[s] = 1;
        suffix_slots_.push_back(s);
      }
    }
  }
  double lo = capacity_;
  for (const std::uint32_t s : suffix_slots_) {
    std::uint64_t count = 0;
    double frozen_consumption = 0.0;
    for (std::uint32_t k = slot_route_offset_[s]; k < slot_route_offset_[s + 1];
         ++k) {
      const std::uint32_t r = slot_routes_[k];
      if (route_weight_[r] == 0) continue;
      if (frozen_[r]) {
        frozen_consumption +=
            static_cast<double>(route_weight_[r]) * route_rate_[r];
      } else {
        count += route_weight_[r];
      }
    }
    slot_count_[s] = count;
    slot_level_[s] = base_level;
    slot_residual_[s] = capacity_ - frozen_consumption -
                        static_cast<double>(count) * base_level;
    if (count > 0) {
      lo = std::min(lo,
                    base_level + slot_residual_[s] / static_cast<double>(count));
    }
  }
  reset_queue(lo, capacity_);
  for (const std::uint32_t s : suffix_slots_) {
    if (slot_count_[s] > 0) push_slot(s);
  }
  for (const std::uint32_t s : suffix_slots_) slot_in_suffix_[s] = 0;

  fill(base_level, static_cast<std::uint32_t>(suffix_routes_.size()));
  return true;
}

void FastFairShareSolver::solve(std::vector<double>& rates) {
  rates.assign(num_flows_, 0.0);
  if (!have_solution_) {
    cold_solve();
    have_solution_ = true;
  } else if (!changed_routes_.empty()) {
    if (!warm_solve()) cold_solve();
    for (const std::uint32_t r : changed_routes_) route_changed_[r] = 0;
    changed_routes_.clear();
  }
  // Fan the per-route rates back out to the member flows. Progressive
  // filling treats equal-path flows identically, so this reproduces the
  // per-flow allocation exactly.
  for (std::size_t f = 0; f < num_flows_; ++f) {
    const std::uint32_t r = flow_route_[f];
    if (r == kNone) continue;
    rates[f] = (r == kZeroLink) ? capacity_ : route_rate_[r];
  }
#ifndef NDEBUG
  std::string why;
  if (!self_check(&why)) {
    throw std::logic_error("FastFairShareSolver max-min certificate: " + why);
  }
#endif
}

bool FastFairShareSolver::self_check(std::string* why) const {
  if (!have_solution_) return true;
  const auto fail = [&](const std::string& message) {
    if (why) *why = message;
    return false;
  };
  const double tol = 1e-9 * capacity_;
  const std::size_t num_slots = touched_.size();
  std::vector<double> load(num_slots, 0.0);
  std::vector<double> top(num_slots, 0.0);
  for (std::uint32_t s = 0; s < num_slots; ++s) {
    for (std::uint32_t k = slot_route_offset_[s]; k < slot_route_offset_[s + 1];
         ++k) {
      const std::uint32_t r = slot_routes_[k];
      if (route_weight_[r] == 0) continue;
      load[s] += static_cast<double>(route_weight_[r]) * route_rate_[r];
      top[s] = std::max(top[s], route_rate_[r]);
    }
    if (load[s] > capacity_ + tol) {
      return fail("link " + std::to_string(touched_[s]) +
                  " over capacity: " + std::to_string(load[s]));
    }
  }
  for (std::uint32_t r = 0; r < route_weight_.size(); ++r) {
    if (route_weight_[r] == 0) continue;
    bool bottlenecked = false;
    for (std::uint32_t k = route_offset_[r]; k < route_offset_[r + 1]; ++k) {
      const std::uint32_t s = route_slots_[k];
      if (load[s] >= capacity_ - tol && route_rate_[r] + tol >= top[s]) {
        bottlenecked = true;
        break;
      }
    }
    if (!bottlenecked) {
      return fail("route " + std::to_string(r) +
                  " crosses no saturated link where its rate is maximal");
    }
  }
  return true;
}

}  // namespace orp

#pragma once
// Timed fault events and degradation counters for the simulator.
//
// Events are injected into a Machine via inject_faults() and strike at
// their simulated timestamp: pending events due before a communication
// phase apply as the phase starts; events due during a phase interrupt the
// fluid solve at the exact event time, the routing table is rebuilt on the
// surviving topology, and in-flight flows either reroute (keeping the
// bytes already delivered, paying retry_backoff) or — when no route
// survives — fail cleanly after retry_timeout. See docs/resilience.md.

#include <cstdint>

#include "hsg/host_switch_graph.hpp"

namespace orp {

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLinkDown,   ///< cable {a, b} fails
    kSwitchDown, ///< switch `a` fails (all its links; its hosts go dark)
    kLinkUp,     ///< cable {a, b} is repaired (no-op while an endpoint is
                 ///< dead or ports are exhausted; repair the switch first)
    kSwitchUp    ///< switch `a` is repaired: its recorded pre-failure links
                 ///< to still-alive neighbors come back and its hosts
                 ///< (ranks) are re-admitted
  };

  double time = 0.0;  ///< simulated seconds at which the fault strikes
  Kind kind = Kind::kLinkDown;
  SwitchId a = 0;
  SwitchId b = 0;  ///< second link endpoint; unused for switch events
};

/// Cumulative graceful-degradation counters over a Machine's lifetime.
struct FaultStats {
  std::uint64_t events_applied = 0;   ///< fault events consumed
  std::uint64_t routing_rebuilds = 0; ///< table rebuilds caused by faults
  std::uint64_t flows_retried = 0;    ///< flow reroute events (with backoff)
  std::uint64_t flows_failed = 0;     ///< flows abandoned (no surviving route)
  double retry_added_latency = 0.0;   ///< summed backoff seconds across flows
  std::uint64_t links_repaired = 0;    ///< cables restored by repair events
  std::uint64_t switches_repaired = 0; ///< switches restored (ranks re-admitted)
};

}  // namespace orp

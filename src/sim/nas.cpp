#include "sim/nas.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/require.hpp"

namespace orp {
namespace {

// ---- process grids -----------------------------------------------------

// Near-cubic power-of-two 3-D grid (NPB MG style): 1024 -> 16x8x8.
struct Grid3 {
  std::uint32_t px, py, pz;
};
Grid3 grid3(std::uint32_t p) {
  ORP_REQUIRE(std::has_single_bit(p), "NAS skeletons need a power-of-two rank count");
  Grid3 g{1, 1, 1};
  std::uint32_t* dims[3] = {&g.px, &g.py, &g.pz};
  int axis = 0;
  for (std::uint32_t v = p; v > 1; v >>= 1) {
    *dims[axis % 3] *= 2;
    ++axis;
  }
  return g;
}

// Square 2-D grid (CG/LU/SP/BT): rank count must be an even power of two.
std::uint32_t grid2_side(std::uint32_t p) {
  const auto side = static_cast<std::uint32_t>(std::lround(std::sqrt(p)));
  ORP_REQUIRE(side * side == p,
              "this NAS skeleton needs a square rank count (paper: 1024 = 32^2)");
  return side;
}

std::uint32_t scaled_iters(std::uint32_t full, double fraction) {
  ORP_REQUIRE(fraction > 0.0 && fraction <= 1.0, "iteration_fraction must be in (0,1]");
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(full * fraction)));
}

struct KernelStats {
  double gflops_total;   // full-class work across all ranks
  std::uint32_t iters;   // full-class iteration count
};

// ---- kernels -----------------------------------------------------------
// Problem sizes / iteration counts follow NPB 3.3.1 (IS & FT class A, the
// rest class B, as in the paper). The gflops numbers are the published
// order-of-magnitude op counts; they scale Mop/s identically for every
// topology and never change who wins.

NasResult run_ep(Machine& m, const NasOptions&) {
  // Class B: 2^30 Gaussian pairs, ~100 ops each; communication is three
  // 16-byte allreduces (counts + sums) — essentially nothing.
  NasResult r{"EP", 0, 107.4, 0, 0};
  m.compute(107.4e9 / m.num_ranks());
  r.comm_seconds += m.allreduce(16);
  r.comm_seconds += m.allreduce(16);
  r.comm_seconds += m.allreduce(16);
  return r;
}

NasResult run_is(Machine& m, const NasOptions& o) {
  // Class A: N = 2^23 keys, 10 rank-and-bucket iterations. Per iteration:
  // an allreduce of the bucket histogram, a small alltoall of per-target
  // counts, and the key redistribution alltoallv (~N*4 bytes total).
  const std::uint64_t total_keys = 1ull << 23;
  const KernelStats stats{2.4, 10};
  const std::uint32_t iters = scaled_iters(stats.iters, o.iteration_fraction);
  NasResult r{"IS", 0, stats.gflops_total * iters / stats.iters, 0, 0};

  const std::uint32_t p = m.num_ranks();
  const std::uint64_t keys_per_pair = std::max<std::uint64_t>(1, total_keys / p / p);
  for (std::uint32_t it = 0; it < iters; ++it) {
    m.compute(stats.gflops_total * 1e9 / stats.iters / p);
    r.comm_seconds += m.allreduce(4096);       // bucket histogram
    r.comm_seconds += m.alltoall(4);           // send counts
    r.comm_seconds += m.alltoall(keys_per_pair * 4);  // key exchange
  }
  r.comm_seconds += m.allreduce(16);  // final verification
  return r;
}

NasResult run_ft(Machine& m, const NasOptions& o) {
  // Class A: 256 x 256 x 128 complex grid, 6 evolve/inverse-FFT steps, one
  // full-volume transpose alltoall each (plus the forward FFT's).
  const std::uint64_t grid_bytes = 256ull * 256 * 128 * 16;
  const KernelStats stats{25.0, 6};
  const std::uint32_t iters = scaled_iters(stats.iters, o.iteration_fraction);
  NasResult r{"FT", 0, stats.gflops_total * (iters + 1.0) / (stats.iters + 1), 0, 0};

  const std::uint32_t p = m.num_ranks();
  const std::uint64_t bytes_per_pair = std::max<std::uint64_t>(1, grid_bytes / p / p);
  // Forward transform.
  m.compute(stats.gflops_total * 1e9 / (stats.iters + 1) / p);
  r.comm_seconds += m.alltoall(bytes_per_pair);
  for (std::uint32_t it = 0; it < iters; ++it) {
    m.compute(stats.gflops_total * 1e9 / (stats.iters + 1) / p);
    r.comm_seconds += m.alltoall(bytes_per_pair);
    r.comm_seconds += m.allreduce(16);  // checksum
  }
  return r;
}

NasResult run_mg(Machine& m, const NasOptions& o) {
  // Class B: 256^3 grid, 20 V-cycles. At each level the 3-D halo exchange
  // runs with partners at growing rank strides once the grid becomes
  // coarser than the process grid — the "long-distance communication" the
  // paper credits for the proposed topology's MG win.
  const std::uint32_t global = 256;
  const KernelStats stats{58.0, 20};
  const std::uint32_t iters = scaled_iters(stats.iters, o.iteration_fraction);
  NasResult r{"MG", 0, stats.gflops_total * iters / stats.iters, 0, 0};

  const std::uint32_t p = m.num_ranks();
  const Grid3 g = grid3(p);
  const std::uint32_t dims[3] = {g.px, g.py, g.pz};
  const std::uint32_t stride_of[3] = {1, g.px, g.px * g.py};

  auto coord = [&](Rank rank, int axis) {
    return (rank / stride_of[axis]) % dims[axis];
  };

  // One halo exchange at grid size `size`, repeated `rounds` times.
  auto halo = [&](std::uint32_t size, int rounds) {
    for (int axis = 0; axis < 3; ++axis) {
      // Ranks active in this axis: when the global grid has fewer planes
      // than processes, only every `hop`-th rank participates and its
      // partner is `hop` ranks away.
      const std::uint32_t hop = std::max(1u, dims[axis] / std::max(1u, size));
      // Local face area = product of the other two local extents.
      std::uint64_t face = 8;  // bytes per point
      for (int other = 0; other < 3; ++other) {
        if (other == axis) continue;
        face *= std::max(1u, size / dims[other]);
      }
      std::vector<Message> up, down;
      for (Rank rank = 0; rank < p; ++rank) {
        const std::uint32_t c = coord(rank, axis);
        if (c % hop != 0) continue;
        const std::uint32_t cu = (c + hop) % dims[axis];
        const std::uint32_t cd = (c + dims[axis] - hop) % dims[axis];
        if (cu == c) continue;
        const Rank up_rank = rank + (cu - c) * stride_of[axis];
        const Rank down_rank = rank + (cd - c) * stride_of[axis];
        up.push_back({rank, up_rank, face});
        down.push_back({rank, down_rank, face});
      }
      for (int round = 0; round < rounds; ++round) {
        r.comm_seconds += m.phase(up);
        r.comm_seconds += m.phase(down);
      }
    }
  };

  for (std::uint32_t it = 0; it < iters; ++it) {
    m.compute(stats.gflops_total * 1e9 / stats.iters / p);
    // Down the V-cycle (restrict) and back up (prolongate + smooth).
    for (std::uint32_t size = global; size >= 4; size /= 2) halo(size, 1);
    for (std::uint32_t size = 4; size <= global; size *= 2) halo(size, 2);
    r.comm_seconds += m.allreduce(16);  // residual norm
  }
  return r;
}

NasResult run_cg(Machine& m, const NasOptions& o) {
  // Class B: na = 75000, 75 iterations on a 32x32 process grid. Each
  // matvec reduces partial sums across the row via log2(q) exchanges at
  // doubling rank distances, then exchanges with the transpose rank — the
  // "irregular" long-distance pattern the paper highlights for CG.
  const std::uint64_t na = 75000;
  const KernelStats stats{54.7, 75};
  const std::uint32_t iters = scaled_iters(stats.iters, o.iteration_fraction);
  NasResult r{"CG", 0, stats.gflops_total * iters / stats.iters, 0, 0};

  const std::uint32_t p = m.num_ranks();
  const std::uint32_t q = grid2_side(p);
  const std::uint64_t segment = na / q * 8;

  std::vector<Message> transpose;
  for (Rank rank = 0; rank < p; ++rank) {
    const std::uint32_t row = rank / q, col = rank % q;
    const Rank partner = col * q + row;
    if (partner != rank) transpose.push_back({rank, partner, segment});
  }

  for (std::uint32_t it = 0; it < iters; ++it) {
    m.compute(stats.gflops_total * 1e9 / stats.iters / p);
    for (std::uint32_t stride = 1; stride < q; stride <<= 1) {
      std::vector<Message> round;
      round.reserve(p);
      for (Rank rank = 0; rank < p; ++rank) {
        const std::uint32_t row = rank / q, col = rank % q;
        const Rank partner = row * q + (col ^ stride);
        round.push_back({rank, partner, segment});
      }
      r.comm_seconds += m.phase(round);
    }
    r.comm_seconds += m.phase(transpose);
    r.comm_seconds += m.allreduce(16);  // rho / alpha dot products
    r.comm_seconds += m.allreduce(16);
  }
  return r;
}

NasResult run_lu(Machine& m, const NasOptions& o) {
  // Class B: 102^3, 250 SSOR iterations on a 32x32 grid. Each iteration
  // performs a lower and an upper triangular sweep; the wavefront crosses
  // the grid diagonally, each step forwarding small block rows east/south
  // (then west/north on the way back).
  const KernelStats stats{355.0, 250};
  const std::uint32_t iters = scaled_iters(stats.iters, o.iteration_fraction);
  NasResult r{"LU", 0, stats.gflops_total * iters / stats.iters, 0, 0};

  const std::uint32_t p = m.num_ranks();
  const std::uint32_t q = grid2_side(p);
  const std::uint64_t block = 102ull / q * 102 * 5 * 8;  // pencil face * 5 vars

  auto sweep = [&](int dir) {  // +1: toward SE, -1: toward NW
    for (std::uint32_t diag = 0; diag + 1 < 2 * q; ++diag) {
      const std::uint32_t d = dir > 0 ? diag : 2 * q - 2 - diag;
      std::vector<Message> wave;
      for (std::uint32_t row = 0; row < q; ++row) {
        if (d < row || d - row >= q) continue;
        const std::uint32_t col = d - row;
        const Rank rank = row * q + col;
        const std::int64_t dr = dir, dc = dir;
        if (row + dr < q && static_cast<std::int64_t>(row) + dr >= 0) {
          wave.push_back({rank, static_cast<Rank>((row + dr) * q + col), block});
        }
        if (col + dc < q && static_cast<std::int64_t>(col) + dc >= 0) {
          wave.push_back({rank, static_cast<Rank>(row * q + (col + dc)), block});
        }
      }
      r.comm_seconds += m.phase(wave);
    }
  };

  for (std::uint32_t it = 0; it < iters; ++it) {
    m.compute(stats.gflops_total * 1e9 / stats.iters / p);
    sweep(+1);  // lower-triangular wavefront
    sweep(-1);  // upper-triangular wavefront
    if (it % 5 == 0) r.comm_seconds += m.allreduce(40);  // residual norms
  }
  return r;
}

// SP and BT share the multipartition face-exchange skeleton; they differ
// in iteration count and per-face volume (BT moves 5x5 blocks).
NasResult run_multipartition(Machine& m, const NasOptions& o, const char* name,
                             const KernelStats& stats, std::uint64_t face_bytes) {
  const std::uint32_t iters = scaled_iters(stats.iters, o.iteration_fraction);
  NasResult r{name, 0, stats.gflops_total * iters / stats.iters, 0, 0};
  const std::uint32_t p = m.num_ranks();
  const std::uint32_t q = grid2_side(p);

  auto neighbor_phase = [&](std::int64_t drow, std::int64_t dcol) {
    std::vector<Message> round;
    round.reserve(p);
    for (Rank rank = 0; rank < p; ++rank) {
      const std::int64_t row = rank / q, col = rank % q;
      const auto nrow = static_cast<std::uint32_t>((row + drow + q) % q);
      const auto ncol = static_cast<std::uint32_t>((col + dcol + q) % q);
      round.push_back({rank, nrow * q + ncol, face_bytes});
    }
    r.comm_seconds += m.phase(round);
  };

  for (std::uint32_t it = 0; it < iters; ++it) {
    m.compute(stats.gflops_total * 1e9 / stats.iters / p);
    // Three directional solves, each shifting faces both ways, plus the
    // diagonal multipartition handoff.
    neighbor_phase(0, +1);
    neighbor_phase(0, -1);
    neighbor_phase(+1, 0);
    neighbor_phase(-1, 0);
    neighbor_phase(+1, +1);
    neighbor_phase(-1, -1);
  }
  return r;
}

}  // namespace

const char* nas_kernel_name(NasKernel kernel) {
  switch (kernel) {
    case NasKernel::kEP: return "EP";
    case NasKernel::kIS: return "IS";
    case NasKernel::kFT: return "FT";
    case NasKernel::kMG: return "MG";
    case NasKernel::kCG: return "CG";
    case NasKernel::kLU: return "LU";
    case NasKernel::kSP: return "SP";
    case NasKernel::kBT: return "BT";
  }
  return "?";
}

std::vector<NasKernel> all_nas_kernels() {
  return {NasKernel::kBT, NasKernel::kCG, NasKernel::kEP, NasKernel::kFT,
          NasKernel::kIS, NasKernel::kLU, NasKernel::kMG, NasKernel::kSP};
}

NasResult run_nas_kernel(Machine& machine, NasKernel kernel, const NasOptions& options) {
  machine.reset();
  NasResult result;
  switch (kernel) {
    case NasKernel::kEP: result = run_ep(machine, options); break;
    case NasKernel::kIS: result = run_is(machine, options); break;
    case NasKernel::kFT: result = run_ft(machine, options); break;
    case NasKernel::kMG: result = run_mg(machine, options); break;
    case NasKernel::kCG: result = run_cg(machine, options); break;
    case NasKernel::kLU: result = run_lu(machine, options); break;
    case NasKernel::kSP:
      result = run_multipartition(machine, options, "SP", {447.0, 400},
                                  102ull / 32 * 102 * 5 * 8);
      break;
    case NasKernel::kBT:
      result = run_multipartition(machine, options, "BT", {721.0, 200},
                                  102ull / 32 * 102 * 25 * 8);
      break;
  }
  result.seconds = machine.now();
  result.mops_per_second = result.gflops_total * 1e3 / result.seconds;
  return result;
}

}  // namespace orp

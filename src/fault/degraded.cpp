#include "fault/degraded.hpp"

#include "common/require.hpp"
#include "obs/metrics.hpp"

namespace orp {

DegradedGraph apply_faults(const HostSwitchGraph& g, const FaultSet& faults) {
  DegradedGraph out{g, std::vector<std::uint8_t>(g.num_switches(), 0), 0, 0, 0};

  for (const SwitchId s : faults.failed_switches) {
    ORP_REQUIRE(s < g.num_switches(), "failed switch id out of range");
    out.switch_dead[s] = 1;
  }

  // Dead switches drop every incident link; explicit link faults drop the
  // named cable if it still exists (a link listed twice, or on an already
  // dead switch, is not double-counted).
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    if (!out.switch_dead[s]) continue;
    const auto span = out.graph.neighbors(s);
    const std::vector<SwitchId> frozen(span.begin(), span.end());
    for (const SwitchId t : frozen) {
      out.graph.remove_switch_edge(s, t);
      ++out.removed_links;
    }
  }
  for (const auto& [a, b] : faults.failed_links) {
    ORP_REQUIRE(a < g.num_switches() && b < g.num_switches() && a != b,
                "failed link endpoints out of range");
    if (out.graph.has_switch_edge(a, b)) {
      out.graph.remove_switch_edge(a, b);
      ++out.removed_links;
    }
  }

  for (HostId h = 0; h < g.num_hosts(); ++h) {
    const SwitchId s = out.graph.host_switch(h);
    if (s != HostSwitchGraph::kDetached && out.switch_dead[s]) {
      out.graph.detach_host(h);
      ++out.dead_hosts;
    } else if (s != HostSwitchGraph::kDetached) {
      ++out.live_hosts;
    }
  }
  return out;
}

ResilienceReport evaluate_degraded(const HostSwitchGraph& g,
                                   const FaultSet& faults, ThreadPool* pool) {
  static obs::Counter& evals =
      obs::Registry::global().counter("fault.degraded_evals");
  evals.inc();

  const DegradedGraph degraded = apply_faults(g, faults);
  const HostMetrics metrics =
      compute_live_host_metrics(degraded.graph, AsplKernel::kAuto, pool);

  ResilienceReport report;
  report.live_hosts = degraded.live_hosts;
  report.dead_hosts = degraded.dead_hosts;
  report.failed_switches =
      static_cast<std::uint32_t>(faults.failed_switches.size());
  report.removed_links = degraded.removed_links;
  report.connected_pairs = metrics.connected_pairs;
  report.unreachable_pairs = metrics.unreachable_pairs;
  const std::uint64_t all_pairs =
      std::uint64_t{g.num_hosts()} * (g.num_hosts() - 1) / 2;
  report.dead_pairs =
      all_pairs - report.connected_pairs - report.unreachable_pairs;
  report.h_aspl = metrics.h_aspl;
  report.diameter = metrics.diameter;
  report.live_hosts_connected = metrics.connected;
  report.fault_fingerprint = faults.fingerprint();
  return report;
}

}  // namespace orp

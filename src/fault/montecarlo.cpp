#include "fault/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/prng.hpp"
#include "common/require.hpp"
#include "hsg/metrics.hpp"

namespace orp {
namespace {

double percentile(std::vector<double> sorted_copy, double q) {
  // Nearest-rank on a sorted sample; callers pass by value so the sort is
  // contained here.
  std::sort(sorted_copy.begin(), sorted_copy.end());
  const std::size_t k = sorted_copy.size();
  const std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(k - 1) + 0.5);
  return sorted_copy[std::min(idx, k - 1)];
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint32_t trial) {
  std::uint64_t state = base_seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1));
  return splitmix64_next(state);
}

ResilienceCurvePoint sweep_point(const HostSwitchGraph& g,
                                 const FaultSpec& spec, std::uint32_t trials,
                                 ThreadPool* pool) {
  ORP_REQUIRE(trials > 0, "sweep needs at least one trial");
  const HostMetrics healthy = compute_host_metrics(g, AsplKernel::kAuto, pool);
  ORP_REQUIRE(healthy.connected, "resilience sweep needs a connected baseline");

  ResilienceCurvePoint point;
  point.trials = trials;
  std::vector<double> inflation;
  inflation.reserve(trials);
  double reach_sum = 0.0;
  double dead_sum = 0.0;
  point.min_reachable_fraction = 1.0;

  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    FaultSpec trial_spec = spec;
    trial_spec.seed = trial_seed(spec.seed, trial);
    const ResilienceReport report =
        evaluate_degraded(g, draw_faults(g, trial_spec), pool);

    if (!report.live_hosts_connected) ++point.partitioned_trials;
    inflation.push_back(report.h_aspl / healthy.h_aspl);
    const double reach = report.reachable_fraction(g.num_hosts());
    reach_sum += reach;
    point.min_reachable_fraction = std::min(point.min_reachable_fraction, reach);
    dead_sum += static_cast<double>(report.dead_hosts) /
                static_cast<double>(g.num_hosts());
  }

  point.p50_haspl_inflation = percentile(inflation, 0.5);
  point.p90_haspl_inflation = percentile(inflation, 0.9);
  point.max_haspl_inflation = *std::max_element(inflation.begin(), inflation.end());
  point.mean_reachable_fraction = reach_sum / trials;
  point.mean_dead_host_fraction = dead_sum / trials;
  return point;
}

}  // namespace orp

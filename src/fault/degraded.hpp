#pragma once
// Degraded-graph construction and resilience reporting.
//
// apply_faults turns (healthy graph, fault set) into the surviving
// subgraph: failed switch-switch edges are removed, dead switches lose all
// their links, and hosts on dead switches are detached (their endpoints
// are gone). evaluate_degraded then runs the connected-pairs metrics over
// the surviving attached hosts via compute_live_host_metrics and packages
// the result — h-ASPL inflation, diameter, reachability breakdown — into a
// ResilienceReport. Reports are deterministic in (graph, fault set); the
// Monte-Carlo runner aggregates them into degradation curves.

#include <cstdint>
#include <vector>

#include "fault/model.hpp"
#include "hsg/host_switch_graph.hpp"
#include "hsg/metrics.hpp"

namespace orp {

class ThreadPool;

/// The surviving subgraph after a fault set lands.
struct DegradedGraph {
  HostSwitchGraph graph;                 ///< survivors; dead hosts detached
  std::vector<std::uint8_t> switch_dead; ///< per switch
  std::uint32_t live_hosts = 0;          ///< hosts still attached
  std::uint32_t dead_hosts = 0;          ///< hosts whose switch died
  std::uint32_t removed_links = 0;       ///< switch-switch edges removed
};

DegradedGraph apply_faults(const HostSwitchGraph& g, const FaultSet& faults);

/// Degradation summary of one fault draw. `h_aspl`/`diameter` follow the
/// HostMetrics connected-pairs contract over the *live* (still-attached)
/// hosts; pairs involving a dead host are counted in `dead_pairs`, live
/// pairs with no surviving route in `unreachable_pairs`.
struct ResilienceReport {
  std::uint32_t live_hosts = 0;
  std::uint32_t dead_hosts = 0;
  std::uint32_t failed_switches = 0;
  std::uint32_t removed_links = 0;       ///< includes links of dead switches
  std::uint64_t connected_pairs = 0;     ///< live pairs with a route
  std::uint64_t unreachable_pairs = 0;   ///< live pairs without a route
  std::uint64_t dead_pairs = 0;          ///< pairs involving a dead host
  double h_aspl = 0.0;                   ///< over connected live pairs
  std::uint32_t diameter = 0;
  /// True when every live host reaches every other live host.
  bool live_hosts_connected = true;
  std::uint64_t fault_fingerprint = 0;   ///< FaultSet::fingerprint()

  /// Fraction of all C(n,2) original host pairs that still communicate.
  double reachable_fraction(std::uint32_t original_hosts) const noexcept {
    const std::uint64_t pairs =
        std::uint64_t{original_hosts} * (original_hosts - 1) / 2;
    return pairs ? static_cast<double>(connected_pairs) /
                       static_cast<double>(pairs)
                 : 1.0;
  }
};

ResilienceReport evaluate_degraded(const HostSwitchGraph& g,
                                   const FaultSet& faults,
                                   ThreadPool* pool = nullptr);

}  // namespace orp

#include "fault/model.hpp"

#include <algorithm>

#include "common/prng.hpp"
#include "common/require.hpp"

namespace orp {
namespace {

// Distinct constants XORed into the seed give each category an independent
// stream: adding a cabinet outage never perturbs which links fail.
constexpr std::uint64_t kLinkStream = 0x6c696e6b73747265ULL;
constexpr std::uint64_t kSwitchStream = 0x7377697463687374ULL;
constexpr std::uint64_t kCabinetStream = 0x636162696e657473ULL;

void require_rate(double rate, const char* what) {
  ORP_REQUIRE(rate >= 0.0 && rate <= 1.0, what);
}

}  // namespace

std::uint64_t FaultSet::fingerprint() const noexcept {
  std::uint64_t state = 0x8f1bbcdc5b9cca5fULL;
  auto mix = [&state](std::uint64_t v) {
    state ^= v;
    (void)splitmix64_next(state);
  };
  mix(failed_links.size());
  for (const auto& [a, b] : failed_links) {
    mix((std::uint64_t{a} << 32) | b);
  }
  mix(failed_switches.size());
  for (const SwitchId s : failed_switches) mix(s);
  mix(failed_cabinets.size());
  for (const std::uint32_t c : failed_cabinets) mix(c);
  return state;
}

std::uint32_t num_cabinets(const HostSwitchGraph& g, const FaultSpec& spec) {
  const std::uint32_t per = spec.switches_per_cabinet ? spec.switches_per_cabinet : 1;
  return (g.num_switches() + per - 1) / per;
}

FaultSet draw_faults(const HostSwitchGraph& g, const FaultSpec& spec) {
  require_rate(spec.link_failure_rate, "link failure rate must be in [0,1]");
  require_rate(spec.switch_failure_rate, "switch failure rate must be in [0,1]");
  require_rate(spec.cabinet_outage_rate, "cabinet outage rate must be in [0,1]");

  FaultSet out;
  const std::uint32_t m = g.num_switches();

  // Canonical edge order (ascending a, then ascending b) decouples the draw
  // from the graph's internal adjacency ordering.
  if (spec.link_failure_rate > 0.0) {
    Xoshiro256 rng(spec.seed ^ kLinkStream);
    std::vector<SwitchId> nbrs;
    for (SwitchId a = 0; a < m; ++a) {
      const auto span = g.neighbors(a);
      nbrs.assign(span.begin(), span.end());
      std::sort(nbrs.begin(), nbrs.end());
      for (const SwitchId b : nbrs) {
        if (b <= a) continue;
        if (rng.bernoulli(spec.link_failure_rate)) {
          out.failed_links.emplace_back(a, b);
        }
      }
    }
  }

  if (spec.switch_failure_rate > 0.0) {
    Xoshiro256 rng(spec.seed ^ kSwitchStream);
    for (SwitchId s = 0; s < m; ++s) {
      if (rng.bernoulli(spec.switch_failure_rate)) {
        out.failed_switches.push_back(s);
      }
    }
  }

  if (spec.cabinet_outage_rate > 0.0) {
    Xoshiro256 rng(spec.seed ^ kCabinetStream);
    const std::uint32_t cabinets = num_cabinets(g, spec);
    const std::uint32_t per =
        spec.switches_per_cabinet ? spec.switches_per_cabinet : 1;
    for (std::uint32_t c = 0; c < cabinets; ++c) {
      if (!rng.bernoulli(spec.cabinet_outage_rate)) continue;
      out.failed_cabinets.push_back(c);
      const SwitchId first = c * per;
      const SwitchId last = std::min(m, first + per);
      for (SwitchId s = first; s < last; ++s) {
        out.failed_switches.push_back(s);
      }
    }
  }

  std::sort(out.failed_switches.begin(), out.failed_switches.end());
  out.failed_switches.erase(
      std::unique(out.failed_switches.begin(), out.failed_switches.end()),
      out.failed_switches.end());
  // Links already come out sorted by construction order.
  return out;
}

}  // namespace orp

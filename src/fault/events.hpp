#pragma once
// Turns a drawn FaultSet into a timed event schedule for the simulator.
//
// The draw (which elements fail) and the schedule (when they fail) use
// independent seeds, so the same fault set can strike at different times
// across experiments while staying bit-reproducible: identical
// (fault set, start, window, seed) yields an identical schedule.

#include <cstdint>
#include <vector>

#include "fault/model.hpp"
#include "sim/fault.hpp"

namespace orp {

/// Spreads the fault set over [start, start + window): every failed link
/// and every failed switch gets a deterministic uniform timestamp. Events
/// return sorted by time; window == 0 makes them all strike at `start`.
std::vector<FaultEvent> schedule_fault_events(const FaultSet& faults,
                                              double start, double window,
                                              std::uint64_t seed);

}  // namespace orp

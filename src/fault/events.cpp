#include "fault/events.hpp"

#include <algorithm>
#include <cmath>

#include "common/prng.hpp"
#include "common/require.hpp"

namespace orp {

std::vector<FaultEvent> schedule_fault_events(const FaultSet& faults,
                                              double start, double window,
                                              std::uint64_t seed) {
  ORP_REQUIRE(std::isfinite(start) && start >= 0.0,
              "schedule start must be finite and non-negative");
  ORP_REQUIRE(std::isfinite(window) && window >= 0.0,
              "schedule window must be finite and non-negative");

  Xoshiro256 rng(seed ^ 0x7363686564756c65ULL);
  std::vector<FaultEvent> events;
  events.reserve(faults.failed_links.size() + faults.failed_switches.size());
  for (const auto& [a, b] : faults.failed_links) {
    events.push_back(
        {start + rng.uniform() * window, FaultEvent::Kind::kLinkDown, a, b});
  }
  for (const SwitchId s : faults.failed_switches) {
    events.push_back(
        {start + rng.uniform() * window, FaultEvent::Kind::kSwitchDown, s, 0});
  }
  std::stable_sort(
      events.begin(), events.end(),
      [](const FaultEvent& x, const FaultEvent& y) { return x.time < y.time; });
  return events;
}

}  // namespace orp

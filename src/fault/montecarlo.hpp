#pragma once
// Monte-Carlo resilience aggregation: K independent fault draws under one
// spec, summarized into the percentile degradation statistics the
// abl_fault_resilience bench plots as curves. Trial seeds derive
// deterministically from the spec seed, so a sweep is reproducible from a
// single number.

#include <cstdint>

#include "fault/degraded.hpp"
#include "fault/model.hpp"
#include "hsg/host_switch_graph.hpp"

namespace orp {

class ThreadPool;

/// Aggregated degradation at one failure-rate point.
struct ResilienceCurvePoint {
  std::uint32_t trials = 0;
  /// Trials where at least one *live* host pair lost all routes.
  std::uint32_t partitioned_trials = 0;
  /// h-ASPL inflation = degraded h-ASPL / healthy h-ASPL over live pairs
  /// (+infinity when a trial leaves no connected pair). Percentiles over
  /// the trial distribution.
  double p50_haspl_inflation = 1.0;
  double p90_haspl_inflation = 1.0;
  double max_haspl_inflation = 1.0;
  /// Fraction of the original C(n,2) host pairs still communicating.
  double mean_reachable_fraction = 1.0;
  double min_reachable_fraction = 1.0;
  /// Fraction of hosts whose switch died, averaged over trials.
  double mean_dead_host_fraction = 0.0;
};

/// Runs `trials` independent draws of `spec` against `g` (trial i uses a
/// seed derived from spec.seed and i) and aggregates the reports. The
/// healthy graph must be connected.
ResilienceCurvePoint sweep_point(const HostSwitchGraph& g,
                                 const FaultSpec& spec, std::uint32_t trials,
                                 ThreadPool* pool = nullptr);

/// The derived per-trial seed, exposed so tests can reproduce any single
/// trial of a sweep exactly.
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint32_t trial);

}  // namespace orp

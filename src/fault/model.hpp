#pragma once
// Deterministic seeded fault models for host-switch graphs.
//
// Three failure categories, mirroring how production interconnects break:
//   - link failures: each switch-switch cable fails i.i.d. (flapping or
//     severed cables, the dominant failure mode);
//   - switch failures: each switch fails i.i.d. (firmware wedge, PSU);
//   - cabinet outages: each cabinet fails i.i.d. and takes every switch it
//     houses down with it (rack PDU / breaker loss). Cabinet membership
//     follows the src/cost floorplan: cabinets are laid out row-major with
//     consecutive switch ids per cabinet, so a cabinet outage is a
//     *spatially correlated* fault under the physical layout.
//
// Determinism contract (see docs/resilience.md): draw_faults consumes one
// independent PRNG sub-stream per category, each derived from the spec's
// seed, and iterates links/switches/cabinets in canonical ascending order.
// Identical (graph, spec) therefore yields a bit-identical FaultSet — on
// any platform, regardless of how the graph's adjacency lists are ordered
// internally — which `FaultSet::fingerprint()` makes easy to assert.

#include <cstdint>
#include <utility>
#include <vector>

#include "hsg/host_switch_graph.hpp"

namespace orp {

/// Parameters of one random fault draw. Rates are per-element failure
/// probabilities in [0, 1]; a default-constructed spec draws no faults.
struct FaultSpec {
  double link_failure_rate = 0.0;    ///< per switch-switch cable
  double switch_failure_rate = 0.0;  ///< per switch
  double cabinet_outage_rate = 0.0;  ///< per cabinet (kills its switches)
  /// Consecutive switch ids housed per cabinet. The cost floorplan puts one
  /// switch per cabinet; values > 1 model denser racking (and make cabinet
  /// outages correlated multi-switch events). 0 is treated as 1.
  std::uint32_t switches_per_cabinet = 1;
  std::uint64_t seed = 1;
};

/// One concrete fault draw. All vectors are sorted ascending (links as
/// a < b pairs) and deduplicated; `failed_switches` already includes every
/// switch of each failed cabinet.
struct FaultSet {
  std::vector<std::pair<SwitchId, SwitchId>> failed_links;
  std::vector<SwitchId> failed_switches;
  std::vector<std::uint32_t> failed_cabinets;

  bool empty() const noexcept {
    return failed_links.empty() && failed_switches.empty();
  }

  /// Order-sensitive 64-bit digest of the full fault set; equal sets have
  /// equal fingerprints, and the determinism tests pin exact values.
  std::uint64_t fingerprint() const noexcept;
};

/// Cabinet housing switch `s` under the spec's racking density.
inline std::uint32_t cabinet_of_switch(SwitchId s, const FaultSpec& spec) {
  const std::uint32_t per = spec.switches_per_cabinet ? spec.switches_per_cabinet : 1;
  return s / per;
}

/// Number of cabinets the graph occupies under the spec's racking density.
std::uint32_t num_cabinets(const HostSwitchGraph& g, const FaultSpec& spec);

/// Draws a fault set for `g`. Deterministic in (g's topology, spec); see
/// the contract above. Rates must be within [0, 1].
FaultSet draw_faults(const HostSwitchGraph& g, const FaultSpec& spec);

}  // namespace orp

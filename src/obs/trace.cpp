#ifndef ORP_OBS_DISABLED

#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace orp::obs {
namespace {

// Formats nanoseconds as microseconds with 3 decimals ("12.345"), the unit
// Chrome's trace viewer expects in "ts".
void append_ts_us(std::string& out, std::uint64_t ts_ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ts_ns / 1000),
                static_cast<unsigned long long>(ts_ns % 1000));
  out += buf;
}

void append_event_json(std::string& out, const TraceEvent& e) {
  out += "{\"name\":\"";
  out += json_escape(e.name);
  out += "\",\"cat\":\"";
  out += e.category.empty() ? "orp" : json_escape(e.category);
  out += "\",\"ph\":\"";
  out += static_cast<char>(e.phase);
  out += "\",\"ts\":";
  append_ts_us(out, e.ts_ns);
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(e.tid);
  if (e.flow_id != 0) {
    out += ",\"id\":";
    out += std::to_string(e.flow_id);
    // Flow heads bind to the enclosing slice ("bp":"e"), the modern binding
    // Perfetto expects for same-process flows.
    if (e.phase == TraceEvent::Phase::kFlowEnd) out += ",\"bp\":\"e\"";
  }
  if (!e.args.empty()) {
    out += ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : e.args) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += json_escape(key);
      out += "\":";
      out += value;
    }
    out += '}';
  }
  out += "}\n";
}

// Per-thread count of live active Spans; flows are only attributable when
// the producer sits inside one.
thread_local int t_span_depth = 0;

std::string format_double_json(double value) {
  // JSON has no inf/nan; clamp to a string so the line stays parseable.
  if (value != value) return "\"nan\"";
  if (value > 1e308) return "\"inf\"";
  if (value < -1e308) return "\"-inf\"";
  std::ostringstream os;
  os.precision(9);
  os << value;
  return os.str();
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // leaked: outlives static spans
  return *instance;
}

Tracer::~Tracer() { stop(); }

std::uint32_t Tracer::thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t Tracer::now_ns() const noexcept {
  if (!enabled()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

bool Tracer::start(const std::string& path) {
  std::lock_guard lock(mutex_);
  if (enabled_.load(std::memory_order_relaxed)) return true;  // already running
  auto* file = new std::ofstream(path, std::ios::out | std::ios::trunc);
  if (!*file) {
    delete file;
    return false;
  }
  file_ = file;
  buffer_.clear();
  stopping_ = false;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
  writer_ = std::thread([this] { writer_main(); });
  return true;
}

void Tracer::stop(const std::vector<std::string>& trailer_lines) {
  std::thread writer;
  {
    std::lock_guard lock(mutex_);
    if (!enabled_.load(std::memory_order_relaxed)) return;
    enabled_.store(false, std::memory_order_release);
    stopping_ = true;
    writer = std::move(writer_);
  }
  cv_.notify_all();
  if (writer.joinable()) writer.join();

  // The writer has exited; whatever it left behind plus the trailer is ours.
  std::lock_guard lock(mutex_);
  auto* file = static_cast<std::ofstream*>(file_);
  if (file) {
    write_events(buffer_);
    buffer_.clear();
    for (const std::string& line : trailer_lines) *file << line << '\n';
    file->flush();
    delete file;
    file_ = nullptr;
  }
}

void Tracer::emit(TraceEvent event) {
  std::lock_guard lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  buffer_.push_back(std::move(event));
  if (buffer_.size() == 1) cv_.notify_one();
}

void Tracer::counter(std::string_view name, double value, std::string_view category) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.category = std::string(category);
  e.phase = TraceEvent::Phase::kCounter;
  e.ts_ns = now_ns();
  e.tid = thread_id();
  e.args.emplace_back("value", format_double_json(value));
  emit(std::move(e));
}

void Tracer::writer_main() {
  std::vector<TraceEvent> draining;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_.wait_for(lock, std::chrono::milliseconds(50),
                   [this] { return stopping_ || !buffer_.empty(); });
      if (stopping_) return;  // stop() drains the remainder
      draining.swap(buffer_);
    }
    // File IO happens outside the lock so emitters never wait on disk;
    // file_ is stable while the writer lives (stop() deletes it only
    // after joining this thread).
    if (!draining.empty()) {
      write_events(draining);
      draining.clear();
    }
  }
}

void Tracer::write_events(const std::vector<TraceEvent>& events) {
  auto* file = static_cast<std::ofstream*>(file_);
  if (!file) return;
  std::string out;
  out.reserve(events.size() * 96);
  for (const TraceEvent& e : events) append_event_json(out, e);
  *file << out;
}

void Span::emit_begin() {
  ++t_span_depth;
  Tracer& tracer = Tracer::global();
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.phase = TraceEvent::Phase::kBegin;
  e.ts_ns = tracer.now_ns();
  e.tid = Tracer::thread_id();
  tracer.emit(std::move(e));
}

void Span::emit_end() {
  --t_span_depth;
  Tracer& tracer = Tracer::global();
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.phase = TraceEvent::Phase::kEnd;
  e.ts_ns = tracer.now_ns();
  e.tid = Tracer::thread_id();
  e.args = std::move(args_);
  tracer.emit(std::move(e));
}

bool in_span() noexcept { return t_span_depth > 0; }

std::uint64_t flow_begin(const char* name, const char* category) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled() || t_span_depth <= 0) return 0;
  static std::atomic<std::uint64_t> next_id{1};
  const std::uint64_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TraceEvent::Phase::kFlowStart;
  e.ts_ns = tracer.now_ns();
  e.tid = Tracer::thread_id();
  e.flow_id = id;
  tracer.emit(std::move(e));
  return id;
}

void flow_end(std::uint64_t id, const char* name, const char* category) {
  if (id == 0) return;
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TraceEvent::Phase::kFlowEnd;
  e.ts_ns = tracer.now_ns();
  e.tid = Tracer::thread_id();
  e.flow_id = id;
  tracer.emit(std::move(e));
}

void Span::arg(std::string_view key, double value) {
  if (active_) args_.emplace_back(std::string(key), format_double_json(value));
}

void Span::arg(std::string_view key, std::int64_t value) {
  if (active_) args_.emplace_back(std::string(key), std::to_string(value));
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (active_) args_.emplace_back(std::string(key), std::to_string(value));
}

void Span::arg(std::string_view key, std::string_view value) {
  if (active_) {
    args_.emplace_back(std::string(key), '"' + json_escape(value) + '"');
  }
}

void Span::arg_json(std::string_view key, std::string value) {
  if (active_) args_.emplace_back(std::string(key), std::move(value));
}

}  // namespace orp::obs

#endif  // ORP_OBS_DISABLED

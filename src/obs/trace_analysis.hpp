#pragma once
// Offline analysis of the JSONL traces this repo records (docs/obs.md):
// the engine behind tools/orp_report. Reads a trace (plus optionally the
// run ledger) and produces
//
//   * a flamegraph-style span profile: per (category, name) count, total
//     time, and SELF time (total minus enclosed children), from the B/E
//     pairing per tid,
//   * counter-series summaries: the snapshot sampler's delta streams
//     (category "snapshot") become totals and rates; sampled level series
//     (annealer temperature, gauges) report first/last/min/max,
//   * flow-event accounting: s/f id pairing across threads,
//   * annealer convergence diagnostics: windowed acceptance rate vs
//     temperature, h-ASPL improvement per second, and stall detection,
//   * network telemetry (the sim's "cat":"net" instants, docs/telemetry.md):
//     per-flow latency attribution with a term-sum residual check, per-link
//     utilization aggregates, and the bottleneck link set per phase.
//
// Analysis is pure and deterministic: the same trace bytes produce the
// same analysis and byte-identical rendered reports. This code does not
// depend on the instrumentation layer, so it builds (and the tests run)
// under ORP_OBS_DISABLED too.

#include <cstdint>
#include <string>
#include <vector>

namespace orp::obs::report {

struct SpanStat {
  std::string category;
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;  ///< sum over instances, children included
  double self_us = 0.0;   ///< sum over instances, children excluded
  double max_us = 0.0;    ///< longest single instance (total time)
};

struct CounterStat {
  std::string category;
  std::string name;
  std::uint64_t samples = 0;
  double first = 0.0, last = 0.0;
  double min = 0.0, max = 0.0;
  double sum = 0.0;       ///< sum of sample values
  bool is_delta = false;  ///< snapshot-sampler stream: values are deltas,
                          ///< so sum is a total and sum/duration is a rate
};

struct ConvergenceWindow {
  double t_end_us = 0.0;       ///< window upper edge
  std::uint64_t samples = 0;   ///< annealer samples inside the window
  double acceptance = 0.0;     ///< mean windowed acceptance rate
  double temperature = 0.0;    ///< mean temperature
  double best_haspl = 0.0;     ///< best-so-far h-ASPL at window end
};

struct Convergence {
  bool present = false;  ///< annealer.* series were found in the trace
  std::uint64_t samples = 0;
  double initial_best = 0.0, final_best = 0.0;
  double improvement_per_s = 0.0;  ///< h-ASPL drop per wall second (>0 improving)
  double last_improvement_us = 0.0;
  std::int64_t last_improvement_iter = -1;  ///< -1 when no iteration series
  double stall_fraction = 0.0;  ///< trailing fraction of the run w/o improvement
  bool stalled = false;         ///< no progress through the trailing half
  std::vector<ConvergenceWindow> windows;
};

// ---- network telemetry (sim/telemetry "net.*" instant events) ------------

/// One flow lifecycle ("net.flow"). The attribution terms are defined so
/// ser + queue + hop + retry + overhead == total (docs/telemetry.md);
/// NetworkAnalysis::max_residual_s reports the worst observed deviation.
struct NetFlow {
  std::uint64_t phase = 0;
  std::uint32_t src = 0, dst = 0;
  std::uint64_t bytes = 0;
  std::uint32_t hops = 0, retries = 0;
  bool failed = false;
  double start_s = 0.0, total_s = 0.0;
  double ser_s = 0.0, queue_s = 0.0, hop_s = 0.0, retry_s = 0.0,
         overhead_s = 0.0;
  double rate_first_bps = 0.0, rate_last_bps = 0.0, rate_mean_bps = 0.0;
};

/// One link in one time bucket ("net.link"); step -1 = whole-phase bucket.
struct NetLink {
  std::uint64_t phase = 0;
  std::int64_t step = -1;
  std::uint32_t link = 0;
  double t0_s = 0.0, t1_s = 0.0;
  double utilization = 0.0;
  std::uint32_t flows = 0;
  double fair_bps = 0.0;
};

/// One communication phase ("net.phase") plus its derived bottleneck set.
struct NetPhase {
  std::uint64_t phase = 0;
  std::uint32_t flows = 0, completed = 0, failed = 0, retried = 0, steps = 0;
  double start_s = 0.0, elapsed_s = 0.0, transfer_s = 0.0;
  double max_utilization = 0.0;
  /// Links within 5% of the phase's peak utilization (at most 6, most
  /// utilized first), from the phase-bucket link samples.
  std::vector<std::uint32_t> bottleneck_links;
};

/// Per-link aggregate over every sample that mentions the link.
struct NetLinkStat {
  std::uint32_t link = 0;
  std::uint64_t samples = 0;
  double util_mean = 0.0, util_max = 0.0;
  std::uint32_t flows_max = 0;
  double fair_min_bps = 0.0;
};

struct NetworkAnalysis {
  bool present = false;  ///< any net.* record was found in the trace
  std::vector<NetFlow> flows;        ///< sorted (phase, src, dst)
  std::vector<NetLink> link_samples; ///< sorted (phase, step, link)
  std::vector<NetPhase> phases;      ///< sorted by phase
  std::vector<NetLinkStat> links;    ///< sorted by mean utilization desc
  std::uint64_t completed = 0, failed = 0, retried = 0;
  double sum_total_s = 0.0, sum_ser_s = 0.0, sum_queue_s = 0.0,
         sum_hop_s = 0.0, sum_retry_s = 0.0, sum_overhead_s = 0.0;
  double max_total_s = 0.0;
  /// max |(ser+queue+hop+retry+overhead) - total| over the flow records;
  /// the acceptance bound is 1e-6 s.
  double max_residual_s = 0.0;
  /// Reservoir coverage from "net.meta": seen == kept means the trace
  /// holds every record the run produced (nothing was sampled away).
  std::uint64_t flows_seen = 0, flows_kept = 0;
  std::uint64_t links_seen = 0, links_kept = 0;
  std::uint64_t phases_seen = 0, phases_kept = 0;
};

/// One parsed run-ledger record (src/obs/ledger.hpp schema).
struct LedgerEntry {
  std::string ts, tool, git_sha, compiler;
  double wall_s = 0.0;
  std::int64_t peak_rss_kb = 0;
  std::vector<std::pair<std::string, std::string>> notes;
};

struct TraceAnalysis {
  std::size_t total_lines = 0;
  std::size_t event_lines = 0;      ///< Chrome-trace events (ph present)
  std::size_t metric_lines = 0;     ///< trailer metric records (kind present)
  std::size_t malformed_lines = 0;  ///< rejected lines (bad JSON / no schema)
  std::size_t unclosed_spans = 0;   ///< B without E (closed at trace end)
  std::size_t stray_ends = 0;       ///< E without a matching open B
  double duration_us = 0.0;         ///< last event ts minus first event ts
  std::uint32_t threads = 0;        ///< distinct tids seen
  std::uint64_t flow_starts = 0, flow_finishes = 0, flow_matched = 0;
  std::vector<SpanStat> spans;        ///< sorted: category, self time desc
  std::vector<CounterStat> counters;  ///< sorted: category, name
  Convergence convergence;
  NetworkAnalysis network;
};

struct ReportOptions {
  std::size_t top_k = 20;    ///< spans listed per category
  std::size_t windows = 8;   ///< convergence windows
  std::size_t net_top = 12;  ///< rows in each network section table
};

/// Analyzes in-memory JSONL lines (exposed for tests).
TraceAnalysis analyze_trace(const std::vector<std::string>& lines,
                            const ReportOptions& options = {});

/// Reads and analyzes a trace file. Throws std::runtime_error when the
/// file cannot be opened.
TraceAnalysis analyze_trace_file(const std::string& path,
                                 const ReportOptions& options = {});

/// Parses a run-ledger JSONL file; malformed lines are skipped. Throws
/// std::runtime_error when the file cannot be opened.
std::vector<LedgerEntry> read_ledger_file(const std::string& path);

/// Renders the analysis as markdown (byte-deterministic). `ledger` may be
/// empty; when non-empty the most recent entries are appended.
std::string render_markdown(const TraceAnalysis& analysis,
                            const std::vector<LedgerEntry>& ledger = {},
                            const ReportOptions& options = {});

/// Renders the analysis as one flat CSV (section,category,name,count,
/// x1..x4; column meaning depends on section — see docs/obs.md).
std::string render_csv(const TraceAnalysis& analysis,
                       const ReportOptions& options = {});

}  // namespace orp::obs::report

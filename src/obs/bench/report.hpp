#pragma once
// The canonical BENCH_*.json report: the machine-readable perf trajectory
// of this repo. Written by the microbench harness, read back by
// tools/bench_diff (the CI regression gate). Schema documented in
// docs/bench.md; the version tag below bumps on breaking changes.
//
// Robust statistics: per-benchmark wall time is summarized as min / median
// / MAD (median absolute deviation, scaled by 1.4826 to estimate sigma for
// normal noise) across repetitions — mean/stddev would let one preempted
// repetition poison the series, and CI runners preempt constantly.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/bench/provenance.hpp"

namespace orp {
class Table;
}

namespace orp::obs::bench {

inline constexpr const char* kBenchSchema = "orp-bench/1";

/// Per-op wall-clock summary across repetitions.
struct WallStats {
  double min_ns = 0.0;
  double median_ns = 0.0;
  double mad_ns = 0.0;  ///< scaled MAD (sigma estimate), see file comment
  double ops_per_sec = 0.0;
};

/// Per-op hardware-counter medians across repetitions (perf_event source
/// only; absent from the JSON when `valid` is false).
struct HwStats {
  bool valid = false;
  double cycles = 0.0;
  double instructions = 0.0;
  double ipc = 0.0;
  double cache_misses = 0.0;
  double branch_misses = 0.0;
};

struct BenchEntry {
  std::string name;    ///< e.g. "aspl.bit_parallel.n256_r12"
  std::string family;  ///< e.g. "aspl"
  int repetitions = 0;
  std::uint64_t iters_per_rep = 0;
  WallStats wall;
  HwStats hw;
  double cpu_user_ns = 0.0;  ///< getrusage user time per op (median)
  double cpu_sys_ns = 0.0;   ///< getrusage system time per op (median)
};

struct BenchReport {
  std::string schema = kBenchSchema;
  Provenance provenance;
  std::string counters_source;  ///< "perf_event" or "rusage"
  bool quick = false;
  std::int64_t peak_rss_kb = 0;
  std::vector<BenchEntry> entries;

  const BenchEntry* find(const std::string& name) const noexcept;
};

/// Serializes the report (stable field order, 2-space indent).
std::string report_to_json(const BenchReport& report);

/// Parses and validates a BENCH_*.json document. Throws std::runtime_error
/// on malformed JSON, a wrong schema tag, or missing required fields.
BenchReport report_from_json(const std::string& text);

/// Convenience: report_from_json over a file. Throws on unreadable paths.
BenchReport report_from_file(const std::string& path);

// ---- robust statistics helpers (exposed for tests) ----------------------

/// Median of `values` (copies; empty input returns 0).
double median(std::vector<double> values);

/// Scaled median absolute deviation around `center`: 1.4826 * median(|x-c|).
double scaled_mad(const std::vector<double>& values, double center);

// ---- regression comparison ----------------------------------------------

struct DiffOptions {
  /// Relative slowdown tolerated before a series counts as regressed:
  /// new_median > old_median * (1 + tolerance).
  double tolerance = 0.25;
  /// Noise guard: the absolute slowdown must also exceed `mad_sigma` times
  /// the larger MAD of the two runs, so jittery series need a bigger jump.
  double mad_sigma = 4.0;
  /// And exceed this absolute floor (ns/op) — sub-floor deltas are timer
  /// granularity, not regressions.
  double abs_floor_ns = 10.0;
};

struct DiffRow {
  std::string name;
  double old_median_ns = 0.0;
  double new_median_ns = 0.0;
  double ratio = 1.0;  ///< new / old
  bool regressed = false;
  bool improved = false;
  /// Hardware-counter medians when BOTH reports carry valid perf_event
  /// data for the series (informational — never part of the verdict).
  bool hw_valid = false;
  double old_cycles = 0.0, new_cycles = 0.0;
  double old_ipc = 0.0, new_ipc = 0.0;
};

struct DiffResult {
  std::vector<DiffRow> rows;               ///< benchmarks present in both
  std::vector<std::string> only_baseline;  ///< disappeared series (warned)
  std::vector<std::string> only_current;   ///< new series (informational)
  bool mode_mismatch = false;              ///< quick vs full comparison
  /// The reports disagree on counters_source (perf_event vs rusage), so
  /// hardware-counter columns would compare different instruments —
  /// bench_diff warns and renders the table without them.
  bool counters_mismatch = false;
  bool any_regression = false;
};

DiffResult diff_reports(const BenchReport& baseline, const BenchReport& current,
                        const DiffOptions& options = {});

/// Renders the diff as an aligned table (name, old, new, ratio, verdict).
/// With `include_hw`, appends cycle/IPC columns ("-" for rows lacking
/// valid counters on either side); callers should pass false when
/// DiffResult::counters_mismatch is set.
Table diff_table(const DiffResult& diff, bool include_hw = false);

}  // namespace orp::obs::bench

#pragma once
// Run provenance stamped into every BENCH_*.json so a number is never
// divorced from the build that produced it: git SHA (configure-time),
// compiler + flags, CPU model, and whether the obs layer was compiled out.

#include <string>

namespace orp::obs::bench {

struct Provenance {
  std::string git_sha;      ///< short SHA at configure time, "unknown" outside git
  std::string compiler;     ///< e.g. "gcc 13.2.0"
  std::string flags;        ///< CMAKE_CXX_FLAGS + build-type flags
  std::string build_type;   ///< CMAKE_BUILD_TYPE
  std::string cpu_model;    ///< /proc/cpuinfo "model name", "unknown" elsewhere
  int hardware_threads = 0;
  bool obs_disabled = false;  ///< ORP_OBS_DISABLED build
};

Provenance collect_provenance();

}  // namespace orp::obs::bench

#pragma once
// Microbenchmark harness over the repo's real hot paths (the tentpole of
// the perf-trajectory layer; see docs/bench.md).
//
// A benchmark is a named factory: setup runs once (outside timing) and
// returns the operation closure; the runner then
//   1. calibrates how many ops fill one repetition (>= min_rep_seconds),
//   2. runs discarded warmup repetitions,
//   3. runs measured repetitions, each wrapped in hardware counters
//      (perf_event_open when the kernel allows it, getrusage otherwise),
//   4. reduces repetitions to robust stats (min / median / scaled MAD).
// Results land in a BenchReport (report.hpp) for JSON emission and the
// bench_diff regression gate.
//
// Ops here are microseconds-to-milliseconds (graph evaluations, SA cycles,
// simulator phases), so the per-op std::function dispatch (~ns) is noise;
// do not register sub-100ns ops without batching them inside the closure.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/bench/report.hpp"

namespace orp::obs::bench {

/// One operation of the measured hot path. Must leave its captured state
/// ready for the next call (revert mutations or absorb them).
using BenchOp = std::function<void()>;

struct BenchmarkDef {
  std::string name;    ///< dot-separated: family.variant.size (stable across PRs)
  std::string family;  ///< series group: "aspl", "annealer", "sim", "partition"
  std::function<BenchOp()> setup;
  /// Included in --quick runs. Quick is the CI gate, so keep only
  /// laptop-second benchmarks in it; full-only entries may be heavier.
  bool quick = true;
};

struct RunOptions {
  int repetitions = 12;
  int warmup = 2;
  double min_rep_seconds = 0.05;
  bool quick = false;          ///< restrict to quick-eligible benchmarks
  std::string filter;          ///< substring match on benchmark name
  std::ostream* progress = nullptr;  ///< per-benchmark progress lines
};

/// Process-wide benchmark list. Registration order is run order.
class BenchRegistry {
 public:
  static BenchRegistry& global();

  void add(BenchmarkDef def);
  const std::vector<BenchmarkDef>& benchmarks() const noexcept { return defs_; }

  /// Runs every matching benchmark and returns the filled report
  /// (provenance, counters source, RSS high-watermark included).
  BenchReport run(const RunOptions& options) const;

 private:
  std::vector<BenchmarkDef> defs_;
};

/// Compiler barrier: keeps `value`'s computation observable so the
/// measured loop is not optimized away.
template <typename T>
inline void do_not_optimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile T sink = value;
  (void)sink;
#endif
}

}  // namespace orp::obs::bench

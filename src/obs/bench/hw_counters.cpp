#include "obs/bench/hw_counters.hpp"

#include <cstring>
#include <tuple>
#include <utility>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace orp::obs::bench {

#if defined(__linux__)

namespace {

long perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                     unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// Opens one hardware event in `group_fd`'s group (or as leader when
/// group_fd == -1). Returns {fd, id}; fd -1 on any failure.
std::pair<int, std::uint64_t> open_event(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = (group_fd == -1) ? 1 : 0;  // group enables via the leader
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = perf_event_open(&attr, 0 /* this process */, -1 /* any cpu */,
                                  group_fd, 0);
  if (fd < 0) return {-1, 0};
  std::uint64_t id = 0;
  if (ioctl(static_cast<int>(fd), PERF_EVENT_IOC_ID, &id) != 0) {
    close(static_cast<int>(fd));
    return {-1, 0};
  }
  return {static_cast<int>(fd), id};
}

}  // namespace

HwCounterGroup::HwCounterGroup() {
  std::tie(leader_fd_, leader_id_) = open_event(PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader_fd_ < 0) return;  // no perf here; stay in fallback mode
  std::tie(instructions_fd_, instructions_id_) =
      open_event(PERF_COUNT_HW_INSTRUCTIONS, leader_fd_);
  std::tie(cache_misses_fd_, cache_misses_id_) =
      open_event(PERF_COUNT_HW_CACHE_MISSES, leader_fd_);
  std::tie(branch_misses_fd_, branch_misses_id_) =
      open_event(PERF_COUNT_HW_BRANCH_MISSES, leader_fd_);
}

HwCounterGroup::~HwCounterGroup() {
  for (const int fd : {instructions_fd_, cache_misses_fd_, branch_misses_fd_, leader_fd_}) {
    if (fd >= 0) close(fd);
  }
}

void HwCounterGroup::start() noexcept {
  if (leader_fd_ < 0) return;
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

HwCounterValues HwCounterGroup::stop() noexcept {
  HwCounterValues out;
  if (leader_fd_ < 0) return out;
  ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);

  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
  // then {value, id} per event.
  struct {
    std::uint64_t nr;
    std::uint64_t time_enabled;
    std::uint64_t time_running;
    struct {
      std::uint64_t value;
      std::uint64_t id;
    } values[8];
  } buffer;
  const ssize_t got = read(leader_fd_, &buffer, sizeof buffer);
  if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return out;

  double scale = 1.0;
  if (buffer.time_running > 0 && buffer.time_enabled > buffer.time_running) {
    scale = static_cast<double>(buffer.time_enabled) /
            static_cast<double>(buffer.time_running);
  }
  out.valid = true;
  out.multiplex_scale = scale;
  const std::uint64_t nr = buffer.nr > 8 ? 8 : buffer.nr;
  for (std::uint64_t i = 0; i < nr; ++i) {
    const double value = static_cast<double>(buffer.values[i].value) * scale;
    const std::uint64_t id = buffer.values[i].id;
    if (id == leader_id_) out.cycles = value;
    else if (instructions_fd_ >= 0 && id == instructions_id_) out.instructions = value;
    else if (cache_misses_fd_ >= 0 && id == cache_misses_id_) out.cache_misses = value;
    else if (branch_misses_fd_ >= 0 && id == branch_misses_id_) out.branch_misses = value;
  }
  return out;
}

CpuTimes process_cpu_times() noexcept {
  rusage usage;
  CpuTimes out;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return out;
  const auto to_ns = [](const timeval& tv) {
    return static_cast<std::uint64_t>(tv.tv_sec) * 1'000'000'000ULL +
           static_cast<std::uint64_t>(tv.tv_usec) * 1'000ULL;
  };
  out.user_ns = to_ns(usage.ru_utime);
  out.system_ns = to_ns(usage.ru_stime);
  return out;
}

std::int64_t peak_rss_kb() noexcept {
  rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::int64_t>(usage.ru_maxrss);  // kilobytes on Linux
}

#else  // !__linux__ — no perf events, no rusage guarantees.

HwCounterGroup::HwCounterGroup() = default;
HwCounterGroup::~HwCounterGroup() = default;
void HwCounterGroup::start() noexcept {}
HwCounterValues HwCounterGroup::stop() noexcept { return {}; }
CpuTimes process_cpu_times() noexcept { return {}; }
std::int64_t peak_rss_kb() noexcept { return 0; }

#endif

}  // namespace orp::obs::bench

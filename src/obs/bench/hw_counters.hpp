#pragma once
// Per-run hardware performance counters for the microbenchmark harness.
//
// On Linux a HwCounterGroup opens one perf_event_open group — cycles
// (leader), instructions, cache-misses, branch-misses — counting this
// process in user space only. Reads use PERF_FORMAT_GROUP with
// TIME_ENABLED / TIME_RUNNING so multiplexed counts are scaled back to
// estimates. Containers and CI runners routinely deny perf_event_open
// (seccomp, perf_event_paranoid); every failure path degrades to
// available() == false and the harness falls back to getrusage CPU time,
// so a benchmark run never errors out over missing counters.

#include <cstdint>

namespace orp::obs::bench {

/// One measurement interval's counter totals. `valid` is false when the
/// kernel denied the event group (values are then all zero).
struct HwCounterValues {
  bool valid = false;
  double cycles = 0.0;
  double instructions = 0.0;
  double cache_misses = 0.0;
  double branch_misses = 0.0;
  /// time_enabled / time_running of the read (1.0 = never multiplexed).
  double multiplex_scale = 1.0;
};

class HwCounterGroup {
 public:
  HwCounterGroup();
  ~HwCounterGroup();
  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;

  /// True when at least the cycles leader opened.
  bool available() const noexcept { return leader_fd_ >= 0; }

  /// Resets and enables the group (no-op when unavailable).
  void start() noexcept;
  /// Disables the group and returns the interval's scaled counts.
  HwCounterValues stop() noexcept;

 private:
  // File descriptors; -1 when the event could not be opened. The leader
  // is cycles; siblings that fail to open are skipped individually.
  int leader_fd_ = -1;
  int instructions_fd_ = -1;
  int cache_misses_fd_ = -1;
  int branch_misses_fd_ = -1;
  // perf event ids (from PERF_FORMAT_ID) → slot mapping for group reads.
  std::uint64_t leader_id_ = 0;
  std::uint64_t instructions_id_ = 0;
  std::uint64_t cache_misses_id_ = 0;
  std::uint64_t branch_misses_id_ = 0;
};

/// CPU time consumed by this process so far (getrusage), nanoseconds.
struct CpuTimes {
  std::uint64_t user_ns = 0;
  std::uint64_t system_ns = 0;
};
CpuTimes process_cpu_times() noexcept;

/// Resident-set high-watermark of this process in kilobytes (ru_maxrss).
std::int64_t peak_rss_kb() noexcept;

}  // namespace orp::obs::bench

#include "obs/bench/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "common/table.hpp"

namespace orp::obs::bench {

namespace {

// JSON numbers are emitted with enough precision to round-trip the
// medians; trailing-zero trimming keeps the files diffable by eye.
std::string num(double value) {
  if (!std::isfinite(value)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << value;
  return os.str();
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  out += json_escape_string(s);
  out += '"';
  return out;
}

double get_num(const JsonValue& obj, std::string_view key) {
  return obj.at(key).as_number();
}

}  // namespace

const BenchEntry* BenchReport::find(const std::string& name) const noexcept {
  for (const BenchEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string report_to_json(const BenchReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": " << quoted(report.schema) << ",\n";
  os << "  \"provenance\": {\n";
  os << "    \"git_sha\": " << quoted(report.provenance.git_sha) << ",\n";
  os << "    \"compiler\": " << quoted(report.provenance.compiler) << ",\n";
  os << "    \"flags\": " << quoted(report.provenance.flags) << ",\n";
  os << "    \"build_type\": " << quoted(report.provenance.build_type) << ",\n";
  os << "    \"cpu_model\": " << quoted(report.provenance.cpu_model) << ",\n";
  os << "    \"hardware_threads\": " << report.provenance.hardware_threads << ",\n";
  os << "    \"obs_disabled\": " << (report.provenance.obs_disabled ? "true" : "false")
     << "\n";
  os << "  },\n";
  os << "  \"counters_source\": " << quoted(report.counters_source) << ",\n";
  os << "  \"quick\": " << (report.quick ? "true" : "false") << ",\n";
  os << "  \"peak_rss_kb\": " << report.peak_rss_kb << ",\n";
  os << "  \"benchmarks\": [";
  for (std::size_t i = 0; i < report.entries.size(); ++i) {
    const BenchEntry& e = report.entries[i];
    os << (i ? ",\n" : "\n");
    os << "    {\n";
    os << "      \"name\": " << quoted(e.name) << ",\n";
    os << "      \"family\": " << quoted(e.family) << ",\n";
    os << "      \"repetitions\": " << e.repetitions << ",\n";
    os << "      \"iters_per_rep\": " << e.iters_per_rep << ",\n";
    os << "      \"ns_per_op\": {\"min\": " << num(e.wall.min_ns)
       << ", \"median\": " << num(e.wall.median_ns)
       << ", \"mad\": " << num(e.wall.mad_ns) << "},\n";
    os << "      \"ops_per_sec\": " << num(e.wall.ops_per_sec) << ",\n";
    if (e.hw.valid) {
      os << "      \"counters_per_op\": {\"cycles\": " << num(e.hw.cycles)
         << ", \"instructions\": " << num(e.hw.instructions)
         << ", \"ipc\": " << num(e.hw.ipc)
         << ", \"cache_misses\": " << num(e.hw.cache_misses)
         << ", \"branch_misses\": " << num(e.hw.branch_misses) << "},\n";
    }
    os << "      \"cpu_per_op\": {\"user_ns\": " << num(e.cpu_user_ns)
       << ", \"sys_ns\": " << num(e.cpu_sys_ns) << "}\n";
    os << "    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

BenchReport report_from_json(const std::string& text) {
  const JsonValue doc = JsonValue::parse(text);
  BenchReport report;
  report.schema = doc.at("schema").as_string();
  if (report.schema != kBenchSchema) {
    throw std::runtime_error("bench report: unsupported schema \"" + report.schema +
                             "\" (expected \"" + kBenchSchema + "\")");
  }
  const JsonValue& prov = doc.at("provenance");
  report.provenance.git_sha = prov.at("git_sha").as_string();
  report.provenance.compiler = prov.at("compiler").as_string();
  report.provenance.flags = prov.at("flags").as_string();
  report.provenance.build_type = prov.at("build_type").as_string();
  report.provenance.cpu_model = prov.at("cpu_model").as_string();
  report.provenance.hardware_threads =
      static_cast<int>(get_num(prov, "hardware_threads"));
  report.provenance.obs_disabled = prov.at("obs_disabled").as_bool();
  report.counters_source = doc.at("counters_source").as_string();
  report.quick = doc.at("quick").as_bool();
  report.peak_rss_kb = static_cast<std::int64_t>(get_num(doc, "peak_rss_kb"));
  for (const JsonValue& b : doc.at("benchmarks").items()) {
    BenchEntry e;
    e.name = b.at("name").as_string();
    e.family = b.at("family").as_string();
    e.repetitions = static_cast<int>(get_num(b, "repetitions"));
    e.iters_per_rep = static_cast<std::uint64_t>(get_num(b, "iters_per_rep"));
    const JsonValue& wall = b.at("ns_per_op");
    e.wall.min_ns = get_num(wall, "min");
    e.wall.median_ns = get_num(wall, "median");
    e.wall.mad_ns = get_num(wall, "mad");
    e.wall.ops_per_sec = get_num(b, "ops_per_sec");
    if (const JsonValue* hw = b.find("counters_per_op")) {
      e.hw.valid = true;
      e.hw.cycles = get_num(*hw, "cycles");
      e.hw.instructions = get_num(*hw, "instructions");
      e.hw.ipc = get_num(*hw, "ipc");
      e.hw.cache_misses = get_num(*hw, "cache_misses");
      e.hw.branch_misses = get_num(*hw, "branch_misses");
    }
    if (const JsonValue* cpu = b.find("cpu_per_op")) {
      e.cpu_user_ns = get_num(*cpu, "user_ns");
      e.cpu_sys_ns = get_num(*cpu, "sys_ns");
    }
    report.entries.push_back(std::move(e));
  }
  return report;
}

BenchReport report_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bench report: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return report_from_json(buffer.str());
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lower + upper) / 2.0;
}

double scaled_mad(const std::vector<double>& values, double center) {
  if (values.empty()) return 0.0;
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) deviations.push_back(std::fabs(v - center));
  return 1.4826 * median(std::move(deviations));
}

DiffResult diff_reports(const BenchReport& baseline, const BenchReport& current,
                        const DiffOptions& options) {
  DiffResult out;
  out.mode_mismatch = baseline.quick != current.quick;
  out.counters_mismatch = baseline.counters_source != current.counters_source;
  for (const BenchEntry& b : baseline.entries) {
    const BenchEntry* c = current.find(b.name);
    if (!c) {
      out.only_baseline.push_back(b.name);
      continue;
    }
    DiffRow row;
    row.name = b.name;
    row.old_median_ns = b.wall.median_ns;
    row.new_median_ns = c->wall.median_ns;
    row.ratio = b.wall.median_ns > 0.0 ? c->wall.median_ns / b.wall.median_ns : 1.0;
    const double delta = c->wall.median_ns - b.wall.median_ns;
    const double noise_floor = std::max(
        options.mad_sigma * std::max(b.wall.mad_ns, c->wall.mad_ns),
        options.abs_floor_ns);
    row.regressed = c->wall.median_ns > b.wall.median_ns * (1.0 + options.tolerance) &&
                    delta > noise_floor;
    row.improved = b.wall.median_ns > c->wall.median_ns * (1.0 + options.tolerance) &&
                   -delta > noise_floor;
    if (b.hw.valid && c->hw.valid) {
      row.hw_valid = true;
      row.old_cycles = b.hw.cycles;
      row.new_cycles = c->hw.cycles;
      row.old_ipc = b.hw.ipc;
      row.new_ipc = c->hw.ipc;
    }
    out.any_regression = out.any_regression || row.regressed;
    out.rows.push_back(std::move(row));
  }
  for (const BenchEntry& c : current.entries) {
    if (!baseline.find(c.name)) out.only_current.push_back(c.name);
  }
  return out;
}

Table diff_table(const DiffResult& diff, bool include_hw) {
  std::vector<std::string> header = {"benchmark", "old ns/op", "new ns/op",
                                     "ratio", "verdict"};
  if (include_hw) {
    header.insert(header.end(),
                  {"old cyc/op", "new cyc/op", "old IPC", "new IPC"});
  }
  Table table(std::move(header));
  for (const DiffRow& row : diff.rows) {
    table.row()
        .add(row.name)
        .add(row.old_median_ns, 1)
        .add(row.new_median_ns, 1)
        .add(row.ratio, 3)
        .add(row.regressed ? "REGRESSED" : (row.improved ? "improved" : "ok"));
    if (include_hw) {
      if (row.hw_valid) {
        table.add(row.old_cycles, 1)
            .add(row.new_cycles, 1)
            .add(row.old_ipc, 3)
            .add(row.new_ipc, 3);
      } else {
        table.add("-").add("-").add("-").add("-");
      }
    }
  }
  return table;
}

}  // namespace orp::obs::bench

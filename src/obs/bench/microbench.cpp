#include "obs/bench/microbench.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>

#include "obs/bench/hw_counters.hpp"

namespace orp::obs::bench {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Times `iters` calls of `op`; returns elapsed wall nanoseconds.
std::uint64_t timed_loop(const BenchOp& op, std::uint64_t iters) {
  const std::uint64_t start = now_ns();
  for (std::uint64_t i = 0; i < iters; ++i) op();
  return now_ns() - start;
}

struct RepSample {
  double ns_per_op = 0.0;
  HwCounterValues hw;
  double cpu_user_ns = 0.0;  // per op
  double cpu_sys_ns = 0.0;   // per op
};

}  // namespace

BenchRegistry& BenchRegistry::global() {
  static BenchRegistry instance;
  return instance;
}

void BenchRegistry::add(BenchmarkDef def) { defs_.push_back(std::move(def)); }

BenchReport BenchRegistry::run(const RunOptions& options) const {
  BenchReport report;
  report.provenance = collect_provenance();
  report.quick = options.quick;

  HwCounterGroup counters;
  report.counters_source = counters.available() ? "perf_event" : "rusage";

  for (const BenchmarkDef& def : defs_) {
    if (options.quick && !def.quick) continue;
    if (!options.filter.empty() &&
        def.name.find(options.filter) == std::string::npos) {
      continue;
    }

    BenchOp op = def.setup();

    // Calibration: one untimed call absorbs first-touch effects, then a
    // timed call sizes the repetition batch. Ops below min_rep_seconds get
    // batched so each repetition is long enough for stable clock reads.
    op();
    std::uint64_t probe_ns = timed_loop(op, 1);
    if (probe_ns == 0) probe_ns = 1;
    const double target_ns = options.min_rep_seconds * 1e9;
    std::uint64_t iters = static_cast<std::uint64_t>(
        std::ceil(target_ns / static_cast<double>(probe_ns)));
    iters = std::clamp<std::uint64_t>(iters, 1, 1u << 20);

    for (int w = 0; w < options.warmup; ++w) timed_loop(op, iters);

    std::vector<RepSample> reps;
    reps.reserve(static_cast<std::size_t>(options.repetitions));
    for (int r = 0; r < options.repetitions; ++r) {
      const CpuTimes cpu_before = process_cpu_times();
      counters.start();
      const std::uint64_t elapsed = timed_loop(op, iters);
      const HwCounterValues hw = counters.stop();
      const CpuTimes cpu_after = process_cpu_times();

      RepSample sample;
      const double ops = static_cast<double>(iters);
      sample.ns_per_op = static_cast<double>(elapsed) / ops;
      sample.hw = hw;
      sample.cpu_user_ns =
          static_cast<double>(cpu_after.user_ns - cpu_before.user_ns) / ops;
      sample.cpu_sys_ns =
          static_cast<double>(cpu_after.system_ns - cpu_before.system_ns) / ops;
      reps.push_back(sample);
    }

    BenchEntry entry;
    entry.name = def.name;
    entry.family = def.family;
    entry.repetitions = options.repetitions;
    entry.iters_per_rep = iters;

    std::vector<double> wall_ns;
    wall_ns.reserve(reps.size());
    for (const RepSample& s : reps) wall_ns.push_back(s.ns_per_op);
    entry.wall.min_ns = *std::min_element(wall_ns.begin(), wall_ns.end());
    entry.wall.median_ns = median(wall_ns);
    entry.wall.mad_ns = scaled_mad(wall_ns, entry.wall.median_ns);
    entry.wall.ops_per_sec =
        entry.wall.median_ns > 0.0 ? 1e9 / entry.wall.median_ns : 0.0;

    const auto median_of = [&](auto&& get) {
      std::vector<double> values;
      values.reserve(reps.size());
      for (const RepSample& s : reps) values.push_back(get(s));
      return median(std::move(values));
    };
    entry.cpu_user_ns = median_of([](const RepSample& s) { return s.cpu_user_ns; });
    entry.cpu_sys_ns = median_of([](const RepSample& s) { return s.cpu_sys_ns; });

    if (counters.available()) {
      const double ops = static_cast<double>(iters);
      entry.hw.valid = true;
      entry.hw.cycles =
          median_of([&](const RepSample& s) { return s.hw.cycles / ops; });
      entry.hw.instructions =
          median_of([&](const RepSample& s) { return s.hw.instructions / ops; });
      entry.hw.cache_misses =
          median_of([&](const RepSample& s) { return s.hw.cache_misses / ops; });
      entry.hw.branch_misses =
          median_of([&](const RepSample& s) { return s.hw.branch_misses / ops; });
      entry.hw.ipc =
          entry.hw.cycles > 0.0 ? entry.hw.instructions / entry.hw.cycles : 0.0;
    }

    if (options.progress) {
      *options.progress << "  " << entry.name << ": median "
                        << entry.wall.median_ns << " ns/op (" << iters
                        << " op/rep x " << options.repetitions << " reps)\n";
    }
    report.entries.push_back(std::move(entry));
  }

  report.peak_rss_kb = peak_rss_kb();
  return report;
}

}  // namespace orp::obs::bench

#include "obs/bench/provenance.hpp"

#include <fstream>
#include <thread>

// The build system passes these (src/obs/CMakeLists.txt); the fallbacks
// keep the file compiling standalone (e.g. in IDE/one-off builds).
#ifndef ORP_GIT_SHA
#define ORP_GIT_SHA "unknown"
#endif
#ifndef ORP_CXX_FLAGS
#define ORP_CXX_FLAGS ""
#endif
#ifndef ORP_BUILD_TYPE
#define ORP_BUILD_TYPE ""
#endif

namespace orp::obs::bench {

namespace {

std::string compiler_description() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." + std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) +
         "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

}  // namespace

Provenance collect_provenance() {
  Provenance p;
  p.git_sha = ORP_GIT_SHA;
  p.compiler = compiler_description();
  p.flags = ORP_CXX_FLAGS;
  p.build_type = ORP_BUILD_TYPE;
  p.cpu_model = cpu_model();
  p.hardware_threads = static_cast<int>(std::thread::hardware_concurrency());
#ifdef ORP_OBS_DISABLED
  p.obs_disabled = true;
#else
  p.obs_disabled = false;
#endif
  return p;
}

}  // namespace orp::obs::bench

#pragma once
// Continuous profiling: a background sampler that periodically snapshots
// the metrics registry and emits the *deltas* since the previous tick as
// Chrome-trace "C" (counter time-series) events into the active JSONL
// trace. A 30-minute anneal then yields rate curves (moves/s, evals/s,
// task latency mass per interval) instead of one terminal total.
//
// Emitted series (category distinguishes semantics for tools/orp_report):
//   counters    — per-interval delta, category "snapshot" (skipped when 0)
//   gauges      — current level, category "snapshot.level" (on change)
//   histograms  — "<name>.count" and "<name>.sum" per-interval deltas,
//                 category "snapshot"
//
// The sampler is started by the JSONL sink (src/obs/sink.cpp) using the
// interval from --obs-snapshot-ms / ORP_OBS_SNAPSHOT_MS (default 250 ms,
// 0 disables) and is stopped — and its final tail sample drained — before
// the sink appends the end-of-run metric records, so trailer lines are
// never interleaved with a partial snapshot.
//
// With ORP_OBS_DISABLED everything below is an inline no-op stub.

#include <cstdint>

#ifndef ORP_OBS_DISABLED

namespace orp::obs {

/// Default sampling interval when neither the CLI nor the environment says
/// otherwise.
inline constexpr std::uint32_t kDefaultSnapshotMs = 250;

/// Reads ORP_OBS_SNAPSHOT_MS; returns kDefaultSnapshotMs when unset or
/// unparsable. 0 means "sampling off".
std::uint32_t snapshot_interval_from_env() noexcept;

/// Launches the sampler thread at `interval_ms`. Returns false (and does
/// nothing) when `interval_ms` is 0 or a sampler is already running.
bool start_snapshot_sampler(std::uint32_t interval_ms);

/// Stops the sampler: emits one final delta sample covering the tail
/// interval, then joins the thread. Safe to call when not running.
void stop_snapshot_sampler();

/// True while the sampler thread is alive.
bool snapshot_sampler_running() noexcept;

}  // namespace orp::obs

#else  // ORP_OBS_DISABLED

namespace orp::obs {

inline constexpr std::uint32_t kDefaultSnapshotMs = 250;

inline std::uint32_t snapshot_interval_from_env() noexcept { return 0; }
inline bool start_snapshot_sampler(std::uint32_t) { return false; }
inline void stop_snapshot_sampler() {}
inline bool snapshot_sampler_running() noexcept { return false; }

}  // namespace orp::obs

#endif  // ORP_OBS_DISABLED

#include "obs/sink.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace orp::obs {
namespace {

struct SinkState {
  std::mutex mutex;
  SinkConfig config;
  bool atexit_registered = false;
  std::vector<std::function<void()>> flush_hooks;
};

SinkState& state() {
  static SinkState* instance = new SinkState();  // leaked: used from atexit
  return *instance;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format_json_number(double value) {
  if (value != value) return "\"nan\"";
  std::ostringstream os;
  os.precision(9);
  os << value;
  return os.str();
}

void write_summary(std::ostream& os, const MetricsSnapshot& snapshot) {
#ifdef ORP_OBS_DISABLED
  (void)snapshot;
  os << "[obs] telemetry compiled out (ORP_OBS_DISABLED)\n";
#else
  if (snapshot.empty()) {
    os << "[obs] no metrics recorded\n";
    return;
  }
  os << "[obs] run metrics\n";
  metrics_table(snapshot).print(os);
#endif
}

bool write_metrics_csv(const std::string& path, const MetricsSnapshot& snapshot) {
  return metrics_table(snapshot).write_csv_file(path);
}

void flush_locked(SinkState& s) {
  // Flush hooks first: buffered producers (sim telemetry reservoirs) get
  // to emit into the still-running tracer before it stops below.
  for (const std::function<void()>& hook : s.flush_hooks) hook();
  const MetricsSnapshot snapshot = Registry::global().snapshot();
  switch (s.config.kind) {
    case SinkKind::kNone:
      break;
    case SinkKind::kStderrSummary:
      write_summary(std::cerr, snapshot);
      break;
    case SinkKind::kCsv:
      if (!write_metrics_csv(s.config.path, snapshot)) {
        std::cerr << "[obs] warning: could not write " << s.config.path << "\n";
      }
      break;
    case SinkKind::kJsonl:
      // Stop and drain the snapshot sampler FIRST: its final tail sample
      // must be in the tracer's buffer before the trailer is appended, so
      // the end-of-run metric records are never interleaved with a partial
      // snapshot. Then stop the trace writer and append the records; if
      // the tracer was already stopped (repeated flush) write nothing more.
      stop_snapshot_sampler();
      Tracer::global().stop(snapshot_jsonl(Registry::global().snapshot()));
      break;
  }
}

void flush_at_exit() { flush(); }

}  // namespace

SinkConfig parse_sink(std::string_view spec) {
  SinkConfig config;
  if (spec.empty()) return config;
  if (spec == "stderr" || spec == "summary") {
    config.kind = SinkKind::kStderrSummary;
    return config;
  }
  config.path = std::string(spec);
  config.kind = ends_with(spec, ".csv") ? SinkKind::kCsv : SinkKind::kJsonl;
  return config;
}

SinkConfig sink_from_env() {
  const char* raw = std::getenv("ORP_OBS_OUT");
  SinkConfig config = parse_sink(raw ? std::string_view(raw) : std::string_view());
  config.snapshot_ms = snapshot_interval_from_env();
  return config;
}

bool install_env_sink() {
  const SinkConfig config = sink_from_env();
  if (config.kind == SinkKind::kNone) return false;
  return configure(config);
}

bool configure(const SinkConfig& config) {
  SinkState& s = state();
  std::lock_guard lock(s.mutex);
  if (s.config.kind != SinkKind::kNone) flush_locked(s);
  s.config = config;
  if (!s.atexit_registered && config.kind != SinkKind::kNone) {
    s.atexit_registered = true;
    std::atexit(flush_at_exit);
  }
#ifndef ORP_OBS_DISABLED
  if (config.kind == SinkKind::kJsonl) {
    if (!Tracer::global().start(config.path)) {
      std::cerr << "[obs] warning: could not open " << config.path << "\n";
      s.config = SinkConfig{};
      return false;
    }
    if (config.snapshot_ms > 0) start_snapshot_sampler(config.snapshot_ms);
  }
#endif
  return true;
}

void flush() {
  SinkState& s = state();
  std::lock_guard lock(s.mutex);
  flush_locked(s);
  if (s.config.kind == SinkKind::kJsonl) {
    // The trace file is closed now; later flushes must not reopen it.
    s.config = SinkConfig{};
  }
}

void register_flush_hook(std::function<void()> hook) {
  SinkState& s = state();
  std::lock_guard lock(s.mutex);
  s.flush_hooks.push_back(std::move(hook));
}

const SinkConfig& active_sink() {
  return state().config;
}

Table metrics_table(const MetricsSnapshot& snapshot) {
  Table table(
      {"kind", "name", "value", "count", "mean", "p50", "p90", "p99", "max"});
  for (const CounterSample& c : snapshot.counters) {
    table.row().add("counter").add(c.name).add(static_cast<long long>(c.value))
        .add("").add("").add("").add("").add("").add("");
  }
  for (const GaugeSample& g : snapshot.gauges) {
    table.row().add("gauge").add(g.name).add(static_cast<long long>(g.value))
        .add("").add("").add("").add("").add("")
        .add(static_cast<long long>(g.max));
  }
  for (const HistogramSample& h : snapshot.histograms) {
    table.row().add("histogram").add(h.name)
        .add(static_cast<long long>(h.sum))
        .add(static_cast<long long>(h.count))
        .add(h.mean(), 1)
        .add(h.quantile_interp(0.5), 1)
        .add(h.quantile_interp(0.9), 1)
        .add(h.quantile_interp(0.99), 1)
        .add(static_cast<long long>(h.max));
  }
  return table;
}

void print_summary(std::ostream& os) {
  write_summary(os, Registry::global().snapshot());
}

std::vector<std::string> snapshot_jsonl(const MetricsSnapshot& snapshot) {
  std::vector<std::string> lines;
  lines.reserve(snapshot.counters.size() + snapshot.gauges.size() +
                snapshot.histograms.size());
  for (const CounterSample& c : snapshot.counters) {
    lines.push_back("{\"kind\":\"counter\",\"name\":\"" + json_escape(c.name) +
                    "\",\"value\":" + std::to_string(c.value) + "}");
  }
  for (const GaugeSample& g : snapshot.gauges) {
    lines.push_back("{\"kind\":\"gauge\",\"name\":\"" + json_escape(g.name) +
                    "\",\"value\":" + std::to_string(g.value) +
                    ",\"max\":" + std::to_string(g.max) + "}");
  }
  for (const HistogramSample& h : snapshot.histograms) {
    std::string line = "{\"kind\":\"histogram\",\"name\":\"" + json_escape(h.name) +
                       "\",\"count\":" + std::to_string(h.count) +
                       ",\"sum\":" + std::to_string(h.sum) +
                       ",\"min\":" + std::to_string(h.min) +
                       ",\"max\":" + std::to_string(h.max) +
                       ",\"mean\":" + format_json_number(h.mean()) +
                       ",\"p50\":" + format_json_number(h.quantile_interp(0.5)) +
                       ",\"p90\":" + format_json_number(h.quantile_interp(0.9)) +
                       ",\"p99\":" + format_json_number(h.quantile_interp(0.99)) +
                       ",\"buckets\":[";
    // Trailing zero buckets are trimmed to keep lines short; bucket i
    // counts values in [2^(i-1), 2^i).
    std::size_t last = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] != 0) last = b + 1;
    }
    for (std::size_t b = 0; b < last; ++b) {
      if (b) line += ',';
      line += std::to_string(h.buckets[b]);
    }
    line += "]}";
    lines.push_back(std::move(line));
  }
  return lines;
}

bool write_csv(const Table& table, const std::string& path) {
  if (!table.write_csv_file(path)) {
    std::cerr << "[obs] warning: could not write " << path << "\n";
    return false;
  }
  return true;
}

void add_cli_options(CliParser& cli) {
  cli.option("obs-out", "",
             "telemetry sink: 'stderr', a .csv path, or a .jsonl trace path "
             "(default: $ORP_OBS_OUT)");
  cli.flag("obs-summary", "print the end-of-run metrics table on stdout");
  cli.option("obs-snapshot-ms", "",
             "metric snapshot interval for JSONL traces in ms, 0 disables "
             "(default: $ORP_OBS_SNAPSHOT_MS or 250)");
}

bool apply_cli(const CliParser& cli) {
  const std::string spec = cli.get("obs-out");
  SinkConfig config = spec.empty() ? sink_from_env() : parse_sink(spec);
  const std::string interval = cli.get("obs-snapshot-ms");
  config.snapshot_ms = interval.empty()
                           ? snapshot_interval_from_env()
                           : static_cast<std::uint32_t>(cli.get_int("obs-snapshot-ms"));
  return configure(config);
}

bool cli_wants_summary(const CliParser& cli) {
  return cli.has("obs-summary");
}

}  // namespace orp::obs

#ifndef ORP_OBS_DISABLED

#include "obs/ledger.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/json.hpp"
#include "obs/bench/provenance.hpp"
#include "obs/sink.hpp"

namespace orp::obs {
namespace {

struct LedgerState {
  std::mutex mutex;
  std::vector<std::string> argv;
  std::vector<std::pair<std::string, std::string>> notes;  // value pre-encoded
  std::vector<std::string> artifacts;
  std::string sink_path;  // captured at ledger_capture_argv(); see below
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  bool appended = false;
};

LedgerState& state() {
  static LedgerState* instance = new LedgerState();  // leaked: exit-hook safe
  return *instance;
}

std::string utc_timestamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

std::string jquoted(std::string_view raw) {
  return '"' + json_escape_string(raw) + '"';
}

std::string format_number(double value) {
  if (value != value) return "\"nan\"";
  std::ostringstream os;
  os.precision(9);
  os << value;
  return os.str();
}

std::int64_t peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::int64_t>(usage.ru_maxrss);  // kB on Linux
}

void upsert_note(std::string_view key, std::string value_json) {
  LedgerState& s = state();
  std::lock_guard lock(s.mutex);
  for (auto& [k, v] : s.notes) {
    if (k == key) {
      v = std::move(value_json);
      return;
    }
  }
  s.notes.emplace_back(std::string(key), std::move(value_json));
}

}  // namespace

std::string ledger_path() {
  const char* raw = std::getenv("ORP_RUN_LEDGER");
  if (!raw) return kDefaultLedgerPath;
  const std::string_view spec(raw);
  if (spec.empty() || spec == "none" || spec == "off") return std::string();
  return std::string(spec);
}

void ledger_capture_argv(int argc, const char* const* argv) {
  LedgerState& s = state();
  std::lock_guard lock(s.mutex);
  s.argv.assign(argv, argv + argc);
  s.start = std::chrono::steady_clock::now();
  // Remember the sink path now: flush() clears the active config when it
  // closes a JSONL trace, and append_run_ledger() runs after the flush.
  s.sink_path = active_sink().path;
}

void ledger_note(std::string_view key, std::string_view value) {
  upsert_note(key, jquoted(value));
}

void ledger_note(std::string_view key, double value) {
  upsert_note(key, format_number(value));
}

void ledger_note(std::string_view key, std::int64_t value) {
  upsert_note(key, std::to_string(value));
}

void ledger_artifact(std::string_view path) {
  LedgerState& s = state();
  std::lock_guard lock(s.mutex);
  s.artifacts.emplace_back(path);
}

bool ledger_append_line(const std::string& path, const std::string& line) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // open() reports failure
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  // One write() of the whole record: O_APPEND makes the seek+write atomic
  // on regular files, so concurrent writers never interleave partial lines.
  const std::string payload = line + '\n';
  const char* data = payload.data();
  std::size_t remaining = payload.size();
  bool ok = true;
  while (remaining > 0) {
    const ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      ok = false;
      break;
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  ::close(fd);
  return ok;
}

bool append_run_ledger() {
  const std::string path = ledger_path();
  if (path.empty()) return false;

  LedgerState& s = state();
  std::lock_guard lock(s.mutex);
  if (s.appended) return true;

  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - s.start)
          .count();
  const bench::Provenance prov = bench::collect_provenance();

  std::string tool = "unknown";
  if (!s.argv.empty()) {
    tool = std::filesystem::path(s.argv.front()).filename().string();
  }
  // The file sink is this run's primary artifact; record it even if the
  // binary never called ledger_artifact() itself. Prefer the live config,
  // falling back to the path remembered at ledger_capture_argv() time
  // (flush() clears the config when it closes a JSONL trace).
  std::vector<std::string> artifacts = s.artifacts;
  std::string sink_path = active_sink().path;
  if (sink_path.empty()) sink_path = s.sink_path;
  if (!sink_path.empty()) artifacts.push_back(sink_path);

  std::string line = "{\"schema\":" + jquoted(kLedgerSchema);
  line += ",\"ts\":" + jquoted(utc_timestamp());
  line += ",\"tool\":" + jquoted(tool);
  line += ",\"argv\":[";
  for (std::size_t i = 0; i < s.argv.size(); ++i) {
    if (i) line += ',';
    line += jquoted(s.argv[i]);
  }
  line += "],\"git_sha\":" + jquoted(prov.git_sha);
  line += ",\"compiler\":" + jquoted(prov.compiler);
  line += ",\"build_type\":" + jquoted(prov.build_type);
  line += ",\"cpu\":" + jquoted(prov.cpu_model);
  line += ",\"threads\":" + std::to_string(prov.hardware_threads);
  line += ",\"wall_s\":" + format_number(wall_s);
  line += ",\"peak_rss_kb\":" + std::to_string(peak_rss_kb());
  line += ",\"notes\":{";
  for (std::size_t i = 0; i < s.notes.size(); ++i) {
    if (i) line += ',';
    line += jquoted(s.notes[i].first) + ':' + s.notes[i].second;
  }
  line += "},\"artifacts\":[";
  for (std::size_t i = 0; i < artifacts.size(); ++i) {
    if (i) line += ',';
    line += jquoted(artifacts[i]);
  }
  line += "]}";

  if (!ledger_append_line(path, line)) {
    std::fprintf(stderr, "[obs] warning: could not append run ledger %s\n",
                 path.c_str());
    return false;
  }
  s.appended = true;
  return true;
}

}  // namespace orp::obs

#endif  // ORP_OBS_DISABLED

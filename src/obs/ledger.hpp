#pragma once
// Cross-run ledger: every obs-wired binary appends one JSON record per run
// to $ORP_RUN_LEDGER (default ".orp/runs.jsonl"), so runs stay queryable
// across invocations — which binary, which argv, which build (git SHA,
// compiler, CPU), how long, how much memory, and where the artifacts went.
//
// Record schema ("orp-run/1"), one object per line:
//   {"schema":"orp-run/1","ts":"2026-08-08T12:34:56Z","tool":"abl_random_vs_sa",
//    "argv":["abl_random_vs_sa","--obs-out","trace.jsonl"],
//    "git_sha":"8f151e1","compiler":"gcc 12.2.0","build_type":"Release",
//    "cpu":"...","threads":16,"wall_s":12.345,"peak_rss_kb":68112,
//    "notes":{"n":"256","best_haspl":"4.31"},"artifacts":["trace.jsonl"]}
//
// Appends are one O_APPEND write() of the whole line, so concurrent
// writers (parallel CI jobs, a sweep script) never interleave partial
// records. Set ORP_RUN_LEDGER to "none", "off", or an empty string to
// disable; relative default paths resolve against the working directory.
//
// With ORP_OBS_DISABLED everything below is an inline no-op stub.

#include <cstdint>
#include <string>
#include <string_view>

#ifndef ORP_OBS_DISABLED

namespace orp::obs {

inline constexpr const char* kLedgerSchema = "orp-run/1";
inline constexpr const char* kDefaultLedgerPath = ".orp/runs.jsonl";

/// Resolved ledger path: $ORP_RUN_LEDGER, or kDefaultLedgerPath when unset.
/// Empty when the ledger is disabled ("", "none", "off").
std::string ledger_path();

/// Captures argv and the run start time. Call once, right after argument
/// parsing; append_run_ledger() measures wall time from here.
void ledger_capture_argv(int argc, const char* const* argv);

/// Attaches a key/value to this run's record (last write per key wins).
void ledger_note(std::string_view key, std::string_view value);
void ledger_note(std::string_view key, double value);
void ledger_note(std::string_view key, std::int64_t value);

/// Registers an output file produced by this run (trace path, BENCH json).
void ledger_artifact(std::string_view path);

/// Builds the record and appends it to the ledger. Returns false when the
/// ledger is disabled or the write failed. Appends at most once per
/// process (later calls are no-ops returning true), so an explicit call
/// and an exit hook cannot double-record a run.
bool append_run_ledger();

/// Appends `line` + '\n' to `path` with a single O_APPEND write, creating
/// parent directories as needed. Exposed for tests and external tooling.
bool ledger_append_line(const std::string& path, const std::string& line);

}  // namespace orp::obs

#else  // ORP_OBS_DISABLED

namespace orp::obs {

inline constexpr const char* kLedgerSchema = "orp-run/1";
inline constexpr const char* kDefaultLedgerPath = ".orp/runs.jsonl";

inline std::string ledger_path() { return std::string(); }
inline void ledger_capture_argv(int, const char* const*) {}
inline void ledger_note(std::string_view, std::string_view) {}
inline void ledger_note(std::string_view, double) {}
inline void ledger_note(std::string_view, std::int64_t) {}
inline void ledger_artifact(std::string_view) {}
inline bool append_run_ledger() { return false; }
inline bool ledger_append_line(const std::string&, const std::string&) {
  return false;
}

}  // namespace orp::obs

#endif  // ORP_OBS_DISABLED

#ifndef ORP_OBS_DISABLED

#include "obs/metrics.hpp"

#include "obs/sink.hpp"

namespace orp::obs {

namespace {

// Every instrumented binary links this translation unit, so ORP_OBS_OUT
// takes effect process-wide with no per-binary wiring. apply_cli() can
// still override the sink after argument parsing.
[[maybe_unused]] const bool g_env_sink_installed = install_env_sink();

}  // namespace

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace detail

std::uint64_t HistogramSample::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile among `count` ordered samples (1-based, ceil).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Clamp the bucket edge by the observed extrema so tiny histograms
      // report exact values instead of power-of-two edges.
      const std::uint64_t edge = detail::bucket_upper(b);
      return edge > max ? max : (edge < min ? min : edge);
    }
  }
  return max;
}

double HistogramSample::quantile_interp(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] < rank) {
      seen += buckets[b];
      continue;
    }
    // The rank lands in bucket b: spread its samples uniformly across
    // [lower, upper] and read off the centered position of this rank.
    const double lower = static_cast<double>(detail::bucket_lower(b));
    const double upper = static_cast<double>(detail::bucket_upper(b));
    const double position =
        (static_cast<double>(rank - seen) - 0.5) / static_cast<double>(buckets[b]);
    double estimate = lower + (upper - lower) * position;
    const double lo = static_cast<double>(min);
    const double hi = static_cast<double>(max);
    if (estimate < lo) estimate = lo;
    if (estimate > hi) estimate = hi;
    return estimate;
  }
  return static_cast<double>(max);
}

HistogramSample Histogram::sample() const noexcept {
  HistogramSample out;
  for (const Shard& shard : shards_) {
    out.count += shard.count.load(std::memory_order_relaxed);
    out.sum += shard.sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  if (out.count > 0) {
    out.min = min_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) bucket.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  // Intentionally leaked: the atexit flush (obs/sink.cpp) snapshots the
  // registry, and a Meyers static could be destroyed before that callback
  // runs when the sink was configured before the first instrument lookup.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back({name, counter->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.push_back({name, gauge->value(), gauge->max()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample s = histogram->sample();
    s.name = name;
    out.histograms.push_back(std::move(s));
  }
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

}  // namespace orp::obs

#endif  // ORP_OBS_DISABLED

#pragma once
// Process-wide metrics registry: named counters, gauges, and log2-bucketed
// latency histograms (see docs/obs.md for the exported schema).
//
// Hot-path writes go to per-thread shards (each thread gets a cache-line
// padded slot assigned from a thread-local ordinal) so concurrent
// increments never contend on one cache line; snapshot() merges the shards
// with relaxed loads. Instruments are created on first lookup and live for
// the process lifetime, so call sites can cache references:
//
//   static obs::Counter& accepted =
//       obs::Registry::global().counter("annealer.accepted");
//   accepted.add(1);
//
// Defining ORP_OBS_DISABLED swaps every type for an empty inline stub so
// instrumented hot loops compile to nothing (asserted by
// tests/obs_disabled_compile_test.cpp).

#include <cstdint>

#ifndef ORP_OBS_DISABLED

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace orp::obs {

inline constexpr std::size_t kShards = 16;  // power of two (masked below)
inline constexpr std::size_t kHistogramBuckets = 64;

namespace detail {

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};

/// Small per-thread ordinal; two threads may share a shard (striping), which
/// only costs an occasional contended fetch_add, never correctness.
std::size_t shard_index() noexcept;

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Bucket of a value: index i holds values v with bit_width(v) == i, i.e.
/// [2^(i-1), 2^i). Bucket 0 holds exactly v == 0. The last bucket is
/// open-ended: values with bit_width >= kHistogramBuckets (>= 2^63) fold
/// into it, keeping the index inside the bucket array.
inline std::size_t bucket_of(std::uint64_t value) noexcept {
  std::size_t width = 0;
  while (value) {
    ++width;
    value >>= 1;
  }
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

/// Upper edge of bucket i (inclusive): 2^i - 1. The open-ended last bucket
/// reports the full uint64 range.
inline std::uint64_t bucket_upper(std::size_t bucket) noexcept {
  if (bucket >= kHistogramBuckets - 1) return ~0ULL;
  return (bucket == 0) ? 0 : ((1ULL << bucket) - 1);
}

/// Lower edge of bucket i (inclusive): 2^(i-1); bucket 0 holds exactly 0.
inline std::uint64_t bucket_lower(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= kHistogramBuckets) bucket = kHistogramBuckets - 1;
  return 1ULL << (bucket - 1);
}

}  // namespace detail

/// Monotonic counter. add() is wait-free on the caller's shard.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    shards_[detail::shard_index() & (kShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedU64, kShards> shards_;
};

/// Instantaneous level (queue depths, active workers). Unlike counters a
/// gauge is one atomic: sets and deltas are rare relative to counter
/// bumps, and sharding would break high-watermark tracking.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(std::int64_t delta) noexcept {
    const std::int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0) raise_max(now);
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  std::int64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t candidate) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Aggregated view of one histogram at snapshot time.
struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  /// Upper edge of the bucket holding the q-quantile (q in [0, 1]).
  std::uint64_t quantile(double q) const noexcept;
  /// Quantile estimate interpolated linearly *within* the log2 bucket that
  /// holds the q-quantile's rank, clamped by the observed [min, max]. A
  /// much tighter estimate than the bucket edge (p50 of uniform 1..1000 is
  /// ~500, not 511); this is what the summary table and the JSONL metric
  /// records report as p50/p90/p99.
  double quantile_interp(double q) const noexcept;
};

/// Log2-bucketed histogram for latencies in nanoseconds (or any non-negative
/// integer quantity). 64 buckets cover the full uint64 range.
class Histogram {
 public:
  void record(std::uint64_t value) noexcept {
    Shard& shard = shards_[detail::shard_index() & (kHistShards - 1)];
    shard.buckets[detail::bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    lower_min(value);
    raise_max(value);
  }
  HistogramSample sample() const noexcept;
  void reset() noexcept;

 private:
  // Fewer shards than counters: a histogram shard is 66 words, and the
  // recording sites (evaluation/task latencies) run at kHz, not MHz.
  static constexpr std::size_t kHistShards = 8;
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  void lower_min(std::uint64_t v) noexcept {
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen &&
           !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  void raise_max(std::uint64_t v) noexcept {
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::array<Shard, kHistShards> shards_;
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII wall-clock timer recording elapsed nanoseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(&histogram), start_ns_(detail::now_ns()) {}
  ~ScopedTimer() { histogram_->record(detail::now_ns() - start_ns_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

/// Point-in-time merge of every registered instrument, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Name → instrument map. Lookups take a mutex; the returned references are
/// stable for the process lifetime, so hot paths look up once and cache.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  /// Zeroes every instrument (references stay valid). Test/bench helper.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace orp::obs

#else  // ORP_OBS_DISABLED — every instrument is an empty inline no-op.

#include <array>
#include <string>
#include <string_view>
#include <vector>

namespace orp::obs {

inline constexpr std::size_t kHistogramBuckets = 64;

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  void inc() noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void sub(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
  std::int64_t max() const noexcept { return 0; }
  void reset() noexcept {}
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  double mean() const noexcept { return 0.0; }
  std::uint64_t quantile(double) const noexcept { return 0; }
  double quantile_interp(double) const noexcept { return 0.0; }
};

class Histogram {
 public:
  void record(std::uint64_t) noexcept {}
  HistogramSample sample() const noexcept { return {}; }
  void reset() noexcept {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) noexcept {}
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  bool empty() const noexcept { return true; }
};

class Registry {
 public:
  static Registry& global() {
    static Registry instance;
    return instance;
  }
  Counter& counter(std::string_view) {
    static Counter c;
    return c;
  }
  Gauge& gauge(std::string_view) {
    static Gauge g;
    return g;
  }
  Histogram& histogram(std::string_view) {
    static Histogram h;
    return h;
  }
  MetricsSnapshot snapshot() const { return {}; }
  void reset() {}
};

}  // namespace orp::obs

#endif  // ORP_OBS_DISABLED

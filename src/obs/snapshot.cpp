#ifndef ORP_OBS_DISABLED

#include "obs/snapshot.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace orp::obs {
namespace {

// Last-seen values per instrument, keyed by name. Owned by the sampler
// thread while it runs and by stop_snapshot_sampler() after the join, so it
// needs no locking of its own.
struct Baseline {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> histograms;
};

struct SamplerState {
  std::mutex mutex;
  std::condition_variable cv;
  std::thread thread;
  bool stopping = false;
  std::atomic<bool> running{false};
  Baseline baseline;
};

SamplerState& state() {
  static SamplerState* instance = new SamplerState();  // leaked: atexit-safe
  return *instance;
}

/// One tick: diff the registry against the baseline and emit the deltas.
void emit_sample(Baseline& prev) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  const MetricsSnapshot snapshot = Registry::global().snapshot();
  for (const CounterSample& c : snapshot.counters) {
    std::uint64_t& seen = prev.counters[c.name];
    if (c.value != seen) {
      tracer.counter(c.name, static_cast<double>(c.value - seen), "snapshot");
      seen = c.value;
    }
  }
  for (const GaugeSample& g : snapshot.gauges) {
    auto it = prev.gauges.find(g.name);
    if (it == prev.gauges.end() || it->second != g.value) {
      tracer.counter(g.name, static_cast<double>(g.value), "snapshot.level");
      prev.gauges[g.name] = g.value;
    }
  }
  for (const HistogramSample& h : snapshot.histograms) {
    auto& seen = prev.histograms[h.name];
    if (h.count != seen.first) {
      tracer.counter(h.name + ".count", static_cast<double>(h.count - seen.first),
                     "snapshot");
      tracer.counter(h.name + ".sum", static_cast<double>(h.sum - seen.second),
                     "snapshot");
      seen = {h.count, h.sum};
    }
  }
}

void sampler_main(std::uint32_t interval_ms) {
  SamplerState& s = state();
  for (;;) {
    {
      std::unique_lock lock(s.mutex);
      s.cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                    [&s] { return s.stopping; });
      // stop_snapshot_sampler() emits the tail sample after joining, so a
      // stop request exits without sampling here.
      if (s.stopping) return;
    }
    emit_sample(s.baseline);
  }
}

}  // namespace

std::uint32_t snapshot_interval_from_env() noexcept {
  const char* raw = std::getenv("ORP_OBS_SNAPSHOT_MS");
  if (!raw || !*raw) return kDefaultSnapshotMs;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return kDefaultSnapshotMs;
  return static_cast<std::uint32_t>(value);
}

bool start_snapshot_sampler(std::uint32_t interval_ms) {
  if (interval_ms == 0) return false;
  SamplerState& s = state();
  std::lock_guard lock(s.mutex);
  if (s.running.load(std::memory_order_relaxed)) return false;
  s.stopping = false;
  // Seed the baseline from the current registry so the first tick reports
  // only its own interval, not everything since process start.
  s.baseline = Baseline{};
  const MetricsSnapshot now = Registry::global().snapshot();
  for (const CounterSample& c : now.counters) s.baseline.counters[c.name] = c.value;
  for (const GaugeSample& g : now.gauges) s.baseline.gauges[g.name] = g.value;
  for (const HistogramSample& h : now.histograms) {
    s.baseline.histograms[h.name] = {h.count, h.sum};
  }
  s.running.store(true, std::memory_order_relaxed);
  s.thread = std::thread([interval_ms] { sampler_main(interval_ms); });
  return true;
}

void stop_snapshot_sampler() {
  SamplerState& s = state();
  std::thread worker;
  {
    std::lock_guard lock(s.mutex);
    if (!s.running.load(std::memory_order_relaxed)) return;
    s.stopping = true;
    worker = std::move(s.thread);
  }
  s.cv.notify_all();
  if (worker.joinable()) worker.join();
  // Tail sample: whatever accumulated between the last tick and the stop
  // still lands in the trace, before the caller flushes the trailer.
  emit_sample(s.baseline);
  s.running.store(false, std::memory_order_relaxed);
}

bool snapshot_sampler_running() noexcept {
  return state().running.load(std::memory_order_relaxed);
}

}  // namespace orp::obs

#endif  // ORP_OBS_DISABLED

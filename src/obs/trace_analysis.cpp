#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/json.hpp"
#include "common/table.hpp"

namespace orp::obs::report {
namespace {

// One Chrome-trace event in parsed form; only the fields the analysis
// needs. `ts` is microseconds (the unit the sink writes).
struct Event {
  char phase = '?';
  double ts = 0.0;
  std::int64_t tid = 0;
  std::string category;
  std::string name;
  double value = 0.0;       // counter sample ("args":{"value":N})
  std::uint64_t flow = 0;   // "id" on s/f events
};

double number_or(const JsonValue* v, double fallback) {
  return (v && v->is_number()) ? v->as_number() : fallback;
}

std::string string_or(const JsonValue* v, const std::string& fallback) {
  return (v && v->is_string()) ? v->as_string() : fallback;
}

/// Reads the "net.*" instant events into the NetworkAnalysis vectors.
/// Missing args default to zero — the emitter always writes every field,
/// so a partial record means a truncated trace, not a crash.
void parse_net_event(const std::string& name, const JsonValue* args,
                     NetworkAnalysis& net) {
  auto n = [&](const char* key) {
    return args ? number_or(args->find(key), 0.0) : 0.0;
  };
  auto u32 = [&](const char* key) {
    return static_cast<std::uint32_t>(n(key));
  };
  auto u64 = [&](const char* key) {
    return static_cast<std::uint64_t>(n(key));
  };
  if (name == "net.flow") {
    NetFlow f;
    f.phase = u64("phase");
    f.src = u32("src");
    f.dst = u32("dst");
    f.bytes = u64("bytes");
    f.hops = u32("hops");
    f.retries = u32("retries");
    f.failed = args && string_or(args->find("status"), "ok") == "failed";
    f.start_s = n("start_s");
    f.total_s = n("total_s");
    f.ser_s = n("ser_s");
    f.queue_s = n("queue_s");
    f.hop_s = n("hop_s");
    f.retry_s = n("retry_s");
    f.overhead_s = n("ovh_s");
    f.rate_first_bps = n("rate_first_bps");
    f.rate_last_bps = n("rate_last_bps");
    f.rate_mean_bps = n("rate_mean_bps");
    net.flows.push_back(f);
    net.present = true;
  } else if (name == "net.link") {
    NetLink l;
    l.phase = u64("phase");
    l.step = static_cast<std::int64_t>(n("step"));
    l.link = u32("link");
    l.t0_s = n("t0_s");
    l.t1_s = n("t1_s");
    l.utilization = n("util");
    l.flows = u32("flows");
    l.fair_bps = n("fair_bps");
    net.link_samples.push_back(l);
    net.present = true;
  } else if (name == "net.phase") {
    NetPhase p;
    p.phase = u64("phase");
    p.flows = u32("flows");
    p.completed = u32("completed");
    p.failed = u32("failed");
    p.retried = u32("retried");
    p.steps = u32("steps");
    p.start_s = n("start_s");
    p.elapsed_s = n("elapsed_s");
    p.transfer_s = n("transfer_s");
    p.max_utilization = n("max_util");
    net.phases.push_back(std::move(p));
    net.present = true;
  } else if (name == "net.meta") {
    net.flows_seen = u64("flows_seen");
    net.flows_kept = u64("flows_kept");
    net.links_seen = u64("links_seen");
    net.links_kept = u64("links_kept");
    net.phases_seen = u64("phases_seen");
    net.phases_kept = u64("phases_kept");
    net.present = true;
  }
}

/// Parses one JSONL line into `out`. Returns false when the line is not a
/// well-formed event (the caller counts it as malformed). Lines carrying a
/// "kind" key are the trailer metric records — valid, but not events; they
/// set `*is_metric` instead. "cat":"net" instants additionally feed `net`.
bool parse_line(const std::string& line, Event& out, bool* is_metric,
                NetworkAnalysis& net) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const std::exception&) {
    return false;
  }
  if (!doc.is_object()) return false;
  if (doc.find("kind") != nullptr) {
    *is_metric = true;
    return true;
  }
  const JsonValue* ph = doc.find("ph");
  if (!ph || !ph->is_string() || ph->as_string().size() != 1) return false;
  out.phase = ph->as_string()[0];
  const JsonValue* ts = doc.find("ts");
  if (!ts || !ts->is_number()) return false;
  out.ts = ts->as_number();
  out.tid = static_cast<std::int64_t>(number_or(doc.find("tid"), 0.0));
  out.category = string_or(doc.find("cat"), "");
  out.name = string_or(doc.find("name"), "");
  out.flow = static_cast<std::uint64_t>(number_or(doc.find("id"), 0.0));
  const JsonValue* args = doc.find("args");
  if (args) out.value = number_or(args->find("value"), 0.0);
  if (out.phase == 'i' && out.category == "net") {
    parse_net_event(out.name, args, net);
  }
  return true;
}

// An open span on a per-tid stack: children report their total duration
// into `child_us` so the parent can subtract it (self time).
struct OpenSpan {
  std::string category;
  std::string name;
  double begin_ts = 0.0;
  double child_us = 0.0;
};

struct SpanAccum {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
  double max_us = 0.0;
};

struct CounterAccum {
  std::vector<std::pair<double, double>> samples;  // (ts, value)
};

using Key = std::pair<std::string, std::string>;  // (category, name)

void close_span(std::map<Key, SpanAccum>& accum, std::vector<OpenSpan>& stack,
                double end_ts) {
  OpenSpan open = std::move(stack.back());
  stack.pop_back();
  const double total = std::max(0.0, end_ts - open.begin_ts);
  const double self = std::max(0.0, total - open.child_us);
  SpanAccum& a = accum[Key{open.category, open.name}];
  a.count += 1;
  a.total_us += total;
  a.self_us += self;
  a.max_us = std::max(a.max_us, total);
  if (!stack.empty()) stack.back().child_us += total;
}

/// Best-so-far value of a (ts, value) series at time `t` (last sample with
/// ts <= t); the first sample when `t` precedes the series.
double value_at(const std::vector<std::pair<double, double>>& series, double t) {
  double v = series.empty() ? 0.0 : series.front().second;
  for (const auto& [ts, value] : series) {
    if (ts > t) break;
    v = value;
  }
  return v;
}

Convergence analyze_convergence(const std::map<Key, CounterAccum>& counters,
                                std::size_t window_count) {
  Convergence conv;
  auto series = [&](const char* name) -> const std::vector<std::pair<double, double>>* {
    auto it = counters.find(Key{"search", name});
    return it == counters.end() ? nullptr : &it->second.samples;
  };
  const auto* best = series("annealer.best_haspl");
  if (!best || best->empty()) return conv;
  const auto* acceptance = series("annealer.acceptance_rate");
  const auto* temperature = series("annealer.temperature");
  const auto* iteration = series("annealer.iteration");

  conv.present = true;
  conv.samples = best->size();
  conv.initial_best = best->front().second;
  conv.final_best = best->back().second;

  const double t0 = best->front().first;
  const double t1 = best->back().first;
  const double span_s = (t1 - t0) / 1e6;
  if (span_s > 0) conv.improvement_per_s = (conv.initial_best - conv.final_best) / span_s;

  // Last strict improvement of the best-so-far series. h-ASPL is minimized,
  // so progress means the value went DOWN.
  double last_improvement_ts = t0;
  double prev = best->front().second;
  for (const auto& [ts, value] : *best) {
    if (value < prev - 1e-12) {
      last_improvement_ts = ts;
      prev = value;
    }
  }
  conv.last_improvement_us = last_improvement_ts;
  if (iteration && !iteration->empty()) {
    conv.last_improvement_iter =
        static_cast<std::int64_t>(value_at(*iteration, last_improvement_ts));
  }
  if (t1 > t0) conv.stall_fraction = (t1 - last_improvement_ts) / (t1 - t0);
  // Stall verdict needs enough samples to mean anything: a 4-window run
  // trivially has a large trailing gap.
  conv.stalled = conv.samples >= 8 && conv.stall_fraction > 0.5;

  // Equal time windows over the annealer's own span.
  const std::size_t k = std::max<std::size_t>(1, window_count);
  for (std::size_t w = 0; w < k; ++w) {
    const double lo = t0 + (t1 - t0) * static_cast<double>(w) / static_cast<double>(k);
    const double hi = t0 + (t1 - t0) * static_cast<double>(w + 1) / static_cast<double>(k);
    ConvergenceWindow win;
    win.t_end_us = hi;
    auto mean_in = [&](const std::vector<std::pair<double, double>>* s) {
      if (!s) return 0.0;
      double sum = 0.0;
      std::uint64_t n = 0;
      for (const auto& [ts, value] : *s) {
        // Half-open [lo, hi), closed at the final window so the last
        // sample lands somewhere.
        if (ts < lo || (ts >= hi && w + 1 != k) || ts > hi) continue;
        sum += value;
        ++n;
      }
      if (s == best) win.samples = n;
      return n ? sum / static_cast<double>(n) : 0.0;
    };
    mean_in(best);  // populates win.samples
    win.acceptance = mean_in(acceptance);
    win.temperature = mean_in(temperature);
    win.best_haspl = value_at(*best, hi);
    conv.windows.push_back(win);
  }
  return conv;
}

/// Sorts, aggregates, and derives the per-phase bottleneck sets once every
/// net.* record has been collected. Pure and deterministic: full-tiebreak
/// sorts, no dependence on record arrival order.
void finalize_network(NetworkAnalysis& net) {
  if (!net.present) return;
  std::sort(net.flows.begin(), net.flows.end(),
            [](const NetFlow& a, const NetFlow& b) {
              if (a.phase != b.phase) return a.phase < b.phase;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  std::sort(net.link_samples.begin(), net.link_samples.end(),
            [](const NetLink& a, const NetLink& b) {
              if (a.phase != b.phase) return a.phase < b.phase;
              if (a.step != b.step) return a.step < b.step;
              return a.link < b.link;
            });
  std::sort(net.phases.begin(), net.phases.end(),
            [](const NetPhase& a, const NetPhase& b) { return a.phase < b.phase; });

  for (const NetFlow& f : net.flows) {
    if (f.failed) ++net.failed;
    else ++net.completed;
    if (f.retries > 0) ++net.retried;
    net.sum_total_s += f.total_s;
    net.sum_ser_s += f.ser_s;
    net.sum_queue_s += f.queue_s;
    net.sum_hop_s += f.hop_s;
    net.sum_retry_s += f.retry_s;
    net.sum_overhead_s += f.overhead_s;
    net.max_total_s = std::max(net.max_total_s, f.total_s);
    const double residual =
        std::abs(f.ser_s + f.queue_s + f.hop_s + f.retry_s + f.overhead_s -
                 f.total_s);
    net.max_residual_s = std::max(net.max_residual_s, residual);
  }

  // Per-link aggregates over every sample mentioning the link.
  std::map<std::uint32_t, NetLinkStat> by_link;
  for (const NetLink& l : net.link_samples) {
    NetLinkStat& s = by_link[l.link];
    s.link = l.link;
    if (s.samples == 0) s.fair_min_bps = l.fair_bps;
    ++s.samples;
    s.util_mean += l.utilization;  // sum for now; divided below
    s.util_max = std::max(s.util_max, l.utilization);
    s.flows_max = std::max(s.flows_max, l.flows);
    s.fair_min_bps = std::min(s.fair_min_bps, l.fair_bps);
  }
  for (auto& [link, s] : by_link) {
    s.util_mean /= static_cast<double>(s.samples);
    net.links.push_back(s);
  }
  std::sort(net.links.begin(), net.links.end(),
            [](const NetLinkStat& a, const NetLinkStat& b) {
              if (a.util_mean != b.util_mean) return a.util_mean > b.util_mean;
              return a.link < b.link;
            });

  // Bottleneck set per phase: phase-bucket samples (step -1) within 5% of
  // the phase's peak, most utilized first, capped at 6.
  for (NetPhase& p : net.phases) {
    std::vector<const NetLink*> buckets;
    for (const NetLink& l : net.link_samples) {
      if (l.phase == p.phase && l.step == -1) buckets.push_back(&l);
    }
    if (buckets.empty()) continue;
    double peak = 0.0;
    for (const NetLink* l : buckets) peak = std::max(peak, l->utilization);
    p.max_utilization = std::max(p.max_utilization, peak);
    std::sort(buckets.begin(), buckets.end(),
              [](const NetLink* a, const NetLink* b) {
                if (a->utilization != b->utilization) {
                  return a->utilization > b->utilization;
                }
                return a->link < b->link;
              });
    for (const NetLink* l : buckets) {
      if (l->utilization < 0.95 * peak) break;
      p.bottleneck_links.push_back(l->link);
      if (p.bottleneck_links.size() >= 6) break;
    }
  }
}

std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

TraceAnalysis analyze_trace(const std::vector<std::string>& lines,
                            const ReportOptions& options) {
  TraceAnalysis result;
  std::vector<Event> events;
  events.reserve(lines.size());
  for (const std::string& line : lines) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++result.total_lines;
    Event e;
    bool is_metric = false;
    if (!parse_line(line, e, &is_metric, result.network)) {
      ++result.malformed_lines;
      continue;
    }
    if (is_metric) {
      ++result.metric_lines;
      continue;
    }
    ++result.event_lines;
    events.push_back(std::move(e));
  }
  finalize_network(result.network);
  if (events.empty()) return result;

  // The tracer's writer thread drains per-batch, so events from different
  // threads can interleave out of order; stable sort restores the timeline
  // while keeping same-ts emission order (B before its own E).
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  const double t_first = events.front().ts;
  const double t_last = events.back().ts;
  result.duration_us = t_last - t_first;

  std::map<std::int64_t, std::vector<OpenSpan>> stacks;
  std::map<Key, SpanAccum> span_accum;
  std::map<Key, CounterAccum> counter_accum;
  std::map<std::uint64_t, unsigned> flow_seen;  // bit 0: s, bit 1: f

  for (const Event& e : events) {
    switch (e.phase) {
      case 'B':
        stacks[e.tid].push_back(OpenSpan{e.category, e.name, e.ts, 0.0});
        break;
      case 'E': {
        auto& stack = stacks[e.tid];
        if (stack.empty()) {
          ++result.stray_ends;
        } else {
          close_span(span_accum, stack, e.ts);
        }
        break;
      }
      case 'C':
        counter_accum[Key{e.category, e.name}].samples.emplace_back(e.ts, e.value);
        break;
      case 's':
        ++result.flow_starts;
        flow_seen[e.flow] |= 1u;
        break;
      case 'f':
        ++result.flow_finishes;
        flow_seen[e.flow] |= 2u;
        break;
      default:
        break;  // X/M/i events are legal Chrome trace, just not analyzed
    }
  }
  for (auto& [tid, stack] : stacks) {
    result.threads += 1;
    // Close leftovers at trace end (crash / missing Tracer::stop); innermost
    // first so parents still subtract child time.
    while (!stack.empty()) {
      ++result.unclosed_spans;
      close_span(span_accum, stack, t_last);
    }
  }
  for (const auto& [id, bits] : flow_seen) {
    if (bits == 3u) ++result.flow_matched;
  }

  for (const auto& [key, a] : span_accum) {
    SpanStat s;
    s.category = key.first;
    s.name = key.second;
    s.count = a.count;
    s.total_us = a.total_us;
    s.self_us = a.self_us;
    s.max_us = a.max_us;
    result.spans.push_back(std::move(s));
  }
  std::stable_sort(result.spans.begin(), result.spans.end(),
                   [](const SpanStat& a, const SpanStat& b) {
                     if (a.category != b.category) return a.category < b.category;
                     if (a.self_us != b.self_us) return a.self_us > b.self_us;
                     return a.name < b.name;
                   });

  for (const auto& [key, a] : counter_accum) {
    CounterStat c;
    c.category = key.first;
    c.name = key.second;
    c.samples = a.samples.size();
    c.first = a.samples.front().second;
    c.last = a.samples.back().second;
    c.min = c.max = a.samples.front().second;
    for (const auto& [ts, value] : a.samples) {
      c.min = std::min(c.min, value);
      c.max = std::max(c.max, value);
      c.sum += value;
    }
    c.is_delta = key.first == "snapshot";
    result.counters.push_back(std::move(c));
  }

  result.convergence = analyze_convergence(counter_accum, options.windows);
  return result;
}

TraceAnalysis analyze_trace_file(const std::string& path,
                                 const ReportOptions& options) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("orp_report: cannot open trace: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  return analyze_trace(lines, options);
}

std::vector<LedgerEntry> read_ledger_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("orp_report: cannot open ledger: " + path);
  std::vector<LedgerEntry> entries;
  std::string line;
  while (std::getline(file, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonValue doc;
    try {
      doc = JsonValue::parse(line);
    } catch (const std::exception&) {
      continue;  // a torn tail line must not sink the whole report
    }
    if (!doc.is_object()) continue;
    if (string_or(doc.find("schema"), "") != "orp-run/1") continue;
    LedgerEntry e;
    e.ts = string_or(doc.find("ts"), "");
    e.tool = string_or(doc.find("tool"), "");
    e.git_sha = string_or(doc.find("git_sha"), "");
    e.compiler = string_or(doc.find("compiler"), "");
    e.wall_s = number_or(doc.find("wall_s"), 0.0);
    e.peak_rss_kb = static_cast<std::int64_t>(number_or(doc.find("peak_rss_kb"), 0.0));
    if (const JsonValue* notes = doc.find("notes"); notes && notes->is_object()) {
      for (const auto& [key, value] : notes->members()) {
        std::string rendered;
        if (value.is_string()) rendered = value.as_string();
        else if (value.is_number()) rendered = format_double(value.as_number(), 6);
        else if (value.is_bool()) rendered = value.as_bool() ? "true" : "false";
        e.notes.emplace_back(key, std::move(rendered));
      }
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string render_markdown(const TraceAnalysis& a,
                            const std::vector<LedgerEntry>& ledger,
                            const ReportOptions& options) {
  std::ostringstream os;
  os << "# orp_report\n\n";

  os << "## Trace summary\n\n";
  {
    Table t({"metric", "value"});
    t.row().add("lines").add(a.total_lines);
    t.row().add("events").add(a.event_lines);
    t.row().add("metric records").add(a.metric_lines);
    t.row().add("malformed lines").add(a.malformed_lines);
    t.row().add("threads").add(static_cast<std::size_t>(a.threads));
    t.row().add("duration (ms)").add(a.duration_us / 1000.0, 3);
    t.row().add("unclosed spans").add(a.unclosed_spans);
    t.row().add("stray span ends").add(a.stray_ends);
    t.row().add("flow events (s/f/matched)").add(
        std::to_string(a.flow_starts) + "/" + std::to_string(a.flow_finishes) +
        "/" + std::to_string(a.flow_matched));
    t.print_markdown(os);
  }

  double total_self_us = 0.0;
  for (const SpanStat& s : a.spans) total_self_us += s.self_us;
  os << "\n## Span profile\n\n";
  if (a.spans.empty()) {
    os << "No spans recorded.\n";
  } else {
    os << "Self time sums to " << format_double(total_self_us / 1000.0, 3)
       << " ms across " << a.spans.size() << " span kinds (top "
       << options.top_k << " per category by self time).\n\n";
    Table t({"category", "name", "count", "total ms", "self ms", "self %",
             "mean us", "max us"});
    std::string current_cat;
    std::size_t shown_in_cat = 0;
    for (const SpanStat& s : a.spans) {
      if (s.category != current_cat) {
        current_cat = s.category;
        shown_in_cat = 0;
      }
      if (++shown_in_cat > options.top_k) continue;
      t.row()
          .add(s.category)
          .add(s.name)
          .add(static_cast<std::size_t>(s.count))
          .add(s.total_us / 1000.0, 3)
          .add(s.self_us / 1000.0, 3)
          .add(total_self_us > 0 ? 100.0 * s.self_us / total_self_us : 0.0, 1)
          .add(s.count ? s.total_us / static_cast<double>(s.count) : 0.0, 1)
          .add(s.max_us, 1);
    }
    t.print_markdown(os);
  }

  os << "\n## Counters\n\n";
  const bool any_delta =
      std::any_of(a.counters.begin(), a.counters.end(),
                  [](const CounterStat& c) { return c.is_delta; });
  const bool any_level =
      std::any_of(a.counters.begin(), a.counters.end(),
                  [](const CounterStat& c) { return !c.is_delta; });
  if (!any_delta && !any_level) os << "No counter series recorded.\n";
  if (any_delta) {
    os << "### Snapshot deltas (rates)\n\n";
    Table t({"name", "samples", "total", "rate /s", "max delta"});
    const double dur_s = a.duration_us / 1e6;
    for (const CounterStat& c : a.counters) {
      if (!c.is_delta) continue;
      t.row()
          .add(c.name)
          .add(static_cast<std::size_t>(c.samples))
          .add(c.sum, 3)
          .add(dur_s > 0 ? c.sum / dur_s : 0.0, 1)
          .add(c.max, 3);
    }
    t.print_markdown(os);
    os << '\n';
  }
  if (any_level) {
    os << "### Sampled levels\n\n";
    Table t({"category", "name", "samples", "first", "last", "min", "max"});
    for (const CounterStat& c : a.counters) {
      if (c.is_delta) continue;
      t.row()
          .add(c.category)
          .add(c.name)
          .add(static_cast<std::size_t>(c.samples))
          .add(c.first, 4)
          .add(c.last, 4)
          .add(c.min, 4)
          .add(c.max, 4);
    }
    t.print_markdown(os);
  }

  os << "\n## Network\n\n";
  const NetworkAnalysis& net = a.network;
  if (!net.present) {
    os << "No network telemetry in this trace.\n";
  } else {
    os << "- flow records: " << net.flows.size() << " (" << net.completed
       << " ok, " << net.failed << " failed, " << net.retried << " retried)\n";
    os << "- link samples: " << net.link_samples.size() << " across "
       << net.links.size() << " links; phases: " << net.phases.size() << "\n";
    os << "- attribution residual (max |term sum - total|): "
       << format_double(net.max_residual_s * 1e9, 6) << " ns\n";
    const bool dropped = net.flows_seen > net.flows_kept ||
                         net.links_seen > net.links_kept ||
                         net.phases_seen > net.phases_kept;
    if (dropped) {
      os << "- coverage: SAMPLED — reservoirs kept " << net.flows_kept << "/"
         << net.flows_seen << " flows, " << net.links_kept << "/"
         << net.links_seen << " link samples, " << net.phases_kept << "/"
         << net.phases_seen << " phases\n";
    } else {
      os << "- coverage: complete (no reservoir drops)\n";
    }

    os << "\n### Latency attribution\n\n";
    {
      Table t({"term", "seconds", "share %"});
      const double total = net.sum_total_s;
      auto term = [&](const char* name, double seconds) {
        t.row().add(name).add(seconds, 9).add(
            total > 0 ? 100.0 * seconds / total : 0.0, 2);
      };
      term("serialization", net.sum_ser_s);
      term("queueing", net.sum_queue_s);
      term("hop / propagation", net.sum_hop_s);
      term("retry backoff", net.sum_retry_s);
      term("software overhead", net.sum_overhead_s);
      term("total", total);
      t.print_markdown(os);
    }

    if (!net.flows.empty()) {
      os << "\n### Slowest flows (top " << options.net_top
         << " by completion time)\n\n";
      std::vector<const NetFlow*> slowest;
      for (const NetFlow& f : net.flows) slowest.push_back(&f);
      std::stable_sort(slowest.begin(), slowest.end(),
                       [](const NetFlow* x, const NetFlow* y) {
                         return x->total_s > y->total_s;
                       });
      if (slowest.size() > options.net_top) slowest.resize(options.net_top);
      Table t({"phase", "src->dst", "bytes", "hops", "status", "total ms",
               "ser ms", "queue ms", "hop us", "retry ms", "mean MB/s"});
      for (const NetFlow* f : slowest) {
        t.row()
            .add(static_cast<std::size_t>(f->phase))
            .add(std::to_string(f->src) + "->" + std::to_string(f->dst))
            .add(static_cast<long long>(f->bytes))
            .add(static_cast<std::size_t>(f->hops))
            .add(f->failed ? "FAILED" : (f->retries ? "retried" : "ok"))
            .add(f->total_s * 1e3, 6)
            .add(f->ser_s * 1e3, 6)
            .add(f->queue_s * 1e3, 6)
            .add(f->hop_s * 1e6, 3)
            .add(f->retry_s * 1e3, 6)
            .add(f->rate_mean_bps / 1e6, 1);
      }
      t.print_markdown(os);
    }

    if (!net.links.empty()) {
      os << "\n### Link heatmap (top " << options.net_top
         << " by mean utilization)\n\n";
      Table t({"link", "samples", "mean util", "max util", "peak flows",
               "min fair MB/s", "heat"});
      std::size_t shown = 0;
      for (const NetLinkStat& s : net.links) {
        if (++shown > options.net_top) break;
        const int blocks = std::min(
            8, static_cast<int>(std::ceil(s.util_max * 8.0 - 1e-12)));
        t.row()
            .add(static_cast<std::size_t>(s.link))
            .add(static_cast<std::size_t>(s.samples))
            .add(s.util_mean, 4)
            .add(s.util_max, 4)
            .add(static_cast<std::size_t>(s.flows_max))
            .add(s.fair_min_bps / 1e6, 1)
            .add(std::string(static_cast<std::size_t>(std::max(0, blocks)),
                             '#'));
      }
      t.print_markdown(os);
    }

    if (!net.phases.empty()) {
      os << "\n### Phase bottlenecks (top " << options.net_top
         << " by max utilization)\n\n";
      std::vector<const NetPhase*> hot;
      for (const NetPhase& p : net.phases) hot.push_back(&p);
      std::stable_sort(hot.begin(), hot.end(),
                       [](const NetPhase* x, const NetPhase* y) {
                         return x->max_utilization > y->max_utilization;
                       });
      if (hot.size() > options.net_top) hot.resize(options.net_top);
      Table t({"phase", "flows", "ok/retry/fail", "steps", "start ms",
               "elapsed ms", "max util", "bottleneck links"});
      for (const NetPhase* p : hot) {
        std::string bset;
        for (std::size_t i = 0; i < p->bottleneck_links.size(); ++i) {
          if (i) bset += ',';
          bset += std::to_string(p->bottleneck_links[i]);
        }
        t.row()
            .add(static_cast<std::size_t>(p->phase))
            .add(static_cast<std::size_t>(p->flows))
            .add(std::to_string(p->completed) + "/" +
                 std::to_string(p->retried) + "/" + std::to_string(p->failed))
            .add(static_cast<std::size_t>(p->steps))
            .add(p->start_s * 1e3, 6)
            .add(p->elapsed_s * 1e3, 6)
            .add(p->max_utilization, 4)
            .add(bset.empty() ? "-" : bset);
      }
      t.print_markdown(os);
    }
  }

  os << "\n## Annealer convergence\n\n";
  const Convergence& conv = a.convergence;
  if (!conv.present) {
    os << "No annealer telemetry in this trace.\n";
  } else {
    os << "- samples: " << conv.samples << "\n";
    os << "- h-ASPL: " << format_double(conv.initial_best, 6) << " -> "
       << format_double(conv.final_best, 6) << " (improvement "
       << format_double(conv.initial_best - conv.final_best, 6) << ", "
       << format_double(conv.improvement_per_s, 6) << "/s)\n";
    os << "- last improvement at " << format_double(conv.last_improvement_us / 1000.0, 3)
       << " ms";
    if (conv.last_improvement_iter >= 0) {
      os << " (iteration " << conv.last_improvement_iter << ")";
    }
    os << "\n";
    os << "- verdict: "
       << (conv.stalled ? "STALLED" : "progressing")
       << " (trailing " << format_double(100.0 * conv.stall_fraction, 1)
       << "% of the run without improvement)\n\n";
    Table t({"window", "t_end ms", "samples", "acceptance", "temperature",
             "best h-ASPL"});
    for (std::size_t w = 0; w < conv.windows.size(); ++w) {
      const ConvergenceWindow& win = conv.windows[w];
      t.row()
          .add(w + 1)
          .add(win.t_end_us / 1000.0, 3)
          .add(static_cast<std::size_t>(win.samples))
          .add(win.acceptance, 4)
          .add(win.temperature, 4)
          .add(win.best_haspl, 6);
    }
    t.print_markdown(os);
  }

  if (!ledger.empty()) {
    os << "\n## Run ledger\n\n";
    Table t({"ts", "tool", "git sha", "compiler", "wall s", "peak RSS kB"});
    // Most recent last — matches the append order of .orp/runs.jsonl.
    for (const LedgerEntry& e : ledger) {
      t.row()
          .add(e.ts)
          .add(e.tool)
          .add(e.git_sha)
          .add(e.compiler)
          .add(e.wall_s, 3)
          .add(static_cast<long long>(e.peak_rss_kb));
    }
    t.print_markdown(os);
  }
  return os.str();
}

std::string render_csv(const TraceAnalysis& a, const ReportOptions& options) {
  std::ostringstream os;
  os << "section,category,name,count,x1,x2,x3,x4\n";
  auto emit = [&](const std::string& section, const std::string& category,
                  const std::string& name, std::uint64_t count, double x1,
                  double x2, double x3, double x4) {
    os << csv_cell(section) << ',' << csv_cell(category) << ','
       << csv_cell(name) << ',' << count << ',' << format_double(x1, 6) << ','
       << format_double(x2, 6) << ',' << format_double(x3, 6) << ','
       << format_double(x4, 6) << '\n';
  };
  emit("summary", "", "lines", a.total_lines, static_cast<double>(a.event_lines),
       static_cast<double>(a.metric_lines), static_cast<double>(a.malformed_lines),
       a.duration_us);
  emit("summary", "", "flows", a.flow_starts, static_cast<double>(a.flow_finishes),
       static_cast<double>(a.flow_matched), static_cast<double>(a.unclosed_spans),
       static_cast<double>(a.stray_ends));
  std::string current_cat;
  std::size_t shown_in_cat = 0;
  for (const SpanStat& s : a.spans) {
    if (s.category != current_cat) {
      current_cat = s.category;
      shown_in_cat = 0;
    }
    if (++shown_in_cat > options.top_k) continue;
    emit("span", s.category, s.name, s.count, s.total_us, s.self_us, s.max_us,
         s.count ? s.total_us / static_cast<double>(s.count) : 0.0);
  }
  for (const CounterStat& c : a.counters) {
    emit(c.is_delta ? "counter_delta" : "counter_level", c.category, c.name,
         c.samples, c.is_delta ? c.sum : c.first, c.is_delta ? c.max : c.last,
         c.min, c.max);
  }
  if (a.convergence.present) {
    const Convergence& conv = a.convergence;
    emit("convergence", "search", "best_haspl", conv.samples, conv.initial_best,
         conv.final_best, conv.improvement_per_s, conv.stall_fraction);
    for (std::size_t w = 0; w < conv.windows.size(); ++w) {
      const ConvergenceWindow& win = conv.windows[w];
      emit("convergence_window", "search", "window" + std::to_string(w + 1),
           win.samples, win.t_end_us, win.acceptance, win.temperature,
           win.best_haspl);
    }
  }
  if (a.network.present) {
    const NetworkAnalysis& net = a.network;
    emit("net_summary", "net", "flows", net.flows.size(),
         static_cast<double>(net.completed), static_cast<double>(net.failed),
         static_cast<double>(net.retried), net.max_residual_s);
    emit("net_attribution", "net", "serialization", net.flows.size(),
         net.sum_ser_s, 0.0, 0.0, 0.0);
    emit("net_attribution", "net", "queueing", net.flows.size(),
         net.sum_queue_s, 0.0, 0.0, 0.0);
    emit("net_attribution", "net", "hop_propagation", net.flows.size(),
         net.sum_hop_s, 0.0, 0.0, 0.0);
    emit("net_attribution", "net", "retry_backoff", net.flows.size(),
         net.sum_retry_s, 0.0, 0.0, 0.0);
    emit("net_attribution", "net", "software_overhead", net.flows.size(),
         net.sum_overhead_s, 0.0, 0.0, 0.0);
    emit("net_attribution", "net", "total", net.flows.size(), net.sum_total_s,
         net.max_total_s, 0.0, 0.0);
    std::size_t shown = 0;
    for (const NetLinkStat& s : net.links) {
      if (++shown > options.net_top) break;
      emit("net_link", "net", "link" + std::to_string(s.link), s.samples,
           s.util_mean, s.util_max, static_cast<double>(s.flows_max),
           s.fair_min_bps);
    }
    for (const NetPhase& p : net.phases) {
      emit("net_phase", "net", "phase" + std::to_string(p.phase), p.flows,
           p.start_s, p.elapsed_s, p.max_utilization,
           static_cast<double>(p.bottleneck_links.size()));
    }
  }
  return os.str();
}

}  // namespace orp::obs::report

#pragma once
// Scoped tracing: RAII Span objects emit begin/end events; a background
// writer thread drains them to a JSONL file whose objects use Chrome
// trace_event fields ("name", "cat", "ph", "ts" in microseconds, "pid",
// "tid", "args"), so a run trace loads directly into chrome://tracing or
// Perfetto. One JSON object per line; see docs/obs.md for the schema.
//
// When no sink is started, Span construction is one relaxed atomic load —
// cheap enough to leave in simulator phase loops. When ORP_OBS_DISABLED is
// defined, Span/Tracer become empty inline stubs and the calls vanish.

#include <cstdint>

#ifndef ORP_OBS_DISABLED

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace orp::obs {

struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',      ///< span opened
    kEnd = 'E',        ///< span closed (carries the span's args)
    kCounter = 'C',    ///< time-series sample
    kInstant = 'i',    ///< point event
    kFlowStart = 's',  ///< flow arrow tail (producer side, inside a span)
    kFlowEnd = 'f',    ///< flow arrow head (consumer side, bp:"e" binding)
  };
  std::string name;
  std::string category;
  Phase phase = Phase::kInstant;
  std::uint64_t ts_ns = 0;  ///< nanoseconds since tracer start
  std::uint32_t tid = 0;
  /// Flow-event correlation id ("id" field); 0 means not a flow event.
  /// Chrome/Perfetto bind s/f pairs on (cat, name, id).
  std::uint64_t flow_id = 0;
  /// Key → pre-encoded JSON value ("3", "0.5", "\"text\"", "[1,2]").
  std::vector<std::pair<std::string, std::string>> args;
};

/// Global event collector. start() opens the output file and launches the
/// writer thread; stop() drains, joins, and closes. Emission between
/// start/stop appends to a double-buffered queue under a short lock.
class Tracer {
 public:
  static Tracer& global();

  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  /// Begins writing JSONL to `path`. Returns false if the file cannot be
  /// opened (tracing stays disabled). Restartable after stop().
  bool start(const std::string& path);
  /// Flushes pending events, writes `trailer_lines` (already-serialized
  /// JSON objects, e.g. the metrics snapshot), and closes the file.
  void stop(const std::vector<std::string>& trailer_lines = {});

  void emit(TraceEvent event);
  /// Convenience "C" event: one sample of a named time series.
  void counter(std::string_view name, double value, std::string_view category = "");

  /// Nanoseconds since start() (0 when disabled); spans timestamp with this.
  std::uint64_t now_ns() const noexcept;
  /// Small dense id for the calling thread (stable per thread).
  static std::uint32_t thread_id() noexcept;

  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;
  void writer_main();
  void write_events(const std::vector<TraceEvent>& events);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_{};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<TraceEvent> buffer_;
  bool stopping_ = false;
  std::thread writer_;
  void* file_ = nullptr;  // std::ofstream*, kept out of the header
};

/// RAII span: emits a begin event at construction and an end event (with
/// any attached args) at destruction. Nesting is expressed by the B/E
/// pairing per thread, exactly as Chrome's trace viewer expects.
class Span {
 public:
  /// `name` and `category` must outlive the span (string literals).
  explicit Span(const char* name, const char* category = "") noexcept
      : name_(name), category_(category), active_(Tracer::global().enabled()) {
    if (active_) emit_begin();
  }
  ~Span() {
    if (active_) emit_end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value to the span's end event. No-ops when inactive.
  void arg(std::string_view key, double value);
  void arg(std::string_view key, std::int64_t value);
  void arg(std::string_view key, std::uint64_t value);
  void arg(std::string_view key, std::string_view value);
  /// Pre-encoded JSON value (arrays/objects), appended verbatim.
  void arg_json(std::string_view key, std::string value);

  bool active() const noexcept { return active_; }

 private:
  void emit_begin();
  void emit_end();

  const char* name_;
  const char* category_;
  bool active_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Escapes a string for embedding inside a JSON string literal (quotes not
/// included). Exposed for the sink layer and tests.
std::string json_escape(std::string_view text);

// ---- trace-context propagation (flow events) ----------------------------
//
// Work handed to another thread (the thread pool) keeps its attribution by
// carrying a flow id: the producer calls flow_begin() while inside a span
// (emitting an 's' event under that span), passes the returned id along
// with the task, and the consumer calls flow_end(id, ...) inside the span
// that executes the task (emitting the 'f' head). Perfetto then draws the
// arrow from the enqueuing span to the task span.

/// True when the calling thread currently has at least one active Span.
bool in_span() noexcept;

/// Emits a flow-start ('s') event and returns its correlation id. Returns 0
/// (and emits nothing) when tracing is off or the caller is not inside a
/// span — there is nothing to attribute the flow to.
std::uint64_t flow_begin(const char* name, const char* category = "");

/// Emits the matching flow-end ('f') head. No-op when `id` is 0. Call this
/// inside the span that executes the handed-off work so the arrow has a
/// slice to land on.
void flow_end(std::uint64_t id, const char* name, const char* category = "");

}  // namespace orp::obs

#else  // ORP_OBS_DISABLED

#include <string>
#include <string_view>
#include <vector>

namespace orp::obs {

struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kCounter = 'C',
    kInstant = 'i',
    kFlowStart = 's',
    kFlowEnd = 'f',
  };
};

class Tracer {
 public:
  static Tracer& global() {
    static Tracer instance;
    return instance;
  }
  bool enabled() const noexcept { return false; }
  bool start(const std::string&) { return false; }
  void stop(const std::vector<std::string>& = {}) {}
  void counter(std::string_view, double, std::string_view = "") {}
  std::uint64_t now_ns() const noexcept { return 0; }
  static std::uint32_t thread_id() noexcept { return 0; }
};

class Span {
 public:
  explicit Span(const char*, const char* = "") noexcept {}
  void arg(std::string_view, double) {}
  void arg(std::string_view, std::int64_t) {}
  void arg(std::string_view, std::uint64_t) {}
  void arg(std::string_view, std::string_view) {}
  void arg_json(std::string_view, std::string) {}
  bool active() const noexcept { return false; }
};

inline std::string json_escape(std::string_view text) { return std::string(text); }

inline bool in_span() noexcept { return false; }
inline std::uint64_t flow_begin(const char*, const char* = "") { return 0; }
inline void flow_end(std::uint64_t, const char*, const char* = "") {}

}  // namespace orp::obs

#endif  // ORP_OBS_DISABLED

#pragma once
// Output selection for the observability layer.
//
// A sink is chosen from the ORP_OBS_OUT environment variable or the
// --obs-out CLI option (CLI wins):
//   "stderr"     — human-readable metrics summary table on stderr at flush
//   "<path>.csv" — metrics snapshot as CSV (one row per instrument)
//   "<path>"     — JSONL: streamed trace events + trailing metric records
//   "" / unset   — no sink (instruments still count; summary on demand)
//
// configure() installs the sink (starting the trace writer for JSONL) and
// registers an atexit flush so a crash-free run always lands its data.
// This header stays the same with ORP_OBS_DISABLED: the calls become
// cheap no-ops (the summary reports the layer as compiled out) so
// examples/benches build identically in both modes.

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace orp {

class CliParser;
class Table;

namespace obs {

enum class SinkKind { kNone, kStderrSummary, kCsv, kJsonl };

struct SinkConfig {
  SinkKind kind = SinkKind::kNone;
  std::string path;  ///< output file for kCsv / kJsonl
  /// Metric-snapshot sampling interval for JSONL traces (ms); every
  /// interval the background sampler emits per-instrument deltas as "C"
  /// events (src/obs/snapshot.hpp). 0 disables sampling.
  std::uint32_t snapshot_ms = 250;
};

/// Maps a spec string to a config: "" → none, "stderr" → summary,
/// "*.csv" → CSV, anything else → JSONL at that path.
SinkConfig parse_sink(std::string_view spec);

/// Reads ORP_OBS_OUT (empty config when unset).
SinkConfig sink_from_env();

/// configure(sink_from_env()) when the variable is set; no-op otherwise.
/// Invoked from a static initializer in metrics.cpp so every instrumented
/// binary honors ORP_OBS_OUT without explicit wiring; apply_cli() may
/// still reconfigure after argument parsing (CLI wins).
bool install_env_sink();

/// Installs `config` as the process sink. For JSONL this starts the
/// background trace writer. Returns false if an output file could not be
/// opened. Reconfiguring flushes the previous sink first.
bool configure(const SinkConfig& config);

/// Writes the metrics snapshot through the active sink (and, for JSONL,
/// drains + closes the trace stream). Safe to call repeatedly; called
/// automatically at exit once configure() has run.
void flush();

/// Registers a callback invoked at the start of every flush, before the
/// snapshot sampler stops and the trace writer drains — the hook's last
/// chance to emit buffered trace events (the sim telemetry reservoirs use
/// this). Hooks run in registration order, live for the process, and must
/// not call flush()/configure() themselves (the sink lock is held). With
/// ORP_OBS_DISABLED the hook is still registered and still runs (it is
/// expected to be a no-op there).
void register_flush_hook(std::function<void()> hook);

/// The currently active sink.
const SinkConfig& active_sink();

/// Renders a snapshot as a table (kind/name/value/count/mean/p50/p90/p99/
/// max; percentiles interpolated within log2 buckets) using the shared
/// Table so the summary matches the bench output style.
Table metrics_table(const MetricsSnapshot& snapshot);

/// Prints the current registry contents as an aligned table.
void print_summary(std::ostream& os);

/// Serializes one snapshot record per line ({"kind":"counter",...});
/// appended to JSONL traces and reused by tests.
std::vector<std::string> snapshot_jsonl(const MetricsSnapshot& snapshot);

/// Writes any Table through the CSV sink machinery (used by benches to
/// emit series like SA convergence traces next to the metrics CSV).
bool write_csv(const Table& table, const std::string& path);

/// Registers --obs-out, --obs-summary, and --obs-snapshot-ms on a parser.
void add_cli_options(CliParser& cli);

/// Applies --obs-out (falling back to ORP_OBS_OUT) after parse(). Returns
/// false when the requested sink could not be opened.
bool apply_cli(const CliParser& cli);

/// True when --obs-summary was passed.
bool cli_wants_summary(const CliParser& cli);

}  // namespace obs
}  // namespace orp

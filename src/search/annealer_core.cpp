#include "search/annealer_core.hpp"

#include <algorithm>
#include <cmath>

#include "common/shutdown.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/operations.hpp"

namespace orp {
namespace {

// Metric handles for the SA hot loop, resolved once per process. Counter
// names record the §5.2 move machinery: a swing either lands, or its
// completing swing lands (net effect: swap), or the solution is restored.
struct AnnealerInstruments {
  obs::Counter& swap_accepted;
  obs::Counter& swing_accepted;
  obs::Counter& completion_accepted;
  obs::Counter& restored;
  obs::Counter& rejected_disconnected;
  obs::Histogram& eval_ns;

  static AnnealerInstruments& get() {
    auto& registry = obs::Registry::global();
    static AnnealerInstruments instance{
        registry.counter("annealer.swap.accepted"),
        registry.counter("annealer.swing.accepted"),
        registry.counter("annealer.completion.accepted"),
        registry.counter("annealer.restored"),
        registry.counter("annealer.rejected.disconnected"),
        registry.histogram("annealer.eval_ns")};
    return instance;
  }
};

using EdgeList = std::vector<std::pair<SwitchId, SwitchId>>;

EdgeList collect_edges(const HostSwitchGraph& g) {
  EdgeList edges;
  edges.reserve(g.num_switch_edges());
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) edges.emplace_back(s, t);
    }
  }
  return edges;
}

void edge_list_remove(EdgeList& edges, SwitchId a, SwitchId b) {
  if (a > b) std::swap(a, b);
  const auto it = std::find(edges.begin(), edges.end(), std::make_pair(a, b));
  ORP_ASSERT(it != edges.end());
  *it = edges.back();
  edges.pop_back();
}

void edge_list_add(EdgeList& edges, SwitchId a, SwitchId b) {
  if (a > b) std::swap(a, b);
  edges.emplace_back(a, b);
}

void sync_swap(EdgeList& edges, const SwapMove& m) {
  edge_list_remove(edges, m.a, m.b);
  edge_list_remove(edges, m.c, m.d);
  edge_list_add(edges, m.a, m.c);
  edge_list_add(edges, m.b, m.d);
}

void sync_swing(EdgeList& edges, const SwingMove& m) {
  edge_list_remove(edges, m.a, m.b);
  edge_list_add(edges, m.a, m.c);
}

}  // namespace

TemperatureSchedule calibrate_schedule(const HostSwitchGraph& initial,
                                       const HostMetrics& initial_metrics,
                                       const AnnealOptions& options) {
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(initial.num_hosts()) * (initial.num_hosts() - 1) / 2;

  // Auto-calibrate the schedule: sample random moves from the start state
  // and scale T0 to the typical |delta| so the walk starts permissive and
  // ends effectively greedy. Without this, a fixed T0 is either a pure
  // random walk (T >> |delta|, e.g. large m) or pure descent (T << |delta|).
  TemperatureSchedule schedule;
  schedule.t_initial = options.initial_temperature;
  schedule.t_final = options.final_temperature;
  if (schedule.t_initial <= 0.0) {
    HostSwitchGraph probe_graph = initial;
    EdgeList edges = collect_edges(probe_graph);
    Xoshiro256 probe_rng(options.seed ^ 0xa5a5a5a5ULL);
    double abs_delta_sum = 0.0;
    int samples = 0;
    for (int i = 0; i < 24; ++i) {
      // Probe with the mode's own move type so the delta scale matches.
      HostMetrics probe;
      if (options.mode == MoveMode::kSwap) {
        const auto move = propose_swap(probe_graph, edges, probe_rng);
        if (!move) break;
        apply_swap(probe_graph, *move);
        probe = compute_host_metrics(probe_graph, options.kernel, options.pool);
        apply_swap(probe_graph, move->inverse());
      } else {
        const auto move = propose_swing(probe_graph, edges, probe_rng);
        if (!move) break;
        apply_swing(probe_graph, *move);
        probe = compute_host_metrics(probe_graph, options.kernel, options.pool);
        apply_swing(probe_graph, move->inverse());
      }
      if (probe.connected) {
        abs_delta_sum += std::abs(static_cast<double>(probe.total_length) -
                                  static_cast<double>(initial_metrics.total_length)) /
                         static_cast<double>(pairs);
        ++samples;
      }
    }
    const double mean_delta = samples ? abs_delta_sum / samples : 0.0;
    schedule.t_initial = std::max(2.0 * mean_delta, 1e-9);
  }
  if (schedule.t_final <= 0.0) schedule.t_final = schedule.t_initial / 1000.0;

  schedule.cooling =
      options.iterations > 1
          ? std::pow(schedule.t_final / schedule.t_initial,
                     1.0 / static_cast<double>(options.iterations - 1))
          : 1.0;
  return schedule;
}

SaChain::SaChain(const HostSwitchGraph& initial, const HostMetrics& initial_metrics,
                 const AnnealOptions& options, const Config& config)
    : options_(options),
      config_(config),
      current_(initial),
      edges_(collect_edges(initial)),
      current_metrics_(initial_metrics),
      rng_(options.seed),
      best_(initial),
      best_metrics_(initial_metrics) {
  ORP_REQUIRE(initial.fully_attached(), "anneal needs every host attached");
  ORP_REQUIRE(options.iterations > 0, "need at least one iteration");
  ORP_REQUIRE(initial_metrics.connected,
              "anneal needs a connected initial solution");
  if (options_.eval == EvalStrategy::kDelta) delta_eval_.emplace(current_);

  pairs_ = static_cast<std::uint64_t>(current_.num_hosts()) *
           (current_.num_hosts() - 1) / 2;
  // Scalar optimization key. For the ORP objective it is the summed pair
  // length; for the Graph Golf ranking the diameter dominates via a weight
  // larger than any possible length sum (pairs * (diameter levels + 3)).
  diameter_weight_ =
      pairs_ * (static_cast<std::uint64_t>(current_.num_switches()) + 3);

  temperature_ = config_.schedule.t_initial;
  evaluations_ = 1;  // the initial evaluation the caller performed

  // Windowed telemetry cadence: one acceptance/temperature/h-ASPL sample
  // per `window_` iterations (only when a JSONL sink is active).
  window_ = options_.trace_every
                ? options_.trace_every
                : std::max<std::uint64_t>(1, options_.iterations / 64);
}

std::uint64_t SaChain::key_of(const HostMetrics& metrics) const noexcept {
  if (options_.objective == AnnealObjective::kDiameterThenHaspl) {
    return metrics.diameter * diameter_weight_ + metrics.total_length;
  }
  return static_cast<std::uint64_t>(metrics.total_length);
}

// Metropolis test on the objective delta. Disconnected candidates have
// infinite h-ASPL and are always rejected.
bool SaChain::accepts(const HostMetrics& cand) {
  if (!cand.connected) {
    AnnealerInstruments::get().rejected_disconnected.inc();
    return false;
  }
  const std::uint64_t cand_key = key_of(cand);
  const std::uint64_t current_key = key_of(current_metrics_);
  if (cand_key <= current_key) return true;
  const double delta =
      static_cast<double>(cand_key - current_key) / static_cast<double>(pairs_);
  return rng_.bernoulli(std::exp(-delta / temperature()));
}

void SaChain::commit(const HostMetrics& cand) {
  current_metrics_ = cand;
  ++accepted_;
  if (key_of(cand) < key_of(best_metrics_)) {
    best_ = current_;
    best_metrics_ = cand;
  }
}

// Incremental h-ASPL evaluation (the default): the evaluator mirrors
// `current_` and repairs its distance state per move. It is exact, so the
// search trajectory is bit-identical to --eval full.
HostMetrics SaChain::evaluate_move(const GraphDelta& delta) {
  obs::ScopedTimer timer(AnnealerInstruments::get().eval_ns);
  if (delta_eval_) return delta_eval_->apply(delta);
  return compute_host_metrics(current_, options_.kernel, options_.pool);
}

// Called after `current_` has been restored: rejecting a move replays the
// evaluator's undo log (revert_last), which is much cheaper than an
// inverse repair. Frames nest, covering the 2-neighbor completion chain.
void SaChain::revert_move() {
  if (delta_eval_) delta_eval_->revert_last(current_);
}

void SaChain::emit_window(std::uint64_t at_iter) {
  if (!config_.emit_obs_window) return;
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.enabled()) return;
  const double rate = window_moves_
                          ? static_cast<double>(window_accepted_) /
                                static_cast<double>(window_moves_)
                          : 0.0;
  // The iteration series lets orp_report map wall-clock positions (e.g.
  // "progress flat-lined at t") back to an iteration number.
  tracer.counter("annealer.iteration", static_cast<double>(at_iter), "search");
  tracer.counter("annealer.acceptance_rate", rate, "search");
  tracer.counter("annealer.temperature", temperature(), "search");
  tracer.counter("annealer.current_haspl", current_metrics_.h_aspl, "search");
  tracer.counter("annealer.best_haspl", best_metrics_.h_aspl, "search");
}

void SaChain::run_one_iteration() {
  AnnealerInstruments& instruments = AnnealerInstruments::get();
  if (options_.trace_every && iteration_ % options_.trace_every == 0) {
    trace_.push_back({iteration_, current_metrics_.h_aspl,
                      best_metrics_.h_aspl, temperature()});
  }
  if (iteration_ % window_ == 0) {
    emit_window(iteration_);
    window_moves_ = 0;
    window_accepted_ = 0;
  }
  ++window_moves_;

  if (options_.mode == MoveMode::kSwap) {
    const auto move = propose_swap(current_, edges_, rng_);
    if (!move) return;
    const GraphDelta delta = delta_of(*move);
    apply_swap(current_, *move);
    const HostMetrics cand = evaluate_move(delta);
    ++evaluations_;
    if (accepts(cand)) {
      sync_swap(edges_, *move);
      commit(cand);
      instruments.swap_accepted.inc();
      ++window_accepted_;
    } else {
      apply_swap(current_, move->inverse());
      revert_move();
      instruments.restored.inc();
    }
    return;
  }

  // kSwing and kTwoNeighborSwing both start with a swing proposal.
  const auto first = propose_swing(current_, edges_, rng_);
  if (!first) return;
  const GraphDelta first_delta = delta_of(*first);
  apply_swing(current_, *first);
  const HostMetrics one_neighbor = evaluate_move(first_delta);
  ++evaluations_;
  if (accepts(one_neighbor)) {
    sync_swing(edges_, *first);
    commit(one_neighbor);
    instruments.swing_accepted.inc();
    ++window_accepted_;
    return;
  }
  if (options_.mode == MoveMode::kSwing) {
    apply_swing(current_, first->inverse());
    revert_move();
    instruments.restored.inc();
    return;
  }

  // 2-neighbor completion: try the swing that turns the pair into a swap.
  const auto completion = propose_completion_swing(current_, *first, rng_);
  if (completion) {
    const GraphDelta completion_delta = delta_of(*completion);
    apply_swing(current_, *completion);
    const HostMetrics two_neighbor = evaluate_move(completion_delta);
    ++evaluations_;
    if (accepts(two_neighbor)) {
      sync_swing(edges_, *first);
      sync_swing(edges_, *completion);
      commit(two_neighbor);
      instruments.completion_accepted.inc();
      ++window_accepted_;
      return;
    }
    apply_swing(current_, completion->inverse());
    revert_move();
  }
  apply_swing(current_, first->inverse());
  revert_move();
  instruments.restored.inc();
}

std::uint64_t SaChain::run(std::uint64_t count) {
  std::uint64_t ran = 0;
  while (ran < count && iteration_ < options_.iterations && !interrupted_) {
    if (shutdown_requested()) {
      // SIGINT/SIGTERM: wind down and hand back the best-so-far.
      interrupted_ = true;
      break;
    }
    run_one_iteration();
    ++iteration_;
    temperature_ *= config_.schedule.cooling;
    ++ran;
  }
  return ran;
}

void SaChain::swap_configuration(SaChain& a, SaChain& b) noexcept {
  std::swap(a.current_, b.current_);
  std::swap(a.edges_, b.edges_);
  std::swap(a.current_metrics_, b.current_metrics_);
  std::swap(a.delta_eval_, b.delta_eval_);
}

void SaChain::adopt(const HostSwitchGraph& g, const HostMetrics& metrics) {
  ORP_ASSERT(g.num_hosts() == current_.num_hosts() &&
             g.num_switches() == current_.num_switches());
  current_ = g;
  current_metrics_ = metrics;
  edges_ = collect_edges(current_);
  if (delta_eval_) delta_eval_->rebuild(current_);
}

void SaChain::finish_telemetry() { emit_window(iteration_); }

AnnealResult SaChain::take_result() {
  AnnealResult result{std::move(best_), best_metrics_, evaluations_, accepted_,
                      std::move(trace_), interrupted_};
  return result;
}

}  // namespace orp

#include "search/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/shutdown.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/annealer_core.hpp"

namespace orp {
namespace {

// Metric handles for the replica-exchange machinery, resolved once per
// process (docs/search.md documents the schema).
struct ReplicaInstruments {
  obs::Counter& moves;
  obs::Counter& accepted;
  obs::Counter& swaps_attempted;
  obs::Counter& swaps_accepted;
  obs::Counter& restarts;
  obs::Gauge& best_ladder_pos;

  static ReplicaInstruments& get() {
    auto& registry = obs::Registry::global();
    static ReplicaInstruments instance{
        registry.counter("search.replica.moves"),
        registry.counter("search.replica.accepted"),
        registry.counter("search.replica.swaps.attempted"),
        registry.counter("search.replica.swaps.accepted"),
        registry.counter("search.replica.restarts"),
        registry.gauge("search.replica.best_ladder_pos")};
    return instance;
  }
};

}  // namespace

SearchBackend parse_search_backend(std::string_view name) {
  if (name == "serial") return SearchBackend::kSerial;
  if (name == "pool") return SearchBackend::kPool;
  throw std::invalid_argument("unknown search backend '" + std::string(name) +
                              "' (expected serial or pool)");
}

const char* search_backend_name(SearchBackend backend) noexcept {
  return backend == SearchBackend::kPool ? "pool" : "serial";
}

std::vector<double> temperature_ladder(std::uint32_t replicas, double ratio) {
  ORP_REQUIRE(replicas >= 1, "need at least one replica");
  ORP_REQUIRE(ratio == 0.0 || ratio >= 1.0,
              "ladder ratio must be >= 1 (or 0 = auto)");
  if (ratio <= 0.0) {
    // Hottest rung at 4x the base temperature regardless of K: wide enough
    // to hop basins the cold rung cannot, close enough that adjacent-rung
    // energy distributions overlap and exchanges actually land.
    ratio = replicas > 1
                ? std::pow(4.0, 1.0 / static_cast<double>(replicas - 1))
                : 1.0;
  }
  std::vector<double> scales(replicas);
  double scale = 1.0;
  for (std::uint32_t k = 0; k < replicas; ++k, scale *= ratio) scales[k] = scale;
  return scales;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> swap_pairs_for_round(
    std::uint64_t round, std::uint32_t replicas) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  if (replicas < 2) return pairs;
  pairs.reserve(replicas / 2);
  for (std::uint32_t i = round % 2 == 0 ? 0 : 1; i + 1 < replicas; i += 2) {
    pairs.emplace_back(i, i + 1);
  }
  return pairs;
}

double exchange_exponent(double energy_cold, double energy_hot,
                         double temp_cold, double temp_hot) noexcept {
  return (energy_cold - energy_hot) * (1.0 / temp_cold - 1.0 / temp_hot);
}

bool accept_exchange(double exponent, Xoshiro256& rng) {
  if (exponent >= 0.0) return true;
  return rng.bernoulli(std::exp(exponent));
}

std::uint64_t replica_seed(std::uint64_t seed, std::uint32_t k) noexcept {
  if (k == 0) return seed;  // rung 0 == the serial annealer's stream
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * k);
  return splitmix64_next(state);
}

ParallelAnnealResult parallel_anneal(const HostSwitchGraph& initial,
                                     const ParallelAnnealOptions& options) {
  const AnnealOptions& base = options.base;
  ORP_REQUIRE(initial.fully_attached(), "anneal needs every host attached");
  ORP_REQUIRE(base.iterations > 0, "need at least one iteration per replica");
  ORP_REQUIRE(base.initial_temperature >= 0 && base.final_temperature >= 0,
              "temperatures must be non-negative (0 = auto-calibrate)");
  ORP_REQUIRE(options.replicas >= 1, "need at least one replica");
  ORP_REQUIRE(options.swap_interval >= 1, "swap interval must be positive");

  const std::uint32_t replica_count = options.replicas;

  obs::Span span("search.parallel_anneal", "search");
  span.arg("replicas", static_cast<std::uint64_t>(replica_count));
  span.arg("swap_interval", options.swap_interval);
  span.arg("iterations_per_replica", base.iterations);
  span.arg("hosts", static_cast<std::uint64_t>(initial.num_hosts()));

  HostMetrics initial_metrics;
  {
    obs::ScopedTimer timer(obs::Registry::global().histogram("annealer.eval_ns"));
    initial_metrics = compute_host_metrics(initial, base.kernel, base.pool);
  }
  ORP_REQUIRE(initial_metrics.connected,
              "anneal needs a connected initial solution");

  // One calibration, shared by every rung (rung k scales it by ladder[k]).
  SaChain::Config config;
  config.schedule = calibrate_schedule(initial, initial_metrics, base);
  const std::vector<double> ladder =
      temperature_ladder(replica_count, options.ladder_ratio);

  std::vector<SaChain> chains;
  chains.reserve(replica_count);
  for (std::uint32_t k = 0; k < replica_count; ++k) {
    AnnealOptions chain_options = base;
    chain_options.seed = replica_seed(base.seed, k);
    // Replicas are the parallelism; their kernels stay serial so the
    // trajectory cannot depend on the pool size.
    chain_options.pool = nullptr;
    SaChain::Config chain_config = config;
    chain_config.temperature_scale = ladder[k];
    chain_config.emit_obs_window = (k == 0);
    chains.emplace_back(initial, initial_metrics, chain_options, chain_config);
  }

  // Dedicated exchange stream: swap decisions never perturb (or depend on)
  // any replica's own walk.
  Xoshiro256 exchange_rng(base.seed ^ 0x6a09e667f3bcc909ULL);

  std::vector<ReplicaStats> replica_stats(replica_count);
  std::vector<double> round_best;
  for (std::uint32_t k = 0; k < replica_count; ++k) {
    replica_stats[k].temperature_scale = ladder[k];
  }

  // Global best across the population, refreshed at every barrier in rung
  // order. Every state a replica ever visits is visited while held by some
  // rung, so the minimum over rung bests covers the whole population.
  HostSwitchGraph global_best = initial;
  HostMetrics global_best_metrics = initial_metrics;
  std::uint64_t global_best_key = chains[0].best_key();
  std::uint32_t best_owner = 0;

  std::vector<std::uint64_t> prev_best_key(replica_count, global_best_key);
  std::vector<std::uint32_t> stalled_rounds(replica_count, 0);

  ThreadPool* pool = base.pool;
  const std::uint64_t per_replica = base.iterations;
  std::uint64_t done = 0;
  std::uint64_t round = 0;
  bool interrupted = false;

  while (done < per_replica && !interrupted) {
    const std::uint64_t chunk = std::min(options.swap_interval, per_replica - done);
    if (pool && replica_count > 1) {
      pool->parallel_for(replica_count,
                         [&](std::size_t k) { chains[k].run(chunk); });
    } else {
      for (SaChain& chain : chains) chain.run(chunk);
    }
    done += chunk;
    for (const SaChain& chain : chains) interrupted |= chain.interrupted();

    // ---- exchange barrier (single-threaded, rung order — deterministic).
    const bool more_rounds = done < per_replica && !interrupted;
    if (more_rounds) {
      for (const auto& [cold, hot] : swap_pairs_for_round(round, replica_count)) {
        ++replica_stats[cold].swaps_attempted;
        ++replica_stats[hot].swaps_attempted;
        const double exponent = exchange_exponent(
            chains[cold].energy(), chains[hot].energy(),
            chains[cold].temperature(), chains[hot].temperature());
        if (accept_exchange(exponent, exchange_rng)) {
          SaChain::swap_configuration(chains[cold], chains[hot]);
          ++replica_stats[cold].swaps_accepted;
          ++replica_stats[hot].swaps_accepted;
        }
      }
    }

    // Global-best reduction in rung order; strict < keeps the earliest
    // owner on ties so the reduction never depends on scheduling.
    for (std::uint32_t k = 0; k < replica_count; ++k) {
      if (chains[k].best_key() < global_best_key) {
        global_best_key = chains[k].best_key();
        global_best = chains[k].best();
        global_best_metrics = chains[k].best_metrics();
        best_owner = k;
      }
    }
    round_best.push_back(global_best_metrics.h_aspl);
    {
      obs::Tracer& tracer = obs::Tracer::global();
      if (tracer.enabled()) {
        tracer.counter("parallel.round", static_cast<double>(round), "search");
        tracer.counter("parallel.best_haspl", global_best_metrics.h_aspl,
                       "search");
      }
    }

    // Stall bookkeeping + broadcast: a rung that has not improved its own
    // best in `stall_rounds` barriers and whose walk trails the global
    // best restarts from the broadcast candidate (fresh evaluator, own
    // PRNG stream and temperature).
    for (std::uint32_t k = 0; k < replica_count; ++k) {
      if (chains[k].best_key() < prev_best_key[k]) {
        stalled_rounds[k] = 0;
      } else {
        ++stalled_rounds[k];
      }
      prev_best_key[k] = chains[k].best_key();
    }
    if (more_rounds && options.stall_rounds > 0) {
      for (std::uint32_t k = 0; k < replica_count; ++k) {
        if (k == best_owner || stalled_rounds[k] < options.stall_rounds ||
            chains[k].current_key() <= global_best_key) {
          continue;
        }
        chains[k].adopt(global_best, global_best_metrics);
        stalled_rounds[k] = 0;
        ++replica_stats[k].restarts;
      }
    }
    ++round;
  }
  chains[0].finish_telemetry();

  // ---- result assembly (rung order; the tracked owner IS the final best).
  std::uint64_t total_evaluations = 0;
  std::uint64_t total_accepted = 0;
  std::uint64_t total_moves = 0;
  std::uint64_t total_swaps_attempted = 0;
  std::uint64_t total_swaps_accepted = 0;
  std::uint64_t total_restarts = 0;
  for (std::uint32_t k = 0; k < replica_count; ++k) {
    ReplicaStats& stats = replica_stats[k];
    stats.moves = chains[k].iteration();
    stats.accepted = chains[k].accepted();
    stats.best_haspl = chains[k].best_metrics().h_aspl;
    total_evaluations += chains[k].evaluations();
    total_accepted += stats.accepted;
    total_moves += stats.moves;
    total_swaps_attempted += stats.swaps_attempted;
    total_swaps_accepted += stats.swaps_accepted;
    total_restarts += stats.restarts;
  }

  AnnealResult result = chains[best_owner].take_result();
  result.evaluations = total_evaluations;
  result.accepted = total_accepted;
  result.interrupted = interrupted;
  ParallelAnnealResult out{std::move(result), std::move(replica_stats),
                           std::move(round_best), best_owner};

  ReplicaInstruments& instruments = ReplicaInstruments::get();
  instruments.moves.add(total_moves);
  instruments.accepted.add(total_accepted);
  instruments.swaps_attempted.add(total_swaps_attempted / 2);
  instruments.swaps_accepted.add(total_swaps_accepted / 2);
  instruments.restarts.add(total_restarts);
  instruments.best_ladder_pos.set(static_cast<std::int64_t>(best_owner));

  span.arg("rounds", round);
  span.arg("swaps_accepted", total_swaps_accepted / 2);
  span.arg("best_ladder_pos", static_cast<std::uint64_t>(best_owner));
  if (out.result.interrupted) span.arg("interrupted", std::uint64_t{1});
  span.arg("best_haspl", out.result.best_metrics.h_aspl);
  return out;
}

}  // namespace orp

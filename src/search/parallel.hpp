#pragma once
// Parallel replica-exchange (parallel tempering) annealing on the shared
// thread pool.
//
// K replicas walk the same search space on a geometric temperature ladder:
// ladder position 0 runs the serial annealer's schedule exactly, position k
// runs it scaled by ratio^k. Every `swap_interval` moves the replicas
// barrier and adjacent rungs attempt Metropolis configuration exchanges —
// hot rungs tunnel between basins, cold rungs refine, and exchanges let
// good basins migrate down the ladder. The global best is tracked at every
// barrier and broadcast as a restart candidate to replicas whose own best
// has stalled.
//
// Determinism contract: the result is a pure function of (initial graph,
// options) — in particular of (seed, K) — and NEVER of the thread-pool
// size or scheduling:
//   * each replica owns its trajectory end to end (graph copy, edge list,
//     DeltaHasplEvaluator, PRNG sub-stream derived from (seed, rung));
//   * the swap schedule is fixed (alternating even/odd adjacent pairs,
//     attempted in ascending rung order with a dedicated exchange PRNG
//     stream), not completion-order driven;
//   * reductions (global best, stall restarts, the final result) scan
//     rungs in index order at single-threaded barriers.
// tests/search_parallel_test.cpp pins this down across pool sizes, and the
// K=1 ladder is bit-identical to the serial annealer
// (tests/search_annealer_test.cpp).

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "search/annealer.hpp"

namespace orp {

/// Which search engine solve_orp drives per restart.
enum class SearchBackend {
  kSerial,  ///< one annealing chain (the paper's §5.3 search)
  kPool     ///< replica-exchange over the thread pool (this header)
};

/// Parses "serial" / "pool" (the benches' --search-backend flag); throws
/// std::invalid_argument on anything else.
SearchBackend parse_search_backend(std::string_view name);
const char* search_backend_name(SearchBackend backend) noexcept;

struct ParallelAnnealOptions {
  /// Per-replica annealing parameters. `base.iterations` is the move
  /// budget of EACH replica (total work = replicas x base.iterations);
  /// `base.seed` derives every replica's independent PRNG sub-stream and
  /// the exchange stream; `base.pool` only fans the replicas out — the
  /// chains keep their metric kernels serial to avoid nested
  /// oversubscription (a null pool runs the replicas on the calling
  /// thread, bit-identically).
  AnnealOptions base;
  /// Ladder size K. 1 degenerates to the serial annealer bit for bit.
  std::uint32_t replicas = 4;
  /// Moves each replica runs between exchange barriers.
  std::uint64_t swap_interval = 512;
  /// Adjacent-rung temperature ratio of the geometric ladder (> 1 spreads
  /// the rungs). 0 auto-picks so the hottest rung runs at 4x the base
  /// temperature regardless of K.
  double ladder_ratio = 0.0;
  /// Barriers without improvement of a replica's own best after which a
  /// non-best replica whose current state trails the global best restarts
  /// from the global best. 0 disables broadcasting.
  std::uint32_t stall_rounds = 3;
};

/// Per-rung outcome of a replica-exchange run (index = ladder position,
/// cold to hot).
struct ReplicaStats {
  std::uint64_t moves = 0;            ///< iterations the rung executed
  std::uint64_t accepted = 0;         ///< accepted moves
  std::uint64_t swaps_attempted = 0;  ///< exchange attempts involving this rung
  std::uint64_t swaps_accepted = 0;   ///< exchanges that moved a state
  std::uint64_t restarts = 0;         ///< global-best broadcasts adopted
  double temperature_scale = 1.0;     ///< the rung's ladder multiplier
  double best_haspl = 0.0;            ///< best h-ASPL this rung ever held
};

struct ParallelAnnealResult {
  /// Global best + summed evaluation/acceptance counters + the winning
  /// rung's trace; `interrupted` is set when SIGINT/SIGTERM wound the
  /// replicas down early (the best-so-far is still returned).
  AnnealResult result;
  std::vector<ReplicaStats> replicas;
  /// Global best h-ASPL after each exchange barrier — monotonically
  /// non-increasing (asserted by the property tests).
  std::vector<double> round_best_haspl;
  /// Ladder position that produced the global best.
  std::uint32_t best_replica = 0;
};

/// Runs K-replica parallel tempering from `initial` (fully attached and
/// connected). Polls shutdown_requested() inside every replica and winds
/// the whole population down gracefully when set.
ParallelAnnealResult parallel_anneal(const HostSwitchGraph& initial,
                                     const ParallelAnnealOptions& options);

// ---- replica-exchange primitives (exposed for the property tests) ------

/// The geometric temperature-scale ladder: K ascending multipliers
/// starting at exactly 1.0 (rung k = ratio^k). `ratio` 0 auto-picks
/// 4^(1/(K-1)) (hottest rung 4x); K = 1 always yields {1.0}.
std::vector<double> temperature_ladder(std::uint32_t replicas, double ratio);

/// The fixed swap schedule of one barrier: adjacent pairs (i, i+1) with
/// i matching the round's parity. Pairs are disjoint (each rung appears
/// in at most one pair per round) and consecutive rounds cover every
/// adjacent pair.
std::vector<std::pair<std::uint32_t, std::uint32_t>> swap_pairs_for_round(
    std::uint64_t round, std::uint32_t replicas);

/// Metropolis replica-exchange exponent for one adjacent pair:
/// (E_cold - E_hot) * (1/T_cold - 1/T_hot). Non-negative means the swap is
/// always accepted — in particular the forced-accept case where the colder
/// rung holds the higher energy; negative is accepted with probability
/// exp(exponent).
double exchange_exponent(double energy_cold, double energy_hot,
                         double temp_cold, double temp_hot) noexcept;

/// Applies the Metropolis exchange test, drawing from `rng` only when the
/// exponent is negative (so forced accepts never consume randomness).
bool accept_exchange(double exponent, Xoshiro256& rng);

/// The PRNG seed of ladder rung `k`: rung 0 keeps `seed` verbatim (the
/// K=1 <-> serial equivalence), hotter rungs get splitmix-derived
/// sub-streams.
std::uint64_t replica_seed(std::uint64_t seed, std::uint32_t k) noexcept;

}  // namespace orp

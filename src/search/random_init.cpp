#include "search/random_init.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <vector>

namespace orp {
namespace {

// Attaches hosts 0..n-1 according to per-switch counts.
void attach_hosts(HostSwitchGraph& g, const std::vector<std::uint32_t>& counts) {
  HostId next = 0;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (std::uint32_t i = 0; i < counts[s]; ++i) g.attach_host(next++, s);
  }
  ORP_ASSERT(next == g.num_hosts());
}

// Grows a random spanning tree. Switches are processed leaves-last (fewest
// free ports last) so port-starved switches never need to accept children.
// Returns false when some switch cannot find a parent with a free port.
bool grow_spanning_tree(HostSwitchGraph& g, Xoshiro256& rng) {
  const std::uint32_t m = g.num_switches();
  if (m <= 1) return true;
  std::vector<SwitchId> order(m);
  std::iota(order.begin(), order.end(), 0);
  shuffle(order, rng);
  std::stable_sort(order.begin(), order.end(), [&](SwitchId a, SwitchId b) {
    return g.free_ports(a) > g.free_ports(b);
  });
  std::vector<SwitchId> candidates;
  for (std::uint32_t i = 1; i < m; ++i) {
    candidates.clear();
    for (std::uint32_t j = 0; j < i; ++j) {
      if (g.free_ports(order[j]) > 0) candidates.push_back(order[j]);
    }
    if (candidates.empty() || g.free_ports(order[i]) == 0) return false;
    const SwitchId parent = candidates[rng.below(candidates.size())];
    g.add_switch_edge(order[i], parent);
  }
  return true;
}

// Fills free ports with a random matching (configuration model with
// rejection), then one repair pass that relocates an existing edge to
// absorb leftover stubs. A couple of ports may stay free when parity or
// adjacency makes saturation impossible; callers tolerate that.
void saturate_ports(HostSwitchGraph& g, Xoshiro256& rng) {
  std::vector<SwitchId> stubs;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (std::uint32_t p = 0; p < g.free_ports(s); ++p) stubs.push_back(s);
  }
  int failures = 0;
  while (stubs.size() >= 2 && failures < 256) {
    const std::size_t i = rng.below(stubs.size());
    std::size_t j = rng.below(stubs.size() - 1);
    if (j >= i) ++j;
    const SwitchId a = stubs[i], b = stubs[j];
    if (a == b || g.has_switch_edge(a, b)) {
      ++failures;
      continue;
    }
    g.add_switch_edge(a, b);
    // Remove the two consumed stubs (larger index first).
    const auto hi = std::max(i, j), lo = std::min(i, j);
    stubs[hi] = stubs.back();
    stubs.pop_back();
    stubs[lo] = stubs.back();
    stubs.pop_back();
    failures = 0;
  }

  // Repair: for a leftover stub pair (a, b) blocked by an existing a-b edge
  // or a == b, steal an edge {c, d} with c,d not adjacent to a,b and rewire
  // to {a, c}, {b, d}.
  while (stubs.size() >= 2) {
    const SwitchId a = stubs[stubs.size() - 1];
    const SwitchId b = stubs[stubs.size() - 2];
    bool repaired = false;
    for (int attempt = 0; attempt < 512 && !repaired; ++attempt) {
      const SwitchId c = static_cast<SwitchId>(rng.below(g.num_switches()));
      const auto nc = g.neighbors(c);
      if (nc.empty()) continue;
      const SwitchId d = nc[rng.below(nc.size())];
      if (c == a || c == b || d == a || d == b) continue;
      if (g.has_switch_edge(a, c) || g.has_switch_edge(b, d)) continue;
      g.remove_switch_edge(c, d);
      g.add_switch_edge(a, c);
      g.add_switch_edge(b, d);
      repaired = true;
    }
    if (!repaired) break;  // tolerate the free ports
    stubs.pop_back();
    stubs.pop_back();
  }
}

std::optional<HostSwitchGraph> try_build(std::uint32_t n, std::uint32_t m,
                                         std::uint32_t r,
                                         const std::vector<std::uint32_t>& counts,
                                         Xoshiro256& rng) {
  HostSwitchGraph g(n, m, r);
  attach_hosts(g, counts);
  if (!grow_spanning_tree(g, rng)) return std::nullopt;
  saturate_ports(g, rng);
  return g;
}

std::vector<std::uint32_t> balanced_counts(std::uint32_t n, std::uint32_t m) {
  std::vector<std::uint32_t> counts(m, n / m);
  for (std::uint32_t s = 0; s < n % m; ++s) ++counts[s];
  return counts;
}

}  // namespace

bool random_init_feasible(std::uint32_t n, std::uint32_t m, std::uint32_t r) {
  if (n == 0 || m == 0 || r < 3) return false;
  if (m == 1) return n <= r;
  const std::uint64_t host_capacity = static_cast<std::uint64_t>(m) * (r - 1);
  if (n > host_capacity) return false;
  // A spanning tree needs 2(m-1) switch-port endpoints on top of the hosts.
  return static_cast<std::uint64_t>(m) * r >= static_cast<std::uint64_t>(n) + 2 * (m - 1ull);
}

HostSwitchGraph random_host_switch_graph(std::uint32_t n, std::uint32_t m,
                                         std::uint32_t r, Xoshiro256& rng,
                                         const RandomInitOptions& options) {
  ORP_REQUIRE(random_init_feasible(n, m, r),
              "no connected host-switch graph with these (n, m, r)");
  const auto counts = balanced_counts(n, m);
  for (int attempt = 0; attempt < options.attempts; ++attempt) {
    if (auto g = try_build(n, m, r, counts, rng)) return std::move(*g);
  }
  throw std::invalid_argument(
      "random_host_switch_graph: spanning tree construction kept failing; "
      "the port budget is too tight");
}

HostSwitchGraph random_regular_host_switch_graph(std::uint32_t n, std::uint32_t m,
                                                 std::uint32_t r, Xoshiro256& rng,
                                                 const RandomInitOptions& options) {
  ORP_REQUIRE(m >= 1 && n % m == 0,
              "regular host-switch graphs need m to divide n");
  return random_host_switch_graph(n, m, r, rng, options);
}

}  // namespace orp

#include "search/odp.hpp"

#include "hsg/bounds.hpp"
#include "search/random_init.hpp"

namespace orp {

OdpResult solve_odp(std::uint32_t order, std::uint32_t degree,
                    const OdpOptions& options) {
  ORP_REQUIRE(order >= 2, "ODP needs at least two vertices");
  ORP_REQUIRE(degree >= 2 && degree < order,
              "ODP degree must be in [2, order)");

  // Embed: vertex = switch with one pendant host; radix D+1 leaves exactly
  // D ports for graph edges.
  const std::uint32_t radix = degree + 1;
  Xoshiro256 seeder(options.seed);

  OdpResult best{HostSwitchGraph(order, order, radix), {}, 0, order, degree};
  auto better = [&](const HostMetrics& a, const HostMetrics& b) {
    if (options.objective == AnnealObjective::kDiameterThenHaspl &&
        a.diameter != b.diameter) {
      return a.diameter < b.diameter;
    }
    return a.total_length < b.total_length;
  };
  bool have_best = false;
  HostMetrics best_metrics;
  for (int run = 0; run < std::max(options.restarts, 1); ++run) {
    Xoshiro256 rng = seeder.split();
    const HostSwitchGraph initial =
        random_regular_host_switch_graph(order, order, radix, rng);
    AnnealOptions anneal_options;
    anneal_options.iterations = options.iterations;
    anneal_options.seed = rng();
    anneal_options.mode = MoveMode::kSwap;  // degree-preserving neighborhood
    anneal_options.objective = options.objective;
    anneal_options.kernel = options.kernel;
    anneal_options.pool = options.pool;
    AnnealResult result = anneal(initial, anneal_options);
    // With one host per switch, h-ASPL = ASPL + 2 (Eq. 1 with m = n), so
    // the h-ASPL objective ranks solutions exactly like plain ASPL.
    if (!have_best || better(result.best_metrics, best_metrics)) {
      have_best = true;
      best_metrics = result.best_metrics;
      best.graph = std::move(result.best);
    }
  }

  best.metrics = compute_switch_metrics(best.graph, options.kernel, options.pool);
  best.moore_aspl_bound = moore_aspl_bound(order, degree);
  return best;
}

}  // namespace orp

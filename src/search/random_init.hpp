#pragma once
// Random initial solutions for the ORP local search (§5).
//
// The annealer needs a connected host-switch graph with the requested
// (n, m, r) and all switch ports saturated — swap and swing operations
// preserve the edge count, so the initial solution fixes the edge budget
// and saturation maximizes it (more edges never hurt h-ASPL).
//
// Construction: distribute hosts (balanced), grow a random spanning tree
// over the switches, then fill remaining ports with a random matching.

#include <cstdint>

#include "common/prng.hpp"
#include "hsg/host_switch_graph.hpp"

namespace orp {

struct RandomInitOptions {
  /// Retry full construction this many times before giving up when the
  /// random matching stalls below full saturation.
  int attempts = 16;
};

/// True when some connected host-switch graph with these parameters exists:
/// hosts fit (n <= m * (r - 1) for m >= 2, n <= r for m == 1) and there are
/// enough spare ports for a spanning tree (m*r >= n + 2*(m-1)).
bool random_init_feasible(std::uint32_t n, std::uint32_t m, std::uint32_t r);

/// Builds a random connected host-switch graph with hosts distributed as
/// evenly as the spanning tree allows and switch ports saturated as far as
/// the random matching manages (always fully connected; at most a few ports
/// may remain free for parity reasons).
/// Throws std::invalid_argument when the parameters are infeasible.
HostSwitchGraph random_host_switch_graph(std::uint32_t n, std::uint32_t m,
                                         std::uint32_t r, Xoshiro256& rng,
                                         const RandomInitOptions& options = {});

/// Builds a *regular* host-switch graph: every switch carries exactly n/m
/// hosts (requires m | n) and the switch subgraph is (r - n/m)-regular up
/// to matching parity. Used by the swap-only baseline of §5.1.
HostSwitchGraph random_regular_host_switch_graph(std::uint32_t n, std::uint32_t m,
                                                 std::uint32_t r, Xoshiro256& rng,
                                                 const RandomInitOptions& options = {});

}  // namespace orp

#pragma once
// The local-search neighborhood operations of §5.
//
//  * swap  (Fig. 2): rewires two switch-switch edges {a,b},{c,d} into
//    {a,c},{b,d}; preserves every switch's degree and host count, so it
//    explores *regular* host-switch graphs only.
//  * swing (Fig. 3): converts {a,b} plus host h on c into {a,c} with h on
//    b; moves one host, so it explores arbitrary host distributions.
//  * 2-neighbor swing (Fig. 4): a swing, and if that candidate is rejected
//    a completing swing whose net effect is a swap — implemented in the
//    annealer on top of these primitives.
//
// Every operation is exactly invertible; `inverse()` returns the move that
// restores the previous graph, which is how the annealer rolls back.

#include <optional>

#include "common/prng.hpp"
#include "hsg/delta_metrics.hpp"
#include "hsg/host_switch_graph.hpp"

namespace orp {

/// Removes {a,b} and {c,d}; adds {a,c} and {b,d}.
struct SwapMove {
  SwitchId a, b, c, d;
  SwapMove inverse() const noexcept { return {a, c, b, d}; }
};

/// Removes {a,b}; moves host h from c to b; adds {a,c}.
struct SwingMove {
  SwitchId a, b, c;
  HostId h;
  SwingMove inverse() const noexcept { return {a, c, b, h}; }
};

/// Edge-diff views of the moves for the incremental evaluator: the exact
/// primitive changes apply_swap / apply_swing perform, in the same order.
GraphDelta delta_of(const SwapMove& move);
GraphDelta delta_of(const SwingMove& move);

/// True when the move's preconditions hold on `g` (edges present, no
/// duplicate/self edges created, port budgets respected).
bool swap_valid(const HostSwitchGraph& g, const SwapMove& move);
bool swing_valid(const HostSwitchGraph& g, const SwingMove& move);

/// Applies a validated move. Behaviour is undefined (throws from the graph
/// contract checks) if the move is invalid.
void apply_swap(HostSwitchGraph& g, const SwapMove& move);
void apply_swing(HostSwitchGraph& g, const SwingMove& move);

/// Uniformly proposes a random valid swap over the given switch-switch
/// edge list (pairs with a < b); returns nullopt after `attempts` misses.
std::optional<SwapMove> propose_swap(
    const HostSwitchGraph& g,
    const std::vector<std::pair<SwitchId, SwitchId>>& edges, Xoshiro256& rng,
    int attempts = 32);

/// Uniformly proposes a random valid swing; returns nullopt after
/// `attempts` misses (e.g. when every host sits on an endpoint).
std::optional<SwingMove> propose_swing(
    const HostSwitchGraph& g,
    const std::vector<std::pair<SwitchId, SwitchId>>& edges, Xoshiro256& rng,
    int attempts = 32);

/// Given an applied first swing (a,b,c,h), proposes the completing swing
/// (d,c,b,h) of the 2-neighbor operation: d is a neighbor of c distinct
/// from a and b with no existing {d,b} edge.
std::optional<SwingMove> propose_completion_swing(const HostSwitchGraph& g,
                                                  const SwingMove& first,
                                                  Xoshiro256& rng,
                                                  int attempts = 8);

}  // namespace orp

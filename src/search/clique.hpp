#pragma once
// Clique host-switch graphs (§3.2 and the Appendix).
//
// When r < n <= m(r-m+1) for some m, connecting all switches into a clique
// is provably h-ASPL-optimal (Appendix, Theorem 3): every cross-switch
// host pair is 3 hops, every same-switch pair 2 hops. Lemma 3 says the
// optimum uses the minimum feasible m, and concentrating hosts (filling
// switches to capacity) maximizes the number of 2-hop pairs.

#include <cstdint>

#include "hsg/host_switch_graph.hpp"

namespace orp {

/// True when a clique host-switch graph can carry n hosts with radix r.
bool clique_feasible(std::uint64_t n, std::uint32_t r);

/// Builds the optimal clique host-switch graph: minimum m with
/// m(r-m+1) >= n, switches fully interconnected, hosts packed to capacity.
/// Throws std::invalid_argument when infeasible.
HostSwitchGraph build_clique_graph(std::uint32_t n, std::uint32_t r);

/// Closed-form h-ASPL of the graph build_clique_graph returns (exact; used
/// to cross-check the metric kernels and as the known optimum in tests).
double clique_haspl(std::uint32_t n, std::uint32_t r);

}  // namespace orp

#pragma once
// Order/Degree Problem (ODP) solver.
//
// ODP — the Graph Golf problem the paper builds on (§1, §2, [4]): given an
// order N and maximum degree D, find an undirected graph minimizing the
// ASPL. The paper's §5.1 observation makes ODP a special case of ORP: a
// plain N-vertex D-regular graph is exactly a regular host-switch graph
// with one host per switch and radix D+1, and by Eq. (1) with m = n its
// h-ASPL equals ASPL + 2 — so minimizing one minimizes the other. The
// solver therefore reuses the swap-only annealer on that embedding.

#include <cstdint>

#include "hsg/metrics.hpp"
#include "search/annealer.hpp"

namespace orp {

struct OdpOptions {
  std::uint64_t iterations = 20000;
  int restarts = 1;
  std::uint64_t seed = 1;
  /// Graph Golf ranks by diameter first, ASPL second; kDiameterThenHaspl
  /// matches that, kHaspl optimizes ASPL alone.
  AnnealObjective objective = AnnealObjective::kDiameterThenHaspl;
  AsplKernel kernel = AsplKernel::kAuto;
  ThreadPool* pool = nullptr;
};

struct OdpResult {
  /// The solution embedded as a host-switch graph: vertex i is switch i
  /// (with a single pendant host i, which callers ignore).
  HostSwitchGraph graph;
  SwitchMetrics metrics;        ///< ASPL / diameter of the solution graph
  double moore_aspl_bound = 0;  ///< classical ASPL lower bound
  std::uint32_t order = 0;
  std::uint32_t degree = 0;
};

/// Solves ODP(order, degree): a random near-regular graph refined with
/// swap-operation simulated annealing. Requires order >= 2, degree >= 2,
/// and order * degree even enough for near-saturation (odd products leave
/// one free port, as in Graph Golf practice).
OdpResult solve_odp(std::uint32_t order, std::uint32_t degree,
                    const OdpOptions& options = {});

}  // namespace orp

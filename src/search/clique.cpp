#include "search/clique.hpp"

#include "common/require.hpp"
#include "hsg/bounds.hpp"

namespace orp {

bool clique_feasible(std::uint64_t n, std::uint32_t r) {
  return clique_switch_count(n, r) != 0;
}

HostSwitchGraph build_clique_graph(std::uint32_t n, std::uint32_t r) {
  const std::uint32_t m = clique_switch_count(n, r);
  ORP_REQUIRE(m != 0, "no clique host-switch graph fits this (n, r)");
  HostSwitchGraph g(n, m, r);
  for (SwitchId a = 0; a < m; ++a) {
    for (SwitchId b = a + 1; b < m; ++b) g.add_switch_edge(a, b);
  }
  // Pack hosts: filling switches to capacity maximizes same-switch (2-hop)
  // pairs because C(k, 2) is convex in k.
  const std::uint32_t capacity = r - m + 1;
  HostId next = 0;
  for (SwitchId s = 0; s < m && next < n; ++s) {
    for (std::uint32_t i = 0; i < capacity && next < n; ++i) {
      g.attach_host(next++, s);
    }
  }
  ORP_ASSERT(next == n);
  return g;
}

double clique_haspl(std::uint32_t n, std::uint32_t r) {
  const std::uint32_t m = clique_switch_count(n, r);
  ORP_REQUIRE(m != 0, "no clique host-switch graph fits this (n, r)");
  if (n < 2) return 0.0;
  const std::uint32_t capacity = r - m + 1;
  // Hosts packed to capacity: `full` switches carry `capacity`, one carries
  // the remainder.
  const std::uint32_t full = n / capacity;
  const std::uint32_t rest = n % capacity;
  auto pairs2 = [](std::uint64_t k) { return k * (k - 1) / 2; };
  const std::uint64_t same_switch =
      static_cast<std::uint64_t>(full) * pairs2(capacity) + pairs2(rest);
  const std::uint64_t total_pairs = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const std::uint64_t length = 2 * same_switch + 3 * (total_pairs - same_switch);
  return static_cast<double>(length) / static_cast<double>(total_pairs);
}

}  // namespace orp

#include "search/operations.hpp"

namespace orp {

bool swap_valid(const HostSwitchGraph& g, const SwapMove& move) {
  const auto [a, b, c, d] = move;
  if (a == c || b == d) return false;  // would create a self-loop
  if (!g.has_switch_edge(a, b) || !g.has_switch_edge(c, d)) return false;
  if (g.has_switch_edge(a, c) || g.has_switch_edge(b, d)) return false;
  return true;
}

void apply_swap(HostSwitchGraph& g, const SwapMove& move) {
  g.remove_switch_edge(move.a, move.b);
  g.remove_switch_edge(move.c, move.d);
  g.add_switch_edge(move.a, move.c);
  g.add_switch_edge(move.b, move.d);
}

GraphDelta delta_of(const SwapMove& move) {
  GraphDelta delta;
  delta.remove_edge(move.a, move.b);
  delta.remove_edge(move.c, move.d);
  delta.add_edge(move.a, move.c);
  delta.add_edge(move.b, move.d);
  return delta;
}

GraphDelta delta_of(const SwingMove& move) {
  GraphDelta delta;
  delta.remove_edge(move.a, move.b);
  delta.move_host(move.c, move.b);
  delta.add_edge(move.a, move.c);
  return delta;
}

bool swing_valid(const HostSwitchGraph& g, const SwingMove& move) {
  const SwitchId a = move.a, b = move.b, c = move.c;
  if (a == c || b == c) return false;
  if (!g.has_switch_edge(a, b)) return false;
  if (g.host_switch(move.h) != c) return false;
  if (g.has_switch_edge(a, c)) return false;
  return true;
}

void apply_swing(HostSwitchGraph& g, const SwingMove& move) {
  g.remove_switch_edge(move.a, move.b);
  g.move_host(move.h, move.b);
  g.add_switch_edge(move.a, move.c);
}

std::optional<SwapMove> propose_swap(
    const HostSwitchGraph& g,
    const std::vector<std::pair<SwitchId, SwitchId>>& edges, Xoshiro256& rng,
    int attempts) {
  if (edges.size() < 2) return std::nullopt;
  for (int i = 0; i < attempts; ++i) {
    const std::size_t e1 = rng.below(edges.size());
    std::size_t e2 = rng.below(edges.size() - 1);
    if (e2 >= e1) ++e2;
    auto [a, b] = edges[e1];
    auto [c, d] = edges[e2];
    if (rng.bernoulli(0.5)) std::swap(a, b);
    if (rng.bernoulli(0.5)) std::swap(c, d);
    const SwapMove move{a, b, c, d};
    if (swap_valid(g, move)) return move;
  }
  return std::nullopt;
}

std::optional<SwingMove> propose_swing(
    const HostSwitchGraph& g,
    const std::vector<std::pair<SwitchId, SwitchId>>& edges, Xoshiro256& rng,
    int attempts) {
  if (edges.empty() || g.num_hosts() == 0) return std::nullopt;
  for (int i = 0; i < attempts; ++i) {
    auto [a, b] = edges[rng.below(edges.size())];
    if (rng.bernoulli(0.5)) std::swap(a, b);
    const HostId h = static_cast<HostId>(rng.below(g.num_hosts()));
    const SwingMove move{a, b, g.host_switch(h), h};
    if (swing_valid(g, move)) return move;
  }
  return std::nullopt;
}

std::optional<SwingMove> propose_completion_swing(const HostSwitchGraph& g,
                                                  const SwingMove& first,
                                                  Xoshiro256& rng,
                                                  int attempts) {
  // State after `first`: host h sits on b, edge {a,c} exists. We need a
  // neighbor d of c (d != a, else the completion undoes the first swing)
  // such that swing(d, c, b) is valid; net effect of both swings is the
  // swap {a,b},{d,c} -> {a,c},{d,b}.
  const auto neighbors = g.neighbors(first.c);
  if (neighbors.empty()) return std::nullopt;
  for (int i = 0; i < attempts; ++i) {
    const SwitchId d = neighbors[rng.below(neighbors.size())];
    if (d == first.a || d == first.b) continue;
    const SwingMove completion{d, first.c, first.b, first.h};
    if (swing_valid(g, completion)) return completion;
  }
  return std::nullopt;
}

}  // namespace orp

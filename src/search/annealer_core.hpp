#pragma once
// Step-able simulated-annealing chain — the §5 hot loop factored out of
// anneal() so that multiple chains can interleave.
//
// anneal() drives one SaChain to completion; the replica-exchange backend
// (search/parallel.hpp) drives K of them in swap_interval-sized chunks,
// exchanging configurations at deterministic barriers. The chain owns
// everything one walk needs — graph copy, edge list, PRNG stream,
// DeltaHasplEvaluator, cooling state, best-so-far — and exposes exactly
// the hooks the exchange protocol requires: run a bounded number of
// iterations, read the current energy/temperature, swap configurations
// with another chain, or adopt a broadcast restart candidate.
//
// Determinism contract: a chain's trajectory is a pure function of
// (initial graph, options, schedule, temperature_scale). run(count) in any
// chunking produces the same walk as one run(total) — the iteration
// counter, cooling, windowed telemetry, and trace sampling all key off the
// chain-global iteration index, never off wall clock or chunk boundaries.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/prng.hpp"
#include "hsg/delta_metrics.hpp"
#include "hsg/host_switch_graph.hpp"
#include "hsg/metrics.hpp"
#include "search/annealer.hpp"

namespace orp {

/// Geometric cooling schedule in h-ASPL units: temperature starts at
/// t_initial and is multiplied by `cooling` after every iteration.
struct TemperatureSchedule {
  double t_initial = 0.0;
  double t_final = 0.0;
  double cooling = 1.0;
};

/// Resolves the options' temperatures into a concrete schedule. Explicit
/// positive temperatures pass through; zeros auto-calibrate by probing
/// random moves of the options' own move type from `initial` (probe PRNG
/// seeded options.seed ^ 0xa5a5a5a5, full metric evaluation), setting T0
/// to ~2x the mean |delta| and T_final to T0/1000 — exactly the serial
/// annealer's behaviour, so one calibration can be shared by K replicas.
TemperatureSchedule calibrate_schedule(const HostSwitchGraph& initial,
                                       const HostMetrics& initial_metrics,
                                       const AnnealOptions& options);

class SaChain {
 public:
  struct Config {
    TemperatureSchedule schedule;
    /// Metropolis temperature multiplier — the chain's rung on a
    /// replica-exchange ladder. 1.0 reproduces the serial annealer.
    double temperature_scale = 1.0;
    /// Emit the windowed annealer.* tracer series. Exactly one chain per
    /// search should own them (the serial chain, or ladder position 0).
    bool emit_obs_window = true;
  };

  /// Snapshots `initial` (fully attached, connected; `initial_metrics`
  /// must be its metrics) and prepares the walk: collects the edge list,
  /// seeds the PRNG from options.seed, and builds the incremental
  /// evaluator when options.eval is kDelta. Counts the initial evaluation,
  /// matching anneal()'s result.evaluations accounting.
  SaChain(const HostSwitchGraph& initial, const HostMetrics& initial_metrics,
          const AnnealOptions& options, const Config& config);

  /// Runs up to `count` iterations, stopping at options.iterations or on
  /// shutdown_requested(). Returns the number of iterations executed.
  std::uint64_t run(std::uint64_t count);

  bool finished() const noexcept {
    return interrupted_ || iteration_ >= options_.iterations;
  }
  bool interrupted() const noexcept { return interrupted_; }
  std::uint64_t iteration() const noexcept { return iteration_; }
  std::uint64_t evaluations() const noexcept { return evaluations_; }
  std::uint64_t accepted() const noexcept { return accepted_; }

  const HostSwitchGraph& current() const noexcept { return current_; }
  const HostMetrics& current_metrics() const noexcept { return current_metrics_; }
  const HostSwitchGraph& best() const noexcept { return best_; }
  const HostMetrics& best_metrics() const noexcept { return best_metrics_; }

  /// Objective keys (total pair length, or diameter-weighted for the Graph
  /// Golf ranking) — the integers the Metropolis test compares.
  std::uint64_t current_key() const noexcept { return key_of(current_metrics_); }
  std::uint64_t best_key() const noexcept { return key_of(best_metrics_); }

  /// Current energy in h-ASPL units (key / host pairs) — the scalar the
  /// replica-exchange rule weighs.
  double energy() const noexcept {
    return static_cast<double>(current_key()) / static_cast<double>(pairs_);
  }
  /// Instantaneous Metropolis temperature (schedule x ladder scale).
  double temperature() const noexcept {
    return temperature_ * config_.temperature_scale;
  }
  double temperature_scale() const noexcept { return config_.temperature_scale; }

  /// Replica exchange: swaps the *configurations* (graph, edge list,
  /// metrics, evaluator) of two chains. PRNG streams, cooling state, and
  /// best-so-far bookkeeping stay with their ladder slots, so each slot's
  /// best still covers every state it ever held.
  static void swap_configuration(SaChain& a, SaChain& b) noexcept;

  /// Broadcast restart: replaces the current configuration with `g`
  /// (typically the global best). The evaluator rebuilds from scratch;
  /// best-so-far and the PRNG stream are untouched.
  void adopt(const HostSwitchGraph& g, const HostMetrics& metrics);

  /// Flushes the final telemetry window (call once, when the run ends).
  void finish_telemetry();

  /// Moves the walk's outcome into an AnnealResult.
  AnnealResult take_result();

 private:
  using EdgeList = std::vector<std::pair<SwitchId, SwitchId>>;

  std::uint64_t key_of(const HostMetrics& metrics) const noexcept;
  bool accepts(const HostMetrics& cand);
  void commit(const HostMetrics& cand);
  HostMetrics evaluate_move(const GraphDelta& delta);
  void revert_move();
  void emit_window(std::uint64_t at_iter);
  void run_one_iteration();

  AnnealOptions options_;
  Config config_;

  HostSwitchGraph current_;
  EdgeList edges_;
  HostMetrics current_metrics_;
  std::optional<DeltaHasplEvaluator> delta_eval_;
  Xoshiro256 rng_;

  HostSwitchGraph best_;
  HostMetrics best_metrics_;

  std::uint64_t pairs_ = 0;
  std::uint64_t diameter_weight_ = 0;

  std::uint64_t iteration_ = 0;
  double temperature_ = 0.0;
  bool interrupted_ = false;

  std::uint64_t evaluations_ = 0;
  std::uint64_t accepted_ = 0;
  std::vector<AnnealTracePoint> trace_;

  std::uint64_t window_ = 1;
  std::uint64_t window_moves_ = 0;
  std::uint64_t window_accepted_ = 0;
};

}  // namespace orp

#include "search/solver.hpp"

#include "common/shutdown.hpp"
#include "hsg/bounds.hpp"
#include "obs/trace.hpp"
#include "search/clique.hpp"
#include "common/thread_pool.hpp"
#include "search/random_init.hpp"

namespace orp {

SolveResult solve_orp(std::uint32_t n, std::uint32_t r, const SolveOptions& options) {
  ORP_REQUIRE(n >= 2, "need at least two hosts");
  ORP_REQUIRE(r >= 3, "radix must be at least 3");

  obs::Span solve_span("solver.solve_orp", "search");
  solve_span.arg("n", static_cast<std::uint64_t>(n));
  solve_span.arg("r", static_cast<std::uint64_t>(r));

  // Clique shortcut: provably optimal, no search needed (Appendix Thm. 3).
  {
    obs::Span phase_span("solver.clique_check", "search");
    if (!options.force_switch_count && clique_feasible(n, r)) {
      HostSwitchGraph graph = build_clique_graph(n, r);
      HostMetrics metrics = compute_host_metrics(graph, options.kernel, options.pool);
      const std::uint32_t m_clique = graph.num_switches();
      SolveResult result{.graph = std::move(graph),
                         .metrics = std::move(metrics),
                         .switch_count = m_clique,
                         .predicted_m_opt = optimal_switch_count(n, r),
                         .haspl_lower_bound = haspl_lower_bound(n, r),
                         .continuous_moore_bound =
                             continuous_haspl_moore_bound(n, m_clique, r),
                         .used_clique = true,
                         .sa_trace = {}};
      solve_span.arg("method", "clique");
      return result;
    }
  }

  std::uint32_t m_opt = 0;
  {
    obs::Span phase_span("solver.predict_m_opt", "search");
    m_opt = optimal_switch_count(n, r);
    phase_span.arg("m_opt", static_cast<std::uint64_t>(m_opt));
  }

  const std::uint32_t m = options.force_switch_count.value_or(m_opt);
  ORP_REQUIRE(random_init_feasible(n, m, r),
              "no connected host-switch graph with the requested (n, m, r)");

  Xoshiro256 seeder(options.seed);
  const int restarts = std::max(options.restarts, 1);

  // Each restart gets a deterministic sub-stream so results do not depend
  // on scheduling; with a thread pool the restarts run concurrently (and
  // the annealer then keeps its metric kernel serial to avoid nested
  // oversubscription).
  std::vector<Xoshiro256> streams;
  streams.reserve(static_cast<std::size_t>(restarts));
  for (int run = 0; run < restarts; ++run) streams.push_back(seeder.split());

  std::vector<std::optional<AnnealResult>> results(
      static_cast<std::size_t>(restarts));
  auto run_one = [&](std::size_t run) {
    // Graceful shutdown: skip restarts that have not started yet. Restart 0
    // always runs (the annealer inside winds down immediately when the flag
    // is set) so the solver can still return a valid solution.
    if (run != 0 && shutdown_requested()) return;
    obs::Span restart_span("solver.sa_restart", "search");
    restart_span.arg("restart", static_cast<std::uint64_t>(run));
    Xoshiro256 rng = streams[run];
    const HostSwitchGraph initial =
        options.regular_start
            ? random_regular_host_switch_graph(n, m, r, rng)
            : random_host_switch_graph(n, m, r, rng);
    AnnealOptions anneal_options;
    anneal_options.iterations = options.iterations;
    anneal_options.seed = rng();
    anneal_options.mode = options.mode;
    anneal_options.eval = options.eval;
    anneal_options.kernel = options.kernel;
    anneal_options.pool = (options.pool && restarts > 1) ? nullptr : options.pool;
    anneal_options.trace_every = options.trace_every;
    if (options.backend == SearchBackend::kPool) {
      // The replicas split the restart's move budget, so serial and pool
      // runs at the same --iters spend the same total number of moves.
      ParallelAnnealOptions pool_options;
      pool_options.base = anneal_options;
      pool_options.base.iterations =
          std::max<std::uint64_t>(1, options.iterations / options.replicas);
      pool_options.base.pool = options.pool;
      pool_options.replicas = options.replicas;
      pool_options.swap_interval = options.swap_interval;
      results[run] = std::move(parallel_anneal(initial, pool_options).result);
    } else {
      results[run] = anneal(initial, anneal_options);
    }
    restart_span.arg("haspl", results[run]->best_metrics.h_aspl);
  };
  {
    obs::Span phase_span("solver.sa_restarts", "search");
    phase_span.arg("restarts", static_cast<std::int64_t>(restarts));
    phase_span.arg("iterations", options.iterations);
    phase_span.arg("backend", search_backend_name(options.backend));
    // With the pool backend the replicas are the parallelism — the
    // restarts run serially so replica fan-out gets the whole pool.
    if (options.pool && restarts > 1 &&
        options.backend == SearchBackend::kSerial) {
      options.pool->parallel_for(static_cast<std::size_t>(restarts), run_one);
    } else {
      for (int run = 0; run < restarts; ++run) run_one(static_cast<std::size_t>(run));
    }
  }

  std::optional<AnnealResult> best;
  bool interrupted = false;
  for (auto& result : results) {
    if (!result) {  // restart skipped by a shutdown request
      interrupted = true;
      continue;
    }
    interrupted = interrupted || result->interrupted;
    if (!best ||
        result->best_metrics.total_length < best->best_metrics.total_length) {
      best = std::move(result);
    }
  }
  ORP_ASSERT(best.has_value());  // restart 0 always runs

  SolveResult result{.graph = std::move(best->best),
                     .metrics = best->best_metrics,
                     .switch_count = m,
                     .predicted_m_opt = m_opt,
                     .haspl_lower_bound = haspl_lower_bound(n, r),
                     .continuous_moore_bound = continuous_haspl_moore_bound(n, m, r),
                     .used_clique = false,
                     .interrupted = interrupted,
                     .sa_trace = std::move(best->trace)};
  solve_span.arg("method", "sa");
  solve_span.arg("haspl", result.metrics.h_aspl);
  return result;
}

}  // namespace orp

#include "search/solver.hpp"

#include "hsg/bounds.hpp"
#include "search/clique.hpp"
#include "common/thread_pool.hpp"
#include "search/random_init.hpp"

namespace orp {

SolveResult solve_orp(std::uint32_t n, std::uint32_t r, const SolveOptions& options) {
  ORP_REQUIRE(n >= 2, "need at least two hosts");
  ORP_REQUIRE(r >= 3, "radix must be at least 3");

  const std::uint32_t m_opt = optimal_switch_count(n, r);

  // Clique shortcut: provably optimal, no search needed (Appendix Thm. 3).
  if (!options.force_switch_count && clique_feasible(n, r)) {
    SolveResult result{build_clique_graph(n, r), {}};
    result.metrics = compute_host_metrics(result.graph, options.kernel, options.pool);
    result.switch_count = result.graph.num_switches();
    result.predicted_m_opt = m_opt;
    result.haspl_lower_bound = haspl_lower_bound(n, r);
    result.continuous_moore_bound =
        continuous_haspl_moore_bound(n, result.switch_count, r);
    result.used_clique = true;
    return result;
  }

  const std::uint32_t m = options.force_switch_count.value_or(m_opt);
  ORP_REQUIRE(random_init_feasible(n, m, r),
              "no connected host-switch graph with the requested (n, m, r)");

  Xoshiro256 seeder(options.seed);
  const int restarts = std::max(options.restarts, 1);

  // Each restart gets a deterministic sub-stream so results do not depend
  // on scheduling; with a thread pool the restarts run concurrently (and
  // the annealer then keeps its metric kernel serial to avoid nested
  // oversubscription).
  std::vector<Xoshiro256> streams;
  streams.reserve(static_cast<std::size_t>(restarts));
  for (int run = 0; run < restarts; ++run) streams.push_back(seeder.split());

  std::vector<std::optional<AnnealResult>> results(
      static_cast<std::size_t>(restarts));
  auto run_one = [&](std::size_t run) {
    Xoshiro256 rng = streams[run];
    const HostSwitchGraph initial =
        options.regular_start
            ? random_regular_host_switch_graph(n, m, r, rng)
            : random_host_switch_graph(n, m, r, rng);
    AnnealOptions anneal_options;
    anneal_options.iterations = options.iterations;
    anneal_options.seed = rng();
    anneal_options.mode = options.mode;
    anneal_options.kernel = options.kernel;
    anneal_options.pool = (options.pool && restarts > 1) ? nullptr : options.pool;
    results[run] = anneal(initial, anneal_options);
  };
  if (options.pool && restarts > 1) {
    options.pool->parallel_for(static_cast<std::size_t>(restarts), run_one);
  } else {
    for (int run = 0; run < restarts; ++run) run_one(static_cast<std::size_t>(run));
  }

  std::optional<AnnealResult> best;
  for (auto& result : results) {
    if (!best ||
        result->best_metrics.total_length < best->best_metrics.total_length) {
      best = std::move(result);
    }
  }

  SolveResult result{std::move(best->best), best->best_metrics};
  result.switch_count = m;
  result.predicted_m_opt = m_opt;
  result.haspl_lower_bound = haspl_lower_bound(n, r);
  result.continuous_moore_bound = continuous_haspl_moore_bound(n, m, r);
  return result;
}

}  // namespace orp

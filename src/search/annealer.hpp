#pragma once
// Simulated annealing over host-switch graphs (§5.1–§5.2).
//
// Objective: minimize h-ASPL; disconnected candidates are rejected
// outright (their h-ASPL is infinite). Three neighborhood modes:
//   kSwap           — swap operation only (regular graphs, §5.1)
//   kSwing          — single swing per step (§5.2, Fig. 3)
//   kTwoNeighborSwing — the paper's combined operation (Fig. 4): propose a
//     swing; if rejected, propose the completing swing (net effect: swap);
//     if that is also rejected, restore the original solution.
//
// Acceptance is Metropolis on the h-ASPL delta with geometric cooling.

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/prng.hpp"
#include "hsg/host_switch_graph.hpp"
#include "hsg/metrics.hpp"

namespace orp {

class ThreadPool;

enum class MoveMode { kSwap, kSwing, kTwoNeighborSwing };

/// How candidate moves are evaluated.
///   kFull  — from-scratch compute_host_metrics per candidate.
///   kDelta — incremental DeltaHasplEvaluator (exact, so trajectories are
///            bit-identical to kFull; guarded by Annealer.FullAndDeltaAgree).
enum class EvalStrategy { kFull, kDelta };

/// Parses "full" / "delta" (as accepted by the benches' --eval flag);
/// throws std::invalid_argument on anything else.
EvalStrategy parse_eval_strategy(std::string_view name);

/// What the annealer minimizes.
enum class AnnealObjective {
  kHaspl,              ///< the paper's ORP objective
  kDiameterThenHaspl,  ///< Graph Golf's ranking: diameter first, ASPL tie-break
};

struct AnnealOptions {
  std::uint64_t iterations = 20000;
  AnnealObjective objective = AnnealObjective::kHaspl;
  /// Temperatures are in h-ASPL units. 0 (the default) auto-calibrates:
  /// the annealer samples random moves from the initial solution and sets
  /// T0 to ~2x the mean |delta| (so early moves are mostly accepted) and
  /// T_final to T0/1000. Explicit positive values override.
  double initial_temperature = 0.0;
  double final_temperature = 0.0;
  std::uint64_t seed = 1;
  MoveMode mode = MoveMode::kTwoNeighborSwing;
  EvalStrategy eval = EvalStrategy::kDelta;
  AsplKernel kernel = AsplKernel::kAuto;
  ThreadPool* pool = nullptr;
  /// If nonzero, record a convergence sample every `trace_every` iterations.
  std::uint64_t trace_every = 0;
};

/// One convergence sample (recorded every `trace_every` iterations), enough
/// to re-plot an SA run: where the walk is, the best seen so far, and the
/// temperature that produced the acceptance behaviour.
struct AnnealTracePoint {
  std::uint64_t iteration = 0;
  double current_haspl = 0.0;
  double best_haspl = 0.0;
  double temperature = 0.0;
};

struct AnnealResult {
  HostSwitchGraph best;
  HostMetrics best_metrics;
  std::uint64_t evaluations = 0;        ///< metric evaluations performed
  std::uint64_t accepted = 0;           ///< accepted moves
  std::vector<AnnealTracePoint> trace;  ///< samples (if trace_every > 0)
  /// True when the run stopped early on shutdown_requested() (SIGINT/
  /// SIGTERM); `best` is still the best solution seen up to that point.
  bool interrupted = false;
};

/// Runs SA from `initial` (which must be fully attached and connected) and
/// returns the best solution seen. Polls shutdown_requested() each
/// iteration and winds down gracefully when set.
AnnealResult anneal(const HostSwitchGraph& initial, const AnnealOptions& options);

}  // namespace orp

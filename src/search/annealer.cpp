#include "search/annealer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/shutdown.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/operations.hpp"

namespace orp {
namespace {

// Metric handles for the SA hot loop, resolved once per process. Counter
// names record the §5.2 move machinery: a swing either lands, or its
// completing swing lands (net effect: swap), or the solution is restored.
struct AnnealerInstruments {
  obs::Counter& swap_accepted;
  obs::Counter& swing_accepted;
  obs::Counter& completion_accepted;
  obs::Counter& restored;
  obs::Counter& rejected_disconnected;
  obs::Histogram& eval_ns;

  static AnnealerInstruments& get() {
    auto& registry = obs::Registry::global();
    static AnnealerInstruments instance{
        registry.counter("annealer.swap.accepted"),
        registry.counter("annealer.swing.accepted"),
        registry.counter("annealer.completion.accepted"),
        registry.counter("annealer.restored"),
        registry.counter("annealer.rejected.disconnected"),
        registry.histogram("annealer.eval_ns")};
    return instance;
  }
};

using EdgeList = std::vector<std::pair<SwitchId, SwitchId>>;

EdgeList collect_edges(const HostSwitchGraph& g) {
  EdgeList edges;
  edges.reserve(g.num_switch_edges());
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) edges.emplace_back(s, t);
    }
  }
  return edges;
}

void edge_list_remove(EdgeList& edges, SwitchId a, SwitchId b) {
  if (a > b) std::swap(a, b);
  const auto it = std::find(edges.begin(), edges.end(), std::make_pair(a, b));
  ORP_ASSERT(it != edges.end());
  *it = edges.back();
  edges.pop_back();
}

void edge_list_add(EdgeList& edges, SwitchId a, SwitchId b) {
  if (a > b) std::swap(a, b);
  edges.emplace_back(a, b);
}

void sync_swap(EdgeList& edges, const SwapMove& m) {
  edge_list_remove(edges, m.a, m.b);
  edge_list_remove(edges, m.c, m.d);
  edge_list_add(edges, m.a, m.c);
  edge_list_add(edges, m.b, m.d);
}

void sync_swing(EdgeList& edges, const SwingMove& m) {
  edge_list_remove(edges, m.a, m.b);
  edge_list_add(edges, m.a, m.c);
}

}  // namespace

EvalStrategy parse_eval_strategy(std::string_view name) {
  if (name == "full") return EvalStrategy::kFull;
  if (name == "delta") return EvalStrategy::kDelta;
  throw std::invalid_argument("unknown eval strategy '" + std::string(name) +
                              "' (expected full or delta)");
}

AnnealResult anneal(const HostSwitchGraph& initial, const AnnealOptions& options) {
  ORP_REQUIRE(initial.fully_attached(), "anneal needs every host attached");
  ORP_REQUIRE(options.iterations > 0, "need at least one iteration");
  ORP_REQUIRE(options.initial_temperature >= 0 && options.final_temperature >= 0,
              "temperatures must be non-negative (0 = auto-calibrate)");

  HostSwitchGraph current = initial;
  EdgeList edges = collect_edges(current);
  Xoshiro256 rng(options.seed);

  AnnealerInstruments& instruments = AnnealerInstruments::get();
  obs::Span span("search.anneal", "search");
  span.arg("iterations", options.iterations);
  span.arg("hosts", static_cast<std::uint64_t>(initial.num_hosts()));
  span.arg("switches", static_cast<std::uint64_t>(initial.num_switches()));

  auto evaluate = [&](const HostSwitchGraph& g) {
    obs::ScopedTimer timer(instruments.eval_ns);
    return compute_host_metrics(g, options.kernel, options.pool);
  };

  HostMetrics current_metrics = evaluate(current);
  ORP_REQUIRE(current_metrics.connected, "anneal needs a connected initial solution");

  // Incremental h-ASPL evaluation (the default): the evaluator mirrors
  // `current` and repairs its distance state per move. It is exact, so the
  // search trajectory is bit-identical to --eval full (the calibration
  // probes below stay on full compute in both modes for the same reason).
  std::optional<DeltaHasplEvaluator> delta_eval;
  if (options.eval == EvalStrategy::kDelta) delta_eval.emplace(current);

  auto evaluate_move = [&](const GraphDelta& delta) {
    obs::ScopedTimer timer(instruments.eval_ns);
    if (delta_eval) return delta_eval->apply(delta);
    return compute_host_metrics(current, options.kernel, options.pool);
  };
  // Called after `current` has been restored: rejecting a move replays
  // the evaluator's undo log (revert_last), which is much cheaper than an
  // inverse repair. Frames nest, covering the 2-neighbor completion chain.
  auto revert_move = [&]() {
    if (delta_eval) delta_eval->revert_last(current);
  };

  AnnealResult result{current, current_metrics, 0, 0, {}};
  result.evaluations = 1;

  const std::uint64_t pairs =
      static_cast<std::uint64_t>(current.num_hosts()) * (current.num_hosts() - 1) / 2;

  // Auto-calibrate the schedule: sample random moves from the start state
  // and scale T0 to the typical |delta| so the walk starts permissive and
  // ends effectively greedy. Without this, a fixed T0 is either a pure
  // random walk (T >> |delta|, e.g. large m) or pure descent (T << |delta|).
  double t_initial = options.initial_temperature;
  double t_final = options.final_temperature;
  if (t_initial <= 0.0) {
    Xoshiro256 probe_rng(options.seed ^ 0xa5a5a5a5ULL);
    double abs_delta_sum = 0.0;
    int samples = 0;
    for (int i = 0; i < 24; ++i) {
      // Probe with the mode's own move type so the delta scale matches.
      HostMetrics probe;
      if (options.mode == MoveMode::kSwap) {
        const auto move = propose_swap(current, edges, probe_rng);
        if (!move) break;
        apply_swap(current, *move);
        probe = compute_host_metrics(current, options.kernel, options.pool);
        apply_swap(current, move->inverse());
      } else {
        const auto move = propose_swing(current, edges, probe_rng);
        if (!move) break;
        apply_swing(current, *move);
        probe = compute_host_metrics(current, options.kernel, options.pool);
        apply_swing(current, move->inverse());
      }
      if (probe.connected) {
        abs_delta_sum += std::abs(static_cast<double>(probe.total_length) -
                                  static_cast<double>(current_metrics.total_length)) /
                         static_cast<double>(pairs);
        ++samples;
      }
    }
    const double mean_delta = samples ? abs_delta_sum / samples : 0.0;
    t_initial = std::max(2.0 * mean_delta, 1e-9);
  }
  if (t_final <= 0.0) t_final = t_initial / 1000.0;

  const double cooling =
      options.iterations > 1
          ? std::pow(t_final / t_initial,
                     1.0 / static_cast<double>(options.iterations - 1))
          : 1.0;
  double temperature = t_initial;

  // Scalar optimization key. For the ORP objective it is the summed pair
  // length; for the Graph Golf ranking the diameter dominates via a weight
  // larger than any possible length sum (pairs * (diameter levels + 3)).
  const std::uint64_t diameter_weight =
      pairs * (static_cast<std::uint64_t>(current.num_switches()) + 3);
  auto key_of = [&](const HostMetrics& metrics) {
    if (options.objective == AnnealObjective::kDiameterThenHaspl) {
      return metrics.diameter * diameter_weight + metrics.total_length;
    }
    return static_cast<std::uint64_t>(metrics.total_length);
  };

  // Metropolis test on the objective delta. Disconnected candidates have
  // infinite h-ASPL and are always rejected.
  auto accepts = [&](const HostMetrics& cand) {
    if (!cand.connected) {
      instruments.rejected_disconnected.inc();
      return false;
    }
    const std::uint64_t cand_key = key_of(cand);
    const std::uint64_t current_key = key_of(current_metrics);
    if (cand_key <= current_key) return true;
    const double delta =
        static_cast<double>(cand_key - current_key) / static_cast<double>(pairs);
    return rng.bernoulli(std::exp(-delta / temperature));
  };

  auto commit = [&](const HostMetrics& cand) {
    current_metrics = cand;
    ++result.accepted;
    if (key_of(cand) < key_of(result.best_metrics)) {
      result.best = current;
      result.best_metrics = cand;
    }
  };

  // Windowed telemetry: every `window` iterations emit one sample of the
  // acceptance rate, temperature, and current/best h-ASPL as counter-series
  // trace events (only when a JSONL sink is active; the check is one
  // relaxed load per window).
  const std::uint64_t window =
      options.trace_every ? options.trace_every
                          : std::max<std::uint64_t>(1, options.iterations / 64);
  std::uint64_t window_moves = 0;
  std::uint64_t window_accepted = 0;
  auto emit_window = [&](std::uint64_t at_iter) {
    obs::Tracer& tracer = obs::Tracer::global();
    if (!tracer.enabled()) return;
    const double rate = window_moves
                            ? static_cast<double>(window_accepted) /
                                  static_cast<double>(window_moves)
                            : 0.0;
    // The iteration series lets orp_report map wall-clock positions (e.g.
    // "progress flat-lined at t") back to an iteration number.
    tracer.counter("annealer.iteration", static_cast<double>(at_iter), "search");
    tracer.counter("annealer.acceptance_rate", rate, "search");
    tracer.counter("annealer.temperature", temperature, "search");
    tracer.counter("annealer.current_haspl", current_metrics.h_aspl, "search");
    tracer.counter("annealer.best_haspl", result.best_metrics.h_aspl, "search");
  };

  std::uint64_t iter = 0;
  for (; iter < options.iterations; ++iter, temperature *= cooling) {
    if (shutdown_requested()) {
      // SIGINT/SIGTERM: wind down and hand back the best-so-far.
      result.interrupted = true;
      break;
    }
    if (options.trace_every && iter % options.trace_every == 0) {
      result.trace.push_back({iter, current_metrics.h_aspl,
                              result.best_metrics.h_aspl, temperature});
    }
    if (iter % window == 0) {
      emit_window(iter);
      window_moves = 0;
      window_accepted = 0;
    }
    ++window_moves;

    if (options.mode == MoveMode::kSwap) {
      const auto move = propose_swap(current, edges, rng);
      if (!move) continue;
      const GraphDelta delta = delta_of(*move);
      apply_swap(current, *move);
      const HostMetrics cand = evaluate_move(delta);
      ++result.evaluations;
      if (accepts(cand)) {
        sync_swap(edges, *move);
        commit(cand);
        instruments.swap_accepted.inc();
        ++window_accepted;
      } else {
        apply_swap(current, move->inverse());
        revert_move();
        instruments.restored.inc();
      }
      continue;
    }

    // kSwing and kTwoNeighborSwing both start with a swing proposal.
    const auto first = propose_swing(current, edges, rng);
    if (!first) continue;
    const GraphDelta first_delta = delta_of(*first);
    apply_swing(current, *first);
    const HostMetrics one_neighbor = evaluate_move(first_delta);
    ++result.evaluations;
    if (accepts(one_neighbor)) {
      sync_swing(edges, *first);
      commit(one_neighbor);
      instruments.swing_accepted.inc();
      ++window_accepted;
      continue;
    }
    if (options.mode == MoveMode::kSwing) {
      apply_swing(current, first->inverse());
      revert_move();
      instruments.restored.inc();
      continue;
    }

    // 2-neighbor completion: try the swing that turns the pair into a swap.
    const auto completion = propose_completion_swing(current, *first, rng);
    if (completion) {
      const GraphDelta completion_delta = delta_of(*completion);
      apply_swing(current, *completion);
      const HostMetrics two_neighbor = evaluate_move(completion_delta);
      ++result.evaluations;
      if (accepts(two_neighbor)) {
        sync_swing(edges, *first);
        sync_swing(edges, *completion);
        commit(two_neighbor);
        instruments.completion_accepted.inc();
        ++window_accepted;
        continue;
      }
      apply_swing(current, completion->inverse());
      revert_move();
    }
    apply_swing(current, first->inverse());
    revert_move();
    instruments.restored.inc();
  }
  emit_window(iter);

  span.arg("evaluations", result.evaluations);
  span.arg("accepted", result.accepted);
  if (result.interrupted) span.arg("interrupted", std::uint64_t{1});
  span.arg("best_haspl", result.best_metrics.h_aspl);
  return result;
}

}  // namespace orp

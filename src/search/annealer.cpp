#include "search/annealer.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/annealer_core.hpp"

namespace orp {

EvalStrategy parse_eval_strategy(std::string_view name) {
  if (name == "full") return EvalStrategy::kFull;
  if (name == "delta") return EvalStrategy::kDelta;
  throw std::invalid_argument("unknown eval strategy '" + std::string(name) +
                              "' (expected full or delta)");
}

// One SaChain driven start to finish. The chain owns the whole §5 move
// machinery (search/annealer_core.cpp); this wrapper contributes the span,
// the initial evaluation, and the schedule calibration — the pieces the
// replica-exchange backend performs once and shares across K chains.
AnnealResult anneal(const HostSwitchGraph& initial, const AnnealOptions& options) {
  ORP_REQUIRE(initial.fully_attached(), "anneal needs every host attached");
  ORP_REQUIRE(options.iterations > 0, "need at least one iteration");
  ORP_REQUIRE(options.initial_temperature >= 0 && options.final_temperature >= 0,
              "temperatures must be non-negative (0 = auto-calibrate)");

  obs::Span span("search.anneal", "search");
  span.arg("iterations", options.iterations);
  span.arg("hosts", static_cast<std::uint64_t>(initial.num_hosts()));
  span.arg("switches", static_cast<std::uint64_t>(initial.num_switches()));

  HostMetrics initial_metrics;
  {
    obs::ScopedTimer timer(obs::Registry::global().histogram("annealer.eval_ns"));
    initial_metrics = compute_host_metrics(initial, options.kernel, options.pool);
  }
  ORP_REQUIRE(initial_metrics.connected, "anneal needs a connected initial solution");

  SaChain::Config config;
  config.schedule = calibrate_schedule(initial, initial_metrics, options);
  SaChain chain(initial, initial_metrics, options, config);
  chain.run(options.iterations);
  chain.finish_telemetry();
  AnnealResult result = chain.take_result();

  span.arg("evaluations", result.evaluations);
  span.arg("accepted", result.accepted);
  if (result.interrupted) span.arg("interrupted", std::uint64_t{1});
  span.arg("best_haspl", result.best_metrics.h_aspl);
  return result;
}

}  // namespace orp

#pragma once
// The end-to-end ORP solver (§5.3, "our proposed topology is generated as
// follows").
//
// Given order n and radix r:
//   1. If all hosts fit on one switch (n <= r), that single switch is the
//      optimum (h-ASPL = 2).
//   2. If a clique host-switch graph fits (n <= m(r-m+1) for some m), the
//      clique construction is provably optimal (Appendix).
//   3. Otherwise predict the optimal switch count m_opt as the minimizer
//      of the continuous Moore bound and run simulated annealing with the
//      2-neighbor swing operation at that m.
//
// `force_switch_count` overrides step 3's m (used by the Fig. 5 sweeps);
// the clique shortcut is skipped whenever m is forced.

#include <cstdint>
#include <optional>

#include "hsg/metrics.hpp"
#include "search/annealer.hpp"
#include "search/parallel.hpp"

namespace orp {

struct SolveOptions {
  std::uint64_t iterations = 20000;   ///< SA move budget per restart (total
                                      ///< across replicas for kPool)
  int restarts = 1;                   ///< independent SA runs; best kept
  std::uint64_t seed = 1;
  /// Search engine per restart: kSerial runs one annealing chain; kPool
  /// runs replica-exchange tempering (search/parallel.hpp) with `replicas`
  /// rungs splitting the same `iterations` budget, so equal-budget
  /// comparisons use the same --iters. With kPool the restarts themselves
  /// run serially — the pool parallelism goes to the replicas.
  SearchBackend backend = SearchBackend::kSerial;
  std::uint32_t replicas = 4;         ///< ladder size K (kPool only)
  std::uint64_t swap_interval = 512;  ///< moves between exchange barriers
  MoveMode mode = MoveMode::kTwoNeighborSwing;
  /// Escape hatch for the incremental evaluator (--eval full in the bench
  /// binaries); kDelta is exact and the default.
  EvalStrategy eval = EvalStrategy::kDelta;
  AsplKernel kernel = AsplKernel::kAuto;
  ThreadPool* pool = nullptr;
  std::optional<std::uint32_t> force_switch_count;
  /// Use the regular initializer (balanced hosts; needed for kSwap mode
  /// which cannot change the host distribution).
  bool regular_start = false;
  /// If nonzero, each SA restart records a convergence sample every
  /// `trace_every` iterations; the winning restart's samples are returned
  /// in SolveResult::sa_trace.
  std::uint64_t trace_every = 0;
};

struct SolveResult {
  HostSwitchGraph graph;
  HostMetrics metrics;
  std::uint32_t switch_count = 0;       ///< m of the returned graph
  std::uint32_t predicted_m_opt = 0;    ///< continuous-Moore minimizer
  double haspl_lower_bound = 0.0;       ///< Theorem 2
  double continuous_moore_bound = 0.0;  ///< at the returned m
  bool used_clique = false;             ///< solved by construction, no SA
  /// True when SIGINT/SIGTERM cut the search short (remaining restarts
  /// were skipped and the running ones wound down); the returned graph is
  /// still the best found before the interruption.
  bool interrupted = false;
  /// Convergence samples of the best restart (when trace_every > 0).
  std::vector<AnnealTracePoint> sa_trace;
};

/// Solves ORP(n, r). Throws std::invalid_argument on infeasible inputs
/// (e.g. a forced m with too few total ports).
SolveResult solve_orp(std::uint32_t n, std::uint32_t r,
                      const SolveOptions& options = {});

}  // namespace orp

#include "cost/floorplan.hpp"

#include <cmath>
#include <cstdlib>

#include "common/require.hpp"

namespace orp {

Floorplan::Floorplan(std::uint32_t num_cabinets, const CostModelParams& params)
    : params_(params) {
  ORP_REQUIRE(num_cabinets >= 1, "need at least one cabinet");
  columns_ = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(num_cabinets))));
  rows_ = (num_cabinets + columns_ - 1) / columns_;
}

double Floorplan::cable_length_cm(std::uint32_t a, std::uint32_t b) const {
  if (a == b) return params_.intra_cabinet_cable_cm;
  const std::int64_t col_a = a % columns_, row_a = a / columns_;
  const std::int64_t col_b = b % columns_, row_b = b / columns_;
  const double dx = static_cast<double>(std::llabs(col_a - col_b)) * params_.cabinet_width_cm;
  const double dy = static_cast<double>(std::llabs(row_a - row_b)) * params_.cabinet_depth_cm;
  return dx + dy + params_.cable_slack_cm;
}

}  // namespace orp

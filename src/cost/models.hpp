#pragma once
// Power and cost model constants (§6.2.3).
//
// The paper uses "power and cost models of Mellanox InfiniBand FDR10
// switches and Mellanox InfiniBand FDR10 40Gb/s QSFP cables", citing the
// Slim Fly paper (Besta & Hoefler, SC'14) for the models. We cannot ship
// the vendors' price sheets, so the constants below are approximations in
// the published range:
//   * 36-port SX6036 FDR10 switch: ~$11.7k, ~110-230 W  -> per-port model
//   * QSFP copper cable: ~$30-80 depending on length    -> base + per-m
//   * QSFP active optical cable: ~$200-500 by length    -> base + per-m,
//     plus transceiver power on both ends
// The paper's conclusions depend on switch counts and cable-length mixes
// (topology properties), not on the absolute dollar values, so the
// reproduction targets survive this substitution (see DESIGN.md).

namespace orp {

struct CostModelParams {
  // ---- floorplan (paper values) ----
  double cabinet_width_cm = 60.0;
  double cabinet_depth_cm = 210.0;  ///< includes aisle space
  /// Cables longer than this are optical (paper: 100 cm).
  double electrical_limit_cm = 100.0;
  /// Host <-> switch cable inside one cabinet.
  double intra_cabinet_cable_cm = 50.0;
  /// Extra length per inter-cabinet cable for vertical routing/slack.
  /// Kept below 40 cm so a neighboring-cabinet cable (60 cm pitch) stays
  /// under the 100 cm electrical limit — structured topologies (torus
  /// rings, dragonfly groups) then keep their short-electrical-cable
  /// advantage, as in the paper.
  double cable_slack_cm = 30.0;

  // ---- switch model (FDR10, per-port scaled) ----
  double switch_cost_base_usd = 500.0;
  double switch_cost_per_port_usd = 310.0;  ///< ~$11.7k / 36 ports
  double switch_power_base_w = 25.0;
  double switch_power_per_port_w = 2.9;     ///< ~130 W / 36 ports

  // ---- cable models ----
  double electrical_cost_base_usd = 29.0;
  double electrical_cost_per_m_usd = 4.1;
  double electrical_power_w = 0.2;  ///< passive copper, negligible
  /// Active optical cables are strongly length-priced (a 30 m FDR10 AOC
  /// lists near $650): keeping the per-meter share dominant preserves the
  /// paper's cable-cost contrast between locality-friendly topologies
  /// (torus rings, dragonfly groups) and the proposed random-like graphs.
  double optical_cost_base_usd = 100.0;
  double optical_cost_per_m_usd = 18.0;
  double optical_power_w = 2.0;     ///< ~1 W transceiver per end
};

}  // namespace orp

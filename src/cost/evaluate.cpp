#include "cost/evaluate.hpp"

namespace orp {

NetworkCostReport evaluate_network_cost(const HostSwitchGraph& g,
                                        const CostModelParams& params) {
  NetworkCostReport report;
  report.switches = g.num_switches();
  const Floorplan plan(g.num_switches(), params);

  auto add_cable = [&](double length_cm) {
    report.total_cable_m += length_cm / 100.0;
    const double length_m = length_cm / 100.0;
    if (length_cm <= params.electrical_limit_cm) {
      ++report.electrical_cables;
      report.electrical_cable_cost_usd +=
          params.electrical_cost_base_usd + params.electrical_cost_per_m_usd * length_m;
      report.cable_power_w += params.electrical_power_w;
    } else {
      ++report.optical_cables;
      report.optical_cable_cost_usd +=
          params.optical_cost_base_usd + params.optical_cost_per_m_usd * length_m;
      report.cable_power_w += params.optical_power_w;
    }
  };

  // Host cables: intra-cabinet.
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    if (g.host_attached(h)) add_cable(params.intra_cabinet_cable_cm);
  }
  // Switch-switch cables: floorplan Manhattan length.
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) add_cable(plan.cable_length_cm(s, t));
    }
  }

  // Switch cost/power scale with the port count actually provisioned
  // (the radix — ports exist whether or not they are cabled).
  const double per_switch_cost =
      params.switch_cost_base_usd + params.switch_cost_per_port_usd * g.radix();
  const double per_switch_power =
      params.switch_power_base_w + params.switch_power_per_port_w * g.radix();
  report.switch_cost_usd = per_switch_cost * g.num_switches();
  report.switch_power_w = per_switch_power * g.num_switches();
  return report;
}

}  // namespace orp

#pragma once
// Physical floorplan for power/cost evaluation (§6.2.3).
//
// One cabinet per switch (the switch plus its attached hosts), cabinets
// laid out row-major on a near-square 2-D grid. Cable length between two
// cabinets is the Manhattan distance between cabinet centers plus routing
// slack; host cables stay inside the cabinet.

#include <cstdint>

#include "cost/models.hpp"
#include "hsg/host_switch_graph.hpp"

namespace orp {

class Floorplan {
 public:
  Floorplan(std::uint32_t num_cabinets, const CostModelParams& params);

  std::uint32_t columns() const noexcept { return columns_; }
  std::uint32_t rows() const noexcept { return rows_; }

  /// Centimeters of cable between cabinets `a` and `b` (switch ids),
  /// including slack; 0 slack and intra-cabinet length when a == b.
  double cable_length_cm(std::uint32_t a, std::uint32_t b) const;

 private:
  const CostModelParams& params_;
  std::uint32_t columns_;
  std::uint32_t rows_;
};

}  // namespace orp

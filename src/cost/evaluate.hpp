#pragma once
// Whole-network power and cost evaluation (§6.2.3; Figs. 9c/d, 10c/d,
// 11c/d).

#include <cstdint>

#include "cost/floorplan.hpp"
#include "cost/models.hpp"
#include "hsg/host_switch_graph.hpp"

namespace orp {

struct NetworkCostReport {
  std::uint32_t switches = 0;
  std::uint64_t electrical_cables = 0;
  std::uint64_t optical_cables = 0;
  double total_cable_m = 0.0;

  double switch_cost_usd = 0.0;
  double electrical_cable_cost_usd = 0.0;
  double optical_cable_cost_usd = 0.0;
  double cable_cost_usd() const {
    return electrical_cable_cost_usd + optical_cable_cost_usd;
  }
  double total_cost_usd() const { return switch_cost_usd + cable_cost_usd(); }

  double switch_power_w = 0.0;
  double cable_power_w = 0.0;
  double total_power_w() const { return switch_power_w + cable_power_w; }
};

/// Evaluates the network: places one cabinet per switch on a 2-D grid,
/// measures every cable (host-switch cables are intra-cabinet), picks
/// electrical vs optical by length, and applies the FDR10-like models.
NetworkCostReport evaluate_network_cost(const HostSwitchGraph& g,
                                        const CostModelParams& params = {});

}  // namespace orp

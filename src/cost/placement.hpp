#pragma once
// Cable-aware switch placement.
//
// §6.3.1 attributes the proposed topology's extra cable cost to "cable
// complexity": random-like wiring means long cables between distant
// cabinets. That cost depends on WHERE each switch's cabinet sits on the
// floor — a degree of freedom the identity layout wastes. This optimizer
// assigns switches to cabinets (a permutation) to minimize total cable
// cost via simulated annealing over cabinet swaps, recovering much of the
// structured topologies' advantage for the ORP graphs (see the
// abl_placement bench).

#include <cstdint>
#include <vector>

#include "common/prng.hpp"
#include "cost/evaluate.hpp"

namespace orp {

/// Total cable cost (USD) of the network under a cabinet assignment
/// (`cabinet_of[s]` = cabinet index of switch s; a permutation of
/// [0, m)). Host cables are intra-cabinet and unaffected.
double cable_cost_under_placement(const HostSwitchGraph& g,
                                  const std::vector<std::uint32_t>& cabinet_of,
                                  const CostModelParams& params = {});

/// Optimizes the switch -> cabinet permutation by simulated annealing
/// (pairwise cabinet swaps, cost delta evaluated incrementally on the two
/// touched switches' incident cables). Returns the best assignment found;
/// starts from the identity layout.
std::vector<std::uint32_t> optimize_placement(const HostSwitchGraph& g,
                                              std::uint64_t iterations,
                                              std::uint64_t seed,
                                              const CostModelParams& params = {});

/// Cost/power report under an explicit placement.
NetworkCostReport evaluate_network_cost_placed(
    const HostSwitchGraph& g, const std::vector<std::uint32_t>& cabinet_of,
    const CostModelParams& params = {});

}  // namespace orp

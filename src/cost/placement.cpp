#include "cost/placement.hpp"

#include <cmath>
#include <numeric>

#include "common/require.hpp"
#include "cost/floorplan.hpp"

namespace orp {
namespace {

double one_cable_cost(double length_cm, const CostModelParams& params) {
  const double length_m = length_cm / 100.0;
  if (length_cm <= params.electrical_limit_cm) {
    return params.electrical_cost_base_usd + params.electrical_cost_per_m_usd * length_m;
  }
  return params.optical_cost_base_usd + params.optical_cost_per_m_usd * length_m;
}

void check_permutation(const HostSwitchGraph& g,
                       const std::vector<std::uint32_t>& cabinet_of) {
  ORP_REQUIRE(cabinet_of.size() == g.num_switches(), "placement size mismatch");
  std::vector<std::uint8_t> seen(g.num_switches(), 0);
  for (const std::uint32_t c : cabinet_of) {
    ORP_REQUIRE(c < g.num_switches() && !seen[c], "placement must be a permutation");
    seen[c] = 1;
  }
}

// Cost of all switch-switch cables incident to `s` under the placement.
double incident_cost(const HostSwitchGraph& g, const Floorplan& plan,
                     const std::vector<std::uint32_t>& cabinet_of, SwitchId s,
                     const CostModelParams& params) {
  double total = 0.0;
  for (const SwitchId t : g.neighbors(s)) {
    total += one_cable_cost(plan.cable_length_cm(cabinet_of[s], cabinet_of[t]), params);
  }
  return total;
}

}  // namespace

double cable_cost_under_placement(const HostSwitchGraph& g,
                                  const std::vector<std::uint32_t>& cabinet_of,
                                  const CostModelParams& params) {
  check_permutation(g, cabinet_of);
  const Floorplan plan(g.num_switches(), params);
  double total = 0.0;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (const SwitchId t : g.neighbors(s)) {
      if (s < t) {
        total += one_cable_cost(plan.cable_length_cm(cabinet_of[s], cabinet_of[t]), params);
      }
    }
  }
  // Host cables (intra-cabinet, placement-invariant).
  double host_cables = 0.0;
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    if (g.host_attached(h)) {
      host_cables += one_cable_cost(params.intra_cabinet_cable_cm, params);
    }
  }
  return total + host_cables;
}

std::vector<std::uint32_t> optimize_placement(const HostSwitchGraph& g,
                                              std::uint64_t iterations,
                                              std::uint64_t seed,
                                              const CostModelParams& params) {
  const std::uint32_t m = g.num_switches();
  std::vector<std::uint32_t> cabinet_of(m);
  std::iota(cabinet_of.begin(), cabinet_of.end(), 0);
  if (m < 2) return cabinet_of;

  const Floorplan plan(m, params);
  Xoshiro256 rng(seed);

  // Auto-scaled schedule, same philosophy as the graph annealer: T0 near
  // the typical |delta| of a random swap.
  double probe_sum = 0.0;
  int probes = 0;
  for (int i = 0; i < 16; ++i) {
    const auto a = static_cast<SwitchId>(rng.below(m));
    auto b = static_cast<SwitchId>(rng.below(m - 1));
    if (b >= a) ++b;
    const double before = incident_cost(g, plan, cabinet_of, a, params) +
                          incident_cost(g, plan, cabinet_of, b, params);
    std::swap(cabinet_of[a], cabinet_of[b]);
    const double after = incident_cost(g, plan, cabinet_of, a, params) +
                         incident_cost(g, plan, cabinet_of, b, params);
    std::swap(cabinet_of[a], cabinet_of[b]);
    probe_sum += std::abs(after - before);
    ++probes;
  }
  double temperature = std::max(probe_sum / std::max(probes, 1), 1.0);
  const double t_final = temperature / 1000.0;
  const double cooling =
      iterations > 1 ? std::pow(t_final / temperature,
                                1.0 / static_cast<double>(iterations - 1))
                     : 1.0;

  std::vector<std::uint32_t> best = cabinet_of;
  double current_cost = cable_cost_under_placement(g, cabinet_of, params);
  double best_cost = current_cost;
  for (std::uint64_t iter = 0; iter < iterations; ++iter, temperature *= cooling) {
    const auto a = static_cast<SwitchId>(rng.below(m));
    auto b = static_cast<SwitchId>(rng.below(m - 1));
    if (b >= a) ++b;
    const double before = incident_cost(g, plan, cabinet_of, a, params) +
                          incident_cost(g, plan, cabinet_of, b, params);
    std::swap(cabinet_of[a], cabinet_of[b]);
    const double after = incident_cost(g, plan, cabinet_of, a, params) +
                         incident_cost(g, plan, cabinet_of, b, params);
    // The a-b cable (if any) appears in both sums before and after with
    // the same length, so it cancels in the delta.
    const double delta = after - before;
    if (delta <= 0 || rng.bernoulli(std::exp(-delta / temperature))) {
      current_cost += delta;
      if (current_cost < best_cost) {
        best_cost = current_cost;
        best = cabinet_of;
      }
    } else {
      std::swap(cabinet_of[a], cabinet_of[b]);  // reject
    }
  }
  return best;
}

NetworkCostReport evaluate_network_cost_placed(
    const HostSwitchGraph& g, const std::vector<std::uint32_t>& cabinet_of,
    const CostModelParams& params) {
  check_permutation(g, cabinet_of);
  NetworkCostReport report;
  report.switches = g.num_switches();
  const Floorplan plan(g.num_switches(), params);

  auto add_cable = [&](double length_cm) {
    const double length_m = length_cm / 100.0;
    report.total_cable_m += length_m;
    if (length_cm <= params.electrical_limit_cm) {
      ++report.electrical_cables;
      report.electrical_cable_cost_usd +=
          params.electrical_cost_base_usd + params.electrical_cost_per_m_usd * length_m;
      report.cable_power_w += params.electrical_power_w;
    } else {
      ++report.optical_cables;
      report.optical_cable_cost_usd +=
          params.optical_cost_base_usd + params.optical_cost_per_m_usd * length_m;
      report.cable_power_w += params.optical_power_w;
    }
  };

  for (HostId h = 0; h < g.num_hosts(); ++h) {
    if (g.host_attached(h)) add_cable(params.intra_cabinet_cable_cm);
  }
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (const SwitchId t : g.neighbors(s)) {
      if (s < t) add_cable(plan.cable_length_cm(cabinet_of[s], cabinet_of[t]));
    }
  }

  const double per_switch_cost =
      params.switch_cost_base_usd + params.switch_cost_per_port_usd * g.radix();
  const double per_switch_power =
      params.switch_power_base_w + params.switch_power_per_port_w * g.radix();
  report.switch_cost_usd = per_switch_cost * g.num_switches();
  report.switch_power_w = per_switch_power * g.num_switches();
  return report;
}

}  // namespace orp

// Degraded-operation tests: routing on faulted topologies and the
// simulator's mid-run fault handling (reroute, bounded-timeout failure,
// graceful-degradation accounting).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/prng.hpp"
#include "search/random_init.hpp"
#include "sim/machine.hpp"
#include "sim/routing.hpp"

namespace orp {
namespace {

// host0 - s0 - s1 - s2 - host1, with a detour edge s0-s2 available for
// variants that add it.
HostSwitchGraph line_graph() {
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  return g;
}

TEST(RoutingDegraded, TryAppendOnDisconnectedPairReturnsZero) {
  HostSwitchGraph g = line_graph();
  g.remove_switch_edge(1, 2);  // s2 (and host1) now isolated
  const RoutingTable routes(g);

  EXPECT_FALSE(routes.hosts_connected(0, 1));
  std::vector<LinkId> path;
  EXPECT_EQ(routes.try_append_host_path(0, 1, path), 0u);
  EXPECT_TRUE(path.empty());
  EXPECT_EQ(routes.try_append_host_path_ecmp(0, 1, 42, path), 0u);
  EXPECT_TRUE(path.empty());
  EXPECT_THROW(routes.append_host_path(0, 1, path), std::invalid_argument);
}

TEST(RoutingDegraded, RerouteAfterLinkRemovalTakesSurvivingPath) {
  // Triangle s0-s1-s2; direct edge s0-s2 dies, route detours via s1.
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  g.add_switch_edge(0, 2);

  const RoutingTable healthy(g);
  std::vector<LinkId> path;
  EXPECT_EQ(healthy.append_host_path(0, 1, path), 3u);  // up, s0->s2, down

  g.remove_switch_edge(0, 2);
  const RoutingTable degraded(g);
  path.clear();
  EXPECT_EQ(degraded.try_append_host_path(0, 1, path), 4u);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], degraded.host_uplink(0));
  EXPECT_EQ(path[1], degraded.switch_link(0, 1));
  EXPECT_EQ(path[2], degraded.switch_link(1, 2));
  EXPECT_EQ(path[3], degraded.host_downlink(1));
}

TEST(RoutingDegraded, EcmpPathsStayValidAfterRebuild) {
  Xoshiro256 rng(11);
  HostSwitchGraph g = random_host_switch_graph(32, 8, 6, rng);
  // Remove a couple of switch edges (keep it connected with high
  // probability at r=6; skip the check if it disconnects).
  const auto n0 = g.neighbors(0);
  std::vector<SwitchId> nbrs(n0.begin(), n0.end());
  if (!nbrs.empty()) g.remove_switch_edge(0, nbrs.front());
  const RoutingTable routes(g);

  std::vector<LinkId> path;
  for (HostId src = 0; src < 8; ++src) {
    for (HostId dst = 8; dst < 16; ++dst) {
      for (std::uint64_t key = 0; key < 4; ++key) {
        path.clear();
        const std::uint32_t hops =
            routes.try_append_host_path_ecmp(src, dst, key, path);
        if (hops == 0) continue;  // disconnected pair: nothing to validate
        ASSERT_EQ(path.size(), hops);
        // Deterministic and ECMP routes agree on length.
        std::vector<LinkId> det;
        EXPECT_EQ(routes.try_append_host_path(src, dst, det), hops);
        // Every link id is in range and the path is loop-free.
        std::vector<LinkId> sorted(path);
        std::sort(sorted.begin(), sorted.end());
        EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                    sorted.end());
        for (const LinkId l : path) EXPECT_LT(l, routes.num_links());
      }
    }
  }
}

TEST(MachineFaults, NoFaultRunIsUnchanged) {
  Xoshiro256 rng(5);
  const HostSwitchGraph g = random_host_switch_graph(16, 8, 5, rng);
  Machine a(g);
  Machine b(g);
  b.inject_faults({});  // empty injection must be a no-op
  const double ta = a.alltoall(1 << 12);
  const double tb = b.alltoall(1 << 12);
  EXPECT_DOUBLE_EQ(ta, tb);
  EXPECT_EQ(b.fault_stats().events_applied, 0u);
  EXPECT_EQ(b.last_phase_stats().failed, 0u);
  EXPECT_EQ(b.last_phase_stats().retried, 0u);
  EXPECT_EQ(b.last_phase_stats().completed, b.last_phase_stats().flows);
}

TEST(MachineFaults, RejectsInvalidEvents) {
  const HostSwitchGraph g = line_graph();
  Machine m(g);
  FaultEvent bad;
  bad.time = -1.0;
  bad.kind = FaultEvent::Kind::kSwitchDown;
  bad.a = 0;
  EXPECT_THROW(m.inject_faults({bad}), std::invalid_argument);
  bad.time = 1.0;
  bad.a = 99;  // out of range
  EXPECT_THROW(m.inject_faults({bad}), std::invalid_argument);
}

TEST(MachineFaults, MidPhaseLinkFailureReroutesAndFinishes) {
  // Triangle topology: the direct s0-s2 cable dies mid-phase; the flow
  // reroutes via s1 and still completes, slower than the healthy run.
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  g.add_switch_edge(0, 2);

  SimParams params;
  Machine healthy(g, params);
  const double t_healthy = healthy.phase({{0, 1, 100u << 20}});

  Machine m(g, params);
  FaultEvent e;
  e.time = t_healthy / 2;  // strike mid-transfer
  e.kind = FaultEvent::Kind::kLinkDown;
  e.a = 0;
  e.b = 2;
  m.inject_faults({e});
  const double t_degraded = m.phase({{0, 1, 100u << 20}});

  EXPECT_GT(t_degraded, t_healthy);
  EXPECT_EQ(m.fault_stats().events_applied, 1u);
  EXPECT_EQ(m.fault_stats().routing_rebuilds, 1u);
  EXPECT_EQ(m.fault_stats().flows_retried, 1u);
  EXPECT_EQ(m.fault_stats().flows_failed, 0u);
  EXPECT_EQ(m.last_phase_stats().retried, 1u);
  EXPECT_EQ(m.last_phase_stats().completed, 1u);
  EXPECT_GT(m.last_phase_stats().retry_added_latency, 0.0);
  EXPECT_FALSE(m.graph().has_switch_edge(0, 2));
}

TEST(MachineFaults, UnroutableFlowFailsAtBoundedTimeout) {
  // Line topology: the only cable into host1's switch dies mid-phase.
  HostSwitchGraph g = line_graph();
  SimParams params;
  params.retry_timeout = 0.5e-3;

  Machine healthy(g, params);
  const double t_healthy = healthy.phase({{0, 1, 100u << 20}});

  Machine m(g, params);
  FaultEvent e;
  e.time = t_healthy / 2;
  e.kind = FaultEvent::Kind::kLinkDown;
  e.a = 1;
  e.b = 2;
  m.inject_faults({e});
  const double t = m.phase({{0, 1, 100u << 20}});

  EXPECT_EQ(m.fault_stats().flows_failed, 1u);
  EXPECT_EQ(m.last_phase_stats().failed, 1u);
  EXPECT_EQ(m.last_phase_stats().completed, 0u);
  // The phase ends when the doomed flow gives up: event time + timeout.
  EXPECT_NEAR(t, t_healthy / 2 + params.retry_timeout, 1e-9);
  EXPECT_LT(t, t_healthy);  // bounded, not hung
}

TEST(MachineFaults, SwitchDownKillsItsRanksButOthersComplete) {
  // Path s0-s1-s2, one host each. s2 dies before the phase: flows to/from
  // rank 2 fail, the rank0<->rank1 flows complete.
  HostSwitchGraph g(3, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.attach_host(2, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);

  SimParams params;
  Machine m(g, params);
  FaultEvent e;
  e.time = 0.0;
  e.kind = FaultEvent::Kind::kSwitchDown;
  e.a = 2;
  m.inject_faults({e});

  EXPECT_TRUE(m.rank_alive(0));
  const double t = m.phase({{0, 1, 1 << 20}, {1, 0, 1 << 20}, {0, 2, 1 << 20}});
  EXPECT_FALSE(m.rank_alive(2));
  EXPECT_EQ(m.last_phase_stats().failed, 1u);
  EXPECT_EQ(m.last_phase_stats().completed, 2u);
  EXPECT_GT(t, 0.0);
  EXPECT_GE(t, params.retry_timeout);  // the dead flow holds until timeout
}

TEST(MachineFaults, AlltoallSurvivesMidRunLinkFailures) {
  // Acceptance scenario: alltoall with mid-run link failures completes
  // without crash/hang and reports degradation.
  Xoshiro256 rng(7);
  const HostSwitchGraph g = random_host_switch_graph(32, 8, 6, rng);

  Machine healthy(g);
  const double t_healthy = healthy.alltoall(1 << 16);

  Machine m(g);
  // Kill two cables of switch 0 partway into the run.
  const auto nbrs = m.graph().neighbors(0);
  ASSERT_GE(nbrs.size(), 2u);
  std::vector<FaultEvent> events;
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLinkDown;
  e.time = t_healthy / 4;
  e.a = 0;
  e.b = nbrs[0];
  events.push_back(e);
  e.time = t_healthy / 3;
  e.b = nbrs[1];
  events.push_back(e);
  m.inject_faults(events);

  const double t = m.alltoall(1 << 16);
  EXPECT_GT(t, 0.0);
  EXPECT_EQ(m.fault_stats().events_applied, 2u);
  EXPECT_GE(t, t_healthy);  // degraded can't beat healthy
  EXPECT_FALSE(m.graph().has_switch_edge(0, nbrs[0]));
  EXPECT_FALSE(m.graph().has_switch_edge(0, nbrs[1]));
}

TEST(MachineFaults, AllreduceSurvivesSwitchFailure) {
  Xoshiro256 rng(13);
  const HostSwitchGraph g = random_host_switch_graph(32, 8, 6, rng);

  Machine healthy(g);
  const double t_healthy = healthy.allreduce(1 << 16);

  Machine m(g);
  FaultEvent e;
  e.time = t_healthy / 2;
  e.kind = FaultEvent::Kind::kSwitchDown;
  e.a = 3;
  m.inject_faults({e});

  // Must terminate (no hang) across the collective's internal phases.
  const double t = m.allreduce(1 << 16);
  EXPECT_GT(t, 0.0);
  EXPECT_EQ(m.fault_stats().events_applied, 1u);
  EXPECT_GE(m.fault_stats().routing_rebuilds, 1u);
  // Ranks on the dead switch are gone; others still report alive.
  std::uint32_t dead = 0;
  for (Rank r = 0; r < m.num_ranks(); ++r)
    if (!m.rank_alive(r)) ++dead;
  EXPECT_EQ(dead, 4u);  // 32 hosts on 8 switches -> 4 per switch
}

TEST(MachineFaults, FaultRunIsDeterministic) {
  Xoshiro256 rng(29);
  const HostSwitchGraph g = random_host_switch_graph(32, 8, 6, rng);
  const auto run = [&g]() {
    Machine m(g);
    FaultEvent e;
    e.time = 1e-5;
    e.kind = FaultEvent::Kind::kSwitchDown;
    e.a = 5;
    m.inject_faults({e});
    return m.alltoall(1 << 14);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(MachineFaults, EventsApplyAcrossMultiplePhases) {
  // An event scheduled past the first phase's end applies in the second.
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  g.add_switch_edge(0, 2);

  Machine probe(g);
  const double t1 = probe.phase({{0, 1, 1 << 20}});

  Machine m(g);
  FaultEvent e;
  e.time = t1 * 2;  // strikes during (or before) a later phase
  e.kind = FaultEvent::Kind::kLinkDown;
  e.a = 0;
  e.b = 2;
  m.inject_faults({e});

  m.phase({{0, 1, 1 << 20}});  // phase 1: healthy
  EXPECT_EQ(m.fault_stats().events_applied, 0u);
  EXPECT_TRUE(m.graph().has_switch_edge(0, 2));

  // Keep running phases until the clock passes the event.
  while (m.now() < t1 * 3) m.phase({{0, 1, 1 << 20}});
  EXPECT_EQ(m.fault_stats().events_applied, 1u);
  EXPECT_FALSE(m.graph().has_switch_edge(0, 2));
}

TEST(MachineRepairs, LinkRepairRestoresDirectRoute) {
  // Triangle: the direct s0-s2 cable dies mid-phase (flow detours via s1),
  // then a kLinkUp repairs it — the next phase routes back over the direct
  // edge and matches the healthy run exactly.
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  g.add_switch_edge(0, 2);

  SimParams params;
  Machine healthy(g, params);
  const double t_healthy = healthy.phase({{0, 1, 100u << 20}});

  Machine m(g, params);
  FaultEvent down;
  down.time = t_healthy / 2;
  down.kind = FaultEvent::Kind::kLinkDown;
  down.a = 0;
  down.b = 2;
  m.inject_faults({down});
  const double t_degraded = m.phase({{0, 1, 100u << 20}});
  EXPECT_GT(t_degraded, t_healthy);
  EXPECT_EQ(m.route_hops(0, 1), 4u);

  FaultEvent up;
  up.time = m.now();  // already due: applies as the next phase starts
  up.kind = FaultEvent::Kind::kLinkUp;
  up.a = 0;
  up.b = 2;
  m.inject_faults({up});
  const double t_repaired = m.phase({{0, 1, 100u << 20}});

  EXPECT_TRUE(m.graph().has_switch_edge(0, 2));
  EXPECT_EQ(m.route_hops(0, 1), 3u);  // rerouted back onto the direct edge
  EXPECT_DOUBLE_EQ(t_repaired, t_healthy);
  EXPECT_EQ(m.fault_stats().links_repaired, 1u);
  EXPECT_EQ(m.fault_stats().flows_retried, 1u);
  EXPECT_EQ(m.fault_stats().flows_failed, 0u);
  EXPECT_EQ(m.last_phase_stats().completed, 1u);
  EXPECT_EQ(m.last_phase_stats().retried, 0u);
}

TEST(MachineRepairs, LinkRepairIsNoOpWhileEndpointDead) {
  // kLinkUp targeting a dead switch must not resurrect the cable; the
  // switch has to be repaired first (see fault.hpp).
  HostSwitchGraph g = line_graph();
  Machine m(g);
  FaultEvent down;
  down.time = 0.0;
  down.kind = FaultEvent::Kind::kSwitchDown;
  down.a = 2;
  FaultEvent up;
  up.time = 0.0;  // same instant: stable order applies it after the down
  up.kind = FaultEvent::Kind::kLinkUp;
  up.a = 1;
  up.b = 2;
  m.inject_faults({down, up});

  m.phase({{0, 1, 1 << 20}});
  EXPECT_EQ(m.fault_stats().events_applied, 2u);
  EXPECT_EQ(m.fault_stats().links_repaired, 0u);
  EXPECT_FALSE(m.graph().has_switch_edge(1, 2));
  EXPECT_FALSE(m.rank_alive(1));
  EXPECT_EQ(m.last_phase_stats().failed, 1u);
}

TEST(MachineRepairs, SwitchRepairReadmitsRanksAndRestoresLinks) {
  // Line: s2 dies (flow to rank 1 fails, rank goes dark); kSwitchUp brings
  // the switch, its recorded s1-s2 cable, and the rank back, and the next
  // phase completes at the healthy rate.
  HostSwitchGraph g = line_graph();
  SimParams params;
  Machine healthy(g, params);
  const double t_healthy = healthy.phase({{0, 1, 1 << 20}});

  Machine m(g, params);
  FaultEvent down;
  down.time = 0.0;
  down.kind = FaultEvent::Kind::kSwitchDown;
  down.a = 2;
  m.inject_faults({down});
  m.phase({{0, 1, 1 << 20}});
  EXPECT_FALSE(m.rank_alive(1));
  EXPECT_EQ(m.last_phase_stats().failed, 1u);

  FaultEvent up;
  up.time = m.now();
  up.kind = FaultEvent::Kind::kSwitchUp;
  up.a = 2;
  m.inject_faults({up});
  const double t_repaired = m.phase({{0, 1, 1 << 20}});

  EXPECT_TRUE(m.rank_alive(1));
  EXPECT_TRUE(m.graph().has_switch_edge(1, 2));
  EXPECT_DOUBLE_EQ(t_repaired, t_healthy);
  EXPECT_EQ(m.fault_stats().switches_repaired, 1u);
  EXPECT_EQ(m.last_phase_stats().completed, 1u);
  EXPECT_EQ(m.last_phase_stats().failed, 0u);
}

TEST(MachineRepairs, SwitchRepairSkipsIndependentlyFailedCable) {
  // The cable 1-2 fails on its own AFTER s2 died (the kLinkDown unrecords
  // it from s2's frozen adjacency), so repairing s2 re-admits the rank but
  // must NOT resurrect that cable — host1 stays unreachable.
  HostSwitchGraph g = line_graph();
  Machine m(g);
  FaultEvent sdown;
  sdown.time = 0.0;
  sdown.kind = FaultEvent::Kind::kSwitchDown;
  sdown.a = 2;
  FaultEvent ldown;
  ldown.time = 0.0;  // strikes the already-removed edge: unrecord only
  ldown.kind = FaultEvent::Kind::kLinkDown;
  ldown.a = 1;
  ldown.b = 2;
  FaultEvent sup;
  sup.time = 0.0;  // same instant: injection order is the apply order
  sup.kind = FaultEvent::Kind::kSwitchUp;
  sup.a = 2;
  m.inject_faults({sdown, ldown, sup});

  m.phase({{0, 1, 1 << 20}});
  EXPECT_TRUE(m.rank_alive(1));  // rank re-admitted...
  EXPECT_FALSE(m.graph().has_switch_edge(1, 2));  // ...but the cable is gone
  EXPECT_EQ(m.fault_stats().switches_repaired, 1u);
  EXPECT_EQ(m.fault_stats().links_repaired, 0u);
  EXPECT_EQ(m.last_phase_stats().failed, 1u);  // no route to host1
}

TEST(MachineRepairs, RepairEventsAreIdempotent) {
  // Repairing an intact link or switch changes nothing: the healthy run's
  // timing is preserved and no repair is counted.
  HostSwitchGraph g = line_graph();
  Machine healthy(g);
  const double t_healthy = healthy.phase({{0, 1, 1 << 20}});

  Machine m(g);
  FaultEvent lup;
  lup.time = 0.0;
  lup.kind = FaultEvent::Kind::kLinkUp;
  lup.a = 0;
  lup.b = 1;
  FaultEvent sup;
  sup.time = 0.0;
  sup.kind = FaultEvent::Kind::kSwitchUp;
  sup.a = 1;
  m.inject_faults({lup, sup});
  const double t = m.phase({{0, 1, 1 << 20}});

  EXPECT_DOUBLE_EQ(t, t_healthy);
  EXPECT_EQ(m.fault_stats().events_applied, 2u);
  EXPECT_EQ(m.fault_stats().links_repaired, 0u);
  EXPECT_EQ(m.fault_stats().switches_repaired, 0u);
  EXPECT_EQ(m.last_phase_stats().failed, 0u);
}

}  // namespace
}  // namespace orp

// Tests for the packet-level simulator, including agreement with the
// fluid engine on large flows (the validation behind the SimGrid
// substitution).
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "search/random_init.hpp"
#include "sim/packet.hpp"
#include "sim/traffic.hpp"
#include "topo/fattree.hpp"

namespace orp {
namespace {

PacketSimParams packet_params(std::uint64_t packet_bytes = 4096) {
  PacketSimParams p;
  p.base.link_bandwidth = 1e9;
  p.base.hop_latency = 1e-6;
  p.base.mpi_overhead = 1e-6;
  p.packet_bytes = packet_bytes;
  return p;
}

HostSwitchGraph pair_graph() {
  HostSwitchGraph g(2, 1, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  return g;
}

HostSwitchGraph quad_graph() {
  HostSwitchGraph g(4, 1, 8);
  for (HostId h = 0; h < 4; ++h) g.attach_host(h, 0);
  return g;
}

TEST(PacketSim, SinglePacketTiming) {
  PacketMachine m(pair_graph(), packet_params());
  // 1000 bytes over 2 links: overhead + 2 * (tx + latency).
  const auto result = m.phase({{0, 1, 1000}});
  EXPECT_EQ(result.packets, 1u);
  const double tx = 1000.0 / 1e9;
  EXPECT_NEAR(result.elapsed, 1e-6 + 2 * (tx + 1e-6), 1e-12);
}

TEST(PacketSim, SegmentsMessagesIntoMtuPackets) {
  PacketMachine m(pair_graph(), packet_params(1000));
  const auto result = m.phase({{0, 1, 2500}});
  EXPECT_EQ(result.packets, 3u);  // 1000 + 1000 + 500
}

TEST(PacketSim, PipeliningBeatsStoreAndForwardOfWholeMessage) {
  // With many packets, transmission overlaps across hops: elapsed is far
  // below hops * message_tx for a multi-hop path.
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  PacketMachine m(g, packet_params());
  const std::uint64_t bytes = 10000000;
  const auto result = m.phase({{0, 1, bytes}});
  const double one_hop_tx = static_cast<double>(bytes) / 1e9;
  EXPECT_GT(result.elapsed, one_hop_tx);
  EXPECT_LT(result.elapsed, 1.5 * one_hop_tx);  // 4 hops un-pipelined would be 4x
}

TEST(PacketSim, SelfAndEmptyMessagesAreFree) {
  PacketMachine m(pair_graph(), packet_params());
  const auto result = m.phase({{0, 0, 1000}, {0, 1, 0}});
  EXPECT_EQ(result.packets, 0u);
  EXPECT_DOUBLE_EQ(result.elapsed, 0.0);
}

TEST(PacketSim, SharedLinkSerializes) {
  // Two 1 MB messages into the same destination: its down-link serializes
  // them -> ~2x the single-message time.
  PacketMachine m(quad_graph(), packet_params());
  const auto one = m.phase({{0, 1, 1000000}});
  const auto two = m.phase({{0, 1, 1000000}, {2, 1, 1000000}});
  EXPECT_NEAR(two.elapsed, 2.0 * one.elapsed, 0.1 * one.elapsed);
}

TEST(PacketSim, AgreesWithFluidModelOnLargeFlows) {
  // The headline validation: on contended random topologies with large
  // messages, packet-level elapsed time matches the fluid engine within a
  // few percent.
  Xoshiro256 rng(3);
  const auto g = random_host_switch_graph(32, 8, 8, rng);
  SimParams fluid_params;
  fluid_params.link_bandwidth = 1e9;
  fluid_params.hop_latency = 1e-6;
  fluid_params.mpi_overhead = 1e-6;
  Machine fluid(g, fluid_params);
  PacketSimParams pkt_params;
  pkt_params.base = fluid_params;
  PacketMachine packets(g, pkt_params);

  Xoshiro256 traffic_rng(4);
  for (const TrafficPattern pattern :
       {TrafficPattern::kPermutation, TrafficPattern::kUniformRandom,
        TrafficPattern::kNeighborRing}) {
    Xoshiro256 a = traffic_rng.split();
    Xoshiro256 b = a;  // identical pattern for both engines
    const auto messages = make_traffic(pattern, 32, 4000000, a);
    const auto msgs_copy = make_traffic(pattern, 32, 4000000, b);
    ASSERT_EQ(messages.size(), msgs_copy.size());
    const double fluid_time = fluid.phase(messages);
    const auto packet_result = packets.phase(messages);
    EXPECT_NEAR(packet_result.elapsed, fluid_time, 0.12 * fluid_time)
        << traffic_pattern_name(pattern);
  }
}

TEST(PacketSim, FatTreeAlltoallAgreement) {
  const auto g = build_fattree(FatTreeParams{4}, 16);
  SimParams fluid_params;
  fluid_params.link_bandwidth = 1e9;
  fluid_params.hop_latency = 1e-6;
  fluid_params.mpi_overhead = 1e-6;
  Machine fluid(g, fluid_params);
  PacketSimParams pkt_params;
  pkt_params.base = fluid_params;
  PacketMachine packets(g, pkt_params);

  // One pairwise-exchange round: rank r <-> r ^ 5.
  std::vector<Message> round;
  for (Rank r = 0; r < 16; ++r) round.push_back({r, r ^ 5u, 2000000});
  const double fluid_time = fluid.phase(round);
  const auto packet_result = packets.phase(round);
  EXPECT_NEAR(packet_result.elapsed, fluid_time, 0.15 * fluid_time);
}

TEST(PacketSim, LatencyStatsAreOrdered) {
  PacketMachine m(quad_graph(), packet_params());
  const auto result = m.phase({{0, 1, 100000}, {2, 3, 1000}});
  EXPECT_GT(result.mean_packet_latency, 0.0);
  EXPECT_GE(result.max_packet_latency, result.mean_packet_latency);
}

}  // namespace
}  // namespace orp

// Tests for host-switch graph serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "common/prng.hpp"
#include "hsg/io.hpp"
#include "search/random_init.hpp"

namespace orp {
namespace {

TEST(HsgIo, RoundTripsSmallGraph) {
  HostSwitchGraph g(3, 2, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.attach_host(2, 1);
  g.add_switch_edge(0, 1);

  std::stringstream buffer;
  write_hsg(buffer, g);
  const auto parsed = read_hsg(buffer);
  parsed.check_invariants();
  EXPECT_TRUE(parsed == g);
}

TEST(HsgIo, RoundTripsRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    Xoshiro256 rng(seed);
    const auto g = random_host_switch_graph(64, 16, 8, rng);
    std::stringstream buffer;
    write_hsg(buffer, g);
    const auto parsed = read_hsg(buffer);
    parsed.check_invariants();
    EXPECT_TRUE(parsed == g) << "seed=" << seed;
  }
}

TEST(HsgIo, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "hsg 2 2 4\n"
      "\n"
      "H 0 0  # trailing comment\n"
      "H 1 1\n"
      "S 0 1\n");
  const auto g = read_hsg(in);
  EXPECT_EQ(g.num_hosts(), 2u);
  EXPECT_TRUE(g.has_switch_edge(0, 1));
}

TEST(HsgIo, RejectsMissingHeader) {
  std::istringstream in("H 0 0\n");
  EXPECT_THROW(read_hsg(in), std::invalid_argument);
}

TEST(HsgIo, RejectsDuplicateHeader) {
  std::istringstream in("hsg 2 2 4\nhsg 2 2 4\n");
  EXPECT_THROW(read_hsg(in), std::invalid_argument);
}

TEST(HsgIo, RejectsOutOfRangeIds) {
  std::istringstream in("hsg 2 2 4\nH 5 0\n");
  EXPECT_THROW(read_hsg(in), std::invalid_argument);
  std::istringstream in2("hsg 2 2 4\nS 0 9\n");
  EXPECT_THROW(read_hsg(in2), std::invalid_argument);
}

TEST(HsgIo, RejectsRadixViolation) {
  std::istringstream in(
      "hsg 4 2 3\n"
      "H 0 0\nH 1 0\nH 2 0\nH 3 0\n");  // 4 hosts on a radix-3 switch
  EXPECT_THROW(read_hsg(in), std::invalid_argument);
}

TEST(HsgIo, RejectsDuplicateEdgeAndSelfLoop) {
  std::istringstream in("hsg 1 2 4\nS 0 1\nS 1 0\n");
  EXPECT_THROW(read_hsg(in), std::invalid_argument);
  std::istringstream in2("hsg 1 2 4\nS 1 1\n");
  EXPECT_THROW(read_hsg(in2), std::invalid_argument);
}

TEST(HsgIo, RejectsUnknownTag) {
  std::istringstream in("hsg 1 1 4\nX 0 0\n");
  EXPECT_THROW(read_hsg(in), std::invalid_argument);
}

// Every parse error must carry the 1-based line number of the offending
// line so malformed files are debuggable.
void expect_fail_at_line(const std::string& text, std::size_t line) {
  std::istringstream in(text);
  try {
    read_hsg(in);
    FAIL() << "expected parse failure for: " << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line " + std::to_string(line)),
              std::string::npos)
        << "wrong line in: " << e.what();
  }
}

TEST(HsgIo, ErrorsReportTheOffendingLine) {
  expect_fail_at_line("hsg 2 2 4\nH 0 0\nH 0 1\n", 3);   // duplicate attach
  expect_fail_at_line("hsg 2 2 4\n\n# c\nS 0 0\n", 4);   // self-loop
  expect_fail_at_line("hsg 2 2\n", 1);                   // short header
}

TEST(HsgIo, RejectsTrailingJunk) {
  std::istringstream in("hsg 2 2 4 junk\n");
  EXPECT_THROW(read_hsg(in), std::invalid_argument);
  std::istringstream in2("hsg 2 2 4\nH 0 0 7\n");
  EXPECT_THROW(read_hsg(in2), std::invalid_argument);
  std::istringstream in3("hsg 2 2 4\nS 0 1 extra\n");
  EXPECT_THROW(read_hsg(in3), std::invalid_argument);
}

TEST(HsgIo, RejectsNegativeIds) {
  // operator>> into unsigned would wrap -1 to 4294967295; the parser must
  // reject the sign outright instead of reporting a misleading range error.
  std::istringstream in("hsg 2 2 4\nH -1 0\n");
  try {
    read_hsg(in);
    FAIL() << "negative id accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("non-negative"), std::string::npos)
        << e.what();
  }
  std::istringstream in2("hsg -2 2 4\n");
  EXPECT_THROW(read_hsg(in2), std::invalid_argument);
}

TEST(HsgIo, RejectsNonNumericAndOverflowFields) {
  std::istringstream in("hsg 2 2 4\nH zero 0\n");
  EXPECT_THROW(read_hsg(in), std::invalid_argument);
  std::istringstream in2("hsg 2 2 4\nH 1x 0\n");  // partial token
  EXPECT_THROW(read_hsg(in2), std::invalid_argument);
  std::istringstream in3("hsg 2 2 4\nS 99999999999 0\n");  // > uint32
  EXPECT_THROW(read_hsg(in3), std::invalid_argument);
}

TEST(HsgIo, WrapsInfeasibleHeaderWithLineNumber) {
  // (n, m, r) the graph constructor itself rejects must surface as a parse
  // error at line 1, not an unlocated constructor exception.
  expect_fail_at_line("hsg 2 2 0\n", 1);
}

TEST(HsgIo, AcceptsWindowsLineEndings) {
  std::istringstream in("hsg 2 2 4\r\nH 0 0\r\nH 1 1\r\nS 0 1\r\n");
  const auto g = read_hsg(in);
  EXPECT_EQ(g.num_hosts(), 2u);
  EXPECT_TRUE(g.has_switch_edge(0, 1));
}

TEST(HsgIo, EdgelistRoundTripsAndRejectsGarbage) {
  // Ring on 4 vertices.
  std::istringstream in("0 1\n1 2\n2 3\n0 3\n");
  const auto g = read_edgelist(in, 4, 3);
  EXPECT_TRUE(g.has_switch_edge(0, 1));
  EXPECT_TRUE(g.has_switch_edge(0, 3));

  // A non-numeric line must be an error, not silently skipped.
  std::istringstream bad("0 1\nnot an edge\n");
  EXPECT_THROW(read_edgelist(bad, 4, 3), std::invalid_argument);
  std::istringstream junk("0 1 2\n");
  EXPECT_THROW(read_edgelist(junk, 4, 3), std::invalid_argument);
  std::istringstream neg("0 -1\n");
  EXPECT_THROW(read_edgelist(neg, 4, 3), std::invalid_argument);
  std::istringstream lonely("0\n");
  EXPECT_THROW(read_edgelist(lonely, 4, 3), std::invalid_argument);
}

TEST(HsgIo, DotContainsAllVertices) {
  HostSwitchGraph g(2, 2, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.add_switch_edge(0, 1);
  std::ostringstream os;
  write_dot(os, g);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("h0 -- s0"), std::string::npos);
  EXPECT_NE(dot.find("h1 -- s1"), std::string::npos);
  EXPECT_NE(dot.find("s0 -- s1"), std::string::npos);
}

}  // namespace
}  // namespace orp

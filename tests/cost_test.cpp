// Tests for the floorplan and the power/cost model.
#include <gtest/gtest.h>

#include "cost/evaluate.hpp"
#include "search/clique.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

TEST(Floorplan, NearSquareGrid) {
  const CostModelParams params;
  const Floorplan plan(243, params);
  EXPECT_EQ(plan.columns(), 16u);
  EXPECT_EQ(plan.rows(), 16u);
  const Floorplan tiny(1, params);
  EXPECT_EQ(tiny.columns(), 1u);
  EXPECT_EQ(tiny.rows(), 1u);
}

TEST(Floorplan, ManhattanLengths) {
  CostModelParams params;
  params.cable_slack_cm = 0;
  const Floorplan plan(16, params);  // 4x4
  // Cabinets 0 and 1: one column apart.
  EXPECT_DOUBLE_EQ(plan.cable_length_cm(0, 1), 60.0);
  // Cabinets 0 and 4: one row apart.
  EXPECT_DOUBLE_EQ(plan.cable_length_cm(0, 4), 210.0);
  // Cabinets 0 and 5: diagonal.
  EXPECT_DOUBLE_EQ(plan.cable_length_cm(0, 5), 270.0);
  // Same cabinet: intra-cabinet length.
  EXPECT_DOUBLE_EQ(plan.cable_length_cm(3, 3), params.intra_cabinet_cable_cm);
  // Symmetry.
  EXPECT_DOUBLE_EQ(plan.cable_length_cm(2, 14), plan.cable_length_cm(14, 2));
}

TEST(CostModel, SingleSwitchAllElectrical) {
  const auto g = build_clique_graph(8, 24);  // one switch, 8 hosts
  const auto report = evaluate_network_cost(g);
  EXPECT_EQ(report.switches, 1u);
  EXPECT_EQ(report.electrical_cables, 8u);  // host cables only
  EXPECT_EQ(report.optical_cables, 0u);
  EXPECT_GT(report.switch_cost_usd, 0.0);
  EXPECT_GT(report.total_power_w(), 0.0);
}

TEST(CostModel, CableCountMatchesEdges) {
  const auto g = build_fattree(FatTreeParams{8}, 128);
  const auto report = evaluate_network_cost(g);
  EXPECT_EQ(report.electrical_cables + report.optical_cables, g.num_edges());
}

TEST(CostModel, AdjacentCabinetsStayElectrical) {
  // Two adjacent cabinets with default slack 100cm -> 160cm > 100cm limit:
  // inter-cabinet cables are optical under defaults; with zero slack the
  // 60cm neighbor cable stays electrical.
  HostSwitchGraph g(2, 2, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.add_switch_edge(0, 1);
  CostModelParams params;
  params.cable_slack_cm = 0;
  const auto report = evaluate_network_cost(g, params);
  EXPECT_EQ(report.optical_cables, 0u);
  EXPECT_EQ(report.electrical_cables, 3u);
}

TEST(CostModel, LongCablesGoOptical) {
  // A 5-D torus's wraparound links span the room.
  const auto g = build_torus(TorusParams{5, 3, 15}, 1024);
  const auto report = evaluate_network_cost(g);
  EXPECT_GT(report.optical_cables, 0u);
  EXPECT_GT(report.electrical_cables, 1023u);  // at least the host cables
  EXPECT_GT(report.optical_cable_cost_usd, report.electrical_cable_cost_usd / 100);
}

TEST(CostModel, SwitchCostDominates) {
  // §6.3.1: "the switch cost is dominant" — check the model preserves it.
  const auto g = build_torus(TorusParams{5, 3, 15}, 1024);
  const auto report = evaluate_network_cost(g);
  EXPECT_GT(report.switch_cost_usd, report.cable_cost_usd());
}

TEST(CostModel, MoreSwitchesCostMore) {
  const auto small = build_fattree(FatTreeParams{8}, 128);   // 80 switches
  const auto large = build_fattree(FatTreeParams{16}, 128);  // 320 switches
  const auto report_small = evaluate_network_cost(small);
  const auto report_large = evaluate_network_cost(large);
  EXPECT_LT(report_small.switch_cost_usd, report_large.switch_cost_usd);
  EXPECT_LT(report_small.total_power_w(), report_large.total_power_w());
}

TEST(CostModel, ReportTotalsAreConsistent) {
  const auto g = build_fattree(FatTreeParams{8}, 128);
  const auto report = evaluate_network_cost(g);
  EXPECT_DOUBLE_EQ(report.total_cost_usd(),
                   report.switch_cost_usd + report.electrical_cable_cost_usd +
                       report.optical_cable_cost_usd);
  EXPECT_DOUBLE_EQ(report.total_power_w(),
                   report.switch_power_w + report.cable_power_w);
  EXPECT_GT(report.total_cable_m, 0.0);
}

}  // namespace
}  // namespace orp

// Tests for the HostSwitchGraph data structure: port budgets, attachment,
// edge bookkeeping, invariants.
#include <gtest/gtest.h>

#include "hsg/host_switch_graph.hpp"

namespace orp {
namespace {

TEST(HostSwitchGraph, StartsDetachedAndEdgeless) {
  HostSwitchGraph g(4, 3, 6);
  EXPECT_EQ(g.num_hosts(), 4u);
  EXPECT_EQ(g.num_switches(), 3u);
  EXPECT_EQ(g.radix(), 6u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.fully_attached());
  for (HostId h = 0; h < 4; ++h) EXPECT_FALSE(g.host_attached(h));
  for (SwitchId s = 0; s < 3; ++s) {
    EXPECT_EQ(g.hosts_on(s), 0u);
    EXPECT_EQ(g.switch_degree(s), 0u);
    EXPECT_EQ(g.free_ports(s), 6u);
  }
  g.check_invariants();
}

TEST(HostSwitchGraph, AttachDetachMoveBookkeeping) {
  HostSwitchGraph g(3, 2, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  g.attach_host(2, 1);
  EXPECT_TRUE(g.fully_attached());
  EXPECT_EQ(g.hosts_on(0), 2u);
  EXPECT_EQ(g.hosts_on(1), 1u);
  EXPECT_EQ(g.host_switch(1), 0u);

  g.move_host(1, 1);
  EXPECT_EQ(g.hosts_on(0), 1u);
  EXPECT_EQ(g.hosts_on(1), 2u);

  g.detach_host(2);
  EXPECT_FALSE(g.fully_attached());
  EXPECT_EQ(g.hosts_on(1), 1u);
  g.check_invariants();
}

TEST(HostSwitchGraph, RejectsDoubleAttach) {
  HostSwitchGraph g(2, 2, 4);
  g.attach_host(0, 0);
  EXPECT_THROW(g.attach_host(0, 1), std::invalid_argument);
}

TEST(HostSwitchGraph, EnforcesRadixOnHosts) {
  HostSwitchGraph g(5, 2, 3);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  g.attach_host(2, 0);
  EXPECT_EQ(g.free_ports(0), 0u);
  EXPECT_THROW(g.attach_host(3, 0), std::invalid_argument);
}

TEST(HostSwitchGraph, EnforcesRadixOnEdges) {
  HostSwitchGraph g(2, 4, 3);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  g.add_switch_edge(0, 1);
  EXPECT_THROW(g.add_switch_edge(0, 2), std::invalid_argument);
}

TEST(HostSwitchGraph, RejectsSelfLoopAndMultiEdge) {
  HostSwitchGraph g(1, 3, 4);
  EXPECT_THROW(g.add_switch_edge(1, 1), std::invalid_argument);
  g.add_switch_edge(0, 1);
  EXPECT_THROW(g.add_switch_edge(1, 0), std::invalid_argument);
}

TEST(HostSwitchGraph, EdgeAddRemoveSymmetric) {
  HostSwitchGraph g(1, 4, 4);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  EXPECT_TRUE(g.has_switch_edge(0, 1));
  EXPECT_TRUE(g.has_switch_edge(1, 0));
  EXPECT_EQ(g.num_switch_edges(), 2u);
  g.remove_switch_edge(1, 0);
  EXPECT_FALSE(g.has_switch_edge(0, 1));
  EXPECT_EQ(g.num_switch_edges(), 1u);
  EXPECT_THROW(g.remove_switch_edge(0, 1), std::invalid_argument);
  g.check_invariants();
}

TEST(HostSwitchGraph, ConnectivityDetection) {
  HostSwitchGraph g(1, 4, 4);
  EXPECT_FALSE(g.switches_connected());
  g.add_switch_edge(0, 1);
  g.add_switch_edge(2, 3);
  EXPECT_FALSE(g.switches_connected());
  g.add_switch_edge(1, 2);
  EXPECT_TRUE(g.switches_connected());
}

TEST(HostSwitchGraph, SingleSwitchIsConnected) {
  HostSwitchGraph g(2, 1, 4);
  EXPECT_TRUE(g.switches_connected());
}

TEST(HostSwitchGraph, HostDistributionHistogram) {
  HostSwitchGraph g(5, 3, 8);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  g.attach_host(2, 0);
  g.attach_host(3, 1);
  g.attach_host(4, 1);
  const auto dist = g.host_distribution();
  // switch 2 has 0 hosts, switch 1 has 2, switch 0 has 3.
  ASSERT_EQ(dist.size(), 4u);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[1], 0u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 1u);
}

TEST(HostSwitchGraph, HostsBySwitchListsAttachment) {
  HostSwitchGraph g(4, 2, 6);
  g.attach_host(0, 1);
  g.attach_host(1, 0);
  g.attach_host(2, 1);
  g.attach_host(3, 1);
  const auto by_switch = g.hosts_by_switch();
  EXPECT_EQ(by_switch[0], (std::vector<HostId>{1}));
  EXPECT_EQ(by_switch[1], (std::vector<HostId>{0, 2, 3}));
}

TEST(HostSwitchGraph, EqualityIgnoresAdjacencyOrder) {
  HostSwitchGraph a(2, 3, 4), b(2, 3, 4);
  a.attach_host(0, 0);
  a.attach_host(1, 2);
  b.attach_host(0, 0);
  b.attach_host(1, 2);
  a.add_switch_edge(0, 1);
  a.add_switch_edge(0, 2);
  b.add_switch_edge(0, 2);
  b.add_switch_edge(0, 1);
  EXPECT_TRUE(a == b);
  b.remove_switch_edge(0, 1);
  EXPECT_FALSE(a == b);
}

TEST(HostSwitchGraph, RejectsDegenerateParameters) {
  EXPECT_THROW(HostSwitchGraph(0, 1, 4), std::invalid_argument);
  EXPECT_THROW(HostSwitchGraph(1, 0, 4), std::invalid_argument);
  EXPECT_THROW(HostSwitchGraph(1, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace orp

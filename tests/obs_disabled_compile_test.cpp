// Compile test: with ORP_OBS_DISABLED the observability types must be
// empty inline stubs, so instrumented hot loops carry zero state and the
// optimizer deletes them. This binary is compiled with the macro defined
// (see tests/CMakeLists.txt) and does NOT link orp_obs — everything must
// resolve header-only.

#ifndef ORP_OBS_DISABLED
#error "this test must be compiled with ORP_OBS_DISABLED"
#endif

#include <cstdio>
#include <type_traits>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace orp::obs {

// Span and ScopedTimer are placed on the stack of every instrumented scope;
// disabled they must hold no members at all.
static_assert(std::is_empty_v<Span>, "disabled Span must be zero-size");
static_assert(std::is_empty_v<ScopedTimer>,
              "disabled ScopedTimer must be zero-size");
static_assert(std::is_empty_v<Counter>, "disabled Counter must be zero-size");
static_assert(std::is_empty_v<Gauge>, "disabled Gauge must be zero-size");
static_assert(std::is_empty_v<Histogram>,
              "disabled Histogram must be zero-size");

}  // namespace orp::obs

int main() {
  using namespace orp::obs;

  // Exercise the full stub surface: all calls must compile and do nothing.
  Counter& counter = Registry::global().counter("disabled.counter");
  counter.add(5);
  counter.inc();
  if (counter.value() != 0) return 1;

  Gauge& gauge = Registry::global().gauge("disabled.gauge");
  gauge.set(3);
  gauge.add(2);
  gauge.sub(1);
  if (gauge.value() != 0 || gauge.max() != 0) return 1;

  Histogram& histogram = Registry::global().histogram("disabled.histogram");
  histogram.record(42);
  { ScopedTimer timer(histogram); }
  if (histogram.sample().count != 0) return 1;
  if (histogram.sample().quantile_interp(0.5) != 0.0) return 1;

  {
    Span span("disabled.span", "test");
    span.arg("x", 1.0);
    span.arg("n", static_cast<std::uint64_t>(7));
    if (span.active()) return 1;
  }

  if (!Registry::global().snapshot().empty()) return 1;

  // Flow-event stubs: no span context, no ids, no emission.
  if (in_span()) return 1;
  const std::uint64_t flow = flow_begin("disabled.flow", "test");
  if (flow != 0) return 1;
  flow_end(flow, "disabled.flow", "test");

  // Snapshot-sampler stubs: never start, never report running.
  if (snapshot_interval_from_env() != 0) return 1;
  if (start_snapshot_sampler(kDefaultSnapshotMs)) return 1;
  stop_snapshot_sampler();
  if (snapshot_sampler_running()) return 1;

  // Run-ledger stubs: disabled means no path, no record, no file I/O.
  if (!ledger_path().empty()) return 1;
  ledger_capture_argv(0, nullptr);
  ledger_note("key", "value");
  ledger_note("pi", 3.14);
  ledger_note("n", static_cast<std::int64_t>(256));
  ledger_artifact("never/written.jsonl");
  if (append_run_ledger()) return 1;
  if (ledger_append_line("never/written.jsonl", "{}")) return 1;

  std::puts("ORP_OBS_DISABLED stubs OK");
  return 0;
}

// Tests for shortest-path routing: minimality, determinism, link ids.
#include <gtest/gtest.h>

#include <set>

#include "common/prng.hpp"
#include "hsg/metrics.hpp"
#include "search/random_init.hpp"
#include "sim/routing.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

HostSwitchGraph line_graph() {
  // host0 - s0 - s1 - s2 - host1
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  return g;
}

TEST(Routing, PathAlongALine) {
  const auto g = line_graph();
  const RoutingTable routes(g);
  std::vector<LinkId> path;
  const auto hops = routes.append_host_path(0, 1, path);
  EXPECT_EQ(hops, 4u);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], routes.host_uplink(0));
  EXPECT_EQ(path[1], routes.switch_link(0, 1));
  EXPECT_EQ(path[2], routes.switch_link(1, 2));
  EXPECT_EQ(path[3], routes.host_downlink(1));
}

TEST(Routing, LinkIdsAreUniqueAndDirected) {
  const auto g = line_graph();
  const RoutingTable routes(g);
  // 2 hosts * 2 + 2 edges * 2 directions = 8 links.
  EXPECT_EQ(routes.num_links(), 8u);
  std::set<LinkId> ids{routes.host_uplink(0), routes.host_downlink(0),
                       routes.host_uplink(1), routes.host_downlink(1),
                       routes.switch_link(0, 1), routes.switch_link(1, 0),
                       routes.switch_link(1, 2), routes.switch_link(2, 1)};
  EXPECT_EQ(ids.size(), 8u);
}

TEST(Routing, HopCountMatchesGraphDistanceEverywhere) {
  Xoshiro256 rng(3);
  const auto g = random_host_switch_graph(60, 15, 8, rng);
  const RoutingTable routes(g);
  // Route length must equal l(h_i, h_j) = d(s_i, s_j) + 2 for every pair.
  for (HostId a = 0; a < g.num_hosts(); ++a) {
    for (HostId b = 0; b < g.num_hosts(); ++b) {
      if (a == b) continue;
      std::vector<LinkId> path;
      const auto hops = routes.append_host_path(a, b, path);
      EXPECT_EQ(hops,
                routes.switch_distance(g.host_switch(a), g.host_switch(b)) + 2);
    }
  }
}

TEST(Routing, SameSwitchPairIsTwoHops) {
  HostSwitchGraph g(2, 1, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  const RoutingTable routes(g);
  std::vector<LinkId> path;
  EXPECT_EQ(routes.append_host_path(0, 1, path), 2u);
}

TEST(Routing, DeterministicTieBreak) {
  // Square of switches: two shortest paths from s0 to s3; the lowest-id
  // next hop (s1) must win.
  HostSwitchGraph g(2, 4, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 3);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(0, 2);
  g.add_switch_edge(1, 3);
  g.add_switch_edge(2, 3);
  const RoutingTable routes(g);
  std::vector<LinkId> path;
  routes.append_host_path(0, 1, path);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[1], routes.switch_link(0, 1));
  EXPECT_EQ(path[2], routes.switch_link(1, 3));
}

TEST(Routing, FatTreeDistances) {
  const auto g = build_fattree(FatTreeParams{4}, 16);
  const RoutingTable routes(g);
  std::vector<LinkId> path;
  // Hosts 0 and 1 share edge switch 0 (round-robin: host h -> edge h%8).
  // Instead derive pairs from the graph to be robust to attachment order.
  HostId same_a = 0, same_b = 0, cross_a = 0, cross_b = 0;
  for (HostId a = 0; a < 16 && (same_a == same_b || cross_a == cross_b); ++a) {
    for (HostId b = a + 1; b < 16; ++b) {
      if (g.host_switch(a) == g.host_switch(b)) {
        same_a = a;
        same_b = b;
      } else if (g.host_switch(a) / 2 != g.host_switch(b) / 2) {
        cross_a = a;
        cross_b = b;  // different pods
      }
    }
  }
  path.clear();
  EXPECT_EQ(routes.append_host_path(same_a, same_b, path), 2u);
  path.clear();
  EXPECT_EQ(routes.append_host_path(cross_a, cross_b, path), 6u);
}

TEST(Routing, TorusUsesMinimalRoutes) {
  const auto g = build_torus(TorusParams{2, 5, 8}, 25);
  const RoutingTable routes(g);
  const auto metrics = compute_switch_metrics(g);
  std::uint32_t max_dist = 0;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t = 0; t < g.num_switches(); ++t) {
      if (s != t) max_dist = std::max(max_dist, routes.switch_distance(s, t));
    }
  }
  EXPECT_EQ(max_dist, metrics.diameter);
}

TEST(Routing, RejectsDetachedHosts) {
  HostSwitchGraph g(2, 1, 4);
  g.attach_host(0, 0);
  EXPECT_THROW(RoutingTable{g}, std::invalid_argument);
}

}  // namespace
}  // namespace orp

// Tests for structural analysis: unused/redundant switches, pruning,
// degree distribution, path multiplicity.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "hsg/analysis.hpp"
#include "hsg/metrics.hpp"
#include "search/random_init.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

// h0 - s0 - s1 - h1, with s2 dangling off s1 (redundant) and s3 between
// s0 and s1 forming an alternative longer path (also redundant).
HostSwitchGraph graph_with_redundancy() {
  HostSwitchGraph g(2, 4, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.add_switch_edge(0, 1);   // shortest path s0-s1
  g.add_switch_edge(1, 2);   // dangling
  g.add_switch_edge(0, 3);   // detour s0-s3-s1
  g.add_switch_edge(3, 1);
  return g;
}

TEST(Analysis, UnusedSwitchesListsHostlessOnly) {
  const auto g = graph_with_redundancy();
  EXPECT_EQ(unused_switches(g), (std::vector<SwitchId>{2, 3}));
}

TEST(Analysis, RedundantSwitchDetection) {
  const auto g = graph_with_redundancy();
  // s2 (dangling) and s3 (detour) are on no shortest host path; s0/s1
  // carry hosts.
  EXPECT_EQ(redundant_switches(g), (std::vector<SwitchId>{2, 3}));
}

TEST(Analysis, TransitSwitchOnShortestPathIsNotRedundant) {
  // h0 - s0 - s1 - s2 - h1: s1 has no hosts but relays the only path.
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  EXPECT_TRUE(redundant_switches(g).empty());
}

TEST(Analysis, FatTreeHasNoRedundantSwitches) {
  const auto g = build_fattree(FatTreeParams{4}, 16);
  EXPECT_TRUE(redundant_switches(g).empty());
}

TEST(Analysis, RemoveSwitchesRenumbersAndPreservesPaths) {
  const auto g = graph_with_redundancy();
  const auto pruned = remove_switches(g, redundant_switches(g));
  pruned.check_invariants();
  EXPECT_EQ(pruned.num_switches(), 2u);
  EXPECT_TRUE(pruned.has_switch_edge(0, 1));
  // Host metrics unchanged by removing redundant switches.
  const auto before = compute_host_metrics(g);
  const auto after = compute_host_metrics(pruned);
  EXPECT_EQ(before.total_length, after.total_length);
  EXPECT_EQ(before.diameter, after.diameter);
}

TEST(Analysis, RemoveSwitchesRejectsHostBearingVictim) {
  const auto g = graph_with_redundancy();
  EXPECT_THROW(remove_switches(g, {0}), std::invalid_argument);
}

TEST(Analysis, PruningRandomGraphsNeverChangesHostMetrics) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Xoshiro256 rng(seed);
    const auto g = random_host_switch_graph(40, 30, 5, rng);
    const auto victims = redundant_switches(g);
    if (victims.empty()) continue;
    const auto pruned = remove_switches(g, victims);
    EXPECT_EQ(compute_host_metrics(g).total_length,
              compute_host_metrics(pruned).total_length)
        << "seed=" << seed;
  }
}

TEST(Analysis, DegreeDistributionSumsToSwitchCount) {
  const auto g = build_torus(TorusParams{3, 3, 8}, 27);
  const auto dist = switch_degree_distribution(g);
  std::uint32_t total = 0;
  for (std::uint32_t count : dist) total += count;
  EXPECT_EQ(total, g.num_switches());
  // 3-D torus: all switches have degree 6.
  ASSERT_EQ(dist.size(), 7u);
  EXPECT_EQ(dist[6], 27u);
}

TEST(Analysis, PathMultiplicityOnSquare) {
  // Hosts on opposite corners of a 4-cycle: two shortest paths.
  HostSwitchGraph g(2, 4, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  g.add_switch_edge(2, 3);
  g.add_switch_edge(3, 0);
  EXPECT_DOUBLE_EQ(average_shortest_path_multiplicity(g), 2.0);
}

TEST(Analysis, PathMultiplicityOnTreeIsOne) {
  HostSwitchGraph g(3, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.attach_host(2, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  EXPECT_DOUBLE_EQ(average_shortest_path_multiplicity(g), 1.0);
}

TEST(Analysis, FatTreeHasHighPathDiversity) {
  const auto fattree = build_fattree(FatTreeParams{4}, 16);
  // Cross-pod routes have (K/2)^2 = 4 equal-cost choices.
  EXPECT_GT(average_shortest_path_multiplicity(fattree), 1.5);
}

}  // namespace
}  // namespace orp

// Tests for the simulated annealer: improvement over random starts,
// structural invariants of the result, determinism, mode behaviour.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "hsg/bounds.hpp"
#include "search/annealer.hpp"
#include "search/parallel.hpp"
#include "search/random_init.hpp"

namespace orp {
namespace {

AnnealOptions quick(MoveMode mode, std::uint64_t iterations = 1500,
                    std::uint64_t seed = 1) {
  AnnealOptions options;
  options.iterations = iterations;
  options.mode = mode;
  options.seed = seed;
  return options;
}

TEST(Annealer, ImprovesOverRandomStart) {
  Xoshiro256 rng(1);
  const auto initial = random_host_switch_graph(96, 24, 8, rng);
  const auto initial_metrics = compute_host_metrics(initial);
  const auto result = anneal(initial, quick(MoveMode::kTwoNeighborSwing));
  EXPECT_LE(result.best_metrics.total_length, initial_metrics.total_length);
  EXPECT_LT(result.best_metrics.h_aspl, initial_metrics.h_aspl);
  result.best.check_invariants();
  EXPECT_TRUE(result.best_metrics.connected);
}

TEST(Annealer, BestNeverWorseThanReported) {
  Xoshiro256 rng(2);
  const auto initial = random_host_switch_graph(64, 16, 8, rng);
  const auto result = anneal(initial, quick(MoveMode::kSwing));
  const auto recomputed = compute_host_metrics(result.best);
  EXPECT_EQ(recomputed.total_length, result.best_metrics.total_length);
  EXPECT_EQ(recomputed.diameter, result.best_metrics.diameter);
}

TEST(Annealer, RespectsLowerBound) {
  Xoshiro256 rng(3);
  const auto initial = random_host_switch_graph(128, 32, 10, rng);
  const auto result = anneal(initial, quick(MoveMode::kTwoNeighborSwing));
  EXPECT_GE(result.best_metrics.h_aspl, haspl_lower_bound(128, 10) - 1e-12);
}

TEST(Annealer, DeterministicForEqualSeeds) {
  Xoshiro256 rng_a(4), rng_b(4);
  const auto init_a = random_host_switch_graph(64, 16, 8, rng_a);
  const auto init_b = random_host_switch_graph(64, 16, 8, rng_b);
  ASSERT_TRUE(init_a == init_b);
  const auto res_a = anneal(init_a, quick(MoveMode::kTwoNeighborSwing, 800, 9));
  const auto res_b = anneal(init_b, quick(MoveMode::kTwoNeighborSwing, 800, 9));
  EXPECT_TRUE(res_a.best == res_b.best);
  EXPECT_EQ(res_a.accepted, res_b.accepted);
  EXPECT_EQ(res_a.evaluations, res_b.evaluations);
}

// The "bit-identical trajectory" guarantee: because the incremental
// evaluator returns exactly the integers full recompute would, the same
// seed must produce the same accept/reject sequence, the same trace, and
// the same final graph under both strategies — for every move mode.
TEST(Annealer, FullAndDeltaAgree) {
  for (const MoveMode mode :
       {MoveMode::kSwap, MoveMode::kSwing, MoveMode::kTwoNeighborSwing}) {
    Xoshiro256 rng_full(21), rng_delta(21);
    const auto init_full = random_host_switch_graph(96, 24, 8, rng_full);
    const auto init_delta = random_host_switch_graph(96, 24, 8, rng_delta);
    ASSERT_TRUE(init_full == init_delta);

    auto options = quick(mode, 1200, 33);
    options.trace_every = 1;  // compare the walk step by step
    options.eval = EvalStrategy::kFull;
    const auto full = anneal(init_full, options);
    options.eval = EvalStrategy::kDelta;
    const auto delta = anneal(init_delta, options);

    EXPECT_EQ(full.accepted, delta.accepted);
    EXPECT_EQ(full.evaluations, delta.evaluations);
    EXPECT_TRUE(full.best == delta.best);
    EXPECT_EQ(full.best_metrics.total_length, delta.best_metrics.total_length);
    EXPECT_EQ(full.best_metrics.diameter, delta.best_metrics.diameter);
    EXPECT_DOUBLE_EQ(full.best_metrics.h_aspl, delta.best_metrics.h_aspl);
    ASSERT_EQ(full.trace.size(), delta.trace.size());
    for (std::size_t i = 0; i < full.trace.size(); ++i) {
      EXPECT_EQ(full.trace[i].iteration, delta.trace[i].iteration);
      EXPECT_DOUBLE_EQ(full.trace[i].current_haspl, delta.trace[i].current_haspl);
      EXPECT_DOUBLE_EQ(full.trace[i].best_haspl, delta.trace[i].best_haspl);
      EXPECT_DOUBLE_EQ(full.trace[i].temperature, delta.trace[i].temperature);
    }
  }
}

// Differential test against the replica-exchange backend: a one-rung
// ladder IS the serial annealer. Rung 0 keeps the seed verbatim, its
// temperature scale is exactly 1.0, the swap schedule is empty, and no
// restart can fire (the only rung always owns the global best) — so the
// pool backend at K=1 must reproduce the serial walk bit for bit,
// including the step-by-step trace.
TEST(Annealer, PoolBackendWithOneReplicaMatchesSerialExactly) {
  for (const MoveMode mode :
       {MoveMode::kSwap, MoveMode::kSwing, MoveMode::kTwoNeighborSwing}) {
    Xoshiro256 rng_serial(31), rng_pool(31);
    const auto init_serial = random_host_switch_graph(96, 24, 8, rng_serial);
    const auto init_pool = random_host_switch_graph(96, 24, 8, rng_pool);
    ASSERT_TRUE(init_serial == init_pool);

    auto options = quick(mode, 1200, 57);
    options.trace_every = 1;
    const auto serial = anneal(init_serial, options);

    ParallelAnnealOptions pool_options;
    pool_options.base = options;
    pool_options.replicas = 1;
    pool_options.swap_interval = 100;  // chunking must not matter
    const auto pool = parallel_anneal(init_pool, pool_options);

    EXPECT_EQ(pool.best_replica, 0u);
    EXPECT_TRUE(serial.best == pool.result.best);
    EXPECT_EQ(serial.accepted, pool.result.accepted);
    EXPECT_EQ(serial.evaluations, pool.result.evaluations);
    EXPECT_EQ(serial.best_metrics.total_length,
              pool.result.best_metrics.total_length);
    EXPECT_DOUBLE_EQ(serial.best_metrics.h_aspl,
                     pool.result.best_metrics.h_aspl);
    ASSERT_EQ(serial.trace.size(), pool.result.trace.size());
    for (std::size_t i = 0; i < serial.trace.size(); ++i) {
      EXPECT_EQ(serial.trace[i].iteration, pool.result.trace[i].iteration);
      EXPECT_DOUBLE_EQ(serial.trace[i].current_haspl,
                       pool.result.trace[i].current_haspl);
      EXPECT_DOUBLE_EQ(serial.trace[i].best_haspl,
                       pool.result.trace[i].best_haspl);
      EXPECT_DOUBLE_EQ(serial.trace[i].temperature,
                       pool.result.trace[i].temperature);
    }
  }
}

TEST(Annealer, ParsesEvalStrategyNames) {
  EXPECT_EQ(parse_eval_strategy("full"), EvalStrategy::kFull);
  EXPECT_EQ(parse_eval_strategy("delta"), EvalStrategy::kDelta);
  EXPECT_THROW(parse_eval_strategy("fast"), std::invalid_argument);
}

TEST(Annealer, SwapModePreservesHostDistribution) {
  Xoshiro256 rng(5);
  const auto initial = random_regular_host_switch_graph(96, 24, 8, rng);
  const auto result = anneal(initial, quick(MoveMode::kSwap));
  for (SwitchId s = 0; s < initial.num_switches(); ++s) {
    EXPECT_EQ(result.best.hosts_on(s), initial.hosts_on(s));
  }
}

TEST(Annealer, SwingModeCanChangeHostDistribution) {
  Xoshiro256 rng(6);
  const auto initial = random_host_switch_graph(96, 24, 8, rng);
  const auto result = anneal(initial, quick(MoveMode::kTwoNeighborSwing, 3000));
  bool changed = false;
  for (SwitchId s = 0; s < initial.num_switches(); ++s) {
    changed |= (result.best.hosts_on(s) != initial.hosts_on(s));
  }
  EXPECT_TRUE(changed);  // with 3000 iterations some swing lands
}

TEST(Annealer, PreservesEdgeAndPortBudget) {
  Xoshiro256 rng(7);
  const auto initial = random_host_switch_graph(80, 20, 9, rng);
  const auto result = anneal(initial, quick(MoveMode::kTwoNeighborSwing));
  EXPECT_EQ(result.best.num_switch_edges(), initial.num_switch_edges());
  EXPECT_EQ(result.best.num_hosts(), initial.num_hosts());
  EXPECT_TRUE(result.best.fully_attached());
}

TEST(Annealer, TraceRecordsSamples) {
  Xoshiro256 rng(8);
  const auto initial = random_host_switch_graph(48, 12, 8, rng);
  auto options = quick(MoveMode::kTwoNeighborSwing, 1000);
  options.trace_every = 100;
  const auto result = anneal(initial, options);
  EXPECT_EQ(result.trace.size(), 10u);
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    const AnnealTracePoint& sample = result.trace[i];
    EXPECT_EQ(sample.iteration, i * 100);
    EXPECT_GT(sample.current_haspl, 2.0);
    EXPECT_GT(sample.best_haspl, 2.0);
    // The best seen so far can never trail the current solution.
    EXPECT_LE(sample.best_haspl, sample.current_haspl);
    EXPECT_GT(sample.temperature, 0.0);
    // Geometric cooling: temperatures are non-increasing along the trace.
    if (i > 0) {
      EXPECT_LE(sample.temperature, result.trace[i - 1].temperature);
    }
  }
}

TEST(Annealer, RejectsDisconnectedInitial) {
  HostSwitchGraph g(2, 2, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  EXPECT_THROW(anneal(g, quick(MoveMode::kSwap)), std::invalid_argument);
}

TEST(Annealer, SingleSwitchGraphIsStable) {
  HostSwitchGraph g(4, 1, 8);
  for (HostId h = 0; h < 4; ++h) g.attach_host(h, 0);
  const auto result = anneal(g, quick(MoveMode::kTwoNeighborSwing, 10));
  EXPECT_DOUBLE_EQ(result.best_metrics.h_aspl, 2.0);
}

}  // namespace
}  // namespace orp

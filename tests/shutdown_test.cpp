// Graceful-shutdown tests: the cooperative flag, early annealer/solver
// wind-down, and a real SIGTERM delivered to a forked subprocess mid-run.
#include <gtest/gtest.h>

#include <csignal>

#include "common/prng.hpp"
#include "common/shutdown.hpp"
#include "common/thread_pool.hpp"
#include "search/annealer.hpp"
#include "search/parallel.hpp"
#include "search/random_init.hpp"
#include "search/solver.hpp"

#ifdef __unix__
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace orp {
namespace {

class ShutdownTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_shutdown(); }
  void TearDown() override { reset_shutdown(); }
};

TEST_F(ShutdownTest, FlagRoundTrips) {
  EXPECT_FALSE(shutdown_requested());
  request_shutdown();
  EXPECT_TRUE(shutdown_requested());
  reset_shutdown();
  EXPECT_FALSE(shutdown_requested());
}

TEST_F(ShutdownTest, SignalHandlerSetsFlag) {
  install_shutdown_handlers();
  EXPECT_FALSE(shutdown_requested());
  std::raise(SIGINT);
  EXPECT_TRUE(shutdown_requested());
  reset_shutdown();
  std::raise(SIGTERM);
  EXPECT_TRUE(shutdown_requested());
}

TEST_F(ShutdownTest, AnnealerWindsDownEarlyAndKeepsBestSoFar) {
  Xoshiro256 rng(3);
  const HostSwitchGraph initial = random_host_switch_graph(64, 16, 8, rng);
  AnnealOptions options;
  options.iterations = 1000000000ULL;  // would run for hours uninterrupted
  request_shutdown();
  const AnnealResult result = anneal(initial, options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.evaluations, 1u);  // only the initial evaluation ran
  EXPECT_TRUE(result.best_metrics.connected);
  EXPECT_TRUE(result.best.fully_attached());
}

TEST_F(ShutdownTest, UninterruptedRunReportsNotInterrupted) {
  Xoshiro256 rng(3);
  const HostSwitchGraph initial = random_host_switch_graph(32, 8, 6, rng);
  AnnealOptions options;
  options.iterations = 50;
  const AnnealResult result = anneal(initial, options);
  EXPECT_FALSE(result.interrupted);
  EXPECT_GT(result.evaluations, 1u);
}

TEST_F(ShutdownTest, SolverSkipsRemainingRestartsButStillReturns) {
  SolveOptions options;
  options.iterations = 1000000000ULL;
  options.restarts = 4;
  request_shutdown();
  const SolveResult result = solve_orp(64, 8, options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_TRUE(result.metrics.connected);
  EXPECT_TRUE(result.graph.fully_attached());
}

TEST_F(ShutdownTest, ParallelAnnealerWindsDownAllReplicas) {
  Xoshiro256 rng(4);
  const HostSwitchGraph initial = random_host_switch_graph(64, 16, 8, rng);
  ParallelAnnealOptions options;
  options.base.iterations = 1000000000ULL;
  options.replicas = 4;
  request_shutdown();
  const ParallelAnnealResult out = parallel_anneal(initial, options);
  EXPECT_TRUE(out.result.interrupted);
  EXPECT_TRUE(out.result.best_metrics.connected);
  EXPECT_TRUE(out.result.best.fully_attached());
  // Every rung stopped at the pre-set flag: nothing beyond its initial
  // evaluation ran on any of them.
  EXPECT_EQ(out.result.evaluations, options.replicas);
  for (const auto& stats : out.replicas) EXPECT_EQ(stats.moves, 0u);
}

#ifdef __unix__
TEST_F(ShutdownTest, PoolSearchSubprocessExitsCleanlyOnSigterm) {
  // Same end-to-end SIGTERM check as below, but for the replica-exchange
  // backend fanned out over a real thread pool: the signal must wind down
  // every replica, and the solver must still return a valid
  // interrupted-but-best-so-far result.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    reset_shutdown();
    install_shutdown_handlers();
    ThreadPool pool(2);
    SolveOptions options;
    options.iterations = 1000000000ULL;
    options.backend = SearchBackend::kPool;
    options.replicas = 4;
    options.swap_interval = 256;
    options.pool = &pool;
    const SolveResult result = solve_orp(64, 8, options);
    const bool ok = result.interrupted && result.metrics.connected &&
                    result.graph.fully_attached();
    _exit(ok ? 0 : 1);
  }
  usleep(100 * 1000);
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child did not exit normally";
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST_F(ShutdownTest, SubprocessExitsCleanlyOnSigterm) {
  // Real end-to-end check: a forked child arms the handlers and starts an
  // effectively-unbounded SA run; the parent SIGTERMs it and the child must
  // exit 0 with an interrupted-but-valid result (no abort, no hang).
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    reset_shutdown();
    install_shutdown_handlers();
    Xoshiro256 rng(9);
    const HostSwitchGraph initial = random_host_switch_graph(96, 24, 8, rng);
    AnnealOptions options;
    options.iterations = 1000000000ULL;
    const AnnealResult result = anneal(initial, options);
    const bool ok = result.interrupted && result.best_metrics.connected &&
                    result.best.fully_attached();
    _exit(ok ? 0 : 1);
  }
  // Give the child a moment to get into the iteration loop, then interrupt.
  // (If the signal lands before anneal() starts, the flag is already set
  // and the run winds down on iteration 0 — still a clean exit.)
  usleep(100 * 1000);
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child did not exit normally";
  EXPECT_EQ(WEXITSTATUS(status), 0);
}
#endif

}  // namespace
}  // namespace orp

// Tests for the multilevel partitioner: CSR construction, coarsening
// invariants, FM refinement, bisection quality on graphs with known cuts,
// and k-way balance across P = 2..16.
#include <gtest/gtest.h>

#include <numeric>

#include "common/prng.hpp"
#include "partition/coarsen.hpp"
#include "partition/fm.hpp"
#include "partition/partition.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

using Edge = std::pair<std::uint32_t, std::uint32_t>;

// Two K5 cliques joined by a single bridge edge: optimal bisection cut = 1.
CsrGraph two_cliques() {
  std::vector<Edge> edges;
  for (std::uint32_t offset : {0u, 5u}) {
    for (std::uint32_t i = 0; i < 5; ++i) {
      for (std::uint32_t j = i + 1; j < 5; ++j) {
        edges.push_back({offset + i, offset + j});
      }
    }
  }
  edges.push_back({4, 5});
  return csr_from_edges(10, edges);
}

CsrGraph ring(std::uint32_t n) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
  return csr_from_edges(n, edges);
}

TEST(Csr, FromEdgesBuildsSymmetricGraph) {
  const auto g = csr_from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, {5, 1, 2, 7});
  g.check_invariants();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
}

TEST(Csr, FromHostSwitchGraphCountsAllVertices) {
  const auto hsg = build_fattree(FatTreeParams{4}, 16);
  const auto csr = csr_from_host_switch_graph(hsg);
  csr.check_invariants();
  EXPECT_EQ(csr.num_vertices(), 16u + 20u);
  EXPECT_EQ(csr.num_edges(), hsg.num_edges());
}

TEST(Csr, SubgraphKeepsInternalEdgesOnly) {
  const auto g = two_cliques();
  std::vector<std::uint32_t> old_to_new;
  const auto sub = csr_subgraph(g, {0, 1, 2, 3, 4}, old_to_new);
  sub.check_invariants();
  EXPECT_EQ(sub.num_vertices(), 5u);
  EXPECT_EQ(sub.num_edges(), 10u);  // K5, bridge dropped
  EXPECT_EQ(old_to_new[3], 3u);
  EXPECT_EQ(old_to_new[7], 0xffffffffu);
}

TEST(Coarsen, PreservesTotalVertexWeight) {
  Xoshiro256 rng(1);
  const auto g = csr_from_host_switch_graph(build_torus(TorusParams{3, 3, 8}, 54));
  const auto level = coarsen_once(g, rng);
  level.graph.check_invariants();
  EXPECT_EQ(level.graph.total_vertex_weight(), g.total_vertex_weight());
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
}

TEST(Coarsen, ProjectedCutMatchesFineCut) {
  Xoshiro256 rng(2);
  const auto g = csr_from_host_switch_graph(build_torus(TorusParams{2, 4, 8}, 32));
  const auto level = coarsen_once(g, rng);
  // Any coarse partition, projected to fine, must have the same cut.
  std::vector<std::uint8_t> coarse_side(level.graph.num_vertices());
  for (std::uint32_t v = 0; v < level.graph.num_vertices(); ++v) {
    coarse_side[v] = static_cast<std::uint8_t>(v % 2);
  }
  std::vector<std::uint8_t> fine_side(g.num_vertices());
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    fine_side[v] = coarse_side[level.map[v]];
  }
  EXPECT_EQ(bisection_cut(level.graph, coarse_side), bisection_cut(g, fine_side));
}

TEST(Coarsen, ChainReachesTarget) {
  Xoshiro256 rng(3);
  const auto g = csr_from_host_switch_graph(build_torus(TorusParams{5, 3, 15}, 1024));
  const auto chain = coarsen_chain(g, rng, 48);
  ASSERT_FALSE(chain.empty());
  EXPECT_LE(chain.back().graph.num_vertices(), 200u);  // stalls allowed, but must shrink
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LT(chain[i].graph.num_vertices(), chain[i - 1].graph.num_vertices());
  }
}

TEST(Fm, ComputesCutCorrectly) {
  const auto g = two_cliques();
  std::vector<std::uint8_t> side(10, 0);
  for (std::uint32_t v = 5; v < 10; ++v) side[v] = 1;
  EXPECT_EQ(bisection_cut(g, side), 1u);
  side[4] = 1;  // now 4's clique edges are cut, bridge is internal
  EXPECT_EQ(bisection_cut(g, side), 4u);
}

TEST(Fm, RecoversOptimalCutFromBadStart) {
  const auto g = two_cliques();
  // Interleaved start: terrible cut (13). FM needs one-vertex slack in the
  // caps to sequence moves (callers provide target + max vertex weight).
  std::vector<std::uint8_t> side(10);
  for (std::uint32_t v = 0; v < 10; ++v) side[v] = static_cast<std::uint8_t>(v % 2);
  FmOptions options;
  options.max_side_weight[0] = 6;
  options.max_side_weight[1] = 6;
  const auto cut = fm_refine(g, side, options);
  EXPECT_EQ(cut, 1u);
  EXPECT_EQ(bisection_cut(g, side), 1u);
  std::uint64_t w0 = 0;
  for (std::uint32_t v = 0; v < 10; ++v) w0 += (side[v] == 0);
  EXPECT_GE(w0, 4u);
  EXPECT_LE(w0, 6u);
}

TEST(Fm, RepairsImbalanceEvenIfCutGrows) {
  const auto g = two_cliques();
  std::vector<std::uint8_t> side(10, 0);  // everything on side 0 (cut 0)
  FmOptions options;
  options.max_side_weight[0] = 5;
  options.max_side_weight[1] = 5;
  fm_refine(g, side, options);
  std::uint64_t w0 = 0;
  for (std::uint32_t v = 0; v < 10; ++v) w0 += (side[v] == 0);
  EXPECT_EQ(w0, 5u);
}

TEST(Bisect, FindsBridgeOnTwoCliques) {
  Xoshiro256 rng(7);
  const auto g = two_cliques();
  const auto side = bisect(g, 0.5, rng);
  EXPECT_EQ(bisection_cut(g, side), 1u);
}

TEST(Bisect, RingOptimalCutIsTwo) {
  Xoshiro256 rng(11);
  const auto g = ring(64);
  const auto side = bisect(g, 0.5, rng);
  EXPECT_EQ(bisection_cut(g, side), 2u);
}

TEST(Bisect, RespectsAsymmetricFraction) {
  Xoshiro256 rng(13);
  const auto g = ring(60);
  const auto side = bisect(g, 1.0 / 3.0, rng);
  std::uint64_t w0 = 0;
  for (std::uint32_t v = 0; v < 60; ++v) w0 += (side[v] == 0);
  EXPECT_NEAR(static_cast<double>(w0), 20.0, 2.0);
}

TEST(PartitionGraph, AssignmentCoversAllParts) {
  Xoshiro256 rng(17);
  const auto hsg = build_torus(TorusParams{3, 3, 8}, 54);
  const auto g = csr_from_host_switch_graph(hsg);
  for (std::uint32_t parts : {2u, 3u, 5u, 8u}) {
    const auto result = partition_graph(g, parts, 17);
    std::vector<bool> used(parts, false);
    for (std::uint32_t p : result.assignment) {
      ASSERT_LT(p, parts);
      used[p] = true;
    }
    for (std::uint32_t p = 0; p < parts; ++p) EXPECT_TRUE(used[p]) << "parts=" << parts;
    EXPECT_EQ(result.edge_cut, compute_edge_cut(g, result.assignment));
  }
}

// Parameterized balance sweep over the paper's full P range.
class KwayBalance : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KwayBalance, PartsAreNearEqual) {
  const std::uint32_t parts = GetParam();
  const auto hsg = build_fattree(FatTreeParams{8}, 128);  // 208 vertices
  const auto g = csr_from_host_switch_graph(hsg);
  const auto result = partition_graph(g, parts, 23);
  const double ideal = static_cast<double>(g.num_vertices()) / parts;
  for (std::uint32_t p = 0; p < parts; ++p) {
    EXPECT_LE(static_cast<double>(result.part_weights[p]), ideal * 1.25 + 2)
        << "part " << p << " of " << parts;
    EXPECT_GE(static_cast<double>(result.part_weights[p]), ideal * 0.70 - 2)
        << "part " << p << " of " << parts;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRange, KwayBalance,
                         ::testing::Range(2u, 17u));

TEST(HostSwitchCut, FullBisectionFatTreeBeatsTorus) {
  // The fat-tree is built for full bisection bandwidth; a 5-D torus with
  // the same host count cuts far fewer links. This mirrors Fig. 11b vs 9b.
  const auto fattree = build_fattree(FatTreeParams{8}, 128);
  const auto torus = build_torus(TorusParams{5, 2, 12}, 128);
  const auto cut_ft = host_switch_cut(fattree, 2, 29);
  const auto cut_torus = host_switch_cut(torus, 2, 29);
  EXPECT_GT(cut_ft, cut_torus);
}

TEST(PartitionGraph, RejectsBadArguments) {
  const auto g = ring(8);
  EXPECT_THROW(partition_graph(g, 0, 1), std::invalid_argument);
  EXPECT_THROW(partition_graph(g, 9, 1), std::invalid_argument);
}

}  // namespace
}  // namespace orp

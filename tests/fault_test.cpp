// Tests for the fault-injection subsystem: deterministic draws, cabinet
// correlation, degraded-graph construction, resilience reports, event
// scheduling, and the Monte-Carlo sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/prng.hpp"
#include "fault/degraded.hpp"
#include "fault/events.hpp"
#include "fault/model.hpp"
#include "fault/montecarlo.hpp"
#include "hsg/metrics.hpp"
#include "search/random_init.hpp"

namespace orp {
namespace {

HostSwitchGraph sample_graph(std::uint64_t seed = 7) {
  Xoshiro256 rng(seed);
  return random_host_switch_graph(128, 32, 10, rng);
}

TEST(FaultModel, DefaultSpecDrawsNothing) {
  const auto g = sample_graph();
  const FaultSet faults = draw_faults(g, FaultSpec{});
  EXPECT_TRUE(faults.empty());
  EXPECT_TRUE(faults.failed_cabinets.empty());
}

TEST(FaultModel, DrawIsBitIdenticalAcrossRuns) {
  const auto g = sample_graph();
  FaultSpec spec;
  spec.link_failure_rate = 0.08;
  spec.switch_failure_rate = 0.05;
  spec.cabinet_outage_rate = 0.1;
  spec.switches_per_cabinet = 4;
  spec.seed = 42;

  const FaultSet a = draw_faults(g, spec);
  const FaultSet b = draw_faults(g, spec);
  EXPECT_EQ(a.failed_links, b.failed_links);
  EXPECT_EQ(a.failed_switches, b.failed_switches);
  EXPECT_EQ(a.failed_cabinets, b.failed_cabinets);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Different seed, different draw (overwhelmingly likely at these rates).
  spec.seed = 43;
  const FaultSet c = draw_faults(g, spec);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(FaultModel, CategoriesUseIndependentStreams) {
  // Adding cabinet outages must not change which links/switches fail.
  const auto g = sample_graph();
  FaultSpec spec;
  spec.link_failure_rate = 0.1;
  spec.switch_failure_rate = 0.05;
  spec.seed = 99;
  const FaultSet without = draw_faults(g, spec);

  spec.cabinet_outage_rate = 0.2;
  spec.switches_per_cabinet = 4;
  const FaultSet with = draw_faults(g, spec);
  EXPECT_EQ(without.failed_links, with.failed_links);
  // Every switch failed without cabinets still fails with them.
  for (const SwitchId s : without.failed_switches) {
    EXPECT_TRUE(std::binary_search(with.failed_switches.begin(),
                                   with.failed_switches.end(), s));
  }
}

TEST(FaultModel, CabinetOutageKillsAllItsSwitches) {
  const auto g = sample_graph();
  FaultSpec spec;
  spec.cabinet_outage_rate = 0.3;
  spec.switches_per_cabinet = 4;
  spec.seed = 5;
  const FaultSet faults = draw_faults(g, spec);
  ASSERT_FALSE(faults.failed_cabinets.empty());
  for (const std::uint32_t c : faults.failed_cabinets) {
    for (SwitchId s = c * 4; s < std::min(g.num_switches(), (c + 1) * 4); ++s) {
      EXPECT_TRUE(std::binary_search(faults.failed_switches.begin(),
                                     faults.failed_switches.end(), s))
          << "cabinet " << c << " switch " << s;
    }
  }
  EXPECT_EQ(num_cabinets(g, spec), 8u);  // 32 switches / 4 per cabinet
}

TEST(FaultModel, DrawnLinksExistInTheGraph) {
  const auto g = sample_graph();
  FaultSpec spec;
  spec.link_failure_rate = 0.25;
  spec.seed = 11;
  const FaultSet faults = draw_faults(g, spec);
  ASSERT_FALSE(faults.failed_links.empty());
  for (const auto& [a, b] : faults.failed_links) {
    EXPECT_LT(a, b);
    EXPECT_TRUE(g.has_switch_edge(a, b));
  }
  EXPECT_TRUE(std::is_sorted(faults.failed_links.begin(),
                             faults.failed_links.end()));
}

TEST(FaultModel, RejectsOutOfRangeRates) {
  const auto g = sample_graph();
  FaultSpec spec;
  spec.link_failure_rate = 1.5;
  EXPECT_THROW(draw_faults(g, spec), std::invalid_argument);
  spec.link_failure_rate = -0.1;
  EXPECT_THROW(draw_faults(g, spec), std::invalid_argument);
}

TEST(DegradedGraph, SwitchDeathDetachesItsHosts) {
  // Path s0-s1-s2, one host each; kill s1 (the bridge).
  HostSwitchGraph g(3, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.attach_host(2, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);

  FaultSet faults;
  faults.failed_switches = {1};
  const DegradedGraph degraded = apply_faults(g, faults);
  EXPECT_EQ(degraded.live_hosts, 2u);
  EXPECT_EQ(degraded.dead_hosts, 1u);
  EXPECT_EQ(degraded.removed_links, 2u);
  EXPECT_FALSE(degraded.graph.host_attached(1));
  EXPECT_TRUE(degraded.graph.host_attached(0));
  EXPECT_EQ(degraded.graph.num_switch_edges(), 0u);
  EXPECT_TRUE(degraded.switch_dead[1]);
  EXPECT_FALSE(degraded.switch_dead[0]);
}

TEST(DegradedGraph, ReportCountsPairCategories) {
  // Kill the bridge switch: the two surviving hosts cannot reach each
  // other, and the dead host accounts for 2 dead pairs.
  HostSwitchGraph g(3, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.attach_host(2, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);

  FaultSet faults;
  faults.failed_switches = {1};
  const ResilienceReport report = evaluate_degraded(g, faults);
  EXPECT_EQ(report.live_hosts, 2u);
  EXPECT_EQ(report.dead_hosts, 1u);
  EXPECT_EQ(report.connected_pairs, 0u);
  EXPECT_EQ(report.unreachable_pairs, 1u);  // the two live hosts
  EXPECT_EQ(report.dead_pairs, 2u);
  EXPECT_FALSE(report.live_hosts_connected);
  EXPECT_TRUE(std::isinf(report.h_aspl));
  EXPECT_DOUBLE_EQ(report.reachable_fraction(g.num_hosts()), 0.0);
}

TEST(DegradedGraph, LinkFaultDegradesButKeepsConnectivity) {
  // Ring of 4 switches, one host each: losing one cable leaves a path
  // graph — still connected, longer routes.
  HostSwitchGraph g(4, 4, 4);
  for (HostId h = 0; h < 4; ++h) g.attach_host(h, h);
  for (SwitchId s = 0; s < 4; ++s) g.add_switch_edge(s, (s + 1) % 4);
  const HostMetrics healthy = compute_host_metrics(g);

  FaultSet faults;
  faults.failed_links = {{0, 1}};
  const ResilienceReport report = evaluate_degraded(g, faults);
  EXPECT_TRUE(report.live_hosts_connected);
  EXPECT_EQ(report.dead_hosts, 0u);
  EXPECT_EQ(report.unreachable_pairs, 0u);
  EXPECT_GT(report.h_aspl, healthy.h_aspl);
  EXPECT_EQ(report.diameter, 5u);  // s0..s3 along the path, +2 host hops
}

TEST(DegradedGraph, ReportIsDeterministic) {
  const auto g = sample_graph();
  FaultSpec spec;
  spec.link_failure_rate = 0.1;
  spec.switch_failure_rate = 0.05;
  spec.seed = 17;
  const ResilienceReport a = evaluate_degraded(g, draw_faults(g, spec));
  const ResilienceReport b = evaluate_degraded(g, draw_faults(g, spec));
  EXPECT_EQ(a.fault_fingerprint, b.fault_fingerprint);
  EXPECT_EQ(a.connected_pairs, b.connected_pairs);
  EXPECT_EQ(a.unreachable_pairs, b.unreachable_pairs);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_DOUBLE_EQ(a.h_aspl, b.h_aspl);
}

TEST(FaultEvents, ScheduleIsSortedDeterministicAndComplete) {
  const auto g = sample_graph();
  FaultSpec spec;
  spec.link_failure_rate = 0.1;
  spec.switch_failure_rate = 0.1;
  spec.seed = 23;
  const FaultSet faults = draw_faults(g, spec);
  ASSERT_FALSE(faults.empty());

  const auto events = schedule_fault_events(faults, 1.0, 2.0, 77);
  EXPECT_EQ(events.size(),
            faults.failed_links.size() + faults.failed_switches.size());
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const FaultEvent& x, const FaultEvent& y) {
                               return x.time < y.time;
                             }));
  for (const FaultEvent& e : events) {
    EXPECT_GE(e.time, 1.0);
    EXPECT_LT(e.time, 3.0);
  }
  const auto replay = schedule_fault_events(faults, 1.0, 2.0, 77);
  ASSERT_EQ(events.size(), replay.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time, replay[i].time);
    EXPECT_EQ(events[i].kind, replay[i].kind);
    EXPECT_EQ(events[i].a, replay[i].a);
    EXPECT_EQ(events[i].b, replay[i].b);
  }
}

TEST(FaultEvents, ZeroWindowStrikesAtStart) {
  FaultSet faults;
  faults.failed_links = {{0, 1}, {2, 3}};
  const auto events = schedule_fault_events(faults, 0.5, 0.0, 1);
  for (const FaultEvent& e : events) EXPECT_DOUBLE_EQ(e.time, 0.5);
}

TEST(MonteCarlo, SweepIsDeterministicAndMonotoneInRate) {
  const auto g = sample_graph();
  FaultSpec mild;
  mild.link_failure_rate = 0.02;
  mild.seed = 3;
  FaultSpec harsh = mild;
  harsh.link_failure_rate = 0.3;

  const ResilienceCurvePoint a = sweep_point(g, mild, 20);
  const ResilienceCurvePoint b = sweep_point(g, mild, 20);
  EXPECT_DOUBLE_EQ(a.p50_haspl_inflation, b.p50_haspl_inflation);
  EXPECT_DOUBLE_EQ(a.mean_reachable_fraction, b.mean_reachable_fraction);
  EXPECT_EQ(a.partitioned_trials, b.partitioned_trials);

  const ResilienceCurvePoint c = sweep_point(g, harsh, 20);
  EXPECT_GE(c.p50_haspl_inflation, a.p50_haspl_inflation);
  EXPECT_LE(c.mean_reachable_fraction, a.mean_reachable_fraction);
  EXPECT_GE(a.p90_haspl_inflation, a.p50_haspl_inflation);
  EXPECT_GE(a.max_haspl_inflation, a.p90_haspl_inflation);
}

TEST(MonteCarlo, TrialSeedsDiffer) {
  EXPECT_NE(trial_seed(1, 0), trial_seed(1, 1));
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));
  EXPECT_EQ(trial_seed(9, 4), trial_seed(9, 4));
}

}  // namespace
}  // namespace orp

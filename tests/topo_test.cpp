// Tests for the conventional topology generators against the paper's
// Formulae 3 (torus), 4 (dragonfly), and 5 (fat-tree), plus attachment
// policies.
#include <gtest/gtest.h>

#include <set>

#include "hsg/metrics.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

// ---- torus -----------------------------------------------------------

TEST(Torus, PaperConfiguration5D) {
  // §6.3.1: K=5, N=3, r=15 -> m=243, capacity 1215.
  const TorusParams params{5, 3, 15};
  EXPECT_EQ(torus_switch_count(params), 243u);
  EXPECT_EQ(torus_link_degree(params), 10u);
  EXPECT_EQ(torus_host_capacity(params), 1215u);
  const auto g = build_torus(params, 1024);
  g.check_invariants();
  EXPECT_TRUE(g.switches_connected());
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    EXPECT_EQ(g.switch_degree(s), 10u);
  }
  EXPECT_TRUE(compute_host_metrics(g).connected);
}

TEST(Torus, RingIsACycle) {
  const TorusParams params{1, 6, 4};
  const auto g = build_torus(params, 6);
  EXPECT_EQ(g.num_switch_edges(), 6u);
  for (SwitchId s = 0; s < 6; ++s) {
    EXPECT_EQ(g.switch_degree(s), 2u);
    EXPECT_TRUE(g.has_switch_edge(s, (s + 1) % 6));
  }
}

TEST(Torus, TwoAryTorusHalvesDegree) {
  // base == 2: +1 and -1 neighbors coincide; degree is dims, not 2*dims.
  const TorusParams params{3, 2, 8};
  EXPECT_EQ(torus_link_degree(params), 3u);
  const auto g = build_torus(params, 8);
  for (SwitchId s = 0; s < g.num_switches(); ++s) EXPECT_EQ(g.switch_degree(s), 3u);
  EXPECT_EQ(g.num_switch_edges(), 8u * 3 / 2);
}

TEST(Torus, TwoDTorusHasKnownAspl) {
  // 3x3 torus: each switch reaches 4 at distance 1, 4 at distance 2.
  const TorusParams params{2, 3, 8};
  const auto g = build_torus(params, 9);
  const auto metrics = compute_switch_metrics(g);
  EXPECT_DOUBLE_EQ(metrics.aspl, 1.5);
  EXPECT_EQ(metrics.diameter, 2u);
}

TEST(Torus, RejectsOverCapacity) {
  const TorusParams params{5, 3, 15};
  EXPECT_THROW(build_torus(params, 1216), std::invalid_argument);
}

TEST(Torus, RejectsRadixBelowDegree) {
  const TorusParams params{5, 3, 10};
  EXPECT_THROW(torus_host_capacity(params), std::invalid_argument);
}

// ---- dragonfly --------------------------------------------------------

TEST(Dragonfly, PaperConfigurationA8) {
  // §6.3.2: a=8 -> h=p=4, g=33, m=264, r=15, capacity 1056.
  const DragonflyParams params{8};
  EXPECT_EQ(params.groups(), 33u);
  EXPECT_EQ(params.radix(), 15u);
  EXPECT_EQ(dragonfly_switch_count(params), 264u);
  EXPECT_EQ(dragonfly_host_capacity(params), 1056u);
  const auto g = build_dragonfly(params, 1024);
  g.check_invariants();
  EXPECT_TRUE(g.switches_connected());
  // Every switch: a-1 local + h global links.
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    EXPECT_EQ(g.switch_degree(s), 11u);
  }
}

TEST(Dragonfly, ExactlyOneLinkPerGroupPair) {
  const DragonflyParams params{4};  // a=4, h=2, g=9, m=36
  const auto g = build_dragonfly(params, 16);
  const std::uint32_t a = params.group_size;
  std::set<std::pair<std::uint32_t, std::uint32_t>> group_links;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      const std::uint32_t gs = s / a, gt = t / a;
      if (gs < gt) group_links.insert({gs, gt});
    }
  }
  const std::uint32_t groups = params.groups();
  EXPECT_EQ(group_links.size(), groups * (groups - 1) / 2);
  // Global link count: g*(g-1)/2; intra: g * a(a-1)/2.
  EXPECT_EQ(g.num_switch_edges(),
            groups * (groups - 1) / 2 + groups * a * (a - 1) / 2);
}

TEST(Dragonfly, SwitchDiameterIsThree) {
  // Local hop + global hop + local hop.
  const auto g = build_dragonfly(DragonflyParams{8}, 1024);
  EXPECT_EQ(compute_switch_metrics(g).diameter, 3u);
}

TEST(Dragonfly, RejectsOddGroupSize) {
  EXPECT_THROW(dragonfly_switch_count(DragonflyParams{7}), std::invalid_argument);
}

TEST(Dragonfly, RejectsOverCapacity) {
  EXPECT_THROW(build_dragonfly(DragonflyParams{8}, 1057), std::invalid_argument);
}

// ---- fat-tree ---------------------------------------------------------

TEST(FatTree, PaperConfigurationK16) {
  // §6.3.3: K=16 -> m=320, r=16, n=1024.
  const FatTreeParams params{16};
  EXPECT_EQ(fattree_switch_count(params), 320u);
  EXPECT_EQ(fattree_host_capacity(params), 1024u);
  const auto g = build_fattree(params, 1024);
  g.check_invariants();
  EXPECT_TRUE(g.switches_connected());
  EXPECT_TRUE(g.fully_attached());
  // Edge switches: K/2 links + K/2 hosts; aggregation/core: K links.
  for (SwitchId s = 0; s < 128; ++s) {
    EXPECT_EQ(g.switch_degree(s), 8u);
    EXPECT_EQ(g.hosts_on(s), 8u);
  }
  for (SwitchId s = 128; s < 320; ++s) {
    EXPECT_EQ(g.switch_degree(s), 16u);
    EXPECT_EQ(g.hosts_on(s), 0u);
  }
}

TEST(FatTree, HostDistancesAreTwoFourSix) {
  const FatTreeParams params{4};  // 4 pods, 20 switches, 16 hosts
  const auto g = build_fattree(params, 16);
  const auto metrics = compute_host_metrics(g);
  EXPECT_EQ(metrics.diameter, 6u);
  // Same edge switch: 2; same pod: 4; cross-pod: 6. Eight edge switches
  // with 2 hosts each -> 8 pairs at 2; per pod one edge-switch pair with
  // 2*2 host pairs -> 16 pairs at 4; the remaining 120-8-16 = 96 pairs at 6.
  const double expected = (8 * 2.0 + 16 * 4.0 + 96 * 6.0) / 120.0;
  EXPECT_DOUBLE_EQ(metrics.h_aspl, expected);
}

TEST(FatTree, RejectsOddK) {
  EXPECT_THROW(fattree_switch_count(FatTreeParams{5}), std::invalid_argument);
}

TEST(FatTree, RejectsOverCapacity) {
  EXPECT_THROW(build_fattree(FatTreeParams{4}, 17), std::invalid_argument);
}

// ---- attachment policies ---------------------------------------------

TEST(Attach, RoundRobinBalances) {
  const TorusParams params{2, 3, 8};  // 9 switches, 4 host ports each
  const auto g = build_torus(params, 13, AttachPolicy::kRoundRobin);
  std::uint32_t min_k = 0xffffffff, max_k = 0;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    min_k = std::min(min_k, g.hosts_on(s));
    max_k = std::max(max_k, g.hosts_on(s));
  }
  EXPECT_EQ(min_k, 1u);
  EXPECT_EQ(max_k, 2u);
}

TEST(Attach, FillFirstConcentrates) {
  const TorusParams params{2, 3, 8};
  const auto g = build_torus(params, 13, AttachPolicy::kFillFirst);
  EXPECT_EQ(g.hosts_on(0), 4u);
  EXPECT_EQ(g.hosts_on(1), 4u);
  EXPECT_EQ(g.hosts_on(2), 4u);
  EXPECT_EQ(g.hosts_on(3), 1u);
  EXPECT_EQ(g.hosts_on(4), 0u);
}

TEST(Attach, DfsOrderVisitsAllHostsOnce) {
  const auto g = build_fattree(FatTreeParams{4}, 16);
  const auto order = dfs_host_order(g);
  ASSERT_EQ(order.size(), 16u);
  std::set<HostId> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 16u);
}

TEST(Attach, DfsOrderGroupsSwitchMates) {
  // Hosts on the same switch must be consecutive in DFS order.
  const auto g = build_fattree(FatTreeParams{4}, 16);
  const auto order = dfs_host_order(g);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const SwitchId prev = g.host_switch(order[i - 1]);
    const SwitchId cur = g.host_switch(order[i]);
    if (prev == cur) continue;
    // once we leave a switch we never return
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      EXPECT_NE(g.host_switch(order[j]), prev);
    }
  }
}

}  // namespace
}  // namespace orp

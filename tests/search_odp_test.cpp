// Tests for the Order/Degree Problem solver (ODP as a special case of ORP).
#include <gtest/gtest.h>

#include "hsg/bounds.hpp"
#include "search/odp.hpp"

namespace orp {
namespace {

OdpOptions quick(std::uint64_t iterations = 1500) {
  OdpOptions options;
  options.iterations = iterations;
  return options;
}

TEST(Odp, ProducesRegularishGraphAboveMooreBound) {
  const auto result = solve_odp(32, 4, quick());
  result.graph.check_invariants();
  EXPECT_TRUE(result.metrics.connected);
  EXPECT_GE(result.metrics.aspl, result.moore_aspl_bound - 1e-12);
  // Every vertex (switch) has one pendant host and <= degree edges.
  for (SwitchId s = 0; s < 32; ++s) {
    EXPECT_EQ(result.graph.hosts_on(s), 1u);
    EXPECT_LE(result.graph.switch_degree(s), 4u);
  }
}

TEST(Odp, CompleteGraphReachesOptimum) {
  // degree = order-1 admits the complete graph: ASPL exactly 1.
  const auto result = solve_odp(8, 7, quick(300));
  EXPECT_DOUBLE_EQ(result.metrics.aspl, 1.0);
  EXPECT_EQ(result.metrics.diameter, 1u);
}

TEST(Odp, RingIsOptimalForDegreeTwo) {
  // Degree 2 connected graphs are cycles; ASPL is fixed by the cycle.
  const auto result = solve_odp(10, 2, quick(500));
  EXPECT_TRUE(result.metrics.connected);
  // C10 per-vertex distances: 1,1,2,2,3,3,4,4,5 -> sum 25, ASPL 25/9.
  EXPECT_DOUBLE_EQ(result.metrics.aspl, 25.0 / 9.0);
}

TEST(Odp, HigherDegreeNeverHurts) {
  const auto d3 = solve_odp(48, 3, quick());
  const auto d6 = solve_odp(48, 6, quick());
  EXPECT_LE(d6.metrics.aspl, d3.metrics.aspl);
}

TEST(Odp, ApproachesMooreBoundOnSmallInstance) {
  // Petersen-graph parameters (10, 3): Moore ASPL bound 5/3 is attainable.
  OdpOptions options = quick(4000);
  options.restarts = 3;
  const auto result = solve_odp(10, 3, options);
  EXPECT_NEAR(result.metrics.aspl, 5.0 / 3.0, 0.15);
}

TEST(Odp, DeterministicForEqualSeeds) {
  const auto a = solve_odp(24, 4, quick(600));
  const auto b = solve_odp(24, 4, quick(600));
  EXPECT_TRUE(a.graph == b.graph);
}

TEST(Odp, RejectsDegenerateParameters) {
  EXPECT_THROW(solve_odp(1, 2, quick(10)), std::invalid_argument);
  EXPECT_THROW(solve_odp(10, 1, quick(10)), std::invalid_argument);
  EXPECT_THROW(solve_odp(10, 10, quick(10)), std::invalid_argument);
}

}  // namespace
}  // namespace orp

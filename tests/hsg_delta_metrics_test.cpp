// Differential test for the incremental h-ASPL evaluator: long randomized
// swap/swing/2n-swing move sequences (accepted AND reverted, including
// disconnect-and-reject paths) must match a from-scratch metrics.cpp
// recompute after every single move, on every escalation tier. Rejections
// alternate randomly between the two supported mechanisms — applying the
// inverse delta and revert_last() — so both stay exact, including nested
// (2n-swing) frames and reverts of fallback rebuilds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "hsg/delta_metrics.hpp"
#include "hsg/metrics.hpp"
#include "search/operations.hpp"
#include "search/random_init.hpp"

namespace orp {
namespace {

using EdgeList = std::vector<std::pair<SwitchId, SwitchId>>;

EdgeList collect_edges(const HostSwitchGraph& g) {
  EdgeList edges;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) edges.emplace_back(s, t);
    }
  }
  return edges;
}

void sync_delta(EdgeList& edges, const GraphDelta& delta) {
  for (std::uint8_t i = 0; i < delta.num_removed; ++i) {
    auto [a, b] = delta.removed[i];
    if (a > b) std::swap(a, b);
    const auto it = std::find(edges.begin(), edges.end(), std::make_pair(a, b));
    ASSERT_NE(it, edges.end());
    *it = edges.back();
    edges.pop_back();
  }
  for (std::uint8_t i = 0; i < delta.num_added; ++i) {
    auto [a, b] = delta.added[i];
    if (a > b) std::swap(a, b);
    edges.emplace_back(a, b);
  }
}

void expect_metrics_equal(const HostMetrics& got, const HostMetrics& want,
                          const char* where) {
  EXPECT_EQ(got.connected, want.connected) << where;
  EXPECT_EQ(got.total_length, want.total_length) << where;
  EXPECT_EQ(got.diameter, want.diameter) << where;
  EXPECT_EQ(got.connected_pairs, want.connected_pairs) << where;
  EXPECT_EQ(got.unreachable_pairs, want.unreachable_pairs) << where;
  if (want.connected_pairs > 0) {
    EXPECT_DOUBLE_EQ(got.h_aspl, want.h_aspl) << where;
  } else {
    EXPECT_TRUE(std::isinf(got.h_aspl)) << where;
    EXPECT_TRUE(std::isinf(want.h_aspl)) << where;
  }
}

// Every distance entry, not just the aggregates: catches compensating
// per-row errors that the h-ASPL sum could hide.
void expect_state_exact(const DeltaHasplEvaluator& eval,
                        const HostSwitchGraph& g) {
  DeltaHasplEvaluator reference(g);
  ASSERT_EQ(eval.num_switches(), reference.num_switches());
  for (SwitchId a = 0; a < g.num_switches(); ++a) {
    for (SwitchId b = a; b < g.num_switches(); ++b) {
      ASSERT_EQ(eval.distance(a, b), reference.distance(a, b))
          << "a=" << a << " b=" << b;
      ASSERT_EQ(eval.distance(a, b), eval.distance(b, a)) << "symmetry";
    }
  }
}

struct DriveCase {
  std::uint32_t n, m, r;
  std::uint64_t seed;
  int moves;
  DeltaEvalOptions eval_options;
};

// Applies random moves until `moves` of them landed; after every apply and
// every revert the evaluator must agree with compute_host_metrics on the
// mutated graph. Disconnecting moves are always reverted (mirroring the
// annealer's reject path); connected ones are kept or reverted at random.
void drive(const DriveCase& tc) {
  Xoshiro256 rng(tc.seed);
  HostSwitchGraph g = random_host_switch_graph(tc.n, tc.m, tc.r, rng);
  DeltaHasplEvaluator eval(g, tc.eval_options);
  EdgeList edges = collect_edges(g);
  expect_metrics_equal(eval.metrics(), compute_host_metrics(g), "initial");

  // Undo the most recent apply. The mechanism is drawn once per proposal
  // chain: within a nested 2n-swing rejection the two undos must match,
  // because an inverse-apply pushes its own frame and a subsequent
  // revert_last() would undo that instead of the original move. Called
  // after `g` has been restored (revert_last needs the pre-apply graph when
  // the apply fell back to a rebuild).
  bool use_revert = false;
  const auto undo = [&](const GraphDelta& delta) {
    if (use_revert) {
      eval.revert_last(g);
    } else {
      eval.apply(delta.inverse());
    }
  };

  int performed = 0;
  for (int guard = 0; performed < tc.moves && guard < tc.moves * 16; ++guard) {
    const std::uint64_t kind = rng.below(3);
    use_revert = rng.bernoulli(0.5);
    if (kind == 0) {
      const auto move = propose_swap(g, edges, rng);
      if (!move) continue;
      const GraphDelta delta = delta_of(*move);
      apply_swap(g, *move);
      const HostMetrics got = eval.apply(delta);
      expect_metrics_equal(got, compute_host_metrics(g), "swap");
      ++performed;
      if (got.connected && rng.bernoulli(0.5)) {
        sync_delta(edges, delta);
      } else {
        apply_swap(g, move->inverse());
        undo(delta);
        expect_metrics_equal(eval.metrics(), compute_host_metrics(g),
                             "revert-swap");
      }
    } else {
      const auto first = propose_swing(g, edges, rng);
      if (!first) continue;
      const GraphDelta first_delta = delta_of(*first);
      apply_swing(g, *first);
      const HostMetrics one = eval.apply(first_delta);
      expect_metrics_equal(one, compute_host_metrics(g), "swing");
      ++performed;
      if (one.connected && rng.bernoulli(0.5)) {
        sync_delta(edges, first_delta);
      } else {
        // Rejected first swing. In 2n-swing mode chain the completing
        // swing before deciding, exactly like the annealer (Fig. 4).
        bool completed = false;
        if (kind == 2) {
          const auto completion = propose_completion_swing(g, *first, rng);
          if (completion) {
            const GraphDelta completion_delta = delta_of(*completion);
            apply_swing(g, *completion);
            const HostMetrics two = eval.apply(completion_delta);
            expect_metrics_equal(two, compute_host_metrics(g), "2n-swing");
            ++performed;
            if (two.connected && rng.bernoulli(0.5)) {
              sync_delta(edges, first_delta);
              sync_delta(edges, completion_delta);
              completed = true;
            } else {
              apply_swing(g, completion->inverse());
              undo(completion_delta);
              expect_metrics_equal(eval.metrics(), compute_host_metrics(g),
                                   "revert-completion");
            }
          }
        }
        if (!completed) {
          apply_swing(g, first->inverse());
          undo(first_delta);
          expect_metrics_equal(eval.metrics(), compute_host_metrics(g),
                               "revert-swing");
        }
      }
    }
    if (performed % 64 == 0) expect_state_exact(eval, g);
  }
  EXPECT_GT(performed, tc.moves / 2) << "proposals kept missing";
  expect_state_exact(eval, g);
  EXPECT_GE(eval.stats().applies, static_cast<std::uint64_t>(performed));
}

class DeltaDifferential : public ::testing::TestWithParam<DriveCase> {};

TEST_P(DeltaDifferential, MatchesFromScratchRecompute) { drive(GetParam()); }

// ~1.1k landed moves across the grid n in {16,64,128}, r in {4,8,12}, with
// option sets that pin each escalation tier (per-source Ramalingam-Reps,
// batched bit-parallel, full-rebuild fallback) plus >64-switch batches.
INSTANTIATE_TEST_SUITE_P(
    RandomizedMoves, DeltaDifferential,
    ::testing::Values(DriveCase{16, 8, 4, 1, 120, {}},
                      DriveCase{64, 16, 8, 2, 120, {}},
                      DriveCase{128, 24, 12, 3, 120, {}},
                      DriveCase{64, 16, 8, 4, 120, DeltaEvalOptions{0, 0.75}},
                      DriveCase{64, 16, 8, 5, 120, DeltaEvalOptions{16, 0.0}},
                      DriveCase{128, 24, 12, 6, 120, DeltaEvalOptions{4, 0.3}},
                      DriveCase{16, 8, 4, 7, 120, DeltaEvalOptions{64, 1.0}},
                      DriveCase{100, 40, 6, 8, 120, {}},
                      DriveCase{128, 70, 6, 9, 100, {}}));

TEST(DeltaEvaluator, MatchesInitialMetricsExactly) {
  Xoshiro256 rng(11);
  const auto g = random_host_switch_graph(96, 24, 8, rng);
  DeltaHasplEvaluator eval(g);
  expect_metrics_equal(eval.metrics(), compute_host_metrics(g), "fresh");
}

TEST(DeltaEvaluator, BridgeRemovalDisconnectsAndInverseRestores) {
  // Path 0-1-2, hosts on the ends: removing {0,1} cuts host 0 off.
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  DeltaHasplEvaluator eval(g);

  GraphDelta cut;
  cut.remove_edge(0, 1);
  g.remove_switch_edge(0, 1);
  const HostMetrics broken = eval.apply(cut);
  EXPECT_FALSE(broken.connected);
  EXPECT_EQ(broken.diameter, HostMetrics::kUnreachable);
  EXPECT_TRUE(std::isinf(broken.h_aspl));
  EXPECT_EQ(eval.distance(0, 1), HostMetrics::kUnreachable);
  expect_metrics_equal(broken, compute_host_metrics(g), "disconnected");

  g.add_switch_edge(0, 1);
  const HostMetrics restored = eval.apply(cut.inverse());
  expect_metrics_equal(restored, compute_host_metrics(g), "restored");
  EXPECT_EQ(eval.distance(0, 2), 2u);
}

TEST(DeltaEvaluator, PartialDisconnectKeepsConnectedPairMetrics) {
  // Path 0-1-2 with one host per switch: cutting {1,2} strands host 2 but
  // pair (h0,h1) survives at distance 3 — the evaluator must report the
  // connected-pairs metrics, not bail to infinity.
  HostSwitchGraph g(3, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.attach_host(2, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  DeltaHasplEvaluator eval(g);

  GraphDelta cut;
  cut.remove_edge(1, 2);
  g.remove_switch_edge(1, 2);
  const HostMetrics broken = eval.apply(cut);
  EXPECT_FALSE(broken.connected);
  EXPECT_EQ(broken.connected_pairs, 1u);
  EXPECT_EQ(broken.unreachable_pairs, 2u);
  EXPECT_DOUBLE_EQ(broken.h_aspl, 3.0);
  EXPECT_EQ(broken.diameter, 3u);
  expect_metrics_equal(broken, compute_host_metrics(g), "partial-cut");

  g.add_switch_edge(1, 2);
  expect_metrics_equal(eval.apply(cut.inverse()), compute_host_metrics(g),
                       "healed");
}

TEST(DeltaEvaluator, RejectsDisconnectedSnapshot) {
  // Mirroring a split graph would corrupt every subsequent delta, so both
  // construction and rebuild() refuse it outright.
  HostSwitchGraph split(2, 2, 4);
  split.attach_host(0, 0);
  split.attach_host(1, 1);
  EXPECT_THROW(DeltaHasplEvaluator eval(split), std::invalid_argument);

  HostSwitchGraph ok(2, 2, 4);
  ok.attach_host(0, 0);
  ok.attach_host(1, 1);
  ok.add_switch_edge(0, 1);
  DeltaHasplEvaluator eval(ok);
  ok.remove_switch_edge(0, 1);  // external edit splits the graph
  EXPECT_THROW(eval.rebuild(ok), std::invalid_argument);
}

TEST(DeltaEvaluator, HostMoveUpdatesWeightsWithoutTouchingDistances) {
  HostSwitchGraph g(4, 3, 6);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  g.attach_host(2, 1);
  g.attach_host(3, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  DeltaHasplEvaluator eval(g);

  GraphDelta delta;
  delta.move_host(0, 2);
  g.move_host(0, 2);
  expect_metrics_equal(eval.apply(delta), compute_host_metrics(g), "moved");

  g.move_host(0, 0);
  expect_metrics_equal(eval.apply(delta.inverse()), compute_host_metrics(g),
                       "moved-back");
}

TEST(DeltaEvaluator, FallbackTierIsExercisedAndCounted) {
  Xoshiro256 rng(13);
  auto g = random_host_switch_graph(64, 16, 8, rng);
  DeltaHasplEvaluator eval(g, DeltaEvalOptions{16, 0.0});  // always rebuild
  EdgeList edges = collect_edges(g);
  std::uint64_t landed = 0;
  for (int i = 0; i < 50; ++i) {
    const auto move = propose_swap(g, edges, rng);
    if (!move) continue;
    apply_swap(g, *move);
    expect_metrics_equal(eval.apply(delta_of(*move)), compute_host_metrics(g),
                         "fallback-apply");
    sync_delta(edges, delta_of(*move));
    ++landed;
  }
  ASSERT_GT(landed, 0u);
  // fallback_fraction = 0 forces a rebuild on every apply with a dirty
  // removal; random swaps essentially always dirty at least one source.
  EXPECT_GT(eval.stats().fallback_rebuilds, 0u);
  EXPECT_EQ(eval.stats().applies, landed);
}

TEST(DeltaEvaluator, RevertLastUndoesFallbackRebuild) {
  // fallback_fraction = 0 turns every apply with a dirty removal into a
  // full rebuild; revert_last() must then resync from the restored graph.
  Xoshiro256 rng(19);
  auto g = random_host_switch_graph(64, 16, 8, rng);
  DeltaHasplEvaluator eval(g, DeltaEvalOptions{16, 0.0});
  EdgeList edges = collect_edges(g);
  std::uint64_t reverted = 0;
  for (int i = 0; i < 20; ++i) {
    const auto move = propose_swap(g, edges, rng);
    if (!move) continue;
    apply_swap(g, *move);
    eval.apply(delta_of(*move));
    apply_swap(g, move->inverse());
    eval.revert_last(g);
    expect_metrics_equal(eval.metrics(), compute_host_metrics(g),
                         "fallback-revert");
    ++reverted;
  }
  ASSERT_GT(reverted, 0u);
  EXPECT_GT(eval.stats().fallback_rebuilds, 0u);
  EXPECT_EQ(eval.stats().reverts, reverted);
  expect_state_exact(eval, g);
}

TEST(DeltaEvaluator, RevertLastPopsNestedFramesInLifoOrder) {
  // Mirrors the annealer's 2-neighbor chain: two stacked applies, undone
  // newest-first. After both reverts the state must be entry-exact.
  Xoshiro256 rng(23);
  auto g = random_host_switch_graph(96, 24, 8, rng);
  DeltaHasplEvaluator eval(g);
  EdgeList edges = collect_edges(g);

  const auto first = propose_swing(g, edges, rng);
  ASSERT_TRUE(first.has_value());
  apply_swing(g, *first);
  eval.apply(delta_of(*first));
  sync_delta(edges, delta_of(*first));

  const auto second = propose_swing(g, edges, rng);
  ASSERT_TRUE(second.has_value());
  apply_swing(g, *second);
  eval.apply(delta_of(*second));

  apply_swing(g, second->inverse());
  eval.revert_last(g);
  expect_metrics_equal(eval.metrics(), compute_host_metrics(g), "pop-second");

  apply_swing(g, first->inverse());
  eval.revert_last(g);
  expect_metrics_equal(eval.metrics(), compute_host_metrics(g), "pop-first");
  expect_state_exact(eval, g);
}

TEST(DeltaEvaluator, RevertLastWithoutPendingApplyThrows) {
  Xoshiro256 rng(29);
  const auto g = random_host_switch_graph(32, 8, 8, rng);
  DeltaHasplEvaluator eval(g);
  EXPECT_THROW(eval.revert_last(g), std::invalid_argument);
}

TEST(DeltaEvaluator, RebuildResynchronizesAfterExternalEdits) {
  Xoshiro256 rng(17);
  auto g = random_host_switch_graph(48, 12, 8, rng);
  DeltaHasplEvaluator eval(g);
  EdgeList edges = collect_edges(g);
  const auto move = propose_swap(g, edges, rng);
  ASSERT_TRUE(move.has_value());
  apply_swap(g, *move);  // evaluator not told
  eval.rebuild(g);
  expect_metrics_equal(eval.metrics(), compute_host_metrics(g), "resynced");
}

TEST(GraphDelta, InverseSwapsAdditionsAndRemovals) {
  GraphDelta delta;
  delta.add_edge(1, 2).remove_edge(3, 4).move_host(5, 6);
  const GraphDelta inv = delta.inverse();
  ASSERT_EQ(inv.num_added, 1);
  ASSERT_EQ(inv.num_removed, 1);
  ASSERT_EQ(inv.num_host_moves, 1);
  EXPECT_EQ(inv.added[0], std::make_pair(SwitchId{3}, SwitchId{4}));
  EXPECT_EQ(inv.removed[0], std::make_pair(SwitchId{1}, SwitchId{2}));
  EXPECT_EQ(inv.host_moves[0].from, 6u);
  EXPECT_EQ(inv.host_moves[0].to, 5u);
}

}  // namespace
}  // namespace orp

// Tests for the end-to-end ORP solver and the clique construction.
#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "hsg/bounds.hpp"
#include "search/clique.hpp"
#include "search/solver.hpp"

namespace orp {
namespace {

SolveOptions quick(std::uint64_t iterations = 1200) {
  SolveOptions options;
  options.iterations = iterations;
  return options;
}

TEST(CliqueGraph, SingleSwitchWhenHostsFit) {
  const auto g = build_clique_graph(8, 24);
  EXPECT_EQ(g.num_switches(), 1u);
  EXPECT_DOUBLE_EQ(compute_host_metrics(g).h_aspl, 2.0);
}

TEST(CliqueGraph, PaperCaseN128R24) {
  // §5.3: only for (n, r) = (128, 24) can the h-ASPL go below 3 (m = 8).
  const auto g = build_clique_graph(128, 24);
  EXPECT_EQ(g.num_switches(), 8u);
  g.check_invariants();
  const auto metrics = compute_host_metrics(g);
  EXPECT_LT(metrics.h_aspl, 3.0);
  EXPECT_EQ(metrics.diameter, 3u);
  // Every switch pair is directly connected.
  for (SwitchId a = 0; a < 8; ++a) {
    for (SwitchId b = a + 1; b < 8; ++b) EXPECT_TRUE(g.has_switch_edge(a, b));
  }
}

TEST(CliqueGraph, InfeasibleThrows) {
  EXPECT_THROW(build_clique_graph(1024, 24), std::invalid_argument);
}

TEST(CliqueGraph, RespectsTheorem2) {
  for (std::uint32_t n : {50u, 100u, 150u}) {
    if (!clique_feasible(n, 24)) continue;
    EXPECT_GE(clique_haspl(n, 24), haspl_lower_bound(n, 24) - 1e-12);
  }
}

TEST(Solver, TrivialSingleSwitch) {
  const auto result = solve_orp(8, 24, quick());
  EXPECT_TRUE(result.used_clique);
  EXPECT_EQ(result.switch_count, 1u);
  EXPECT_DOUBLE_EQ(result.metrics.h_aspl, 2.0);
}

TEST(Solver, UsesCliqueWhenFeasible) {
  const auto result = solve_orp(128, 24, quick());
  EXPECT_TRUE(result.used_clique);
  EXPECT_EQ(result.switch_count, 8u);
  EXPECT_NEAR(result.metrics.h_aspl, clique_haspl(128, 24), 1e-12);
}

TEST(Solver, SearchPathProducesValidGraph) {
  const auto result = solve_orp(256, 12, quick());
  EXPECT_FALSE(result.used_clique);
  result.graph.check_invariants();
  EXPECT_TRUE(result.metrics.connected);
  EXPECT_EQ(result.graph.num_switches(), result.switch_count);
  EXPECT_EQ(result.switch_count, result.predicted_m_opt);
  EXPECT_GE(result.metrics.h_aspl, result.haspl_lower_bound - 1e-12);
}

TEST(Solver, ForcedSwitchCountIsHonored) {
  SolveOptions options = quick(600);
  options.force_switch_count = 40;
  const auto result = solve_orp(256, 12, options);
  EXPECT_EQ(result.graph.num_switches(), 40u);
  EXPECT_FALSE(result.used_clique);
}

TEST(Solver, ForcedInfeasibleSwitchCountThrows) {
  SolveOptions options = quick(100);
  options.force_switch_count = 5;  // 5 switches cannot carry 256 hosts at r=12
  EXPECT_THROW(solve_orp(256, 12, options), std::invalid_argument);
}

TEST(Solver, RestartsKeepBest) {
  SolveOptions one = quick(500);
  one.restarts = 1;
  one.seed = 42;
  SolveOptions three = quick(500);
  three.restarts = 3;
  three.seed = 42;
  const auto r1 = solve_orp(192, 10, one);
  const auto r3 = solve_orp(192, 10, three);
  EXPECT_LE(r3.metrics.total_length, r1.metrics.total_length);
}

TEST(Solver, PooledRestartsMatchSerialRestarts) {
  // Restart scheduling must not affect results: each restart draws from
  // its own deterministic sub-stream.
  SolveOptions serial = quick(400);
  serial.restarts = 3;
  serial.seed = 77;
  SolveOptions pooled = serial;
  ThreadPool pool(3);
  pooled.pool = &pool;
  const auto a = solve_orp(192, 10, serial);
  const auto b = solve_orp(192, 10, pooled);
  EXPECT_TRUE(a.graph == b.graph);
  EXPECT_EQ(a.metrics.total_length, b.metrics.total_length);
}

TEST(Solver, SolutionBeatsNaiveRandomOnAverage) {
  // SA at m_opt should land well under the continuous Moore bound + 20%.
  const auto result = solve_orp(256, 12, quick(2500));
  EXPECT_LT(result.metrics.h_aspl, result.continuous_moore_bound * 1.2);
}

TEST(Solver, RejectsDegenerateInputs) {
  EXPECT_THROW(solve_orp(1, 12, quick()), std::invalid_argument);
  EXPECT_THROW(solve_orp(100, 2, quick()), std::invalid_argument);
}

}  // namespace
}  // namespace orp

// Tests for the link-failure Monte-Carlo study, the Graph Golf edge-list
// interop, and the diameter-then-ASPL annealing objective.
#include <gtest/gtest.h>

#include <sstream>

#include "common/prng.hpp"
#include "hsg/analysis.hpp"
#include "hsg/io.hpp"
#include "hsg/metrics.hpp"
#include "search/odp.hpp"
#include "search/random_init.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

// ---- fault injection -------------------------------------------------------

TEST(Resilience, ZeroFailureRateIsHarmless) {
  const auto g = build_torus(TorusParams{2, 4, 8}, 32);
  Xoshiro256 rng(1);
  const auto impact = link_failure_impact(g, 0.0, 5, rng);
  EXPECT_DOUBLE_EQ(impact.disconnect_probability, 0.0);
  EXPECT_DOUBLE_EQ(impact.mean_haspl_inflation, 0.0);
  EXPECT_EQ(impact.connected_trials, 5);
}

TEST(Resilience, FailuresInflateHaspl) {
  const auto g = build_torus(TorusParams{2, 6, 8}, 36);
  Xoshiro256 rng(2);
  const auto impact = link_failure_impact(g, 0.08, 20, rng);
  EXPECT_GT(impact.connected_trials, 0);
  EXPECT_GT(impact.mean_haspl_inflation, 0.0);
  EXPECT_GE(impact.max_haspl_inflation, impact.mean_haspl_inflation);
}

TEST(Resilience, TreeSnapsImmediately) {
  // A path of switches disconnects whenever any inter-switch cable fails.
  HostSwitchGraph g(4, 4, 4);
  for (HostId h = 0; h < 4; ++h) g.attach_host(h, h);
  for (SwitchId s = 0; s + 1 < 4; ++s) g.add_switch_edge(s, s + 1);
  Xoshiro256 rng(3);
  const auto impact = link_failure_impact(g, 0.5, 40, rng);
  EXPECT_GT(impact.disconnect_probability, 0.5);  // 1 - 0.5^3 = 0.875 expected
}

TEST(Resilience, RicherGraphsDisconnectLess) {
  // Same switch count: a ring (degree 2) vs a random saturated graph
  // (degree ~6) — redundancy pays.
  HostSwitchGraph ring(16, 16, 8);
  for (HostId h = 0; h < 16; ++h) ring.attach_host(h, h);
  for (SwitchId s = 0; s < 16; ++s) ring.add_switch_edge(s, (s + 1) % 16);
  Xoshiro256 init_rng(4);
  const auto dense = random_host_switch_graph(16, 16, 8, init_rng);

  Xoshiro256 rng_a(5), rng_b(5);
  const auto ring_impact = link_failure_impact(ring, 0.15, 40, rng_a);
  const auto dense_impact = link_failure_impact(dense, 0.15, 40, rng_b);
  EXPECT_GT(ring_impact.disconnect_probability,
            dense_impact.disconnect_probability);
}

TEST(Resilience, RejectsBadArguments) {
  const auto g = build_torus(TorusParams{2, 4, 8}, 32);
  Xoshiro256 rng(1);
  EXPECT_THROW(link_failure_impact(g, 1.0, 5, rng), std::invalid_argument);
  EXPECT_THROW(link_failure_impact(g, 0.1, 0, rng), std::invalid_argument);
}

// ---- Graph Golf edge-list interop ------------------------------------------

TEST(EdgeList, RoundTripsOdpGraph) {
  const auto odp = solve_odp(16, 4, {.iterations = 500});
  std::stringstream buffer;
  write_edgelist(buffer, odp.graph);
  const auto loaded = read_edgelist(buffer, 16, 4);
  loaded.check_invariants();
  EXPECT_TRUE(loaded == odp.graph);
}

TEST(EdgeList, ReadsKnownGraph) {
  std::istringstream in("0 1\n1 2\n2 0  # triangle\n");
  const auto g = read_edgelist(in, 3, 2);
  EXPECT_TRUE(g.has_switch_edge(0, 1));
  EXPECT_TRUE(g.has_switch_edge(1, 2));
  EXPECT_TRUE(g.has_switch_edge(2, 0));
  EXPECT_DOUBLE_EQ(compute_switch_metrics(g).aspl, 1.0);
}

TEST(EdgeList, EnforcesDegreeBound) {
  std::istringstream in("0 1\n0 2\n0 3\n");  // vertex 0 would need degree 3
  EXPECT_THROW(read_edgelist(in, 4, 2), std::invalid_argument);
}

TEST(EdgeList, RejectsMalformedInput) {
  std::istringstream self("0 0\n");
  EXPECT_THROW(read_edgelist(self, 2, 2), std::invalid_argument);
  std::istringstream dup("0 1\n1 0\n");
  EXPECT_THROW(read_edgelist(dup, 2, 2), std::invalid_argument);
  std::istringstream range("0 9\n");
  EXPECT_THROW(read_edgelist(range, 2, 2), std::invalid_argument);
}

// ---- diameter-then-ASPL objective --------------------------------------------

TEST(DiameterObjective, NeverWorseDiameterThanHasplObjective) {
  OdpOptions haspl_options{.iterations = 2000, .restarts = 2, .seed = 7,
                           .objective = AnnealObjective::kHaspl};
  OdpOptions diameter_options = haspl_options;
  diameter_options.objective = AnnealObjective::kDiameterThenHaspl;
  const auto by_haspl = solve_odp(40, 4, haspl_options);
  const auto by_diameter = solve_odp(40, 4, diameter_options);
  EXPECT_LE(by_diameter.metrics.diameter, by_haspl.metrics.diameter);
}

TEST(DiameterObjective, StillRespectsMooreBound) {
  const auto result = solve_odp(32, 4, {.iterations = 1500,
                                        .objective = AnnealObjective::kDiameterThenHaspl});
  EXPECT_GE(result.metrics.aspl, result.moore_aspl_bound - 1e-12);
  EXPECT_TRUE(result.metrics.connected);
}

}  // namespace
}  // namespace orp

// Behavioral tests for the NAS communication skeletons: determinism,
// iteration scaling, pattern sensitivity to topology and rank mapping.
#include <gtest/gtest.h>

#include "search/solver.hpp"
#include "sim/nas.hpp"
#include "topo/attach.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

Machine small_machine() {
  return Machine(build_fattree(FatTreeParams{8}, 64), SimParams{});
}

TEST(NasBehavior, DeterministicAcrossRuns) {
  Machine m = small_machine();
  NasOptions options;
  options.iteration_fraction = 0.1;
  for (const NasKernel kernel : all_nas_kernels()) {
    const auto a = run_nas_kernel(m, kernel, options);
    const auto b = run_nas_kernel(m, kernel, options);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds) << a.name;
    EXPECT_DOUBLE_EQ(a.mops_per_second, b.mops_per_second) << a.name;
  }
}

TEST(NasBehavior, TimeScalesWithIterationFraction) {
  Machine m = small_machine();
  NasOptions tenth;
  tenth.iteration_fraction = 0.1;
  NasOptions half;
  half.iteration_fraction = 0.5;
  for (const NasKernel kernel : {NasKernel::kMG, NasKernel::kCG, NasKernel::kLU}) {
    const auto small = run_nas_kernel(m, kernel, tenth);
    const auto large = run_nas_kernel(m, kernel, half);
    // 5x the iterations => ~5x the time (exactly, given identical rounds).
    EXPECT_NEAR(large.seconds / small.seconds, 5.0, 0.35)
        << nas_kernel_name(kernel);
    // Mop/s is iteration-count invariant (same work per second).
    EXPECT_NEAR(large.mops_per_second / small.mops_per_second, 1.0, 0.07)
        << nas_kernel_name(kernel);
  }
}

TEST(NasBehavior, FullFractionMatchesClassIterations) {
  Machine m = small_machine();
  NasOptions full;
  full.iteration_fraction = 1.0;
  // Smoke: the full class-B LU (250 iterations) still simulates quickly.
  const auto lu = run_nas_kernel(m, NasKernel::kLU, full);
  EXPECT_GT(lu.seconds, 0.0);
}

TEST(NasBehavior, BadFractionThrows) {
  Machine m = small_machine();
  NasOptions bad;
  bad.iteration_fraction = 0.0;
  EXPECT_THROW(run_nas_kernel(m, NasKernel::kMG, bad), std::invalid_argument);
  bad.iteration_fraction = 1.5;
  EXPECT_THROW(run_nas_kernel(m, NasKernel::kMG, bad), std::invalid_argument);
}

TEST(NasBehavior, CommKernelsPreferLowHasplTopology) {
  // 64 ranks: fat-tree h-ASPL ~5.69 vs a single-switch star h-ASPL 2 —
  // communication-bound kernels must run faster on the star.
  HostSwitchGraph star(64, 1, 66);
  for (HostId h = 0; h < 64; ++h) star.attach_host(h, 0);
  Machine star_machine(star, SimParams{});
  Machine tree_machine = small_machine();
  NasOptions options;
  options.iteration_fraction = 0.1;
  for (const NasKernel kernel : {NasKernel::kIS, NasKernel::kFT, NasKernel::kMG}) {
    const auto on_star = run_nas_kernel(star_machine, kernel, options);
    const auto on_tree = run_nas_kernel(tree_machine, kernel, options);
    EXPECT_LT(on_star.seconds, on_tree.seconds) << nas_kernel_name(kernel);
  }
}

TEST(NasBehavior, RankMappingMovesNeighborKernels) {
  // On a 3-D torus, the identity mapping aligns MG's process grid with
  // the machine; a reversed mapping breaks locality and slows MG down
  // (or at least never speeds it up).
  const auto torus = build_torus(TorusParams{3, 4, 8}, 64);
  std::vector<HostId> reversed(64);
  for (HostId h = 0; h < 64; ++h) reversed[h] = 63 - h;
  Machine aligned(torus, SimParams{});
  Machine scrambled(torus, SimParams{}, reversed);
  NasOptions options;
  options.iteration_fraction = 0.2;
  const auto a = run_nas_kernel(aligned, NasKernel::kMG, options);
  const auto b = run_nas_kernel(scrambled, NasKernel::kMG, options);
  // Reversal maps x-neighbors to x-neighbors (|i-j| preserved), so allow
  // equality; the EP control must be mapping-invariant.
  EXPECT_LE(a.seconds, b.seconds * 1.001);
  const auto ep_a = run_nas_kernel(aligned, NasKernel::kEP, options);
  const auto ep_b = run_nas_kernel(scrambled, NasKernel::kEP, options);
  EXPECT_NEAR(ep_a.seconds, ep_b.seconds, 1e-9);
}

TEST(NasBehavior, KernelNamesRoundTrip) {
  for (const NasKernel kernel : all_nas_kernels()) {
    EXPECT_STRNE(nas_kernel_name(kernel), "?");
  }
  EXPECT_EQ(all_nas_kernels().size(), 8u);
}

}  // namespace
}  // namespace orp

// Tests for the cross-run ledger (src/obs/ledger): path resolution from
// $ORP_RUN_LEDGER, single-write O_APPEND line appends that stay intact
// under concurrent writers, and the once-per-process run record.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/ledger.hpp"

#ifdef ORP_OBS_DISABLED

namespace orp {
namespace {

TEST(ObsLedgerDisabled, StubsAreInertNoOps) {
  EXPECT_TRUE(obs::ledger_path().empty());
  obs::ledger_capture_argv(0, nullptr);
  obs::ledger_note("k", "v");
  obs::ledger_artifact("x.jsonl");
  EXPECT_FALSE(obs::append_run_ledger());
  EXPECT_FALSE(obs::ledger_append_line("/tmp/never", "line"));
}

}  // namespace
}  // namespace orp

#else

#include "common/json.hpp"

namespace orp {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ObsLedger, PathResolvesFromEnvironment) {
  ::setenv("ORP_RUN_LEDGER", "/tmp/custom.jsonl", 1);
  EXPECT_EQ(obs::ledger_path(), "/tmp/custom.jsonl");
  ::setenv("ORP_RUN_LEDGER", "none", 1);
  EXPECT_TRUE(obs::ledger_path().empty());
  ::setenv("ORP_RUN_LEDGER", "off", 1);
  EXPECT_TRUE(obs::ledger_path().empty());
  ::setenv("ORP_RUN_LEDGER", "", 1);
  EXPECT_TRUE(obs::ledger_path().empty());
  ::unsetenv("ORP_RUN_LEDGER");
  EXPECT_EQ(obs::ledger_path(), obs::kDefaultLedgerPath);
}

TEST(ObsLedger, AppendCreatesParentDirectories) {
  const std::string path =
      testing::TempDir() + "ledger_nested/deeper/runs.jsonl";
  ASSERT_TRUE(obs::ledger_append_line(path, "{\"a\":1}"));
  ASSERT_TRUE(obs::ledger_append_line(path, "{\"b\":2}"));
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"b\":2}");
  std::remove(path.c_str());
}

TEST(ObsLedger, ConcurrentWritersNeverTearLines) {
  // Every record is one O_APPEND write(); with 8 threads racing 200
  // appends each, all 1600 lines must come back intact — a torn line
  // would change its length or payload.
  const std::string path = testing::TempDir() + "ledger_concurrent.jsonl";
  std::remove(path.c_str());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  const std::string payload(256, 'x');
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string line = "{\"writer\":" + std::to_string(t) +
                                 ",\"seq\":" + std::to_string(i) +
                                 ",\"pad\":\"" + payload + "\"}";
        ASSERT_TRUE(obs::ledger_append_line(path, line));
      }
    });
  }
  for (std::thread& w : writers) w.join();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<int> seen(kThreads, 0);
  for (const std::string& line : lines) {
    const JsonValue doc = JsonValue::parse(line);  // throws on a torn line
    const int writer = static_cast<int>(doc.at("writer").as_number());
    ASSERT_GE(writer, 0);
    ASSERT_LT(writer, kThreads);
    EXPECT_EQ(doc.at("pad").as_string(), payload);
    ++seen[writer];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(seen[t], kPerThread);
  std::remove(path.c_str());
}

TEST(ObsLedger, AppendRunLedgerWritesOneParsableRecord) {
  const std::string path = testing::TempDir() + "ledger_run.jsonl";
  std::remove(path.c_str());
  ::setenv("ORP_RUN_LEDGER", path.c_str(), 1);

  const char* argv[] = {"/usr/bin/fake_tool", "--obs-out", "t.jsonl"};
  obs::ledger_capture_argv(3, argv);
  obs::ledger_note("instance", "n256_r12");
  obs::ledger_note("best_haspl", 4.125);
  obs::ledger_note("iters", static_cast<std::int64_t>(5000));
  obs::ledger_note("instance", "n512_r8");  // last write per key wins
  obs::ledger_artifact("out/result.csv");

  ASSERT_TRUE(obs::append_run_ledger());
  // The record is appended at most once per process.
  ASSERT_TRUE(obs::append_run_ledger());
  ::unsetenv("ORP_RUN_LEDGER");

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue doc = JsonValue::parse(lines[0]);
  EXPECT_EQ(doc.at("schema").as_string(), obs::kLedgerSchema);
  EXPECT_EQ(doc.at("tool").as_string(), "fake_tool");  // basename of argv[0]
  ASSERT_TRUE(doc.at("argv").is_array());
  ASSERT_EQ(doc.at("argv").items().size(), 3u);
  EXPECT_EQ(doc.at("argv").items()[1].as_string(), "--obs-out");
  EXPECT_FALSE(doc.at("git_sha").as_string().empty());
  EXPECT_FALSE(doc.at("compiler").as_string().empty());
  EXPECT_GE(doc.at("wall_s").as_number(), 0.0);
  EXPECT_GT(doc.at("peak_rss_kb").as_number(), 0.0);
  const JsonValue& notes = doc.at("notes");
  ASSERT_TRUE(notes.is_object());
  EXPECT_EQ(notes.at("instance").as_string(), "n512_r8");
  EXPECT_DOUBLE_EQ(notes.at("best_haspl").as_number(), 4.125);
  EXPECT_DOUBLE_EQ(notes.at("iters").as_number(), 5000.0);
  bool saw_artifact = false;
  for (const JsonValue& item : doc.at("artifacts").items()) {
    if (item.as_string() == "out/result.csv") saw_artifact = true;
  }
  EXPECT_TRUE(saw_artifact);
  // The timestamp is ISO-8601 UTC: "YYYY-MM-DDTHH:MM:SSZ".
  const std::string& ts = doc.at("ts").as_string();
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[19], 'Z');
  std::remove(path.c_str());
}

}  // namespace
}  // namespace orp

#endif  // ORP_OBS_DISABLED

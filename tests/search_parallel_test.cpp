// Tests for the replica-exchange (parallel tempering) search backend:
// determinism across thread-pool sizes and runs, the exchange-rule
// properties the protocol's correctness rests on, structural invariants,
// quality at matched budgets, and the solver-level wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "hsg/io.hpp"
#include "search/parallel.hpp"
#include "search/random_init.hpp"
#include "search/solver.hpp"

namespace orp {
namespace {

ParallelAnnealOptions pool_options(std::uint32_t replicas,
                                   std::uint64_t per_replica_iters,
                                   std::uint64_t seed,
                                   std::uint64_t swap_interval = 64) {
  ParallelAnnealOptions options;
  options.base.iterations = per_replica_iters;
  options.base.seed = seed;
  options.base.mode = MoveMode::kTwoNeighborSwing;
  options.replicas = replicas;
  options.swap_interval = swap_interval;
  return options;
}

HostSwitchGraph test_graph(std::uint32_t n, std::uint32_t m, std::uint32_t r,
                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return random_host_switch_graph(n, m, r, rng);
}

/// Canonical byte serialization of a SolveResult-shaped outcome: the .hsg
/// edge list plus the metric integers and the full trace. Two runs are
/// "the same result" iff these bytes match.
std::string canonical_bytes(const ParallelAnnealResult& out) {
  std::ostringstream os;
  write_hsg(os, out.result.best);
  os << "total_length " << out.result.best_metrics.total_length << "\n"
     << "diameter " << out.result.best_metrics.diameter << "\n"
     << "evaluations " << out.result.evaluations << "\n"
     << "accepted " << out.result.accepted << "\n"
     << "best_replica " << out.best_replica << "\n";
  for (const AnnealTracePoint& p : out.result.trace) {
    os << p.iteration << " " << p.current_haspl << " " << p.best_haspl << " "
       << p.temperature << "\n";
  }
  for (const ReplicaStats& r : out.replicas) {
    os << r.moves << " " << r.accepted << " " << r.swaps_attempted << " "
       << r.swaps_accepted << " " << r.restarts << " " << r.best_haspl << "\n";
  }
  for (const double b : out.round_best_haspl) os << b << "\n";
  return os.str();
}

// ---- determinism ---------------------------------------------------------

// The ISSUE's core guarantee: the K=8 result is a pure function of
// (seed, K) — byte-identical across thread-pool sizes 1, 2, and
// hardware_concurrency, across pool vs no-pool execution, and across
// repeated runs in the same process.
TEST(ParallelAnnealer, K8ByteIdenticalAcrossPoolSizesAndRuns) {
  const auto initial = test_graph(96, 24, 8, 11);
  auto options = pool_options(8, 400, 77);
  options.base.trace_every = 25;

  const std::string no_pool = canonical_bytes(parallel_anneal(initial, options));

  std::vector<std::size_t> sizes = {1, 2};
  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  if (hw != 1 && hw != 2) sizes.push_back(hw);
  for (const std::size_t threads : sizes) {
    ThreadPool pool(threads);
    options.base.pool = &pool;
    EXPECT_EQ(no_pool, canonical_bytes(parallel_anneal(initial, options)))
        << "pool size " << threads;
    // Second run with the same pool: no state leaks between runs.
    EXPECT_EQ(no_pool, canonical_bytes(parallel_anneal(initial, options)))
        << "pool size " << threads << " (second run)";
  }
}

TEST(ParallelAnnealer, SwapIntervalChunkingDoesNotChangeReplicaWalks) {
  // Different swap intervals change WHEN barriers happen (so the number of
  // round_best samples differs by design) — but a single replica has no
  // exchanges, so its WALK must be chunk-invariant: same graph, same
  // step-by-step trace, same counters.
  const auto initial = test_graph(64, 16, 8, 5);
  auto fine = pool_options(1, 600, 13, /*swap_interval=*/7);
  auto coarse = pool_options(1, 600, 13, /*swap_interval=*/600);
  fine.base.trace_every = 1;
  coarse.base.trace_every = 1;
  const auto a = parallel_anneal(initial, fine);
  const auto b = parallel_anneal(initial, coarse);
  EXPECT_TRUE(a.result.best == b.result.best);
  EXPECT_EQ(a.result.evaluations, b.result.evaluations);
  EXPECT_EQ(a.result.accepted, b.result.accepted);
  ASSERT_EQ(a.result.trace.size(), b.result.trace.size());
  for (std::size_t i = 0; i < a.result.trace.size(); ++i) {
    EXPECT_EQ(a.result.trace[i].iteration, b.result.trace[i].iteration);
    EXPECT_DOUBLE_EQ(a.result.trace[i].current_haspl,
                     b.result.trace[i].current_haspl);
    EXPECT_DOUBLE_EQ(a.result.trace[i].temperature,
                     b.result.trace[i].temperature);
  }
}

TEST(ParallelAnnealer, DifferentSeedsDiverge) {
  const auto initial = test_graph(64, 16, 8, 5);
  const auto a = parallel_anneal(initial, pool_options(4, 400, 1));
  const auto b = parallel_anneal(initial, pool_options(4, 400, 2));
  EXPECT_NE(canonical_bytes(a), canonical_bytes(b));
}

// ---- structural invariants ----------------------------------------------

TEST(ParallelAnnealer, ResultSatisfiesGraphInvariants) {
  const auto initial = test_graph(96, 24, 8, 21);
  const auto out = parallel_anneal(initial, pool_options(4, 500, 3));
  out.result.best.check_invariants();
  EXPECT_TRUE(out.result.best.fully_attached());
  EXPECT_TRUE(out.result.best_metrics.connected);
  EXPECT_EQ(out.result.best.num_switch_edges(), initial.num_switch_edges());
  const auto recomputed = compute_host_metrics(out.result.best);
  EXPECT_EQ(recomputed.total_length, out.result.best_metrics.total_length);
  EXPECT_EQ(recomputed.diameter, out.result.best_metrics.diameter);
}

TEST(ParallelAnnealer, AggregatesCountersAcrossReplicas) {
  const std::uint32_t replicas = 4;
  const std::uint64_t per_replica = 300;
  const auto initial = test_graph(64, 16, 8, 9);
  const auto out = parallel_anneal(initial, pool_options(replicas, per_replica, 4));
  ASSERT_EQ(out.replicas.size(), replicas);
  std::uint64_t moves = 0, accepted = 0;
  for (const ReplicaStats& stats : out.replicas) {
    EXPECT_EQ(stats.moves, per_replica);
    moves += stats.moves;
    accepted += stats.accepted;
  }
  EXPECT_EQ(moves, replicas * per_replica);
  EXPECT_EQ(out.result.accepted, accepted);
  // evaluations = initial evaluation per replica + one per proposed move
  // (two-neighbor swing may evaluate twice per iteration), so at least
  // moves + replicas.
  EXPECT_GE(out.result.evaluations, moves + replicas);
  EXPECT_LT(out.best_replica, replicas);
  // The global best is the min over every rung's own best.
  double best_rung = out.replicas[0].best_haspl;
  for (const ReplicaStats& stats : out.replicas) {
    best_rung = std::min(best_rung, stats.best_haspl);
  }
  EXPECT_DOUBLE_EQ(out.result.best_metrics.h_aspl, best_rung);
}

// ---- exchange-rule properties (randomized) ------------------------------

TEST(ParallelExchange, LadderIsSortedStartsAtOneAndIsGeometric) {
  Xoshiro256 rng(100);
  for (int trial = 0; trial < 50; ++trial) {
    const auto k = static_cast<std::uint32_t>(1 + rng.below(12));
    const double ratio = trial % 2 == 0 ? 0.0 : 1.0 + rng.uniform() * 2.0;
    const auto ladder = temperature_ladder(k, ratio);
    ASSERT_EQ(ladder.size(), k);
    EXPECT_DOUBLE_EQ(ladder[0], 1.0);
    EXPECT_TRUE(std::is_sorted(ladder.begin(), ladder.end()));
    for (std::size_t i = 2; i < ladder.size(); ++i) {
      // Geometric: constant adjacent ratio.
      EXPECT_NEAR(ladder[i] / ladder[i - 1], ladder[1] / ladder[0], 1e-9);
    }
    if (ratio == 0.0 && k > 1) {
      EXPECT_NEAR(ladder.back(), 4.0, 1e-9);  // auto ladder tops out at 4x
    }
  }
  EXPECT_THROW(temperature_ladder(0, 0.0), std::invalid_argument);
  EXPECT_THROW(temperature_ladder(4, 0.5), std::invalid_argument);
}

TEST(ParallelExchange, SwapScheduleIsDisjointAdjacentAndAlternating) {
  Xoshiro256 rng(200);
  for (int trial = 0; trial < 100; ++trial) {
    const auto k = static_cast<std::uint32_t>(1 + rng.below(16));
    const std::uint64_t round = rng.below(1000);
    const auto pairs = swap_pairs_for_round(round, k);
    std::vector<bool> used(k, false);
    for (const auto& [lo, hi] : pairs) {
      EXPECT_EQ(hi, lo + 1);                    // adjacent rungs only
      EXPECT_EQ(lo % 2, round % 2);             // parity follows the round
      ASSERT_LT(hi, k);
      EXPECT_FALSE(used[lo]) << "rung in two pairs";
      EXPECT_FALSE(used[hi]) << "rung in two pairs";
      used[lo] = used[hi] = true;
    }
    // Consecutive rounds cover every adjacent pair.
    if (k >= 2) {
      const auto even = swap_pairs_for_round(0, k);
      const auto odd = swap_pairs_for_round(1, k);
      EXPECT_EQ(even.size() + odd.size(), k - 1);
    }
  }
}

TEST(ParallelExchange, ForcedAcceptWhenColderRungHoldsHigherEnergy) {
  Xoshiro256 rng(300);
  for (int trial = 0; trial < 200; ++trial) {
    const double t_cold = 0.01 + rng.uniform();
    const double t_hot = t_cold * (1.01 + rng.uniform());
    const double e_hot = rng.uniform() * 10.0;
    const double e_cold = e_hot + rng.uniform() * 5.0 + 1e-6;  // E_i > E_j
    const double exponent = exchange_exponent(e_cold, e_hot, t_cold, t_hot);
    EXPECT_GE(exponent, 0.0);
    // Forced accepts never draw from the stream.
    const Xoshiro256 before = rng;
    Xoshiro256 probe = rng;
    EXPECT_TRUE(accept_exchange(exponent, probe));
    Xoshiro256 untouched = before;
    EXPECT_EQ(probe(), untouched());
  }
}

TEST(ParallelExchange, UnfavorableSwapAcceptedWithMetropolisProbability) {
  // exponent = ln(p): over many draws the acceptance rate approaches p.
  Xoshiro256 rng(400);
  const double p = 0.25;
  const double exponent = std::log(p);
  int accepted = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) accepted += accept_exchange(exponent, rng);
  EXPECT_NEAR(static_cast<double>(accepted) / trials, p, 0.02);
}

// Swaps exchange configurations between rungs — the multiset of replica
// states is preserved, and the global best never regresses across rounds.
TEST(ParallelAnnealer, SwapsPreserveStateMultisetAndBestIsMonotone) {
  const auto initial = test_graph(64, 16, 8, 33);

  // Drive the exchange machinery hard: many rungs, frequent barriers.
  auto options = pool_options(6, 600, 5, /*swap_interval=*/16);
  options.stall_rounds = 0;  // isolate the pure exchange dynamics
  const auto out = parallel_anneal(initial, options);

  // Monotone global best across swap rounds.
  ASSERT_FALSE(out.round_best_haspl.empty());
  for (std::size_t i = 1; i < out.round_best_haspl.size(); ++i) {
    EXPECT_LE(out.round_best_haspl[i], out.round_best_haspl[i - 1]);
  }
  // Exchanges happened and were only ever pairwise (each accepted swap is
  // counted once on each endpoint).
  std::uint64_t attempted = 0, swapped = 0;
  for (const ReplicaStats& stats : out.replicas) {
    attempted += stats.swaps_attempted;
    swapped += stats.swaps_accepted;
    EXPECT_LE(stats.swaps_accepted, stats.swaps_attempted);
  }
  EXPECT_EQ(attempted % 2, 0u);
  EXPECT_EQ(swapped % 2, 0u);
  EXPECT_GT(attempted, 0u);

  // Multiset preservation, observed end to end: with restarts disabled
  // every move is a valid SA move or a pairwise exchange, so the total
  // edge/port budget of every rung's final state matches the initial
  // graph's (no state was duplicated or lost into a rung).
  EXPECT_EQ(out.result.best.num_switch_edges(), initial.num_switch_edges());
  EXPECT_EQ(out.result.best.num_hosts(), initial.num_hosts());
}

// The multiset-preservation property at the primitive level: applying
// swap_configuration to chains must exchange energies exactly (the pair
// (E_i, E_j) becomes (E_j, E_i); nothing is created or destroyed). Verified
// through parallel_anneal with a ladder ratio so extreme that every barrier
// swap is forced, making the exchange trajectory fully predictable.
TEST(ParallelAnnealer, ExtremeLadderStillProducesValidDeterministicResult) {
  const auto initial = test_graph(48, 12, 8, 44);
  auto options = pool_options(4, 300, 6, /*swap_interval=*/8);
  options.ladder_ratio = 50.0;  // hot rungs accept nearly everything
  const auto a = parallel_anneal(initial, options);
  const auto b = parallel_anneal(initial, options);
  EXPECT_EQ(canonical_bytes(a), canonical_bytes(b));
  a.result.best.check_invariants();
  EXPECT_TRUE(a.result.best_metrics.connected);
}

// ---- quality -------------------------------------------------------------

// The wall-clock claim, phrased deterministically: on K cores the pool
// backend runs K replicas in the time the serial annealer runs one chain,
// so at EQUAL WALL TIME pool-K8 affords 8x the total moves. Compare the
// two at the same per-chain move count (= same wall time on 8 cores): the
// tempered population must do at least as well as the single serial chain.
TEST(ParallelAnnealer, TemperedPopulationBeatsSerialAtEqualWallTimeBudget) {
  const std::uint64_t per_chain = 2000;
  const auto initial = test_graph(256, 55, 12, 7);

  AnnealOptions serial_options;
  serial_options.iterations = per_chain;
  serial_options.seed = 99;
  serial_options.mode = MoveMode::kTwoNeighborSwing;
  const auto serial = anneal(initial, serial_options);

  ParallelAnnealOptions pool_opts = pool_options(8, per_chain, 99, 64);
  const auto pool = parallel_anneal(initial, pool_opts);

  EXPECT_LE(pool.result.best_metrics.total_length,
            serial.best_metrics.total_length);
}

// ---- solver wiring -------------------------------------------------------

TEST(ParallelSolver, ParsesBackendNames) {
  EXPECT_EQ(parse_search_backend("serial"), SearchBackend::kSerial);
  EXPECT_EQ(parse_search_backend("pool"), SearchBackend::kPool);
  EXPECT_THROW(parse_search_backend("mpi"), std::invalid_argument);
  EXPECT_STREQ(search_backend_name(SearchBackend::kSerial), "serial");
  EXPECT_STREQ(search_backend_name(SearchBackend::kPool), "pool");
}

TEST(ParallelSolver, PoolBackendSplitsBudgetAcrossReplicas) {
  SolveOptions options;
  options.iterations = 2000;
  options.seed = 12;
  options.backend = SearchBackend::kPool;
  options.replicas = 4;
  options.swap_interval = 100;
  options.force_switch_count = 16;
  const auto result = solve_orp(64, 8, options);
  result.graph.check_invariants();
  EXPECT_TRUE(result.metrics.connected);
  EXPECT_FALSE(result.used_clique);
  EXPECT_FALSE(result.interrupted);
}

TEST(ParallelSolver, PoolBackendDeterministicAcrossPoolSizes) {
  SolveOptions options;
  options.iterations = 1600;
  options.seed = 8;
  options.backend = SearchBackend::kPool;
  options.replicas = 8;
  options.swap_interval = 50;
  options.force_switch_count = 16;
  options.restarts = 2;

  auto bytes = [&](ThreadPool* pool) {
    options.pool = pool;
    const auto result = solve_orp(64, 8, options);
    std::ostringstream os;
    write_hsg(os, result.graph);
    os << result.metrics.total_length << " " << result.metrics.diameter;
    return os.str();
  };

  const std::string serial_run = bytes(nullptr);
  ThreadPool one(1), two(2);
  EXPECT_EQ(serial_run, bytes(&one));
  EXPECT_EQ(serial_run, bytes(&two));
}

}  // namespace
}  // namespace orp

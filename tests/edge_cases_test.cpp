// Corner-case coverage across modules: degenerate topology parameters,
// solver reuse, scratch-state reset, and API misuses that must throw.
#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "sim/fairshare.hpp"
#include "sim/packet.hpp"
#include "sim/routing.hpp"
#include "topo/dragonfly.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

TEST(EdgeCases, TableAutoOpensFirstRow) {
  Table t({"a", "b"});
  t.add("x").add("y");  // no explicit row()
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row_cells(0), (std::vector<std::string>{"x", "y"}));
}

TEST(EdgeCases, TableShortRowsPrintPadded) {
  Table t({"a", "b", "c"});
  t.row().add("only");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(EdgeCases, CliFlagRejectsValue) {
  CliParser cli("p", "t");
  cli.flag("verbose", "talk");
  const char* argv[] = {"p", "--verbose=1"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(EdgeCases, CliMissingValueThrows) {
  CliParser cli("p", "t");
  cli.option("n", "", "hosts");
  const char* argv[] = {"p", "--n"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(EdgeCases, SmallestDragonflyIsValid) {
  // a = 2: h = p = 1, g = 3, m = 6, r = 3.
  const DragonflyParams params{2};
  EXPECT_EQ(params.radix(), 3u);
  EXPECT_EQ(dragonfly_switch_count(params), 6u);
  const auto g = build_dragonfly(params, 6);
  g.check_invariants();
  EXPECT_TRUE(g.switches_connected());
}

TEST(EdgeCases, TwoSwitchTorusLine) {
  // dims=1, base=2: two switches, one cable.
  const TorusParams params{1, 2, 4};
  EXPECT_EQ(torus_link_degree(params), 1u);
  const auto g = build_torus(params, 6);
  EXPECT_EQ(g.num_switch_edges(), 1u);
  EXPECT_TRUE(g.switches_connected());
}

TEST(EdgeCases, RoutingThroughHostlessSwitches) {
  // Hosts only on the endpoints of a 4-switch path; transit switches have
  // no hosts but must still carry the route.
  HostSwitchGraph g(2, 4, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 3);
  for (SwitchId s = 0; s + 1 < 4; ++s) g.add_switch_edge(s, s + 1);
  const RoutingTable routes(g);
  std::vector<LinkId> path;
  EXPECT_EQ(routes.append_host_path(0, 1, path), 5u);
}

TEST(EdgeCases, FairShareSolverScratchResetsBetweenCalls) {
  FairShareSolver solver(8, 1e9);
  std::vector<double> rates;
  // First call touches links 0..3.
  std::vector<std::vector<LinkId>> paths1{{0, 1}, {2, 3}};
  std::vector<std::uint8_t> active1{1, 1};
  solver.solve(paths1, active1, rates);
  EXPECT_DOUBLE_EQ(rates[0], 1e9);
  // Second call touches a different link set; stale slots must not leak.
  std::vector<std::vector<LinkId>> paths2{{4}, {4}, {5, 6, 7}};
  std::vector<std::uint8_t> active2{1, 1, 1};
  solver.solve(paths2, active2, rates);
  EXPECT_DOUBLE_EQ(rates[0], 0.5e9);
  EXPECT_DOUBLE_EQ(rates[1], 0.5e9);
  EXPECT_DOUBLE_EQ(rates[2], 1e9);
}

TEST(EdgeCases, FairShareIgnoresInactiveFlows) {
  FairShareSolver solver(4, 1e9);
  std::vector<std::vector<LinkId>> paths{{0}, {0}};
  std::vector<std::uint8_t> active{1, 0};
  std::vector<double> rates;
  solver.solve(paths, active, rates);
  EXPECT_DOUBLE_EQ(rates[0], 1e9);  // inactive flow does not share
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
}

TEST(EdgeCases, PacketMachineRejectsBadRankMap) {
  HostSwitchGraph g(2, 1, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  EXPECT_THROW(PacketMachine(g, PacketSimParams{}, {0, 0}), std::invalid_argument);
  EXPECT_THROW(PacketMachine(g, PacketSimParams{}, {0}), std::invalid_argument);
}

TEST(EdgeCases, PacketMachineHonorsRankMap) {
  // Dumbbell with a permuted map: ranks 0,1 land on different switches.
  HostSwitchGraph g(4, 2, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  g.attach_host(2, 1);
  g.attach_host(3, 1);
  g.add_switch_edge(0, 1);
  PacketSimParams params;
  params.base.link_bandwidth = 1e9;
  params.base.hop_latency = 1e-6;
  params.base.mpi_overhead = 0;
  PacketMachine same(g, params);               // ranks 0,1 share switch 0
  PacketMachine split(g, params, {0, 2, 1, 3});  // rank 1 -> host 2 (switch 1)
  const auto t_same = same.phase({{0, 1, 4096}});
  const auto t_split = split.phase({{0, 1, 4096}});
  EXPECT_LT(t_same.elapsed, t_split.elapsed);  // extra hop costs time
}

TEST(EdgeCases, XoshiroBelowOneAlwaysZero) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

}  // namespace
}  // namespace orp

// Tests for collective algorithms on NON-power-of-two rank counts (the
// fallback paths: reduce+bcast allreduce, ring allgather, shifted-partner
// alltoall).
#include <gtest/gtest.h>

#include <set>

#include "sim/machine.hpp"

namespace orp {
namespace {

SimParams simple_params() {
  SimParams p;
  p.link_bandwidth = 1e9;
  p.hop_latency = 1e-6;
  p.mpi_overhead = 1e-6;
  return p;
}

HostSwitchGraph star_graph(std::uint32_t n) {
  HostSwitchGraph g(n, 1, n + 2);
  for (HostId h = 0; h < n; ++h) g.attach_host(h, 0);
  return g;
}

class NonPowerOfTwoCollectives : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NonPowerOfTwoCollectives, AllCollectivesTerminateWithPositiveTime) {
  const std::uint32_t n = GetParam();
  Machine m(star_graph(n), simple_params());
  EXPECT_GT(m.barrier(), 0.0);
  EXPECT_GT(m.bcast(1000), 0.0);
  EXPECT_GT(m.reduce(1000), 0.0);
  EXPECT_GT(m.allreduce(1000), 0.0);
  EXPECT_GT(m.allgather(1000), 0.0);
  EXPECT_GT(m.alltoall(100), 0.0);
  EXPECT_GT(m.scatter(1000), 0.0);
  EXPECT_GT(m.gather(1000), 0.0);
  EXPECT_GT(m.reduce_scatter(1000), 0.0);
  EXPECT_GT(m.ring_allreduce(10000), 0.0);
}

INSTANTIATE_TEST_SUITE_P(OddSizes, NonPowerOfTwoCollectives,
                         ::testing::Values(3u, 5u, 6u, 7u, 9u, 12u, 15u));

TEST(NonPowerOfTwo, AllreduceFallsBackToReduceBcast) {
  Machine m(star_graph(6), simple_params());
  const double allreduce_time = m.allreduce(100000);
  m.reset();
  const double reduce_time = m.reduce(100000);
  const double bcast_time = m.bcast(100000);
  EXPECT_NEAR(allreduce_time, reduce_time + bcast_time, 1e-12);
}

TEST(NonPowerOfTwo, AlltoallShiftedPartnersCoverAllPairs) {
  // alltoallv with a recorder: every ordered pair (src != dst) must be
  // messaged exactly once across the rounds.
  Machine m(star_graph(6), simple_params());
  std::set<std::pair<Rank, Rank>> seen;
  m.alltoallv([&](Rank src, Rank dst) {
    EXPECT_TRUE(seen.insert({src, dst}).second) << src << "->" << dst;
    return std::uint64_t{1};
  });
  EXPECT_EQ(seen.size(), 6u * 5u);
}

TEST(PowerOfTwo, AlltoallXorPartnersCoverAllPairs) {
  // The XOR pairing (power-of-two path) must also message every ordered
  // pair exactly once.
  Machine m(star_graph(8), simple_params());
  std::set<std::pair<Rank, Rank>> seen;
  m.alltoallv([&](Rank src, Rank dst) {
    EXPECT_TRUE(seen.insert({src, dst}).second) << src << "->" << dst;
    return std::uint64_t{1};
  });
  EXPECT_EQ(seen.size(), 8u * 7u);
}

TEST(NonPowerOfTwo, ScatterDeliversAllSubtrees) {
  // 6 ranks: top = 8; strides 4, 2, 1. Root sends min(4, 6-4)=2 blocks at
  // stride 4; 2 senders x up-to-2 blocks at stride 2; 2-3 senders at 1.
  Machine m(star_graph(6), simple_params());
  const double elapsed = m.scatter(100000000);
  // Bottleneck round: stride-2 round moves 2 blocks from rank 0 (0.2 s).
  EXPECT_GT(elapsed, 0.35);
  EXPECT_LT(elapsed, 0.75);
}

TEST(NonPowerOfTwo, BarrierDisseminationRounds) {
  // ceil(log2(6)) = 3 rounds of zero-byte messages.
  Machine m(star_graph(6), simple_params());
  const double elapsed = m.barrier();
  EXPECT_NEAR(elapsed, 3 * 3e-6, 1e-9);
}

TEST(NonPowerOfTwo, RingAllgatherMatchesByHand) {
  // 5 ranks, ring allgather: 4 rounds of 1e8 bytes on disjoint host links.
  Machine m(star_graph(5), simple_params());
  const double elapsed = m.allgather(100000000);
  EXPECT_NEAR(elapsed, 0.4 + 4 * 3e-6, 1e-7);
}

}  // namespace
}  // namespace orp

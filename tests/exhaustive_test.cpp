// Brute-force reference: exhaustively enumerate ALL host-switch graphs on
// tiny instances and compare the true ORP optimum against (a) the
// Theorem-2 lower bound, (b) the clique construction, and (c) the SA
// solver. This is the strongest correctness evidence the suite has — the
// bounds and constructions must bracket an optimum computed from first
// principles.
#include <gtest/gtest.h>

#include <optional>

#include "hsg/bounds.hpp"
#include "hsg/metrics.hpp"
#include "search/clique.hpp"
#include "search/random_init.hpp"
#include "search/solver.hpp"

namespace orp {
namespace {

// Enumerates every valid host-switch graph with exactly `m` switches (all
// carrying >= 0 hosts, total n, radix r, connected switch graph) and
// returns the minimum h-ASPL. Host identities don't matter, so host
// assignments enumerate as compositions of n into m parts.
std::optional<double> best_haspl_with_m(std::uint32_t n, std::uint32_t m,
                                        std::uint32_t r) {
  // Edge subsets of the complete graph on m switches.
  std::vector<std::pair<SwitchId, SwitchId>> all_edges;
  for (SwitchId a = 0; a < m; ++a) {
    for (SwitchId b = a + 1; b < m; ++b) all_edges.emplace_back(a, b);
  }
  const std::uint32_t num_edges = static_cast<std::uint32_t>(all_edges.size());
  ORP_REQUIRE(num_edges <= 20, "instance too large for exhaustive search");

  std::optional<double> best;
  // Host compositions: counts[i] in [0, r], sum == n.
  std::vector<std::uint32_t> counts(m, 0);
  auto for_each_composition = [&](auto&& self, std::uint32_t index,
                                  std::uint32_t remaining,
                                  auto&& body) -> void {
    if (index + 1 == m) {
      if (remaining <= r) {
        counts[index] = remaining;
        body();
      }
      return;
    }
    for (std::uint32_t k = 0; k <= std::min(remaining, r); ++k) {
      counts[index] = k;
      self(self, index + 1, remaining - k, body);
    }
  };

  for_each_composition(for_each_composition, 0, n, [&] {
    for (std::uint32_t mask = 0; mask < (1u << num_edges); ++mask) {
      HostSwitchGraph g(n, m, r);
      bool valid = true;
      // Attach hosts first (they claim ports).
      HostId next = 0;
      for (SwitchId s = 0; s < m && valid; ++s) {
        for (std::uint32_t i = 0; i < counts[s]; ++i) g.attach_host(next++, s);
      }
      for (std::uint32_t e = 0; e < num_edges && valid; ++e) {
        if (!(mask & (1u << e))) continue;
        const auto [a, b] = all_edges[e];
        if (g.free_ports(a) == 0 || g.free_ports(b) == 0) {
          valid = false;
          break;
        }
        g.add_switch_edge(a, b);
      }
      if (!valid || !g.switches_connected()) continue;
      const auto metrics = compute_host_metrics(g);
      if (!metrics.connected) continue;
      if (!best || metrics.h_aspl < *best) best = metrics.h_aspl;
    }
  });
  return best;
}

// True optimum over m in [1, max_m].
double exhaustive_optimum(std::uint32_t n, std::uint32_t r, std::uint32_t max_m) {
  std::optional<double> best;
  for (std::uint32_t m = 1; m <= max_m; ++m) {
    const auto with_m = best_haspl_with_m(n, m, r);
    if (with_m && (!best || *with_m < *best)) best = with_m;
  }
  EXPECT_TRUE(best.has_value());
  return *best;
}

struct TinyCase {
  std::uint32_t n, r, max_m;
};

class ExhaustiveOrp : public ::testing::TestWithParam<TinyCase> {};

TEST_P(ExhaustiveOrp, BoundsAndConstructionsBracketTheTrueOptimum) {
  const auto [n, r, max_m] = GetParam();
  const double optimum = exhaustive_optimum(n, r, max_m);

  // (a) Theorem 2 really lower-bounds the optimum.
  EXPECT_LE(haspl_lower_bound(n, r), optimum + 1e-12) << "n=" << n << " r=" << r;

  // (b) Where a clique fits, the clique construction IS the optimum
  // (Appendix Theorem 3).
  if (clique_feasible(n, r) && clique_switch_count(n, r) <= max_m) {
    EXPECT_NEAR(clique_haspl(n, r), optimum, 1e-12) << "n=" << n << " r=" << r;
  }

  // (c) The search machinery reaches the optimum on instances this small:
  // the best result over the unforced solver (which applies the clique
  // construction where feasible — required, because at m = 2 no swing
  // move exists and SA alone cannot rebalance hosts) plus an explicit SA
  // sweep over m matches the enumeration. (The default solver fixes
  // m = m_opt; the continuous-Moore prediction is an asymptotic argument,
  // so tiny instances sweep m explicitly.)
  SolveOptions default_options;
  default_options.iterations = 1500;
  double solver_best = solve_orp(n, r, default_options).metrics.h_aspl;
  for (std::uint32_t m = 1; m <= max_m; ++m) {
    if (!random_init_feasible(n, m, r)) continue;
    SolveOptions options;
    options.iterations = 1500;
    options.restarts = 2;
    options.force_switch_count = m;
    solver_best = std::min(solver_best, solve_orp(n, r, options).metrics.h_aspl);
  }
  EXPECT_NEAR(solver_best, optimum, 1e-9) << "n=" << n << " r=" << r;
}

// Instances sized so the full enumeration stays < 1s each.
INSTANTIATE_TEST_SUITE_P(TinyInstances, ExhaustiveOrp,
                         ::testing::Values(TinyCase{4, 3, 4}, TinyCase{5, 3, 4},
                                           TinyCase{5, 4, 4}, TinyCase{6, 4, 4},
                                           TinyCase{6, 5, 4}, TinyCase{7, 4, 4},
                                           TinyCase{8, 5, 4}));

}  // namespace
}  // namespace orp

// Tests for the channel-dependency cycle checker and up*/down* routing.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "hsg/metrics.hpp"
#include "search/random_init.hpp"
#include "sim/updown.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

TEST(DeadlockCheck, TreeRoutingIsAcyclic) {
  // A path of switches: routes never turn, no cycle possible.
  HostSwitchGraph g(2, 4, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 3);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  g.add_switch_edge(2, 3);
  EXPECT_FALSE(shortest_path_routing_has_cycle(g, RoutingTable(g)));
}

TEST(DeadlockCheck, TorusShortestPathsDeadlock) {
  // Rings are the canonical deadlock example: minimal routing around a
  // cycle creates a cyclic channel dependency.
  const auto g = build_torus(TorusParams{1, 6, 4}, 6);
  EXPECT_TRUE(shortest_path_routing_has_cycle(g, RoutingTable(g)));
}

TEST(DeadlockCheck, RandomIrregularTopologiesUsuallyDeadlock) {
  // The hazard the up*/down* router exists for: shortest paths on searched
  // irregular topologies form CDG cycles.
  int cyclic = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Xoshiro256 rng(seed);
    const auto g = random_host_switch_graph(96, 24, 8, rng);
    cyclic += shortest_path_routing_has_cycle(g, RoutingTable(g));
  }
  EXPECT_GE(cyclic, 3);
}

TEST(UpDown, LevelsFollowBfs) {
  const auto g = build_torus(TorusParams{1, 6, 4}, 6);  // ring of 6
  const UpDownRouting routing(g, 0);
  EXPECT_EQ(routing.level(0), 0u);
  EXPECT_EQ(routing.level(1), 1u);
  EXPECT_EQ(routing.level(5), 1u);
  EXPECT_EQ(routing.level(3), 3u);
}

TEST(UpDown, DistancesAtLeastShortest) {
  Xoshiro256 rng(5);
  const auto g = random_host_switch_graph(80, 20, 8, rng);
  const RoutingTable shortest(g);
  const UpDownRouting updown(g, 0);
  for (SwitchId s = 0; s < 20; ++s) {
    for (SwitchId t = 0; t < 20; ++t) {
      if (s == t) continue;
      EXPECT_GE(updown.switch_distance(s, t), shortest.switch_distance(s, t));
      EXPECT_NE(updown.switch_distance(s, t), UpDownRouting::kUnreachable);
    }
  }
}

TEST(UpDown, RingDetour) {
  // Ring of 6 rooted at 0: the hop 3->4 is "up" toward... levels are
  // 0,1,2,3,2,1; the pair (2,4) has shortest distance 2 (via 3) but that
  // route goes down (2->3) then up (3->4), which is illegal; the legal
  // route climbs 2->1->0->5->4 = 4 hops.
  const auto g = build_torus(TorusParams{1, 6, 4}, 6);
  const UpDownRouting routing(g, 0);
  const RoutingTable shortest(g);
  EXPECT_EQ(shortest.switch_distance(2, 4), 2u);
  EXPECT_EQ(routing.switch_distance(2, 4), 4u);
}

TEST(UpDown, FatTreeIsNativeUpDown) {
  // The fat-tree's shortest paths already go up then down, so up*/down*
  // adds zero inflation (with the root in the core layer).
  // Switch ids: [0,8) edge, [8,16) aggregation, [16,20) core.
  const auto g = build_fattree(FatTreeParams{4}, 16);
  const UpDownRouting routing(g, /*root=*/16);  // a core switch
  const auto metrics = compute_host_metrics(g);
  EXPECT_DOUBLE_EQ(routing.routed_haspl(g), metrics.h_aspl);
  EXPECT_EQ(routing.routed_diameter(g), metrics.diameter);
}

TEST(UpDown, RoutedHasplBoundsGraphHaspl) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Xoshiro256 rng(seed);
    const auto g = random_host_switch_graph(96, 24, 8, rng);
    const auto metrics = compute_host_metrics(g);
    const UpDownRouting routing(g, 0);
    EXPECT_GE(routing.routed_haspl(g), metrics.h_aspl - 1e-12) << "seed=" << seed;
    EXPECT_GE(routing.routed_diameter(g), metrics.diameter) << "seed=" << seed;
  }
}

TEST(UpDown, RootChoiceChangesInflation) {
  Xoshiro256 rng(9);
  const auto g = random_host_switch_graph(96, 24, 8, rng);
  double best = 1e9, worst = 0;
  for (SwitchId root = 0; root < 8; ++root) {
    const double haspl = UpDownRouting(g, root).routed_haspl(g);
    best = std::min(best, haspl);
    worst = std::max(worst, haspl);
  }
  EXPECT_LE(best, worst);  // and typically strictly — roots matter
  EXPECT_GT(worst, 0.0);
}

TEST(UpDown, SingleSwitchTrivial) {
  HostSwitchGraph g(3, 1, 4);
  for (HostId h = 0; h < 3; ++h) g.attach_host(h, 0);
  const UpDownRouting routing(g, 0);
  EXPECT_DOUBLE_EQ(routing.routed_haspl(g), 2.0);
  EXPECT_EQ(routing.routed_diameter(g), 2u);
}

}  // namespace
}  // namespace orp

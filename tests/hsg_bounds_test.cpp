// Tests for the §4/§5 bounds: Theorem 1, Theorem 2, the Moore bound, its
// continuous extension, Eq. (1)/(2), and the m_opt predictor.
#include <gtest/gtest.h>

#include <cmath>

#include "hsg/bounds.hpp"
#include "hsg/metrics.hpp"
#include "search/clique.hpp"

namespace orp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(DiameterBound, MatchesTheoremOneExamples) {
  // n-1 <= (r-1)^(D-1): smallest D.
  EXPECT_EQ(diameter_lower_bound(24, 24), 2u);     // n <= r
  EXPECT_EQ(diameter_lower_bound(128, 24), 3u);    // 23^2 = 529 >= 127
  EXPECT_EQ(diameter_lower_bound(1024, 24), 4u);   // 23^2 < 1023 <= 23^3
  EXPECT_EQ(diameter_lower_bound(1024, 12), 4u);   // 11^2 < 1023 <= 11^3
  EXPECT_EQ(diameter_lower_bound(2, 8), 2u);       // clamp: hosts are 2 apart
}

TEST(DiameterBound, ExactPowerBoundary) {
  // n - 1 = (r-1)^(D-1) exactly: D stays, one more host pushes it up.
  const std::uint32_t r = 4;
  EXPECT_EQ(diameter_lower_bound(3 * 3 + 1, r), 3u);   // n-1 = 9 = 3^2
  EXPECT_EQ(diameter_lower_bound(3 * 3 + 2, r), 4u);
}

TEST(HasplBound, PaperConfigurations) {
  // n=1024, r=24: D- = 4, alpha = 23^2 - ceil((1023-529)/22) = 529-23 = 506.
  EXPECT_NEAR(haspl_lower_bound(1024, 24), 4.0 - 506.0 / 1023.0, 1e-12);
  // n=1024, r=12: alpha = 121 - ceil(902/10) = 121 - 91 = 30.
  EXPECT_NEAR(haspl_lower_bound(1024, 12), 4.0 - 30.0 / 1023.0, 1e-12);
  // n=128, r=24: alpha = 23 - ceil(104/22) = 18.
  EXPECT_NEAR(haspl_lower_bound(128, 24), 3.0 - 18.0 / 127.0, 1e-12);
}

TEST(HasplBound, ExactLevelCaseEqualsDiameterBound) {
  // n = (r-1)^(D-1) + 1 -> bound is exactly D-.
  EXPECT_DOUBLE_EQ(haspl_lower_bound(23 * 23 + 1, 24), 3.0);
  EXPECT_DOUBLE_EQ(haspl_lower_bound(11 * 11 * 11 + 1, 12), 4.0);
}

TEST(HasplBound, SmallOrdersClampToTwo) {
  EXPECT_DOUBLE_EQ(haspl_lower_bound(2, 8), 2.0);
  EXPECT_DOUBLE_EQ(haspl_lower_bound(8, 8), 2.0);
  // n=9 > r=8 needs two switches: D- = 3, alpha = 7 - ceil(1/6) = 6.
  EXPECT_DOUBLE_EQ(haspl_lower_bound(9, 8), 3.0 - 6.0 / 8.0);
}

TEST(HasplBound, NeverExceedsAchievedOptimum) {
  // The clique construction is optimal where feasible; Theorem 2 must not
  // exceed its h-ASPL.
  for (std::uint32_t n : {30u, 64u, 100u, 128u}) {
    const std::uint32_t r = 24;
    EXPECT_LE(haspl_lower_bound(n, r), clique_haspl(n, r) + 1e-12) << "n=" << n;
  }
}

TEST(MooreBound, SmallClosedForms) {
  EXPECT_DOUBLE_EQ(moore_aspl_bound(1, 5), 0.0);
  EXPECT_DOUBLE_EQ(moore_aspl_bound(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(moore_aspl_bound(5, 4), 1.0);       // complete graph K5
  EXPECT_DOUBLE_EQ(moore_aspl_bound(5, 2), 1.5);       // ring C5 achieves it
  EXPECT_DOUBLE_EQ(moore_aspl_bound(10, 3), (3 + 6 * 2) / 9.0);  // Petersen
  EXPECT_TRUE(std::isinf(moore_aspl_bound(3, 1)));
  EXPECT_TRUE(std::isinf(moore_aspl_bound(5, 0)));
}

TEST(MooreBound, ContinuousMatchesIntegerAtIntegerDegrees) {
  for (std::uint64_t n : {5ull, 16ull, 100ull, 1024ull}) {
    for (std::uint64_t k : {2ull, 3ull, 7ull, 16ull}) {
      EXPECT_NEAR(continuous_moore_aspl_bound(static_cast<double>(n),
                                              static_cast<double>(k)),
                  moore_aspl_bound(n, k), 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(MooreBound, ContinuousInfeasibleWhenDegreeTooSmall) {
  EXPECT_TRUE(std::isinf(continuous_moore_aspl_bound(100, 0.5)));
  // degree 1.5: reachable mass 1.5/0.5 = 3 < 99.
  EXPECT_TRUE(std::isinf(continuous_moore_aspl_bound(100, 1.5)));
  // Exactly at the mass boundary (N-1 = 3): feasible in the limit, and the
  // level sum converges to ASPL 2 (sum i * 1.5 * 0.5^{i-1} = 6 over mass 3).
  EXPECT_NEAR(continuous_moore_aspl_bound(4, 1.5), 2.0, 1e-6);
  EXPECT_FALSE(std::isinf(continuous_moore_aspl_bound(3.5, 1.5)));
}

TEST(MooreBound, ContinuousMonotoneInDegree) {
  double prev = kInf;
  for (double k = 2.0; k <= 12.0; k += 0.5) {
    const double bound = continuous_moore_aspl_bound(500, k);
    EXPECT_LE(bound, prev + 1e-12) << "k=" << k;
    prev = bound;
  }
}

TEST(EquationOne, SingleSwitchGivesTwo) {
  EXPECT_DOUBLE_EQ(haspl_from_switch_aspl(0.0, 10, 1), 2.0);
}

TEST(EquationOne, MatchesDerivation) {
  // A' = 1.5 on m=5, n=10 (2 hosts/switch): A = 1.5 * (50-10)/(50-5) + 2.
  EXPECT_NEAR(haspl_from_switch_aspl(1.5, 10, 5), 1.5 * 40.0 / 45.0 + 2.0, 1e-12);
}

TEST(EquationTwo, RequiresDivisibility) {
  EXPECT_THROW(regular_haspl_moore_bound(10, 3, 8), std::invalid_argument);
}

TEST(EquationTwo, InfeasibleWhenHostsExceedRadix) {
  EXPECT_TRUE(std::isinf(regular_haspl_moore_bound(100, 2, 8)));  // 50 hosts/switch
}

TEST(EquationTwo, ContinuousAgreesAtIntegerPoints) {
  const std::uint64_t n = 1024;
  const std::uint32_t r = 24;
  for (std::uint64_t m : {64ull, 128ull, 256ull, 512ull}) {
    if (n % m) continue;
    const double integer_bound = regular_haspl_moore_bound(n, m, r);
    const double continuous = continuous_haspl_moore_bound(n, static_cast<double>(m), r);
    EXPECT_NEAR(integer_bound, continuous, 1e-9) << "m=" << m;
  }
}

TEST(ContinuousBound, InfeasibleBelowPortBudget) {
  // m=1: needs n <= r.
  EXPECT_DOUBLE_EQ(continuous_haspl_moore_bound(8, 1.0, 24), 2.0);
  EXPECT_TRUE(std::isinf(continuous_haspl_moore_bound(100, 1.0, 24)));
  // Far too few switches: degree r - n/m goes negative.
  EXPECT_TRUE(std::isinf(continuous_haspl_moore_bound(1024, 10.0, 24)));
}

TEST(OptimalSwitchCount, PaperProposedTopologySizes) {
  // §6.3: the proposed topologies for n=1024 use m=194 at r=15 and m=183 at
  // r=16 — these m come from minimizing the continuous Moore bound. At
  // r=15 the bound is flat to ~7e-6 between m=194 and m=195, so we accept
  // the paper's value +/- 1 (the paper presumably broke the near-tie the
  // other way).
  const std::uint32_t m15 = optimal_switch_count(1024, 15);
  EXPECT_GE(m15, 194u);
  EXPECT_LE(m15, 195u);
  EXPECT_EQ(optimal_switch_count(1024, 16), 183u);
}

TEST(OptimalSwitchCount, MinimizerBeatsNeighbors) {
  for (std::uint32_t r : {12u, 24u}) {
    for (std::uint64_t n : {128ull, 256ull, 512ull, 1024ull}) {
      const std::uint32_t m_opt = optimal_switch_count(n, r);
      const double at_opt = continuous_haspl_moore_bound(n, m_opt, r);
      EXPECT_FALSE(std::isinf(at_opt));
      if (m_opt > 1) {
        EXPECT_LE(at_opt, continuous_haspl_moore_bound(n, m_opt - 1.0, r) + 1e-12);
      }
      EXPECT_LE(at_opt, continuous_haspl_moore_bound(n, m_opt + 1.0, r) + 1e-12);
    }
  }
}

TEST(CliqueSwitchCount, SmallestFeasibleClique) {
  EXPECT_EQ(clique_switch_count(8, 24), 1u);     // fits one switch
  EXPECT_EQ(clique_switch_count(128, 24), 8u);   // paper: m=8 for n=128, r=24
  EXPECT_EQ(clique_switch_count(1024, 24), 0u);  // no clique can carry 1024
}

TEST(CliqueSwitchCount, CapacityPeaksMidRange) {
  // Max clique capacity for r=24 is m*(r-m+1) maximized near m=12..13.
  const std::uint32_t r = 24;
  std::uint64_t best = 0;
  for (std::uint32_t m = 1; m <= r; ++m) {
    best = std::max(best, static_cast<std::uint64_t>(m) * (r - m + 1));
  }
  EXPECT_EQ(best, 156u);  // 12*13
  EXPECT_NE(clique_switch_count(156, r), 0u);
  EXPECT_EQ(clique_switch_count(157, r), 0u);
}

TEST(Bounds, RejectDegenerateArguments) {
  EXPECT_THROW(diameter_lower_bound(1, 8), std::invalid_argument);
  EXPECT_THROW(diameter_lower_bound(10, 2), std::invalid_argument);
  EXPECT_THROW(haspl_lower_bound(1, 8), std::invalid_argument);
  EXPECT_THROW(optimal_switch_count(10, 2), std::invalid_argument);
}

}  // namespace
}  // namespace orp

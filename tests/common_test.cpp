// Tests for the common substrate: PRNG, thread pool, tables, CLI.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/prng.hpp"
#include "common/require.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace orp {
namespace {

TEST(Prng, DeterministicForEqualSeeds) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Prng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Prng, BelowCoversAllResidues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, BetweenInclusiveBounds) {
  Xoshiro256 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, UniformInHalfOpenUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Prng, ShuffleIsAPermutation) {
  Xoshiro256 rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  shuffle(v, rng);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Prng, SplitProducesIndependentStream) {
  Xoshiro256 parent(23);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, WorksWithZeroWorkers) {
  ThreadPool pool(0);  // caller-only execution still valid
  std::atomic<int> sum{0};
  pool.parallel_for(5, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 10);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(3.14, 4), "3.14");
  EXPECT_EQ(format_double(2.0, 4), "2");
  EXPECT_EQ(format_double(0.5, 2), "0.5");
  EXPECT_EQ(format_double(-0.0001, 2), "0");
}

TEST(FormatDouble, HandlesNonFinite) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_double(std::nan("")), "nan");
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"m", "h-ASPL"});
  t.row().add(8).add(2.858);
  t.row().add(194).add(3.51);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("m"), std::string::npos);
  EXPECT_NE(out.find("2.858"), std::string::npos);
  EXPECT_NE(out.find("194"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.row().add("a,b").add("say \"hi\"");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli("prog", "test");
  cli.option("n", "1024", "hosts").option("radix", "", "ports").flag("verbose", "talk");
  const char* argv[] = {"prog", "--n", "128", "--radix=24", "--verbose", "pos1"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_int("n"), 128);
  EXPECT_EQ(cli.get_int("radix"), 24);
  EXPECT_TRUE(cli.has("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli("prog", "test");
  cli.option("n", "1024", "hosts");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 1024);
}

TEST(Cli, RejectsUnknownOption) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, RejectsMalformedInteger) {
  CliParser cli("prog", "test");
  cli.option("n", "", "hosts");
  const char* argv[] = {"prog", "--n", "12x"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_int("n"), std::invalid_argument);
}

TEST(Require, ThrowsWithMessage) {
  try {
    ORP_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

TEST(Json, ParsesNestedDocument) {
  const JsonValue doc = JsonValue::parse(
      "{\"schema\": \"orp-bench/1\", \"quick\": true, \"rss\": 1234,\n"
      "  \"benchmarks\": [{\"name\": \"aspl.x\", \"ns\": 12.5},\n"
      "                   {\"name\": \"sim.y\", \"ns\": -3e2}],\n"
      "  \"none\": null}");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").as_string(), "orp-bench/1");
  EXPECT_TRUE(doc.at("quick").as_bool());
  EXPECT_EQ(doc.at("rss").as_number(), 1234.0);
  EXPECT_TRUE(doc.at("none").is_null());
  const auto& benchmarks = doc.at("benchmarks").items();
  ASSERT_EQ(benchmarks.size(), 2u);
  EXPECT_EQ(benchmarks[0].at("name").as_string(), "aspl.x");
  EXPECT_DOUBLE_EQ(benchmarks[0].at("ns").as_number(), 12.5);
  EXPECT_DOUBLE_EQ(benchmarks[1].at("ns").as_number(), -300.0);
  // Objects preserve insertion order (the canonical schema relies on it).
  EXPECT_EQ(doc.members()[0].first, "schema");
  EXPECT_EQ(doc.members()[4].first, "none");
}

TEST(Json, DecodesStringEscapes) {
  const JsonValue v =
      JsonValue::parse("\"tab\\t quote\\\" slash\\\\ nl\\n\"");
  EXPECT_EQ(v.as_string(), "tab\t quote\" slash\\ nl\n");
}

TEST(Json, EscapeStringRoundTripsThroughParse) {
  const std::string raw = "a,\"b\"\n\tc\\d";
  const JsonValue v = JsonValue::parse("\"" + json_escape_string(raw) + "\"");
  EXPECT_EQ(v.as_string(), raw);
}

TEST(Json, FindAndAtDistinguishMissingKeys) {
  const JsonValue doc = JsonValue::parse("{\"a\": 1}");
  ASSERT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.find("b"), nullptr);
  EXPECT_THROW(doc.at("b"), std::runtime_error);
  EXPECT_THROW(doc.at("a").as_string(), std::runtime_error);  // kind mismatch
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\" 1}", "tru", "1 2",
                          "\"unterminated", "{\"a\":1,}", "nan"}) {
    EXPECT_THROW(JsonValue::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, BuildsDocumentsProgrammatically) {
  JsonValue arr = JsonValue::make_array();
  arr.push_back(JsonValue::make_number(1.0));
  arr.push_back(JsonValue::make_string("two"));
  JsonValue obj = JsonValue::make_object();
  obj.set("list", std::move(arr));
  obj.set("flag", JsonValue::make_bool(false));
  EXPECT_EQ(obj.at("list").items().size(), 2u);
  EXPECT_EQ(obj.at("list").items()[1].as_string(), "two");
  EXPECT_FALSE(obj.at("flag").as_bool());
}

TEST(EnvInt, FallsBackWhenUnsetOrInvalid) {
  ::unsetenv("ORP_TEST_ENV_INT");
  EXPECT_EQ(env_int("ORP_TEST_ENV_INT", 7), 7);
  ::setenv("ORP_TEST_ENV_INT", "12", 1);
  EXPECT_EQ(env_int("ORP_TEST_ENV_INT", 7), 12);
  ::setenv("ORP_TEST_ENV_INT", "bogus", 1);
  EXPECT_EQ(env_int("ORP_TEST_ENV_INT", 7), 7);
  ::unsetenv("ORP_TEST_ENV_INT");
}

}  // namespace
}  // namespace orp

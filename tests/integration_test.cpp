// Integration tests: the full pipeline the figure benches exercise —
// solve ORP, serialize, simulate, partition, and price — on small
// configurations with cross-module consistency checks.
#include <gtest/gtest.h>

#include <sstream>

#include "cost/placement.hpp"
#include "hsg/analysis.hpp"
#include "hsg/bounds.hpp"
#include "hsg/io.hpp"
#include "partition/partition.hpp"
#include "search/odp.hpp"
#include "search/solver.hpp"
#include "sim/nas.hpp"
#include "sim/traffic.hpp"
#include "topo/attach.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

SolveOptions quick(std::uint64_t iterations = 1500) {
  SolveOptions options;
  options.iterations = iterations;
  return options;
}

TEST(Integration, SolveSimulatePartitionPrice) {
  const auto design = solve_orp(64, 8, quick());
  ASSERT_TRUE(design.metrics.connected);

  // Simulate: a NAS kernel runs and is self-consistent.
  Machine machine(design.graph, SimParams{}, dfs_host_order(design.graph));
  NasOptions nas_options;
  nas_options.iteration_fraction = 0.1;
  const auto mg = run_nas_kernel(machine, NasKernel::kMG, nas_options);
  EXPECT_GT(mg.seconds, 0.0);
  EXPECT_LE(mg.comm_seconds, mg.seconds + 1e-12);

  // Partition: a valid bisection exists and its cut is plausible.
  const auto cut = host_switch_cut(design.graph, 2, 1);
  EXPECT_GT(cut, 0u);
  EXPECT_LE(cut, design.graph.num_edges());

  // Price: a bill that adds up.
  const auto bill = evaluate_network_cost(design.graph);
  EXPECT_EQ(bill.electrical_cables + bill.optical_cables, design.graph.num_edges());
  EXPECT_GT(bill.total_cost_usd(), 0.0);
}

TEST(Integration, SerializationPreservesEverything) {
  const auto design = solve_orp(48, 6, quick(800));
  std::stringstream buffer;
  write_hsg(buffer, design.graph);
  const auto loaded = read_hsg(buffer);
  EXPECT_TRUE(loaded == design.graph);
  // Same metrics, same simulation behaviour.
  const auto original = compute_host_metrics(design.graph);
  const auto reloaded = compute_host_metrics(loaded);
  EXPECT_EQ(original.total_length, reloaded.total_length);
  Machine m1(design.graph, SimParams{});
  Machine m2(loaded, SimParams{});
  EXPECT_DOUBLE_EQ(m1.alltoall(1000), m2.alltoall(1000));
}

TEST(Integration, ProposedBeatsTorusOnHasplAtMatchedRadix) {
  // The core claim at a laptop-sized instance: same n and r, the ORP
  // solution has lower h-ASPL than the torus.
  const TorusParams params{3, 3, 9};  // 27 switches, capacity 81
  const auto torus = build_torus(params, 81);
  const auto proposed = solve_orp(81, 9, quick(2500));
  const auto torus_metrics = compute_host_metrics(torus);
  EXPECT_LT(proposed.metrics.h_aspl, torus_metrics.h_aspl);
}

TEST(Integration, MeanRouteLengthTracksHaspl) {
  // End-to-end latency claim: the simulator's mean route length over all
  // rank pairs equals the metric module's h-ASPL, for both a structured
  // and a searched topology — the two stacks agree on what "end-to-end
  // latency" means.
  const TorusParams params{3, 3, 9};
  const auto torus = build_torus(params, 81);
  const auto proposed = solve_orp(81, 9, quick(2500));
  auto mean_hops = [](const HostSwitchGraph& g) {
    Machine machine(g, SimParams{});
    double sum = 0.0;
    const std::uint32_t n = g.num_hosts();
    for (Rank a = 0; a < n; ++a) {
      for (Rank b = a + 1; b < n; ++b) sum += machine.route_hops(a, b);
    }
    return sum / (n * (n - 1) / 2.0);
  };
  EXPECT_NEAR(mean_hops(torus), compute_host_metrics(torus).h_aspl, 1e-9);
  EXPECT_NEAR(mean_hops(proposed.graph), proposed.metrics.h_aspl, 1e-9);
  // And the ORP solution's average is lower (the paper's objective).
  EXPECT_LT(mean_hops(proposed.graph), mean_hops(torus));
}

TEST(Integration, RouteHopsMatchMetricDiameter) {
  const auto design = solve_orp(64, 8, quick(600));
  Machine machine(design.graph, SimParams{});
  std::uint32_t max_hops = 0;
  for (Rank a = 0; a < 64; ++a) {
    for (Rank b = 0; b < 64; ++b) {
      if (a != b) max_hops = std::max(max_hops, machine.route_hops(a, b));
    }
  }
  EXPECT_EQ(max_hops, design.metrics.diameter);
}

TEST(Integration, OdpSolutionDrivesSimulator) {
  // An ODP graph is a host-switch graph; the whole stack runs on it.
  const auto odp = solve_odp(16, 4, {.iterations = 800});
  Machine machine(odp.graph, SimParams{});
  Xoshiro256 rng(1);
  const auto traffic = run_traffic(machine, TrafficPattern::kTranspose, 100000, rng);
  EXPECT_GT(traffic.aggregate_bandwidth, 0.0);
  EXPECT_NEAR(traffic.mean_hops, odp.metrics.aspl + 2.0, 2.0);
}

TEST(Integration, PruningRedundantSwitchesKeepsSimulationEquivalent) {
  // Build a fabric with dangling switches, prune, and verify latency-only
  // traffic is unchanged (shortest paths never used the pruned switches).
  HostSwitchGraph g(4, 6, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.attach_host(2, 2);
  g.attach_host(3, 3);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  g.add_switch_edge(2, 3);
  g.add_switch_edge(3, 4);  // dangling chain
  g.add_switch_edge(4, 5);
  const auto victims = redundant_switches(g);
  ASSERT_EQ(victims.size(), 2u);
  const auto pruned = remove_switches(g, victims);
  Machine full(g, SimParams{});
  Machine slim(pruned, SimParams{});
  EXPECT_DOUBLE_EQ(full.alltoall(0), slim.alltoall(0));
}

TEST(Integration, PlacementReducesProposedCableCostMoreThanTorus) {
  const auto proposed = solve_orp(128, 10, quick(800));
  const auto torus = build_torus(TorusParams{3, 3, 12}, 128);
  auto saved_fraction = [](const HostSwitchGraph& g) {
    std::vector<std::uint32_t> identity(g.num_switches());
    for (std::uint32_t i = 0; i < g.num_switches(); ++i) identity[i] = i;
    const double before = cable_cost_under_placement(g, identity);
    const double after =
        cable_cost_under_placement(g, optimize_placement(g, 8000, 3));
    return 1.0 - after / before;
  };
  EXPECT_GE(saved_fraction(proposed.graph), saved_fraction(torus) - 1e-9);
}

TEST(Integration, FatTreeFullBisectionShowsInPartitionAndTraffic) {
  const auto fattree = build_fattree(FatTreeParams{8}, 128);
  const auto proposed = solve_orp(128, 8, quick(800));
  // Fat-tree cuts more links at the bisection...
  EXPECT_GT(host_switch_cut(fattree, 2, 5), host_switch_cut(proposed.graph, 2, 5));
  // ...but the proposed topology reaches hosts in fewer hops on average.
  EXPECT_LT(proposed.metrics.h_aspl, compute_host_metrics(fattree).h_aspl);
}

}  // namespace
}  // namespace orp

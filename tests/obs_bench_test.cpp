// Tests for the benchmark harness: robust statistics, the registry runner,
// the canonical BENCH_*.json round trip, and the regression-diff rule that
// gates CI (tools/bench_diff).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/table.hpp"
#include "obs/bench/hw_counters.hpp"
#include "obs/bench/microbench.hpp"
#include "obs/bench/provenance.hpp"
#include "obs/bench/report.hpp"

namespace orp::obs::bench {
namespace {

// ---- robust statistics ---------------------------------------------------

TEST(BenchStats, MedianOfOddAndEvenCounts) {
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(median({7.0}), 7.0);
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(BenchStats, MedianIgnoresOneOutlier) {
  // The motivating property: one preempted repetition must not move the
  // summary, unlike a mean.
  EXPECT_EQ(median({10.0, 10.0, 10.0, 10.0, 1e9}), 10.0);
}

TEST(BenchStats, ScaledMadOfConstantSeriesIsZero) {
  EXPECT_EQ(scaled_mad({5.0, 5.0, 5.0}, 5.0), 0.0);
  EXPECT_EQ(scaled_mad({}, 0.0), 0.0);
}

TEST(BenchStats, ScaledMadEstimatesSigma) {
  // |x - 3| over {1..5} = {2,1,0,1,2}; median 1; scaled by 1.4826.
  EXPECT_NEAR(scaled_mad({1.0, 2.0, 3.0, 4.0, 5.0}, 3.0), 1.4826, 1e-9);
}

// ---- registry runner -----------------------------------------------------

TEST(BenchRunner, RunsRegisteredBenchmarkAndFillsStats) {
  BenchRegistry registry;
  int setups = 0;
  registry.add({"unit.spin.tiny", "unit",
                [&setups]() -> BenchOp {
                  ++setups;
                  return [] {
                    volatile std::uint64_t acc = 0;
                    for (std::uint64_t i = 0; i < 1000; ++i) acc = acc + i;
                    do_not_optimize(acc);
                  };
                },
                true});

  RunOptions options;
  options.repetitions = 3;
  options.warmup = 1;
  options.min_rep_seconds = 1e-4;
  const BenchReport report = registry.run(options);

  EXPECT_EQ(setups, 1);  // setup runs once, outside the timed region
  ASSERT_EQ(report.entries.size(), 1u);
  const BenchEntry& entry = report.entries[0];
  EXPECT_EQ(entry.name, "unit.spin.tiny");
  EXPECT_EQ(entry.family, "unit");
  EXPECT_EQ(entry.repetitions, 3);
  EXPECT_GE(entry.iters_per_rep, 1u);
  EXPECT_GT(entry.wall.median_ns, 0.0);
  EXPECT_GT(entry.wall.min_ns, 0.0);
  EXPECT_LE(entry.wall.min_ns, entry.wall.median_ns);
  EXPECT_NEAR(entry.wall.ops_per_sec, 1e9 / entry.wall.median_ns,
              entry.wall.ops_per_sec * 1e-9);
  EXPECT_TRUE(report.counters_source == "perf_event" ||
              report.counters_source == "rusage");
  EXPECT_GT(report.peak_rss_kb, 0);
  EXPECT_FALSE(report.provenance.compiler.empty());
  EXPECT_GE(report.provenance.hardware_threads, 1);
}

TEST(BenchRunner, QuickModeAndFilterSelectBenchmarks) {
  BenchRegistry registry;
  const auto noop_setup = []() -> BenchOp {
    return [] {
      volatile int x = 0;
      do_not_optimize(x);
    };
  };
  registry.add({"unit.a.one", "unit", noop_setup, true});
  registry.add({"unit.b.two", "unit", noop_setup, false});  // full-only

  RunOptions options;
  options.repetitions = 1;
  options.warmup = 0;
  options.min_rep_seconds = 1e-6;

  options.quick = true;
  EXPECT_EQ(registry.run(options).entries.size(), 1u);

  options.quick = false;
  EXPECT_EQ(registry.run(options).entries.size(), 2u);

  options.filter = "b.two";
  const BenchReport filtered = registry.run(options);
  ASSERT_EQ(filtered.entries.size(), 1u);
  EXPECT_EQ(filtered.entries[0].name, "unit.b.two");
}

// ---- BENCH_*.json round trip ---------------------------------------------

BenchReport sample_report() {
  BenchReport report;
  report.provenance.git_sha = "abc1234";
  report.provenance.compiler = "gcc 12.2.0";
  report.provenance.flags = "-O3 -DNDEBUG";
  report.provenance.build_type = "Release";
  report.provenance.cpu_model = "Test CPU \"quoted\"";
  report.provenance.hardware_threads = 4;
  report.provenance.obs_disabled = false;
  report.counters_source = "rusage";
  report.quick = true;
  report.peak_rss_kb = 12345;
  BenchEntry entry;
  entry.name = "aspl.scalar_bfs.n256_r12";
  entry.family = "aspl";
  entry.repetitions = 5;
  entry.iters_per_rep = 7;
  entry.wall = {100.0, 125.5, 3.25, 1e9 / 125.5};
  entry.hw = {true, 400.0, 900.0, 2.25, 10.0, 2.0};
  entry.cpu_user_ns = 120.0;
  entry.cpu_sys_ns = 1.0;
  report.entries.push_back(entry);
  return report;
}

TEST(BenchReport, JsonRoundTripPreservesEveryField) {
  const BenchReport original = sample_report();
  const BenchReport parsed = report_from_json(report_to_json(original));

  EXPECT_EQ(parsed.schema, kBenchSchema);
  EXPECT_EQ(parsed.provenance.git_sha, original.provenance.git_sha);
  EXPECT_EQ(parsed.provenance.compiler, original.provenance.compiler);
  EXPECT_EQ(parsed.provenance.flags, original.provenance.flags);
  EXPECT_EQ(parsed.provenance.build_type, original.provenance.build_type);
  EXPECT_EQ(parsed.provenance.cpu_model, original.provenance.cpu_model);
  EXPECT_EQ(parsed.provenance.hardware_threads,
            original.provenance.hardware_threads);
  EXPECT_EQ(parsed.provenance.obs_disabled, original.provenance.obs_disabled);
  EXPECT_EQ(parsed.counters_source, "rusage");
  EXPECT_TRUE(parsed.quick);
  EXPECT_EQ(parsed.peak_rss_kb, 12345);
  ASSERT_EQ(parsed.entries.size(), 1u);
  const BenchEntry& entry = parsed.entries[0];
  EXPECT_EQ(entry.name, "aspl.scalar_bfs.n256_r12");
  EXPECT_EQ(entry.family, "aspl");
  EXPECT_EQ(entry.repetitions, 5);
  EXPECT_EQ(entry.iters_per_rep, 7u);
  EXPECT_DOUBLE_EQ(entry.wall.min_ns, 100.0);
  EXPECT_DOUBLE_EQ(entry.wall.median_ns, 125.5);
  EXPECT_DOUBLE_EQ(entry.wall.mad_ns, 3.25);
  ASSERT_TRUE(entry.hw.valid);
  EXPECT_DOUBLE_EQ(entry.hw.cycles, 400.0);
  EXPECT_DOUBLE_EQ(entry.hw.ipc, 2.25);
  EXPECT_DOUBLE_EQ(entry.cpu_user_ns, 120.0);
  EXPECT_DOUBLE_EQ(entry.cpu_sys_ns, 1.0);
}

TEST(BenchReport, CountersBlockIsOmittedWhenInvalid) {
  BenchReport report = sample_report();
  report.entries[0].hw.valid = false;
  const std::string json = report_to_json(report);
  EXPECT_EQ(json.find("counters_per_op"), std::string::npos);
  EXPECT_FALSE(report_from_json(json).entries[0].hw.valid);
}

TEST(BenchReport, RejectsWrongSchemaTagAndMalformedInput) {
  EXPECT_THROW(report_from_json("{\"schema\": \"orp-bench/999\"}"),
               std::runtime_error);
  EXPECT_THROW(report_from_json("not json"), std::runtime_error);
  EXPECT_THROW(report_from_json("[]"), std::runtime_error);
  EXPECT_THROW(report_from_file("/nonexistent/BENCH_missing.json"),
               std::runtime_error);
}

TEST(BenchReport, FindLocatesEntriesByName) {
  const BenchReport report = sample_report();
  ASSERT_NE(report.find("aspl.scalar_bfs.n256_r12"), nullptr);
  EXPECT_EQ(report.find("no.such.series"), nullptr);
}

// ---- regression diff -----------------------------------------------------

BenchReport one_series(const std::string& name, double median_ns,
                       double mad_ns) {
  BenchReport report;
  report.counters_source = "rusage";
  BenchEntry entry;
  entry.name = name;
  entry.family = "unit";
  entry.repetitions = 5;
  entry.iters_per_rep = 1;
  entry.wall = {median_ns, median_ns, mad_ns, 1e9 / median_ns};
  report.entries.push_back(entry);
  return report;
}

TEST(BenchDiff, SelfDiffPasses) {
  const BenchReport report = one_series("unit.x", 1000.0, 5.0);
  const DiffResult diff = diff_reports(report, report);
  ASSERT_EQ(diff.rows.size(), 1u);
  EXPECT_FALSE(diff.any_regression);
  EXPECT_FALSE(diff.rows[0].regressed);
  EXPECT_DOUBLE_EQ(diff.rows[0].ratio, 1.0);
}

TEST(BenchDiff, TwoTimesSlowdownRegresses) {
  const DiffResult diff = diff_reports(one_series("unit.x", 1000.0, 5.0),
                                       one_series("unit.x", 2000.0, 5.0));
  ASSERT_EQ(diff.rows.size(), 1u);
  EXPECT_TRUE(diff.any_regression);
  EXPECT_TRUE(diff.rows[0].regressed);
  EXPECT_DOUBLE_EQ(diff.rows[0].ratio, 2.0);
}

TEST(BenchDiff, ImprovementIsNotARegression) {
  const DiffResult diff = diff_reports(one_series("unit.x", 2000.0, 5.0),
                                       one_series("unit.x", 1000.0, 5.0));
  EXPECT_FALSE(diff.any_regression);
  ASSERT_EQ(diff.rows.size(), 1u);
  EXPECT_TRUE(diff.rows[0].improved);
}

TEST(BenchDiff, NoisySeriesNeedsABiggerJump) {
  // +30% exceeds the 25% tolerance, but the delta (300 ns) is under
  // mad_sigma (4) * the larger MAD (100 ns => 400 ns): jitter, not a
  // regression. The same ratio with a tight MAD regresses.
  EXPECT_FALSE(diff_reports(one_series("unit.x", 1000.0, 100.0),
                            one_series("unit.x", 1300.0, 20.0))
                   .any_regression);
  EXPECT_TRUE(diff_reports(one_series("unit.x", 1000.0, 2.0),
                           one_series("unit.x", 1300.0, 2.0))
                  .any_regression);
}

TEST(BenchDiff, SubFloorDeltasAreIgnored) {
  // A 2x ratio on a 5 ns series is timer granularity (delta under the
  // 10 ns absolute floor), not a regression.
  EXPECT_FALSE(diff_reports(one_series("unit.x", 5.0, 0.0),
                            one_series("unit.x", 10.0, 0.0))
                   .any_regression);
}

TEST(BenchDiff, DisjointSeriesArePartitioned) {
  BenchReport baseline = one_series("unit.gone", 100.0, 1.0);
  BenchReport current = one_series("unit.fresh", 100.0, 1.0);
  baseline.quick = true;
  current.quick = false;
  const DiffResult diff = diff_reports(baseline, current);
  EXPECT_TRUE(diff.rows.empty());
  ASSERT_EQ(diff.only_baseline.size(), 1u);
  EXPECT_EQ(diff.only_baseline[0], "unit.gone");
  ASSERT_EQ(diff.only_current.size(), 1u);
  EXPECT_EQ(diff.only_current[0], "unit.fresh");
  EXPECT_TRUE(diff.mode_mismatch);
  EXPECT_FALSE(diff.any_regression);
}

TEST(BenchDiff, CountersSourceMismatchIsFlagged) {
  BenchReport baseline = one_series("unit.x", 1000.0, 5.0);
  BenchReport current = one_series("unit.x", 1000.0, 5.0);
  baseline.counters_source = "perf_event";
  current.counters_source = "rusage";
  const DiffResult diff = diff_reports(baseline, current);
  EXPECT_TRUE(diff.counters_mismatch);
  EXPECT_FALSE(diff.any_regression);  // informational, never a verdict
  EXPECT_FALSE(diff_reports(baseline, baseline).counters_mismatch);
}

TEST(BenchDiff, HwColumnsNeedBothSidesValid) {
  BenchReport baseline = one_series("unit.x", 1000.0, 5.0);
  BenchReport current = one_series("unit.x", 1000.0, 5.0);
  baseline.counters_source = "perf_event";
  current.counters_source = "perf_event";
  baseline.entries[0].hw = {true, 3000.0, 6000.0, 2.0, 10.0, 1.0};
  // current side has no valid counters: the row must not claim hw data.
  const DiffResult half = diff_reports(baseline, current);
  ASSERT_EQ(half.rows.size(), 1u);
  EXPECT_FALSE(half.rows[0].hw_valid);

  current.entries[0].hw = {true, 3300.0, 6000.0, 1.8, 12.0, 1.5};
  const DiffResult both = diff_reports(baseline, current);
  ASSERT_EQ(both.rows.size(), 1u);
  EXPECT_TRUE(both.rows[0].hw_valid);
  EXPECT_DOUBLE_EQ(both.rows[0].old_cycles, 3000.0);
  EXPECT_DOUBLE_EQ(both.rows[0].new_cycles, 3300.0);
  EXPECT_DOUBLE_EQ(both.rows[0].old_ipc, 2.0);
  EXPECT_DOUBLE_EQ(both.rows[0].new_ipc, 1.8);
}

TEST(BenchDiff, TableSkipsHwColumnsUnlessAsked) {
  BenchReport baseline = one_series("unit.x", 1000.0, 5.0);
  BenchReport current = one_series("unit.x", 1000.0, 5.0);
  baseline.entries[0].hw = {true, 3000.0, 6000.0, 2.0, 10.0, 1.0};
  current.entries[0].hw = {true, 3300.0, 6000.0, 1.8, 12.0, 1.5};
  const DiffResult diff = diff_reports(baseline, current);

  const Table plain = diff_table(diff);
  EXPECT_EQ(plain.columns(), 5u);  // wall-clock columns only
  const Table hw = diff_table(diff, /*include_hw=*/true);
  EXPECT_EQ(hw.columns(), 9u);
  std::ostringstream os;
  hw.print(os);
  EXPECT_NE(os.str().find("cyc/op"), std::string::npos);
  EXPECT_NE(os.str().find("3300"), std::string::npos);

  // Rows without counters render as "-" placeholders, not zeros.
  BenchEntry extra = baseline.entries[0];
  extra.name = "unit.y";
  extra.hw = HwStats{};
  baseline.entries.push_back(extra);
  current.entries.push_back(extra);
  const Table mixed = diff_table(diff_reports(baseline, current), true);
  std::ostringstream mos;
  mixed.print_markdown(mos);
  EXPECT_NE(mos.str().find("| - | - | - | - |"), std::string::npos);
}

TEST(BenchDiff, TableHasOneRowPerSharedSeries) {
  BenchReport baseline = one_series("unit.x", 1000.0, 5.0);
  BenchReport current = one_series("unit.x", 2000.0, 5.0);
  BenchEntry extra = baseline.entries[0];
  extra.name = "unit.y";
  baseline.entries.push_back(extra);
  current.entries.push_back(extra);
  const Table table = diff_table(diff_reports(baseline, current));
  EXPECT_EQ(table.rows(), 2u);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("REGRESSED"), std::string::npos);
}

// ---- hardware counters ---------------------------------------------------

TEST(BenchCounters, GroupDegradesGracefully) {
  // perf_event_open is usually denied in containers; either outcome is
  // valid, but an available group must produce non-zero scaled cycles.
  HwCounterGroup group;
  if (!group.available()) {
    const HwCounterValues values = group.stop();
    EXPECT_FALSE(values.valid);
    return;
  }
  group.start();
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) acc = acc + i;
  const HwCounterValues values = group.stop();
  EXPECT_TRUE(values.valid);
  EXPECT_GT(values.cycles, 0u);
  EXPECT_GT(values.instructions, 0u);
  EXPECT_GT(values.multiplex_scale, 0.0);
}

TEST(BenchCounters, RusageFallbackAdvances) {
  const CpuTimes before = process_cpu_times();
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < 2000000; ++i) acc = acc + i;
  const CpuTimes after = process_cpu_times();
  EXPECT_GE(after.user_ns + after.system_ns, before.user_ns + before.system_ns);
  EXPECT_GT(peak_rss_kb(), 0);
}

}  // namespace
}  // namespace orp::obs::bench

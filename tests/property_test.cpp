// Property-based suites: invariants that must hold across parameter grids
// and random instances, not just on hand-picked examples.
#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.hpp"
#include "hsg/bounds.hpp"
#include "hsg/metrics.hpp"
#include "search/random_init.hpp"
#include "search/solver.hpp"
#include "sim/fairshare.hpp"
#include "sim/packet.hpp"

namespace orp {
namespace {

// ---- bound properties over random instances ------------------------------

struct BoundCase {
  std::uint32_t n, m, r;
  std::uint64_t seed;
};

class TheoremTwoIsALowerBound : public ::testing::TestWithParam<BoundCase> {};

TEST_P(TheoremTwoIsALowerBound, HoldsOnRandomGraphs) {
  const auto param = GetParam();
  Xoshiro256 rng(param.seed);
  const auto g = random_host_switch_graph(param.n, param.m, param.r, rng);
  const auto metrics = compute_host_metrics(g);
  ASSERT_TRUE(metrics.connected);
  EXPECT_GE(metrics.h_aspl, haspl_lower_bound(param.n, param.r) - 1e-12);
  EXPECT_GE(metrics.diameter, diameter_lower_bound(param.n, param.r));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphGrid, TheoremTwoIsALowerBound,
    ::testing::Values(BoundCase{64, 16, 8, 1}, BoundCase{128, 25, 10, 2},
                      BoundCase{256, 55, 12, 3}, BoundCase{200, 60, 8, 4},
                      BoundCase{512, 120, 12, 5}, BoundCase{96, 30, 6, 6},
                      BoundCase{384, 48, 16, 7}, BoundCase{160, 80, 5, 8}));

class ContinuousMooreBoundsRegularGraphs
    : public ::testing::TestWithParam<BoundCase> {};

TEST_P(ContinuousMooreBoundsRegularGraphs, HoldsOnRandomRegularGraphs) {
  // The continuous Moore bound (Eq. 2 extended) lower-bounds the h-ASPL of
  // every REGULAR host-switch graph with these parameters.
  const auto param = GetParam();
  Xoshiro256 rng(param.seed);
  const auto g = random_regular_host_switch_graph(param.n, param.m, param.r, rng);
  const auto metrics = compute_host_metrics(g);
  ASSERT_TRUE(metrics.connected);
  const double bound = continuous_haspl_moore_bound(param.n, param.m, param.r);
  EXPECT_GE(metrics.h_aspl, bound - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RegularGrid, ContinuousMooreBoundsRegularGraphs,
    ::testing::Values(BoundCase{64, 16, 8, 11}, BoundCase{128, 32, 10, 12},
                      BoundCase{256, 64, 12, 13}, BoundCase{120, 30, 9, 14},
                      BoundCase{512, 128, 12, 15}, BoundCase{240, 60, 8, 16}));

// m_opt prediction property: over a grid of (n, r), the continuous bound
// at m_opt is no worse than at 0.5x and 2x m_opt (global-minimum shape).
struct NrCase {
  std::uint64_t n;
  std::uint32_t r;
};

class MOptShape : public ::testing::TestWithParam<NrCase> {};

TEST_P(MOptShape, BoundRisesAwayFromMOpt) {
  const auto [n, r] = GetParam();
  const std::uint32_t m_opt = optimal_switch_count(n, r);
  const double at_opt = continuous_haspl_moore_bound(n, m_opt, r);
  ASSERT_FALSE(std::isinf(at_opt));
  if (m_opt / 2 >= 1) {
    EXPECT_GE(continuous_haspl_moore_bound(n, m_opt / 2.0, r), at_opt - 1e-12);
  }
  EXPECT_GE(continuous_haspl_moore_bound(n, m_opt * 2.0, r), at_opt - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grid, MOptShape,
                         ::testing::Values(NrCase{128, 12}, NrCase{128, 24},
                                           NrCase{256, 12}, NrCase{256, 24},
                                           NrCase{512, 12}, NrCase{512, 24},
                                           NrCase{1024, 12}, NrCase{1024, 24},
                                           NrCase{2048, 16}, NrCase{4096, 32}));

// ---- max-min fairness certificate -----------------------------------------

// A rate allocation is max-min fair iff every flow has a bottleneck link:
// a saturated link where the flow's rate is maximal among its flows.
struct FairCase {
  std::uint32_t links, flows, max_path;
  std::uint64_t seed;
};

class MaxMinCertificate : public ::testing::TestWithParam<FairCase> {};

TEST_P(MaxMinCertificate, EveryFlowHasABottleneck) {
  const auto param = GetParam();
  Xoshiro256 rng(param.seed);
  const double capacity = 1e9;

  std::vector<std::vector<LinkId>> paths(param.flows);
  for (auto& path : paths) {
    const std::uint32_t length =
        1 + static_cast<std::uint32_t>(rng.below(param.max_path));
    std::vector<std::uint8_t> used(param.links, 0);
    for (std::uint32_t i = 0; i < length; ++i) {
      const auto l = static_cast<LinkId>(rng.below(param.links));
      if (!used[l]) {
        used[l] = 1;
        path.push_back(l);
      }
    }
  }
  std::vector<std::uint8_t> active(param.flows, 1);
  std::vector<double> rates;
  FairShareSolver solver(param.links, capacity);
  solver.solve(paths, active, rates);

  // Capacity: per-link sum of rates <= capacity (within fp tolerance).
  std::vector<double> load(param.links, 0.0);
  for (std::uint32_t f = 0; f < param.flows; ++f) {
    EXPECT_GT(rates[f], 0.0);
    for (const LinkId l : paths[f]) load[l] += rates[f];
  }
  for (std::uint32_t l = 0; l < param.links; ++l) {
    EXPECT_LE(load[l], capacity * (1.0 + 1e-9));
  }
  // Bottleneck certificate.
  for (std::uint32_t f = 0; f < param.flows; ++f) {
    bool has_bottleneck = false;
    for (const LinkId l : paths[f]) {
      if (load[l] < capacity * (1.0 - 1e-6)) continue;  // not saturated
      bool is_max = true;
      for (std::uint32_t other = 0; other < param.flows && is_max; ++other) {
        if (other == f) continue;
        for (const LinkId ol : paths[other]) {
          if (ol == l && rates[other] > rates[f] * (1.0 + 1e-9)) {
            is_max = false;
            break;
          }
        }
      }
      if (is_max) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "flow " << f << " rate " << rates[f];
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, MaxMinCertificate,
    ::testing::Values(FairCase{4, 3, 2, 1}, FairCase{8, 10, 3, 2},
                      FairCase{16, 20, 4, 3}, FairCase{6, 12, 3, 4},
                      FairCase{32, 40, 5, 5}, FairCase{10, 30, 2, 6},
                      FairCase{50, 80, 6, 7}, FairCase{3, 9, 2, 8}));

// ---- solver invariants over a (n, r) grid ----------------------------------

class SolverInvariants : public ::testing::TestWithParam<NrCase> {};

TEST_P(SolverInvariants, SolutionRespectsModelAndBounds) {
  const auto [n64, r] = GetParam();
  const auto n = static_cast<std::uint32_t>(n64);
  SolveOptions options;
  options.iterations = 400;
  const auto result = solve_orp(n, r, options);
  result.graph.check_invariants();
  EXPECT_TRUE(result.graph.fully_attached());
  EXPECT_TRUE(result.metrics.connected);
  EXPECT_GE(result.metrics.h_aspl, result.haspl_lower_bound - 1e-12);
  EXPECT_GE(result.metrics.diameter, diameter_lower_bound(n, r));
  EXPECT_EQ(result.graph.num_switches(), result.switch_count);
  for (SwitchId s = 0; s < result.graph.num_switches(); ++s) {
    EXPECT_LE(result.graph.ports_used(s), r);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SolverInvariants,
                         ::testing::Values(NrCase{16, 6}, NrCase{48, 8},
                                           NrCase{64, 12}, NrCase{100, 10},
                                           NrCase{128, 24}, NrCase{200, 9},
                                           NrCase{256, 12}, NrCase{333, 17}));

// ---- packet simulator physical lower bounds --------------------------------

TEST(PacketProperties, ElapsedRespectsPhysicalLowerBounds) {
  Xoshiro256 rng(21);
  const auto g = random_host_switch_graph(24, 6, 10, rng);
  PacketSimParams params;
  params.base.link_bandwidth = 1e9;
  params.base.hop_latency = 1e-6;
  PacketMachine machine(g, params);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Xoshiro256 mrng(seed);
    std::vector<Message> messages;
    std::uint64_t max_bytes = 0;
    for (int i = 0; i < 10; ++i) {
      const auto src = static_cast<Rank>(mrng.below(24));
      auto dst = static_cast<Rank>(mrng.below(23));
      if (dst >= src) ++dst;
      const std::uint64_t bytes = 1000 * (1 + mrng.below(1000));
      messages.push_back({src, dst, bytes});
      max_bytes = std::max(max_bytes, bytes);
    }
    const auto result = machine.phase(messages);
    // No message can beat its own serialization plus two hops of latency.
    EXPECT_GE(result.elapsed,
              static_cast<double>(max_bytes) / params.base.link_bandwidth +
                  2 * params.base.hop_latency);
    EXPECT_GE(result.max_packet_latency, result.mean_packet_latency);
  }
}

}  // namespace
}  // namespace orp

// Tests for the observability layer: registry correctness under concurrent
// increments, histogram bucketing, span emission, and a JSONL sink
// round-trip validated with a small self-contained JSON parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

#ifdef ORP_OBS_DISABLED

// The behavioural suite below asserts real instrumentation; against the
// ORP_OBS_DISABLED stubs only the no-op contract is checkable (the
// zero-size guarantees live in obs_disabled_compile_test.cpp).
namespace orp {
namespace {

TEST(ObsDisabled, StubsAreInertNoOps) {
  obs::Counter& counter = obs::Registry::global().counter("disabled");
  counter.add(5);
  EXPECT_EQ(counter.value(), 0u);
  obs::Span span("disabled", "test");
  EXPECT_FALSE(span.active());
  EXPECT_TRUE(obs::Registry::global().snapshot().empty());
}

}  // namespace
}  // namespace orp

#else

namespace orp {
namespace {

// ---- minimal recursive-descent JSON parser (validation only) -----------
//
// Good enough to check every emitted line is a well-formed object; not a
// general JSON library. Returns false on any syntax error.

struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t')) ++pos;
  }
};

bool parse_value(JsonCursor& c);

bool parse_string(JsonCursor& c) {
  if (c.eof() || c.peek() != '"') return false;
  ++c.pos;
  while (!c.eof() && c.peek() != '"') {
    if (c.peek() == '\\') {
      ++c.pos;
      if (c.eof()) return false;
    }
    ++c.pos;
  }
  if (c.eof()) return false;
  ++c.pos;  // closing quote
  return true;
}

bool parse_number(JsonCursor& c) {
  std::size_t start = c.pos;
  if (!c.eof() && (c.peek() == '-' || c.peek() == '+')) ++c.pos;
  bool digits = false;
  while (!c.eof() && (std::isdigit(static_cast<unsigned char>(c.peek())) ||
                      c.peek() == '.' || c.peek() == 'e' || c.peek() == 'E' ||
                      c.peek() == '-' || c.peek() == '+')) {
    if (std::isdigit(static_cast<unsigned char>(c.peek()))) digits = true;
    ++c.pos;
  }
  return digits && c.pos > start;
}

bool parse_object(JsonCursor& c) {
  if (c.eof() || c.peek() != '{') return false;
  ++c.pos;
  c.skip_ws();
  if (!c.eof() && c.peek() == '}') {
    ++c.pos;
    return true;
  }
  for (;;) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (c.eof() || c.peek() != ':') return false;
    ++c.pos;
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.pos;
      continue;
    }
    if (c.peek() == '}') {
      ++c.pos;
      return true;
    }
    return false;
  }
}

bool parse_array(JsonCursor& c) {
  if (c.eof() || c.peek() != '[') return false;
  ++c.pos;
  c.skip_ws();
  if (!c.eof() && c.peek() == ']') {
    ++c.pos;
    return true;
  }
  for (;;) {
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.pos;
      continue;
    }
    if (c.peek() == ']') {
      ++c.pos;
      return true;
    }
    return false;
  }
}

bool parse_value(JsonCursor& c) {
  c.skip_ws();
  if (c.eof()) return false;
  switch (c.peek()) {
    case '{': return parse_object(c);
    case '[': return parse_array(c);
    case '"': return parse_string(c);
    case 't': c.pos += 4; return c.pos <= c.text.size();
    case 'f': c.pos += 5; return c.pos <= c.text.size();
    case 'n': c.pos += 4; return c.pos <= c.text.size();
    default: return parse_number(c);
  }
}

bool is_json_object_line(const std::string& line) {
  JsonCursor c{line};
  if (!parse_object(c)) return false;
  c.skip_ws();
  return c.eof();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string temp_path(const char* stem) {
  return testing::TempDir() + stem;
}

// ---- metrics registry ---------------------------------------------------

TEST(ObsCounter, CountsConcurrentIncrementsExactly) {
  obs::Counter& counter =
      obs::Registry::global().counter("test.counter.concurrent");
  counter.reset();
  ThreadPool pool(4);
  constexpr std::size_t kIterations = 200000;
  pool.parallel_for(kIterations, [&](std::size_t) { counter.add(1); });
  EXPECT_EQ(counter.value(), kIterations);
}

TEST(ObsCounter, AddAccumulatesDeltas) {
  obs::Counter& counter = obs::Registry::global().counter("test.counter.delta");
  counter.reset();
  counter.add(5);
  counter.add(7);
  counter.inc();
  EXPECT_EQ(counter.value(), 13u);
}

TEST(ObsGauge, TracksValueAndHighWatermark) {
  obs::Gauge& gauge = obs::Registry::global().gauge("test.gauge");
  gauge.reset();
  gauge.add(3);
  gauge.add(4);
  gauge.sub(5);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.max(), 7);
  gauge.set(100);
  EXPECT_EQ(gauge.max(), 100);
}

TEST(ObsHistogram, CountSumMinMaxUnderConcurrentRecords) {
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.histogram.concurrent");
  histogram.reset();
  ThreadPool pool(4);
  constexpr std::size_t kSamples = 50000;
  pool.parallel_for(kSamples, [&](std::size_t i) { histogram.record(i + 1); });
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_EQ(sample.count, kSamples);
  EXPECT_EQ(sample.sum, kSamples * (kSamples + 1) / 2);
  EXPECT_EQ(sample.min, 1u);
  EXPECT_EQ(sample.max, kSamples);
}

TEST(ObsHistogram, Log2Buckets) {
  obs::Histogram& histogram = obs::Registry::global().histogram("test.histogram.buckets");
  histogram.reset();
  histogram.record(0);  // bucket 0
  histogram.record(1);  // bucket 1: [1, 1]
  histogram.record(2);  // bucket 2: [2, 3]
  histogram.record(3);
  histogram.record(4);  // bucket 3: [4, 7]
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_EQ(sample.buckets[0], 1u);
  EXPECT_EQ(sample.buckets[1], 1u);
  EXPECT_EQ(sample.buckets[2], 2u);
  EXPECT_EQ(sample.buckets[3], 1u);
  EXPECT_EQ(sample.count, 5u);
}

TEST(ObsHistogram, QuantilesAreBracketedByExtrema) {
  obs::Histogram& histogram = obs::Registry::global().histogram("test.histogram.quantile");
  histogram.reset();
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.record(v);
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_GE(sample.quantile(0.5), sample.min);
  EXPECT_LE(sample.quantile(0.5), sample.max);
  EXPECT_LE(sample.quantile(0.5), sample.quantile(0.99));
  EXPECT_EQ(sample.quantile(1.0), sample.max);
}

TEST(ObsHistogram, BucketBoundaryEdges) {
  using obs::detail::bucket_of;
  using obs::detail::bucket_upper;
  EXPECT_EQ(bucket_of(0), 0u);
  EXPECT_EQ(bucket_of(1), 1u);
  for (std::size_t k = 1; k <= 61; ++k) {
    // 2^k - 1 closes bucket k; 2^k opens bucket k + 1.
    EXPECT_EQ(bucket_of((1ULL << k) - 1), k);
    EXPECT_EQ(bucket_of(1ULL << k), k + 1);
  }
  // The last bucket is open-ended: bit widths 63 and 64 both fold into it,
  // so the index stays inside the kHistogramBuckets-slot array.
  EXPECT_EQ(bucket_of(1ULL << 62), obs::kHistogramBuckets - 1);
  EXPECT_EQ(bucket_of(1ULL << 63), obs::kHistogramBuckets - 1);
  EXPECT_EQ(bucket_of(~0ULL), obs::kHistogramBuckets - 1);
  EXPECT_EQ(bucket_upper(0), 0u);
  for (std::size_t k = 1; k < obs::kHistogramBuckets - 1; ++k) {
    EXPECT_EQ(bucket_upper(k), (1ULL << k) - 1);
  }
  EXPECT_EQ(bucket_upper(obs::kHistogramBuckets - 1), ~0ULL);
}

TEST(ObsHistogram, ExtremeValuesLandInTheOpenEndedBucket) {
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.histogram.extreme");
  histogram.reset();
  histogram.record(~0ULL);
  histogram.record(1ULL << 63);
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_EQ(sample.count, 2u);
  EXPECT_EQ(sample.max, ~0ULL);
  EXPECT_EQ(sample.buckets[obs::kHistogramBuckets - 1], 2u);
  // The open-ended edge is clamped by the observed maximum.
  EXPECT_EQ(sample.quantile(1.0), ~0ULL);
}

TEST(ObsHistogram, EmptySnapshotIsAllZeros) {
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.histogram.empty");
  histogram.reset();
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_EQ(sample.count, 0u);
  EXPECT_EQ(sample.sum, 0u);
  EXPECT_EQ(sample.min, 0u);
  EXPECT_EQ(sample.max, 0u);
  EXPECT_EQ(sample.mean(), 0.0);
  EXPECT_EQ(sample.quantile(0.0), 0u);
  EXPECT_EQ(sample.quantile(0.5), 0u);
  EXPECT_EQ(sample.quantile(1.0), 0u);
  for (const std::uint64_t b : sample.buckets) EXPECT_EQ(b, 0u);
}

TEST(ObsHistogram, QuantileReportsBucketEdgeClampedByExtrema) {
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.histogram.qedge");
  histogram.reset();
  for (int i = 0; i < 99; ++i) histogram.record(5);  // bucket 3: [4, 7]
  histogram.record(1000);                            // bucket 10: [512, 1023]
  const obs::HistogramSample sample = histogram.sample();
  // Ranks 1..99 fall in bucket 3, whose upper edge (7) is inside [min, max].
  EXPECT_EQ(sample.quantile(0.5), 7u);
  EXPECT_EQ(sample.quantile(0.99), 7u);
  // Rank 100 falls in bucket 10; its edge (1023) clamps to the observed max.
  EXPECT_EQ(sample.quantile(1.0), 1000u);
  // A single-bucket histogram reports exact values, not power-of-two edges.
  histogram.reset();
  histogram.record(6);
  histogram.record(6);
  const obs::HistogramSample single = histogram.sample();
  EXPECT_EQ(single.quantile(0.5), 6u);
  EXPECT_EQ(single.quantile(1.0), 6u);
}

TEST(ObsHistogram, InterpolatedQuantilesTrackUniformData) {
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.histogram.interp");
  histogram.reset();
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.record(v);
  const obs::HistogramSample sample = histogram.sample();
  const double p50 = sample.quantile_interp(0.5);
  const double p90 = sample.quantile_interp(0.9);
  const double p99 = sample.quantile_interp(0.99);
  // Interpolation within the log2 bucket lands near the true percentile
  // (500), not at the bucket edge the integer quantile() reports (511).
  EXPECT_GE(p50, 450.0);
  EXPECT_LE(p50, 550.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // The open-ended estimate clamps to the observed extrema.
  EXPECT_LE(p99, 1000.0);
  EXPECT_GE(sample.quantile_interp(0.0), 1.0);

  // A repeated single value is reported exactly, not as a bucket midpoint.
  histogram.reset();
  histogram.record(6);
  histogram.record(6);
  EXPECT_DOUBLE_EQ(histogram.sample().quantile_interp(0.5), 6.0);

  histogram.reset();
  EXPECT_DOUBLE_EQ(histogram.sample().quantile_interp(0.5), 0.0);
}

TEST(ObsScopedTimer, RecordsPositiveLatency) {
  obs::Histogram& histogram = obs::Registry::global().histogram("test.histogram.timer");
  histogram.reset();
  {
    obs::ScopedTimer timer(histogram);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_EQ(sample.count, 1u);
  EXPECT_GT(sample.sum, 0u);
}

TEST(ObsRegistry, SnapshotContainsRegisteredInstruments) {
  obs::Registry::global().counter("test.snapshot.counter").add(42);
  obs::Registry::global().gauge("test.snapshot.gauge").set(7);
  obs::Registry::global().histogram("test.snapshot.histogram").record(9);
  const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  for (const auto& c : snapshot.counters) {
    if (c.name == "test.snapshot.counter") {
      saw_counter = true;
      EXPECT_GE(c.value, 42u);
    }
  }
  for (const auto& g : snapshot.gauges) {
    if (g.name == "test.snapshot.gauge") saw_gauge = true;
  }
  for (const auto& h : snapshot.histograms) {
    if (h.name == "test.snapshot.histogram") saw_histogram = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
}

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  obs::Counter& a = obs::Registry::global().counter("test.same.name");
  obs::Counter& b = obs::Registry::global().counter("test.same.name");
  EXPECT_EQ(&a, &b);
}

TEST(ObsSummary, TableHasOneRowPerInstrument) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"c", 1});
  snapshot.gauges.push_back({"g", 2, 3});
  obs::HistogramSample h;
  h.name = "h";
  h.count = 1;
  h.sum = 5;
  snapshot.histograms.push_back(h);
  const Table table = obs::metrics_table(snapshot);
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.columns(), 9u);  // kind/name/value/count/mean/p50/p90/p99/max
}

// ---- tracing + JSONL sink ----------------------------------------------

TEST(ObsTrace, JsonlRoundTripParses) {
  const std::string path = temp_path("obs_roundtrip.jsonl");
  ASSERT_TRUE(obs::configure(obs::parse_sink(path)));
  {
    obs::Span outer("outer", "test");
    outer.arg("n", static_cast<std::uint64_t>(64));
    outer.arg("label", std::string_view("with \"quotes\" and \\slashes\\"));
    {
      obs::Span inner("inner", "test");
      inner.arg("x", 0.5);
    }
    obs::Tracer::global().counter("test.series", 1.25, "test");
  }
  obs::Registry::global().counter("test.jsonl.counter").add(3);
  obs::Registry::global().histogram("test.jsonl.histogram").record(1234);
  obs::flush();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 5u);  // B/E x2 + counter + metric records
  for (const std::string& line : lines) {
    EXPECT_TRUE(is_json_object_line(line)) << "unparseable line: " << line;
  }

  const std::string all = [&] {
    std::string joined;
    for (const auto& line : lines) joined += line + "\n";
    return joined;
  }();
  // Begin/end events for both spans, in nesting order.
  const std::size_t outer_b = all.find("\"name\":\"outer\",\"cat\":\"test\",\"ph\":\"B\"");
  const std::size_t inner_b = all.find("\"name\":\"inner\",\"cat\":\"test\",\"ph\":\"B\"");
  const std::size_t inner_e = all.find("\"name\":\"inner\",\"cat\":\"test\",\"ph\":\"E\"");
  const std::size_t outer_e = all.find("\"name\":\"outer\",\"cat\":\"test\",\"ph\":\"E\"");
  EXPECT_NE(outer_b, std::string::npos);
  EXPECT_NE(inner_b, std::string::npos);
  EXPECT_NE(inner_e, std::string::npos);
  EXPECT_NE(outer_e, std::string::npos);
  EXPECT_LT(outer_b, inner_b);
  EXPECT_LT(inner_b, inner_e);
  EXPECT_LT(inner_e, outer_e);
  // The counter series and the metric trailer records.
  EXPECT_NE(all.find("\"name\":\"test.series\",\"cat\":\"test\",\"ph\":\"C\""),
            std::string::npos);
  EXPECT_NE(all.find("\"kind\":\"counter\",\"name\":\"test.jsonl.counter\""),
            std::string::npos);
  EXPECT_NE(all.find("\"kind\":\"histogram\",\"name\":\"test.jsonl.histogram\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTrace, DisabledTracerMakesSpansFree) {
  // No sink configured: spans must not emit (nothing to assert beyond not
  // crashing and staying inactive).
  obs::Span span("unsunk", "test");
  EXPECT_FALSE(span.active());
}

TEST(ObsTrace, ConcurrentSpansAllLand) {
  const std::string path = temp_path("obs_concurrent.jsonl");
  ASSERT_TRUE(obs::configure(obs::parse_sink(path)));
  ThreadPool pool(4);
  constexpr std::size_t kSpans = 500;
  pool.parallel_for(kSpans, [&](std::size_t i) {
    obs::Span span("worker", "test");
    span.arg("i", static_cast<std::uint64_t>(i));
  });
  obs::flush();
  const std::vector<std::string> lines = read_lines(path);
  std::size_t begins = 0, ends = 0;
  for (const std::string& line : lines) {
    ASSERT_TRUE(is_json_object_line(line)) << line;
    if (line.find("\"name\":\"worker\"") != std::string::npos) {
      if (line.find("\"ph\":\"B\"") != std::string::npos) ++begins;
      if (line.find("\"ph\":\"E\"") != std::string::npos) ++ends;
    }
  }
  EXPECT_EQ(begins, kSpans);
  EXPECT_EQ(ends, kSpans);
  std::remove(path.c_str());
}

// ---- sink selection -----------------------------------------------------

TEST(ObsSink, ParseSpecSelectsKind) {
  EXPECT_EQ(obs::parse_sink("").kind, obs::SinkKind::kNone);
  EXPECT_EQ(obs::parse_sink("stderr").kind, obs::SinkKind::kStderrSummary);
  EXPECT_EQ(obs::parse_sink("run.csv").kind, obs::SinkKind::kCsv);
  EXPECT_EQ(obs::parse_sink("run.jsonl").kind, obs::SinkKind::kJsonl);
  EXPECT_EQ(obs::parse_sink("trace.out").kind, obs::SinkKind::kJsonl);
  EXPECT_EQ(obs::parse_sink("run.csv").path, "run.csv");
}

TEST(ObsSink, CsvSinkWritesMetricsSnapshot) {
  const std::string path = temp_path("obs_metrics.csv");
  obs::Registry::global().counter("test.csv.counter").add(11);
  ASSERT_TRUE(obs::configure(obs::parse_sink(path)));
  obs::flush();
  obs::configure(obs::SinkConfig{});  // detach so later tests start clean
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u);  // header + at least one instrument
  EXPECT_NE(lines[0].find("kind"), std::string::npos);
  bool found = false;
  for (const auto& line : lines) {
    if (line.find("test.csv.counter") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST(ObsSink, CsvSinkEscapesDelimitersAndQuotes) {
  // RFC-4180: cells containing delimiters or quotes are wrapped in quotes
  // with inner quotes doubled; an instrument name is an arbitrary string,
  // so the sink must not let one shift the columns of every row after it.
  const std::string path = temp_path("obs_escape.csv");
  obs::Registry::global().counter("test.csv.\"tricky\",name").add(3);
  ASSERT_TRUE(obs::configure(obs::parse_sink(path)));
  obs::flush();
  obs::configure(obs::SinkConfig{});  // detach so later tests start clean
  const std::vector<std::string> lines = read_lines(path);
  bool found = false;
  for (const auto& line : lines) {
    if (line.find("\"test.csv.\"\"tricky\"\",name\"") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

// ---- snapshot sampler ---------------------------------------------------

TEST(ObsSnapshot, SamplerEmitsCounterDeltasThatSumToTheTotal) {
  const std::string path = temp_path("obs_snapshot.jsonl");
  obs::SinkConfig config = obs::parse_sink(path);
  config.snapshot_ms = 2;
  ASSERT_TRUE(obs::configure(config));
  EXPECT_TRUE(obs::snapshot_sampler_running());

  obs::Counter& counter =
      obs::Registry::global().counter("test.sampler.delta_counter");
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.sampler.delta_ns");
  constexpr std::uint64_t kTotal = 40;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    counter.add(1);
    histogram.record(i + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  obs::flush();
  EXPECT_FALSE(obs::snapshot_sampler_running());

  // The per-interval deltas (several ticks plus the drained tail sample)
  // must sum back to exactly what was recorded — nothing lost, nothing
  // double-counted.
  double counter_sum = 0.0, hist_count_sum = 0.0;
  std::size_t counter_samples = 0;
  for (const std::string& line : read_lines(path)) {
    ASSERT_TRUE(is_json_object_line(line)) << line;
    if (line.find("\"cat\":\"snapshot\"") == std::string::npos) continue;
    const JsonValue doc = JsonValue::parse(line);
    const double value = doc.at("args").at("value").as_number();
    const std::string& name = doc.at("name").as_string();
    if (name == "test.sampler.delta_counter") {
      counter_sum += value;
      ++counter_samples;
    }
    if (name == "test.sampler.delta_ns.count") hist_count_sum += value;
  }
  EXPECT_DOUBLE_EQ(counter_sum, static_cast<double>(kTotal));
  EXPECT_DOUBLE_EQ(hist_count_sum, static_cast<double>(kTotal));
  // Sampling actually happened periodically: the total arrived in more
  // than one delta (40ms of activity vs a 2ms interval).
  EXPECT_GT(counter_samples, 1u);
  std::remove(path.c_str());
}

TEST(ObsSnapshot, ConcurrentUpdatesWhileSamplingStayWellFormed) {
  // TSan target (see .github/workflows/ci.yml): four threads hammer a
  // counter and a histogram while the 1ms sampler reads them.
  const std::string path = temp_path("obs_snapshot_concurrent.jsonl");
  obs::SinkConfig config = obs::parse_sink(path);
  config.snapshot_ms = 1;
  ASSERT_TRUE(obs::configure(config));
  obs::Counter& counter =
      obs::Registry::global().counter("test.sampler.hammer_counter");
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.sampler.hammer_ns");
  ThreadPool pool(4);
  constexpr std::size_t kIterations = 200000;
  pool.parallel_for(kIterations, [&](std::size_t i) {
    counter.add(1);
    histogram.record(i & 1023);
  });
  obs::flush();
  EXPECT_EQ(counter.value(), kIterations);
  for (const std::string& line : read_lines(path)) {
    ASSERT_TRUE(is_json_object_line(line)) << "torn line: " << line;
  }
  std::remove(path.c_str());
}

TEST(ObsSnapshot, FlushStopsSamplerBeforeTrailerRecords) {
  // Regression test for the flush ordering: the sampler is stopped and its
  // tail sample drained before the end-of-run metric records, so no
  // snapshot C event may appear after the first "kind" trailer line.
  const std::string path = temp_path("obs_snapshot_order.jsonl");
  obs::SinkConfig config = obs::parse_sink(path);
  config.snapshot_ms = 1;
  ASSERT_TRUE(obs::configure(config));
  obs::Counter& counter =
      obs::Registry::global().counter("test.sampler.order_counter");
  for (int i = 0; i < 20; ++i) {
    counter.add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  obs::flush();
  const std::vector<std::string> lines = read_lines(path);
  bool saw_trailer = false;
  bool saw_snapshot = false;
  for (const std::string& line : lines) {
    if (line.find("\"kind\":") != std::string::npos) saw_trailer = true;
    if (line.find("\"cat\":\"snapshot\"") != std::string::npos) {
      saw_snapshot = true;
      EXPECT_FALSE(saw_trailer)
          << "snapshot C event after the metric trailer: " << line;
    }
  }
  EXPECT_TRUE(saw_trailer);
  EXPECT_TRUE(saw_snapshot);
  std::remove(path.c_str());
}

// ---- flow events through the thread pool --------------------------------

TEST(ObsFlow, ParallelForTasksCarryFlowEvents) {
  const std::string path = temp_path("obs_flow.jsonl");
  obs::SinkConfig config = obs::parse_sink(path);
  config.snapshot_ms = 0;  // keep the trace to spans + flows
  ASSERT_TRUE(obs::configure(config));
  ThreadPool pool(4);
  {
    obs::Span span("submit", "test");
    pool.parallel_for(10000, [](std::size_t) {});
  }
  // Outside any span there is nothing to attribute the tasks to: no flows.
  pool.parallel_for(10000, [](std::size_t) {});
  obs::flush();

  std::vector<std::uint64_t> start_ids, finish_ids;
  for (const std::string& line : read_lines(path)) {
    ASSERT_TRUE(is_json_object_line(line)) << line;
    if (line.find("\"name\":\"threadpool.task\"") == std::string::npos) continue;
    const bool is_start = line.find("\"ph\":\"s\"") != std::string::npos;
    const bool is_finish = line.find("\"ph\":\"f\"") != std::string::npos;
    if (!is_start && !is_finish) continue;
    const JsonValue doc = JsonValue::parse(line);
    const std::uint64_t id =
        static_cast<std::uint64_t>(doc.at("id").as_number());
    EXPECT_NE(id, 0u);
    if (is_start) start_ids.push_back(id);
    if (is_finish) {
      finish_ids.push_back(id);
      // Flow heads bind to the enclosing slice, the binding Perfetto
      // expects for linking the arrow to the worker's task span.
      EXPECT_NE(line.find("\"bp\":\"e\""), std::string::npos) << line;
    }
  }
  // One helper task per worker was enqueued inside the span; every 's'
  // tail has exactly one matching 'f' head, by id.
  EXPECT_FALSE(start_ids.empty());
  std::sort(start_ids.begin(), start_ids.end());
  std::sort(finish_ids.begin(), finish_ids.end());
  EXPECT_EQ(start_ids, finish_ids);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace orp

#endif  // ORP_OBS_DISABLED

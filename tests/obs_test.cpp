// Tests for the observability layer: registry correctness under concurrent
// increments, histogram bucketing, span emission, and a JSONL sink
// round-trip validated with a small self-contained JSON parser.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"

#ifdef ORP_OBS_DISABLED

// The behavioural suite below asserts real instrumentation; against the
// ORP_OBS_DISABLED stubs only the no-op contract is checkable (the
// zero-size guarantees live in obs_disabled_compile_test.cpp).
namespace orp {
namespace {

TEST(ObsDisabled, StubsAreInertNoOps) {
  obs::Counter& counter = obs::Registry::global().counter("disabled");
  counter.add(5);
  EXPECT_EQ(counter.value(), 0u);
  obs::Span span("disabled", "test");
  EXPECT_FALSE(span.active());
  EXPECT_TRUE(obs::Registry::global().snapshot().empty());
}

}  // namespace
}  // namespace orp

#else

namespace orp {
namespace {

// ---- minimal recursive-descent JSON parser (validation only) -----------
//
// Good enough to check every emitted line is a well-formed object; not a
// general JSON library. Returns false on any syntax error.

struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t')) ++pos;
  }
};

bool parse_value(JsonCursor& c);

bool parse_string(JsonCursor& c) {
  if (c.eof() || c.peek() != '"') return false;
  ++c.pos;
  while (!c.eof() && c.peek() != '"') {
    if (c.peek() == '\\') {
      ++c.pos;
      if (c.eof()) return false;
    }
    ++c.pos;
  }
  if (c.eof()) return false;
  ++c.pos;  // closing quote
  return true;
}

bool parse_number(JsonCursor& c) {
  std::size_t start = c.pos;
  if (!c.eof() && (c.peek() == '-' || c.peek() == '+')) ++c.pos;
  bool digits = false;
  while (!c.eof() && (std::isdigit(static_cast<unsigned char>(c.peek())) ||
                      c.peek() == '.' || c.peek() == 'e' || c.peek() == 'E' ||
                      c.peek() == '-' || c.peek() == '+')) {
    if (std::isdigit(static_cast<unsigned char>(c.peek()))) digits = true;
    ++c.pos;
  }
  return digits && c.pos > start;
}

bool parse_object(JsonCursor& c) {
  if (c.eof() || c.peek() != '{') return false;
  ++c.pos;
  c.skip_ws();
  if (!c.eof() && c.peek() == '}') {
    ++c.pos;
    return true;
  }
  for (;;) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (c.eof() || c.peek() != ':') return false;
    ++c.pos;
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.pos;
      continue;
    }
    if (c.peek() == '}') {
      ++c.pos;
      return true;
    }
    return false;
  }
}

bool parse_array(JsonCursor& c) {
  if (c.eof() || c.peek() != '[') return false;
  ++c.pos;
  c.skip_ws();
  if (!c.eof() && c.peek() == ']') {
    ++c.pos;
    return true;
  }
  for (;;) {
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.eof()) return false;
    if (c.peek() == ',') {
      ++c.pos;
      continue;
    }
    if (c.peek() == ']') {
      ++c.pos;
      return true;
    }
    return false;
  }
}

bool parse_value(JsonCursor& c) {
  c.skip_ws();
  if (c.eof()) return false;
  switch (c.peek()) {
    case '{': return parse_object(c);
    case '[': return parse_array(c);
    case '"': return parse_string(c);
    case 't': c.pos += 4; return c.pos <= c.text.size();
    case 'f': c.pos += 5; return c.pos <= c.text.size();
    case 'n': c.pos += 4; return c.pos <= c.text.size();
    default: return parse_number(c);
  }
}

bool is_json_object_line(const std::string& line) {
  JsonCursor c{line};
  if (!parse_object(c)) return false;
  c.skip_ws();
  return c.eof();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string temp_path(const char* stem) {
  return testing::TempDir() + stem;
}

// ---- metrics registry ---------------------------------------------------

TEST(ObsCounter, CountsConcurrentIncrementsExactly) {
  obs::Counter& counter =
      obs::Registry::global().counter("test.counter.concurrent");
  counter.reset();
  ThreadPool pool(4);
  constexpr std::size_t kIterations = 200000;
  pool.parallel_for(kIterations, [&](std::size_t) { counter.add(1); });
  EXPECT_EQ(counter.value(), kIterations);
}

TEST(ObsCounter, AddAccumulatesDeltas) {
  obs::Counter& counter = obs::Registry::global().counter("test.counter.delta");
  counter.reset();
  counter.add(5);
  counter.add(7);
  counter.inc();
  EXPECT_EQ(counter.value(), 13u);
}

TEST(ObsGauge, TracksValueAndHighWatermark) {
  obs::Gauge& gauge = obs::Registry::global().gauge("test.gauge");
  gauge.reset();
  gauge.add(3);
  gauge.add(4);
  gauge.sub(5);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.max(), 7);
  gauge.set(100);
  EXPECT_EQ(gauge.max(), 100);
}

TEST(ObsHistogram, CountSumMinMaxUnderConcurrentRecords) {
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.histogram.concurrent");
  histogram.reset();
  ThreadPool pool(4);
  constexpr std::size_t kSamples = 50000;
  pool.parallel_for(kSamples, [&](std::size_t i) { histogram.record(i + 1); });
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_EQ(sample.count, kSamples);
  EXPECT_EQ(sample.sum, kSamples * (kSamples + 1) / 2);
  EXPECT_EQ(sample.min, 1u);
  EXPECT_EQ(sample.max, kSamples);
}

TEST(ObsHistogram, Log2Buckets) {
  obs::Histogram& histogram = obs::Registry::global().histogram("test.histogram.buckets");
  histogram.reset();
  histogram.record(0);  // bucket 0
  histogram.record(1);  // bucket 1: [1, 1]
  histogram.record(2);  // bucket 2: [2, 3]
  histogram.record(3);
  histogram.record(4);  // bucket 3: [4, 7]
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_EQ(sample.buckets[0], 1u);
  EXPECT_EQ(sample.buckets[1], 1u);
  EXPECT_EQ(sample.buckets[2], 2u);
  EXPECT_EQ(sample.buckets[3], 1u);
  EXPECT_EQ(sample.count, 5u);
}

TEST(ObsHistogram, QuantilesAreBracketedByExtrema) {
  obs::Histogram& histogram = obs::Registry::global().histogram("test.histogram.quantile");
  histogram.reset();
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.record(v);
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_GE(sample.quantile(0.5), sample.min);
  EXPECT_LE(sample.quantile(0.5), sample.max);
  EXPECT_LE(sample.quantile(0.5), sample.quantile(0.99));
  EXPECT_EQ(sample.quantile(1.0), sample.max);
}

TEST(ObsHistogram, BucketBoundaryEdges) {
  using obs::detail::bucket_of;
  using obs::detail::bucket_upper;
  EXPECT_EQ(bucket_of(0), 0u);
  EXPECT_EQ(bucket_of(1), 1u);
  for (std::size_t k = 1; k <= 61; ++k) {
    // 2^k - 1 closes bucket k; 2^k opens bucket k + 1.
    EXPECT_EQ(bucket_of((1ULL << k) - 1), k);
    EXPECT_EQ(bucket_of(1ULL << k), k + 1);
  }
  // The last bucket is open-ended: bit widths 63 and 64 both fold into it,
  // so the index stays inside the kHistogramBuckets-slot array.
  EXPECT_EQ(bucket_of(1ULL << 62), obs::kHistogramBuckets - 1);
  EXPECT_EQ(bucket_of(1ULL << 63), obs::kHistogramBuckets - 1);
  EXPECT_EQ(bucket_of(~0ULL), obs::kHistogramBuckets - 1);
  EXPECT_EQ(bucket_upper(0), 0u);
  for (std::size_t k = 1; k < obs::kHistogramBuckets - 1; ++k) {
    EXPECT_EQ(bucket_upper(k), (1ULL << k) - 1);
  }
  EXPECT_EQ(bucket_upper(obs::kHistogramBuckets - 1), ~0ULL);
}

TEST(ObsHistogram, ExtremeValuesLandInTheOpenEndedBucket) {
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.histogram.extreme");
  histogram.reset();
  histogram.record(~0ULL);
  histogram.record(1ULL << 63);
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_EQ(sample.count, 2u);
  EXPECT_EQ(sample.max, ~0ULL);
  EXPECT_EQ(sample.buckets[obs::kHistogramBuckets - 1], 2u);
  // The open-ended edge is clamped by the observed maximum.
  EXPECT_EQ(sample.quantile(1.0), ~0ULL);
}

TEST(ObsHistogram, EmptySnapshotIsAllZeros) {
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.histogram.empty");
  histogram.reset();
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_EQ(sample.count, 0u);
  EXPECT_EQ(sample.sum, 0u);
  EXPECT_EQ(sample.min, 0u);
  EXPECT_EQ(sample.max, 0u);
  EXPECT_EQ(sample.mean(), 0.0);
  EXPECT_EQ(sample.quantile(0.0), 0u);
  EXPECT_EQ(sample.quantile(0.5), 0u);
  EXPECT_EQ(sample.quantile(1.0), 0u);
  for (const std::uint64_t b : sample.buckets) EXPECT_EQ(b, 0u);
}

TEST(ObsHistogram, QuantileReportsBucketEdgeClampedByExtrema) {
  obs::Histogram& histogram =
      obs::Registry::global().histogram("test.histogram.qedge");
  histogram.reset();
  for (int i = 0; i < 99; ++i) histogram.record(5);  // bucket 3: [4, 7]
  histogram.record(1000);                            // bucket 10: [512, 1023]
  const obs::HistogramSample sample = histogram.sample();
  // Ranks 1..99 fall in bucket 3, whose upper edge (7) is inside [min, max].
  EXPECT_EQ(sample.quantile(0.5), 7u);
  EXPECT_EQ(sample.quantile(0.99), 7u);
  // Rank 100 falls in bucket 10; its edge (1023) clamps to the observed max.
  EXPECT_EQ(sample.quantile(1.0), 1000u);
  // A single-bucket histogram reports exact values, not power-of-two edges.
  histogram.reset();
  histogram.record(6);
  histogram.record(6);
  const obs::HistogramSample single = histogram.sample();
  EXPECT_EQ(single.quantile(0.5), 6u);
  EXPECT_EQ(single.quantile(1.0), 6u);
}

TEST(ObsScopedTimer, RecordsPositiveLatency) {
  obs::Histogram& histogram = obs::Registry::global().histogram("test.histogram.timer");
  histogram.reset();
  {
    obs::ScopedTimer timer(histogram);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  const obs::HistogramSample sample = histogram.sample();
  EXPECT_EQ(sample.count, 1u);
  EXPECT_GT(sample.sum, 0u);
}

TEST(ObsRegistry, SnapshotContainsRegisteredInstruments) {
  obs::Registry::global().counter("test.snapshot.counter").add(42);
  obs::Registry::global().gauge("test.snapshot.gauge").set(7);
  obs::Registry::global().histogram("test.snapshot.histogram").record(9);
  const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  for (const auto& c : snapshot.counters) {
    if (c.name == "test.snapshot.counter") {
      saw_counter = true;
      EXPECT_GE(c.value, 42u);
    }
  }
  for (const auto& g : snapshot.gauges) {
    if (g.name == "test.snapshot.gauge") saw_gauge = true;
  }
  for (const auto& h : snapshot.histograms) {
    if (h.name == "test.snapshot.histogram") saw_histogram = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
}

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  obs::Counter& a = obs::Registry::global().counter("test.same.name");
  obs::Counter& b = obs::Registry::global().counter("test.same.name");
  EXPECT_EQ(&a, &b);
}

TEST(ObsSummary, TableHasOneRowPerInstrument) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters.push_back({"c", 1});
  snapshot.gauges.push_back({"g", 2, 3});
  obs::HistogramSample h;
  h.name = "h";
  h.count = 1;
  h.sum = 5;
  snapshot.histograms.push_back(h);
  const Table table = obs::metrics_table(snapshot);
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.columns(), 8u);
}

// ---- tracing + JSONL sink ----------------------------------------------

TEST(ObsTrace, JsonlRoundTripParses) {
  const std::string path = temp_path("obs_roundtrip.jsonl");
  ASSERT_TRUE(obs::configure(obs::parse_sink(path)));
  {
    obs::Span outer("outer", "test");
    outer.arg("n", static_cast<std::uint64_t>(64));
    outer.arg("label", std::string_view("with \"quotes\" and \\slashes\\"));
    {
      obs::Span inner("inner", "test");
      inner.arg("x", 0.5);
    }
    obs::Tracer::global().counter("test.series", 1.25, "test");
  }
  obs::Registry::global().counter("test.jsonl.counter").add(3);
  obs::Registry::global().histogram("test.jsonl.histogram").record(1234);
  obs::flush();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 5u);  // B/E x2 + counter + metric records
  for (const std::string& line : lines) {
    EXPECT_TRUE(is_json_object_line(line)) << "unparseable line: " << line;
  }

  const std::string all = [&] {
    std::string joined;
    for (const auto& line : lines) joined += line + "\n";
    return joined;
  }();
  // Begin/end events for both spans, in nesting order.
  const std::size_t outer_b = all.find("\"name\":\"outer\",\"cat\":\"test\",\"ph\":\"B\"");
  const std::size_t inner_b = all.find("\"name\":\"inner\",\"cat\":\"test\",\"ph\":\"B\"");
  const std::size_t inner_e = all.find("\"name\":\"inner\",\"cat\":\"test\",\"ph\":\"E\"");
  const std::size_t outer_e = all.find("\"name\":\"outer\",\"cat\":\"test\",\"ph\":\"E\"");
  EXPECT_NE(outer_b, std::string::npos);
  EXPECT_NE(inner_b, std::string::npos);
  EXPECT_NE(inner_e, std::string::npos);
  EXPECT_NE(outer_e, std::string::npos);
  EXPECT_LT(outer_b, inner_b);
  EXPECT_LT(inner_b, inner_e);
  EXPECT_LT(inner_e, outer_e);
  // The counter series and the metric trailer records.
  EXPECT_NE(all.find("\"name\":\"test.series\",\"cat\":\"test\",\"ph\":\"C\""),
            std::string::npos);
  EXPECT_NE(all.find("\"kind\":\"counter\",\"name\":\"test.jsonl.counter\""),
            std::string::npos);
  EXPECT_NE(all.find("\"kind\":\"histogram\",\"name\":\"test.jsonl.histogram\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTrace, DisabledTracerMakesSpansFree) {
  // No sink configured: spans must not emit (nothing to assert beyond not
  // crashing and staying inactive).
  obs::Span span("unsunk", "test");
  EXPECT_FALSE(span.active());
}

TEST(ObsTrace, ConcurrentSpansAllLand) {
  const std::string path = temp_path("obs_concurrent.jsonl");
  ASSERT_TRUE(obs::configure(obs::parse_sink(path)));
  ThreadPool pool(4);
  constexpr std::size_t kSpans = 500;
  pool.parallel_for(kSpans, [&](std::size_t i) {
    obs::Span span("worker", "test");
    span.arg("i", static_cast<std::uint64_t>(i));
  });
  obs::flush();
  const std::vector<std::string> lines = read_lines(path);
  std::size_t begins = 0, ends = 0;
  for (const std::string& line : lines) {
    ASSERT_TRUE(is_json_object_line(line)) << line;
    if (line.find("\"name\":\"worker\"") != std::string::npos) {
      if (line.find("\"ph\":\"B\"") != std::string::npos) ++begins;
      if (line.find("\"ph\":\"E\"") != std::string::npos) ++ends;
    }
  }
  EXPECT_EQ(begins, kSpans);
  EXPECT_EQ(ends, kSpans);
  std::remove(path.c_str());
}

// ---- sink selection -----------------------------------------------------

TEST(ObsSink, ParseSpecSelectsKind) {
  EXPECT_EQ(obs::parse_sink("").kind, obs::SinkKind::kNone);
  EXPECT_EQ(obs::parse_sink("stderr").kind, obs::SinkKind::kStderrSummary);
  EXPECT_EQ(obs::parse_sink("run.csv").kind, obs::SinkKind::kCsv);
  EXPECT_EQ(obs::parse_sink("run.jsonl").kind, obs::SinkKind::kJsonl);
  EXPECT_EQ(obs::parse_sink("trace.out").kind, obs::SinkKind::kJsonl);
  EXPECT_EQ(obs::parse_sink("run.csv").path, "run.csv");
}

TEST(ObsSink, CsvSinkWritesMetricsSnapshot) {
  const std::string path = temp_path("obs_metrics.csv");
  obs::Registry::global().counter("test.csv.counter").add(11);
  ASSERT_TRUE(obs::configure(obs::parse_sink(path)));
  obs::flush();
  obs::configure(obs::SinkConfig{});  // detach so later tests start clean
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u);  // header + at least one instrument
  EXPECT_NE(lines[0].find("kind"), std::string::npos);
  bool found = false;
  for (const auto& line : lines) {
    if (line.find("test.csv.counter") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST(ObsSink, CsvSinkEscapesDelimitersAndQuotes) {
  // RFC-4180: cells containing delimiters or quotes are wrapped in quotes
  // with inner quotes doubled; an instrument name is an arbitrary string,
  // so the sink must not let one shift the columns of every row after it.
  const std::string path = temp_path("obs_escape.csv");
  obs::Registry::global().counter("test.csv.\"tricky\",name").add(3);
  ASSERT_TRUE(obs::configure(obs::parse_sink(path)));
  obs::flush();
  obs::configure(obs::SinkConfig{});  // detach so later tests start clean
  const std::vector<std::string> lines = read_lines(path);
  bool found = false;
  for (const auto& line : lines) {
    if (line.find("\"test.csv.\"\"tricky\"\",name\"") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace orp

#endif  // ORP_OBS_DISABLED

// Tests for the cable-aware placement optimizer.
#include <gtest/gtest.h>

#include <numeric>

#include "common/prng.hpp"
#include "cost/placement.hpp"
#include "search/random_init.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

std::vector<std::uint32_t> identity_placement(std::uint32_t m) {
  std::vector<std::uint32_t> p(m);
  std::iota(p.begin(), p.end(), 0);
  return p;
}

TEST(Placement, IdentityMatchesUnplacedEvaluation) {
  const auto g = build_torus(TorusParams{2, 4, 8}, 32);
  const auto unplaced = evaluate_network_cost(g);
  const auto placed = evaluate_network_cost_placed(g, identity_placement(16));
  EXPECT_DOUBLE_EQ(unplaced.total_cost_usd(), placed.total_cost_usd());
  EXPECT_EQ(unplaced.optical_cables, placed.optical_cables);
  EXPECT_DOUBLE_EQ(unplaced.total_cable_m, placed.total_cable_m);
}

TEST(Placement, CableCostMatchesReport) {
  const auto g = build_torus(TorusParams{2, 4, 8}, 32);
  const auto placement = identity_placement(16);
  const auto report = evaluate_network_cost_placed(g, placement);
  EXPECT_NEAR(cable_cost_under_placement(g, placement),
              report.cable_cost_usd(), 1e-9);
}

TEST(Placement, RejectsNonPermutation) {
  const auto g = build_torus(TorusParams{2, 4, 8}, 32);
  std::vector<std::uint32_t> bad(16, 0);
  EXPECT_THROW(cable_cost_under_placement(g, bad), std::invalid_argument);
  EXPECT_THROW(evaluate_network_cost_placed(g, {0, 1}), std::invalid_argument);
}

TEST(Placement, OptimizerNeverWorsensIdentity) {
  Xoshiro256 rng(3);
  const auto g = random_host_switch_graph(128, 32, 8, rng);
  const double before = cable_cost_under_placement(g, identity_placement(32));
  const auto optimized = optimize_placement(g, 4000, 7);
  const double after = cable_cost_under_placement(g, optimized);
  EXPECT_LE(after, before + 1e-9);
}

TEST(Placement, RecoversScrambledRingLayout) {
  // A ring of 16 switches placed identity has mostly short cables. Verify
  // the optimizer applied to the same ring recovers a layout at least as
  // cheap as identity even though SA starts from identity — and strictly
  // improves a deliberately scrambled variant.
  HostSwitchGraph ring(16, 16, 4);
  for (HostId h = 0; h < 16; ++h) ring.attach_host(h, h);
  for (SwitchId s = 0; s < 16; ++s) ring.add_switch_edge(s, (s + 1) % 16);

  // Scramble: relabel switches by multiplying ids by 7 mod 16 (a ring in
  // disguise, with terrible identity layout).
  HostSwitchGraph scrambled(16, 16, 4);
  for (HostId h = 0; h < 16; ++h) scrambled.attach_host(h, h);
  for (SwitchId s = 0; s < 16; ++s) {
    const SwitchId a = (7 * s) % 16, b = (7 * ((s + 1) % 16)) % 16;
    scrambled.add_switch_edge(a, b);
  }

  const double scrambled_identity =
      cable_cost_under_placement(scrambled, identity_placement(16));
  const auto optimized = optimize_placement(scrambled, 20000, 11);
  const double scrambled_optimized = cable_cost_under_placement(scrambled, optimized);
  EXPECT_LT(scrambled_optimized, scrambled_identity * 0.9);
}

TEST(Placement, OptimizedCostIsInternallyConsistent) {
  Xoshiro256 rng(5);
  const auto g = random_host_switch_graph(96, 24, 8, rng);
  const auto placement = optimize_placement(g, 3000, 13);
  // The incremental SA bookkeeping must agree with a from-scratch eval.
  const auto report = evaluate_network_cost_placed(g, placement);
  EXPECT_NEAR(cable_cost_under_placement(g, placement), report.cable_cost_usd(), 1e-6);
}

TEST(Placement, DeterministicForEqualSeeds) {
  Xoshiro256 rng(9);
  const auto g = random_host_switch_graph(64, 16, 8, rng);
  EXPECT_EQ(optimize_placement(g, 1000, 3), optimize_placement(g, 1000, 3));
}

}  // namespace
}  // namespace orp

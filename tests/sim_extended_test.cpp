// Tests for the extended simulator features: ECMP routing, phase
// statistics, the scatter/gather/reduce-scatter/ring-allreduce
// collectives, and synthetic traffic patterns.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/prng.hpp"
#include "sim/routing.hpp"
#include "sim/traffic.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

SimParams simple_params(RoutingPolicy routing = RoutingPolicy::kDeterministic) {
  SimParams p;
  p.link_bandwidth = 1e9;
  p.hop_latency = 1e-6;
  p.mpi_overhead = 1e-6;
  p.routing = routing;
  return p;
}

HostSwitchGraph quad_graph() {
  HostSwitchGraph g(4, 1, 8);
  for (HostId h = 0; h < 4; ++h) g.attach_host(h, 0);
  return g;
}

// Square of switches with hosts on opposite corners: 2 equal-cost paths.
HostSwitchGraph square_graph() {
  HostSwitchGraph g(2, 4, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  g.add_switch_edge(2, 3);
  g.add_switch_edge(3, 0);
  return g;
}

// ---- ECMP ---------------------------------------------------------------

TEST(Ecmp, CountsEqualCostNextHops) {
  const auto g = square_graph();
  const RoutingTable routes(g);
  EXPECT_EQ(routes.equal_cost_next_hops(0, 2), 2u);
  EXPECT_EQ(routes.equal_cost_next_hops(0, 1), 1u);
  EXPECT_EQ(routes.equal_cost_next_hops(0, 0), 0u);
}

TEST(Ecmp, PathLengthMatchesDeterministicRoute) {
  const auto g = build_fattree(FatTreeParams{4}, 16);
  const RoutingTable routes(g);
  for (std::uint64_t key = 0; key < 32; ++key) {
    std::vector<LinkId> det, ecmp;
    const auto det_hops = routes.append_host_path(0, 15, det);
    const auto ecmp_hops = routes.append_host_path_ecmp(0, 15, key, ecmp);
    EXPECT_EQ(det_hops, ecmp_hops) << "key=" << key;
  }
}

TEST(Ecmp, SpreadsFlowsAcrossEqualCostPaths) {
  const auto g = square_graph();
  const RoutingTable routes(g);
  std::set<LinkId> first_hops;
  for (std::uint64_t key = 0; key < 64; ++key) {
    std::vector<LinkId> path;
    routes.append_host_path_ecmp(0, 1, key, path);
    first_hops.insert(path[1]);  // the switch link out of s0
  }
  EXPECT_EQ(first_hops.size(), 2u);  // both s0->s1 and s0->s3 used
}

TEST(Ecmp, ImprovesContendedPhaseOnFatTree) {
  // Many cross-pod flows from pod 0: deterministic routing funnels them
  // through one core group; ECMP spreads them.
  const auto g = build_fattree(FatTreeParams{4}, 16);
  Machine det(g, simple_params(RoutingPolicy::kDeterministic));
  Machine ecmp(g, simple_params(RoutingPolicy::kEcmp));
  std::vector<Message> flows;
  for (Rank r = 0; r < 4; ++r) flows.push_back({r, static_cast<Rank>(12 + r), 1000000});
  const double det_time = det.phase(flows);
  const double ecmp_time = ecmp.phase(flows);
  EXPECT_LE(ecmp_time, det_time + 1e-12);
}

// ---- phase statistics -----------------------------------------------------

TEST(PhaseStats, SingleFlowSaturatesItsPath) {
  Machine m(quad_graph(), simple_params());
  m.phase({{0, 1, 1000000000}});
  const auto& stats = m.last_phase_stats();
  EXPECT_EQ(stats.flows, 1u);
  EXPECT_NEAR(stats.max_link_utilization, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.mean_hops, 2.0);
}

TEST(PhaseStats, MeanHopsAveragesRoutes) {
  // dumbbell: 2 hops within a switch, 3 hops across.
  HostSwitchGraph g(4, 2, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  g.attach_host(2, 1);
  g.attach_host(3, 1);
  g.add_switch_edge(0, 1);
  Machine m(g, simple_params());
  m.phase({{0, 1, 1000}, {0, 2, 1000}});
  EXPECT_DOUBLE_EQ(m.last_phase_stats().mean_hops, 2.5);
}

// ---- extended collectives --------------------------------------------------

TEST(ExtendedCollectives, ScatterOnQuad) {
  Machine m(quad_graph(), simple_params());
  // Rounds: root sends 2 blocks (0.2s), then two parallel 1-block sends
  // (0.1s) -> 0.3s + latency.
  const double elapsed = m.scatter(100000000);
  EXPECT_NEAR(elapsed, 0.3 + 2 * 3e-6, 1e-7);
}

TEST(ExtendedCollectives, GatherMirrorsScatter) {
  Machine m(quad_graph(), simple_params());
  const double scatter_time = m.scatter(100000000);
  m.reset();
  const double gather_time = m.gather(100000000);
  EXPECT_NEAR(scatter_time, gather_time, 1e-9);
}

TEST(ExtendedCollectives, ScatterHandlesNonPowerOfTwo) {
  HostSwitchGraph g(6, 1, 8);
  for (HostId h = 0; h < 6; ++h) g.attach_host(h, 0);
  Machine m(g, simple_params());
  EXPECT_GT(m.scatter(1000), 0.0);
  EXPECT_GT(m.gather(1000), 0.0);
}

TEST(ExtendedCollectives, ReduceScatterHalvesBlocks) {
  Machine m(quad_graph(), simple_params());
  // Rounds: 2 blocks then 1 block per rank pair -> 0.2 + 0.1 s.
  const double elapsed = m.reduce_scatter(100000000);
  EXPECT_NEAR(elapsed, 0.3 + 2 * 3e-6, 1e-7);
}

TEST(ExtendedCollectives, RingAllreduceMovesTwoNMinusOneChunks) {
  Machine m(quad_graph(), simple_params());
  // chunk = total/4 = 1e8 -> 6 steps of 0.1 s.
  const double elapsed = m.ring_allreduce(400000000);
  EXPECT_NEAR(elapsed, 0.6 + 6 * 3e-6, 1e-6);
}

TEST(ExtendedCollectives, RingBeatsRecursiveDoublingForHugeMessages) {
  // Rabenseifner's motivation: ring moves 2(n-1)/n * B per host link while
  // recursive doubling moves log2(n) * B.
  Machine m(quad_graph(), simple_params());
  const std::uint64_t bytes = 1u << 30;
  const double doubling = m.allreduce(bytes);
  m.reset();
  const double ring = m.ring_allreduce(bytes);
  EXPECT_LT(ring, doubling);
}

// ---- traffic patterns -------------------------------------------------------

TEST(Traffic, PatternsHaveOneMessagePerRank) {
  Xoshiro256 rng(1);
  for (const TrafficPattern pattern : all_traffic_patterns()) {
    const auto messages = make_traffic(pattern, 16, 1000, rng);
    EXPECT_EQ(messages.size(), 16u) << traffic_pattern_name(pattern);
    for (const auto& m : messages) {
      EXPECT_LT(m.src, 16u);
      EXPECT_LT(m.dst, 16u);
      EXPECT_EQ(m.bytes, 1000u);
    }
  }
}

TEST(Traffic, PermutationIsABijection) {
  Xoshiro256 rng(2);
  const auto messages = make_traffic(TrafficPattern::kPermutation, 32, 1, rng);
  std::set<Rank> targets;
  for (const auto& m : messages) targets.insert(m.dst);
  EXPECT_EQ(targets.size(), 32u);
}

TEST(Traffic, TransposeMapsGridCorrectly) {
  Xoshiro256 rng(3);
  const auto messages = make_traffic(TrafficPattern::kTranspose, 16, 1, rng);
  EXPECT_EQ(messages[1].dst, 4u);   // (0,1) -> (1,0)
  EXPECT_EQ(messages[7].dst, 13u);  // (1,3) -> (3,1)
  EXPECT_EQ(messages[5].dst, 5u);   // diagonal maps to itself
}

TEST(Traffic, BitPatternsMatchDefinitions) {
  Xoshiro256 rng(4);
  const auto complement = make_traffic(TrafficPattern::kBitComplement, 8, 1, rng);
  EXPECT_EQ(complement[0].dst, 7u);
  EXPECT_EQ(complement[3].dst, 4u);
  const auto reverse = make_traffic(TrafficPattern::kBitReverse, 8, 1, rng);
  EXPECT_EQ(reverse[1].dst, 4u);  // 001 -> 100
  EXPECT_EQ(reverse[6].dst, 3u);  // 110 -> 011
  const auto shuffle_msgs = make_traffic(TrafficPattern::kShuffle, 8, 1, rng);
  EXPECT_EQ(shuffle_msgs[5].dst, 3u);  // 101 -> 011
}

TEST(Traffic, StructuredPatternsRejectBadRankCounts) {
  Xoshiro256 rng(5);
  EXPECT_THROW(make_traffic(TrafficPattern::kTranspose, 8, 1, rng),
               std::invalid_argument);
  EXPECT_THROW(make_traffic(TrafficPattern::kBitReverse, 6, 1, rng),
               std::invalid_argument);
}

TEST(Traffic, RunReportsDeliveredBandwidth) {
  const auto g = build_torus(TorusParams{2, 4, 8}, 16);
  Machine m(g, simple_params());
  Xoshiro256 rng(6);
  const auto result = run_traffic(m, TrafficPattern::kNeighborRing, 1000000, rng);
  EXPECT_GT(result.elapsed, 0.0);
  EXPECT_GT(result.aggregate_bandwidth, 0.0);
  EXPECT_GE(result.mean_hops, 2.0);
  EXPECT_LE(result.max_link_utilization, 1.0 + 1e-9);
}

TEST(Traffic, NeighborRingOutrunsBitComplementOnTorus) {
  // Locality-friendly vs adversarial on an 8x8 torus: the ring pattern
  // rides mostly single-hop links while bit-complement crosses the
  // bisection, so it wins on both hop count and delivered bandwidth.
  const auto g = build_torus(TorusParams{2, 8, 8}, 64);
  Machine m(g, simple_params());
  Xoshiro256 rng(7);
  const auto ring = run_traffic(m, TrafficPattern::kNeighborRing, 10000000, rng);
  const auto complement = run_traffic(m, TrafficPattern::kBitComplement, 10000000, rng);
  EXPECT_LT(ring.mean_hops, complement.mean_hops);
  EXPECT_GT(ring.aggregate_bandwidth, 2.0 * complement.aggregate_bandwidth);
}

}  // namespace
}  // namespace orp

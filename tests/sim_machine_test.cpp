// Tests for the fair-share solver, the fluid phase engine, and the
// collective algorithms (hand-computed timings on tiny networks).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/machine.hpp"
#include "sim/nas.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace orp {
namespace {

// Two hosts on one switch.
HostSwitchGraph pair_graph() {
  HostSwitchGraph g(2, 1, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  return g;
}

// Four hosts on one switch.
HostSwitchGraph quad_graph() {
  HostSwitchGraph g(4, 1, 8);
  for (HostId h = 0; h < 4; ++h) g.attach_host(h, 0);
  return g;
}

// 2 hosts on each of two adjacent switches.
HostSwitchGraph dumbbell_graph() {
  HostSwitchGraph g(4, 2, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  g.attach_host(2, 1);
  g.attach_host(3, 1);
  g.add_switch_edge(0, 1);
  return g;
}

SimParams simple_params() {
  SimParams p;
  p.link_bandwidth = 1e9;  // 1 GB/s: easy mental math
  p.hop_latency = 1e-6;
  p.mpi_overhead = 1e-6;
  return p;
}

TEST(FairShare, SingleFlowGetsFullBandwidth) {
  FairShareSolver solver(4, 1e9);
  std::vector<std::vector<LinkId>> paths{{0, 1}};
  std::vector<std::uint8_t> active{1};
  std::vector<double> rates;
  solver.solve(paths, active, rates);
  EXPECT_DOUBLE_EQ(rates[0], 1e9);
}

TEST(FairShare, SharedLinkSplitsEvenly) {
  FairShareSolver solver(4, 1e9);
  std::vector<std::vector<LinkId>> paths{{0, 2}, {1, 2}};  // both cross link 2
  std::vector<std::uint8_t> active{1, 1};
  std::vector<double> rates;
  solver.solve(paths, active, rates);
  EXPECT_DOUBLE_EQ(rates[0], 0.5e9);
  EXPECT_DOUBLE_EQ(rates[1], 0.5e9);
}

TEST(FairShare, MaxMinNotJustEqualSplit) {
  // Flow 0 crosses links {0,1}; flow 1 crosses {1}; flow 2 crosses {0}.
  // Progressive filling: all rise to 0.5 (links 0 and 1 saturate), so all
  // three flows end at 0.5 — but drop flow 0 and the others get 1.0 each.
  FairShareSolver solver(2, 1e9);
  std::vector<std::vector<LinkId>> paths{{0, 1}, {1}, {0}};
  std::vector<std::uint8_t> active{1, 1, 1};
  std::vector<double> rates;
  solver.solve(paths, active, rates);
  EXPECT_DOUBLE_EQ(rates[0], 0.5e9);
  EXPECT_DOUBLE_EQ(rates[1], 0.5e9);
  EXPECT_DOUBLE_EQ(rates[2], 0.5e9);

  active = {0, 1, 1};
  solver.solve(paths, active, rates);
  EXPECT_DOUBLE_EQ(rates[1], 1e9);
  EXPECT_DOUBLE_EQ(rates[2], 1e9);
}

TEST(FairShare, BottleneckFreesOtherFlows) {
  // Flows 0,1 share link 0 then diverge; flow 2 alone on link 3.
  FairShareSolver solver(4, 1e9);
  std::vector<std::vector<LinkId>> paths{{0, 1}, {0, 2}, {3}};
  std::vector<std::uint8_t> active{1, 1, 1};
  std::vector<double> rates;
  solver.solve(paths, active, rates);
  EXPECT_DOUBLE_EQ(rates[0], 0.5e9);
  EXPECT_DOUBLE_EQ(rates[1], 0.5e9);
  EXPECT_DOUBLE_EQ(rates[2], 1e9);
}

TEST(Machine, ComputeTimeMatchesGflops) {
  Machine m(pair_graph(), simple_params());
  const double elapsed = m.compute(200e9);  // 200 GFlop at 100 GFlops
  EXPECT_DOUBLE_EQ(elapsed, 2.0);
  EXPECT_DOUBLE_EQ(m.now(), 2.0);
}

TEST(Machine, SingleMessageTiming) {
  Machine m(pair_graph(), simple_params());
  // 1e9 bytes at 1 GB/s = 1 s transfer + 2 hops * 1us + 1us overhead.
  const double elapsed = m.phase({{0, 1, 1000000000}});
  EXPECT_NEAR(elapsed, 1.0 + 3e-6, 1e-9);
}

TEST(Machine, ZeroByteMessageIsLatencyOnly) {
  Machine m(pair_graph(), simple_params());
  const double elapsed = m.phase({{0, 1, 0}});
  EXPECT_NEAR(elapsed, 3e-6, 1e-12);
}

TEST(Machine, SelfMessageIsFree) {
  Machine m(pair_graph(), simple_params());
  EXPECT_DOUBLE_EQ(m.phase({{0, 0, 12345}}), 0.0);
}

TEST(Machine, ContendingFlowsHalveBandwidth) {
  // Two flows from hosts 0,1 (switch 0) to hosts 2,3 (switch 1): both
  // cross the single inter-switch cable -> 0.5 GB/s each.
  Machine m(dumbbell_graph(), simple_params());
  const double elapsed = m.phase({{0, 2, 500000000}, {1, 3, 500000000}});
  EXPECT_NEAR(elapsed, 1.0 + 4e-6, 1e-8);  // 3 hops + overhead
}

TEST(Machine, DisjointFlowsDoNotContend) {
  Machine m(quad_graph(), simple_params());
  // 0->1 and 2->3 share only the switch, not links.
  const double elapsed = m.phase({{0, 1, 1000000000}, {2, 3, 1000000000}});
  EXPECT_NEAR(elapsed, 1.0 + 3e-6, 1e-8);
}

TEST(Machine, OppositeDirectionsAreFullDuplex) {
  Machine m(dumbbell_graph(), simple_params());
  // 0->2 uses s0->s1, 2->0 uses s1->s0: no shared directed link.
  const double elapsed = m.phase({{0, 2, 1000000000}, {2, 0, 1000000000}});
  EXPECT_NEAR(elapsed, 1.0 + 4e-6, 1e-8);
}

TEST(Machine, PhaseEndsWithSlowestMessage) {
  Machine m(quad_graph(), simple_params());
  const double elapsed = m.phase({{0, 1, 1000000000}, {2, 3, 100}});
  EXPECT_NEAR(elapsed, 1.0 + 3e-6, 1e-8);
}

TEST(Machine, FinishedFlowReleasesBandwidth) {
  // Flows A (0->1, big) and B (2->1, small) share host 1's down-link.
  // B finishes at 0.2 GB (t=0.4s at 0.5 GB/s); A then speeds to 1 GB/s:
  // A moves 0.2 GB by t=0.4, remaining 0.8 GB takes 0.8 s -> total 1.2 s.
  Machine m(quad_graph(), simple_params());
  const double elapsed = m.phase({{0, 1, 1000000000}, {2, 1, 200000000}});
  EXPECT_NEAR(elapsed, 1.2 + 3e-6, 1e-7);
}

TEST(Machine, RankMappingChangesRoutes) {
  // On the dumbbell, identity mapping puts ranks 0,1 together; the
  // permuted mapping {0,2,1,3} separates them.
  Machine identity(dumbbell_graph(), simple_params());
  Machine permuted(dumbbell_graph(), simple_params(), {0, 2, 1, 3});
  EXPECT_EQ(identity.route_hops(0, 1), 2u);
  EXPECT_EQ(permuted.route_hops(0, 1), 3u);
}

TEST(Machine, RejectsNonPermutationMapping) {
  EXPECT_THROW(Machine(dumbbell_graph(), simple_params(), {0, 0, 1, 2}),
               std::invalid_argument);
}

// ---- collectives -------------------------------------------------------

TEST(Collectives, BcastOnPairIsOneMessage) {
  Machine m(pair_graph(), simple_params());
  const double elapsed = m.bcast(1000000000);
  EXPECT_NEAR(elapsed, 1.0 + 3e-6, 1e-8);
}

TEST(Collectives, AllreduceLogRounds) {
  Machine m(quad_graph(), simple_params());
  // 2 recursive-doubling rounds; each round: pairwise exchange of 1e8 bytes
  // on disjoint host links -> 0.1 s per round.
  const double elapsed = m.allreduce(100000000);
  EXPECT_NEAR(elapsed, 0.2 + 2 * 3e-6, 1e-7);
}

TEST(Collectives, BarrierIsLatencyBound) {
  Machine m(quad_graph(), simple_params());
  const double elapsed = m.barrier();
  EXPECT_NEAR(elapsed, 2 * 3e-6, 1e-9);
}

TEST(Collectives, AlltoallMovesAllPairs) {
  Machine m(quad_graph(), simple_params());
  // Pairwise exchange: 3 rounds; each round every host sends+receives 1e8
  // bytes on its own links -> 0.1 s per round.
  const double elapsed = m.alltoall(100000000);
  EXPECT_NEAR(elapsed, 0.3 + 3 * 3e-6, 1e-7);
}

TEST(Collectives, AlltoallvRespectsSizes) {
  Machine m(quad_graph(), simple_params());
  // Only the 0 <-> 1 pair exchanges bytes.
  const double elapsed = m.alltoallv([](Rank a, Rank b) {
    return (a + b == 1) ? std::uint64_t{100000000} : std::uint64_t{0};
  });
  EXPECT_GT(elapsed, 0.1);
  EXPECT_LT(elapsed, 0.11);
}

TEST(Collectives, AllgatherDoublesBlocks) {
  Machine m(quad_graph(), simple_params());
  // Round 1: 1e8 bytes, round 2: 2e8 bytes -> 0.1 + 0.2 s.
  const double elapsed = m.allgather(100000000);
  EXPECT_NEAR(elapsed, 0.3 + 2 * 3e-6, 1e-7);
}

TEST(Collectives, ReduceMirrorsBcast) {
  Machine m(quad_graph(), simple_params());
  const double bcast_time = m.bcast(100000000);
  m.reset();
  const double reduce_time = m.reduce(100000000);
  EXPECT_NEAR(bcast_time, reduce_time, 1e-9);
}

// ---- NAS skeletons (smoke + sanity on a small machine) ------------------

TEST(Nas, AllKernelsRunAndReportConsistentRates) {
  const auto g = build_fattree(FatTreeParams{8}, 64);  // 64 ranks = 8^2
  Machine m(g, SimParams{});
  NasOptions options;
  options.iteration_fraction = 0.05;
  for (const NasKernel kernel : all_nas_kernels()) {
    const NasResult r = run_nas_kernel(m, kernel, options);
    EXPECT_GT(r.seconds, 0.0) << r.name;
    EXPECT_GT(r.gflops_total, 0.0) << r.name;
    EXPECT_NEAR(r.mops_per_second, r.gflops_total * 1e3 / r.seconds, 1e-6) << r.name;
    EXPECT_LE(r.comm_seconds, r.seconds + 1e-9) << r.name;
  }
}

TEST(Nas, EpIsComputeBound) {
  const auto g = build_fattree(FatTreeParams{8}, 64);
  Machine m(g, SimParams{});
  const NasResult r = run_nas_kernel(m, NasKernel::kEP);
  EXPECT_LT(r.comm_seconds / r.seconds, 0.01);
}

TEST(Nas, RejectsNonSquareRankCounts) {
  const auto g = build_torus(TorusParams{3, 2, 8}, 8);  // 8 ranks: not square
  Machine m(g, SimParams{});
  EXPECT_THROW(run_nas_kernel(m, NasKernel::kCG), std::invalid_argument);
}

}  // namespace
}  // namespace orp

// Tests for the network-telemetry half of the orp_report analyzer
// (src/obs/trace_analysis): parsing the sim's "cat":"net" instant records,
// latency-attribution sums and the residual check, per-link aggregation,
// per-phase bottleneck link sets, reservoir-coverage reporting, and
// byte-deterministic rendering. Like obs_report_test this exercises a pure
// file reader, so the suite also runs under ORP_OBS_DISABLED.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"

namespace orp::obs::report {
namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string net_instant(const char* name, const std::string& args) {
  return "{\"name\":\"" + std::string(name) +
         "\",\"cat\":\"net\",\"ph\":\"i\",\"ts\":100,\"pid\":1,\"tid\":1,"
         "\"args\":{" +
         args + "}}";
}

/// One net.flow record; total is the sum of the five attribution terms
/// plus `extra_residual` (non-zero to simulate a broken emitter).
std::string net_flow(std::uint64_t phase, std::uint32_t src, std::uint32_t dst,
                     std::uint64_t bytes, std::uint32_t hops, double ser,
                     double queue, double hop, double retry, double ovh,
                     bool failed = false, std::uint32_t retries = 0,
                     double extra_residual = 0.0) {
  const double total = ser + queue + hop + retry + ovh + extra_residual;
  std::string args =
      "\"phase\":" + std::to_string(phase) + ",\"src\":" + std::to_string(src) +
      ",\"dst\":" + std::to_string(dst) + ",\"bytes\":" + std::to_string(bytes) +
      ",\"hops\":" + std::to_string(hops) +
      ",\"retries\":" + std::to_string(retries) + ",\"status\":\"" +
      (failed ? "failed" : "ok") + "\",\"start_s\":0,\"finish_s\":" +
      num(total) + ",\"total_s\":" + num(total) + ",\"ser_s\":" + num(ser) +
      ",\"queue_s\":" + num(queue) + ",\"hop_s\":" + num(hop) +
      ",\"retry_s\":" + num(retry) + ",\"ovh_s\":" + num(ovh) +
      ",\"rate_first_bps\":1e9,\"rate_last_bps\":2e9,\"rate_mean_bps\":1.5e9";
  return net_instant("net.flow", args);
}

std::string net_link(std::uint64_t phase, std::int64_t step, std::uint32_t link,
                     double util, std::uint32_t flows, double fair_bps) {
  std::string args = "\"phase\":" + std::to_string(phase) +
                     ",\"step\":" + std::to_string(step) +
                     ",\"link\":" + std::to_string(link) +
                     ",\"t0_s\":0,\"t1_s\":0.001,\"util\":" + num(util) +
                     ",\"flows\":" + std::to_string(flows) +
                     ",\"fair_bps\":" + num(fair_bps);
  return net_instant("net.link", args);
}

std::string net_phase(std::uint64_t phase, std::uint32_t flows,
                      std::uint32_t completed, std::uint32_t failed,
                      std::uint32_t retried, double elapsed) {
  std::string args = "\"phase\":" + std::to_string(phase) +
                     ",\"flows\":" + std::to_string(flows) +
                     ",\"completed\":" + std::to_string(completed) +
                     ",\"failed\":" + std::to_string(failed) +
                     ",\"retried\":" + std::to_string(retried) +
                     ",\"steps\":2,\"start_s\":0,\"elapsed_s\":" + num(elapsed) +
                     ",\"transfer_s\":" + num(elapsed) + ",\"max_util\":0";
  return net_instant("net.phase", args);
}

std::string net_meta(std::uint64_t flows_seen, std::uint64_t flows_kept) {
  std::string args = "\"flows_seen\":" + std::to_string(flows_seen) +
                     ",\"flows_kept\":" + std::to_string(flows_kept) +
                     ",\"links_seen\":4,\"links_kept\":4,\"phases_seen\":1,"
                     "\"phases_kept\":1";
  return net_instant("net.meta", args);
}

// A sim phase span so the trace has ordinary events alongside the
// telemetry instants (orp_report requires event_lines > 0 anyway).
std::vector<std::string> phase_span() {
  return {
      "{\"name\":\"phase\",\"cat\":\"sim\",\"ph\":\"B\",\"ts\":0,\"pid\":1,"
      "\"tid\":1}",
      "{\"name\":\"phase\",\"cat\":\"sim\",\"ph\":\"E\",\"ts\":900,\"pid\":1,"
      "\"tid\":1}",
  };
}

std::vector<std::string> small_fixture() {
  std::vector<std::string> lines = phase_span();
  // Out of (phase, src, dst) order on purpose: the analyzer must sort.
  lines.push_back(net_flow(1, 3, 0, 1 << 20, 4, 2e-4, 1e-4, 4e-7, 0, 1e-6));
  lines.push_back(net_flow(0, 1, 2, 1 << 20, 3, 2e-4, 0, 3e-7, 1e-5, 1e-6,
                           false, 1));
  lines.push_back(net_flow(0, 0, 1, 1 << 20, 3, 2e-4, 5e-5, 3e-7, 0, 1e-6));
  lines.push_back(net_link(0, -1, 7, 0.95, 2, 2.5e9));
  lines.push_back(net_link(0, -1, 3, 0.50, 1, 5e9));
  lines.push_back(net_link(1, -1, 7, 0.85, 1, 5e9));
  lines.push_back(net_phase(0, 2, 2, 0, 1, 3e-4));
  lines.push_back(net_phase(1, 1, 1, 0, 0, 3.2e-4));
  return lines;
}

TEST(ObsNetReport, ParsesAndSortsFlowLinkPhaseRecords) {
  const TraceAnalysis a = analyze_trace(small_fixture());
  const NetworkAnalysis& net = a.network;
  ASSERT_TRUE(net.present);
  ASSERT_EQ(net.flows.size(), 3u);
  EXPECT_EQ(net.flows[0].phase, 0u);
  EXPECT_EQ(net.flows[0].src, 0u);
  EXPECT_EQ(net.flows[1].src, 1u);
  EXPECT_EQ(net.flows[2].phase, 1u);  // sorted (phase, src, dst)
  EXPECT_EQ(net.flows[1].retries, 1u);
  ASSERT_EQ(net.link_samples.size(), 3u);
  EXPECT_EQ(net.link_samples[0].link, 3u);  // sorted (phase, step, link)
  ASSERT_EQ(net.phases.size(), 2u);
  EXPECT_EQ(net.completed, 3u);
  EXPECT_EQ(net.failed, 0u);
  EXPECT_EQ(net.retried, 1u);
}

TEST(ObsNetReport, AttributionTermsSumWithinTolerance) {
  const TraceAnalysis a = analyze_trace(small_fixture());
  const NetworkAnalysis& net = a.network;
  ASSERT_TRUE(net.present);
  // Fixture totals are exact term sums, so the residual is rounding only.
  EXPECT_LT(net.max_residual_s, 1e-9);
  const double sum = net.sum_ser_s + net.sum_queue_s + net.sum_hop_s +
                     net.sum_retry_s + net.sum_overhead_s;
  EXPECT_NEAR(sum, net.sum_total_s, 1e-9);
  EXPECT_GT(net.sum_total_s, 0.0);
  EXPECT_NEAR(net.max_total_s, 2e-4 + 1e-4 + 4e-7 + 1e-6, 1e-12);
}

TEST(ObsNetReport, ResidualFlagsBrokenAttribution) {
  std::vector<std::string> lines = phase_span();
  lines.push_back(net_flow(0, 0, 1, 1024, 2, 1e-4, 0, 0, 0, 0, false, 0,
                           /*extra_residual=*/5e-5));
  const TraceAnalysis a = analyze_trace(lines);
  EXPECT_NEAR(a.network.max_residual_s, 5e-5, 1e-9);
}

TEST(ObsNetReport, LinkAggregatesAndPhaseBottlenecks) {
  const TraceAnalysis a = analyze_trace(small_fixture());
  const NetworkAnalysis& net = a.network;
  ASSERT_EQ(net.links.size(), 2u);
  // Sorted by mean utilization descending: link 7 (0.90) above link 3.
  EXPECT_EQ(net.links[0].link, 7u);
  EXPECT_EQ(net.links[0].samples, 2u);
  EXPECT_NEAR(net.links[0].util_mean, 0.90, 1e-12);
  EXPECT_NEAR(net.links[0].util_max, 0.95, 1e-12);
  EXPECT_EQ(net.links[0].flows_max, 2u);
  EXPECT_NEAR(net.links[0].fair_min_bps, 2.5e9, 1e-3);
  // Phase 0 peaks at link 7 (0.95); link 3 (0.50) is far outside the 5%
  // band, so the bottleneck set is {7} alone.
  ASSERT_EQ(net.phases.size(), 2u);
  ASSERT_EQ(net.phases[0].bottleneck_links.size(), 1u);
  EXPECT_EQ(net.phases[0].bottleneck_links[0], 7u);
  EXPECT_NEAR(net.phases[0].max_utilization, 0.95, 1e-12);
}

TEST(ObsNetReport, MetaCoverageReportsSampling) {
  std::vector<std::string> full = small_fixture();
  full.push_back(net_meta(3, 3));
  const std::string complete = render_markdown(analyze_trace(full));
  EXPECT_NE(complete.find("coverage: complete"), std::string::npos);

  std::vector<std::string> sampled = small_fixture();
  sampled.push_back(net_meta(100, 3));
  const std::string partial = render_markdown(analyze_trace(sampled));
  EXPECT_NE(partial.find("SAMPLED"), std::string::npos);
  EXPECT_NE(partial.find("3/100"), std::string::npos);
}

TEST(ObsNetReport, MarkdownSectionIsByteDeterministic) {
  const std::vector<std::string> lines = small_fixture();
  const std::string once = render_markdown(analyze_trace(lines));
  const std::string twice = render_markdown(analyze_trace(lines));
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("## Network"), std::string::npos);
  EXPECT_NE(once.find("### Latency attribution"), std::string::npos);
  EXPECT_NE(once.find("### Slowest flows"), std::string::npos);
  EXPECT_NE(once.find("### Link heatmap"), std::string::npos);
  EXPECT_NE(once.find("### Phase bottlenecks"), std::string::npos);
  EXPECT_NE(once.find("serialization"), std::string::npos);
}

TEST(ObsNetReport, CsvCarriesNetworkSections) {
  const std::vector<std::string> lines = small_fixture();
  const std::string once = render_csv(analyze_trace(lines));
  const std::string twice = render_csv(analyze_trace(lines));
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("net_summary"), std::string::npos);
  EXPECT_NE(once.find("net_attribution"), std::string::npos);
  EXPECT_NE(once.find("net_link"), std::string::npos);
  EXPECT_NE(once.find("net_phase"), std::string::npos);
}

TEST(ObsNetReport, TracesWithoutTelemetrySaySo) {
  const TraceAnalysis a = analyze_trace(phase_span());
  EXPECT_FALSE(a.network.present);
  const std::string md = render_markdown(a);
  EXPECT_NE(md.find("No network telemetry in this trace."), std::string::npos);
  EXPECT_EQ(render_csv(a).find("net_attribution"), std::string::npos);
}

TEST(ObsNetReport, NetTopCapsEveryTable) {
  std::vector<std::string> lines = phase_span();
  for (std::uint32_t l = 0; l < 10; ++l) {
    lines.push_back(net_link(0, -1, l, 0.1 + 0.05 * l, 1, 5e9));
  }
  lines.push_back(net_phase(0, 1, 1, 0, 0, 1e-4));
  ReportOptions options;
  options.net_top = 3;
  const std::string md = render_markdown(analyze_trace(lines, options), {},
                                         options);
  // Exactly net_top data rows in the heatmap table: the "| " lines between
  // its heading and the next one are the header row plus 3 data rows (the
  // "|---|" separator does not match the pattern).
  const std::size_t at = md.find("### Link heatmap");
  ASSERT_NE(at, std::string::npos);
  // "\n###" not "###": the heat bars are runs of '#' and would match.
  const std::size_t end = md.find("\n###", at);
  ASSERT_NE(end, std::string::npos);
  std::size_t rows = 0, pos = md.find("\n| ", at);
  while (pos != std::string::npos && pos < end) {
    ++rows;
    pos = md.find("\n| ", pos + 1);
  }
  EXPECT_EQ(rows, 1u + 3u);
}

}  // namespace
}  // namespace orp::obs::report

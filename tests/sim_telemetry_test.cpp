// End-to-end network-telemetry tests: a Machine runs traced workloads
// (including a mid-phase fault and its repair), the sink flush drains the
// collector into the JSONL trace, and the orp_report analyzer reads it
// back. Asserts the acceptance criteria of docs/telemetry.md: every flow's
// attribution terms sum to its measured completion time, phase elapsed
// equals the slowest flow, and the rendered network section is
// byte-deterministic across identical runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "obs/sink.hpp"
#include "obs/trace_analysis.hpp"
#include "search/random_init.hpp"
#include "sim/machine.hpp"
#include "sim/telemetry/telemetry.hpp"

namespace orp {
namespace {

// ---- config / spec parsing (compiled under ORP_OBS_DISABLED too) --------

TEST(NetTelemetrySpec, KnobListOverridesFields) {
  NetTelemetryConfig base;  // defaults
  set_net_telemetry(base);
  ASSERT_TRUE(apply_net_telemetry_spec("flow_sample=4,link_steps=2"));
#ifndef ORP_OBS_DISABLED
  EXPECT_TRUE(net_telemetry().enabled);
  EXPECT_EQ(net_telemetry().flow_sample, 4u);
  EXPECT_EQ(net_telemetry().link_steps, 2u);
  EXPECT_EQ(net_telemetry().link_top_k, base.link_top_k);  // untouched
#endif
  set_net_telemetry(base);
}

TEST(NetTelemetrySpec, OffAndOnToggle) {
  NetTelemetryConfig base;
  set_net_telemetry(base);
  ASSERT_TRUE(apply_net_telemetry_spec("off"));
#ifndef ORP_OBS_DISABLED
  EXPECT_FALSE(net_telemetry().enabled);
#endif
  ASSERT_TRUE(apply_net_telemetry_spec("on"));
#ifndef ORP_OBS_DISABLED
  EXPECT_TRUE(net_telemetry().enabled);
#endif
  set_net_telemetry(base);
}

TEST(NetTelemetrySpec, MalformedSpecIsRejectedAndConfigKept) {
  NetTelemetryConfig base;
  base.flow_sample = 7;
  set_net_telemetry(base);
  EXPECT_FALSE(apply_net_telemetry_spec("flow_sample"));       // no '='
  EXPECT_FALSE(apply_net_telemetry_spec("no_such_knob=1"));    // unknown
  EXPECT_FALSE(apply_net_telemetry_spec("flow_sample=abc"));   // not a number
#ifndef ORP_OBS_DISABLED
  EXPECT_EQ(net_telemetry().flow_sample, 7u);  // untouched by failures
#endif
  set_net_telemetry(NetTelemetryConfig{});
}

#ifndef ORP_OBS_DISABLED

// ---- end-to-end: traced sim -> flush -> analyzer -------------------------

// Triangle s0-s1-s2 with one host at each end: the direct s0-s2 edge can
// die mid-phase (flow detours via s1) and be repaired.
HostSwitchGraph triangle() {
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  g.add_switch_edge(0, 2);
  return g;
}

// Runs the canonical traced workload: a healthy phase, a phase with a
// mid-transfer link failure (retry), a repair, a healthy phase again, and
// an 8-rank alltoall for flow volume. Returns the phase() elapsed times.
std::vector<double> run_workload() {
  std::vector<double> elapsed;
  Machine m(triangle());
  elapsed.push_back(m.phase({{0, 1, 10u << 20}}));
  FaultEvent down;
  down.time = m.now() + elapsed.back() / 2;
  down.kind = FaultEvent::Kind::kLinkDown;
  down.a = 0;
  down.b = 2;
  m.inject_faults({down});
  elapsed.push_back(m.phase({{0, 1, 10u << 20}}));
  FaultEvent up;
  up.time = m.now();
  up.kind = FaultEvent::Kind::kLinkUp;
  up.a = 0;
  up.b = 2;
  m.inject_faults({up});
  elapsed.push_back(m.phase({{0, 1, 10u << 20}}));

  Xoshiro256 rng(17);
  Machine all(random_host_switch_graph(8, 4, 6, rng));
  all.alltoall(1 << 16);
  return elapsed;
}

std::string trace_workload(const char* stem) {
  const std::string path = testing::TempDir() + stem;
  obs::SinkConfig config = obs::parse_sink(path);
  config.snapshot_ms = 0;  // keep the trace free of sampler noise
  if (!obs::configure(config)) ADD_FAILURE() << "cannot open " << path;
  net_detail::reset_for_tests();
  run_workload();
  obs::flush();
  obs::configure(obs::SinkConfig{});  // detach so later tests start clean
  return path;
}

TEST(SimTelemetryEndToEnd, AttributionTermsSumToMeasuredCompletionTime) {
  set_net_telemetry(NetTelemetryConfig{});
  const std::string path = trace_workload("sim_telemetry_e2e.jsonl");
  const obs::report::TraceAnalysis a = obs::report::analyze_trace_file(path);
  std::remove(path.c_str());

  const obs::report::NetworkAnalysis& net = a.network;
  ASSERT_TRUE(net.present);
  // 3 triangle phases with 1 flow each + 7 alltoall rounds of 8 flows.
  EXPECT_EQ(net.phases.size(), 10u);
  EXPECT_EQ(net.flows.size(), 3u + 7u * 8u);
  EXPECT_EQ(net.flows_seen, net.flows_kept);  // reservoirs never dropped
  EXPECT_GE(net.retried, 1u);                 // the mid-phase fault
  EXPECT_EQ(net.failed, 0u);
  EXPECT_FALSE(net.link_samples.empty());

  // The acceptance bound is 1e-6 s; the terms are exact by construction,
  // so demand far better than that.
  EXPECT_LT(net.max_residual_s, 1e-9);
  for (const obs::report::NetFlow& f : net.flows) {
    const double sum = f.ser_s + f.queue_s + f.hop_s + f.retry_s +
                       f.overhead_s;
    EXPECT_NEAR(sum, f.total_s, 1e-9) << "flow " << f.src << "->" << f.dst;
    EXPECT_GT(f.ser_s, 0.0);
    EXPECT_GE(f.queue_s, -1e-12);
  }
}

TEST(SimTelemetryEndToEnd, PhaseElapsedEqualsSlowestFlow) {
  set_net_telemetry(NetTelemetryConfig{});
  const std::string path = trace_workload("sim_telemetry_phase.jsonl");
  const obs::report::TraceAnalysis a = obs::report::analyze_trace_file(path);
  std::remove(path.c_str());

  const obs::report::NetworkAnalysis& net = a.network;
  ASSERT_TRUE(net.present);
  for (const obs::report::NetPhase& p : net.phases) {
    double slowest = 0.0;
    std::uint32_t counted = 0;
    for (const obs::report::NetFlow& f : net.flows) {
      if (f.phase != p.phase) continue;
      slowest = std::max(slowest, f.total_s);
      ++counted;
    }
    ASSERT_EQ(counted, p.flows);
    EXPECT_NEAR(p.elapsed_s, slowest, 1e-12 + 1e-9 * slowest);
  }
}

TEST(SimTelemetryEndToEnd, NetworkSectionIsByteDeterministic) {
  set_net_telemetry(NetTelemetryConfig{});
  const auto network_section = [](const std::string& path) {
    const std::string md =
        obs::report::render_markdown(obs::report::analyze_trace_file(path));
    const std::size_t begin = md.find("## Network");
    const std::size_t end = md.find("## Annealer");
    EXPECT_NE(begin, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    return md.substr(begin, end - begin);
  };
  const std::string p1 = trace_workload("sim_telemetry_det1.jsonl");
  const std::string s1 = network_section(p1);
  std::remove(p1.c_str());
  const std::string p2 = trace_workload("sim_telemetry_det2.jsonl");
  const std::string s2 = network_section(p2);
  std::remove(p2.c_str());
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1.find("### Latency attribution"), std::string::npos);
}

TEST(SimTelemetryEndToEnd, DisabledConfigSuppressesRecords) {
  NetTelemetryConfig off;
  off.enabled = false;
  set_net_telemetry(off);
  const std::string path = trace_workload("sim_telemetry_off.jsonl");
  const obs::report::TraceAnalysis a = obs::report::analyze_trace_file(path);
  std::remove(path.c_str());
  EXPECT_FALSE(a.network.present);
  set_net_telemetry(NetTelemetryConfig{});
}

TEST(SimTelemetryEndToEnd, FlowSamplingKeepsEveryNthFlowButAllPhases) {
  NetTelemetryConfig sampled;
  sampled.flow_sample = 4;
  set_net_telemetry(sampled);
  const std::string path = trace_workload("sim_telemetry_sampled.jsonl");
  const obs::report::TraceAnalysis a = obs::report::analyze_trace_file(path);
  std::remove(path.c_str());
  set_net_telemetry(NetTelemetryConfig{});

  const obs::report::NetworkAnalysis& net = a.network;
  ASSERT_TRUE(net.present);
  EXPECT_EQ(net.phases.size(), 10u);  // phase records are never sampled
  // Every phase keeps ceil(flows/4) of its flows: the three 1-flow
  // triangle phases keep their only flow, the 8-flow rounds keep 2.
  EXPECT_EQ(net.flows.size(), 3u + 7u * 2u);
  // Phase-level degradation counters still cover ALL flows.
  std::uint64_t phase_flows = 0;
  for (const obs::report::NetPhase& p : net.phases) phase_flows += p.flows;
  EXPECT_EQ(phase_flows, 3u + 7u * 8u);
}

// ---- fast-solver aggregation vs reference records ------------------------

// Traced workload built to exercise the fast solver's route aggregation:
// every (src, dst) pair carries three messages of different sizes, so
// each route is shared by three flows that complete at different times
// (mid-phase deactivations -> warm re-solves). Telemetry must see exact
// de-aggregated per-flow rates, not the per-route aggregate.
std::string trace_aggregation_workload(const char* stem, FluidSolver solver) {
  const std::string path = testing::TempDir() + stem;
  obs::SinkConfig config = obs::parse_sink(path);
  config.snapshot_ms = 0;
  if (!obs::configure(config)) ADD_FAILURE() << "cannot open " << path;
  net_detail::reset_for_tests();
  {
    Xoshiro256 rng(17);
    SimParams p;
    p.fluid_solver = solver;
    Machine m(random_host_switch_graph(8, 4, 6, rng), p);
    std::vector<Message> messages;
    for (Rank src = 0; src < 8; ++src) {
      for (std::uint64_t copy = 0; copy < 3; ++copy) {
        messages.push_back(
            {src, static_cast<Rank>((src + 3) % 8), (copy + 1) << 18});
      }
    }
    m.phase(messages);
    m.alltoall(1 << 14);
  }
  obs::flush();
  obs::configure(obs::SinkConfig{});
  return path;
}

TEST(SimTelemetryEndToEnd, FastSolverAggregationMatchesReferenceRecords) {
  set_net_telemetry(NetTelemetryConfig{});
  const std::string p_ref =
      trace_aggregation_workload("sim_tel_agg_ref.jsonl",
                                 FluidSolver::kReference);
  const obs::report::TraceAnalysis ref = obs::report::analyze_trace_file(p_ref);
  std::remove(p_ref.c_str());
  const std::string p_fast =
      trace_aggregation_workload("sim_tel_agg_fast.jsonl", FluidSolver::kFast);
  const obs::report::TraceAnalysis fast =
      obs::report::analyze_trace_file(p_fast);
  std::remove(p_fast.c_str());

  ASSERT_TRUE(ref.network.present);
  ASSERT_TRUE(fast.network.present);

  // Five-term attribution stays exact when the fast solver aggregates.
  EXPECT_LT(fast.network.max_residual_s, 1e-9);
  for (const obs::report::NetFlow& f : fast.network.flows) {
    EXPECT_NEAR(f.ser_s + f.queue_s + f.hop_s + f.retry_s + f.overhead_s,
                f.total_s, 1e-9)
        << "flow " << f.src << "->" << f.dst;
  }

  // Record-for-record agreement with the reference run: same flows in
  // the same sorted order, with timings and observed rates equal within
  // the solvers' 1e-9-relative rate agreement.
  ASSERT_EQ(ref.network.flows.size(), fast.network.flows.size());
  for (std::size_t i = 0; i < ref.network.flows.size(); ++i) {
    const obs::report::NetFlow& a = ref.network.flows[i];
    const obs::report::NetFlow& b = fast.network.flows[i];
    ASSERT_EQ(a.phase, b.phase);
    ASSERT_EQ(a.src, b.src);
    ASSERT_EQ(a.dst, b.dst);
    ASSERT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_NEAR(a.total_s, b.total_s, 1e-7 * a.total_s + 1e-15);
    EXPECT_NEAR(a.queue_s, b.queue_s, 1e-7 * a.total_s + 1e-15);
    EXPECT_NEAR(a.rate_first_bps, b.rate_first_bps,
                1e-7 * a.rate_first_bps + 1e-3);
    EXPECT_NEAR(a.rate_mean_bps, b.rate_mean_bps,
                1e-7 * a.rate_mean_bps + 1e-3);
  }

  // Per-link samples: identical buckets, flow counts, utilization, and
  // fair_bps (the minimum fair-share rate crossing the link).
  ASSERT_EQ(ref.network.link_samples.size(), fast.network.link_samples.size());
  for (std::size_t i = 0; i < ref.network.link_samples.size(); ++i) {
    const obs::report::NetLink& a = ref.network.link_samples[i];
    const obs::report::NetLink& b = fast.network.link_samples[i];
    ASSERT_EQ(a.phase, b.phase);
    ASSERT_EQ(a.step, b.step);
    ASSERT_EQ(a.link, b.link);
    EXPECT_EQ(a.flows, b.flows);
    EXPECT_NEAR(a.utilization, b.utilization, 1e-7 * a.utilization + 1e-12);
    EXPECT_NEAR(a.fair_bps, b.fair_bps, 1e-7 * a.fair_bps + 1e-3);
  }
}

#endif  // ORP_OBS_DISABLED

}  // namespace
}  // namespace orp
